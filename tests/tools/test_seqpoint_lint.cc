/**
 * @file
 * seqpoint_lint tests: the scanner primitives, both committed
 * fixture trees (one clean, one tripping every rule), and the
 * --update-pins ratchet semantics on a generated temp tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "seqpoint_lint/lint.hh"

namespace fs = std::filesystem;
using namespace seqlint;

namespace {

const std::string kFixtures =
    std::string(SEQPOINT_SOURCE_DIR) + "/tools/seqpoint_lint/fixtures";

std::set<std::string>
rulesOf(const std::vector<Violation> &vs)
{
    std::set<std::string> rules;
    for (const Violation &v : vs)
        rules.insert(v.rule);
    return rules;
}

void
writeFile(const fs::path &path, const std::string &content)
{
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good()) << path;
}

} // namespace

TEST(Fnv1a64, KnownVectors)
{
    // FNV-1a offset basis and a published test vector.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(hashHex(0xaf63dc4c8601ec8cull), "af63dc4c8601ec8c");
}

TEST(StripComments, RemovesCommentsKeepsLines)
{
    std::string src = "a; // trailing\n/* block\nspans */b;\n";
    std::string out = stripComments(src, false);
    EXPECT_EQ(out, "a; \n\nb;\n");
}

TEST(StripComments, StringContentsOptionallyBlanked)
{
    std::string src = "f(\"{ not a brace\");";
    EXPECT_EQ(stripComments(src, true), "f(\"\");");
    EXPECT_EQ(stripComments(src, false), src);
}

TEST(StripComments, CommentMarkersInsideStringsSurvive)
{
    std::string src = "g(\"// not a comment\"); h();";
    EXPECT_EQ(stripComments(src, false), src);
}

TEST(StripComments, DigitSeparatorIsNotACharLiteral)
{
    std::string src = "x = 1'000'000; y(); // tail\n";
    EXPECT_EQ(stripComments(src, true), "x = 1'000'000; y(); \n");
}

TEST(FindLoops, ChecksBodyAndEnclosingLoop)
{
    std::string src =
        "void f(int n) {\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        cancelCheckpoint(\"x\");\n"
        "        for (int j = 0; j < n; ++j)\n"
        "            g(j);\n"
        "    }\n"
        "    while (n > 0)\n"
        "        --n;\n"
        "}\n";
    auto loops = findLoops(stripComments(src, true));
    ASSERT_EQ(loops.size(), 3u);
    EXPECT_TRUE(loops[0].checked);  // own checkpoint
    EXPECT_TRUE(loops[1].checked);  // enclosing loop checked
    EXPECT_FALSE(loops[2].checked); // bare while
    EXPECT_EQ(loops[2].header, "while (n > 0)");
    EXPECT_EQ(loops[2].line, 7);
}

TEST(FindLoops, DoWhileTailIsNotADuplicateLoop)
{
    std::string src = "do {\n    f();\n} while (g());\n";
    auto loops = findLoops(stripComments(src, true));
    EXPECT_TRUE(loops.empty());
}

TEST(LoopKey, StableUnderReformatting)
{
    std::string a = "for (int i = 0; i < n; ++i) f();";
    std::string b = "for (int i = 0;\n     i < n; ++i) f();";
    auto la = findLoops(a), lb = findLoops(b);
    ASSERT_EQ(la.size(), 1u);
    ASSERT_EQ(lb.size(), 1u);
    EXPECT_EQ(loopKey("x.cc", la[0]), loopKey("x.cc", lb[0]));
}

TEST(LintFixtures, CleanTreePasses)
{
    Options opts;
    opts.root = kFixtures + "/clean_tree";
    std::vector<Violation> vs;
    EXPECT_TRUE(runLint(opts, vs));
    for (const Violation &v : vs)
        ADD_FAILURE() << v.rule << " " << v.file << ":" << v.line
                      << " " << v.message;
}

TEST(LintFixtures, ViolationsTreeTripsEveryRule)
{
    Options opts;
    opts.root = kFixtures + "/violations_tree";
    std::vector<Violation> vs;
    EXPECT_TRUE(runLint(opts, vs));
    std::set<std::string> rules = rulesOf(vs);
    EXPECT_TRUE(rules.count("checkpoint"));
    EXPECT_TRUE(rules.count("status-discard"));
    EXPECT_TRUE(rules.count("codec-pin"));
    EXPECT_TRUE(rules.count("bench-gate"));
    EXPECT_TRUE(rules.count("error-code"));
    EXPECT_TRUE(rules.count("unordered-iter"));
    EXPECT_TRUE(rules.count("nondeterminism"));
    EXPECT_TRUE(rules.count("float-reduce"));
    EXPECT_TRUE(rules.count("fuzz-coverage"));
}

TEST(LintFixtures, ViolationsRenderAsJson)
{
    Options opts;
    opts.root = kFixtures + "/violations_tree";
    std::vector<Violation> vs;
    ASSERT_TRUE(runLint(opts, vs));
    ASSERT_FALSE(vs.empty());

    std::string json = violationsJson(vs);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("\"rule\": \"unordered-iter\""), std::string::npos);
    EXPECT_NE(json.find("\"file\": \"src/det.cc\""), std::string::npos);
    EXPECT_NE(json.find("\"line\": "), std::string::npos);
    // Messages quote source (e.g. 'for (...)') and must be escaped.
    EXPECT_EQ(json.find('\t'), std::string::npos);

    EXPECT_EQ(violationsJson({}), "[]\n");

    Violation hostile;
    hostile.rule = "x";
    hostile.file = "a\"b";
    hostile.line = 1;
    hostile.message = "quote \" slash \\ newline \n tab \t end";
    std::string escaped = violationsJson({hostile});
    EXPECT_NE(escaped.find("a\\\"b"), std::string::npos);
    EXPECT_NE(escaped.find("\\\\ newline \\n tab \\t end"),
              std::string::npos);
}

TEST(LintFixtures, ViolationsTreeFlagsBothDiscardShapes)
{
    Options opts;
    opts.root = kFixtures + "/violations_tree";
    std::vector<Violation> vs;
    ASSERT_TRUE(runLint(opts, vs));
    int plain = 0, laundered = 0;
    for (const Violation &v : vs) {
        if (v.rule != "status-discard")
            continue;
        if (v.message.find("(void)") != std::string::npos)
            ++laundered;
        else
            ++plain;
    }
    EXPECT_EQ(plain, 1);
    EXPECT_EQ(laundered, 1);
}

class UpdatePins : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::temp_directory_path() /
                ("seqlint_pins_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        fs::remove_all(root_);
        writeFile(root_ / "src/harness/snapshot_io.hh",
                  "constexpr unsigned kSnapshotFormatVersion = 2;\n");
        writeFile(root_ / "src/codec.cc", "int codec() { return 1; }\n");
        writeFile(root_ / "tools/seqpoint_lint/codec_files.txt",
                  "src/codec.cc\n");
        opts_.root = root_.string();
    }

    void TearDown() override { fs::remove_all(root_); }

    fs::path root_;
    Options opts_;
};

TEST_F(UpdatePins, GeneratesPinsAndLintAcceptsThem)
{
    std::string error;
    ASSERT_TRUE(updateCodecPins(opts_, error)) << error;

    // Rule 3 in isolation needs the rest of the config; a comment-only
    // edit must still pass (hashes skip comments).
    writeFile(root_ / "src/codec.cc",
              "// new comment\nint codec() { return 1; }\n");
    ASSERT_TRUE(updateCodecPins(opts_, error)) << error;
}

TEST_F(UpdatePins, RefusesRepinWithoutVersionBump)
{
    std::string error;
    ASSERT_TRUE(updateCodecPins(opts_, error)) << error;

    writeFile(root_ / "src/codec.cc", "int codec() { return 2; }\n");
    EXPECT_FALSE(updateCodecPins(opts_, error));
    EXPECT_NE(error.find("bump"), std::string::npos) << error;

    // Bumping the format version unlocks the re-pin.
    writeFile(root_ / "src/harness/snapshot_io.hh",
              "constexpr unsigned kSnapshotFormatVersion = 3;\n");
    error.clear();
    EXPECT_TRUE(updateCodecPins(opts_, error)) << error;
}

/**
 * Determinism-rule ratchet semantics: start from a copy of the clean
 * fixture tree and verify that removing an escape hatch (annotation,
 * allowlist pin) or adding an uncovered decoder re-trips the rule.
 */
class DeterminismRules : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::temp_directory_path() /
                ("seqlint_det_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        fs::remove_all(root_);
        fs::copy(kFixtures + "/clean_tree", root_,
                 fs::copy_options::recursive);
        opts_.root = root_.string();
    }

    void TearDown() override { fs::remove_all(root_); }

    // Replaces `from` with `to` in the tree-relative file `rel`.
    void
    patchFile(const std::string &rel, const std::string &from,
              const std::string &to)
    {
        std::ifstream in(root_ / rel);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        auto at = text.find(from);
        ASSERT_NE(at, std::string::npos) << rel << ": " << from;
        text.replace(at, from.size(), to);
        writeFile(root_ / rel, text);
    }

    std::set<std::string>
    lintRules()
    {
        std::vector<Violation> vs;
        EXPECT_TRUE(runLint(opts_, vs));
        return rulesOf(vs);
    }

    fs::path root_;
    Options opts_;
};

TEST_F(DeterminismRules, CopiedCleanTreeStartsClean)
{
    EXPECT_TRUE(lintRules().empty());
}

TEST_F(DeterminismRules, RemovingCanonicalOrderAnnotationTrips)
{
    patchFile("src/det.cc", "seqlint:canonical-order", "(removed)");
    EXPECT_TRUE(lintRules().count("unordered-iter"));
}

TEST_F(DeterminismRules, AnnotationMoreThanTwoLinesAwayDoesNotCount)
{
    // Push the tag out of the recognised window (flagged line plus the
    // two lines above it).
    patchFile("src/det.cc", "output. seqlint:canonical-order\n",
              "output. seqlint:canonical-order\n    //\n    //\n");
    EXPECT_TRUE(lintRules().count("unordered-iter"));
}

TEST_F(DeterminismRules, StaleDeterminismPinTrips)
{
    patchFile("tools/seqpoint_lint/determinism_allowlist.txt",
              "src/det.cc#", "src/det.cc#ffffffffffffffff ");
    EXPECT_TRUE(lintRules().count("unordered-iter"));
}

TEST_F(DeterminismRules, UnlistedClockTokenTrips)
{
    patchFile("tools/seqpoint_lint/nondeterminism_allowlist.txt",
              "src/det.cc:steady_clock", "# (pin retired)");
    EXPECT_TRUE(lintRules().count("nondeterminism"));
}

TEST_F(DeterminismRules, RemovingReduceAnnotationTrips)
{
    patchFile("src/det.cc", "seqlint:deterministic-reduce", "(removed)");
    EXPECT_TRUE(lintRules().count("float-reduce"));
}

TEST_F(DeterminismRules, PerSlotWritesStayExempt)
{
    // The slots[i] compound assignments are single-writer-per-index and
    // must not need an annotation: retire every escape hatch except the
    // ones covering the two named reductions.
    patchFile("src/det.cc", "slots[i] += 1.0;", "slots[i] += 3.0;");
    EXPECT_FALSE(lintRules().count("float-reduce"));
}

TEST_F(DeterminismRules, NewDecoderWithoutHarnessTrips)
{
    patchFile("src/codec2.cc", "struct ByteReader;",
              "struct ByteReader;\nint decodeOther(ByteReader &r);\n");
    EXPECT_TRUE(lintRules().count("fuzz-coverage"));
}

TEST_F(DeterminismRules, MissingRegistryIsAConfigError)
{
    fs::remove(root_ / "tools/seqpoint_lint/fuzz_harnesses.txt");
    std::vector<Violation> vs;
    EXPECT_FALSE(runLint(opts_, vs));
}

TEST(LintTree, RepositoryIsClean)
{
    // The merged tree must satisfy its own invariants. (Also enforced
    // as a standalone ctest via the seqpoint_lint binary; kept here so
    // a lint regression points at the rule that fired.)
    Options opts;
    opts.root = SEQPOINT_SOURCE_DIR;
    std::vector<Violation> vs;
    EXPECT_TRUE(runLint(opts, vs));
    for (const Violation &v : vs)
        ADD_FAILURE() << v.rule << " " << v.file << ":" << v.line
                      << " " << v.message;
}
