/**
 * @file
 * Tests for the deadline-aware query service: answer correctness
 * against a direct Experiment (bit-identical), warm-vs-cold
 * accounting, single-flight dedup of concurrent identical queries,
 * admission-control shedding, deadline and cancellation unwinds that
 * leave the service reusable, graceful drain (including persisting a
 * snapshot whose save a fault dropped), and a death-free chaos run
 * under the PR 6 fault storm.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/fault_injection.hh"
#include "common/logging.hh"
#include "harness/experiment.hh"
#include "harness/workloads.hh"
#include "service/query_service.hh"

namespace seqpoint {
namespace service {
namespace {

namespace fs = std::filesystem;

std::string
tmpStore(const std::string &name)
{
    std::string dir = (fs::path(testing::TempDir()) / name).string();
    std::error_code ec;
    fs::remove_all(dir, ec);
    return dir;
}

/** The clean serial answer the service must reproduce exactly. */
QueryAnswer
directAnswer(harness::Workload wl, const sim::GpuConfig &cfg)
{
    harness::Experiment exp(std::move(wl));
    exp.setProfileThreads(1);
    QueryAnswer want;
    want.selection =
        exp.buildSelection(core::SelectorKind::SeqPoint, cfg);
    want.projectedSec = exp.projectedTrainSec(want.selection, cfg);
    want.actualSec = exp.actualTrainSec(cfg);
    return want;
}

bool
answersMatch(const QueryAnswer &a, const QueryAnswer &b)
{
    return a.selection == b.selection &&
        a.projectedSec == b.projectedSec && a.actualSec == b.actualSec;
}

QueryRequest
ds2Request(const sim::GpuConfig &cfg = sim::GpuConfig::config1())
{
    QueryRequest req;
    req.workload = "DS2";
    req.config = cfg;
    return req;
}

TEST(QueryService, AnswersBitIdenticalToDirectExperiment)
{
    ServiceConfig cfg;
    cfg.workers = 2;
    QueryService svc(cfg);
    svc.registerWorkload("DS2",
                         [] { return harness::makeDs2Workload(); });
    svc.start();

    QueryResult cold = svc.query(ds2Request());
    ASSERT_TRUE(cold.status.ok()) << cold.status.toString();
    EXPECT_TRUE(cold.coldBuild);

    QueryResult warm = svc.query(ds2Request());
    ASSERT_TRUE(warm.status.ok()) << warm.status.toString();
    EXPECT_FALSE(warm.coldBuild);

    QueryAnswer want = directAnswer(harness::makeDs2Workload(),
                                    sim::GpuConfig::config1());
    EXPECT_TRUE(answersMatch(cold.answer, want));
    EXPECT_TRUE(answersMatch(warm.answer, want));
    EXPECT_GT(cold.latencySec, 0.0);

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.admitted, 2u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.coldBuilds, 1u);
    EXPECT_EQ(stats.warmHits, 1u);
    svc.drain();
    EXPECT_FALSE(svc.running());
}

TEST(QueryService, ConcurrentDuplicatesShareOneBuild)
{
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = 32;
    QueryService svc(cfg);
    svc.registerWorkload("DS2",
                         [] { return harness::makeDs2Workload(); });
    svc.start();

    // Eight identical queries in flight together: the registry's
    // single-flight slot plus the warm entry must collapse them onto
    // exactly one underlying cold start.
    std::vector<PendingPtr> handles;
    for (int i = 0; i < 8; ++i)
        handles.push_back(svc.submit(ds2Request()));
    QueryAnswer want = directAnswer(harness::makeDs2Workload(),
                                    sim::GpuConfig::config1());
    unsigned cold_builds = 0;
    for (const PendingPtr &h : handles) {
        QueryResult r = h->wait();
        ASSERT_TRUE(r.status.ok()) << r.status.toString();
        EXPECT_TRUE(answersMatch(r.answer, want));
        cold_builds += r.coldBuild;
    }
    EXPECT_EQ(cold_builds, 1u);
    EXPECT_EQ(svc.registry().stats().builds, 1u);
    EXPECT_EQ(svc.stats().coldBuilds, 1u);
    EXPECT_EQ(svc.stats().warmHits, 7u);
}

TEST(QueryService, OverloadShedsClassified)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 1;
    QueryService svc(cfg);
    svc.registerWorkload("DS2",
                         [] { return harness::makeDs2Workload(); });
    svc.start();

    // While the single worker is inside the first cold build, the
    // one-slot queue fills and the rest of the burst sheds
    // immediately with a classified Overloaded.
    std::vector<PendingPtr> handles;
    for (int i = 0; i < 16; ++i)
        handles.push_back(svc.submit(ds2Request()));
    unsigned ok = 0, shed = 0;
    for (const PendingPtr &h : handles) {
        QueryResult r = h->wait();
        if (r.status.ok()) {
            ++ok;
        } else {
            ASSERT_EQ(r.status.code(), ErrorCode::Overloaded)
                << r.status.toString();
            EXPECT_FALSE(r.status.message().empty());
            ++shed;
        }
    }
    EXPECT_EQ(ok + shed, 16u);
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(svc.stats().shedOverload, shed);
    EXPECT_EQ(svc.stats().admitted, ok);

    // After drain the service refuses instead of wedging.
    svc.drain();
    QueryResult late = svc.query(ds2Request());
    EXPECT_EQ(late.status.code(), ErrorCode::Overloaded);
}

TEST(QueryService, ExpiredDeadlineClassifiedTimeout)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    QueryService svc(cfg);
    svc.registerWorkload("DS2",
                         [] { return harness::makeDs2Workload(); });
    svc.start();

    QueryRequest late = ds2Request();
    late.deadlineSec = 1e-9;
    QueryResult r = svc.query(late);
    ASSERT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), ErrorCode::Timeout);
    EXPECT_EQ(svc.stats().deadlineMissed, 1u);

    // The shed request left the worker healthy: a normal query on
    // the same service still answers.
    EXPECT_TRUE(svc.query(ds2Request()).status.ok());
}

TEST(QueryService, CancelMidBuildLeavesServiceReusable)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    QueryService svc(cfg);
    svc.registerWorkload("DS2",
                         [] { return harness::makeDs2Workload(); });
    svc.start();

    PendingPtr p = svc.submit(ds2Request());
    p->cancel();
    QueryResult r = p->wait();
    // The cancel races the (slow, cold) build; either it unwound at
    // a checkpoint with a classified Cancelled, or the answer beat
    // the cancel. Both are legal; an unclassified failure is not.
    if (!r.status.ok())
        EXPECT_EQ(r.status.code(), ErrorCode::Cancelled)
            << r.status.toString();

    // Reusable either way: the next uncancelled query answers
    // bit-identically to a direct Experiment.
    QueryResult again = svc.query(ds2Request());
    ASSERT_TRUE(again.status.ok()) << again.status.toString();
    EXPECT_TRUE(answersMatch(again.answer,
                             directAnswer(harness::makeDs2Workload(),
                                          sim::GpuConfig::config1())));
}

TEST(QueryService, UnknownWorkloadClassifiedNotFatal)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    QueryService svc(cfg);
    svc.registerWorkload("DS2",
                         [] { return harness::makeDs2Workload(); });
    svc.start();

    QueryRequest bogus;
    bogus.workload = "NoSuchModel";
    bogus.config = sim::GpuConfig::config1();
    QueryResult r = svc.query(bogus);
    ASSERT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code(), ErrorCode::CellFailed);
    EXPECT_EQ(svc.stats().failed, 1u);

    EXPECT_TRUE(svc.query(ds2Request()).status.ok());
}

TEST(QueryService, DrainPersistsDroppedSnapshotAndIsIdempotent)
{
    std::string dir = tmpStore("service_drain_store");
    auto &inj = FaultInjector::instance();
    inj.reset();
    // Drop the build-time persist: the store misses the snapshot the
    // service is holding in memory.
    inj.armAt("registry.save", "", {1});

    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.storeDir = dir;
    QueryService svc(cfg);
    svc.registerWorkload("DS2",
                         [] { return harness::makeDs2Workload(); });
    svc.start();

    setQuietLogging(true); // dropped-save + flush warnings expected
    EXPECT_TRUE(svc.query(ds2Request()).status.ok());
    EXPECT_EQ(inj.fired("registry.save"), 1u);
    std::error_code ec;
    std::size_t bins_before = 0;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        bins_before += entry.path().extension() == ".bin";
    EXPECT_EQ(bins_before, 0u);

    // Drain's flush phase repairs the store; a second drain no-ops.
    svc.drain();
    svc.drain();
    setQuietLogging(false);
    inj.reset();

    std::size_t bins_after = 0;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        bins_after += entry.path().extension() == ".bin";
    EXPECT_EQ(bins_after, 1u);

    // The flushed snapshot is adopted by a fresh registry: replay
    // without a build proves the bytes round-trip.
    harness::SnapshotRegistry reader(dir);
    auto snap = reader.acquire(
        [] { return harness::makeDs2Workload(); },
        sim::GpuConfig::config1(), 1);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(reader.stats().builds, 0u);
    EXPECT_EQ(reader.stats().diskHits, 1u);
    fs::remove_all(dir, ec);
}

TEST(QueryService, ChaosUnderLoadIsDeathFree)
{
    std::string dir = tmpStore("service_chaos_store");
    auto gnmt = [] { return harness::makeGnmtWorkload(); };
    auto ds2 = [] { return harness::makeDs2Workload(); };
    sim::GpuConfig c1 = sim::GpuConfig::config1();

    // Prime the store, then corrupt the first file (sorted:
    // deterministic choice) and arm seeded read/load faults -- the
    // PR 6 storm, now under concurrent service load.
    {
        harness::SnapshotRegistry prime(dir);
        (void)prime.acquire(gnmt, c1, 1);
        (void)prime.acquire(ds2, c1, 1);
    }
    std::error_code ec;
    std::vector<std::string> files;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".bin")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty());
    {
        std::ifstream in(files[0], std::ios::binary);
        std::string bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
        ASSERT_GT(bytes.size(), 32u);
        bytes[bytes.size() / 2] =
            static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
        std::ofstream out(files[0],
                          std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    auto &inj = FaultInjector::instance();
    inj.reset();
    inj.armSeeded("snapshot_io.read", "", 0xc4a05, 0.5, 2);
    inj.armSeeded("registry.load", "", 0x10adf, 0.5, 2);
    inj.armAt("registry.save", "", {1});

    QueryAnswer want_gnmt =
        directAnswer(harness::makeGnmtWorkload(), c1);
    QueryAnswer want_ds2 = directAnswer(harness::makeDs2Workload(), c1);

    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = 16;
    cfg.storeDir = dir;
    QueryService svc(cfg);
    svc.registerWorkload("GNMT", gnmt);
    svc.registerWorkload("DS2", ds2);
    svc.start();

    setQuietLogging(true); // the storm's warnings are expected noise
    const unsigned per_client = 3, clients = 4;
    std::atomic<unsigned> identical{0}, classified{0}, unclassified{0};
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (unsigned i = 0; i < per_client; ++i) {
                QueryRequest req;
                bool is_gnmt = (c + i) % 2 == 0;
                req.workload = is_gnmt ? "GNMT" : "DS2";
                req.config = c1;
                QueryResult r = svc.query(req);
                if (r.status.ok()) {
                    bool match = answersMatch(
                        r.answer, is_gnmt ? want_gnmt : want_ds2);
                    (match ? identical : unclassified)++;
                } else if (r.status.code() == ErrorCode::Overloaded ||
                           r.status.code() == ErrorCode::Timeout ||
                           r.status.code() == ErrorCode::Cancelled) {
                    classified++;
                } else {
                    unclassified++;
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    svc.drain();
    setQuietLogging(false);
    inj.reset();

    // Every request answered bit-identically or shed classified --
    // never an unclassified failure, a crash, or a stuck worker.
    EXPECT_EQ(identical.load() + classified.load(),
              clients * per_client);
    EXPECT_EQ(unclassified.load(), 0u);
    EXPECT_EQ(svc.stats().stuckReports, 0u);
    fs::remove_all(dir, ec);
}

} // anonymous namespace
} // namespace service
} // namespace seqpoint
