/**
 * @file
 * Tests for the GEMM autotuner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/status.hh"
#include "nn/autotune.hh"
#include "nn/kernel_gen.hh"
#include "sim/gpu.hh"

namespace seqpoint {
namespace nn {
namespace {

TEST(GemmVariant, SuffixFormat)
{
    GemmVariant v{128, 64, 16};
    EXPECT_EQ(v.suffix(), "MT128x64_K16");
}

TEST(VariantMenu, NonEmptyAndOrdered)
{
    const auto &menu = gemmVariantMenu();
    ASSERT_GE(menu.size(), 4u);
    for (size_t i = 1; i < menu.size(); ++i) {
        EXPECT_LE(menu[i].tileM * menu[i].tileN,
                  menu[i - 1].tileM * menu[i - 1].tileN);
    }
}

TEST(Autotuner, HeuristicCachesPerShape)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    const GemmVariant &a = tuner.select(1024, 1024, 256);
    const GemmVariant &b = tuner.select(1024, 1024, 256);
    EXPECT_EQ(&a, &b); // same cached object
    EXPECT_EQ(tuner.cacheSize(), 1u);
    tuner.select(64, 64, 64);
    EXPECT_EQ(tuner.cacheSize(), 2u);
}

TEST(Autotuner, HeuristicHasZeroTuningCost)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    tuner.select(512, 512, 512);
    EXPECT_DOUBLE_EQ(tuner.tuningCostSec(), 0.0);
}

TEST(Autotuner, HeuristicPrefersBigTilesForBigGemm)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    const GemmVariant &v = tuner.select(4096, 4096, 1024);
    EXPECT_GE(v.tileM * v.tileN, 64u * 64u);
}

TEST(Autotuner, HeuristicAvoidsWasteOnSkinnyGemm)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    const GemmVariant &v = tuner.select(4096, 64, 1024);
    // An N-64 GEMM should not pad the N dimension beyond 64.
    EXPECT_LE(v.tileN, 64u);
}

TEST(Autotuner, MeasuredAccruesTuningCost)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    Autotuner tuner(Autotuner::Mode::Measured, &gpu);
    tuner.select(1024, 1024, 512);
    EXPECT_GT(tuner.tuningCostSec(), 0.0);
    double cost_after_one = tuner.tuningCostSec();
    tuner.select(1024, 1024, 512); // cached: no extra cost
    EXPECT_DOUBLE_EQ(tuner.tuningCostSec(), cost_after_one);
}

TEST(Autotuner, MeasuredPicksFastestCandidate)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    Autotuner tuner(Autotuner::Mode::Measured, &gpu);
    const GemmVariant &chosen = tuner.select(2048, 2048, 512);

    double chosen_time = gpu.execute(
        gemmKernelForVariant("probe", 2048, 2048, 512, chosen)).timeSec;
    for (const GemmVariant &v : gemmVariantMenu()) {
        double t = gpu.execute(
            gemmKernelForVariant("probe", 2048, 2048, 512, v)).timeSec;
        EXPECT_LE(chosen_time, t + 1e-15) << v.suffix();
    }
}

TEST(Autotuner, ResetClearsCacheAndCost)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    Autotuner tuner(Autotuner::Mode::Measured, &gpu);
    tuner.select(256, 256, 256);
    tuner.reset();
    EXPECT_EQ(tuner.cacheSize(), 0u);
    EXPECT_DOUBLE_EQ(tuner.tuningCostSec(), 0.0);
}

std::vector<AutotuneEntry>
sampleEntries()
{
    std::vector<AutotuneEntry> v;
    v.push_back({1024, 1024, 256, {128, 128, 16}, 0.0});
    v.push_back({1024, 1024, 512, {128, 64, 16}, 1.5e-3});
    v.push_back({64, 4096, 64, {16, 16, 16}, 2.25e-4});
    v.push_back({2048, 32, 2048, {64, 32, 16}, 7.0});
    v.push_back({-3, 0, 9, {0, 0, 0}, -0.0}); // hostile but encodable
    return v;
}

TEST(AutotuneSection, RoundTripsBitExactly)
{
    std::vector<AutotuneEntry> in = sampleEntries();
    ByteWriter w;
    encodeAutotuneSection(w, in);

    ByteReader r(w.data(), "test-autotune-section");
    std::vector<AutotuneEntry> out = decodeAutotuneSection(r);
    ASSERT_EQ(out.size(), in.size());

    // decode returns canonical (shape-key) order; re-encoding must
    // reproduce the exact bytes.
    ByteWriter w2;
    encodeAutotuneSection(w2, out);
    EXPECT_EQ(w2.data(), w.data());

    // Every input entry survives bit-exactly (costSec included).
    for (const AutotuneEntry &e : in) {
        bool found = false;
        for (const AutotuneEntry &d : out) {
            found |= d.m == e.m && d.n == e.n && d.k == e.k &&
                     d.variant.tileM == e.variant.tileM &&
                     d.variant.tileN == e.variant.tileN &&
                     d.variant.tileK == e.variant.tileK &&
                     std::memcmp(&d.costSec, &e.costSec,
                                 sizeof(double)) == 0;
        }
        EXPECT_TRUE(found) << e.m << "x" << e.n << "x" << e.k;
    }
}

TEST(AutotuneSection, EncodingIsOrderIndependent)
{
    std::vector<AutotuneEntry> in = sampleEntries();
    ByteWriter w;
    encodeAutotuneSection(w, in);

    std::reverse(in.begin(), in.end());
    ByteWriter wr;
    encodeAutotuneSection(wr, in);
    EXPECT_EQ(wr.data(), w.data());
}

TEST(AutotuneSection, EmptyRoundTrips)
{
    ByteWriter w;
    encodeAutotuneSection(w, {});
    ByteReader r(w.data(), "test-autotune-empty");
    EXPECT_TRUE(decodeAutotuneSection(r).empty());
}

TEST(AutotuneSection, PacksTighterThanRawEntries)
{
    std::vector<AutotuneEntry> in;
    for (int i = 0; i < 64; ++i)
        in.push_back({512 + i, 512, 64 * (i % 4 + 1),
                      gemmVariantMenu()[i % gemmVariantMenu().size()],
                      0.0});
    ByteWriter packed;
    encodeAutotuneSection(packed, in);
    ByteWriter raw;
    for (const AutotuneEntry &e : in)
        encodeAutotuneEntry(raw, e);
    EXPECT_LT(packed.data().size(), raw.data().size() / 2);
}

TEST(AutotuneSection, TruncatedPayloadThrowsRecoverable)
{
    ByteWriter w;
    encodeAutotuneSection(w, sampleEntries());
    std::string bytes = w.data();
    bytes.resize(bytes.size() / 2);
    ByteReader r(bytes, "test-autotune-trunc",
                 ByteReader::OnError::Throw);
    EXPECT_THROW(decodeAutotuneSection(r), RecoverableError);
}

TEST(AutotuneSection, HostileCountIsBoundedBeforeAllocation)
{
    // A huge entry count with a near-empty payload must fail on
    // truncation, not allocate by the count.
    ByteWriter w;
    w.u64(uint64_t(1) << 62);
    ByteReader r(w.data(), "test-autotune-count",
                 ByteReader::OnError::Throw);
    EXPECT_THROW(decodeAutotuneSection(r), RecoverableError);
}

TEST(AutotunerDeath, MeasuredRequiresDevice)
{
    EXPECT_DEATH(Autotuner(Autotuner::Mode::Measured, nullptr),
                 "device");
}

TEST(AutotunerDeath, RejectsBadDims)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    EXPECT_DEATH(tuner.select(0, 10, 10), "non-positive");
}

} // anonymous namespace
} // namespace nn
} // namespace seqpoint
