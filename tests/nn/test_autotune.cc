/**
 * @file
 * Tests for the GEMM autotuner.
 */

#include <gtest/gtest.h>

#include "nn/autotune.hh"
#include "nn/kernel_gen.hh"
#include "sim/gpu.hh"

namespace seqpoint {
namespace nn {
namespace {

TEST(GemmVariant, SuffixFormat)
{
    GemmVariant v{128, 64, 16};
    EXPECT_EQ(v.suffix(), "MT128x64_K16");
}

TEST(VariantMenu, NonEmptyAndOrdered)
{
    const auto &menu = gemmVariantMenu();
    ASSERT_GE(menu.size(), 4u);
    for (size_t i = 1; i < menu.size(); ++i) {
        EXPECT_LE(menu[i].tileM * menu[i].tileN,
                  menu[i - 1].tileM * menu[i - 1].tileN);
    }
}

TEST(Autotuner, HeuristicCachesPerShape)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    const GemmVariant &a = tuner.select(1024, 1024, 256);
    const GemmVariant &b = tuner.select(1024, 1024, 256);
    EXPECT_EQ(&a, &b); // same cached object
    EXPECT_EQ(tuner.cacheSize(), 1u);
    tuner.select(64, 64, 64);
    EXPECT_EQ(tuner.cacheSize(), 2u);
}

TEST(Autotuner, HeuristicHasZeroTuningCost)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    tuner.select(512, 512, 512);
    EXPECT_DOUBLE_EQ(tuner.tuningCostSec(), 0.0);
}

TEST(Autotuner, HeuristicPrefersBigTilesForBigGemm)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    const GemmVariant &v = tuner.select(4096, 4096, 1024);
    EXPECT_GE(v.tileM * v.tileN, 64u * 64u);
}

TEST(Autotuner, HeuristicAvoidsWasteOnSkinnyGemm)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    const GemmVariant &v = tuner.select(4096, 64, 1024);
    // An N-64 GEMM should not pad the N dimension beyond 64.
    EXPECT_LE(v.tileN, 64u);
}

TEST(Autotuner, MeasuredAccruesTuningCost)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    Autotuner tuner(Autotuner::Mode::Measured, &gpu);
    tuner.select(1024, 1024, 512);
    EXPECT_GT(tuner.tuningCostSec(), 0.0);
    double cost_after_one = tuner.tuningCostSec();
    tuner.select(1024, 1024, 512); // cached: no extra cost
    EXPECT_DOUBLE_EQ(tuner.tuningCostSec(), cost_after_one);
}

TEST(Autotuner, MeasuredPicksFastestCandidate)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    Autotuner tuner(Autotuner::Mode::Measured, &gpu);
    const GemmVariant &chosen = tuner.select(2048, 2048, 512);

    double chosen_time = gpu.execute(
        gemmKernelForVariant("probe", 2048, 2048, 512, chosen)).timeSec;
    for (const GemmVariant &v : gemmVariantMenu()) {
        double t = gpu.execute(
            gemmKernelForVariant("probe", 2048, 2048, 512, v)).timeSec;
        EXPECT_LE(chosen_time, t + 1e-15) << v.suffix();
    }
}

TEST(Autotuner, ResetClearsCacheAndCost)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    Autotuner tuner(Autotuner::Mode::Measured, &gpu);
    tuner.select(256, 256, 256);
    tuner.reset();
    EXPECT_EQ(tuner.cacheSize(), 0u);
    EXPECT_DOUBLE_EQ(tuner.tuningCostSec(), 0.0);
}

TEST(AutotunerDeath, MeasuredRequiresDevice)
{
    EXPECT_DEATH(Autotuner(Autotuner::Mode::Measured, nullptr),
                 "device");
}

TEST(AutotunerDeath, RejectsBadDims)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    EXPECT_DEATH(tuner.select(0, 10, 10), "non-positive");
}

} // anonymous namespace
} // namespace nn
} // namespace seqpoint
