/**
 * @file
 * Tests for layer lowering: kernel counts, SL scaling, axis handling.
 */

#include <gtest/gtest.h>

#include <memory>

#include "nn/autotune.hh"
#include "nn/layer.hh"
#include "nn/layers/attention.hh"
#include "nn/layers/batchnorm.hh"
#include "nn/layers/conv2d.hh"
#include "nn/layers/embedding.hh"
#include "nn/layers/fully_connected.hh"
#include "nn/layers/recurrent.hh"
#include "nn/layers/softmax_loss.hh"
#include "nn/model.hh"

namespace seqpoint {
namespace nn {
namespace {

struct LowerFixture {
    Autotuner tuner{Autotuner::Mode::Heuristic};
    std::vector<sim::KernelDesc> out;

    LowerCtx
    ctx(unsigned batch, int64_t sl, int64_t tgt)
    {
        LowerCtx c;
        c.batch = batch;
        c.seqLen = sl;
        c.tgtLen = tgt;
        c.tuner = &tuner;
        c.out = &out;
        return c;
    }

    uint64_t
    launches() const
    {
        uint64_t total = 0;
        for (const auto &k : out)
            total += k.repeat;
        return total;
    }

    double
    flops() const
    {
        double total = 0.0;
        for (const auto &k : out)
            total += k.flops * static_cast<double>(k.repeat);
        return total;
    }
};

TEST(LowerCtx, StepsFollowAxis)
{
    LowerFixture f;
    LowerCtx c = f.ctx(64, 100, 95);
    EXPECT_EQ(c.steps(TimeAxis::Source), 100);
    EXPECT_EQ(c.steps(TimeAxis::Target), 95);
    EXPECT_EQ(c.steps(TimeAxis::Fixed, 7), 7);
}

TEST(Recurrent, UnrollScalesWithSeqLen)
{
    LowerFixture f;
    RecurrentLayer lstm("l", CellType::Lstm, 1024, 1024, false,
                        TimeAxis::Source);
    LowerCtx c10 = f.ctx(64, 10, 10);
    lstm.lowerForward(c10);
    uint64_t launches_10 = f.launches();

    LowerFixture g;
    LowerCtx c20 = g.ctx(64, 20, 20);
    lstm.lowerForward(c20);
    uint64_t launches_20 = g.launches();

    // Per-step kernels double; the fused input GEMM stays at 1.
    EXPECT_EQ(launches_20 - launches_10, 2u * 10u);
}

TEST(Recurrent, BidirectionalDoublesWork)
{
    LowerFixture uni, bi;
    RecurrentLayer u("u", CellType::Gru, 800, 800, false,
                     TimeAxis::Source);
    RecurrentLayer b("b", CellType::Gru, 800, 800, true,
                     TimeAxis::Source);
    LowerCtx cu = uni.ctx(64, 50, 50);
    u.lowerForward(cu);
    LowerCtx cb = bi.ctx(64, 50, 50);
    b.lowerForward(cb);
    EXPECT_NEAR(bi.flops() / uni.flops(), 2.0, 0.05);
    EXPECT_EQ(b.outputDim(), 1600);
    EXPECT_EQ(u.outputDim(), 800);
}

TEST(Recurrent, LstmVsGruGateRatio)
{
    LowerFixture l, g;
    RecurrentLayer lstm("l", CellType::Lstm, 512, 512, false,
                        TimeAxis::Source);
    RecurrentLayer gru("g", CellType::Gru, 512, 512, false,
                       TimeAxis::Source);
    LowerCtx cl = l.ctx(64, 30, 30);
    lstm.lowerForward(cl);
    LowerCtx cg = g.ctx(64, 30, 30);
    gru.lowerForward(cg);
    EXPECT_NEAR(l.flops() / g.flops(), 4.0 / 3.0, 0.05);
    EXPECT_EQ(gateCount(CellType::Lstm), 4);
    EXPECT_EQ(gateCount(CellType::Gru), 3);
}

TEST(Recurrent, ParamCount)
{
    RecurrentLayer lstm("l", CellType::Lstm, 1024, 1024, false,
                        TimeAxis::Source);
    EXPECT_EQ(lstm.paramCount(), 4ull * 1024 * (1024 + 1024 + 1));
}

TEST(FullyConnected, TableOneForwardDims)
{
    // GNMT classifier, Table I GEMM-a: M=36549, K=1024, N=64*T.
    LowerFixture f;
    FullyConnectedLayer fc("classifier", 1024, 36549, TimeAxis::Target);
    LowerCtx c = f.ctx(64, 99, 94);
    fc.lowerForward(c);
    ASSERT_EQ(f.out.size(), 1u);
    EXPECT_EQ(f.out[0].gemmM, 36549);
    EXPECT_EQ(f.out[0].gemmK, 1024);
    EXPECT_EQ(f.out[0].gemmN, 64 * 94); // 6016 as in Table I
}

TEST(FullyConnected, TableOneBackwardDims)
{
    // Table I GEMM-b: M=1024, K=36549, N=64*T.
    LowerFixture f;
    FullyConnectedLayer fc("classifier", 1024, 36549, TimeAxis::Target);
    LowerCtx c = f.ctx(64, 99, 94);
    fc.lowerBackward(c);
    ASSERT_EQ(f.out.size(), 2u);
    EXPECT_EQ(f.out[0].gemmM, 1024);
    EXPECT_EQ(f.out[0].gemmK, 36549);
    EXPECT_EQ(f.out[0].gemmN, 6016);
}

TEST(Conv2d, Ds2ShapePipeline)
{
    Conv2dLayer conv1("conv1", 1, 32, 11, 41, 2, 2, 161,
                      TimeAxis::Source, 2);
    EXPECT_EQ(conv1.outWidth(), 81);
    LowerFixture f;
    LowerCtx c = f.ctx(64, 200, 200);
    EXPECT_EQ(conv1.outHeight(c), 200); // 2*SL strided by 2 -> SL

    Conv2dLayer conv2("conv2", 32, 32, 11, 21, 1, 2, 81,
                      TimeAxis::Source, 1);
    EXPECT_EQ(conv2.outWidth(), 41);
}

TEST(Conv2d, FixedAxisIgnoresSeqLen)
{
    Conv2dLayer conv("c", 3, 64, 3, 3, 1, 1, 32, TimeAxis::Fixed, 1,
                     32);
    LowerFixture a, b;
    LowerCtx ca = a.ctx(64, 10, 10);
    conv.lowerForward(ca);
    LowerCtx cb = b.ctx(64, 500, 500);
    conv.lowerForward(cb);
    EXPECT_DOUBLE_EQ(a.flops(), b.flops());
}

TEST(Attention, CostScalesWithBothLengths)
{
    AttentionLayer attn("a", 1024, TimeAxis::Target);
    LowerFixture f1, f2, f3;
    LowerCtx c1 = f1.ctx(64, 50, 50);
    attn.lowerForward(c1);
    LowerCtx c2 = f2.ctx(64, 100, 50);
    attn.lowerForward(c2);
    LowerCtx c3 = f3.ctx(64, 50, 100);
    attn.lowerForward(c3);
    EXPECT_GT(f2.flops(), f1.flops()); // longer keys
    EXPECT_GT(f3.flops(), f1.flops()); // more queries
}

TEST(Embedding, LookupsFollowAxis)
{
    EmbeddingLayer src("s", 36549, 1024, TimeAxis::Source);
    EmbeddingLayer tgt("t", 36549, 1024, TimeAxis::Target);
    LowerFixture fs, ft;
    LowerCtx cs = fs.ctx(64, 100, 10);
    src.lowerForward(cs);
    LowerCtx ct = ft.ctx(64, 100, 10);
    tgt.lowerForward(ct);
    EXPECT_GT(fs.out[0].bytesOut, ft.out[0].bytesOut);
    EXPECT_EQ(src.paramCount(), 36549ull * 1024ull);
}

TEST(SoftmaxLoss, BackwardTouchesFullProbMatrix)
{
    SoftmaxLossLayer loss("l", 36549, TimeAxis::Target);
    LowerFixture f;
    LowerCtx c = f.ctx(64, 20, 19);
    loss.lowerBackward(c);
    ASSERT_EQ(f.out.size(), 1u);
    EXPECT_DOUBLE_EQ(f.out[0].flops, 64.0 * 19.0 * 36549.0);
    EXPECT_EQ(loss.paramCount(), 0u);
}

TEST(BatchNorm, ElemsScaleWithSeqLen)
{
    BatchNormLayer bn("bn", 1312, 32, TimeAxis::Source);
    LowerFixture a, b;
    LowerCtx ca = a.ctx(64, 100, 100);
    bn.lowerForward(ca);
    LowerCtx cb = b.ctx(64, 200, 200);
    bn.lowerForward(cb);
    EXPECT_NEAR(b.flops() / a.flops(), 2.0, 1e-9);
}

TEST(LayerDeath, RejectsBadConstruction)
{
    EXPECT_DEATH(RecurrentLayer("x", CellType::Lstm, 0, 10, false,
                                TimeAxis::Source), "bad dimensions");
    EXPECT_DEATH(EmbeddingLayer("x", 0, 10, TimeAxis::Source),
                 "bad dimensions");
}

} // anonymous namespace
} // namespace nn
} // namespace seqpoint
