/**
 * @file
 * Tests for kernel generation: FLOP counts, traffic models, naming.
 */

#include <gtest/gtest.h>

#include "nn/autotune.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {
namespace {

TEST(GemmGen, FlopsAndDims)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    sim::KernelDesc k = makeGemm("g", 100, 200, 300, tuner);
    EXPECT_DOUBLE_EQ(k.flops, 2.0 * 100 * 200 * 300);
    EXPECT_EQ(k.gemmM, 100);
    EXPECT_EQ(k.gemmN, 200);
    EXPECT_EQ(k.gemmK, 300);
    EXPECT_EQ(k.klass, sim::KernelClass::Gemm);
}

TEST(GemmGen, NameCarriesVariant)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    sim::KernelDesc k = makeGemm("fc_fwd", 512, 512, 512, tuner);
    EXPECT_EQ(k.name.rfind("fc_fwd_MT", 0), 0u) << k.name;
}

TEST(GemmGen, SmallerTilesMeanMoreTraffic)
{
    GemmVariant big{128, 128, 16};
    GemmVariant small{32, 32, 16};
    sim::KernelDesc kb = gemmKernelForVariant("g", 1024, 1024, 512, big);
    sim::KernelDesc ks = gemmKernelForVariant("g", 1024, 1024, 512,
                                              small);
    EXPECT_GT(ks.bytesIn, kb.bytesIn);
    EXPECT_DOUBLE_EQ(ks.flops, kb.flops);
}

TEST(GemmGen, SmallTilesLoseEfficiency)
{
    GemmVariant big{128, 128, 16};
    GemmVariant small{16, 16, 16};
    sim::KernelDesc kb = gemmKernelForVariant("g", 512, 512, 512, big);
    sim::KernelDesc ks = gemmKernelForVariant("g", 512, 512, 512, small);
    EXPECT_GT(kb.effScale, ks.effScale);
}

TEST(ConvGen, OutputLengths)
{
    EXPECT_EQ(convOutLen(100, 11, 2), 50);
    EXPECT_EQ(convOutLen(161, 41, 2), 81);
    EXPECT_EQ(convOutLen(81, 21, 2), 41);
    EXPECT_EQ(convOutLen(7, 3, 1), 7);
}

TEST(ConvGen, ImplicitGemmShape)
{
    Autotuner tuner(Autotuner::Mode::Heuristic);
    sim::KernelDesc k = makeConv2d("conv1", 64, 1, 32, 200, 161, 11, 41,
                                   2, 2, tuner);
    EXPECT_EQ(k.gemmM, 32);
    EXPECT_EQ(k.gemmK, 1 * 11 * 41);
    EXPECT_EQ(k.gemmN, 64 * 100 * 81);
}

TEST(SoftmaxGen, BlockVariantDependsOnCols)
{
    sim::KernelDesc small = makeSoftmax("sm", 64, 100);
    sim::KernelDesc large = makeSoftmax("sm", 64, 900);
    EXPECT_NE(small.name, large.name);
    EXPECT_EQ(small.name, "sm_b128");
    EXPECT_EQ(large.name, "sm_b1024");
}

TEST(SoftmaxGen, TrafficScalesWithElems)
{
    sim::KernelDesc a = makeSoftmax("sm", 100, 1000);
    sim::KernelDesc b = makeSoftmax("sm", 200, 1000);
    EXPECT_NEAR(b.bytesIn / a.bytesIn, 2.0, 1e-12);
}

TEST(EmbeddingGen, TableIsL2WorkingSet)
{
    sim::KernelDesc k = makeEmbeddingGather("emb", 1000, 1024, 36549);
    EXPECT_DOUBLE_EQ(k.workingSetL2, 36549.0 * 1024.0 * 4.0);
    EXPECT_EQ(k.klass, sim::KernelClass::Embedding);
}

TEST(EmbeddingGen, BiggerVocabSlower)
{
    // Observation 6: vocabulary size affects runtime.
    sim::Gpu gpu(sim::GpuConfig::config1());
    sim::KernelDesc small_v = makeEmbeddingGather("emb", 4096, 1024,
                                                  1000);
    sim::KernelDesc big_v = makeEmbeddingGather("emb", 4096, 1024,
                                                200000);
    EXPECT_LT(gpu.execute(small_v).timeSec, gpu.execute(big_v).timeSec);
}

TEST(BatchNormGen, TwoPassTraffic)
{
    sim::KernelDesc k = makeBatchNorm("bn", 1000);
    EXPECT_DOUBLE_EQ(k.bytesIn, 8000.0);
    EXPECT_DOUBLE_EQ(k.bytesOut, 4000.0);
}

TEST(ScalarGen, TinyLaunch)
{
    sim::KernelDesc k = makeScalarOp("lr");
    EXPECT_EQ(k.klass, sim::KernelClass::Scalar);
    EXPECT_LT(k.workItems, 100.0);
}

TEST(KernelGenDeath, RejectsBadInputs)
{
    EXPECT_DEATH(makeSoftmax("sm", 0, 10), "non-positive");
    EXPECT_DEATH(makeEmbeddingGather("e", 10, 10, 0), "non-positive");
    EXPECT_DEATH(convOutLen(0, 3, 1), "non-positive");
}

} // anonymous namespace
} // namespace nn
} // namespace seqpoint
