/**
 * @file
 * Tests for the model graph and iteration lowering.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "nn/autotune.hh"
#include "nn/layers/fully_connected.hh"
#include "nn/layers/recurrent.hh"
#include "nn/layers/softmax_loss.hh"
#include "nn/model.hh"

namespace seqpoint {
namespace nn {
namespace {

Model
tinyModel()
{
    Model m("tiny");
    m.add(std::make_unique<RecurrentLayer>("rnn", CellType::Gru, 64, 64,
                                           false, TimeAxis::Source));
    m.add(std::make_unique<FullyConnectedLayer>("fc", 64, 29,
                                                TimeAxis::Source));
    m.add(std::make_unique<SoftmaxLossLayer>("loss", 29,
                                             TimeAxis::Source));
    return m;
}

TEST(Model, ParamCountSumsLayers)
{
    Model m = tinyModel();
    uint64_t expected = 3ull * 64 * (64 + 64 + 1) // GRU
        + 64ull * 29 + 29;                        // FC
    EXPECT_EQ(m.paramCount(), expected);
    EXPECT_EQ(m.numLayers(), 3u);
}

TEST(Model, TargetLenRatio)
{
    Model m("m");
    m.setTargetLenRatio(0.95);
    EXPECT_EQ(m.targetLenFor(99), 94);
    EXPECT_EQ(m.targetLenFor(9), 9);   // 8.55 rounds to 9
    EXPECT_EQ(m.targetLenFor(1), 1);
    EXPECT_EQ(m.targetLenFor(100), 95);
}

TEST(Model, LoweringIsDeterministic)
{
    Model m = tinyModel();
    Autotuner t1(Autotuner::Mode::Heuristic);
    Autotuner t2(Autotuner::Mode::Heuristic);
    auto a = m.lowerIteration(64, 37, t1);
    auto b = m.lowerIteration(64, 37, t2);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_DOUBLE_EQ(a[i].flops, b[i].flops);
        EXPECT_EQ(a[i].repeat, b[i].repeat);
    }
}

TEST(Model, IterationIncludesOptimizerAndLoss)
{
    Model m = tinyModel();
    Autotuner tuner(Autotuner::Mode::Heuristic);
    auto kernels = m.lowerIteration(64, 10, tuner);

    std::set<std::string> names;
    for (const auto &k : kernels)
        names.insert(k.name);
    EXPECT_TRUE(names.count("opt_grad_norm"));
    EXPECT_TRUE(names.count("opt_sgd_update"));
    EXPECT_TRUE(names.count("loss_grad_bwd"));
}

TEST(Model, InferenceIsForwardOnly)
{
    Model m = tinyModel();
    Autotuner tuner(Autotuner::Mode::Heuristic);
    auto train = m.lowerIteration(64, 10, tuner);
    auto infer = m.lowerInference(64, 10, tuner);
    EXPECT_LT(infer.size(), train.size());
    for (const auto &k : infer) {
        EXPECT_EQ(k.name.find("bwd"), std::string::npos) << k.name;
        EXPECT_EQ(k.name.find("opt_"), std::string::npos) << k.name;
    }
}

TEST(Model, LongerSequenceMoreWork)
{
    Model m = tinyModel();
    Autotuner tuner(Autotuner::Mode::Heuristic);
    auto short_k = m.lowerIteration(64, 10, tuner);
    auto long_k = m.lowerIteration(64, 40, tuner);

    auto total_flops = [](const std::vector<sim::KernelDesc> &ks) {
        double f = 0.0;
        for (const auto &k : ks)
            f += k.flops * static_cast<double>(k.repeat);
        return f;
    };
    EXPECT_GT(total_flops(long_k), 2.0 * total_flops(short_k));
}

TEST(ModelDeath, RejectsBadArguments)
{
    Model m = tinyModel();
    Autotuner tuner(Autotuner::Mode::Heuristic);
    EXPECT_DEATH(m.lowerIteration(0, 10, tuner), "batch");
    EXPECT_DEATH(m.lowerIteration(64, 0, tuner), "sequence");
    EXPECT_DEATH(m.setTargetLenRatio(0.0), "ratio");
}

} // anonymous namespace
} // namespace nn
} // namespace seqpoint
