/**
 * @file
 * Unit tests for the histogram.
 */

#include <gtest/gtest.h>

#include "common/histogram.hh"

namespace seqpoint {
namespace {

TEST(Histogram, CountsLandInRightBuckets)
{
    Histogram h(0, 99, 10);
    h.add(5);
    h.add(15);
    h.add(95);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(10, 19, 2);
    h.add(-100);
    h.add(500);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
}

TEST(Histogram, BucketBoundsTileTheRange)
{
    Histogram h(0, 99, 4);
    EXPECT_EQ(h.bucketLo(0), 0);
    EXPECT_EQ(h.bucketHi(3), 99);
    for (size_t i = 0; i + 1 < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucketHi(i) + 1, h.bucketLo(i + 1));
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(0, 9, 1);
    h.add(3, 7);
    EXPECT_EQ(h.bucketCount(0), 7u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0, 9, 2);
    h.add(1, 10);
    h.add(8, 5);
    std::string out = h.render(20);
    EXPECT_NE(out.find("####"), std::string::npos);
    EXPECT_NE(out.find("10"), std::string::npos);
}

TEST(Histogram, SingleValueRange)
{
    Histogram h(5, 5, 3);
    h.add(5);
    EXPECT_EQ(h.total(), 1u);
}

TEST(HistogramDeath, RejectsBadConstruction)
{
    EXPECT_DEATH(Histogram(10, 5, 2), "hi < lo");
    EXPECT_DEATH(Histogram(0, 10, 0), "zero");
}

} // anonymous namespace
} // namespace seqpoint
