/**
 * @file
 * Tests for the byte-stream varint and packed-double codecs that the
 * compact snapshot timing section is built on.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/bytestream.hh"

namespace seqpoint {
namespace {

TEST(Varint, RoundTripsBoundaryValues)
{
    const uint64_t values[] = {
        0, 1, 127, 128, 129, 16383, 16384, 1u << 20,
        (1ull << 35) - 1, 1ull << 63,
        std::numeric_limits<uint64_t>::max(),
    };
    ByteWriter w;
    for (uint64_t v : values)
        w.vu64(v);
    // One byte for values below 128, never more than ten.
    EXPECT_LE(w.size(), 10u * std::size(values));

    ByteReader r(w.data(), "varint");
    for (uint64_t v : values)
        EXPECT_EQ(r.vu64(), v);
    EXPECT_TRUE(r.done());
}

TEST(Varint, SmallValuesAreOneByte)
{
    ByteWriter w;
    w.vu64(0);
    w.vu64(127);
    EXPECT_EQ(w.size(), 2u);
}

TEST(Varint, ZigzagRoundTripsSignedValues)
{
    const int64_t values[] = {
        0, 1, -1, 63, -64, 64, -65,
        std::numeric_limits<int64_t>::max(),
        std::numeric_limits<int64_t>::min(),
    };
    ByteWriter w;
    for (int64_t v : values)
        w.vi64(v);
    ByteReader r(w.data(), "zigzag");
    for (int64_t v : values)
        EXPECT_EQ(r.vi64(), v);
    EXPECT_TRUE(r.done());
}

TEST(VarintDeathTest, RejectsTruncationAndOverflow)
{
    // Truncated: a continuation bit with nothing after it.
    EXPECT_DEATH(
        {
            ByteReader r(std::string_view("\x80", 1), "trunc");
            (void)r.vu64();
        },
        "truncated");

    // Overlong: eleven continuation bytes.
    std::string overlong(10, '\x80');
    overlong.push_back('\x01');
    EXPECT_DEATH(
        {
            ByteReader r(overlong, "overlong");
            (void)r.vu64();
        },
        "varint");
}

TEST(PackedDouble, RoundTripsAllForms)
{
    const double values[] = {
        0.0, 1.0, -1.0, 42.0, -9007199254740992.0,
        9007199254740992.0, 0.5, 3.14159, -0.0, 1e300,
        std::numeric_limits<double>::infinity(),
    };
    ByteWriter w;
    double prev = 0.0;
    for (double v : values) {
        w.f64Packed(v, prev);
        prev = v;
    }
    ByteReader r(w.data(), "packed");
    prev = 0.0;
    for (double v : values) {
        double got = r.f64Packed(prev);
        EXPECT_EQ(std::bit_cast<uint64_t>(got),
                  std::bit_cast<uint64_t>(v))
            << v;
        prev = v;
    }
    EXPECT_TRUE(r.done());
}

TEST(PackedDouble, SameValueIsOneByte)
{
    ByteWriter w;
    w.f64Packed(123.456, 123.456);
    EXPECT_EQ(w.size(), 1u);

    // -0.0 vs 0.0 are not bit-identical: must not take the same-tag.
    ByteWriter w2;
    w2.f64Packed(-0.0, 0.0);
    ByteReader r(w2.data(), "negzero");
    EXPECT_TRUE(std::signbit(r.f64Packed(0.0)));
}

TEST(PackedDouble, IntegralDeltasStaySmall)
{
    // Adjacent large integral values: 2 bytes (tag + varint delta),
    // not 9.
    ByteWriter w;
    w.f64Packed(1048640.0, 1048576.0);
    EXPECT_LE(w.size(), 3u);
    ByteReader r(w.data(), "delta");
    EXPECT_EQ(r.f64Packed(1048576.0), 1048640.0);
}

TEST(PackedDoubleDeathTest, RejectsUnknownTag)
{
    EXPECT_DEATH(
        {
            ByteReader r(std::string_view("\x07", 1), "badtag");
            (void)r.f64Packed(0.0);
        },
        "packed-double tag");
}

} // anonymous namespace
} // namespace seqpoint
