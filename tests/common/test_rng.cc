/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "common/stats_math.hh"

namespace seqpoint {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123, 5), b(123, 5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next32() == b.next32());
    EXPECT_LT(same, 4);
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(1, 10), b(1, 11);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next32() == b.next32());
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.uniformInt(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(3);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        seen[static_cast<size_t>(rng.uniformInt(0, 7))]++;
    for (int count : seen)
        EXPECT_GT(count, 300); // ~500 expected each
}

TEST(Rng, UniformDoubleInHalfOpenUnit)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniformDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NormalMomentsRoughlyMatch)
{
    Rng rng(17);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.normal(10.0, 3.0));
    EXPECT_NEAR(mean(xs), 10.0, 0.1);
    EXPECT_NEAR(stdev(xs), 3.0, 0.1);
}

TEST(Rng, GammaMomentsRoughlyMatch)
{
    Rng rng(23);
    double shape = 2.5, scale = 4.0;
    std::vector<double> xs;
    for (int i = 0; i < 30000; ++i)
        xs.push_back(rng.gamma(shape, scale));
    EXPECT_NEAR(mean(xs), shape * scale, 0.25);
}

TEST(Rng, GammaShapeBelowOne)
{
    Rng rng(29);
    std::vector<double> xs;
    for (int i = 0; i < 30000; ++i) {
        double v = rng.gamma(0.5, 2.0);
        EXPECT_GE(v, 0.0);
        xs.push_back(v);
    }
    EXPECT_NEAR(mean(xs), 1.0, 0.1);
}

TEST(Rng, LogNormalPositive)
{
    Rng rng(31);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(1.0, 0.5), 0.0);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(37);
    std::vector<double> w{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        counts[rng.weightedIndex(w)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_GT(counts[2], counts[0]);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(41);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkedChildrenIndependent)
{
    Rng parent(55);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (c1.next32() == c2.next32());
    EXPECT_LT(same, 4);
}

TEST(RngDeath, UniformIntRejectsBadRange)
{
    Rng rng(1);
    EXPECT_DEATH(rng.uniformInt(5, 4), "hi");
}

} // anonymous namespace
} // namespace seqpoint
