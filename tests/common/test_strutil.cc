/**
 * @file
 * Unit tests for the string utilities.
 */

#include <gtest/gtest.h>

#include "common/strutil.hh"

namespace seqpoint {
namespace {

TEST(Csprintf, FormatsBasicTypes)
{
    EXPECT_EQ(csprintf("x=%d", 42), "x=42");
    EXPECT_EQ(csprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(csprintf("%.2f", 3.14159), "3.14");
}

TEST(Csprintf, EmptyAndNoArgs)
{
    EXPECT_EQ(csprintf("%s", ""), "");
    EXPECT_EQ(csprintf("plain"), "plain");
}

TEST(Csprintf, LongOutput)
{
    std::string big(5000, 'q');
    EXPECT_EQ(csprintf("%s", big.c_str()).size(), 5000u);
}

TEST(Join, JoinsWithSeparator)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({"solo"}, ","), "solo");
    EXPECT_EQ(join({}, ","), "");
}

TEST(Split, SplitsOnSeparator)
{
    auto fields = split("a,b,c", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "c");
}

TEST(Split, PreservesEmptyFields)
{
    auto fields = split("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[3], "");
}

TEST(Cat, StreamsMixedTypes)
{
    EXPECT_EQ(cat("n=", 5, " f=", 1.5), "n=5 f=1.5");
}

TEST(CompactDouble, TrimsTrailingZeros)
{
    EXPECT_EQ(compactDouble(1.5), "1.5");
    EXPECT_EQ(compactDouble(2.0), "2");
    EXPECT_EQ(compactDouble(0.125, 3), "0.125");
    EXPECT_EQ(compactDouble(0.1239, 3), "0.124");
}

TEST(CompactDouble, NormalisesNegativeZero)
{
    // Tiny negatives used to zero-trim to "-0"; the sign carries no
    // information at the requested precision.
    EXPECT_EQ(compactDouble(-0.0004, 2), "0");
    EXPECT_EQ(compactDouble(-0.0004, 3), "0");
    EXPECT_EQ(compactDouble(-0.4, 0), "0");
    EXPECT_EQ(compactDouble(-0.0), "0");
    // Representable negatives keep their sign.
    EXPECT_EQ(compactDouble(-0.0004, 4), "-0.0004");
    EXPECT_EQ(compactDouble(-1.5), "-1.5");
}

} // anonymous namespace
} // namespace seqpoint
