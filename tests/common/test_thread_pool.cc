/**
 * @file
 * Tests for the profiling thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace seqpoint {
namespace {

TEST(ThreadPool, RunsEveryQueuedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.run([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count, 100);
}

TEST(ThreadPool, WaitIsIdempotentOnIdlePool)
{
    ThreadPool pool(2);
    pool.wait();
    pool.run([] {});
    pool.wait();
    pool.wait();
}

TEST(ThreadPool, ParallelForCoversEachIndexOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> seen(257);
    pool.parallelFor(seen.size(), [&seen](size_t i) { ++seen[i]; });
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesEdgeCounts)
{
    ThreadPool pool(2);
    int zero_calls = 0;
    pool.parallelFor(0, [&](size_t) { ++zero_calls; });
    EXPECT_EQ(zero_calls, 0);

    std::atomic<int> one_calls{0};
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++one_calls;
    });
    EXPECT_EQ(one_calls, 1);
}

TEST(ThreadPool, IndexDerivedRngIsDeterministic)
{
    // The parallel-sweep contract: tasks derive randomness from their
    // index, so results match a serial loop bit-for-bit regardless of
    // scheduling.
    const size_t n = 64;

    std::vector<double> serial(n);
    for (size_t i = 0; i < n; ++i) {
        Rng child = Rng(99).fork(i);
        serial[i] = child.uniformDouble();
    }

    std::vector<double> parallel(n);
    ThreadPool pool(4);
    pool.parallelFor(n, [&parallel](size_t i) {
        Rng child = Rng(99).fork(i);
        parallel[i] = child.uniformDouble();
    });

    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(serial[i], parallel[i]);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletesParallelFor)
{
    // The caller participates in the drain, so a 1-worker pool must
    // not deadlock even when the worker is busy with queued tasks.
    ThreadPool pool(1);
    std::atomic<int> count{0};
    pool.run([&count] { ++count; });
    pool.parallelFor(32, [&count](size_t) { ++count; });
    pool.wait();
    EXPECT_EQ(count, 33);
}

} // anonymous namespace
} // namespace seqpoint
