/**
 * @file
 * Tests for the profiling thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace seqpoint {
namespace {

TEST(ThreadPool, RunsEveryQueuedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.run([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count, 100);
}

TEST(ThreadPool, WaitIsIdempotentOnIdlePool)
{
    ThreadPool pool(2);
    pool.wait();
    pool.run([] {});
    pool.wait();
    pool.wait();
}

TEST(ThreadPool, ParallelForCoversEachIndexOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> seen(257);
    pool.parallelFor(seen.size(), [&seen](size_t i) { ++seen[i]; });
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesEdgeCounts)
{
    ThreadPool pool(2);
    int zero_calls = 0;
    pool.parallelFor(0, [&](size_t) { ++zero_calls; });
    EXPECT_EQ(zero_calls, 0);

    std::atomic<int> one_calls{0};
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++one_calls;
    });
    EXPECT_EQ(one_calls, 1);
}

TEST(ThreadPool, IndexDerivedRngIsDeterministic)
{
    // The parallel-sweep contract: tasks derive randomness from their
    // index, so results match a serial loop bit-for-bit regardless of
    // scheduling.
    const size_t n = 64;

    std::vector<double> serial(n);
    for (size_t i = 0; i < n; ++i) {
        Rng child = Rng(99).fork(i);
        serial[i] = child.uniformDouble();
    }

    std::vector<double> parallel(n);
    ThreadPool pool(4);
    pool.parallelFor(n, [&parallel](size_t i) {
        Rng child = Rng(99).fork(i);
        parallel[i] = child.uniformDouble();
    });

    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(serial[i], parallel[i]);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletesParallelFor)
{
    // The caller participates in the drain, so a 1-worker pool must
    // not deadlock even when the worker is busy with queued tasks.
    ThreadPool pool(1);
    std::atomic<int> count{0};
    pool.run([&count] { ++count; });
    pool.parallelFor(32, [&count](size_t) { ++count; });
    pool.wait();
    EXPECT_EQ(count, 33);
}

TEST(ThreadPool, ThrowingTaskSurfacesOnWaitWithoutKillingThePool)
{
    // Before the fix, an escaped task exception hit the worker loop
    // and std::terminate'd the process (or, with a naive catch,
    // leaked `active` and deadlocked every later wait()).
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.run([] { throw std::runtime_error("task boom"); });
    for (int i = 0; i < 8; ++i)
        pool.run([&ran] { ++ran; });

    try {
        pool.wait();
        FAIL() << "wait() did not rethrow the task exception";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()), "task boom");
    }
    // The drain completed despite the throw...
    EXPECT_EQ(ran, 8);
    // ...the error was consumed, and the pool is fully reusable.
    pool.run([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran, 9);
}

TEST(ThreadPool, OnlyTheFirstTaskExceptionIsRethrown)
{
    ThreadPool pool(1); // serial queue: deterministic "first"
    pool.run([] { throw std::runtime_error("first"); });
    pool.run([] { throw std::runtime_error("second"); });
    try {
        pool.wait();
        FAIL() << "wait() did not rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()), "first");
    }
    pool.wait(); // idempotent again after the rethrow
}

TEST(ThreadPool, ThrowingParallelForBodyRethrowsAfterFullDrain)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(64, [&ran](size_t i) {
            if (i == 5)
                throw std::runtime_error("body boom");
            ++ran;
        });
        FAIL() << "parallelFor did not rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()), "body boom");
    }
    // A throwing index stops only its own participant; the others
    // keep draining, so most indices still ran.
    EXPECT_GT(ran, 0);
    EXPECT_LE(ran, 63);

    // The pool survives for the next (clean) parallelFor.
    std::atomic<int> clean{0};
    pool.parallelFor(16, [&clean](size_t) { ++clean; });
    EXPECT_EQ(clean, 16);
    pool.wait();
}

TEST(ThreadPool, ThrowingParallelForOnSingleWorkerDoesNotDeadlock)
{
    // Regression: the caller participates in the drain; if its own
    // body throw skipped the done-counting, parallelFor would wait
    // forever. Must complete promptly instead.
    ThreadPool pool(1);
    try {
        pool.parallelFor(8, [](size_t) {
            throw std::runtime_error("every index fails");
        });
        FAIL() << "parallelFor did not rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()), "every index fails");
    }
    pool.wait();
}

} // anonymous namespace
} // namespace seqpoint
