/**
 * @file
 * Tests for the deterministic fault injector: count-triggered and
 * seeded rules, detail pinning, shot caps, per-site accounting, and
 * the throwing faultPoint() wrapper.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/fault_injection.hh"

namespace seqpoint {
namespace {

/** Reset the process-wide injector around every test. */
class FaultInjectionTest : public testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectionTest, NothingArmedNothingFires)
{
    auto &inj = FaultInjector::instance();
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(inj.check("some.site", "detail").ok());
    // The disarmed fast path does not even count events.
    EXPECT_EQ(inj.occurrences("some.site"), 0u);
    EXPECT_EQ(inj.fired("some.site"), 0u);
    EXPECT_NO_THROW(faultPoint("some.site"));
}

TEST_F(FaultInjectionTest, CountTriggeredRuleFiresOnListedOccurrences)
{
    auto &inj = FaultInjector::instance();
    inj.armAt("io.read", "", {1, 3}, ErrorCode::IoError);

    EXPECT_FALSE(inj.check("io.read", "a").ok()); // occurrence 1
    EXPECT_TRUE(inj.check("io.read", "b").ok());  // occurrence 2
    Status third = inj.check("io.read", "c");     // occurrence 3
    ASSERT_FALSE(third.ok());
    EXPECT_EQ(third.code(), ErrorCode::IoError);
    EXPECT_NE(third.message().find("io.read"), std::string::npos);
    EXPECT_NE(third.message().find("occurrence 3"), std::string::npos);
    EXPECT_TRUE(inj.check("io.read", "d").ok());  // list exhausted

    EXPECT_EQ(inj.occurrences("io.read"), 4u);
    EXPECT_EQ(inj.fired("io.read"), 2u);
}

TEST_F(FaultInjectionTest, DetailPinningIgnoresOtherEvents)
{
    auto &inj = FaultInjector::instance();
    inj.armAt("cell", "1/2", {1}, ErrorCode::CellFailed);

    // Events with other details pass and do not advance the rule.
    EXPECT_TRUE(inj.check("cell", "0/0").ok());
    EXPECT_TRUE(inj.check("cell", "1/0").ok());
    Status hit = inj.check("cell", "1/2");
    ASSERT_FALSE(hit.ok());
    EXPECT_EQ(hit.code(), ErrorCode::CellFailed);
    // The rule's single shot is spent: the same detail now passes.
    EXPECT_TRUE(inj.check("cell", "1/2").ok());
    EXPECT_EQ(inj.fired("cell"), 1u);
}

TEST_F(FaultInjectionTest, SeededRuleIsDeterministic)
{
    auto &inj = FaultInjector::instance();
    auto run = [&](uint64_t seed) {
        inj.reset();
        inj.armSeeded("io", "", seed, 0.5, /*max_fires=*/1000,
                      ErrorCode::IoError);
        std::vector<bool> fires;
        for (int i = 0; i < 64; ++i)
            fires.push_back(!inj.check("io", "").ok());
        return fires;
    };

    auto a1 = run(42);
    auto a2 = run(42);
    auto b = run(43);
    EXPECT_EQ(a1, a2);       // same seed, same fault schedule
    EXPECT_NE(a1, b);        // different seed, different schedule
    // Rate 0.5 over 64 draws fires a plausible number of times.
    size_t count = 0;
    for (bool f : a1)
        count += f;
    EXPECT_GT(count, 16u);
    EXPECT_LT(count, 48u);
}

TEST_F(FaultInjectionTest, SeededRuleHonoursShotCap)
{
    auto &inj = FaultInjector::instance();
    inj.armSeeded("io", "", 7, 1.0, /*max_fires=*/3,
                  ErrorCode::Corruption);
    unsigned fired = 0;
    for (int i = 0; i < 10; ++i)
        fired += !inj.check("io", "").ok();
    // Rate 1.0 would fire every time; the cap stops it at 3, so a
    // retry budget of 4 is guaranteed to outlast the rule.
    EXPECT_EQ(fired, 3u);
    EXPECT_EQ(inj.fired("io"), 3u);
}

TEST_F(FaultInjectionTest, RulesAreIndependentAcrossSites)
{
    auto &inj = FaultInjector::instance();
    inj.armAt("a", "", {1});
    inj.armAt("b", "", {2});

    EXPECT_FALSE(inj.check("a", "").ok());
    EXPECT_TRUE(inj.check("b", "").ok());
    EXPECT_FALSE(inj.check("b", "").ok());
    EXPECT_EQ(inj.fired("a"), 1u);
    EXPECT_EQ(inj.fired("b"), 1u);
}

TEST_F(FaultInjectionTest, FaultPointThrowsRecoverableError)
{
    FaultInjector::instance().armAt("site", "", {1},
                                    ErrorCode::Timeout);
    try {
        faultPoint("site", "x");
        FAIL() << "faultPoint did not throw";
    } catch (const RecoverableError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::Timeout);
        EXPECT_NE(std::string(e.what()).find("site"),
                  std::string::npos);
    }
    EXPECT_NO_THROW(faultPoint("site", "x"));
}

TEST_F(FaultInjectionTest, ResetDisarmsAndZeroesCounters)
{
    auto &inj = FaultInjector::instance();
    inj.armAt("site", "", {1});
    EXPECT_FALSE(inj.check("site", "").ok());
    inj.reset();
    EXPECT_TRUE(inj.check("site", "").ok());
    EXPECT_EQ(inj.occurrences("site"), 0u);
    EXPECT_EQ(inj.fired("site"), 0u);
}

} // anonymous namespace
} // namespace seqpoint
