/**
 * @file
 * Tests for cooperative cancellation: token/scope semantics, the
 * classified unwind (Cancelled vs Timeout), and the three expensive
 * paths that must pass a cancellation through untouched -- the
 * profiling sweep, snapshot decode (no quarantine of a healthy
 * file), and scheduler cell evaluation (no retry burn) -- leaving
 * the Experiment and registry reusable afterwards. Also covers the
 * scheduler's deterministic seeded retry jitter.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "common/cancel.hh"
#include "common/fault_injection.hh"
#include "harness/experiment.hh"
#include "harness/scheduler.hh"
#include "harness/snapshot_registry.hh"
#include "harness/workloads.hh"

namespace seqpoint {
namespace {

namespace fs = std::filesystem;

TEST(CancelToken, ExplicitCancelClassifiesCancelled)
{
    CancelToken token;
    EXPECT_FALSE(token.fired());
    EXPECT_TRUE(token.status().ok());

    token.cancel();
    EXPECT_TRUE(token.fired());
    EXPECT_EQ(token.status("work").code(), ErrorCode::Cancelled);
    EXPECT_THROW(token.checkpoint("work"), CancelledError);
}

TEST(CancelToken, ExpiredDeadlineClassifiesTimeout)
{
    CancelToken token;
    token.armAfter(-1.0);
    EXPECT_TRUE(token.fired());
    EXPECT_EQ(token.status("work").code(), ErrorCode::Timeout);
    try {
        token.checkpoint("sweep");
        FAIL() << "checkpoint did not throw";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::Timeout);
        EXPECT_NE(e.status().message().find("sweep"),
                  std::string::npos);
    }

    // Infinity disarms; an un-fired token checkpoints for free.
    token.setDeadline(std::numeric_limits<double>::infinity());
    EXPECT_FALSE(token.fired());
    EXPECT_NO_THROW(token.checkpoint("work"));
}

TEST(CancelToken, CancelledErrorIsRecoverable)
{
    // Generic containment layers catch RecoverableError; a
    // cancellation must be classifiable there too.
    CancelToken token;
    token.cancel();
    try {
        token.checkpoint("x");
        FAIL() << "checkpoint did not throw";
    } catch (const RecoverableError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::Cancelled);
    }
}

TEST(CancelScope, ScopesNestAndRestore)
{
    EXPECT_EQ(currentCancelToken(), nullptr);
    EXPECT_NO_THROW(cancelCheckpoint("idle")); // bare TLS load

    CancelToken outer, inner;
    {
        CancelScope outer_scope(&outer);
        EXPECT_EQ(currentCancelToken(), &outer);
        {
            CancelScope inner_scope(&inner);
            EXPECT_EQ(currentCancelToken(), &inner);
        }
        EXPECT_EQ(currentCancelToken(), &outer);

        outer.cancel();
        EXPECT_THROW(cancelCheckpoint("work"), CancelledError);
    }
    EXPECT_EQ(currentCancelToken(), nullptr);
    EXPECT_NO_THROW(cancelCheckpoint("idle"));
}

TEST(CancelScope, ScopeIsPerThread)
{
    CancelToken token;
    token.cancel();
    CancelScope scope(&token);
    std::thread other([] {
        // The installing thread's scope must not leak here.
        EXPECT_EQ(currentCancelToken(), nullptr);
        EXPECT_NO_THROW(cancelCheckpoint("other-thread"));
    });
    other.join();
    EXPECT_THROW(cancelCheckpoint("this-thread"), CancelledError);
}

TEST(Cancel, ProfilingSweepUnwindsAndExperimentStaysReusable)
{
    sim::GpuConfig cfg = sim::GpuConfig::config1();

    harness::Experiment exp(harness::makeDs2Workload());
    exp.setProfileThreads(1);
    {
        CancelToken token;
        token.cancel();
        CancelScope scope(&token);
        EXPECT_THROW(exp.epochLog(cfg), CancelledError);
    }

    // The unwound Experiment answers the same query cleanly and
    // bit-identically to a never-cancelled one.
    harness::Experiment clean(harness::makeDs2Workload());
    clean.setProfileThreads(1);
    EXPECT_TRUE(exp.epochLog(cfg).identicalTo(clean.epochLog(cfg)));
}

TEST(Cancel, ParallelProfilingSweepUnwinds)
{
    // The parallel sweep fans out over the shared pool; the helpers
    // re-install the caller's token, so the cancellation is observed
    // no matter which thread claims the poisoned index.
    harness::Experiment exp(harness::makeDs2Workload());
    exp.setProfileThreads(2);
    CancelToken token;
    token.cancel();
    CancelScope scope(&token);
    EXPECT_THROW(exp.epochLog(sim::GpuConfig::config1()),
                 CancelledError);
}

TEST(Cancel, SnapshotDecodeUnwindsWithoutQuarantine)
{
    std::string dir =
        (fs::path(testing::TempDir()) / "cancel_store").string();
    std::error_code ec;
    fs::remove_all(dir, ec);

    auto make = [] { return harness::makeDs2Workload(); };
    sim::GpuConfig cfg = sim::GpuConfig::config1();
    {
        harness::SnapshotRegistry writer(dir);
        (void)writer.acquire(make, cfg, 1);
        EXPECT_EQ(writer.stats().builds, 1u);
    }
    std::size_t bins = 0;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        bins += entry.path().extension() == ".bin";
    ASSERT_EQ(bins, 1u);

    // A fired token unwinds out of the store load as CancelledError
    // -- not absorbed into "corrupt file", which would quarantine a
    // perfectly healthy store entry.
    harness::SnapshotRegistry reader(dir);
    {
        CancelToken token;
        token.cancel();
        CancelScope scope(&token);
        EXPECT_THROW((void)reader.acquire(make, cfg, 1),
                     CancelledError);
    }
    EXPECT_EQ(reader.stats().quarantines, 0u);
    std::size_t bins_after = 0, corrupt_after = 0;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        bins_after += entry.path().extension() == ".bin";
        corrupt_after += entry.path().extension() == ".corrupt";
    }
    EXPECT_EQ(bins_after, 1u);
    EXPECT_EQ(corrupt_after, 0u);

    // The registry is reusable: without the scope the same acquire
    // replays from the store (no rebuild).
    auto snap = reader.acquire(make, cfg, 1);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(reader.stats().builds, 0u);
    EXPECT_EQ(reader.stats().diskHits, 1u);

    fs::remove_all(dir, ec);
}

TEST(Cancel, SchedulerCellUnwindsWithoutBurningRetries)
{
    std::vector<harness::WorkloadFactory> workloads = {
        [] { return harness::makeDs2Workload(); },
    };
    std::vector<sim::GpuConfig> configs = {
        sim::GpuConfig::config1(), sim::GpuConfig::config2(),
    };

    auto &inj = FaultInjector::instance();
    inj.reset();

    harness::ExperimentScheduler sched(2);
    sched.setCellRetries(3);
    sched.setRetryBackoff(0.0);
    CancelToken token;
    token.cancel();
    CancelScope scope(&token);
    // The cancellation propagates as CancelledError (not absorbed by
    // the retry loop into a failed-after-4-attempts cell), and the
    // unwind happens before the cell body ever runs: the cell fault
    // point records zero occurrences, i.e. no retry was burned.
    EXPECT_THROW((void)sched.epochSweep(workloads, configs),
                 CancelledError);
    EXPECT_EQ(inj.occurrences("scheduler.cell"), 0u);
    inj.reset();
}

TEST(Scheduler, RetryJitterIsDeterministic)
{
    harness::ExperimentScheduler a(1), b(1);
    a.setRetryBackoff(0.5, 0.2, 42);
    b.setRetryBackoff(0.5, 0.2, 42);
    for (std::size_t w = 0; w < 3; ++w) {
        for (std::size_t c = 0; c < 4; ++c) {
            for (unsigned attempt = 1; attempt <= 3; ++attempt) {
                double d = a.retryDelaySec(w, c, attempt);
                // Same seed, same cell, same attempt: bit-equal.
                EXPECT_EQ(d, b.retryDelaySec(w, c, attempt));
                EXPECT_GE(d, 0.5 * 0.8);
                EXPECT_LE(d, 0.5 * 1.2);
            }
        }
    }

    // The jitter deconflicts: distinct cells (and attempts) spread
    // out instead of thundering in lockstep.
    EXPECT_NE(a.retryDelaySec(0, 0, 1), a.retryDelaySec(0, 1, 1));
    EXPECT_NE(a.retryDelaySec(0, 0, 1), a.retryDelaySec(0, 0, 2));

    // A different seed reshuffles; zero jitter is exactly the base.
    harness::ExperimentScheduler c(1);
    c.setRetryBackoff(0.5, 0.2, 43);
    EXPECT_NE(a.retryDelaySec(0, 0, 1), c.retryDelaySec(0, 0, 1));
    harness::ExperimentScheduler plain(1);
    plain.setRetryBackoff(0.5);
    EXPECT_EQ(plain.retryDelaySec(2, 3, 2), 0.5);
}

} // anonymous namespace
} // namespace seqpoint
