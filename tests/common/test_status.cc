/**
 * @file
 * Tests for the Status/Result recoverable-error layer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/status.hh"

namespace seqpoint {
namespace {

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Ok);
    EXPECT_EQ(s.message(), "");
    EXPECT_EQ(s.toString(), "ok");
    EXPECT_TRUE(Status().ok());
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    Status s = Status::error(ErrorCode::Corruption,
                             "checksum mismatch on snap-x.bin");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Corruption);
    EXPECT_EQ(s.message(), "checksum mismatch on snap-x.bin");
    EXPECT_EQ(s.toString(),
              "corruption: checksum mismatch on snap-x.bin");
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io_error");
    EXPECT_STREQ(errorCodeName(ErrorCode::Corruption), "corruption");
    EXPECT_STREQ(errorCodeName(ErrorCode::VersionMismatch),
                 "version_mismatch");
    EXPECT_STREQ(errorCodeName(ErrorCode::CellFailed), "cell_failed");
    EXPECT_STREQ(errorCodeName(ErrorCode::Timeout), "timeout");
}

TEST(Status, ErrorWithOkCodeIsMisuse)
{
    EXPECT_DEATH((void)Status::error(ErrorCode::Ok, "nope"),
                 "not an error code");
}

TEST(Result, OkHoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(7), 42);
}

TEST(Result, ErrorHoldsStatus)
{
    Result<int> r(Status::error(ErrorCode::IoError, "short read"));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::IoError);
    EXPECT_EQ(r.valueOr(7), 7);
}

TEST(Result, MoveOnlyValueCanBeTaken)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> v = r.take();
    ASSERT_TRUE(v != nullptr);
    EXPECT_EQ(*v, 9);
}

TEST(Result, ValueOnErrorIsMisuse)
{
    Result<int> r(Status::error(ErrorCode::Timeout, "deadline"));
    EXPECT_DEATH((void)r.value(), "Result::value");
}

TEST(Result, ErrorConstructorRejectsOkStatus)
{
    EXPECT_DEATH((void)Result<int>(Status()), "OK status");
}

TEST(RecoverableError, CarriesStatusThroughThrow)
{
    try {
        throw RecoverableError(
            Status::error(ErrorCode::VersionMismatch, "v1 file"));
    } catch (const RecoverableError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::VersionMismatch);
        EXPECT_STREQ(e.what(), "version_mismatch: v1 file");
        return;
    }
    FAIL() << "exception not caught";
}

} // anonymous namespace
} // namespace seqpoint
