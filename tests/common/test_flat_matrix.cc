/**
 * @file
 * Tests for the flat row-major matrix utility.
 */

#include <gtest/gtest.h>

#include "common/flat_matrix.hh"

namespace seqpoint {
namespace {

TEST(FlatMatrix, RoundTripsNestedLayout)
{
    std::vector<std::vector<double>> nested{
        {1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    FlatMatrix m = FlatMatrix::fromNested(nested);

    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(m(r, c), nested[r][c]);

    EXPECT_EQ(m.toNested(), nested);
}

TEST(FlatMatrix, RowsAreContiguous)
{
    FlatMatrix m(3, 4);
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            m(r, c) = static_cast<double>(10 * r + c);

    // row(r) points into one buffer at stride cols().
    EXPECT_EQ(m.row(1), m.data() + 4);
    EXPECT_EQ(m.row(2), m.row(0) + 8);
    EXPECT_DOUBLE_EQ(m.row(2)[3], 23.0);
}

TEST(FlatMatrix, AppendRowGrowsAndAdoptsWidth)
{
    FlatMatrix m;
    EXPECT_TRUE(m.empty());
    m.appendRow({1.0, 2.0});
    m.appendRow({3.0, 4.0});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);

    FlatMatrix other;
    other.appendRow(m, 1);
    EXPECT_DOUBLE_EQ(other(0, 1), 4.0);
}

TEST(FlatMatrix, FillSetsEveryElement)
{
    FlatMatrix m(2, 2, 7.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 7.0);
    m.fill(0.0);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 2; ++c)
            EXPECT_DOUBLE_EQ(m(r, c), 0.0);
}

TEST(FlatMatrix, VectorHelpers)
{
    double a[3] = {1.0, 2.0, 3.0};
    double b[3] = {2.0, 4.0, 6.0};
    EXPECT_DOUBLE_EQ(dotProduct(a, b, 3), 2.0 + 8.0 + 18.0);
    EXPECT_DOUBLE_EQ(sqNorm(a, 3), 14.0);
    EXPECT_DOUBLE_EQ(sqDistance(a, b, 3), 1.0 + 4.0 + 9.0);
    // The norm expansion identity the k-means hot loop relies on:
    // ||a-b||^2 = ||a||^2 - 2 a.b + ||b||^2.
    EXPECT_NEAR(sqDistance(a, b, 3),
                sqNorm(a, 3) - 2.0 * dotProduct(a, b, 3) + sqNorm(b, 3),
                1e-12);
}

TEST(FlatMatrixDeath, RejectsRaggedInput)
{
    EXPECT_DEATH(FlatMatrix::fromNested({{1.0, 2.0}, {3.0}}), "ragged");

    FlatMatrix m;
    m.appendRow({1.0, 2.0});
    EXPECT_DEATH(m.appendRow({1.0, 2.0, 3.0}), "row");
}

} // anonymous namespace
} // namespace seqpoint
