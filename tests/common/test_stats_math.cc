/**
 * @file
 * Unit tests for the scalar statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats_math.hh"

namespace seqpoint {
namespace {

TEST(Mean, BasicAndEmpty)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
}

TEST(Stdev, KnownValues)
{
    EXPECT_DOUBLE_EQ(stdev({2.0, 2.0, 2.0}), 0.0);
    EXPECT_NEAR(stdev({1.0, 3.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(stdev({4.0}), 0.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, ClampsNonPositiveWithWarning)
{
    double g = geomean({0.0, 1.0});
    EXPECT_GT(g, 0.0);
    EXPECT_LT(g, 1.0);
}

TEST(Geomean, FloorGuardsZeroEntries)
{
    // Regression: a selector landing exactly on the actual for one
    // configuration (0% error) used to collapse the whole geomean to
    // ~1e-6 via the tiny-epsilon clamp. With a floor, the zero entry
    // contributes "below measurable" instead.
    double floor = 0.005;
    EXPECT_DOUBLE_EQ(geomean({0.0, 2.0}, floor),
                     std::sqrt(floor * 2.0));
    // Without the floor the same input collapses (the legacy clamp).
    EXPECT_LT(geomean({0.0, 2.0}), 1e-5);
    // The floor never perturbs entries above it.
    EXPECT_NEAR(geomean({1.0, 4.0}, floor), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}, floor), 2.0, 1e-12);
    // All entries at/below the floor degenerate to the floor itself,
    // not to 0 or NaN.
    EXPECT_DOUBLE_EQ(geomean({0.0, 0.0}, floor), floor);
    EXPECT_FALSE(std::isnan(geomean({0.0, 0.0, 0.0}, floor)));
}

TEST(WeightedMean, RespectsWeights)
{
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 100.0}, {1.0, 0.0}), 1.0);
    EXPECT_DOUBLE_EQ(weightedMean({}, {}), 0.0);
}

TEST(Percentile, InterpolatesLinearly)
{
    std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Percentile, UnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 20.0}, 50.0), 20.0);
}

TEST(RelError, SignedCases)
{
    EXPECT_DOUBLE_EQ(relError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relError(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relError(100.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(relError(-110.0, -100.0), 0.1);
}

TEST(FitLine, ExactLine)
{
    LinearFit fit = fitLine({1.0, 2.0, 3.0}, {3.0, 5.0, 7.0});
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineHasHighR2)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
    }
    LinearFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.01);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(FitLine, ConstantXGivesZeroSlope)
{
    LinearFit fit = fitLine({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Pearson, PerfectCorrelation)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(MinMaxSum, Basics)
{
    std::vector<double> xs{3.0, -1.0, 7.0};
    EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 7.0);
    EXPECT_DOUBLE_EQ(sum(xs), 9.0);
}

TEST(StatsMathDeath, RelErrorRejectsZeroActual)
{
    EXPECT_DEATH(relError(1.0, 0.0), "zero");
}

TEST(StatsMathDeath, WeightedMeanRejectsMismatch)
{
    EXPECT_DEATH(weightedMean({1.0}, {1.0, 2.0}), "mismatch");
}

} // anonymous namespace
} // namespace seqpoint
