/**
 * @file
 * Tests for the bounded MPMC queue behind the query service's
 * admission control: capacity refusal (tryPush never blocks, never
 * grows the queue past its bound), close semantics (producers
 * refused, consumers drain the backlog then observe shutdown), and
 * a multi-producer/multi-consumer drain that loses nothing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"

namespace seqpoint {
namespace {

TEST(BoundedQueue, RefusesPastCapacity)
{
    BoundedQueue<int> q(2);
    EXPECT_EQ(q.capacity(), 2u);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)); // full: immediate refusal, no block
    EXPECT_EQ(q.size(), 2u);

    auto got = q.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 1); // FIFO
    EXPECT_TRUE(q.tryPush(3)); // slot freed
}

TEST(BoundedQueue, CloseDrainsBacklogThenSignalsShutdown)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.tryPush(7));
    EXPECT_TRUE(q.tryPush(8));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.tryPush(9)); // closed: refused even with room

    // What was queued before the close is still served, in order;
    // only then does pop() report shutdown.
    EXPECT_EQ(q.pop().value_or(-1), 7);
    EXPECT_EQ(q.pop().value_or(-1), 8);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.pop().has_value()); // idempotent
}

TEST(BoundedQueue, PopBlocksUntilPush)
{
    BoundedQueue<int> q(1);
    std::atomic<int> got{0};
    std::thread consumer([&] {
        auto v = q.pop();
        got.store(v.value_or(-1));
    });
    // The consumer is (very likely) parked in pop() by now; a push
    // must wake it.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(q.tryPush(42));
    consumer.join();
    EXPECT_EQ(got.load(), 42);
}

TEST(BoundedQueue, MpmcDrainLosesNothing)
{
    const unsigned producers = 4, consumers = 4;
    const int per_producer = 250;
    BoundedQueue<int> q(8);

    std::mutex mu;
    std::set<int> seen;
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < consumers; ++c) {
        threads.emplace_back([&] {
            while (auto v = q.pop()) {
                std::lock_guard<std::mutex> lock(mu);
                EXPECT_TRUE(seen.insert(*v).second) << *v;
            }
        });
    }
    for (unsigned p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < per_producer; ++i) {
                int v = static_cast<int>(p) * per_producer + i;
                // A full queue refuses; a real producer backs off and
                // retries, which is exactly the admission-control
                // contract under overload.
                while (!q.tryPush(v))
                    std::this_thread::yield();
            }
        });
    }
    for (unsigned p = 0; p < producers; ++p)
        threads[consumers + p].join();
    q.close();
    for (unsigned c = 0; c < consumers; ++c)
        threads[c].join();

    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(producers) * per_producer);
}

} // anonymous namespace
} // namespace seqpoint
