/**
 * @file
 * Unit tests for the table and CSV writers.
 */

#include <gtest/gtest.h>

#include "common/csv.hh"
#include "common/table.hh"

namespace seqpoint {
namespace {

TEST(Table, RendersHeaderAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| alpha"), std::string::npos);
    EXPECT_NE(out.find("| 22"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, DoubleRowHelper)
{
    Table t({"label", "a", "b"});
    t.addRow("row", {1.5, 2.25}, "%.2f");
    std::string out = t.render();
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(Table, CaptionAppears)
{
    Table t({"x"});
    std::string out = t.render("My caption");
    EXPECT_EQ(out.rfind("My caption", 0), 0u);
}

TEST(Table, ColumnsAlign)
{
    Table t({"h", "col"});
    t.addRow({"longer-cell", "x"});
    std::string out = t.render();
    // All lines between separators have the same width.
    size_t first_nl = out.find('\n');
    std::string sep = out.substr(0, first_nl);
    EXPECT_GT(sep.size(), 10u);
    for (size_t pos = 0; pos < out.size();) {
        size_t nl = out.find('\n', pos);
        if (nl == std::string::npos)
            break;
        EXPECT_EQ(nl - pos, sep.size());
        pos = nl + 1;
    }
}

TEST(TableDeath, RejectsWrongArity)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(Csv, HeaderAndRows)
{
    CsvWriter csv({"a", "b"});
    csv.addRow(std::vector<std::string>{"1", "2"});
    csv.addRow(std::vector<double>{3.5, 4.5});
    EXPECT_EQ(csv.str(), "a,b\n1,2\n3.5,4.5\n");
}

TEST(Csv, QuotesSpecialCharacters)
{
    CsvWriter csv({"text"});
    csv.addRow({std::string("hello, \"world\"")});
    EXPECT_NE(csv.str().find("\"hello, \"\"world\"\"\""),
              std::string::npos);
}

TEST(Csv, QuotesCarriageReturn)
{
    // A bare \r in a cell splits the row for CRLF-aware readers just
    // like \n would, so it must trigger quoting too.
    CsvWriter csv({"a", "b"});
    csv.addRow(std::vector<std::string>{"x\ry", "z"});
    EXPECT_EQ(csv.str(), "a,b\n\"x\ry\",z\n");

    CsvWriter lf({"a"});
    lf.addRow(std::vector<std::string>{"x\r\ny"});
    EXPECT_EQ(lf.str(), "a\n\"x\r\ny\"\n");
}

TEST(Csv, WritesFile)
{
    CsvWriter csv({"x"});
    csv.addRow({"1"});
    std::string path = testing::TempDir() + "/seqpoint_test.csv";
    ASSERT_TRUE(csv.writeFile(path));
}

TEST(CsvDeath, RejectsWrongArity)
{
    CsvWriter csv({"a", "b"});
    EXPECT_DEATH(csv.addRow({"1"}), "cells");
}

} // anonymous namespace
} // namespace seqpoint
