/**
 * @file
 * Tests for the reference model builders (GNMT, DS2, CNN,
 * Transformer), including the paper's Table I GEMM dimensions.
 */

#include <gtest/gtest.h>

#include <set>

#include "models/cnn.hh"
#include "models/ds2.hh"
#include "models/gnmt.hh"
#include "models/transformer.hh"
#include "nn/autotune.hh"

namespace seqpoint {
namespace models {
namespace {

/** Find the GEMM kernel whose name starts with the given prefix. */
const sim::KernelDesc *
findGemm(const std::vector<sim::KernelDesc> &ks, const std::string &pfx)
{
    for (const auto &k : ks) {
        if (k.klass == sim::KernelClass::Gemm &&
            k.name.rfind(pfx, 0) == 0) {
            return &k;
        }
    }
    return nullptr;
}

TEST(Gnmt, StructureMatchesPaper)
{
    nn::Model m = buildGnmt();
    // embed + 8 enc LSTM + embed + attention + 8 dec LSTM + FC + loss.
    EXPECT_EQ(m.numLayers(), 1u + 8u + 1u + 1u + 8u + 1u + 1u);
    EXPECT_GT(m.paramCount(), 100'000'000ull); // ~250M params
}

TEST(Gnmt, TableOneGemmDims)
{
    // Paper Table I (GNMT): GEMM-a M=36549 K=1024 N in {6016, 576};
    // GEMM-b M=1024 K=36549, same N. N = 64 * target-len, and
    // target-len(sl-1=99) = 94, target-len(sl-2=9) = 9.
    nn::Model m = buildGnmt();
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);

    for (auto [sl, n] : {std::pair<int64_t, int64_t>{99, 6016},
                         std::pair<int64_t, int64_t>{9, 576}}) {
        auto ks = m.lowerIteration(64, sl, tuner);
        const sim::KernelDesc *a = findGemm(ks, "classifier_fwd");
        ASSERT_NE(a, nullptr);
        EXPECT_EQ(a->gemmM, 36549);
        EXPECT_EQ(a->gemmK, 1024);
        EXPECT_EQ(a->gemmN, n);

        const sim::KernelDesc *b = findGemm(ks, "classifier_bwd_data");
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(b->gemmM, 1024);
        EXPECT_EQ(b->gemmK, 36549);
        EXPECT_EQ(b->gemmN, n);
    }
}

TEST(Ds2, StructureMatchesPaper)
{
    nn::Model m = buildDs2();
    // 2 conv + 1 bn + 5 bi-GRU + FC + loss.
    EXPECT_EQ(m.numLayers(), 2u + 1u + 5u + 1u + 1u);
}

TEST(Ds2, TableOneGemmDims)
{
    // Paper Table I (DS2): GEMM-a M=29 K=1600 N in {25728, 3776};
    // GEMM-b M=1600 K=29. N = 64 * SL: SL 402 and 59.
    nn::Model m = buildDs2();
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);

    for (auto [sl, n] : {std::pair<int64_t, int64_t>{402, 25728},
                         std::pair<int64_t, int64_t>{59, 3776}}) {
        auto ks = m.lowerIteration(64, sl, tuner);
        const sim::KernelDesc *a = findGemm(ks, "classifier_fwd");
        ASSERT_NE(a, nullptr);
        EXPECT_EQ(a->gemmM, 29);
        EXPECT_EQ(a->gemmK, 1600);
        EXPECT_EQ(a->gemmN, n);

        const sim::KernelDesc *b = findGemm(ks, "classifier_bwd_data");
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(b->gemmM, 1600);
        EXPECT_EQ(b->gemmK, 29);
        EXPECT_EQ(b->gemmN, n);
    }
}

TEST(Ds2, GruInputWidthFollowsConvFeatures)
{
    nn::Model m = buildDs2();
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    auto ks = m.lowerIteration(64, 100, tuner);
    // First GRU input GEMM: K = 32 channels * 41 freq = 1312.
    const sim::KernelDesc *wx = findGemm(ks, "gru_wx_fwd");
    ASSERT_NE(wx, nullptr);
    EXPECT_EQ(wx->gemmK, 1312);
    EXPECT_EQ(wx->gemmM, 3 * 800);
}

TEST(Cnn, IterationsAreInputIndependent)
{
    nn::Model m = buildCnn();
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    auto a = m.lowerIteration(64, 1, tuner);
    auto b = m.lowerIteration(64, 1, tuner);
    ASSERT_EQ(a.size(), b.size());
    double fa = 0.0, fb = 0.0;
    for (const auto &k : a)
        fa += k.flops;
    for (const auto &k : b)
        fb += k.flops;
    EXPECT_DOUBLE_EQ(fa, fb);
}

TEST(Transformer, QuadraticAttentionScaling)
{
    nn::Model m = buildTransformer();
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);

    auto flops_at = [&](int64_t sl) {
        double f = 0.0;
        for (const auto &k : m.lowerIteration(16, sl, tuner)) {
            if (k.name.rfind("attn_score", 0) == 0)
                f += k.flops * static_cast<double>(k.repeat);
        }
        return f;
    };
    // Score FLOPs ~ T^2: quadrupling under 2x SL.
    EXPECT_NEAR(flops_at(128) / flops_at(64), 4.0, 0.2);
}

TEST(Models, AllBuildersProduceDistinctNames)
{
    std::set<std::string> names;
    names.insert(buildGnmt().name());
    names.insert(buildDs2().name());
    names.insert(buildCnn().name());
    names.insert(buildTransformer().name());
    EXPECT_EQ(names.size(), 4u);
}

} // anonymous namespace
} // namespace models
} // namespace seqpoint
