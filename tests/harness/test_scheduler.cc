/**
 * @file
 * Tests for the parallel experiment scheduler: the parallel sweep
 * must be byte-identical to the serial sweep, merge order must be
 * deterministic, and cells must be isolated from one another.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/fault_injection.hh"
#include "common/logging.hh"
#include "harness/scheduler.hh"

namespace seqpoint {
namespace harness {
namespace {

std::vector<WorkloadFactory>
threeWorkloads()
{
    return {[] { return makeGnmtWorkload(); },
            [] { return makeDs2Workload(); },
            [] { return makeCnnWorkload(); }};
}

std::vector<sim::GpuConfig>
fourConfigs()
{
    return {sim::GpuConfig::config1(), sim::GpuConfig::config2(),
            sim::GpuConfig::config3(), sim::GpuConfig::config4()};
}

void
expectCellsIdentical(const std::vector<EpochCellResult> &a,
                     const std::vector<EpochCellResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload) << "cell " << i;
        EXPECT_EQ(a[i].config, b[i].config) << "cell " << i;
        EXPECT_EQ(a[i].iterations, b[i].iterations) << "cell " << i;
        EXPECT_EQ(a[i].trainSec, b[i].trainSec) << "cell " << i;
        EXPECT_EQ(a[i].evalSec, b[i].evalSec) << "cell " << i;
        EXPECT_EQ(a[i].throughput, b[i].throughput) << "cell " << i;
        EXPECT_EQ(a[i].counters.busySec, b[i].counters.busySec)
            << "cell " << i;
        EXPECT_EQ(a[i].counters.dramBytes, b[i].counters.dramBytes)
            << "cell " << i;
        EXPECT_EQ(a[i].counters.kernelsLaunched,
                  b[i].counters.kernelsLaunched) << "cell " << i;
    }
}

TEST(ExperimentScheduler, ParallelSweepByteIdenticalToSerial)
{
    // The acceptance sweep: 3 workloads x 4 configs, serial vs
    // parallel schedulers, every cell field bit-identical.
    auto workloads = threeWorkloads();
    auto configs = fourConfigs();

    ExperimentScheduler serial(1);
    ExperimentScheduler parallel(4);

    auto a = serial.epochSweep(workloads, configs);
    auto b = parallel.epochSweep(workloads, configs);
    ASSERT_EQ(a.size(), 12u);
    expectCellsIdentical(a, b);
}

TEST(ExperimentScheduler, MatchesDirectSerialExperimentLoop)
{
    auto configs = fourConfigs();
    ExperimentScheduler sched(4);
    auto cells = sched.epochSweep({[] { return makeDs2Workload(); }},
                                  configs);
    ASSERT_EQ(cells.size(), configs.size());

    Experiment exp(makeDs2Workload());
    exp.setProfileThreads(1);
    for (size_t c = 0; c < configs.size(); ++c) {
        const prof::TrainLog &log = exp.epochLog(configs[c]);
        EXPECT_EQ(cells[c].trainSec, log.trainSec) << configs[c].name;
        EXPECT_EQ(cells[c].iterations, log.numIterations());
        EXPECT_EQ(cells[c].throughput,
                  log.throughput(exp.workload().batchSize));
    }
}

TEST(ExperimentScheduler, MergeOrderIsWorkloadMajorConfigMinor)
{
    auto cells = ExperimentScheduler(4).epochSweep(
        {[] { return makeCnnWorkload(); },
         [] { return makeDs2Workload(); }},
        {sim::GpuConfig::config1(), sim::GpuConfig::config2()});
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].workload, "CNN");
    EXPECT_EQ(cells[0].config, "config#1");
    EXPECT_EQ(cells[1].workload, "CNN");
    EXPECT_EQ(cells[1].config, "config#2");
    EXPECT_EQ(cells[2].workload, "DS2");
    EXPECT_EQ(cells[2].config, "config#1");
    EXPECT_EQ(cells[3].workload, "DS2");
    EXPECT_EQ(cells[3].config, "config#2");
}

TEST(ExperimentScheduler, MapCellsCustomEvaluation)
{
    ExperimentScheduler sched(2);
    std::function<double(Experiment &, const sim::GpuConfig &)> eval =
        [](Experiment &exp, const sim::GpuConfig &cfg) {
            return exp.iterTime(cfg, 40);
        };
    auto times = sched.mapCells<double>(
        {[] { return makeGnmtWorkload(); }},
        {sim::GpuConfig::config1(), sim::GpuConfig::config2()}, eval);
    ASSERT_EQ(times.size(), 2u);
    // The downclocked config must be slower at the same SL.
    EXPECT_GT(times[1], times[0]);
}

TEST(ExperimentScheduler, CellTimingsCoverEveryCellWithoutSkew)
{
    // The per-cell wall-time breakdown indexes like the results,
    // covers setup + eval consistently, and never perturbs them.
    auto workloads = threeWorkloads();
    auto configs = fourConfigs();

    std::vector<CellTiming> timings;
    auto timed = ExperimentScheduler(4).epochSweep(workloads, configs,
                                                   {}, &timings);
    auto plain = ExperimentScheduler(4).epochSweep(workloads, configs);
    expectCellsIdentical(timed, plain);

    ASSERT_EQ(timings.size(), timed.size());
    for (size_t i = 0; i < timings.size(); ++i) {
        EXPECT_GT(timings[i].totalSec, 0.0) << "cell " << i;
        EXPECT_GE(timings[i].setupSec, 0.0) << "cell " << i;
        EXPECT_GE(timings[i].totalSec, timings[i].setupSec)
            << "cell " << i;
        EXPECT_GE(timings[i].evalSec(), 0.0) << "cell " << i;
    }
}

TEST(ExperimentScheduler, EmptyGridIsEmptyResult)
{
    ExperimentScheduler sched(4);
    EXPECT_TRUE(sched.epochSweep({}, fourConfigs()).empty());
    EXPECT_TRUE(sched.epochSweep(threeWorkloads(), {}).empty());
}

TEST(ExperimentScheduler, DefaultThreadsPositive)
{
    EXPECT_GE(ExperimentScheduler().threads(), 1u);
}

/** 2x2 grid for the containment tests (keeps the cold starts cheap). */
std::vector<WorkloadFactory>
twoWorkloads()
{
    return {[] { return makeGnmtWorkload(); },
            [] { return makeDs2Workload(); }};
}

std::vector<sim::GpuConfig>
twoConfigs()
{
    return {sim::GpuConfig::config1(), sim::GpuConfig::config2()};
}

TEST(ExperimentSchedulerFaults, FailedCellIsContainedAndMarked)
{
    FaultInjector::instance().reset();
    setQuietLogging(true);
    auto workloads = twoWorkloads();
    auto configs = twoConfigs();

    ExperimentScheduler sched(2);
    auto clean = sched.epochSweep(workloads, configs);

    // Fault cell (1, 0) -- DS2 on config#1 -- with no retry budget:
    // the sweep must still complete, the other three cells must be
    // bit-identical to the clean run, and the failed cell must say
    // so instead of smuggling default-constructed zeros.
    FaultInjector::instance().armAt("scheduler.cell", "1/0", {1},
                                    ErrorCode::IoError);
    std::vector<CellTiming> timings;
    auto faulted = sched.epochSweep(workloads, configs, {}, &timings);
    ASSERT_EQ(faulted.size(), 4u);
    ASSERT_EQ(timings.size(), 4u);

    const std::size_t failed_cell = 1 * configs.size() + 0;
    for (std::size_t i = 0; i < faulted.size(); ++i) {
        if (i == failed_cell)
            continue;
        EXPECT_FALSE(faulted[i].failed) << "cell " << i;
        EXPECT_EQ(faulted[i].trainSec, clean[i].trainSec)
            << "cell " << i;
        EXPECT_EQ(faulted[i].throughput, clean[i].throughput)
            << "cell " << i;
    }
    const EpochCellResult &bad = faulted[failed_cell];
    EXPECT_TRUE(bad.failed);
    EXPECT_NE(bad.error.find("injected fault"), std::string::npos)
        << bad.error;
    EXPECT_NE(bad.error.find("io_error"), std::string::npos);
    EXPECT_EQ(bad.config, configs[0].name);
    EXPECT_EQ(bad.workload, clean[failed_cell].workload)
        << "failed cell should borrow its row's workload name";
    EXPECT_EQ(bad.iterations, 0u); // result slot stayed default
    EXPECT_TRUE(timings[failed_cell].outcome.failed);
    EXPECT_EQ(timings[failed_cell].outcome.attempts, 1u);

    FaultInjector::instance().reset();
    setQuietLogging(false);
}

TEST(ExperimentSchedulerFaults, RetriedCellConvergesToCleanResult)
{
    FaultInjector::instance().reset();
    setQuietLogging(true);
    auto workloads = twoWorkloads();
    auto configs = twoConfigs();

    ExperimentScheduler serial(1);
    auto clean = serial.epochSweep(workloads, configs);

    // Two consecutive faults on cell (0, 1); a budget of two retries
    // (three attempts) outlasts them, so the sweep must converge to
    // the bit-identical clean results with no failed cells.
    FaultInjector::instance().armAt("scheduler.cell", "0/1", {1, 2});
    ExperimentScheduler sched(2);
    sched.setCellRetries(2);
    sched.setRetryBackoff(0.0);
    std::vector<CellTiming> timings;
    auto retried = sched.epochSweep(workloads, configs, {}, &timings);

    expectCellsIdentical(retried, clean);
    for (const EpochCellResult &r : retried)
        EXPECT_FALSE(r.failed);
    const std::size_t faulted_cell = 0 * configs.size() + 1;
    EXPECT_EQ(timings[faulted_cell].outcome.attempts, 3u);
    EXPECT_FALSE(timings[faulted_cell].outcome.failed);
    EXPECT_EQ(FaultInjector::instance().fired("scheduler.cell"), 2u);

    FaultInjector::instance().reset();
    setQuietLogging(false);
}

TEST(ExperimentSchedulerFaults, PlainExceptionInCellBodyIsContained)
{
    // Not every failure arrives as a RecoverableError: a cell body
    // throwing any std::exception is classified as cell_failed and
    // contained the same way.
    setQuietLogging(true);
    ExperimentScheduler sched(2);
    std::vector<CellTiming> timings;
    auto results = sched.mapCells<int>(
        twoWorkloads(), twoConfigs(),
        [](Experiment &exp, const sim::GpuConfig &cfg) -> int {
            if (exp.workload().name == "DS2" &&
                cfg.name == sim::GpuConfig::config2().name)
                throw std::runtime_error("synthetic body failure");
            return 7;
        },
        ExperimentScheduler::Snapshots{}, &timings);

    ASSERT_EQ(results.size(), 4u);
    const std::size_t bad = 1 * 2 + 1;
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i == bad ? 0 : 7) << "cell " << i;
    EXPECT_TRUE(timings[bad].outcome.failed);
    EXPECT_NE(timings[bad].outcome.error.find("cell_failed"),
              std::string::npos);
    EXPECT_NE(timings[bad].outcome.error.find("synthetic body failure"),
              std::string::npos);
    setQuietLogging(false);
}

} // anonymous namespace
} // namespace harness
} // namespace seqpoint
