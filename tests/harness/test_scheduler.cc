/**
 * @file
 * Tests for the parallel experiment scheduler: the parallel sweep
 * must be byte-identical to the serial sweep, merge order must be
 * deterministic, and cells must be isolated from one another.
 */

#include <gtest/gtest.h>

#include "harness/scheduler.hh"

namespace seqpoint {
namespace harness {
namespace {

std::vector<WorkloadFactory>
threeWorkloads()
{
    return {[] { return makeGnmtWorkload(); },
            [] { return makeDs2Workload(); },
            [] { return makeCnnWorkload(); }};
}

std::vector<sim::GpuConfig>
fourConfigs()
{
    return {sim::GpuConfig::config1(), sim::GpuConfig::config2(),
            sim::GpuConfig::config3(), sim::GpuConfig::config4()};
}

void
expectCellsIdentical(const std::vector<EpochCellResult> &a,
                     const std::vector<EpochCellResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload) << "cell " << i;
        EXPECT_EQ(a[i].config, b[i].config) << "cell " << i;
        EXPECT_EQ(a[i].iterations, b[i].iterations) << "cell " << i;
        EXPECT_EQ(a[i].trainSec, b[i].trainSec) << "cell " << i;
        EXPECT_EQ(a[i].evalSec, b[i].evalSec) << "cell " << i;
        EXPECT_EQ(a[i].throughput, b[i].throughput) << "cell " << i;
        EXPECT_EQ(a[i].counters.busySec, b[i].counters.busySec)
            << "cell " << i;
        EXPECT_EQ(a[i].counters.dramBytes, b[i].counters.dramBytes)
            << "cell " << i;
        EXPECT_EQ(a[i].counters.kernelsLaunched,
                  b[i].counters.kernelsLaunched) << "cell " << i;
    }
}

TEST(ExperimentScheduler, ParallelSweepByteIdenticalToSerial)
{
    // The acceptance sweep: 3 workloads x 4 configs, serial vs
    // parallel schedulers, every cell field bit-identical.
    auto workloads = threeWorkloads();
    auto configs = fourConfigs();

    ExperimentScheduler serial(1);
    ExperimentScheduler parallel(4);

    auto a = serial.epochSweep(workloads, configs);
    auto b = parallel.epochSweep(workloads, configs);
    ASSERT_EQ(a.size(), 12u);
    expectCellsIdentical(a, b);
}

TEST(ExperimentScheduler, MatchesDirectSerialExperimentLoop)
{
    auto configs = fourConfigs();
    ExperimentScheduler sched(4);
    auto cells = sched.epochSweep({[] { return makeDs2Workload(); }},
                                  configs);
    ASSERT_EQ(cells.size(), configs.size());

    Experiment exp(makeDs2Workload());
    exp.setProfileThreads(1);
    for (size_t c = 0; c < configs.size(); ++c) {
        const prof::TrainLog &log = exp.epochLog(configs[c]);
        EXPECT_EQ(cells[c].trainSec, log.trainSec) << configs[c].name;
        EXPECT_EQ(cells[c].iterations, log.numIterations());
        EXPECT_EQ(cells[c].throughput,
                  log.throughput(exp.workload().batchSize));
    }
}

TEST(ExperimentScheduler, MergeOrderIsWorkloadMajorConfigMinor)
{
    auto cells = ExperimentScheduler(4).epochSweep(
        {[] { return makeCnnWorkload(); },
         [] { return makeDs2Workload(); }},
        {sim::GpuConfig::config1(), sim::GpuConfig::config2()});
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].workload, "CNN");
    EXPECT_EQ(cells[0].config, "config#1");
    EXPECT_EQ(cells[1].workload, "CNN");
    EXPECT_EQ(cells[1].config, "config#2");
    EXPECT_EQ(cells[2].workload, "DS2");
    EXPECT_EQ(cells[2].config, "config#1");
    EXPECT_EQ(cells[3].workload, "DS2");
    EXPECT_EQ(cells[3].config, "config#2");
}

TEST(ExperimentScheduler, MapCellsCustomEvaluation)
{
    ExperimentScheduler sched(2);
    std::function<double(Experiment &, const sim::GpuConfig &)> eval =
        [](Experiment &exp, const sim::GpuConfig &cfg) {
            return exp.iterTime(cfg, 40);
        };
    auto times = sched.mapCells<double>(
        {[] { return makeGnmtWorkload(); }},
        {sim::GpuConfig::config1(), sim::GpuConfig::config2()}, eval);
    ASSERT_EQ(times.size(), 2u);
    // The downclocked config must be slower at the same SL.
    EXPECT_GT(times[1], times[0]);
}

TEST(ExperimentScheduler, CellTimingsCoverEveryCellWithoutSkew)
{
    // The per-cell wall-time breakdown indexes like the results,
    // covers setup + eval consistently, and never perturbs them.
    auto workloads = threeWorkloads();
    auto configs = fourConfigs();

    std::vector<CellTiming> timings;
    auto timed = ExperimentScheduler(4).epochSweep(workloads, configs,
                                                   {}, &timings);
    auto plain = ExperimentScheduler(4).epochSweep(workloads, configs);
    expectCellsIdentical(timed, plain);

    ASSERT_EQ(timings.size(), timed.size());
    for (size_t i = 0; i < timings.size(); ++i) {
        EXPECT_GT(timings[i].totalSec, 0.0) << "cell " << i;
        EXPECT_GE(timings[i].setupSec, 0.0) << "cell " << i;
        EXPECT_GE(timings[i].totalSec, timings[i].setupSec)
            << "cell " << i;
        EXPECT_GE(timings[i].evalSec(), 0.0) << "cell " << i;
    }
}

TEST(ExperimentScheduler, EmptyGridIsEmptyResult)
{
    ExperimentScheduler sched(4);
    EXPECT_TRUE(sched.epochSweep({}, fourConfigs()).empty());
    EXPECT_TRUE(sched.epochSweep(threeWorkloads(), {}).empty());
}

TEST(ExperimentScheduler, DefaultThreadsPositive)
{
    EXPECT_GE(ExperimentScheduler().threads(), 1u);
}

} // anonymous namespace
} // namespace harness
} // namespace seqpoint
