/**
 * @file
 * Tests for the persistent snapshot subsystem: serialization
 * round-trip fidelity (save -> load -> seedFrom bit-identical to the
 * live snapshot path), strict rejection of mismatched or corrupted
 * files, and the registry's memory/disk/single-flight behaviour.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "harness/snapshot_io.hh"
#include "harness/snapshot_registry.hh"

namespace seqpoint {
namespace harness {
namespace {

namespace fs = std::filesystem;

std::string
tmpPath(const std::string &name)
{
    return (fs::path(testing::TempDir()) / name).string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << bytes;
}

/** One fully warmed DS2 snapshot, shared by the tests below. */
std::shared_ptr<const ModelSnapshot>
ds2Snapshot()
{
    static std::shared_ptr<const ModelSnapshot> snap = [] {
        Experiment donor(makeDs2Workload());
        donor.setProfileThreads(1);
        return donor.snapshot(sim::GpuConfig::config1());
    }();
    return snap;
}

TEST(SnapshotIo, PayloadRoundTripIsByteExact)
{
    auto snap = ds2Snapshot();
    std::string payload = encodeSnapshotPayload(*snap);
    EXPECT_FALSE(payload.empty());

    ModelSnapshot decoded = decodeSnapshotPayload(payload, "test");
    // Bit-exact: re-encoding the decoded snapshot reproduces the
    // payload byte for byte, and the identity key survives.
    EXPECT_EQ(encodeSnapshotPayload(decoded), payload);
    EXPECT_TRUE(snapshotKeyOf(decoded) == snapshotKeyOf(*snap));
    EXPECT_TRUE(decoded.log.identicalTo(snap->log));
    EXPECT_EQ(decoded.selections.size(), snap->selections.size());
}

TEST(SnapshotIo, SaveLoadSeedsBitIdenticallyDs2)
{
    auto cfg1 = sim::GpuConfig::config1();
    auto cfg2 = sim::GpuConfig::config2();
    auto snap = ds2Snapshot();

    std::string path = tmpPath("ds2_roundtrip.bin");
    ASSERT_TRUE(saveSnapshot(*snap, path));

    SnapshotKey key = snapshotKeyOf(*snap);
    auto loaded = loadSnapshot(path, &key);
    ASSERT_TRUE(loaded != nullptr);

    // Seeding from the file must reproduce both the live-snapshot
    // path and a cold experiment, bit for bit -- on the snapshot's
    // config (replayed) and on another config (still computed cold).
    Experiment from_file(makeDs2Workload());
    from_file.setProfileThreads(1);
    from_file.seedFrom(loaded);
    Experiment live(makeDs2Workload());
    live.setProfileThreads(1);
    live.seedFrom(snap);
    Experiment cold(makeDs2Workload());
    cold.setProfileThreads(1);

    EXPECT_TRUE(
        from_file.epochLog(cfg1).identicalTo(live.epochLog(cfg1)));
    EXPECT_TRUE(
        from_file.epochLog(cfg1).identicalTo(cold.epochLog(cfg1)));
    EXPECT_TRUE(
        from_file.epochLog(cfg2).identicalTo(cold.epochLog(cfg2)));
    EXPECT_EQ(from_file.iterTime(cfg1, 100), cold.iterTime(cfg1, 100));
    EXPECT_EQ(from_file.actualThroughput(cfg1),
              cold.actualThroughput(cfg1));
    EXPECT_TRUE(
        from_file.buildSelection(core::SelectorKind::SeqPoint, cfg1) ==
        cold.buildSelection(core::SelectorKind::SeqPoint, cfg1));
}

TEST(SnapshotIo, SaveLoadSeedsBitIdenticallyGnmt)
{
    auto cfg1 = sim::GpuConfig::config1();
    Experiment donor(makeGnmtWorkload());
    donor.setProfileThreads(1);
    auto snap = donor.snapshot(cfg1);

    std::string path = tmpPath("gnmt_roundtrip.bin");
    ASSERT_TRUE(saveSnapshot(*snap, path));
    SnapshotKey key = snapshotKeyOf(*snap);
    auto loaded = loadSnapshot(path, &key);

    EXPECT_EQ(encodeSnapshotPayload(*loaded),
              encodeSnapshotPayload(*snap));

    Experiment from_file(makeGnmtWorkload());
    from_file.setProfileThreads(1);
    from_file.seedFrom(loaded);
    EXPECT_TRUE(from_file.epochLog(cfg1).identicalTo(snap->log));
    EXPECT_TRUE(
        from_file.buildSelection(core::SelectorKind::SeqPoint, cfg1) ==
        snap->selections.at(core::SelectorKind::SeqPoint));
}

TEST(SnapshotIoDeathTest, RejectsBadFilesLoudly)
{
    auto snap = ds2Snapshot();
    std::string path = tmpPath("ds2_victim.bin");
    ASSERT_TRUE(saveSnapshot(*snap, path));
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 200u);
    SnapshotKey key = snapshotKeyOf(*snap);

    // Wrong magic: not a snapshot file at all.
    std::string bad_magic = bytes;
    bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x5a);
    writeFile(tmpPath("bad_magic.bin"), bad_magic);
    EXPECT_DEATH((void)loadSnapshot(tmpPath("bad_magic.bin"), &key),
                 "not a snapshot");

    // Wrong format version (bytes 4..7, little-endian u32).
    std::string bad_version = bytes;
    bad_version[4] = static_cast<char>(bad_version[4] + 1);
    writeFile(tmpPath("bad_version.bin"), bad_version);
    EXPECT_DEATH((void)loadSnapshot(tmpPath("bad_version.bin"), &key),
                 "format version");

    // Truncated payload: header promises more bytes than exist.
    writeFile(tmpPath("truncated.bin"),
              bytes.substr(0, bytes.size() - 64));
    EXPECT_DEATH((void)loadSnapshot(tmpPath("truncated.bin"), &key),
                 "truncated");

    // Flipped payload byte: checksum mismatch.
    std::string corrupt = bytes;
    corrupt[bytes.size() / 2] =
        static_cast<char>(corrupt[bytes.size() / 2] ^ 0x01);
    writeFile(tmpPath("corrupt.bin"), corrupt);
    EXPECT_DEATH((void)loadSnapshot(tmpPath("corrupt.bin"), &key),
                 "checksum");

    // Valid file, wrong expected config: the caller wanted config#2.
    Workload ds2 = makeDs2Workload();
    SnapshotKey cfg2_key = snapshotKeyFor(
        ds2, Experiment::defaultOptions(), sim::GpuConfig::config2());
    EXPECT_DEATH((void)loadSnapshot(path, &cfg2_key),
                 "config signature mismatch");

    // Valid file, wrong expected run parameters (other seed).
    Workload variant = makeDs2Workload(31);
    SnapshotKey variant_key = snapshotKeyFor(
        variant, Experiment::defaultOptions(),
        sim::GpuConfig::config1());
    EXPECT_DEATH((void)loadSnapshot(path, &variant_key),
                 "run-parameter mismatch");

    // Valid file, wrong expected workload.
    SnapshotKey gnmt_key = key;
    gnmt_key.workload = "GNMT";
    EXPECT_DEATH((void)loadSnapshot(path, &gnmt_key), "workload");
}

TEST(SnapshotRegistry, MemoryThenDiskHits)
{
    std::string dir = tmpPath("store_hits");
    fs::remove_all(dir); // stale stores from earlier runs
    auto make = [] { return makeDs2Workload(); };
    auto cfg1 = sim::GpuConfig::config1();

    SnapshotRegistry reg(dir);
    auto first = reg.acquire(make, cfg1, 1);
    ASSERT_TRUE(first != nullptr);
    EXPECT_EQ(reg.stats().builds, 1u);

    // Second acquire: served from memory, same object.
    auto second = reg.acquire(make, cfg1, 1);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(reg.stats().builds, 1u);
    EXPECT_EQ(reg.stats().memoryHits, 1u);

    // The build was persisted under the key's file name.
    Workload wl = make();
    SnapshotKey key =
        snapshotKeyFor(wl, Experiment::defaultOptions(), cfg1);
    EXPECT_TRUE(fs::exists(fs::path(dir) / key.fileName()));

    // A fresh registry on the same store loads instead of building,
    // and the loaded snapshot is byte-identical to the built one.
    SnapshotRegistry reg2(dir);
    auto from_disk = reg2.acquire(make, cfg1, 1);
    EXPECT_EQ(reg2.stats().builds, 0u);
    EXPECT_EQ(reg2.stats().diskHits, 1u);
    EXPECT_EQ(encodeSnapshotPayload(*from_disk),
              encodeSnapshotPayload(*first));

    // cached() is lookup-only: a key nobody built stays null.
    SnapshotKey cfg2_key = snapshotKeyFor(
        wl, Experiment::defaultOptions(), sim::GpuConfig::config2());
    EXPECT_EQ(reg2.cached(cfg2_key), nullptr);
    EXPECT_TRUE(reg2.cached(key) != nullptr);
}

TEST(SnapshotRegistry, SingleFlightBuildsOnce)
{
    auto snap = ds2Snapshot();
    SnapshotKey key = snapshotKeyOf(*snap);

    SnapshotRegistry reg; // memory-only
    std::atomic<int> builds{0};
    auto build = [&]() {
        ++builds;
        // Widen the race window so racing acquirers really overlap.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return snap;
    };

    std::vector<std::shared_ptr<const ModelSnapshot>> got(4);
    std::vector<std::thread> threads;
    for (size_t i = 0; i < got.size(); ++i) {
        threads.emplace_back(
            [&, i] { got[i] = reg.acquire(key, build); });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(builds.load(), 1);
    for (const auto &g : got)
        EXPECT_EQ(g.get(), snap.get());
    EXPECT_EQ(reg.stats().builds, 1u);
    EXPECT_EQ(reg.stats().memoryHits, 3u);
}

/**
 * A minimal synthetic snapshot (empty caches/log/selections) whose
 * identity is just a workload name -- enough to exercise the store's
 * file lifecycle without paying real cold starts.
 */
std::shared_ptr<const ModelSnapshot>
tinySnapshot(const std::string &name)
{
    auto snap = std::make_shared<ModelSnapshot>();
    snap->workload = name;
    snap->config = sim::GpuConfig::config1();
    snap->dataset = "synthetic";
    snap->batchSize = 8;
    snap->policy = data::BatchPolicy::Shuffled;
    snap->seed = 1;
    snap->evalCostMultiplier = 1.0;
    snap->opts = Experiment::defaultOptions();
    return snap;
}

/** Acquire a tiny snapshot under its own key. */
std::shared_ptr<const ModelSnapshot>
putTiny(SnapshotRegistry &reg, const std::string &name)
{
    auto snap = tinySnapshot(name);
    return reg.acquire(snapshotKeyOf(*snap), [&] { return snap; });
}

/** Store path of a tiny snapshot's file. */
std::string
tinyPath(const std::string &dir, const std::string &name)
{
    return (fs::path(dir) / snapshotKeyOf(*tinySnapshot(name))
                                .fileName())
        .string();
}

/** Age a store file to a fixed point `hours_ago`. */
void
ageFile(const std::string &path, int hours_ago)
{
    fs::last_write_time(path,
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(hours_ago));
}

TEST(SnapshotRegistryEviction, CapsStoreLruByMtime)
{
    std::string dir = tmpPath("store_evict");
    fs::remove_all(dir);

    // One file's size, to pick a cap that holds two files.
    uint64_t one;
    {
        SnapshotRegistry sizing(dir);
        putTiny(sizing, "wl-a");
        one = fs::file_size(tinyPath(dir, "wl-a"));
        ASSERT_GT(one, 0u);
    }
    fs::remove_all(dir);

    SnapshotRegistry reg(dir, 2 * one + one / 2);
    putTiny(reg, "wl-a");
    putTiny(reg, "wl-b");
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-a")));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-b")));
    EXPECT_EQ(reg.stats().storeEvictions, 0u);

    // Make "a" unambiguously the LRU file, then push past the cap:
    // "a" is evicted, the newer files survive.
    ageFile(tinyPath(dir, "wl-a"), 48);
    putTiny(reg, "wl-c");
    EXPECT_FALSE(fs::exists(tinyPath(dir, "wl-a")));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-b")));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-c")));
    EXPECT_EQ(reg.stats().storeEvictions, 1u);

    // The evicted key is still served from the in-process cache
    // (eviction only trims the disk copy).
    EXPECT_TRUE(putTiny(reg, "wl-a") != nullptr);
    EXPECT_EQ(reg.stats().builds, 3u);
    EXPECT_EQ(reg.stats().memoryHits, 1u);
}

TEST(SnapshotRegistryEviction, NeverEvictsTheFileJustWritten)
{
    std::string dir = tmpPath("store_evict_tiny_cap");
    fs::remove_all(dir);

    // A cap below a single file degrades to keep-latest-only.
    SnapshotRegistry reg(dir, 1);
    putTiny(reg, "wl-a");
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-a")));
    EXPECT_EQ(reg.stats().storeEvictions, 0u);

    ageFile(tinyPath(dir, "wl-a"), 48);
    putTiny(reg, "wl-b");
    EXPECT_FALSE(fs::exists(tinyPath(dir, "wl-a")));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-b")));
    EXPECT_EQ(reg.stats().storeEvictions, 1u);
}

TEST(SnapshotRegistryEviction, DiskHitRefreshesRecency)
{
    std::string dir = tmpPath("store_evict_touch");
    fs::remove_all(dir);
    {
        SnapshotRegistry writer(dir);
        putTiny(writer, "wl-a");
    }
    ageFile(tinyPath(dir, "wl-a"), 48);
    auto stale = fs::last_write_time(tinyPath(dir, "wl-a"));

    // A fresh registry takes the disk hit and must bump the mtime so
    // a capped store ages by use, not by creation.
    SnapshotRegistry reader(dir);
    auto snap = tinySnapshot("wl-a");
    EXPECT_TRUE(reader.cached(snapshotKeyOf(*snap)) != nullptr);
    EXPECT_EQ(reader.stats().diskHits, 1u);
    EXPECT_GT(fs::last_write_time(tinyPath(dir, "wl-a")), stale);
}

TEST(SnapshotRegistryEviction, UncappedStoreKeepsEverything)
{
    std::string dir = tmpPath("store_evict_uncapped");
    fs::remove_all(dir);
    SnapshotRegistry reg(dir); // cap 0 = unbounded
    for (const char *name : {"wl-a", "wl-b", "wl-c", "wl-d"})
        putTiny(reg, name);
    for (const char *name : {"wl-a", "wl-b", "wl-c", "wl-d"})
        EXPECT_TRUE(fs::exists(tinyPath(dir, name))) << name;
    EXPECT_EQ(reg.stats().storeEvictions, 0u);
}

TEST(SnapshotRegistryDeathTest, RejectsForeignFileUnderKey)
{
    // Plant a DS2 snapshot at the file name GNMT's key hashes to --
    // a corrupted shared store. The registry must reject it loudly,
    // never hand GNMT cells DS2 state.
    std::string dir = tmpPath("store_foreign");
    fs::remove_all(dir); // stale stores from earlier runs
    fs::create_directories(dir);

    Workload gnmt = makeGnmtWorkload();
    SnapshotKey gnmt_key = snapshotKeyFor(
        gnmt, Experiment::defaultOptions(), sim::GpuConfig::config1());
    ASSERT_TRUE(saveSnapshot(
        *ds2Snapshot(),
        (fs::path(dir) / gnmt_key.fileName()).string()));

    SnapshotRegistry reg(dir);
    EXPECT_DEATH(
        (void)reg.acquire([] { return makeGnmtWorkload(); },
                          sim::GpuConfig::config1(), 1),
        "workload");
    EXPECT_DEATH((void)reg.cached(gnmt_key), "workload");
}

} // anonymous namespace
} // namespace harness
} // namespace seqpoint
