/**
 * @file
 * Tests for the persistent snapshot subsystem: serialization
 * round-trip fidelity (save -> load -> seedFrom bit-identical to the
 * live snapshot path), strict rejection of mismatched or corrupted
 * files, and the registry's memory/disk/single-flight behaviour.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/bytestream.hh"
#include "common/fault_injection.hh"
#include "common/logging.hh"
#include "harness/snapshot_io.hh"
#include "harness/snapshot_registry.hh"

namespace seqpoint {
namespace harness {
namespace {

namespace fs = std::filesystem;

std::string
tmpPath(const std::string &name)
{
    return (fs::path(testing::TempDir()) / name).string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << bytes;
}

/** One fully warmed DS2 snapshot, shared by the tests below. */
std::shared_ptr<const ModelSnapshot>
ds2Snapshot()
{
    static std::shared_ptr<const ModelSnapshot> snap = [] {
        Experiment donor(makeDs2Workload());
        donor.setProfileThreads(1);
        return donor.snapshot(sim::GpuConfig::config1());
    }();
    return snap;
}

TEST(SnapshotIo, PayloadRoundTripIsByteExact)
{
    auto snap = ds2Snapshot();
    std::string payload = encodeSnapshotPayload(*snap);
    EXPECT_FALSE(payload.empty());

    ModelSnapshot decoded = decodeSnapshotPayload(payload, "test");
    // Bit-exact: re-encoding the decoded snapshot reproduces the
    // payload byte for byte, and the identity key survives.
    EXPECT_EQ(encodeSnapshotPayload(decoded), payload);
    EXPECT_TRUE(snapshotKeyOf(decoded) == snapshotKeyOf(*snap));
    EXPECT_TRUE(decoded.log.identicalTo(snap->log));
    EXPECT_EQ(decoded.selections.size(), snap->selections.size());
}

TEST(SnapshotIo, SaveLoadSeedsBitIdenticallyDs2)
{
    auto cfg1 = sim::GpuConfig::config1();
    auto cfg2 = sim::GpuConfig::config2();
    auto snap = ds2Snapshot();

    std::string path = tmpPath("ds2_roundtrip.bin");
    ASSERT_TRUE(saveSnapshot(*snap, path));

    SnapshotKey key = snapshotKeyOf(*snap);
    auto loaded = loadSnapshot(path, &key);
    ASSERT_TRUE(loaded != nullptr);

    // Seeding from the file must reproduce both the live-snapshot
    // path and a cold experiment, bit for bit -- on the snapshot's
    // config (replayed) and on another config (still computed cold).
    Experiment from_file(makeDs2Workload());
    from_file.setProfileThreads(1);
    from_file.seedFrom(loaded);
    Experiment live(makeDs2Workload());
    live.setProfileThreads(1);
    live.seedFrom(snap);
    Experiment cold(makeDs2Workload());
    cold.setProfileThreads(1);

    EXPECT_TRUE(
        from_file.epochLog(cfg1).identicalTo(live.epochLog(cfg1)));
    EXPECT_TRUE(
        from_file.epochLog(cfg1).identicalTo(cold.epochLog(cfg1)));
    EXPECT_TRUE(
        from_file.epochLog(cfg2).identicalTo(cold.epochLog(cfg2)));
    EXPECT_EQ(from_file.iterTime(cfg1, 100), cold.iterTime(cfg1, 100));
    EXPECT_EQ(from_file.actualThroughput(cfg1),
              cold.actualThroughput(cfg1));
    EXPECT_TRUE(
        from_file.buildSelection(core::SelectorKind::SeqPoint, cfg1) ==
        cold.buildSelection(core::SelectorKind::SeqPoint, cfg1));
}

TEST(SnapshotIo, SaveLoadSeedsBitIdenticallyGnmt)
{
    auto cfg1 = sim::GpuConfig::config1();
    Experiment donor(makeGnmtWorkload());
    donor.setProfileThreads(1);
    auto snap = donor.snapshot(cfg1);

    std::string path = tmpPath("gnmt_roundtrip.bin");
    ASSERT_TRUE(saveSnapshot(*snap, path));
    SnapshotKey key = snapshotKeyOf(*snap);
    auto loaded = loadSnapshot(path, &key);

    EXPECT_EQ(encodeSnapshotPayload(*loaded),
              encodeSnapshotPayload(*snap));

    Experiment from_file(makeGnmtWorkload());
    from_file.setProfileThreads(1);
    from_file.seedFrom(loaded);
    EXPECT_TRUE(from_file.epochLog(cfg1).identicalTo(snap->log));
    EXPECT_TRUE(
        from_file.buildSelection(core::SelectorKind::SeqPoint, cfg1) ==
        snap->selections.at(core::SelectorKind::SeqPoint));
}

TEST(SnapshotIoDeathTest, RejectsBadFilesLoudly)
{
    auto snap = ds2Snapshot();
    std::string path = tmpPath("ds2_victim.bin");
    ASSERT_TRUE(saveSnapshot(*snap, path));
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 200u);
    SnapshotKey key = snapshotKeyOf(*snap);

    // Wrong magic: not a snapshot file at all.
    std::string bad_magic = bytes;
    bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x5a);
    writeFile(tmpPath("bad_magic.bin"), bad_magic);
    EXPECT_DEATH((void)loadSnapshot(tmpPath("bad_magic.bin"), &key),
                 "not a snapshot");

    // Wrong format version (bytes 4..7, little-endian u32).
    std::string bad_version = bytes;
    bad_version[4] = static_cast<char>(bad_version[4] + 1);
    writeFile(tmpPath("bad_version.bin"), bad_version);
    EXPECT_DEATH((void)loadSnapshot(tmpPath("bad_version.bin"), &key),
                 "format version");

    // Truncated payload: header promises more bytes than exist.
    writeFile(tmpPath("truncated.bin"),
              bytes.substr(0, bytes.size() - 64));
    EXPECT_DEATH((void)loadSnapshot(tmpPath("truncated.bin"), &key),
                 "truncated");

    // Flipped payload byte: checksum mismatch.
    std::string corrupt = bytes;
    corrupt[bytes.size() / 2] =
        static_cast<char>(corrupt[bytes.size() / 2] ^ 0x01);
    writeFile(tmpPath("corrupt.bin"), corrupt);
    EXPECT_DEATH((void)loadSnapshot(tmpPath("corrupt.bin"), &key),
                 "checksum");

    // Valid file, wrong expected config: the caller wanted config#2.
    Workload ds2 = makeDs2Workload();
    SnapshotKey cfg2_key = snapshotKeyFor(
        ds2, Experiment::defaultOptions(), sim::GpuConfig::config2());
    EXPECT_DEATH((void)loadSnapshot(path, &cfg2_key),
                 "config signature mismatch");

    // Valid file, wrong expected run parameters (other seed).
    Workload variant = makeDs2Workload(31);
    SnapshotKey variant_key = snapshotKeyFor(
        variant, Experiment::defaultOptions(),
        sim::GpuConfig::config1());
    EXPECT_DEATH((void)loadSnapshot(path, &variant_key),
                 "run-parameter mismatch");

    // Valid file, wrong expected workload.
    SnapshotKey gnmt_key = key;
    gnmt_key.workload = "GNMT";
    EXPECT_DEATH((void)loadSnapshot(path, &gnmt_key), "workload");
}

TEST(SnapshotRegistry, MemoryThenDiskHits)
{
    std::string dir = tmpPath("store_hits");
    fs::remove_all(dir); // stale stores from earlier runs
    auto make = [] { return makeDs2Workload(); };
    auto cfg1 = sim::GpuConfig::config1();

    SnapshotRegistry reg(dir);
    auto first = reg.acquire(make, cfg1, 1);
    ASSERT_TRUE(first != nullptr);
    EXPECT_EQ(reg.stats().builds, 1u);

    // Second acquire: served from memory, same object.
    auto second = reg.acquire(make, cfg1, 1);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(reg.stats().builds, 1u);
    EXPECT_EQ(reg.stats().memoryHits, 1u);

    // The build was persisted under the key's file name.
    Workload wl = make();
    SnapshotKey key =
        snapshotKeyFor(wl, Experiment::defaultOptions(), cfg1);
    EXPECT_TRUE(fs::exists(fs::path(dir) / key.fileName()));

    // A fresh registry on the same store loads instead of building,
    // and the loaded snapshot is byte-identical to the built one.
    SnapshotRegistry reg2(dir);
    auto from_disk = reg2.acquire(make, cfg1, 1);
    EXPECT_EQ(reg2.stats().builds, 0u);
    EXPECT_EQ(reg2.stats().diskHits, 1u);
    EXPECT_EQ(encodeSnapshotPayload(*from_disk),
              encodeSnapshotPayload(*first));

    // cached() is lookup-only: a key nobody built stays null.
    SnapshotKey cfg2_key = snapshotKeyFor(
        wl, Experiment::defaultOptions(), sim::GpuConfig::config2());
    EXPECT_EQ(reg2.cached(cfg2_key), nullptr);
    EXPECT_TRUE(reg2.cached(key) != nullptr);
}

TEST(SnapshotRegistry, SingleFlightBuildsOnce)
{
    auto snap = ds2Snapshot();
    SnapshotKey key = snapshotKeyOf(*snap);

    SnapshotRegistry reg; // memory-only
    std::atomic<int> builds{0};
    auto build = [&]() {
        ++builds;
        // Widen the race window so racing acquirers really overlap.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return snap;
    };

    std::vector<std::shared_ptr<const ModelSnapshot>> got(4);
    std::vector<std::thread> threads;
    for (size_t i = 0; i < got.size(); ++i) {
        threads.emplace_back(
            [&, i] { got[i] = reg.acquire(key, build); });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(builds.load(), 1);
    for (const auto &g : got)
        EXPECT_EQ(g.get(), snap.get());
    EXPECT_EQ(reg.stats().builds, 1u);
    EXPECT_EQ(reg.stats().memoryHits, 3u);
}

/**
 * A minimal synthetic snapshot (empty caches/log/selections) whose
 * identity is just a workload name -- enough to exercise the store's
 * file lifecycle without paying real cold starts.
 */
std::shared_ptr<const ModelSnapshot>
tinySnapshot(const std::string &name)
{
    auto snap = std::make_shared<ModelSnapshot>();
    snap->workload = name;
    snap->config = sim::GpuConfig::config1();
    snap->dataset = "synthetic";
    snap->batchSize = 8;
    snap->policy = data::BatchPolicy::Shuffled;
    snap->seed = 1;
    snap->evalCostMultiplier = 1.0;
    snap->opts = Experiment::defaultOptions();
    return snap;
}

/** Acquire a tiny snapshot under its own key. */
std::shared_ptr<const ModelSnapshot>
putTiny(SnapshotRegistry &reg, const std::string &name)
{
    auto snap = tinySnapshot(name);
    return reg.acquire(snapshotKeyOf(*snap), [&] { return snap; });
}

/** Store path of a tiny snapshot's file. */
std::string
tinyPath(const std::string &dir, const std::string &name)
{
    return (fs::path(dir) / snapshotKeyOf(*tinySnapshot(name))
                                .fileName())
        .string();
}

/** Age a store file to a fixed point `hours_ago`. */
void
ageFile(const std::string &path, int hours_ago)
{
    fs::last_write_time(path,
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(hours_ago));
}

TEST(SnapshotRegistry, StrictToggleIsSafeDuringConcurrentLookups)
{
    // Regression: strict_ used to be a plain bool that the disk-load
    // classification path read while setStrict() wrote it from
    // another thread -- a data race under TSan. strict_ is atomic
    // now; this test recreates the overlap (a toggler thread racing
    // lookups that read the flag) so the sanitizer CI job keeps
    // proving the fix.
    SnapshotRegistry reg; // memory-only: a miss is never fatal
    auto snap = tinySnapshot("strict-race");
    SnapshotKey key = snapshotKeyOf(*snap);

    std::atomic<bool> stop{false};
    std::thread toggler([&] {
        bool v = true;
        while (!stop.load(std::memory_order_relaxed)) {
            reg.setStrict(v);
            v = !v;
        }
    });

    // Loop until both flag values have been observed so the assertion
    // below cannot flake on a single-core box; yield periodically to
    // guarantee the toggler gets scheduled.
    int seen[2] = {0, 0};
    for (int i = 0; i < 200000 && (seen[0] == 0 || seen[1] == 0);
         ++i) {
        ++seen[reg.strict() ? 1 : 0];
        EXPECT_EQ(reg.cached(key), nullptr);
        if ((i & 1023) == 0)
            std::this_thread::yield();
    }
    stop.store(true);
    toggler.join();
    reg.setStrict(false);

    // Both values were visible, so the toggler really raced the
    // lookups rather than finishing before them.
    EXPECT_GT(seen[0], 0);
    EXPECT_GT(seen[1], 0);
}

TEST(SnapshotRegistryEviction, CapsStoreLruByMtime)
{
    std::string dir = tmpPath("store_evict");
    fs::remove_all(dir);

    // One file's size, to pick a cap that holds two files.
    uint64_t one;
    {
        SnapshotRegistry sizing(dir);
        putTiny(sizing, "wl-a");
        one = fs::file_size(tinyPath(dir, "wl-a"));
        ASSERT_GT(one, 0u);
    }
    fs::remove_all(dir);

    SnapshotRegistry reg(dir, 2 * one + one / 2);
    putTiny(reg, "wl-a");
    putTiny(reg, "wl-b");
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-a")));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-b")));
    EXPECT_EQ(reg.stats().storeEvictions, 0u);

    // Make "a" unambiguously the LRU file, then push past the cap:
    // "a" is evicted, the newer files survive.
    ageFile(tinyPath(dir, "wl-a"), 48);
    putTiny(reg, "wl-c");
    EXPECT_FALSE(fs::exists(tinyPath(dir, "wl-a")));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-b")));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-c")));
    EXPECT_EQ(reg.stats().storeEvictions, 1u);

    // The evicted key is still served from the in-process cache
    // (eviction only trims the disk copy).
    EXPECT_TRUE(putTiny(reg, "wl-a") != nullptr);
    EXPECT_EQ(reg.stats().builds, 3u);
    EXPECT_EQ(reg.stats().memoryHits, 1u);
}

TEST(SnapshotRegistryEviction, NeverEvictsTheFileJustWritten)
{
    std::string dir = tmpPath("store_evict_tiny_cap");
    fs::remove_all(dir);

    // A cap below a single file degrades to keep-latest-only.
    SnapshotRegistry reg(dir, 1);
    putTiny(reg, "wl-a");
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-a")));
    EXPECT_EQ(reg.stats().storeEvictions, 0u);

    ageFile(tinyPath(dir, "wl-a"), 48);
    putTiny(reg, "wl-b");
    EXPECT_FALSE(fs::exists(tinyPath(dir, "wl-a")));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-b")));
    EXPECT_EQ(reg.stats().storeEvictions, 1u);
}

TEST(SnapshotRegistryEviction, DiskHitRefreshesRecency)
{
    std::string dir = tmpPath("store_evict_touch");
    fs::remove_all(dir);
    {
        SnapshotRegistry writer(dir);
        putTiny(writer, "wl-a");
    }
    ageFile(tinyPath(dir, "wl-a"), 48);
    auto stale = fs::last_write_time(tinyPath(dir, "wl-a"));

    // A fresh registry takes the disk hit and must bump the mtime so
    // a capped store ages by use, not by creation.
    SnapshotRegistry reader(dir);
    auto snap = tinySnapshot("wl-a");
    EXPECT_TRUE(reader.cached(snapshotKeyOf(*snap)) != nullptr);
    EXPECT_EQ(reader.stats().diskHits, 1u);
    EXPECT_GT(fs::last_write_time(tinyPath(dir, "wl-a")), stale);
}

TEST(SnapshotRegistryEviction, UncappedStoreKeepsEverything)
{
    std::string dir = tmpPath("store_evict_uncapped");
    fs::remove_all(dir);
    SnapshotRegistry reg(dir); // cap 0 = unbounded
    for (const char *name : {"wl-a", "wl-b", "wl-c", "wl-d"})
        putTiny(reg, name);
    for (const char *name : {"wl-a", "wl-b", "wl-c", "wl-d"})
        EXPECT_TRUE(fs::exists(tinyPath(dir, name))) << name;
    EXPECT_EQ(reg.stats().storeEvictions, 0u);
}

TEST(SnapshotRegistryDeathTest, StrictModeRejectsForeignFileUnderKey)
{
    // Plant a DS2 snapshot at the file name GNMT's key hashes to --
    // a corrupted shared store. In strict mode (the CI escape hatch)
    // the registry must reject it loudly, never hand GNMT cells DS2
    // state and never paper over it with a rebuild.
    std::string dir = tmpPath("store_foreign");
    fs::remove_all(dir); // stale stores from earlier runs
    fs::create_directories(dir);

    Workload gnmt = makeGnmtWorkload();
    SnapshotKey gnmt_key = snapshotKeyFor(
        gnmt, Experiment::defaultOptions(), sim::GpuConfig::config1());
    ASSERT_TRUE(saveSnapshot(
        *ds2Snapshot(),
        (fs::path(dir) / gnmt_key.fileName()).string()));

    SnapshotRegistry reg(dir);
    reg.setStrict(true);
    EXPECT_DEATH(
        (void)reg.acquire([] { return makeGnmtWorkload(); },
                          sim::GpuConfig::config1(), 1),
        "workload");
    EXPECT_DEATH((void)reg.cached(gnmt_key), "workload");
}

/** Header layout constants of a store file (see snapshot_io.cc). */
constexpr size_t kHeaderBytes = 24; // u32 magic, u32 ver, u64 sz, u64 ck

/**
 * Rebuild a valid header over `payload` -- for crafting files whose
 * checksum passes but whose payload fails the structural decode.
 */
std::string
frameWithValidHeader(const std::string &payload)
{
    ByteWriter header;
    header.u32(0x53505153u); // "SQPS"
    header.u32(kSnapshotFormatVersion);
    header.u64(payload.size());
    header.u64(fnv1a64Words(payload));
    return header.data() + payload;
}

/** Every corruption of one good file the loader must classify. */
struct Corruption {
    const char *label;
    std::string bytes;      ///< File content to plant.
    ErrorCode expect;       ///< tryLoadSnapshot classification.
    const char *msg;        ///< Substring of the error message.
};

std::vector<Corruption>
corruptionsOf(const std::string &good)
{
    std::vector<Corruption> out;

    std::string bad_magic = good;
    bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x5a);
    out.push_back({"bad magic", bad_magic, ErrorCode::Corruption,
                   "not a snapshot"});

    std::string bad_version = good;
    bad_version[4] = static_cast<char>(bad_version[4] + 1);
    out.push_back({"bad version", bad_version,
                   ErrorCode::VersionMismatch, "format version"});

    out.push_back({"truncated header", good.substr(0, kHeaderBytes / 2),
                   ErrorCode::Corruption, "truncated"});

    out.push_back({"truncated payload", good.substr(0, good.size() - 8),
                   ErrorCode::Corruption, "truncated or corrupted"});

    std::string flipped = good;
    flipped[good.size() / 2] =
        static_cast<char>(flipped[good.size() / 2] ^ 0x01);
    out.push_back({"flipped payload byte", flipped,
                   ErrorCode::Corruption, "checksum mismatch"});

    // A checksum-valid frame over a structurally broken payload: the
    // recoverable decode path itself must classify it.
    std::string payload = good.substr(kHeaderBytes);
    out.push_back({"decode failure under valid checksum",
                   frameWithValidHeader(
                       payload.substr(0, payload.size() - 1)),
                   ErrorCode::Corruption, "truncated"});

    return out;
}

TEST(SnapshotIoTryLoad, ClassifiesEveryCorruption)
{
    auto snap = tinySnapshot("wl-try");
    SnapshotKey key = snapshotKeyOf(*snap);
    std::string path = tmpPath("tryload_victim.bin");
    ASSERT_TRUE(saveSnapshot(*snap, path));
    std::string good = readFile(path);
    ASSERT_GT(good.size(), kHeaderBytes);

    // The pristine file loads; a missing file is an OK miss.
    auto ok = tryLoadSnapshot(path, &key);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(ok.value() != nullptr);
    auto missing = tryLoadSnapshot(tmpPath("tryload_nonexistent.bin"));
    ASSERT_TRUE(missing.ok());
    EXPECT_EQ(missing.value(), nullptr);

    for (const Corruption &c : corruptionsOf(good)) {
        writeFile(path, c.bytes);
        auto result = tryLoadSnapshot(path, &key);
        ASSERT_FALSE(result.ok()) << c.label;
        EXPECT_EQ(result.status().code(), c.expect) << c.label;
        EXPECT_NE(result.status().message().find(c.msg),
                  std::string::npos)
            << c.label << ": " << result.status().message();
    }

    // Identity mismatches on a pristine file are Corruption too: the
    // store handed back bytes that are not what the name promises.
    writeFile(path, good);
    SnapshotKey foreign = key;
    foreign.workload = "other";
    auto mismatch = tryLoadSnapshot(path, &foreign);
    ASSERT_FALSE(mismatch.ok());
    EXPECT_EQ(mismatch.status().code(), ErrorCode::Corruption);
}

TEST(SnapshotRegistryDegrade, QuarantinesEveryCorruptionAndRebuilds)
{
    std::string dir = tmpPath("store_degrade");
    setQuietLogging(true);
    auto snap = tinySnapshot("wl-degrade");
    SnapshotKey key = snapshotKeyOf(*snap);
    std::string path;
    std::string good;
    {
        fs::remove_all(dir);
        SnapshotRegistry writer(dir);
        writer.acquire(key, [&] { return snap; });
        path = tinyPath(dir, "wl-degrade");
        good = readFile(path);
    }

    uint64_t expected_quarantines = 0;
    for (const Corruption &c : corruptionsOf(good)) {
        fs::remove(path + ".corrupt");
        writeFile(path, c.bytes);

        // A fresh registry (no memory hit) must degrade: rebuild via
        // the builder, quarantine the bad file, and leave a clean
        // rewrite under the original name.
        SnapshotRegistry reg(dir);
        auto got = reg.acquire(key, [&] { return snap; });
        ASSERT_TRUE(got != nullptr) << c.label;
        EXPECT_EQ(encodeSnapshotPayload(*got),
                  encodeSnapshotPayload(*snap))
            << c.label;
        EXPECT_EQ(reg.stats().builds, 1u) << c.label;
        EXPECT_EQ(reg.stats().quarantines, 1u) << c.label;
        ++expected_quarantines;
        EXPECT_TRUE(fs::exists(path + ".corrupt")) << c.label;
        EXPECT_EQ(readFile(path + ".corrupt"), c.bytes) << c.label;
        EXPECT_EQ(readFile(path), good) << c.label;
    }
    ASSERT_GT(expected_quarantines, 0u);
    setQuietLogging(false);
}

TEST(SnapshotRegistryDegrade, ForeignFileIsQuarantinedNotFatal)
{
    std::string dir = tmpPath("store_degrade_foreign");
    fs::remove_all(dir);
    fs::create_directories(dir);
    setQuietLogging(true);

    // Plant wl-b's bytes under wl-a's name (a mis-assembled store).
    auto snap_a = tinySnapshot("wl-a");
    auto snap_b = tinySnapshot("wl-b");
    std::string path_a = tinyPath(dir, "wl-a");
    ASSERT_TRUE(saveSnapshot(*snap_b, path_a));

    SnapshotRegistry reg(dir);
    auto got = reg.acquire(snapshotKeyOf(*snap_a),
                           [&] { return snap_a; });
    ASSERT_TRUE(got != nullptr);
    EXPECT_EQ(got->workload, "wl-a");
    EXPECT_EQ(reg.stats().builds, 1u);
    EXPECT_EQ(reg.stats().quarantines, 1u);
    EXPECT_TRUE(fs::exists(path_a + ".corrupt"));
    setQuietLogging(false);
}

TEST(SnapshotRegistryDegrade, QuarantinedFilesAreInvisibleToTheCap)
{
    std::string dir = tmpPath("store_degrade_cap");
    fs::remove_all(dir);
    setQuietLogging(true);

    uint64_t one;
    {
        SnapshotRegistry sizing(dir);
        putTiny(sizing, "wl-a");
        one = fs::file_size(tinyPath(dir, "wl-a"));
    }
    fs::remove_all(dir);

    SnapshotRegistry reg(dir, 2 * one + one / 2);
    putTiny(reg, "wl-a");

    // Corrupt wl-a's file; re-acquiring through a fresh registry
    // quarantines it. The .corrupt file must neither count toward
    // the cap nor ever be evicted by it.
    std::string path_a = tinyPath(dir, "wl-a");
    std::string good = readFile(path_a);
    std::string bad = good;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 1);
    writeFile(path_a, bad);

    SnapshotRegistry reg2(dir, 2 * one + one / 2);
    putTiny(reg2, "wl-a");
    ASSERT_TRUE(fs::exists(path_a + ".corrupt"));

    ageFile(path_a, 24);
    ageFile(path_a + ".corrupt", 72); // oldest file in the store
    putTiny(reg2, "wl-b");
    putTiny(reg2, "wl-c");

    // wl-a (oldest .bin) was evicted to fit the cap; the older
    // .corrupt file was skipped entirely.
    EXPECT_FALSE(fs::exists(path_a));
    EXPECT_TRUE(fs::exists(path_a + ".corrupt"));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-b")));
    EXPECT_TRUE(fs::exists(tinyPath(dir, "wl-c")));
    EXPECT_GE(reg2.stats().storeEvictions, 1u);
    setQuietLogging(false);
}

TEST(SnapshotIoFaults, InjectedPartialWriteNeverCreatesTheFile)
{
    FaultInjector::instance().reset();
    setQuietLogging(true);
    std::string path = tmpPath("faulted_save.bin");
    fs::remove(path);
    auto snap = tinySnapshot("wl-faultsave");

    // First save hits the injected fault: the destination name must
    // never appear, only a partial temp file (the simulated corpse of
    // a writer that died mid-stream).
    FaultInjector::instance().armAt("snapshot_io.write", path, {1});
    EXPECT_FALSE(saveSnapshot(*snap, path));
    EXPECT_FALSE(fs::exists(path));
    bool tmp_corpse = false;
    for (const auto &entry :
         fs::directory_iterator(fs::path(path).parent_path())) {
        if (entry.path().string().find("faulted_save.bin.tmp") !=
            std::string::npos) {
            tmp_corpse = true;
            // The corpse is strictly smaller than a full file.
            EXPECT_LT(entry.file_size(),
                      frameWithValidHeader(
                          encodeSnapshotPayload(*snap)).size());
        }
    }
    EXPECT_TRUE(tmp_corpse);
    EXPECT_EQ(FaultInjector::instance().fired("snapshot_io.write"), 1u);

    // The rule is spent: the retry saves atomically and loads clean.
    EXPECT_TRUE(saveSnapshot(*snap, path));
    SnapshotKey key = snapshotKeyOf(*snap);
    auto loaded = tryLoadSnapshot(path, &key);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded.value() != nullptr);
    FaultInjector::instance().reset();
    setQuietLogging(false);
}

TEST(SnapshotIoFaults, InjectedReadFaultDegradesToRebuild)
{
    FaultInjector::instance().reset();
    setQuietLogging(true);
    std::string dir = tmpPath("store_fault_read");
    fs::remove_all(dir);
    auto snap = tinySnapshot("wl-faultread");
    SnapshotKey key = snapshotKeyOf(*snap);
    {
        SnapshotRegistry writer(dir);
        writer.acquire(key, [&] { return snap; });
    }

    // The first read of this file fails (injected IoError): a fresh
    // registry quarantines and rebuilds; the next fresh registry
    // (rule spent) takes a disk hit on the rewritten file.
    std::string path = tinyPath(dir, "wl-faultread");
    FaultInjector::instance().armAt("snapshot_io.read", path, {1});
    SnapshotRegistry reg(dir);
    auto got = reg.acquire(key, [&] { return snap; });
    ASSERT_TRUE(got != nullptr);
    EXPECT_EQ(reg.stats().builds, 1u);
    EXPECT_EQ(reg.stats().quarantines, 1u);

    SnapshotRegistry reg2(dir);
    EXPECT_TRUE(reg2.cached(key) != nullptr);
    EXPECT_EQ(reg2.stats().diskHits, 1u);
    FaultInjector::instance().reset();
    setQuietLogging(false);
}

TEST(SnapshotIoFaults, InjectedSaveFaultSkipsPersistOnly)
{
    FaultInjector::instance().reset();
    setQuietLogging(true);
    std::string dir = tmpPath("store_fault_save");
    fs::remove_all(dir);
    auto snap = tinySnapshot("wl-faultpersist");
    SnapshotKey key = snapshotKeyOf(*snap);

    FaultInjector::instance().armAt("registry.save", key.fileName(),
                                    {1});
    SnapshotRegistry reg(dir);
    auto got = reg.acquire(key, [&] { return snap; });
    ASSERT_TRUE(got != nullptr);
    EXPECT_EQ(reg.stats().builds, 1u);
    // The build was served but never persisted.
    EXPECT_FALSE(fs::exists(tinyPath(dir, "wl-faultpersist")));
    // In-process consumers still hit memory.
    EXPECT_TRUE(reg.cached(key) != nullptr);
    FaultInjector::instance().reset();
    setQuietLogging(false);
}

} // anonymous namespace
} // namespace harness
} // namespace seqpoint
