/**
 * @file
 * Tests for the scheduler-backed figure pipeline and the shared
 * cold-start ModelSnapshot: the scheduled sweep must be byte-identical
 * to the serial pipeline at any thread count, and cells seeded from a
 * snapshot must produce bit-identical results to cold cells.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "harness/figures.hh"

namespace seqpoint {
namespace harness {
namespace {

WorkloadFactory
ds2()
{
    return [] { return makeDs2Workload(); };
}

TEST(FigurePipeline, ScheduledSweepByteIdenticalToSerialAnyThreads)
{
    // The acceptance sweep: a fig11-shaped (selector x config) grid,
    // serial vs scheduler at 1 and N threads, byte-identical.
    FigureSweep serial = runFigureSweepSerial(ds2());
    FigureSweep one = runFigureSweepScheduled(ds2(), 1);
    FigureSweep many = runFigureSweepScheduled(ds2(), 3);

    EXPECT_TRUE(serial.identicalTo(one));
    EXPECT_TRUE(serial.identicalTo(many));
    ASSERT_EQ(serial.columns.size(), 5u);
    ASSERT_EQ(serial.selections.size(), 5u);

    // Spot-check the grid is sensible: actuals positive, SeqPoint's
    // time projection within a couple percent everywhere.
    size_t sp = selectorOrder().size() - 1;
    ASSERT_EQ(selectorOrder()[sp], core::SelectorKind::SeqPoint);
    for (const FigureColumn &col : serial.columns) {
        EXPECT_GT(col.actualSec, 0.0) << col.config;
        double err = core::timeErrorPercent(col.projectedSec[sp],
                                            col.actualSec);
        EXPECT_LT(err, 2.0) << col.config;
    }
}

TEST(FigurePipeline, SensitivityScheduledIdenticalToSerial)
{
    SensitivitySweep serial =
        runSensitivitySweepSerial(ds2(), 60, 220, 40);
    SensitivitySweep sched =
        runSensitivitySweepScheduled(ds2(), 60, 220, 40, 3);
    EXPECT_TRUE(serial.identicalTo(sched));
    ASSERT_EQ(serial.sls.size(), 5u);
    ASSERT_EQ(serial.configs.size(), 5u);
    ASSERT_EQ(serial.iterSec.size(), serial.configs.size());
}

TEST(EpochSchedule, MatchesEpochLogOrder)
{
    // runTrainingEpoch builds its training batches through
    // epochBatchSchedule; this pins the shared schedule to the
    // executed iteration order.
    Experiment exp(makeDs2Workload());
    exp.setProfileThreads(1);
    const prof::TrainLog &log =
        exp.epochLog(sim::GpuConfig::config1());

    prof::TrainConfig tc;
    tc.batchSize = exp.workload().batchSize;
    tc.policy = exp.workload().policy;
    tc.seed = exp.workload().seed;
    auto schedule =
        prof::epochBatchSchedule(exp.workload().dataset, tc);

    ASSERT_EQ(schedule.size(), log.numIterations());
    for (size_t i = 0; i < schedule.size(); ++i)
        ASSERT_EQ(schedule[i].seqLen, log.iterations[i].seqLen) << i;
}

TEST(ModelSnapshot, SeededExperimentBitIdenticalToCold)
{
    auto cfg1 = sim::GpuConfig::config1();
    auto cfg2 = sim::GpuConfig::config2();

    // Freeze a fully warmed reference state.
    Experiment donor(makeDs2Workload());
    donor.setProfileThreads(1);
    auto snap = donor.snapshot(cfg1);
    EXPECT_EQ(snap->workload, "DS2");
    EXPECT_FALSE(snap->trainProfiles.empty());
    EXPECT_FALSE(snap->timingEntries.empty());
    EXPECT_FALSE(snap->tunerEntries.empty());
    EXPECT_EQ(snap->selections.size(), 5u);

    // A seeded experiment must reproduce a cold experiment bit for
    // bit -- on the snapshot's config (served from the snapshot) and
    // on other configs (still computed cold).
    Experiment seeded(makeDs2Workload());
    seeded.setProfileThreads(1);
    seeded.seedFrom(snap);
    Experiment cold(makeDs2Workload());
    cold.setProfileThreads(1);

    EXPECT_TRUE(seeded.epochLog(cfg1).identicalTo(cold.epochLog(cfg1)));
    EXPECT_TRUE(seeded.epochLog(cfg2).identicalTo(cold.epochLog(cfg2)));
    EXPECT_EQ(seeded.iterTime(cfg1, 100), cold.iterTime(cfg1, 100));
    EXPECT_EQ(seeded.iterTime(cfg2, 100), cold.iterTime(cfg2, 100));
    EXPECT_EQ(seeded.actualThroughput(cfg1),
              cold.actualThroughput(cfg1));

    EXPECT_TRUE(
        seeded.buildSelection(core::SelectorKind::SeqPoint, cfg1) ==
        cold.buildSelection(core::SelectorKind::SeqPoint, cfg1));
}

TEST(ModelSnapshot, SeededSchedulerCellsMatchColdCells)
{
    auto configs = std::vector<sim::GpuConfig>{
        sim::GpuConfig::config1(), sim::GpuConfig::config2()};

    Experiment donor(makeDs2Workload());
    donor.setProfileThreads(1);
    auto snap = donor.snapshot(configs[0]);

    ExperimentScheduler sched(2);
    auto cold = sched.epochSweep({ds2()}, configs);
    auto seeded = sched.epochSweep({ds2()}, configs, {snap});
    ASSERT_EQ(cold.size(), seeded.size());
    for (size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].workload, seeded[i].workload);
        EXPECT_EQ(cold[i].config, seeded[i].config);
        EXPECT_EQ(cold[i].iterations, seeded[i].iterations);
        EXPECT_EQ(cold[i].trainSec, seeded[i].trainSec);
        EXPECT_EQ(cold[i].evalSec, seeded[i].evalSec);
        EXPECT_EQ(cold[i].throughput, seeded[i].throughput);
        EXPECT_TRUE(cold[i].counters == seeded[i].counters);
    }
}

TEST(FigurePipeline, RegistryWarmedSweepsByteIdenticalToSerial)
{
    std::string dir =
        (std::filesystem::path(testing::TempDir()) / "fig_store")
            .string();
    std::filesystem::remove_all(dir); // stale stores from earlier runs

    FigureSweep serial = runFigureSweepSerial(ds2(), 1);

    // First registry pass builds (and persists) every per-config
    // snapshot; a second pass through a fresh registry on the same
    // store replays entirely from disk. Both must match the serial
    // pipeline bit for bit.
    SnapshotRegistry builder(dir);
    FigureSweep built = runFigureSweepScheduled(ds2(), 2, &builder);
    EXPECT_TRUE(serial.identicalTo(built));
    EXPECT_GE(builder.stats().builds, 1u);

    SnapshotRegistry reader(dir);
    FigureSweep warmed = runFigureSweepScheduled(ds2(), 2, &reader);
    EXPECT_TRUE(serial.identicalTo(warmed));
    EXPECT_EQ(reader.stats().builds, 0u);
    EXPECT_GE(reader.stats().diskHits, 1u);

    // Sensitivity cells seed (lookup-only) from the per-config
    // snapshots the figure sweep left behind, bit-identically.
    SensitivitySweep sens_serial =
        runSensitivitySweepSerial(ds2(), 60, 220, 40, 1);
    SnapshotRegistry sens_reader(dir);
    SensitivitySweep sens_warmed = runSensitivitySweepScheduled(
        ds2(), 60, 220, 40, 2, &sens_reader);
    EXPECT_TRUE(sens_serial.identicalTo(sens_warmed));
    EXPECT_EQ(sens_reader.stats().builds, 0u);
    EXPECT_GE(sens_reader.stats().diskHits, 5u);
}

TEST(FigurePipeline, RegistryEpochSweepMatchesPlainSweep)
{
    std::vector<WorkloadFactory> workloads = {ds2()};
    std::vector<sim::GpuConfig> configs = {
        sim::GpuConfig::config1(), sim::GpuConfig::config2()};

    ExperimentScheduler sched(2);
    auto plain = sched.epochSweep(workloads, configs);

    // The registry-aware sweep acquires one snapshot per cell; a
    // second sweep over the same registry replays from memory. All
    // three runs must agree exactly.
    SnapshotRegistry reg;
    auto warmed_build = sched.epochSweep(workloads, configs, reg);
    EXPECT_EQ(reg.stats().builds, configs.size());
    auto warmed_replay = sched.epochSweep(workloads, configs, reg);
    EXPECT_EQ(reg.stats().builds, configs.size());
    EXPECT_GE(reg.stats().memoryHits, configs.size());

    ASSERT_EQ(plain.size(), warmed_build.size());
    ASSERT_EQ(plain.size(), warmed_replay.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        for (const auto *other : {&warmed_build[i], &warmed_replay[i]}) {
            EXPECT_EQ(plain[i].workload, other->workload);
            EXPECT_EQ(plain[i].config, other->config);
            EXPECT_EQ(plain[i].iterations, other->iterations);
            EXPECT_EQ(plain[i].trainSec, other->trainSec);
            EXPECT_EQ(plain[i].evalSec, other->evalSec);
            EXPECT_EQ(plain[i].throughput, other->throughput);
            EXPECT_TRUE(plain[i].counters == other->counters);
        }
    }
}

TEST(ModelSnapshotDeathTest, MisuseFailsLoudly)
{
    Experiment donor(makeDs2Workload());
    donor.setProfileThreads(1);
    auto snap = donor.snapshot(sim::GpuConfig::config1());

    // Seeding after a query is too late.
    Experiment late(makeDs2Workload());
    late.setProfileThreads(1);
    late.iterTime(sim::GpuConfig::config1(), 40);
    EXPECT_DEATH(late.seedFrom(snap), "seedFrom");

    // Seeding a different workload's experiment is a category error.
    Experiment wrong(makeGnmtWorkload());
    EXPECT_DEATH(wrong.seedFrom(snap), "workload");

    // Same workload name is not enough: a same-name variant with a
    // different run seed holds different results.
    Experiment variant(makeDs2Workload(31));
    EXPECT_DEATH(variant.seedFrom(snap), "parameters");

    // Disabling memoization after adopting a snapshot would strand
    // the seeded profile memos; it must fail at the misuse site, not
    // deep inside the first query.
    Experiment unmemo(makeDs2Workload());
    unmemo.seedFrom(snap);
    EXPECT_DEATH(unmemo.setMemoizeProfiles(false), "memoization");
}

} // anonymous namespace
} // namespace harness
} // namespace seqpoint
