/**
 * @file
 * Integration tests: the full pipeline (dataset -> batching -> model
 * lowering -> GPU simulation -> profiling -> SeqPoint selection ->
 * cross-configuration projection), checking the paper's headline
 * claims hold qualitatively in this reproduction.
 */

#include <gtest/gtest.h>

#include "common/stats_math.hh"
#include "harness/experiment.hh"

namespace seqpoint {
namespace harness {
namespace {

using core::SelectorKind;

/** Shared, lazily built experiments (epoch runs are memoized). */
Experiment &
gnmtExp()
{
    static Experiment exp(makeGnmtWorkload());
    return exp;
}

Experiment &
ds2Exp()
{
    static Experiment exp(makeDs2Workload());
    return exp;
}

TEST(Workloads, FactoriesMatchPaperSetup)
{
    const Workload &g = gnmtExp().workload();
    EXPECT_EQ(g.name, "GNMT");
    EXPECT_EQ(g.batchSize, 64u);
    EXPECT_EQ(g.model.name(), "GNMT");

    const Workload &d = ds2Exp().workload();
    EXPECT_EQ(d.name, "DS2");
    EXPECT_EQ(d.policy, data::BatchPolicy::SortedBySl);
}

TEST(Experiment, EpochLogMemoized)
{
    auto cfg = sim::GpuConfig::config1();
    const prof::TrainLog &a = ds2Exp().epochLog(cfg);
    const prof::TrainLog &b = ds2Exp().epochLog(cfg);
    EXPECT_EQ(&a, &b);
}

TEST(Experiment, SameNameDifferentParamsDoNotAliasState)
{
    // Regression: per-config state used to key on the name alone, so
    // two configs sharing a name silently shared one ConfigState.
    Experiment exp(makeDs2Workload(29));
    sim::GpuConfig fast = sim::GpuConfig::config1();
    sim::GpuConfig slow = sim::GpuConfig::config2();
    slow.name = fast.name; // same name, half the clock

    EXPECT_NE(fast.signature(), slow.signature());

    double t_fast = exp.actualTrainSec(fast);
    double t_slow = exp.actualTrainSec(slow);
    EXPECT_GT(t_slow, t_fast * 1.2);

    // And the logs are distinct memo entries, not one shared state.
    EXPECT_NE(&exp.epochLog(fast), &exp.epochLog(slow));
}

TEST(ExperimentDeathTest, MemoizeToggleAfterQueryPanics)
{
    // Regression (set-after-query misuse): memoization mode freezes
    // into per-config state at creation, so changing it after a query
    // used to silently not apply. It must fail loudly instead.
    Experiment exp(makeDs2Workload(31));
    auto cfg = sim::GpuConfig::config1();
    EXPECT_GT(exp.iterTime(cfg, 40), 0.0); // freezes memoizing state
    EXPECT_DEATH(exp.setMemoizeProfiles(false), "setMemoizeProfiles");
    // Re-asserting the value already in force is not a change.
    exp.setMemoizeProfiles(true);
    EXPECT_GT(exp.actualTrainSec(cfg), 0.0);
}

TEST(Experiment, MemoizeOffBeforeFirstQueryStillApplies)
{
    Experiment exp(makeDs2Workload(31));
    exp.setMemoizeProfiles(false);
    auto cfg = sim::GpuConfig::config1();
    EXPECT_GT(exp.actualTrainSec(cfg), 0.0);
}

TEST(Experiment, TimingCacheToggleRetrofitsExistingStates)
{
    // Regression (set-after-query misuse): disabling the kernel-
    // timing cache after a configuration was queried used to leave
    // that configuration's device caching forever. The setter now
    // retrofits live states: with the cache off, fresh profiling
    // performs no lookups at all.
    Experiment exp(makeDs2Workload(31));
    auto cfg = sim::GpuConfig::config1();
    EXPECT_GT(exp.iterTime(cfg, 40), 0.0); // creates the state
    EXPECT_GT(exp.timingCacheStats(cfg).lookups(), 0u);

    exp.setTimingCacheEnabled(false);
    uint64_t before = exp.timingCacheStats(cfg).lookups();
    double t_uncached = exp.iterTime(cfg, 60); // fresh SL, no cache
    EXPECT_EQ(exp.timingCacheStats(cfg).lookups(), before);

    exp.setTimingCacheEnabled(true);
    exp.iterTime(cfg, 80); // fresh SL, cache consulted again
    EXPECT_GT(exp.timingCacheStats(cfg).lookups(), before);

    // Timings are pure functions of the configuration, so toggling
    // never changes values.
    Experiment fresh(makeDs2Workload(31));
    EXPECT_EQ(t_uncached, fresh.iterTime(cfg, 60));
}

TEST(Experiment, SlStatsMemoizedAndEqualToRecompute)
{
    // Regression: buildAllSelections used to recompute slStats from
    // the full epoch log once per selector. The memoized stats must
    // be the same object across calls and equal a from-scratch
    // recompute.
    Experiment exp(makeDs2Workload(31));
    auto cfg = sim::GpuConfig::config1();
    const core::SlStats &a = exp.slStats(cfg);
    const core::SlStats &b = exp.slStats(cfg);
    EXPECT_EQ(&a, &b);

    core::SlStats fresh =
        core::SlStats::fromIterations(exp.epochSamples(cfg));
    ASSERT_EQ(a.uniqueCount(), fresh.uniqueCount());
    for (size_t i = 0; i < a.entries().size(); ++i) {
        EXPECT_EQ(a.entries()[i].seqLen, fresh.entries()[i].seqLen);
        EXPECT_EQ(a.entries()[i].freq, fresh.entries()[i].freq);
        EXPECT_EQ(a.entries()[i].statValue,
                  fresh.entries()[i].statValue);
    }
}

TEST(Experiment, SelectionsMemoizedAndEqualToRecompute)
{
    Experiment exp(makeDs2Workload(31));
    auto cfg = sim::GpuConfig::config1();
    for (core::SelectorKind kind :
         {SelectorKind::Worst, SelectorKind::Frequent,
          SelectorKind::Median, SelectorKind::Prior,
          SelectorKind::SeqPoint}) {
        const core::SeqPointSet &a = exp.buildSelection(kind, cfg);
        const core::SeqPointSet &b = exp.buildSelection(kind, cfg);
        EXPECT_EQ(&a, &b) << core::selectorName(kind);

        // The memoized set must equal what a fresh experiment
        // recomputes from scratch (bit-exact field-wise equality).
        Experiment fresh(makeDs2Workload(31));
        const core::SeqPointSet &r = fresh.buildSelection(kind, cfg);
        EXPECT_TRUE(a == r) << core::selectorName(kind);
    }
}

TEST(Experiment, EpochScaleMatchesPaperSetup)
{
    auto cfg = sim::GpuConfig::config1();
    // A few hundred iterations per epoch; unique SLs a large fraction
    // of them (paper: "up to half of all iterations" for DS2).
    const prof::TrainLog &d = ds2Exp().epochLog(cfg);
    EXPECT_GT(d.numIterations(), 400u);
    auto stats = ds2Exp().slStats(cfg);
    EXPECT_GT(stats.uniqueCount(), d.numIterations() / 3);

    const prof::TrainLog &g = gnmtExp().epochLog(cfg);
    EXPECT_GT(g.numIterations(), 400u);
}

TEST(Experiment, EvalPhaseIsFewPercent)
{
    // Paper section IV-C1: evaluation takes up to 2-3% of the run.
    auto cfg = sim::GpuConfig::config1();
    for (Experiment *exp : {&ds2Exp(), &gnmtExp()}) {
        const prof::TrainLog &log = exp->epochLog(cfg);
        double frac = log.evalSec / log.totalSec();
        EXPECT_GT(frac, 0.005);
        EXPECT_LT(frac, 0.06);
    }
}

TEST(Experiment, SeqPointCountsAreSmall)
{
    auto cfg1 = sim::GpuConfig::config1();
    auto sp_g = gnmtExp().buildSelection(SelectorKind::SeqPoint, cfg1);
    auto sp_d = ds2Exp().buildSelection(SelectorKind::SeqPoint, cfg1);
    // Paper: 15 (GNMT) and 8 (DS2). Ours land in the same regime,
    // with GNMT needing more points than DS2.
    EXPECT_GE(sp_g.points.size(), 10u);
    EXPECT_LE(sp_g.points.size(), 20u);
    EXPECT_GE(sp_d.points.size(), 4u);
    EXPECT_LE(sp_d.points.size(), 12u);
    EXPECT_GT(sp_g.points.size(), sp_d.points.size());
    EXPECT_TRUE(sp_g.converged);
    EXPECT_TRUE(sp_d.converged);
}

TEST(Experiment, SeqPointTimeProjectionAccurateOnAllConfigs)
{
    // Fig 11/12 headline: SeqPoints selected on config #1 project
    // training time accurately on every configuration.
    auto cfg1 = sim::GpuConfig::config1();
    for (Experiment *exp : {&ds2Exp(), &gnmtExp()}) {
        auto sp = exp->buildSelection(SelectorKind::SeqPoint, cfg1);
        for (const auto &cfg : sim::GpuConfig::table2()) {
            double err = core::timeErrorPercent(
                exp->projectedTrainSec(sp, cfg),
                exp->actualTrainSec(cfg));
            EXPECT_LT(err, 1.5) << exp->workload().name << " "
                                << cfg.name;
        }
    }
}

TEST(Experiment, SelectorErrorOrderingMatchesPaper)
{
    auto cfg1 = sim::GpuConfig::config1();
    for (Experiment *exp : {&ds2Exp(), &gnmtExp()}) {
        auto sels = exp->buildAllSelections(cfg1);
        std::map<SelectorKind, double> geo;
        for (auto &[kind, sel] : sels) {
            std::vector<double> errs;
            for (const auto &cfg : sim::GpuConfig::table2()) {
                errs.push_back(core::timeErrorPercent(
                    exp->projectedTrainSec(sel, cfg),
                    exp->actualTrainSec(cfg)));
            }
            geo[kind] = geomean(errs);
        }
        EXPECT_LT(geo[SelectorKind::SeqPoint],
                  geo[SelectorKind::Prior]);
        EXPECT_LT(geo[SelectorKind::Prior],
                  geo[SelectorKind::Median]);
        EXPECT_LT(geo[SelectorKind::Median],
                  geo[SelectorKind::Frequent]);
        EXPECT_LT(geo[SelectorKind::Frequent],
                  geo[SelectorKind::Worst]);
    }
}

TEST(Experiment, SeqPointSpeedupProjectionBeatsSingleIteration)
{
    // Fig 15/16: SeqPoint's uplift projections beat the
    // single-iteration proxies.
    auto cfgs = sim::GpuConfig::table2();
    for (Experiment *exp : {&ds2Exp(), &gnmtExp()}) {
        auto sels = exp->buildAllSelections(cfgs[0]);
        std::map<SelectorKind, double> worst_err;
        for (auto &[kind, sel] : sels) {
            double w = 0.0;
            double pt1 = exp->projectedThroughput(sel, cfgs[0]);
            double at1 = exp->actualThroughput(cfgs[0]);
            for (size_t i = 1; i < cfgs.size(); ++i) {
                double ptx = exp->projectedThroughput(sel, cfgs[i]);
                double atx = exp->actualThroughput(cfgs[i]);
                w = std::max(w, core::upliftErrorPoints(
                    core::upliftPercent(ptx, pt1),
                    core::upliftPercent(atx, at1)));
            }
            worst_err[kind] = w;
        }
        EXPECT_LT(worst_err[SelectorKind::SeqPoint], 0.5);
        EXPECT_LT(worst_err[SelectorKind::SeqPoint],
                  worst_err[SelectorKind::Median]);
        EXPECT_LT(worst_err[SelectorKind::SeqPoint],
                  worst_err[SelectorKind::Frequent]);
        EXPECT_LT(worst_err[SelectorKind::SeqPoint],
                  worst_err[SelectorKind::Worst]);
    }
}

TEST(Experiment, ProfilingSpeedupOrdersOfMagnitude)
{
    // Section VI-F: profiling only the SeqPoints cuts profiling time
    // by 1-2 orders of magnitude; parallel execution cuts it further.
    auto cfg1 = sim::GpuConfig::config1();
    for (Experiment *exp : {&ds2Exp(), &gnmtExp()}) {
        auto sp = exp->buildSelection(SelectorKind::SeqPoint, cfg1);
        double seqpoint_time = 0.0, longest = 0.0;
        for (const auto &p : sp.points) {
            double t = exp->iterTime(cfg1, p.seqLen);
            seqpoint_time += t;
            longest = std::max(longest, t);
        }
        double epoch = exp->actualTrainSec(cfg1);
        // Iteration-count reduction (the paper's 40x / 72x metric).
        double count_ratio =
            static_cast<double>(exp->epochLog(cfg1).numIterations()) /
            static_cast<double>(sp.points.size());
        EXPECT_GT(count_ratio, 30.0) << exp->workload().name;
        // Measured-time reduction, sequential and parallel.
        double sequential = epoch / seqpoint_time;
        double parallel = epoch / longest;
        EXPECT_GT(sequential, 10.0) << exp->workload().name;
        EXPECT_GT(parallel, sequential) << exp->workload().name;
        EXPECT_GT(parallel, 60.0) << exp->workload().name;
    }
}

TEST(Experiment, CnnIterationsHomogeneous)
{
    // Fig 3: CNN iterations are all alike.
    Experiment exp(makeCnnWorkload());
    auto cfg1 = sim::GpuConfig::config1();
    const prof::TrainLog &log = exp.epochLog(cfg1);
    for (const auto &it : log.iterations)
        EXPECT_DOUBLE_EQ(it.timeSec, log.iterations[0].timeSec);
    EXPECT_EQ(exp.slStats(cfg1).uniqueCount(), 1u);
}

TEST(Experiment, SqnnIterationsHeterogeneous)
{
    // Fig 3/4: SQNN iteration times spread widely.
    auto cfg1 = sim::GpuConfig::config1();
    std::vector<double> times;
    for (const auto &it : gnmtExp().epochLog(cfg1).iterations)
        times.push_back(it.timeSec);
    EXPECT_GT(maxOf(times) / minOf(times), 3.0);
}

TEST(Experiment, UpliftSensitivityVariesAcrossSl)
{
    // Figs 13/14: per-SL uplift varies along the SL axis.
    auto cfgs = sim::GpuConfig::table2();
    Experiment &exp = ds2Exp();
    std::vector<double> uplift;
    for (int64_t sl = 60; sl <= 440; sl += 20) {
        double t1 = exp.iterTime(cfgs[0], sl);
        double t2 = exp.iterTime(cfgs[1], sl);
        uplift.push_back((t2 / t1 - 1.0) * 100.0);
    }
    EXPECT_GT(maxOf(uplift) - minOf(uplift), 5.0);
}

} // anonymous namespace
} // namespace harness
} // namespace seqpoint
