/**
 * @file
 * Chaos test: a registry-backed epoch sweep survives a deterministic
 * storm of injected faults -- snapshot reads failing, store files
 * corrupted on disk, persists dropped, cells blowing up mid-flight --
 * and still converges to results bit-identical to a clean serial
 * sweep. This is the whole fault-containment story exercised end to
 * end: ThreadPool exception capture, tryLoadSnapshot classification,
 * registry quarantine + cold rebuild, and per-cell retries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.hh"
#include "common/logging.hh"
#include "harness/scheduler.hh"
#include "harness/snapshot_registry.hh"

namespace seqpoint {
namespace harness {
namespace {

namespace fs = std::filesystem;

std::vector<WorkloadFactory>
chaosWorkloads()
{
    return {[] { return makeGnmtWorkload(); },
            [] { return makeDs2Workload(); }};
}

std::vector<sim::GpuConfig>
chaosConfigs()
{
    return {sim::GpuConfig::config1(), sim::GpuConfig::config2()};
}

void
expectCellsIdentical(const std::vector<EpochCellResult> &a,
                     const std::vector<EpochCellResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload) << "cell " << i;
        EXPECT_EQ(a[i].config, b[i].config) << "cell " << i;
        EXPECT_EQ(a[i].iterations, b[i].iterations) << "cell " << i;
        EXPECT_EQ(a[i].trainSec, b[i].trainSec) << "cell " << i;
        EXPECT_EQ(a[i].evalSec, b[i].evalSec) << "cell " << i;
        EXPECT_EQ(a[i].throughput, b[i].throughput) << "cell " << i;
        EXPECT_EQ(a[i].counters.busySec, b[i].counters.busySec)
            << "cell " << i;
        EXPECT_EQ(a[i].counters.dramBytes, b[i].counters.dramBytes)
            << "cell " << i;
    }
}

/** Flip one payload byte of a store file (checksum now fails). */
void
corruptStoreFile(const std::string &path)
{
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good()) << path;
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_GT(bytes.size(), 32u);
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

TEST(Chaos, FaultStormSweepConvergesToCleanResults)
{
    FaultInjector::instance().reset();
    setQuietLogging(true);

    auto workloads = chaosWorkloads();
    auto configs = chaosConfigs();

    // The clean reference: serial, registry-free, no faults.
    ExperimentScheduler serial(1);
    auto clean = serial.epochSweep(workloads, configs);
    ASSERT_EQ(clean.size(), 4u);

    // Warm a store so the chaos sweep has files to lose.
    std::string dir =
        (fs::path(testing::TempDir()) / "chaos_store").string();
    fs::remove_all(dir);
    {
        SnapshotRegistry warm(dir);
        ExperimentScheduler warmer(2);
        auto warmed = warmer.epochSweep(workloads, configs, warm);
        expectCellsIdentical(warmed, clean);
    }

    // Corrupt every other store file on disk.
    size_t corrupted = 0;
    std::vector<std::string> store_files;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".bin")
            store_files.push_back(entry.path().string());
    }
    std::sort(store_files.begin(), store_files.end());
    for (size_t i = 0; i < store_files.size(); i += 2) {
        corruptStoreFile(store_files[i]);
        ++corrupted;
    }
    ASSERT_GT(corrupted, 0u);

    // The storm, all deterministic: seeded read faults (capped so
    // the degrade path always terminates), seeded cell faults
    // (capped below the retry budget), and one dropped persist.
    auto &inj = FaultInjector::instance();
    inj.armSeeded("snapshot_io.read", "", /*seed=*/0xc4a05, /*rate=*/
                  0.5, /*max_fires=*/2, ErrorCode::IoError);
    inj.armSeeded("scheduler.cell", "", /*seed=*/0x5eed, /*rate=*/0.5,
                  /*max_fires=*/2, ErrorCode::Timeout);
    inj.armAt("registry.save", "", {1});

    SnapshotRegistry reg(dir);
    ExperimentScheduler chaos(2);
    chaos.setCellRetries(3); // outlasts the capped cell faults
    chaos.setRetryBackoff(0.0);
    std::vector<CellTiming> timings;
    auto stormy = chaos.epochSweep(workloads, configs, reg, &timings);

    // Every cell survived (retries + degradation absorbed the storm)
    // and every result is bit-identical to the clean serial run.
    for (size_t i = 0; i < stormy.size(); ++i)
        EXPECT_FALSE(stormy[i].failed)
            << "cell " << i << ": " << stormy[i].error;
    expectCellsIdentical(stormy, clean);

    // The corrupted files were quarantined (not silently adopted,
    // not fatal) and rebuilt under their original names.
    EXPECT_GE(reg.stats().quarantines, corrupted);
    size_t corpses = 0;
    for (const auto &entry : fs::directory_iterator(dir))
        corpses += entry.path().extension() == ".corrupt";
    EXPECT_GE(corpses, corrupted);

    // Replaying the storm with the same seeds fires identically --
    // the chaos schedule is a reproducible artifact, not luck.
    uint64_t read_fired = inj.fired("snapshot_io.read");
    uint64_t cell_fired = inj.fired("scheduler.cell");
    EXPECT_GT(cell_fired, 0u);
    EXPECT_LE(cell_fired, 2u);
    EXPECT_LE(read_fired, 2u);

    FaultInjector::instance().reset();
    setQuietLogging(false);
}

TEST(Chaos, StrictModeDiesOnTheSameCorruption)
{
    // The escape hatch: the same on-disk corruption that the default
    // mode degrades around must stay loudly fatal under strict mode.
    FaultInjector::instance().reset();
    setQuietLogging(true);
    std::string dir =
        (fs::path(testing::TempDir()) / "chaos_strict").string();
    fs::remove_all(dir);

    auto make = [] { return makeDs2Workload(); };
    auto cfg = sim::GpuConfig::config1();
    {
        SnapshotRegistry warm(dir);
        ASSERT_TRUE(warm.acquire(make, cfg, 1) != nullptr);
    }
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".bin")
            corruptStoreFile(entry.path().string());
    }

    SnapshotRegistry reg(dir);
    reg.setStrict(true);
    EXPECT_DEATH((void)reg.acquire(make, cfg, 1),
                 "checksum mismatch");
    setQuietLogging(false);
}

} // anonymous namespace
} // namespace harness
} // namespace seqpoint
