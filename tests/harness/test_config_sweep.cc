/**
 * @file
 * Parameterized whole-pipeline invariants swept across the Table II
 * configurations and both evaluated networks: physical monotonicity
 * of epoch times, throughput/uplift consistency, projection
 * conservation laws, and determinism of repeated runs.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace seqpoint {
namespace harness {
namespace {

/** One shared experiment per network (epochs are expensive-ish). */
Experiment &
expFor(const std::string &net)
{
    static Experiment gnmt(makeGnmtWorkload());
    static Experiment ds2(makeDs2Workload());
    return net == "GNMT" ? gnmt : ds2;
}

class ConfigSweep
    : public testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    Experiment &exp() { return expFor(std::get<0>(GetParam())); }

    sim::GpuConfig
    cfg() const
    {
        return sim::GpuConfig::table2()[
            static_cast<size_t>(std::get<1>(GetParam()))];
    }
};

TEST_P(ConfigSweep, DegradedConfigsNeverFasterThanBaseline)
{
    auto base = sim::GpuConfig::config1();
    EXPECT_GE(exp().actualTrainSec(cfg()),
              exp().actualTrainSec(base) * 0.999);
}

TEST_P(ConfigSweep, ThroughputMatchesIterationsOverTime)
{
    const prof::TrainLog &log = exp().epochLog(cfg());
    double expected = static_cast<double>(log.numIterations()) *
        exp().workload().batchSize / log.trainSec;
    EXPECT_NEAR(exp().actualThroughput(cfg()), expected,
                1e-9 * expected);
}

TEST_P(ConfigSweep, EpochIterationCountConfigIndependent)
{
    auto base = sim::GpuConfig::config1();
    EXPECT_EQ(exp().epochLog(cfg()).numIterations(),
              exp().epochLog(base).numIterations());
}

TEST_P(ConfigSweep, IterationSlSequenceConfigIndependent)
{
    // The data pipeline is independent of the device: the same seed
    // yields the same SL sequence everywhere.
    auto base = sim::GpuConfig::config1();
    const auto &a = exp().epochLog(cfg()).iterations;
    const auto &b = exp().epochLog(base).iterations;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i += 37)
        EXPECT_EQ(a[i].seqLen, b[i].seqLen);
}

TEST_P(ConfigSweep, EpochTimeEqualsSlStatsTotal)
{
    // Conservation: the SlStats aggregation preserves the epoch sum.
    double total = exp().slStats(cfg()).actualTotal();
    EXPECT_NEAR(total, exp().actualTrainSec(cfg()),
                1e-6 * total);
}

TEST_P(ConfigSweep, AllUniqueSelectionProjectsExactly)
{
    // Degenerate SeqPoint (every unique SL its own point) reproduces
    // the epoch total exactly on the same configuration.
    auto stats = exp().slStats(cfg());
    core::SeqPointOptions opts;
    opts.uniqueSlThreshold =
        static_cast<unsigned>(stats.uniqueCount());
    auto set = core::selectSeqPoints(stats, opts);
    EXPECT_TRUE(set.usedAllUnique);
    EXPECT_NEAR(set.projectTotal(), stats.actualTotal(),
                1e-9 * stats.actualTotal());
}

TEST_P(ConfigSweep, RuntimeMonotoneInSlOnEveryConfig)
{
    double prev = 0.0;
    for (int64_t sl = 20; sl <= 200; sl += 30) {
        double t = exp().iterTime(cfg(), sl);
        EXPECT_GT(t, prev) << "SL " << sl;
        prev = t;
    }
}

TEST_P(ConfigSweep, SeqPointProjectionWithinTwoPercentEverywhere)
{
    auto base = sim::GpuConfig::config1();
    auto sp = exp().buildSelection(core::SelectorKind::SeqPoint, base);
    double err = core::timeErrorPercent(
        exp().projectedTrainSec(sp, cfg()),
        exp().actualTrainSec(cfg()));
    EXPECT_LT(err, 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    NetworksByConfigs, ConfigSweep,
    testing::Combine(testing::Values(std::string("GNMT"),
                                     std::string("DS2")),
                     testing::Values(0, 1, 2, 3, 4)),
    [](const testing::TestParamInfo<ConfigSweep::ParamType> &info) {
        return std::get<0>(info.param) + "_config" +
            std::to_string(std::get<1>(info.param) + 1);
    });

TEST(Determinism, RepeatedExperimentsIdentical)
{
    // A fresh experiment with the same seed reproduces the epoch
    // bit-for-bit.
    Experiment a(makeDs2Workload(5));
    Experiment b(makeDs2Workload(5));
    auto cfg = sim::GpuConfig::config1();
    const auto &la = a.epochLog(cfg);
    const auto &lb = b.epochLog(cfg);
    ASSERT_EQ(la.numIterations(), lb.numIterations());
    EXPECT_DOUBLE_EQ(la.trainSec, lb.trainSec);
    EXPECT_DOUBLE_EQ(la.evalSec, lb.evalSec);
    for (size_t i = 0; i < la.iterations.size(); ++i) {
        EXPECT_EQ(la.iterations[i].seqLen, lb.iterations[i].seqLen);
        EXPECT_DOUBLE_EQ(la.iterations[i].timeSec,
                         lb.iterations[i].timeSec);
    }
}

TEST(Determinism, DifferentSeedsDifferentEpochOrder)
{
    Experiment a(makeGnmtWorkload(5));
    Experiment b(makeGnmtWorkload(6));
    auto cfg = sim::GpuConfig::config1();
    const auto &la = a.epochLog(cfg).iterations;
    const auto &lb = b.epochLog(cfg).iterations;
    bool any_diff = la.size() != lb.size();
    for (size_t i = 0; !any_diff && i < la.size(); ++i)
        any_diff = la[i].seqLen != lb[i].seqLen;
    EXPECT_TRUE(any_diff);
}

} // anonymous namespace
} // namespace harness
} // namespace seqpoint
