/**
 * @file
 * Determinism tests for the parallel profiling sweep: the parallel,
 * memoized engine must produce byte-identical logs and profiles to
 * the serial uncached baseline.
 */

#include <gtest/gtest.h>

#include <memory>

#include "nn/layers/fully_connected.hh"
#include "nn/layers/recurrent.hh"
#include "nn/layers/softmax_loss.hh"
#include "profiler/profiler.hh"
#include "profiler/trainer.hh"

namespace seqpoint {
namespace prof {
namespace {

nn::Model
smallRnn()
{
    nn::Model m("small");
    m.add(std::make_unique<nn::RecurrentLayer>(
        "rnn", nn::CellType::Gru, 128, 128, false,
        nn::TimeAxis::Source));
    m.add(std::make_unique<nn::FullyConnectedLayer>(
        "fc", 128, 32, nn::TimeAxis::Source));
    m.add(std::make_unique<nn::SoftmaxLossLayer>(
        "loss", 32, nn::TimeAxis::Source));
    return m;
}

data::Dataset
smallDataset()
{
    data::Dataset ds;
    ds.name = "tiny";
    Rng rng(4);
    for (int i = 0; i < 1280; ++i)
        ds.trainLens.push_back(rng.uniformInt(10, 100));
    for (int i = 0; i < 128; ++i)
        ds.evalLens.push_back(rng.uniformInt(10, 100));
    return ds;
}

void
expectLogsBitIdentical(const TrainLog &a, const TrainLog &b)
{
    ASSERT_EQ(a.numIterations(), b.numIterations());
    for (size_t i = 0; i < a.iterations.size(); ++i) {
        EXPECT_EQ(a.iterations[i].seqLen, b.iterations[i].seqLen);
        EXPECT_EQ(a.iterations[i].timeSec, b.iterations[i].timeSec);
    }
    EXPECT_EQ(a.trainSec, b.trainSec);
    EXPECT_EQ(a.evalSec, b.evalSec);
    EXPECT_EQ(a.autotuneSec, b.autotuneSec);
    EXPECT_EQ(a.counters.kernelsLaunched, b.counters.kernelsLaunched);
    EXPECT_EQ(a.counters.valuInsts, b.counters.valuInsts);
    EXPECT_EQ(a.counters.bytesLoaded, b.counters.bytesLoaded);
    EXPECT_EQ(a.counters.bytesStored, b.counters.bytesStored);
    EXPECT_EQ(a.counters.dramBytes, b.counters.dramBytes);
    EXPECT_EQ(a.counters.busySec, b.counters.busySec);
    EXPECT_EQ(a.counters.writeStallSec, b.counters.writeStallSec);
}

TEST(ParallelSweep, EpochLogBitIdenticalToSerial)
{
    nn::Model model = smallRnn();
    data::Dataset ds = smallDataset();

    TrainConfig serial;
    sim::Gpu gpu_serial(sim::GpuConfig::config1());
    TrainLog base = runTrainingEpoch(gpu_serial, model, ds, serial);

    TrainConfig parallel = serial;
    parallel.profileThreads = 4;
    sim::Gpu gpu_parallel(sim::GpuConfig::config1());
    TrainLog par = runTrainingEpoch(gpu_parallel, model, ds, parallel);

    expectLogsBitIdentical(base, par);
}

TEST(ParallelSweep, UncachedBaselineBitIdenticalToMemoized)
{
    // The profiling-speedup bench's contract: disabling the per-SL
    // memo AND the kernel-timing cache changes nothing but the time
    // it takes.
    nn::Model model = smallRnn();
    data::Dataset ds = smallDataset();

    TrainConfig memo;
    sim::Gpu gpu_memo(sim::GpuConfig::config1());
    TrainLog a = runTrainingEpoch(gpu_memo, model, ds, memo);

    TrainConfig uncached;
    uncached.memoizeProfiles = false;
    sim::Gpu gpu_raw(sim::GpuConfig::config1(),
                     /*enable_timing_cache=*/false);
    TrainLog b = runTrainingEpoch(gpu_raw, model, ds, uncached);

    EXPECT_GT(gpu_memo.timingCacheStats().hits, 0u);
    EXPECT_EQ(gpu_raw.timingCacheStats().lookups(), 0u);
    expectLogsBitIdentical(a, b);
}

TEST(ParallelSweep, WarmedProfilesMatchOnDemandProfiles)
{
    nn::Model model = smallRnn();

    sim::Gpu gpu_a(sim::GpuConfig::config1());
    nn::Autotuner tuner_a(nn::Autotuner::Mode::Heuristic);
    Profiler warmed(gpu_a, model, tuner_a, 64);

    sim::Gpu gpu_b(sim::GpuConfig::config1());
    nn::Autotuner tuner_b(nn::Autotuner::Mode::Heuristic);
    Profiler lazy(gpu_b, model, tuner_b, 64);

    std::vector<int64_t> sls{40, 10, 70, 40, 10, 25};
    warmed.warmTrainProfiles(sls, 4);
    EXPECT_EQ(warmed.cacheSize(), 4u); // unique SLs only

    for (int64_t sl : {10, 25, 40, 70}) {
        const IterationProfile &w = warmed.profileIteration(sl);
        const IterationProfile &l = lazy.profileIteration(sl);
        EXPECT_EQ(w.timeSec, l.timeSec);
        EXPECT_EQ(w.launches, l.launches);
        EXPECT_EQ(w.counters.dramBytes, l.counters.dramBytes);
    }
    // Warming is idempotent: everything is already cached.
    warmed.warmTrainProfiles(sls, 4);
    EXPECT_EQ(warmed.cacheSize(), 4u);
}

TEST(ParallelSweep, NonMemoizingProfilerRecomputes)
{
    nn::Model model = smallRnn();
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    Profiler raw(gpu, model, tuner, 64, /*memoize=*/false);

    double t1 = raw.profileIteration(50).timeSec;
    double t2 = raw.profileIteration(50).timeSec;
    EXPECT_EQ(t1, t2);          // pure function of SL
    EXPECT_EQ(raw.cacheSize(), 0u); // but nothing is memoized
    EXPECT_FALSE(raw.memoizing());
}

} // anonymous namespace
} // namespace prof
} // namespace seqpoint
