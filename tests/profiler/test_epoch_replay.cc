/**
 * @file
 * Tests for the unique-SL epoch-replay engine: the replayed log must
 * be bit-identical to the per-iteration path, the caller-owned
 * profiler overload must reuse profiles across epochs, and the
 * records-free execution path must match the record-keeping one.
 */

#include <gtest/gtest.h>

#include "harness/workloads.hh"
#include "profiler/trainer.hh"

namespace seqpoint {
namespace prof {
namespace {

/** Full bit-exact comparison of two epoch logs. */
void
expectLogsIdentical(const TrainLog &a, const TrainLog &b,
                    bool compare_autotune = true)
{
    ASSERT_EQ(a.numIterations(), b.numIterations());
    EXPECT_EQ(a.trainSec, b.trainSec);
    EXPECT_EQ(a.evalSec, b.evalSec);
    if (compare_autotune)
        EXPECT_EQ(a.autotuneSec, b.autotuneSec);
    for (size_t i = 0; i < a.iterations.size(); ++i) {
        EXPECT_EQ(a.iterations[i].seqLen, b.iterations[i].seqLen);
        EXPECT_EQ(a.iterations[i].timeSec, b.iterations[i].timeSec);
    }
    EXPECT_EQ(a.counters.kernelsLaunched, b.counters.kernelsLaunched);
    EXPECT_EQ(a.counters.valuInsts, b.counters.valuInsts);
    EXPECT_EQ(a.counters.bytesLoaded, b.counters.bytesLoaded);
    EXPECT_EQ(a.counters.bytesStored, b.counters.bytesStored);
    EXPECT_EQ(a.counters.l1HitBytes, b.counters.l1HitBytes);
    EXPECT_EQ(a.counters.l2HitBytes, b.counters.l2HitBytes);
    EXPECT_EQ(a.counters.dramBytes, b.counters.dramBytes);
    EXPECT_EQ(a.counters.busySec, b.counters.busySec);
    EXPECT_EQ(a.counters.launchSec, b.counters.launchSec);
}

TrainConfig
gnmtConfig(const harness::Workload &wl)
{
    TrainConfig tc;
    tc.batchSize = wl.batchSize;
    tc.policy = wl.policy;
    tc.seed = wl.seed;
    tc.evalCostMultiplier = wl.evalCostMultiplier;
    return tc;
}

TEST(EpochReplay, ReplayBitIdenticalToPerIterationPath)
{
    harness::Workload wl = harness::makeGnmtWorkload(11);
    sim::Gpu gpu(sim::GpuConfig::config1());
    TrainConfig tc = gnmtConfig(wl);

    tc.uniqueSlReplay = false;
    TrainLog per_iter = runTrainingEpoch(gpu, wl.model, wl.dataset, tc);

    tc.uniqueSlReplay = true;
    TrainLog replay = runTrainingEpoch(gpu, wl.model, wl.dataset, tc);

    expectLogsIdentical(per_iter, replay);
}

TEST(EpochReplay, ReplayBitIdenticalToUnmemoizedBaseline)
{
    harness::Workload wl = harness::makeDs2Workload(13);
    sim::Gpu gpu(sim::GpuConfig::config1(), /*timing_cache=*/false);
    TrainConfig tc = gnmtConfig(wl);

    tc.memoizeProfiles = false;
    TrainLog baseline = runTrainingEpoch(gpu, wl.model, wl.dataset, tc);

    tc.memoizeProfiles = true;
    tc.uniqueSlReplay = true;
    TrainLog replay = runTrainingEpoch(gpu, wl.model, wl.dataset, tc);

    expectLogsIdentical(baseline, replay);
}

TEST(EpochReplay, PersistentProfilerReusesProfilesAcrossEpochs)
{
    harness::Workload wl = harness::makeGnmtWorkload(17);
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Autotuner tuner(nn::Autotuner::Mode::Measured, &gpu);
    Profiler profiler(gpu, wl.model, tuner, wl.batchSize);
    TrainConfig tc = gnmtConfig(wl);

    TrainLog first = runTrainingEpoch(profiler, wl.dataset, tc);
    size_t profiles_after_first = profiler.cacheSize();
    EXPECT_GT(profiles_after_first, 0u);
    EXPECT_GT(first.autotuneSec, 0.0);

    // Same seed again: no new SLs, no new profiles, no new tuning --
    // and a log bit-identical to the fresh-profiler overload's.
    TrainLog second = runTrainingEpoch(profiler, wl.dataset, tc);
    EXPECT_EQ(profiler.cacheSize(), profiles_after_first);
    EXPECT_EQ(second.autotuneSec, 0.0);
    expectLogsIdentical(first, second, /*compare_autotune=*/false);

    TrainLog fresh = runTrainingEpoch(gpu, wl.model, wl.dataset, tc);
    expectLogsIdentical(fresh, second, /*compare_autotune=*/false);
}

TEST(EpochReplay, PersistentProfilerMatchesFreshAcrossSeeds)
{
    harness::Workload wl = harness::makeGnmtWorkload(19);
    sim::Gpu shared_gpu(sim::GpuConfig::config1());
    nn::Autotuner tuner(nn::Autotuner::Mode::Measured, &shared_gpu);
    Profiler profiler(shared_gpu, wl.model, tuner, wl.batchSize);

    for (uint64_t seed = 19; seed < 22; ++seed) {
        TrainConfig tc = gnmtConfig(wl);
        tc.seed = seed;
        TrainLog persistent = runTrainingEpoch(profiler, wl.dataset, tc);

        sim::Gpu gpu(sim::GpuConfig::config1());
        TrainLog fresh = runTrainingEpoch(gpu, wl.model, wl.dataset, tc);
        expectLogsIdentical(fresh, persistent,
                            /*compare_autotune=*/false);
        // A persistent profiler never pays more tuning than a fresh
        // run; after the first epoch it pays none for repeated SLs.
        EXPECT_LE(persistent.autotuneSec, fresh.autotuneSec);
    }
}

TEST(EpochReplay, RecordsFreeExecutionMatchesRecordKeeping)
{
    harness::Workload wl = harness::makeGnmtWorkload(23);
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    auto kernels = wl.model.lowerIteration(wl.batchSize, 37, tuner);

    sim::ExecutionResult lean = gpu.executeAll(kernels, false);
    sim::ExecutionResult full = gpu.executeAll(kernels, true);

    EXPECT_TRUE(lean.records.empty());
    EXPECT_EQ(full.records.size(), kernels.size());
    EXPECT_EQ(lean.totalSec, full.totalSec);
    EXPECT_EQ(lean.launches, full.launches);
    EXPECT_EQ(lean.counters.kernelsLaunched,
              full.counters.kernelsLaunched);
    EXPECT_EQ(lean.counters.busySec, full.counters.busySec);
    EXPECT_EQ(lean.counters.dramBytes, full.counters.dramBytes);
    for (unsigned k = 0; k < sim::numKernelClasses; ++k)
        EXPECT_EQ(lean.classSec[k], full.classSec[k]) << "class " << k;
}

TEST(EpochReplayDeath, ProfilerConfigMismatchesRejected)
{
    harness::Workload wl = harness::makeGnmtWorkload();
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    Profiler profiler(gpu, wl.model, tuner, wl.batchSize);

    TrainConfig bad_batch = gnmtConfig(wl);
    bad_batch.batchSize = wl.batchSize + 1;
    EXPECT_DEATH(runTrainingEpoch(profiler, wl.dataset, bad_batch),
                 "batch");

    TrainConfig bad_memo = gnmtConfig(wl);
    bad_memo.memoizeProfiles = false;
    EXPECT_DEATH(runTrainingEpoch(profiler, wl.dataset, bad_memo),
                 "memoization");

    // The profiler's tuner is Heuristic; the config default asks for
    // Measured, which the profiler overload cannot honor.
    TrainConfig bad_mode = gnmtConfig(wl);
    EXPECT_DEATH(runTrainingEpoch(profiler, wl.dataset, bad_mode),
                 "autotuner-mode");
}

} // anonymous namespace
} // namespace prof
} // namespace seqpoint
