/**
 * @file
 * Tests for the profiler, profile comparison and epoch trainer.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/stats_math.hh"
#include "models/ds2.hh"
#include "nn/layers/fully_connected.hh"
#include "nn/layers/recurrent.hh"
#include "nn/layers/softmax_loss.hh"
#include "profiler/profile_compare.hh"
#include "profiler/profiler.hh"
#include "profiler/trainer.hh"

namespace seqpoint {
namespace prof {
namespace {

nn::Model
smallRnn()
{
    nn::Model m("small");
    m.add(std::make_unique<nn::RecurrentLayer>(
        "rnn", nn::CellType::Gru, 128, 128, false,
        nn::TimeAxis::Source));
    m.add(std::make_unique<nn::FullyConnectedLayer>(
        "fc", 128, 32, nn::TimeAxis::Source));
    m.add(std::make_unique<nn::SoftmaxLossLayer>(
        "loss", 32, nn::TimeAxis::Source));
    return m;
}

struct ProfFixture {
    sim::Gpu gpu{sim::GpuConfig::config1()};
    nn::Model model = smallRnn();
    nn::Autotuner tuner{nn::Autotuner::Mode::Heuristic};
    Profiler profiler{gpu, model, tuner, 64};
};

TEST(Profiler, MemoizesBySeqLen)
{
    ProfFixture f;
    const IterationProfile &a = f.profiler.profileIteration(50);
    const IterationProfile &b = f.profiler.profileIteration(50);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(f.profiler.cacheSize(), 1u);
}

TEST(Profiler, RuntimeGrowsWithSeqLen)
{
    ProfFixture f;
    double prev = 0.0;
    for (int64_t sl : {10, 20, 40, 80, 160}) {
        double t = f.profiler.profileIteration(sl).timeSec;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(Profiler, RuntimeNearLinearInSl)
{
    // Paper Fig 9: runtime vs SL is near-linear.
    ProfFixture f;
    std::vector<double> xs, ys;
    for (int64_t sl = 20; sl <= 300; sl += 20) {
        xs.push_back(static_cast<double>(sl));
        ys.push_back(f.profiler.profileIteration(sl).timeSec);
    }
    LinearFit fit = fitLine(xs, ys);
    EXPECT_GT(fit.r2, 0.98);
    EXPECT_GT(fit.slope, 0.0);
}

TEST(Profiler, InferenceCheaperThanTraining)
{
    ProfFixture f;
    EXPECT_LT(f.profiler.profileInference(64).timeSec,
              f.profiler.profileIteration(64).timeSec);
}

TEST(Profiler, DetailedMatchesAggregate)
{
    ProfFixture f;
    DetailedProfile d = f.profiler.profileIterationDetailed(33);
    const IterationProfile &p = f.profiler.profileIteration(33);
    EXPECT_NEAR(d.timeSec, p.timeSec, 1e-12);
    EXPECT_EQ(d.launches, p.launches);
    // Kernel-level times sum to the total.
    double sum = 0.0;
    for (const auto &[name, t] : d.timeByKernel)
        sum += t;
    EXPECT_NEAR(sum, d.timeSec, 1e-9);
}

TEST(Profiler, ClassSharesSumToOne)
{
    ProfFixture f;
    auto shares = f.profiler.profileIteration(40).classShares();
    double total = 0.0;
    for (double s : shares)
        total += s;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ProfileCompare, IdenticalProfilesFullyOverlap)
{
    ProfFixture f;
    DetailedProfile a = f.profiler.profileIterationDetailed(60);
    KernelOverlap ov = compareUniqueKernels(a, a);
    EXPECT_EQ(ov.only1, 0u);
    EXPECT_EQ(ov.only2, 0u);
    EXPECT_DOUBLE_EQ(ov.fracCommon(), 1.0);
}

TEST(ProfileCompare, NearbySlsMoreSimilarThanFar)
{
    // Paper Fig 8: close SLs have close execution profiles.
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Model model = models::buildDs2();
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    Profiler profiler(gpu, model, tuner, 64);

    DetailedProfile p87 = profiler.profileIterationDetailed(87);
    DetailedProfile p89 = profiler.profileIterationDetailed(89);
    DetailedProfile p397 = profiler.profileIterationDetailed(397);

    EXPECT_LE(classShareDistance(p87, p89),
              classShareDistance(p87, p397));
    KernelOverlap near = compareUniqueKernels(p87, p89);
    KernelOverlap far = compareUniqueKernels(p87, p397);
    EXPECT_GE(near.fracCommon(), far.fracCommon());
}

TEST(Trainer, EpochLogAccounting)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Model model = smallRnn();

    data::Dataset ds;
    ds.name = "tiny";
    Rng rng(4);
    for (int i = 0; i < 640; ++i)
        ds.trainLens.push_back(rng.uniformInt(10, 100));
    for (int i = 0; i < 128; ++i)
        ds.evalLens.push_back(rng.uniformInt(10, 100));

    TrainConfig tc;
    tc.batchSize = 64;
    tc.policy = data::BatchPolicy::Shuffled;
    TrainLog log = runTrainingEpoch(gpu, model, ds, tc);

    EXPECT_EQ(log.numIterations(), 10u);
    double sum = 0.0;
    for (const auto &it : log.iterations)
        sum += it.timeSec;
    EXPECT_NEAR(sum, log.trainSec, 1e-9);
    EXPECT_GT(log.evalSec, 0.0);
    EXPECT_GT(log.autotuneSec, 0.0); // Measured autotune by default
    EXPECT_DOUBLE_EQ(log.totalSec(), log.trainSec + log.evalSec);
    EXPECT_DOUBLE_EQ(log.totalSec(true),
                     log.trainSec + log.evalSec + log.autotuneSec);
    EXPECT_NEAR(log.throughput(64), 640.0 / log.trainSec, 1e-9);
}

TEST(Trainer, EvalCostMultiplierScalesEval)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Model model = smallRnn();

    data::Dataset ds;
    Rng rng(4);
    for (int i = 0; i < 320; ++i)
        ds.trainLens.push_back(rng.uniformInt(10, 100));
    for (int i = 0; i < 128; ++i)
        ds.evalLens.push_back(rng.uniformInt(10, 100));

    TrainConfig tc;
    TrainLog base = runTrainingEpoch(gpu, model, ds, tc);
    tc.evalCostMultiplier = 3.0;
    TrainLog beam = runTrainingEpoch(gpu, model, ds, tc);
    EXPECT_NEAR(beam.evalSec, 3.0 * base.evalSec, 1e-9);
    EXPECT_NEAR(beam.trainSec, base.trainSec, 1e-9);
}

TEST(Trainer, SortedPolicyYieldsMonotoneIterationSls)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Model model = smallRnn();

    data::Dataset ds;
    Rng rng(4);
    for (int i = 0; i < 640; ++i)
        ds.trainLens.push_back(rng.uniformInt(10, 200));

    TrainConfig tc;
    tc.policy = data::BatchPolicy::SortedBySl;
    tc.runEval = false;
    TrainLog log = runTrainingEpoch(gpu, model, ds, tc);
    for (size_t i = 1; i < log.iterations.size(); ++i)
        EXPECT_GE(log.iterations[i].seqLen,
                  log.iterations[i - 1].seqLen);
}

TEST(Trainer, SameSlIterationsHaveSameTime)
{
    // Paper observation 4: behaviour is a pure function of SL.
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Model model = smallRnn();

    data::Dataset ds;
    ds.trainLens.assign(256, 77); // all identical
    TrainConfig tc;
    tc.runEval = false;
    TrainLog log = runTrainingEpoch(gpu, model, ds, tc);
    ASSERT_EQ(log.numIterations(), 4u);
    for (const auto &it : log.iterations) {
        EXPECT_EQ(it.seqLen, 77);
        EXPECT_DOUBLE_EQ(it.timeSec, log.iterations[0].timeSec);
    }
}

} // anonymous namespace
} // namespace prof
} // namespace seqpoint
