/**
 * @file
 * Equivalence tests for the batched and stride-analytic cache replay
 * paths: across a geometry x generator matrix, the scalar access()
 * oracle, accessBlock() and (where applicable) the closed-form
 * streaming account must produce identical CacheStats.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/units.hh"
#include "sim/access_gen.hh"
#include "sim/cache_model.hh"
#include "sim/cache_sim.hh"

namespace seqpoint {
namespace sim {
namespace {

/** Scalar oracle: one access() call per trace entry. */
CacheStats
scalarReplay(CacheSim &cache, const AccessTrace &trace)
{
    cache.reset();
    for (std::size_t i = 0; i < trace.size(); ++i)
        cache.access(trace.addr(i), trace.isWrite(i));
    return cache.stats();
}

/** The geometry sweep the satellite task calls for. */
struct Geometry {
    unsigned assoc;
    unsigned lineBytes;
};

std::vector<Geometry>
geometries()
{
    std::vector<Geometry> gs;
    for (unsigned assoc : {1u, 4u, 16u})
        for (unsigned line : {32u, 64u, 128u})
            gs.push_back({assoc, line});
    return gs;
}

/** Named generator producing one recorded trace. */
struct NamedTrace {
    const char *name;
    AccessTrace trace;
};

std::vector<NamedTrace>
generatorTraces()
{
    std::vector<NamedTrace> traces;

    NamedTrace streaming{"genStreaming", {}};
    genStreaming(kib(96), 16, streaming.trace.sink());
    traces.push_back(std::move(streaming));

    NamedTrace gemm{"genBlockedGemm", {}};
    genBlockedGemm(96, 80, 64, 32, gemm.trace.sink());
    traces.push_back(std::move(gemm));

    NamedTrace hotcold{"genHotCold", {}};
    Rng rng(7, 0xcafe);
    genHotCold(5000, kib(4), kib(256), 0.8, rng,
               hotcold.trace.sink());
    traces.push_back(std::move(hotcold));

    return traces;
}

TEST(CacheSimBatched, MatchesScalarAcrossGeometryGeneratorMatrix)
{
    for (const NamedTrace &nt : generatorTraces()) {
        for (const Geometry &g : geometries()) {
            CacheSim oracle(kib(16), g.assoc, g.lineBytes);
            CacheSim batched(kib(16), g.assoc, g.lineBytes);

            CacheStats want = scalarReplay(oracle, nt.trace);

            batched.reset();
            batched.accessBlock(nt.trace, 0, nt.trace.size());
            EXPECT_EQ(batched.stats(), want)
                << nt.name << " assoc " << g.assoc << " line "
                << g.lineBytes;
        }
    }
}

TEST(CacheSimBatched, ChunkedReplayContinuesState)
{
    // accessBlock must be resumable: replaying a trace in arbitrary
    // chunks matches one full replay (state carries across calls).
    AccessTrace trace;
    genBlockedGemm(64, 64, 48, 16, trace.sink());

    CacheSim whole(kib(8), 4, 64), chunked(kib(8), 4, 64);
    whole.accessBlock(trace, 0, trace.size());

    std::size_t n = trace.size();
    chunked.accessBlock(trace, 0, n / 3);
    chunked.accessBlock(trace, n / 3, n / 3);  // empty range is a no-op
    chunked.accessBlock(trace, n / 3, 2 * n / 3);
    chunked.accessBlock(trace, 2 * n / 3, n);

    EXPECT_EQ(chunked.stats(), whole.stats());
}

TEST(CacheSimBatched, InterleavesWithScalarAccesses)
{
    AccessTrace trace;
    genStreaming(kib(32), 64, trace.sink());

    CacheSim a(kib(4), 2, 64), b(kib(4), 2, 64);
    CacheStats want = scalarReplay(a, trace);

    // Half scalar, half batched, on the same cache instance.
    b.reset();
    std::size_t half = trace.size() / 2;
    for (std::size_t i = 0; i < half; ++i)
        b.access(trace.addr(i), trace.isWrite(i));
    b.accessBlock(trace, half, trace.size());
    EXPECT_EQ(b.stats(), want);
}

TEST(StrideAnalytic, DetectsStreamingTraces)
{
    AccessTrace trace;
    genStreaming(kib(4), 16, trace.sink());
    SegmentList segs = detectSegments(trace);
    ASSERT_EQ(segs.size(), 1u);
    const SegDesc &seg = segs.segments()[0];
    EXPECT_EQ(seg.firstAddr, 0u);
    EXPECT_EQ(seg.stride, 16);
    EXPECT_EQ(seg.count, trace.size());
    EXPECT_FALSE(seg.write);
}

TEST(StrideAnalytic, NonStreamingTracesSplitIntoSegments)
{
    AccessTrace gemm;
    genBlockedGemm(32, 32, 32, 16, gemm.sink());
    EXPECT_GT(detectSegments(gemm).size(), 1u);

    AccessTrace hotcold;
    Rng rng(3, 0xbeef);
    genHotCold(200, kib(4), kib(64), 0.5, rng, hotcold.sink());
    EXPECT_GT(detectSegments(hotcold).size(), 1u);

    AccessTrace mixed_dir;
    mixed_dir.add(0, false);
    mixed_dir.add(64, true);
    mixed_dir.add(128, false);
    EXPECT_EQ(detectSegments(mixed_dir).size(), 3u);
}

TEST(StrideAnalytic, ClosedFormMatchesOracleWhereApplicable)
{
    // Strides below, at, and above the line size; at least one
    // (line-straddling, non-multiple) must fall back to simulation.
    const unsigned strides[] = {4, 16, 48, 64, 96, 256, 512};
    std::size_t analytic_cases = 0;

    for (const Geometry &g : geometries()) {
        for (unsigned stride : strides) {
            for (bool write : {false, true}) {
                AccessTrace trace;
                // 128 KiB footprint overflows every geometry; write
                // streams exercise the writeback account.
                for (uint64_t a = 0; a < kib(128); a += stride)
                    trace.add(a, write);

                CacheSim oracle(kib(16), g.assoc, g.lineBytes);
                CacheStats want = scalarReplay(oracle, trace);

                SegmentList segs = detectSegments(trace);
                ASSERT_EQ(segs.size(), 1u);
                const SegDesc &seg = segs.segments()[0];
                if (analyticStreamApplicable(seg, g.lineBytes)) {
                    CacheStats got = analyticStreamStats(
                        seg, oracle.numSets(), g.assoc, g.lineBytes);
                    EXPECT_EQ(got, want)
                        << "stride " << stride << " assoc " << g.assoc
                        << " line " << g.lineBytes << " write "
                        << write;
                    ++analytic_cases;
                }

                // The fast replay entry point must agree either way.
                CacheSim fast(kib(16), g.assoc, g.lineBytes);
                EXPECT_EQ(replayStatsFast(fast, trace), want)
                    << "stride " << stride << " assoc " << g.assoc
                    << " line " << g.lineBytes;
            }
        }
    }
    // The applicability window (stride <= line or a line multiple)
    // must actually engage across the sweep.
    EXPECT_GT(analytic_cases, 50u);
}

TEST(StrideAnalytic, FitsInCacheStreamHasNoEvictions)
{
    // A stream that fits leaves every line resident: misses equal
    // distinct lines, no evictions, second pass all hits.
    AccessTrace trace;
    genStreaming(kib(8), 32, trace.sink());

    CacheSim c(kib(16), 4, 64);
    SegmentList segs = detectSegments(trace);
    ASSERT_EQ(segs.size(), 1u);
    const SegDesc &seg = segs.segments()[0];
    ASSERT_TRUE(analyticStreamApplicable(seg, 64));
    CacheStats s = analyticStreamStats(seg, c.numSets(), 4, 64);
    EXPECT_EQ(s.misses, kib(8) / 64);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.writebacks, 0u);
    EXPECT_EQ(s, scalarReplay(c, trace));
}

} // anonymous namespace
} // namespace sim
} // namespace seqpoint
