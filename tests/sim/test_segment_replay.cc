/**
 * @file
 * Tests for the segment-descriptor stream representation and the
 * piecewise-analytic cache replay engine: the geometry x generator
 * oracle-equivalence matrix (scalar access() vs the segment engine,
 * full CacheStats EXPECT_EQ including final-state probes),
 * detectSegments() edge cases, generator/descriptor equivalence, and
 * the CacheSim set-state snapshot/restore.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/units.hh"
#include "sim/access_gen.hh"
#include "sim/cache_model.hh"
#include "sim/cache_sim.hh"

namespace seqpoint {
namespace sim {
namespace {

/** Scalar oracle: one access() call per trace entry. */
CacheStats
scalarReplay(CacheSim &cache, const AccessTrace &trace)
{
    cache.reset();
    for (std::size_t i = 0; i < trace.size(); ++i)
        cache.access(trace.addr(i), trace.isWrite(i));
    return cache.stats();
}

/** Continue the oracle on the cache's current state. */
void
scalarResume(CacheSim &cache, const AccessTrace &trace)
{
    for (std::size_t i = 0; i < trace.size(); ++i)
        cache.access(trace.addr(i), trace.isWrite(i));
}

struct Geometry {
    unsigned assoc;
    unsigned lineBytes;
};

std::vector<Geometry>
geometries()
{
    std::vector<Geometry> gs;
    for (unsigned assoc : {1u, 4u, 16u})
        for (unsigned line : {32u, 64u, 128u})
            gs.push_back({assoc, line});
    return gs;
}

struct NamedStream {
    const char *name;
    SegmentList segs;
};

std::vector<NamedStream>
generatorStreams()
{
    std::vector<NamedStream> streams;
    streams.push_back(
        {"genStreaming", genStreamingSegments(kib(96), 16)});
    streams.push_back(
        {"genBlockedGemm", genBlockedGemmSegments(96, 80, 64, 32)});
    Rng rng(7, 0xcafe);
    streams.push_back({"genHotCold",
                       genHotColdSegments(5000, kib(4), kib(256), 0.8,
                                          rng)});
    return streams;
}

/**
 * The full-state equivalence check: identical statistics after the
 * replay AND after a second replay of the same stream on the warm
 * state -- the second pass hits exactly where the oracle's state
 * says it must, so any drift in tags, LRU order or dirty bits shows
 * up as a stats mismatch.
 */
TEST(SegmentReplay, MatchesScalarAcrossGeometryGeneratorMatrix)
{
    for (const NamedStream &ns : generatorStreams()) {
        AccessTrace trace = ns.segs.materialize();
        for (const Geometry &g : geometries()) {
            CacheSim oracle(kib(16), g.assoc, g.lineBytes);
            CacheSim engine(kib(16), g.assoc, g.lineBytes);

            CacheStats want = scalarReplay(oracle, trace);
            CacheStats got = replaySegments(engine, ns.segs);
            EXPECT_EQ(got, want)
                << ns.name << " assoc " << g.assoc << " line "
                << g.lineBytes;

            scalarResume(oracle, trace);
            replaySegmentsResume(engine, ns.segs);
            EXPECT_EQ(engine.stats(), oracle.stats())
                << ns.name << " (warm pass) assoc " << g.assoc
                << " line " << g.lineBytes;
        }
    }
}

TEST(SegmentReplay, GeneratorsEmitExactlyTheSinkStreams)
{
    // The segment generators are the source of truth and the sink
    // generators expand them, so equivalence is structural -- but
    // pin it anyway: a regression here would silently change every
    // hit-rate measurement.
    SegmentList gemm = genBlockedGemmSegments(96, 80, 64, 32);
    AccessTrace via_sink;
    genBlockedGemm(96, 80, 64, 32, via_sink.sink());
    AccessTrace expanded = gemm.materialize();
    ASSERT_EQ(expanded.size(), via_sink.size());
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        ASSERT_EQ(expanded.addr(i), via_sink.addr(i)) << i;
        ASSERT_EQ(expanded.isWrite(i), via_sink.isWrite(i)) << i;
    }

    // Hot/cold consumes the RNG identically in both forms.
    Rng rng_a(11, 0xfeed), rng_b(11, 0xfeed);
    SegmentList hot = genHotColdSegments(800, kib(4), kib(64), 0.6,
                                         rng_a);
    AccessTrace hot_sink;
    genHotCold(800, kib(4), kib(64), 0.6, rng_b, hot_sink.sink());
    AccessTrace hot_exp = hot.materialize();
    ASSERT_EQ(hot_exp.size(), hot_sink.size());
    for (std::size_t i = 0; i < hot_exp.size(); ++i)
        ASSERT_EQ(hot_exp.addr(i), hot_sink.addr(i)) << i;
}

TEST(SegmentReplay, DetectSegmentsRoundTripsArbitraryTraces)
{
    AccessTrace trace;
    Rng rng(3, 0xabcd);
    genHotCold(500, kib(4), kib(64), 0.5, rng, trace.sink());
    genBlockedGemm(32, 32, 32, 16, trace.sink());
    trace.add(100, true);
    trace.add(36, false); // direction + stride flip

    SegmentList segs = detectSegments(trace);
    EXPECT_EQ(segs.accesses(), trace.size());
    AccessTrace back = segs.materialize();
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(back.addr(i), trace.addr(i)) << i;
        ASSERT_EQ(back.isWrite(i), trace.isWrite(i)) << i;
    }
}

TEST(SegmentReplay, DetectSegmentsEdgeCases)
{
    // Zero-length trace.
    EXPECT_TRUE(detectSegments(AccessTrace{}).empty());

    // Single access: one count-1 run.
    AccessTrace one;
    one.add(0x1000, true);
    SegmentList single = detectSegments(one);
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single.segments()[0],
              (SegDesc{0x1000, 0, 1, true}));

    // Direction flip splits runs even on a perfect stride.
    AccessTrace flip;
    flip.add(0, false);
    flip.add(64, false);
    flip.add(128, true);
    flip.add(192, true);
    SegmentList flipped = detectSegments(flip);
    ASSERT_EQ(flipped.size(), 2u);
    EXPECT_EQ(flipped.segments()[0], (SegDesc{0, 64, 2, false}));
    EXPECT_EQ(flipped.segments()[1], (SegDesc{128, 64, 2, true}));

    // Descending and zero strides fold into single runs.
    AccessTrace desc;
    for (int a = 512; a >= 0; a -= 64)
        desc.add(static_cast<uint64_t>(a), false);
    SegmentList descending = detectSegments(desc);
    ASSERT_EQ(descending.size(), 1u);
    EXPECT_EQ(descending.segments()[0].stride, -64);

    AccessTrace same;
    for (int i = 0; i < 5; ++i)
        same.add(0x40, false);
    SegmentList repeated = detectSegments(same);
    ASSERT_EQ(repeated.size(), 1u);
    EXPECT_EQ(repeated.segments()[0], (SegDesc{0x40, 0, 5, false}));
}

TEST(SegmentReplay, EdgeShapesMatchOracleEverywhere)
{
    // Line-straddling strides (48, 96), descending walks, stride-0
    // pounding, single accesses, and a re-walk of an earlier region
    // (panel reuse) -- each shape through every geometry.
    std::vector<NamedStream> shapes;

    SegmentList straddle;
    straddle.addRun(8, 48, 700, false);
    straddle.addRun(8, 48, 700, true); // dirty the same footprint
    shapes.push_back({"straddle48", straddle});

    SegmentList wide;
    wide.addRun(0, 96, 900, true);
    shapes.push_back({"straddle96", wide});

    SegmentList down;
    down.addRun(kib(64), -16, 3000, false);
    shapes.push_back({"descending", down});

    SegmentList pound;
    pound.addRun(0x1234, 0, 64, true);
    pound.addRun(0x1234 + 4096, 0, 1, false);
    shapes.push_back({"stride0", pound});

    SegmentList rewalk;
    rewalk.addRun(0, 16, 4096, false);   // install 64 KiB
    rewalk.addRun(0, 16, 4096, false);   // re-walk it warm
    rewalk.addRun(kib(256), 64, 64, true);
    rewalk.addRun(0, 16, 128, false);    // partial third walk
    shapes.push_back({"rewalk", rewalk});

    for (const NamedStream &ns : shapes) {
        AccessTrace trace = ns.segs.materialize();
        for (const Geometry &g : geometries()) {
            CacheSim oracle(kib(16), g.assoc, g.lineBytes);
            CacheSim engine(kib(16), g.assoc, g.lineBytes);
            CacheStats want = scalarReplay(oracle, trace);
            EXPECT_EQ(replaySegments(engine, ns.segs), want)
                << ns.name << " assoc " << g.assoc << " line "
                << g.lineBytes;

            scalarResume(oracle, trace);
            replaySegmentsResume(engine, ns.segs);
            EXPECT_EQ(engine.stats(), oracle.stats())
                << ns.name << " (warm pass) assoc " << g.assoc
                << " line " << g.lineBytes;
        }
    }
}

TEST(SegmentReplay, PiecewiseCompositionCarriesState)
{
    // Replaying a stream one segment at a time through the resume
    // entry point must match one full replay: occupancy and LRU
    // state carry across calls.
    SegmentList gemm = genBlockedGemmSegments(64, 64, 64, 32);
    CacheSim whole(kib(8), 4, 64), chunked(kib(8), 4, 64);
    replaySegments(whole, gemm);

    chunked.reset();
    for (const SegDesc &seg : gemm.segments()) {
        SegmentList one;
        one.addRun(seg);
        replaySegmentsResume(chunked, one);
    }
    EXPECT_EQ(chunked.stats(), whole.stats());
}

TEST(SegmentReplay, ColdStreamClosedFormLeavesOracleState)
{
    // The closed-form account must leave the exact oracle state:
    // follow a cold stream with a second stream that probes the
    // survivors (hits), the evicted head (misses) and the LRU order.
    for (const Geometry &g : geometries()) {
        for (unsigned stride : {4u, 16u, 256u}) {
            SegmentList stream;
            stream.addRun(0, stride, kib(128) / stride, true);
            // Probe pass: re-walk everything, then stream fresh
            // lines to force victim selection through the restored
            // LRU order.
            stream.addRun(0, stride, kib(128) / stride, false);
            stream.addRun(mib(1), 64, 1024, false);

            AccessTrace trace = stream.materialize();
            CacheSim oracle(kib(16), g.assoc, g.lineBytes);
            CacheSim engine(kib(16), g.assoc, g.lineBytes);
            CacheStats want = scalarReplay(oracle, trace);
            EXPECT_EQ(replaySegments(engine, stream), want)
                << "stride " << stride << " assoc " << g.assoc
                << " line " << g.lineBytes;
        }
    }
}

TEST(SegmentReplay, MeasureHitRateAgreesWithScalarPath)
{
    // The callback entry point now folds into descriptors and runs
    // the piecewise engine; it must agree with the scalar oracle.
    CacheSim engine(kib(16), 4, 64), oracle(kib(16), 4, 64);
    double via_engine = measureHitRate(engine, [](const AccessSink &s) {
        genBlockedGemm(96, 80, 64, 32, s);
    });

    AccessTrace trace;
    genBlockedGemm(96, 80, 64, 32, trace.sink());
    CacheStats want = scalarReplay(oracle, trace);
    EXPECT_DOUBLE_EQ(via_engine, want.hitRate());

    CacheSim replayed(kib(16), 4, 64);
    EXPECT_DOUBLE_EQ(replayHitRate(replayed, trace), want.hitRate());
}

TEST(SegmentReplay, SnapshotRestoreRoundTrip)
{
    SegmentList gemm = genBlockedGemmSegments(64, 64, 64, 32);
    SegmentList tail = genStreamingSegments(kib(32), 16);

    CacheSim a(kib(8), 4, 64), b(kib(8), 4, 64);
    replaySegments(a, gemm);
    CacheSetState warm = a.snapshotState();
    EXPECT_EQ(warm.stats, a.stats());

    // Restoring onto another instance reproduces the continuation.
    b.restoreState(warm);
    replaySegmentsResume(a, tail);
    replaySegmentsResume(b, tail);
    EXPECT_EQ(b.stats(), a.stats());

    // Restoring back rewinds: the same continuation replays twice
    // with identical results (the bench's engine-comparison idiom).
    a.restoreState(warm);
    replaySegmentsResume(a, tail);
    EXPECT_EQ(a.stats(), b.stats());
}

TEST(SegmentReplayDeathTest, RestoreRejectsGeometryMismatch)
{
    CacheSim a(kib(8), 4, 64), b(kib(16), 4, 64);
    CacheSetState st = a.snapshotState();
    EXPECT_DEATH(b.restoreState(st), "geometry mismatch");

    // Same total line count, different shape: 32x4 vs 16x8 ways both
    // hold 128 lines, but tags/set mappings differ -- must still be
    // rejected, not silently misinterpreted.
    CacheSim c(8192, 4, 64), d(8192, 8, 64);
    CacheSetState cs = c.snapshotState();
    EXPECT_DEATH(d.restoreState(cs), "geometry mismatch");
}

TEST(SegmentReplay, EmptyListIsANoOp)
{
    CacheSim c(kib(8), 4, 64);
    EXPECT_EQ(replaySegments(c, SegmentList{}), CacheStats{});
    EXPECT_TRUE(c.coldCache());
}

TEST(SegmentReplay, CountZeroSegmentIsANoOp)
{
    // A default-constructed SegDesc has count 0; every stride shape
    // of it must leave statistics untouched (no phantom miss, no
    // hits underflow).
    CacheSim c(kib(8), 4, 64);
    c.accessSegment(SegDesc{0, 0, 0, false});
    c.accessSegment(SegDesc{0, 16, 0, false});  // dividing sub-line
    c.accessSegment(SegDesc{0, 48, 0, true});   // straddling
    c.accessSegment(SegDesc{64, -16, 0, false}); // negative
    EXPECT_EQ(c.stats(), CacheStats{});
    EXPECT_TRUE(c.coldCache());
}

TEST(SegmentReplay, FastReplayKeepsBatchedScanForPairRuns)
{
    // A random trace folds into count-2 runs under the greedy
    // decomposer (exactly 2 accesses per segment); replayStatsFast
    // must keep the batched scan there, and must agree with the
    // oracle regardless of which path it picks.
    AccessTrace trace;
    Rng rng(5, 0x1234);
    genHotCold(4000, kib(4), kib(256), 0.5, rng, trace.sink());
    SegmentList segs = detectSegments(trace);
    ASSERT_LT(trace.size(), 3 * segs.size());

    CacheSim oracle(kib(16), 4, 64), fast(kib(16), 4, 64);
    EXPECT_EQ(replayStatsFast(fast, trace),
              scalarReplay(oracle, trace));
}

} // anonymous namespace
} // namespace sim
} // namespace seqpoint
