/**
 * @file
 * Unit tests for the set-associative cache simulator.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "sim/cache_sim.hh"

namespace seqpoint {
namespace sim {
namespace {

TEST(CacheSim, ColdMissThenHit)
{
    CacheSim c(1024, 2, 64);
    EXPECT_FALSE(c.access(0, false));
    EXPECT_TRUE(c.access(0, false));
    EXPECT_TRUE(c.access(63, false)); // same line
    EXPECT_FALSE(c.access(64, false)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheSim, GeometryDerivedCorrectly)
{
    CacheSim c(kib(16), 4, 64);
    // 16 KiB / (64 B * 4 ways) = 64 sets.
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.sizeBytes(), kib(16));
}

TEST(CacheSim, LruEvictsOldest)
{
    // Direct-mapped-per-set behaviour check with 2 ways, 1 set.
    CacheSim c(128, 2, 64); // 1 set, 2 ways
    c.access(0, false);      // line A
    c.access(64, false);     // line B
    c.access(0, false);      // touch A (B is now LRU)
    c.access(128, false);    // line C evicts B
    EXPECT_TRUE(c.access(0, false));    // A still present
    EXPECT_FALSE(c.access(64, false));  // B was evicted
}

TEST(CacheSim, WritebackOnlyForDirtyLines)
{
    CacheSim c(128, 1, 64); // 2 sets, direct mapped
    c.access(0, true);       // dirty line in set 0
    c.access(128, false);    // evicts it -> writeback
    EXPECT_EQ(c.stats().writebacks, 1u);
    c.access(64, false);     // clean line in set 1
    c.access(192, false);    // evicts it -> no writeback
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheSim, FullWorkingSetFitsNoCapacityMisses)
{
    CacheSim c(kib(4), 4, 64);
    // Touch 4 KiB twice: second pass must be all hits.
    for (uint64_t a = 0; a < kib(4); a += 64)
        c.access(a, false);
    uint64_t cold_misses = c.stats().misses;
    for (uint64_t a = 0; a < kib(4); a += 64)
        EXPECT_TRUE(c.access(a, false));
    EXPECT_EQ(c.stats().misses, cold_misses);
}

TEST(CacheSim, OverCapacityStreamsMiss)
{
    CacheSim c(kib(1), 1, 64);
    // Stream 64 KiB twice with LRU: every access misses both times.
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t a = 0; a < kib(64); a += 64)
            c.access(a, false);
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(CacheSim, ResetClearsEverything)
{
    CacheSim c(1024, 2, 64);
    c.access(0, true);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.access(0, false)); // cold again
}

TEST(CacheSim, HitRateComputation)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.0);
    s.accesses = 10;
    s.hits = 7;
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.7);
}

TEST(CacheSimDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(CacheSim(1000, 2, 64), "divisible");
    EXPECT_DEATH(CacheSim(1024, 0, 64), "associativity");
    EXPECT_DEATH(CacheSim(1024, 2, 48), "power of two");
}

} // anonymous namespace
} // namespace sim
} // namespace seqpoint
