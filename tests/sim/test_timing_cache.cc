/**
 * @file
 * Tests for the kernel-timing cache: signature canonicalisation,
 * hit/miss accounting, and bit-identical cached vs uncached timing.
 */

#include <gtest/gtest.h>

#include "nn/autotune.hh"
#include "nn/kernel_gen.hh"
#include "sim/gpu.hh"
#include "sim/timing_cache.hh"

namespace seqpoint {
namespace sim {
namespace {

KernelDesc
testGemm(const std::string &name, int64_t m, int64_t n, int64_t k)
{
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    return nn::makeGemm(name, m, n, k, tuner);
}

TEST(KernelSignature, IgnoresNameAndRepeat)
{
    KernelDesc a = testGemm("fwd_gemm", 512, 64, 1024);
    KernelDesc b = testGemm("bwd_gemm_renamed", 512, 64, 1024);
    b.repeat = 40;
    EXPECT_EQ(kernelSignature(a), kernelSignature(b));

    KernelDesc c = testGemm("fwd_gemm", 512, 64, 2048);
    EXPECT_FALSE(kernelSignature(a) == kernelSignature(c));
}

TEST(KernelSignature, DistinguishesClasses)
{
    KernelDesc ew = makeElementwise("tanh", 1e6, 1.0, 1.0, 1.0);
    KernelDesc red = makeReduction("loss_sum", 1e6);
    EXPECT_FALSE(kernelSignature(ew) == kernelSignature(red));
}

TEST(TimingCache, HitMissAccounting)
{
    GpuConfig cfg = GpuConfig::config1();
    KernelTimingCache cache;

    KernelDesc a = testGemm("a", 512, 64, 1024);
    KernelDesc b = testGemm("b", 256, 64, 1024);

    cache.lookup(a, cfg); // miss
    cache.lookup(a, cfg); // hit
    cache.lookup(b, cfg); // miss
    cache.lookup(a, cfg); // hit

    TimingCacheStats st = cache.stats();
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.hits, 2u);
    EXPECT_EQ(st.lookups(), 4u);
    EXPECT_DOUBLE_EQ(st.hitRate(), 0.5);
    EXPECT_EQ(cache.size(), 2u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().lookups(), 0u);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.0);
}

TEST(TimingCache, CachedTimingBitIdenticalToFresh)
{
    GpuConfig cfg = GpuConfig::config1();
    KernelTimingCache cache;
    KernelDesc k = testGemm("k", 1024, 64, 1024);

    KernelTiming fresh = timeKernel(k, cfg);
    KernelTiming first = cache.lookup(k, cfg);
    KernelTiming second = cache.lookup(k, cfg);

    EXPECT_EQ(fresh.timeSec, first.timeSec);
    EXPECT_EQ(fresh.timeSec, second.timeSec);
    EXPECT_EQ(fresh.computeSec, second.computeSec);
    EXPECT_EQ(fresh.memorySec, second.memorySec);
    EXPECT_EQ(fresh.memoryBound, second.memoryBound);
    EXPECT_EQ(fresh.counters.dramBytes, second.counters.dramBytes);
    EXPECT_EQ(fresh.counters.busySec, second.counters.busySec);
}

TEST(GpuTimingCache, ExecuteAllPopulatesAndHits)
{
    Gpu gpu(GpuConfig::config1());
    ASSERT_TRUE(gpu.timingCacheEnabled());

    // An RNN-ish stream: the same cell GEMM under two names plus one
    // distinct kernel. Two unique signatures -> one miss is saved on
    // the duplicate, and re-execution is all hits.
    std::vector<KernelDesc> stream{
        testGemm("cell_fwd", 256, 64, 256),
        testGemm("cell_fwd_t2", 256, 64, 256),
        makeElementwise("gate_math", 1e5, 4.0, 2.0, 1.0)};

    ExecutionResult first = gpu.executeAll(stream);
    TimingCacheStats st = gpu.timingCacheStats();
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(gpu.uniqueKernelsTimed(), 2u);

    ExecutionResult second = gpu.executeAll(stream);
    st = gpu.timingCacheStats();
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.hits, 4u);

    // Replayed timings are bit-identical to the first execution.
    EXPECT_EQ(first.totalSec, second.totalSec);
    EXPECT_EQ(first.counters.dramBytes, second.counters.dramBytes);
}

TEST(GpuTimingCache, DisabledCacheMatchesEnabledBitForBit)
{
    GpuConfig cfg = GpuConfig::config1();
    Gpu cached(cfg, /*enable_timing_cache=*/true);
    Gpu uncached(cfg, /*enable_timing_cache=*/false);
    EXPECT_FALSE(uncached.timingCacheEnabled());

    std::vector<KernelDesc> stream;
    for (int i = 0; i < 8; ++i)
        stream.push_back(testGemm("g", 128 << (i % 3), 64, 512));

    ExecutionResult a = cached.executeAll(stream, true);
    ExecutionResult b = uncached.executeAll(stream, true);

    EXPECT_EQ(uncached.timingCacheStats().lookups(), 0u);
    EXPECT_EQ(a.totalSec, b.totalSec);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].timeSec, b.records[i].timeSec);
        EXPECT_EQ(a.records[i].memoryBound, b.records[i].memoryBound);
    }
}

TEST(GpuTimingCache, RepeatScalesFromOneCachedLaunch)
{
    Gpu gpu(GpuConfig::config1());
    KernelDesc k = testGemm("cell", 256, 64, 256);

    KernelRecord once = gpu.execute(k);
    k.repeat = 50;
    KernelRecord many = gpu.execute(k);

    // Same signature: the repeat=50 launch is a cache hit scaled 50x.
    EXPECT_EQ(gpu.timingCacheStats().misses, 1u);
    EXPECT_EQ(gpu.timingCacheStats().hits, 1u);
    EXPECT_DOUBLE_EQ(many.timeSec, 50.0 * once.timeSec);
}

TEST(TimingSection, CompactRoundTripIsBitExact)
{
    // Populate a cache with a spread of kernels and round-trip its
    // snapshot through the compact varint/delta section.
    Gpu gpu(GpuConfig::config1());
    for (int64_t m : {256, 512, 1024})
        for (int64_t k : {256, 384})
            (void)gpu.execute(testGemm("g", m, 2 * m, k));

    std::vector<TimingCacheEntry> entries =
        gpu.timingCacheSnapshot();
    ASSERT_GT(entries.size(), 3u);

    ByteWriter w;
    encodeTimingSection(w, entries);
    ByteReader r(w.data(), "section");
    std::vector<TimingCacheEntry> decoded = decodeTimingSection(r);
    EXPECT_TRUE(r.done());
    ASSERT_EQ(decoded.size(), entries.size());

    // Bit-exact per entry: the decoded section re-encodes to the
    // same bytes, and every original entry is found unchanged.
    ByteWriter w2;
    encodeTimingSection(w2, decoded);
    EXPECT_EQ(w2.data(), w.data());
    for (const TimingCacheEntry &e : entries) {
        bool found = false;
        for (const TimingCacheEntry &d : decoded) {
            if (d.sig == e.sig) {
                found = true;
                EXPECT_DOUBLE_EQ(d.timing.timeSec, e.timing.timeSec);
                EXPECT_EQ(d.timing.memoryBound, e.timing.memoryBound);
                EXPECT_TRUE(d.timing.counters == e.timing.counters);
            }
        }
        EXPECT_TRUE(found);
    }
}

TEST(TimingSection, CanonicalOrderIsInputOrderIndependent)
{
    Gpu gpu(GpuConfig::config1());
    for (int64_t m : {128, 320, 640})
        (void)gpu.execute(testGemm("g", m, m, 256));
    std::vector<TimingCacheEntry> entries =
        gpu.timingCacheSnapshot();
    ASSERT_GT(entries.size(), 1u);

    std::vector<TimingCacheEntry> reversed(entries.rbegin(),
                                           entries.rend());
    ByteWriter a, b;
    encodeTimingSection(a, entries);
    encodeTimingSection(b, reversed);
    EXPECT_EQ(a.data(), b.data());
}

TEST(TimingSection, CompactFormIsSmallerThanFixedWidth)
{
    Gpu gpu(GpuConfig::config1());
    for (int64_t m : {256, 512, 1024, 2048})
        for (int64_t k : {128, 256, 512})
            (void)gpu.execute(testGemm("g", m, m, k));
    std::vector<TimingCacheEntry> entries =
        gpu.timingCacheSnapshot();

    ByteWriter fixed;
    for (const TimingCacheEntry &e : entries)
        encodeTimingCacheEntry(fixed, e);
    ByteWriter compact;
    encodeTimingSection(compact, entries);
    // The section dominates snapshot files, so the compact form must
    // shrink it substantially: >= 1.5x even on this small synthetic
    // set of deliberately diverse shapes (real per-config caches,
    // hundreds of near-identical kernels apart, compress ~3x).
    EXPECT_LT(3 * compact.size(), 2 * fixed.size());
}

} // anonymous namespace
} // namespace sim
} // namespace seqpoint
