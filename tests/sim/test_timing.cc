/**
 * @file
 * Tests for occupancy, compute, DRAM and whole-kernel timing models:
 * the physical monotonicity properties the evaluation relies on.
 */

#include <gtest/gtest.h>

#include "nn/autotune.hh"
#include "nn/kernel_gen.hh"
#include "sim/compute_model.hh"
#include "sim/dram_model.hh"
#include "sim/gpu.hh"
#include "sim/occupancy.hh"
#include "sim/timing_model.hh"

namespace seqpoint {
namespace sim {
namespace {

KernelDesc
bigGemm()
{
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    return nn::makeGemm("t_gemm", 4096, 4096, 1024, tuner);
}

KernelDesc
skinnyGemm()
{
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    return nn::makeGemm("t_skinny", 4096, 64, 1024, tuner);
}

TEST(Occupancy, SmallLaunchUnderutilizes)
{
    GpuConfig cfg = GpuConfig::config1();
    KernelDesc tiny = makeElementwise("tiny", 64.0, 1.0, 1.0, 1.0);
    Occupancy occ = computeOccupancy(tiny, cfg);
    EXPECT_LT(occ.utilization, 0.05);
    EXPECT_LE(occ.activeCus, 1.0);
}

TEST(Occupancy, HugeLaunchSaturates)
{
    GpuConfig cfg = GpuConfig::config1();
    KernelDesc big = makeElementwise("big", 1e8, 1.0, 1.0, 1.0);
    Occupancy occ = computeOccupancy(big, cfg);
    EXPECT_DOUBLE_EQ(occ.utilization, 1.0);
    EXPECT_DOUBLE_EQ(occ.activeCus, 64.0);
}

TEST(Occupancy, FewerCusRaiseUtilizationOfMediumLaunch)
{
    KernelDesc k = skinnyGemm();
    Occupancy o64 = computeOccupancy(k, GpuConfig::config1());
    Occupancy o16 = computeOccupancy(k, GpuConfig::config3());
    EXPECT_GT(o16.utilization, o64.utilization);
}

TEST(ComputeModel, GemmFasterPerFlopThanElementwise)
{
    GpuConfig cfg = GpuConfig::config1();
    KernelDesc g = bigGemm();
    KernelDesc e = makeElementwise("e", 1e8, 1.0, 1.0, 1.0);
    // Normalise: time per FLOP.
    ComputeEstimate ge = estimateCompute(g, computeOccupancy(g, cfg),
                                         cfg);
    ComputeEstimate ee = estimateCompute(e, computeOccupancy(e, cfg),
                                         cfg);
    EXPECT_LT(ge.timeSec / g.flops, ee.timeSec / e.flops);
}

TEST(ComputeModel, ValuInstsScaleWithFlops)
{
    GpuConfig cfg = GpuConfig::config1();
    KernelDesc a = makeElementwise("a", 1e6, 2.0, 1.0, 1.0);
    KernelDesc b = makeElementwise("b", 2e6, 2.0, 1.0, 1.0);
    ComputeEstimate ea = estimateCompute(a, computeOccupancy(a, cfg),
                                         cfg);
    ComputeEstimate eb = estimateCompute(b, computeOccupancy(b, cfg),
                                         cfg);
    EXPECT_NEAR(eb.valuInsts / ea.valuInsts, 2.0, 1e-9);
}

TEST(DramModel, GatherSlowerThanStream)
{
    GpuConfig cfg = GpuConfig::config1();
    EXPECT_LT(effectiveDramBandwidth(KernelClass::Embedding, cfg),
              effectiveDramBandwidth(KernelClass::Gemm, cfg));
}

TEST(DramModel, WriteStallOnlyBeyondOverlap)
{
    GpuConfig cfg = GpuConfig::config1();
    // Tiny write, long overlap: no stall.
    DramService s1 = serviceDram(KernelClass::Gemm, 0.0, 1e3, 1.0, cfg);
    EXPECT_DOUBLE_EQ(s1.writeStallSec, 0.0);
    // Huge write, no overlap: stall equals drain time.
    DramService s2 = serviceDram(KernelClass::Gemm, 0.0, 1e9, 0.0, cfg);
    EXPECT_GT(s2.writeStallSec, 0.0);
    EXPECT_NEAR(s2.writeStallSec, s2.writeTimeSec, 1e-12);
}

TEST(Timing, HigherClockNeverSlower)
{
    for (const KernelDesc &k : {bigGemm(), skinnyGemm(),
             makeElementwise("e", 1e6, 2.0, 2.0, 1.0),
             makeReduction("r", 1e6)}) {
        KernelTiming fast = timeKernel(k, GpuConfig::config1());
        KernelTiming slow = timeKernel(k, GpuConfig::config2());
        EXPECT_LE(fast.timeSec, slow.timeSec) << k.name;
    }
}

TEST(Timing, MoreCusNeverSlower)
{
    for (const KernelDesc &k : {bigGemm(), skinnyGemm(),
             makeReduction("r", 1e7)}) {
        KernelTiming big = timeKernel(k, GpuConfig::config1());
        KernelTiming small = timeKernel(k, GpuConfig::config3());
        EXPECT_LE(big.timeSec, small.timeSec) << k.name;
    }
}

TEST(Timing, CachesNeverHurt)
{
    for (const KernelDesc &k : {bigGemm(), skinnyGemm(),
             makeElementwise("e", 1e7, 2.0, 2.0, 1.0)}) {
        KernelTiming base = timeKernel(k, GpuConfig::config1());
        KernelTiming no_l1 = timeKernel(k, GpuConfig::config4());
        KernelTiming no_l2 = timeKernel(k, GpuConfig::config5());
        EXPECT_LE(base.timeSec, no_l1.timeSec) << k.name;
        EXPECT_LE(base.timeSec, no_l2.timeSec) << k.name;
    }
}

TEST(Timing, BigGemmScalesWithCusMoreThanSkinny)
{
    KernelDesc big = bigGemm();
    KernelDesc skinny = skinnyGemm();
    double big_ratio = timeKernel(big, GpuConfig::config3()).timeSec /
        timeKernel(big, GpuConfig::config1()).timeSec;
    double skinny_ratio =
        timeKernel(skinny, GpuConfig::config3()).timeSec /
        timeKernel(skinny, GpuConfig::config1()).timeSec;
    EXPECT_GT(big_ratio, skinny_ratio);
}

TEST(Timing, LaunchOverheadIsFloor)
{
    GpuConfig cfg = GpuConfig::config1();
    KernelDesc tiny = nn::makeScalarOp("nop");
    KernelTiming kt = timeKernel(tiny, cfg);
    EXPECT_GE(kt.timeSec, cfg.launchOverheadSec);
}

TEST(Gpu, RepeatScalesTimeAndCounters)
{
    Gpu gpu(GpuConfig::config1());
    KernelDesc k = makeElementwise("e", 1e5, 2.0, 2.0, 1.0);
    KernelRecord once = gpu.execute(k);
    k.repeat = 10;
    KernelRecord ten = gpu.execute(k);
    EXPECT_NEAR(ten.timeSec, 10.0 * once.timeSec, 1e-12);
    EXPECT_NEAR(ten.counters.valuInsts, 10.0 * once.counters.valuInsts,
                1e-6);
    EXPECT_EQ(ten.launches, 10u);
}

TEST(Gpu, ExecuteAllAggregates)
{
    Gpu gpu(GpuConfig::config1());
    std::vector<KernelDesc> ks{makeElementwise("a", 1e5, 1.0, 1.0, 1.0),
                               makeReduction("b", 1e5)};
    ExecutionResult res = gpu.executeAll(ks, true);
    EXPECT_EQ(res.records.size(), 2u);
    EXPECT_NEAR(res.totalSec,
                res.records[0].timeSec + res.records[1].timeSec, 1e-15);
    EXPECT_DOUBLE_EQ(res.counters.kernelsLaunched, 2.0);
}

TEST(GpuConfig, Table2MatchesPaper)
{
    auto cfgs = GpuConfig::table2();
    ASSERT_EQ(cfgs.size(), 5u);
    EXPECT_DOUBLE_EQ(cfgs[0].gclkHz, ghz(1.6));
    EXPECT_EQ(cfgs[0].numCus, 64u);
    EXPECT_EQ(cfgs[0].l1SizeBytes, kib(16));
    EXPECT_EQ(cfgs[0].l2SizeBytes, mib(4));
    EXPECT_DOUBLE_EQ(cfgs[1].gclkHz, mhz(852));
    EXPECT_EQ(cfgs[2].numCus, 16u);
    EXPECT_EQ(cfgs[3].l1SizeBytes, 0u);
    EXPECT_EQ(cfgs[4].l2SizeBytes, 0u);
}

TEST(GpuConfig, PeakFlopsVega64)
{
    // 64 CU x 4 SIMD x 16 lanes x 2 x 1.6 GHz ~ 13.1 TFLOP/s.
    EXPECT_NEAR(GpuConfig::config1().peakFlops(), 13.1e12, 0.1e12);
}

TEST(Counters, AdditionAndScaling)
{
    PerfCounters a;
    a.valuInsts = 10;
    a.busySec = 1.0;
    PerfCounters b;
    b.valuInsts = 5;
    b.busySec = 0.5;
    PerfCounters c = a + b;
    EXPECT_DOUBLE_EQ(c.valuInsts, 15.0);
    c *= 2.0;
    EXPECT_DOUBLE_EQ(c.busySec, 3.0);
    EXPECT_FALSE(c.summary().empty());
}

} // anonymous namespace
} // namespace sim
} // namespace seqpoint
