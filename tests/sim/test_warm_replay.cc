/**
 * @file
 * Tests for the warm closed-form replay tier and the vectorized
 * probe kernel: steady-state oracle equivalence across the geometry
 * x generator matrix (statistics AND full final state), the
 * partially-warm fallback, summary retirement across
 * restoreState(), SIMD-vs-scalar bit identity, and the tier
 * engagement counters (every segment replay accounts to exactly one
 * tier; CacheStats equality ignores the tier split).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/units.hh"
#include "sim/access_gen.hh"
#include "sim/cache_model.hh"
#include "sim/cache_sim.hh"

namespace seqpoint {
namespace sim {
namespace {

/** Scalar oracle: one access() call per trace entry. */
void
scalarResume(CacheSim &cache, const AccessTrace &trace)
{
    for (std::size_t i = 0; i < trace.size(); ++i)
        cache.access(trace.addr(i), trace.isWrite(i));
}

/**
 * Full bit-identity: statistics and every word of mutable cache
 * state. Stricter than the stats-after-warm-pass probe the segment
 * tests use -- the warm tier writes lastUse stamps arithmetically,
 * so the LRU clocks themselves must be compared.
 */
void
expectSameState(const CacheSim &a, const CacheSim &b,
                const std::string &ctx)
{
    EXPECT_EQ(a.stats(), b.stats()) << ctx;
    CacheSetState sa = a.snapshotState();
    CacheSetState sb = b.snapshotState();
    EXPECT_EQ(sa.useClock, sb.useClock) << ctx;
    EXPECT_EQ(sa.tags, sb.tags) << ctx;
    EXPECT_EQ(sa.lastUse, sb.lastUse) << ctx;
    EXPECT_EQ(sa.flags, sb.flags) << ctx;
}

struct Geometry {
    unsigned assoc;
    unsigned lineBytes;
};

std::vector<Geometry>
geometries()
{
    std::vector<Geometry> gs;
    for (unsigned assoc : {1u, 4u, 16u})
        for (unsigned line : {32u, 64u, 128u})
            gs.push_back({assoc, line});
    return gs;
}

struct NamedStream {
    const char *name;
    SegmentList segs;
};

/**
 * Streams chosen to exercise every warm-tier decision: resident
 * re-walks (closed form fires), capacity overflows (cold then
 * line-run), sub-line and line-straddling strides, negative strides
 * and stride-0 pounding (analytically inapplicable -> line-run
 * tier), and write passes (dirty stamping).
 */
std::vector<NamedStream>
warmStreams()
{
    std::vector<NamedStream> streams;

    // Fits in every tested geometry: the second and third walks are
    // fully resident.
    streams.push_back({"residentRewalk",
                       genStreamingSegments(kib(8), 16)});

    // Same footprint, written on the re-walk: warm stamping must set
    // dirty bits exactly like the oracle.
    SegmentList dirty;
    dirty.addRun(0, 16, kib(8) / 16, false);
    dirty.addRun(0, 16, kib(8) / 16, true);
    streams.push_back({"residentDirtyRewalk", dirty});

    // Overflows a 16 KiB cache: never warm, exercises the fallback
    // interleaving with cold accounting.
    streams.push_back({"capacityOverflow",
                       genStreamingSegments(kib(96), 16)});

    // Blocked GEMM: panel re-walks are the paper's warm shape.
    streams.push_back({"blockedGemm",
                       genBlockedGemmSegments(48, 32, 64, 16)});

    // Line-straddling stride, walked twice.
    SegmentList straddle;
    straddle.addRun(8, 48, 100, false);
    straddle.addRun(8, 48, 100, false);
    streams.push_back({"straddle48", straddle});

    // Analytically inapplicable shapes: negative stride and stride-0
    // pounding over a resident footprint -- must route to the
    // line-run tier and stay bit-identical.
    SegmentList inapplicable;
    inapplicable.addRun(0, 16, 256, false);
    inapplicable.addRun(4096 - 16, -16, 256, false);
    inapplicable.addRun(0x80, 0, 64, true);
    streams.push_back({"inapplicableShapes", inapplicable});

    return streams;
}

/**
 * The tentpole identity: R rounds of the same stream through the
 * tier ladder vs the scalar oracle, comparing statistics and the
 * full final state each round. Round 1 runs cold tiers; rounds 2+
 * are where the warm closed form (or its fallback) engages.
 */
TEST(WarmReplay, MatchesScalarAcrossGeometryGeneratorMatrix)
{
    constexpr int kRounds = 3;
    for (const NamedStream &ns : warmStreams()) {
        AccessTrace trace = ns.segs.materialize();
        for (const Geometry &g : geometries()) {
            CacheSim oracle(kib(16), g.assoc, g.lineBytes);
            CacheSim engine(kib(16), g.assoc, g.lineBytes);
            for (int round = 0; round < kRounds; ++round) {
                scalarResume(oracle, trace);
                replaySegmentsResume(engine, ns.segs);
                expectSameState(engine, oracle,
                                std::string(ns.name) + " round " +
                                    std::to_string(round) + " assoc " +
                                    std::to_string(g.assoc) + " line " +
                                    std::to_string(g.lineBytes));
            }
        }
    }
}

TEST(WarmReplay, WarmTierEngagesOnSteadyState)
{
    SegmentList stream = genStreamingSegments(kib(8), 16);
    CacheSim engine(kib(16), 4, 64);
    replaySegmentsResume(engine, stream); // install
    uint64_t warm_before = engine.stats().tiers.warmSegments;
    CacheStats before = engine.stats();

    replaySegmentsResume(engine, stream); // fully resident re-walk
    EXPECT_GT(engine.stats().tiers.warmSegments, warm_before);
    EXPECT_EQ(engine.stats().hits - before.hits, stream.accesses())
        << "steady-state re-walk must be all hits";

    // The steady state stays warm indefinitely.
    replaySegmentsResume(engine, stream);
    EXPECT_GT(engine.stats().tiers.warmSegments, warm_before + 1);
}

TEST(WarmReplay, PartialEvictionFallsBackAndStaysIdentical)
{
    // Warm a footprint, evict part of it with a conflicting walk,
    // then re-walk the original: the warm test must reject the
    // segment (some lines gone) and the fallback must match the
    // oracle exactly.
    SegmentList warm_walk = genStreamingSegments(kib(8), 16);
    SegmentList evictor;
    // Same sets, different tags: 16 KiB / 4-way / 64 B lines has
    // 4 KiB of sets-span per way, so +64 KiB aliases onto the same
    // sets.
    evictor.addRun(kib(64), 16, kib(4) / 16, false);

    CacheSim oracle(kib(16), 4, 64), engine(kib(16), 4, 64);
    AccessTrace warm_trace = warm_walk.materialize();
    AccessTrace evict_trace = evictor.materialize();

    scalarResume(oracle, warm_trace);
    scalarResume(oracle, warm_trace);
    scalarResume(oracle, evict_trace);
    scalarResume(oracle, warm_trace);

    replaySegmentsResume(engine, warm_walk);
    replaySegmentsResume(engine, warm_walk); // warm tier fires here
    uint64_t warm_mark = engine.stats().tiers.warmSegments;
    EXPECT_GT(warm_mark, 0u);
    replaySegmentsResume(engine, evictor);   // retires summaries
    replaySegmentsResume(engine, warm_walk); // partially warm now

    expectSameState(engine, oracle, "post-eviction re-walk");
}

TEST(WarmReplay, RestoreStateRetiresSummariesSafely)
{
    // restoreState() rebuilds occupancy but deliberately drops the
    // residency summaries; the next warm test must re-verify by
    // probing, not trust stale way mappings.
    SegmentList stream = genStreamingSegments(kib(8), 16);
    CacheSim engine(kib(16), 4, 64);
    replaySegmentsResume(engine, stream);
    replaySegmentsResume(engine, stream); // summaries recorded
    CacheSetState snap = engine.snapshotState();

    CacheSim resumed(kib(16), 4, 64);
    resumed.restoreState(snap);
    replaySegmentsResume(resumed, stream);

    CacheSim oracle(kib(16), 4, 64);
    AccessTrace trace = stream.materialize();
    scalarResume(oracle, trace);
    scalarResume(oracle, trace);
    scalarResume(oracle, trace);
    expectSameState(resumed, oracle, "resume after restore");

    // The restored engine still reaches the warm tier again.
    uint64_t warm_before = resumed.stats().tiers.warmSegments;
    replaySegmentsResume(resumed, stream);
    EXPECT_GT(resumed.stats().tiers.warmSegments, warm_before);
}

TEST(WarmReplay, WarmTierOptOutIsBitIdentical)
{
    // ReplayOptions{warmTier = false} is the bench baseline: same
    // statistics and state, zero warm engagements.
    SegmentList stream = genStreamingSegments(kib(8), 16);
    CacheSim tiered(kib(16), 4, 64), flat(kib(16), 4, 64);
    ReplayOptions no_warm;
    no_warm.warmTier = false;
    for (int round = 0; round < 3; ++round) {
        replaySegmentsResume(tiered, stream);
        replaySegmentsResume(flat, stream, no_warm);
    }
    expectSameState(tiered, flat, "warm opt-out");
    EXPECT_GT(tiered.stats().tiers.warmSegments, 0u);
    EXPECT_EQ(flat.stats().tiers.warmSegments, 0u);
}

TEST(WarmReplay, EverySegmentAccountsToExactlyOneTier)
{
    constexpr int kRounds = 2;
    for (const NamedStream &ns : warmStreams()) {
        CacheSim engine(kib(16), 4, 64);
        for (int round = 0; round < kRounds; ++round)
            replaySegmentsResume(engine, ns.segs);
        EXPECT_EQ(engine.stats().tiers.total(),
                  kRounds * ns.segs.size())
            << ns.name;
    }
}

TEST(WarmReplay, StatsEqualityIgnoresTierSplit)
{
    CacheStats a, b;
    a.accesses = b.accesses = 100;
    a.hits = b.hits = 90;
    a.tiers.coldSegments = 5;
    b.tiers.lineRunSegments = 7;
    EXPECT_EQ(a, b); // semantic fields equal, tier split differs

    b.hits = 89;
    EXPECT_FALSE(a == b);

    ReplayTierCounters ta, tb;
    ta.coldSegments = 1;
    EXPECT_FALSE(ta == tb);
    tb.coldSegments = 1;
    EXPECT_EQ(ta, tb);
    EXPECT_EQ(ta.total(), 1u);
}

TEST(WarmReplay, SimdProbeIsBitIdenticalToScalar)
{
    if (!CacheSim::simdProbeSupported())
        GTEST_SKIP() << "host has no vectorized probe";

    // Probe-heavy streams (hot/cold random mix plus resident
    // re-walks) through both kernels on every geometry: identical
    // statistics and final state word for word.
    Rng rng(9, 0xbeef);
    std::vector<NamedStream> streams = warmStreams();
    streams.push_back({"hotCold",
                       genHotColdSegments(4000, kib(4), kib(256), 0.7,
                                          rng)});

    for (const NamedStream &ns : streams) {
        for (const Geometry &g : geometries()) {
            CacheSim scalar(kib(16), g.assoc, g.lineBytes);
            CacheSim simd(kib(16), g.assoc, g.lineBytes);
            scalar.setProbeKernel(CacheSim::ProbeKernel::Scalar);
            simd.setProbeKernel(CacheSim::ProbeKernel::Simd);
            ASSERT_EQ(simd.probeKernel(), CacheSim::ProbeKernel::Simd);

            for (int round = 0; round < 2; ++round) {
                replaySegmentsResume(scalar, ns.segs);
                replaySegmentsResume(simd, ns.segs);
            }
            expectSameState(simd, scalar,
                            std::string(ns.name) + " assoc " +
                                std::to_string(g.assoc) + " line " +
                                std::to_string(g.lineBytes));
        }
    }
}

TEST(WarmReplay, ProbeKernelSelection)
{
    CacheSim c(kib(16), 4, 64);
    c.setProbeKernel(CacheSim::ProbeKernel::Scalar);
    EXPECT_EQ(c.probeKernel(), CacheSim::ProbeKernel::Scalar);
    c.setProbeKernel(CacheSim::ProbeKernel::Auto);
    EXPECT_EQ(c.probeKernel(), CacheSim::simdProbeSupported()
                  ? CacheSim::ProbeKernel::Simd
                  : CacheSim::ProbeKernel::Scalar);
}

TEST(WarmReplayDeathTest, SimdKernelPanicsWhenUnsupported)
{
    if (CacheSim::simdProbeSupported())
        GTEST_SKIP() << "host supports the vectorized probe";
    CacheSim c(kib(16), 4, 64);
    EXPECT_DEATH(c.setProbeKernel(CacheSim::ProbeKernel::Simd),
                 "probe");
}

} // anonymous namespace
} // namespace sim
} // namespace seqpoint
