/**
 * @file
 * Tests for the flat access-trace buffer and its cache replay.
 */

#include <gtest/gtest.h>

#include "sim/access_gen.hh"

namespace seqpoint {
namespace sim {
namespace {

TEST(AccessTrace, PacksAddressAndWriteBit)
{
    AccessTrace trace;
    EXPECT_TRUE(trace.empty());
    trace.add(0x1000, false);
    trace.add(0x2040, true);

    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.addr(0), 0x1000u);
    EXPECT_FALSE(trace.isWrite(0));
    EXPECT_EQ(trace.addr(1), 0x2040u);
    EXPECT_TRUE(trace.isWrite(1));

    trace.clear();
    EXPECT_TRUE(trace.empty());
}

TEST(AccessTrace, SinkRecordsGeneratedStream)
{
    AccessTrace trace;
    genStreaming(4096, 64, trace.sink());
    EXPECT_EQ(trace.size(), 4096u / 64u);
    EXPECT_EQ(trace.addr(1), 64u);
}

TEST(AccessTrace, ReplayMatchesCallbackPath)
{
    // The same GEMM stream through the std::function path and the
    // flat replay path must see identical hit rates.
    CacheSim direct(16 * 1024, 4, 64);
    double via_callback = measureHitRate(direct, [](const AccessSink &s) {
        genBlockedGemm(256, 256, 128, 64, s);
    });

    AccessTrace trace;
    genBlockedGemm(256, 256, 128, 64, trace.sink());
    CacheSim replayed(16 * 1024, 4, 64);
    double via_replay = replayHitRate(replayed, trace);

    EXPECT_DOUBLE_EQ(via_callback, via_replay);
    EXPECT_GT(trace.size(), 0u);

    // One trace swept over several geometries: hit rate grows with
    // capacity.
    double prev = -1.0;
    for (uint64_t kb : {4u, 16u, 64u}) {
        CacheSim cache(kb * 1024, 4, 64);
        double rate = replayHitRate(cache, trace);
        EXPECT_GE(rate, prev);
        prev = rate;
    }
}

} // anonymous namespace
} // namespace sim
} // namespace seqpoint
