/**
 * @file
 * Tests for the analytical cache model, including cross-validation
 * against the trace-driven cache simulator.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/access_gen.hh"
#include "sim/cache_model.hh"
#include "sim/cache_sim.hh"

namespace seqpoint {
namespace sim {
namespace {

TEST(CapacityHitFraction, FullReuseWhenFits)
{
    EXPECT_DOUBLE_EQ(capacityHitFraction(0.8, 1000.0, 2000.0), 0.8);
    EXPECT_DOUBLE_EQ(capacityHitFraction(0.8, 2000.0, 2000.0), 0.8);
}

TEST(CapacityHitFraction, PowerLawDecayBeyondCapacity)
{
    double h = capacityHitFraction(0.8, 4000.0, 1000.0, 0.5);
    EXPECT_NEAR(h, 0.8 * 0.5, 1e-12); // (1/4)^0.5 = 0.5
}

TEST(CapacityHitFraction, ZeroCapacityMeansNoHits)
{
    EXPECT_DOUBLE_EQ(capacityHitFraction(0.8, 100.0, 0.0), 0.0);
}

TEST(CapacityHitFraction, MonotoneInCapacity)
{
    double prev = 0.0;
    for (double cap = 1000.0; cap <= 64000.0; cap *= 2.0) {
        double h = capacityHitFraction(0.9, 100000.0, cap);
        EXPECT_GE(h, prev);
        prev = h;
    }
}

TEST(MemoryBreakdown, ConservesBytes)
{
    KernelDesc k = makeElementwise("ew", 1e6, 1.0, 2.0, 1.0);
    GpuConfig cfg = GpuConfig::config1();
    MemoryBreakdown mb = evalMemoryBreakdown(k, cfg);
    EXPECT_NEAR(mb.l1Bytes + mb.l2Bytes + mb.dramBytes,
                k.totalBytes(), 1.0);
}

TEST(MemoryBreakdown, DisabledL1SendsTrafficDown)
{
    KernelDesc k = makeElementwise("ew", 1e5, 1.0, 2.0, 1.0);
    k.reuseL1 = 0.5;
    k.workingSetL1 = 1000.0; // easily fits

    MemoryBreakdown with_l1 =
        evalMemoryBreakdown(k, GpuConfig::config1());
    MemoryBreakdown no_l1 = evalMemoryBreakdown(k, GpuConfig::config4());

    EXPECT_GT(with_l1.l1Bytes, 0.0);
    EXPECT_DOUBLE_EQ(no_l1.l1Bytes, 0.0);
    EXPECT_GT(no_l1.l2Bytes + no_l1.dramBytes,
              with_l1.l2Bytes + with_l1.dramBytes - 1.0);
}

TEST(MemoryBreakdown, DisabledL2SendsTrafficToDram)
{
    KernelDesc k = makeElementwise("ew", 1e5, 1.0, 2.0, 1.0);
    MemoryBreakdown no_l2 = evalMemoryBreakdown(k, GpuConfig::config5());
    EXPECT_DOUBLE_EQ(no_l2.l2Bytes, 0.0);
    EXPECT_GT(no_l2.dramBytes,
              evalMemoryBreakdown(k, GpuConfig::config1()).dramBytes);
}

/**
 * Cross-validation of the analytical capacity law against the
 * trace-driven simulator on a hot/cold access mix. At the exact
 * capacity == working-set boundary LRU churn from the cold stream
 * keeps the measured rate below the law's optimistic value, so the
 * validation asserts the physically meaningful structure: hit rate is
 * monotone in capacity, approaches the intrinsic reuse once capacity
 * comfortably exceeds the hot set, and collapses when capacity is a
 * small fraction of it. Away from the boundary the law also tracks
 * the measurement numerically.
 */
TEST(CacheModelValidation, PowerLawTracksSimulatorOnHotCold)
{
    const uint64_t hot = kib(64);
    const uint64_t cold = mib(8);
    const double hot_frac = 0.6;

    auto measure = [&](uint64_t cap_bytes) {
        CacheSim cache(cap_bytes, 8, 64);
        Rng rng(99);
        return measureHitRate(cache, [&](const AccessSink &sink) {
            genHotCold(200000, hot, cold, hot_frac, rng, sink);
        });
    };

    // Monotone in capacity.
    double prev = -1.0;
    for (uint64_t cap_kib : {16, 32, 64, 128, 256, 512}) {
        double m = measure(kib(cap_kib));
        EXPECT_GE(m, prev - 0.02) << cap_kib;
        prev = m;
    }

    // Asymptote: 8x the hot set captures (nearly) all hot reuse.
    double big = measure(kib(512));
    EXPECT_NEAR(big, hot_frac, 0.08);

    // Far below capacity the power law is the right order: at cap =
    // hot/4, predicted = 0.6 * 0.25^p; measured should sit within a
    // factor-2 band of the p = 1 prediction.
    double small = measure(kib(16));
    double predicted_small = capacityHitFraction(hot_frac,
        static_cast<double>(hot), static_cast<double>(kib(16)), 1.0);
    EXPECT_GT(small, predicted_small * 0.4);
    EXPECT_LT(small, predicted_small * 2.5);
}

TEST(CacheModelValidation, StreamingHasNoReuse)
{
    CacheSim cache(kib(16), 4, 64);
    double measured = measureHitRate(cache,
        [](const AccessSink &sink) { genStreaming(mib(4), 64, sink); });
    EXPECT_LT(measured, 0.01);
}

TEST(CacheModelValidation, BlockedGemmReusesInLargeCache)
{
    // A 256x256x256 GEMM walked in 64-tiles against a cache large
    // enough for the panels shows substantial reuse; a tiny cache
    // keeps only the intra-line spatial hits of the element-granular
    // panel-row walks and misses several times more often.
    CacheSim big(mib(4), 16, 64);
    double hit_big = measureHitRate(big, [](const AccessSink &sink) {
        genBlockedGemm(256, 256, 256, 64, sink);
    });

    CacheSim small(kib(8), 4, 64);
    double hit_small = measureHitRate(small, [](const AccessSink &sink) {
        genBlockedGemm(256, 256, 256, 64, sink);
    });

    EXPECT_GT(hit_big, hit_small);
    EXPECT_GT(1.0 - hit_small, 2.0 * (1.0 - hit_big));
}

} // anonymous namespace
} // namespace sim
} // namespace seqpoint
