/**
 * @file
 * Tests for the dataset synthesizers and batching policies.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats_math.hh"
#include "data/batching.hh"
#include "data/dataset.hh"
#include "data/distributions.hh"

namespace seqpoint {
namespace data {
namespace {

TEST(Distributions, LibrispeechInRangeAndSkewed)
{
    Rng rng(5);
    auto lens = librispeechLengths(rng, 20000);
    std::vector<double> d(lens.begin(), lens.end());
    EXPECT_GE(minOf(d), 50.0);
    EXPECT_LE(maxOf(d), 450.0);
    // Right-skewed: mean above median.
    EXPECT_GT(mean(d), percentile(d, 50.0));
}

TEST(Distributions, IwsltInRange)
{
    Rng rng(5);
    auto lens = iwsltLengths(rng, 20000);
    std::vector<double> d(lens.begin(), lens.end());
    EXPECT_GE(minOf(d), 4.0);
    EXPECT_LE(maxOf(d), 220.0);
    EXPECT_NEAR(percentile(d, 50.0), 25.0, 6.0);
}

TEST(Distributions, NoEdgePileup)
{
    // Rejection sampling must not create spikes at the range maximum.
    Rng rng(5);
    auto lens = librispeechLengths(rng, 50000);
    size_t at_max = static_cast<size_t>(
        std::count(lens.begin(), lens.end(), int64_t{450}));
    EXPECT_LT(at_max, 50u);
}

TEST(Distributions, DeterministicPerSeed)
{
    Rng a(9), b(9);
    EXPECT_EQ(iwsltLengths(a, 100), iwsltLengths(b, 100));
}

TEST(Dataset, FactoriesProduceDocumentedSizes)
{
    Dataset ls = synthLibriSpeech100(23);
    EXPECT_EQ(ls.trainSize(), 36480u);
    EXPECT_EQ(ls.evalLens.size(), 2703u);

    Dataset iw = synthIwslt15(23);
    EXPECT_EQ(iw.trainSize(), 38400u);
    EXPECT_EQ(iw.evalLens.size(), 1553u);

    Dataset wmt = synthWmt16(23);
    EXPECT_GT(wmt.trainSize(), 5 * iw.trainSize());
}

TEST(Dataset, Helpers)
{
    Dataset ds;
    ds.trainLens = {5, 3, 9, 3, 7};
    EXPECT_EQ(ds.minLen(), 3);
    EXPECT_EQ(ds.maxLen(), 9);
    EXPECT_EQ(ds.uniqueLenCount(), 4u);
}

TEST(Batching, PadsToMaxAndKeepsBatchSize)
{
    Rng rng(1);
    std::vector<int64_t> lens{1, 9, 2, 8, 3, 7, 4, 6};
    auto batches = makeEpochBatches(lens, 4, BatchPolicy::SortedBySl,
                                    rng);
    ASSERT_EQ(batches.size(), 2u);
    EXPECT_EQ(batches[0].seqLen, 4); // sorted: 1,2,3,4
    EXPECT_EQ(batches[1].seqLen, 9); // sorted: 6,7,8,9
    for (const auto &b : batches)
        EXPECT_EQ(b.size, 4u);
}

TEST(Batching, DropsTrailingPartialBatch)
{
    Rng rng(1);
    std::vector<int64_t> lens(10, 5);
    auto batches = makeEpochBatches(lens, 4, BatchPolicy::Shuffled, rng);
    EXPECT_EQ(batches.size(), 2u);
}

TEST(Batching, SortedIsMonotone)
{
    Rng rng(3);
    auto lens = librispeechLengths(rng, 6400);
    auto batches = makeEpochBatches(lens, 64, BatchPolicy::SortedBySl,
                                    rng);
    for (size_t i = 1; i < batches.size(); ++i)
        EXPECT_GE(batches[i].seqLen, batches[i - 1].seqLen);
}

TEST(Batching, BucketedCoversSameSlsAsSorted)
{
    Rng rng1(3), rng2(3);
    auto lens = iwsltLengths(rng1, 6400);
    auto sorted = makeEpochBatches(lens, 64, BatchPolicy::SortedBySl,
                                   rng1);
    auto bucketed = makeEpochBatches(lens, 64, BatchPolicy::Bucketed,
                                     rng2);
    auto key = [](std::vector<Batch> v) {
        std::vector<int64_t> sls;
        for (const auto &b : v)
            sls.push_back(b.seqLen);
        std::sort(sls.begin(), sls.end());
        return sls;
    };
    EXPECT_EQ(key(sorted), key(bucketed));
}

TEST(Batching, ShuffledIsPermutationSensitiveToSeed)
{
    Rng rng1(3), rng2(4);
    std::vector<int64_t> lens;
    Rng gen(7);
    for (int i = 0; i < 1280; ++i)
        lens.push_back(gen.uniformInt(1, 300));
    auto a = makeEpochBatches(lens, 64, BatchPolicy::Shuffled, rng1);
    auto b = makeEpochBatches(lens, 64, BatchPolicy::Shuffled, rng2);
    bool any_diff = false;
    for (size_t i = 0; i < a.size(); ++i)
        any_diff = any_diff || (a[i].seqLen != b[i].seqLen);
    EXPECT_TRUE(any_diff);
}

TEST(Batching, SortedMinimisesPadding)
{
    Rng rng1(3), rng2(3);
    auto lens = librispeechLengths(rng1, 12800);
    auto sorted = makeEpochBatches(lens, 64, BatchPolicy::SortedBySl,
                                   rng1);
    auto shuffled = makeEpochBatches(lens, 64, BatchPolicy::Shuffled,
                                     rng2);
    EXPECT_LT(paddingOverhead(lens, sorted),
              paddingOverhead(lens, shuffled));
}

TEST(Batching, MaxOfBatchRaisesIterationSl)
{
    // With shuffling, iteration SLs concentrate near the sample
    // distribution's upper tail (max over 64 draws).
    Rng rng1(3), rng2(3);
    auto lens = iwsltLengths(rng1, 12800);
    auto shuffled = makeEpochBatches(lens, 64, BatchPolicy::Shuffled,
                                     rng2);
    std::vector<double> samples(lens.begin(), lens.end());
    std::vector<double> iter_sls;
    for (const auto &b : shuffled)
        iter_sls.push_back(static_cast<double>(b.seqLen));
    EXPECT_GT(mean(iter_sls), percentile(samples, 90.0));
}

TEST(BatchingDeath, RejectsBadArguments)
{
    Rng rng(1);
    std::vector<int64_t> lens{1, 2, 3};
    EXPECT_DEATH(makeEpochBatches(lens, 0, BatchPolicy::Shuffled, rng),
                 "zero batch");
    EXPECT_DEATH(makeEpochBatches(lens, 8, BatchPolicy::Shuffled, rng),
                 "fewer samples");
}

} // anonymous namespace
} // namespace data
} // namespace seqpoint
