/**
 * @file
 * Tests for sequence-length binning, including parameterized
 * invariants over k and both binning modes.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/binning.hh"

namespace seqpoint {
namespace core {
namespace {

SlStats
syntheticStats(uint64_t seed, size_t unique)
{
    Rng rng(seed);
    std::vector<SlEntry> entries;
    int64_t sl = 10;
    for (size_t i = 0; i < unique; ++i) {
        sl += rng.uniformInt(1, 6);
        entries.push_back(SlEntry{
            sl, static_cast<uint64_t>(rng.uniformInt(1, 20)),
            0.01 * static_cast<double>(sl) + 0.2});
    }
    return SlStats::fromEntries(std::move(entries));
}

TEST(Binning, SimpleEqualWidth)
{
    SlStats s = SlStats::fromEntries({
        {10, 1, 1.0}, {20, 1, 2.0}, {90, 1, 9.0}, {100, 1, 10.0}});
    auto bins = binEntries(s, 2, BinningMode::EqualWidth);
    ASSERT_EQ(bins.size(), 2u);
    EXPECT_EQ(bins[0].first, 0u);
    EXPECT_EQ(bins[0].last, 1u);
    EXPECT_EQ(bins[1].first, 2u);
    EXPECT_EQ(bins[1].last, 3u);
}

TEST(Binning, EmptyRangesAreDropped)
{
    // SLs cluster at both ends; middle buckets are empty. Even with
    // k <= uniqueCount(), equal-width buckets that receive no unique
    // SL are dropped, so fewer than k bins come back.
    SlStats s = SlStats::fromEntries({
        {1, 1, 1.0}, {2, 1, 1.0}, {99, 1, 9.0}, {100, 1, 10.0}});
    auto bins = binEntries(s, 4, BinningMode::EqualWidth);
    EXPECT_LT(bins.size(), 4u);
    uint64_t covered = 0;
    for (const auto &b : bins)
        covered += b.count();
    EXPECT_EQ(covered, s.uniqueCount());
}

TEST(Binning, KOneIsEverything)
{
    SlStats s = syntheticStats(1, 50);
    auto bins = binEntries(s, 1, BinningMode::EqualWidth);
    ASSERT_EQ(bins.size(), 1u);
    EXPECT_EQ(bins[0].count(), 50u);
}

TEST(Binning, EqualFrequencyBalancesIterations)
{
    SlStats s = syntheticStats(2, 200);
    auto bins = binEntries(s, 4, BinningMode::EqualFrequency);
    ASSERT_GE(bins.size(), 3u);
    double total = static_cast<double>(s.totalIterations());
    for (const auto &b : bins) {
        double frac = static_cast<double>(binIterations(s, b)) / total;
        EXPECT_NEAR(frac, 1.0 / bins.size(), 0.15);
    }
}

TEST(Binning, MeanStatsWithinBinBounds)
{
    SlStats s = syntheticStats(3, 100);
    for (auto mode : {BinningMode::EqualWidth,
                      BinningMode::EqualFrequency}) {
        for (const Bin &b : binEntries(s, 7, mode)) {
            double lo = s.entries()[b.first].statValue;
            double hi = s.entries()[b.last].statValue;
            double m = binMeanStat(s, b);
            double mw = binMeanStatWeighted(s, b);
            EXPECT_GE(m, lo - 1e-12);
            EXPECT_LE(m, hi + 1e-12);
            EXPECT_GE(mw, lo - 1e-12);
            EXPECT_LE(mw, hi + 1e-12);
        }
    }
}

/** Parameterized invariants over (k, mode). */
class BinningInvariants
    : public testing::TestWithParam<std::tuple<unsigned, BinningMode>>
{
};

TEST_P(BinningInvariants, PartitionIsExactAndOrdered)
{
    auto [k, mode] = GetParam();
    for (uint64_t seed : {11u, 22u, 33u}) {
        SlStats s = syntheticStats(seed, 120);
        auto bins = binEntries(s, k, mode);

        ASSERT_FALSE(bins.empty());
        EXPECT_LE(bins.size(), static_cast<size_t>(k));

        // Bins tile the entry index space exactly, in order.
        size_t expected_first = 0;
        uint64_t iter_sum = 0;
        for (const Bin &b : bins) {
            EXPECT_EQ(b.first, expected_first);
            EXPECT_GE(b.last, b.first);
            expected_first = b.last + 1;
            iter_sum += binIterations(s, b);
        }
        EXPECT_EQ(expected_first, s.uniqueCount());
        EXPECT_EQ(iter_sum, s.totalIterations());
    }
}

INSTANTIATE_TEST_SUITE_P(
    KSweep, BinningInvariants,
    testing::Combine(testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 60u,
                                     119u, 120u),
                     testing::Values(BinningMode::EqualWidth,
                                     BinningMode::EqualFrequency)));

TEST(BinningDeath, RejectsZeroK)
{
    SlStats s = syntheticStats(1, 10);
    EXPECT_DEATH(binEntries(s, 0, BinningMode::EqualWidth), "zero");
}

TEST(BinningDeath, RejectsMoreBinsThanUniqueSls)
{
    // k > uniqueCount() cannot be honoured; the historical behaviour
    // quietly returned at most uniqueCount() bins, which fixed-k
    // callers misread as a k-bucket split. It must fail loudly.
    SlStats s = syntheticStats(1, 10);
    EXPECT_DEATH(binEntries(s, 11, BinningMode::EqualWidth), "unique");
    EXPECT_DEATH(binEntries(s, 500, BinningMode::EqualFrequency),
                 "unique");
}

} // anonymous namespace
} // namespace core
} // namespace seqpoint
