/**
 * @file
 * Tests for SlStats.
 */

#include <gtest/gtest.h>

#include "core/sl_log.hh"

namespace seqpoint {
namespace core {
namespace {

SlStats
sampleStats()
{
    return SlStats::fromIterations({
        {10, 1.0}, {10, 1.0}, {10, 1.0},
        {20, 2.0}, {20, 2.0},
        {40, 4.0},
    });
}

TEST(SlStats, AggregatesFrequencies)
{
    SlStats s = sampleStats();
    EXPECT_EQ(s.uniqueCount(), 3u);
    EXPECT_EQ(s.totalIterations(), 6u);
    ASSERT_NE(s.find(10), nullptr);
    EXPECT_EQ(s.find(10)->freq, 3u);
    EXPECT_EQ(s.find(20)->freq, 2u);
    EXPECT_EQ(s.find(40)->freq, 1u);
    EXPECT_EQ(s.find(15), nullptr);
}

TEST(SlStats, AveragesRepeatedObservations)
{
    SlStats s = SlStats::fromIterations({{5, 1.0}, {5, 3.0}});
    EXPECT_DOUBLE_EQ(s.find(5)->statValue, 2.0);
}

TEST(SlStats, ActualTotalIsFreqWeighted)
{
    SlStats s = sampleStats();
    EXPECT_DOUBLE_EQ(s.actualTotal(), 3 * 1.0 + 2 * 2.0 + 1 * 4.0);
}

TEST(SlStats, EntriesSortedAndRange)
{
    SlStats s = SlStats::fromIterations({{40, 4.0}, {10, 1.0},
                                         {20, 2.0}});
    EXPECT_EQ(s.minSl(), 10);
    EXPECT_EQ(s.maxSl(), 40);
    for (size_t i = 1; i < s.entries().size(); ++i)
        EXPECT_LT(s.entries()[i - 1].seqLen, s.entries()[i].seqLen);
}

TEST(SlStats, MostFrequentAndMedian)
{
    SlStats s = sampleStats();
    EXPECT_EQ(s.mostFrequentSl(), 10);
    // Iteration-weighted: 10,10,10,20,20,40 -> median is 10 (3rd of 6).
    EXPECT_EQ(s.medianSl(), 10);

    SlStats t = SlStats::fromIterations({
        {10, 1.0}, {20, 2.0}, {20, 2.0}, {30, 3.0}, {30, 3.0}});
    EXPECT_EQ(t.medianSl(), 20);
}

TEST(SlStats, FromEntriesRejectsDuplicates)
{
    EXPECT_DEATH(SlStats::fromEntries({{5, 1, 1.0}, {5, 2, 2.0}}),
                 "duplicate");
}

TEST(SlStats, EmptyStatsPanicsOnQueries)
{
    SlStats s = SlStats::fromIterations({});
    EXPECT_EQ(s.uniqueCount(), 0u);
    EXPECT_DEATH(s.minSl(), "empty");
    EXPECT_DEATH(s.medianSl(), "empty");
}

} // anonymous namespace
} // namespace core
} // namespace seqpoint
