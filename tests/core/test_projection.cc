/**
 * @file
 * Tests for the projection helpers.
 */

#include <gtest/gtest.h>

#include "core/projection.hh"

namespace seqpoint {
namespace core {
namespace {

SeqPointSet
twoPointSet()
{
    SeqPointSet set;
    set.points.push_back(SeqPointRecord{10, 30.0, 1.0});
    set.points.push_back(SeqPointRecord{50, 70.0, 5.0});
    return set;
}

TEST(Projection, TrainingTimeIsWeightedSum)
{
    SeqPointSet set = twoPointSet();
    double t = projectTrainingTime(set, [](int64_t sl) {
        return static_cast<double>(sl) * 0.1;
    });
    EXPECT_NEAR(t, 30.0 * 1.0 + 70.0 * 5.0, 1e-12);
}

TEST(Projection, ThroughputDefinition)
{
    SeqPointSet set = twoPointSet();
    double thr = projectThroughput(set, 64, [](int64_t sl) {
        return static_cast<double>(sl) * 0.1;
    });
    double expected = 100.0 * 64.0 / 380.0;
    EXPECT_NEAR(thr, expected, 1e-9);
}

TEST(Projection, UpliftPercent)
{
    EXPECT_NEAR(upliftPercent(100.0, 150.0), 50.0, 1e-12);
    EXPECT_NEAR(upliftPercent(100.0, 100.0), 0.0, 1e-12);
    EXPECT_NEAR(upliftPercent(200.0, 100.0), -50.0, 1e-12);
}

TEST(Projection, TimeErrorPercent)
{
    EXPECT_NEAR(timeErrorPercent(110.0, 100.0), 10.0, 1e-12);
    EXPECT_NEAR(timeErrorPercent(90.0, 100.0), 10.0, 1e-12);
}

TEST(Projection, UpliftErrorPoints)
{
    EXPECT_NEAR(upliftErrorPoints(42.0, 40.0), 2.0, 1e-12);
    EXPECT_NEAR(upliftErrorPoints(38.0, 40.0), 2.0, 1e-12);
}

TEST(ProjectionDeath, GuardsDivisions)
{
    SeqPointSet set = twoPointSet();
    EXPECT_DEATH(projectThroughput(set, 0, [](int64_t) { return 1.0; }),
                 "zero batch");
    EXPECT_DEATH(timeErrorPercent(1.0, 0.0), "zero actual");
    EXPECT_DEATH(upliftPercent(0.0, 1.0), "non-positive");
}

} // anonymous namespace
} // namespace core
} // namespace seqpoint
