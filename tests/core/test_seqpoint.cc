/**
 * @file
 * Tests for the SeqPoint selection algorithm, including parameterized
 * property sweeps over options.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/logging.hh"
#include "core/seqpoint.hh"

namespace seqpoint {
namespace core {
namespace {

/** Synthetic epoch with near-linear runtime-vs-SL plus curvature. */
SlStats
epochStats(uint64_t seed, size_t unique, double curvature = 0.0)
{
    Rng rng(seed);
    std::vector<SlEntry> entries;
    int64_t sl = 8;
    for (size_t i = 0; i < unique; ++i) {
        sl += rng.uniformInt(1, 5);
        double x = static_cast<double>(sl);
        entries.push_back(SlEntry{
            sl, static_cast<uint64_t>(rng.uniformInt(1, 12)),
            0.05 + 0.004 * x + curvature * x * x});
    }
    return SlStats::fromEntries(std::move(entries));
}

TEST(SeqPoint, FewUniqueSlsUsesAll)
{
    SlStats s = epochStats(1, 8);
    SeqPointSet set = selectSeqPoints(s);
    EXPECT_TRUE(set.usedAllUnique);
    EXPECT_TRUE(set.converged);
    EXPECT_EQ(set.points.size(), 8u);
    EXPECT_DOUBLE_EQ(set.selfError, 0.0);
    // All-unique projection is exact.
    EXPECT_NEAR(set.projectTotal(), s.actualTotal(), 1e-9);
}

TEST(SeqPoint, ThresholdBoundaryExactlyN)
{
    SlStats s = epochStats(2, 10);
    SeqPointOptions opts;
    opts.uniqueSlThreshold = 10;
    EXPECT_TRUE(selectSeqPoints(s, opts).usedAllUnique);
    opts.uniqueSlThreshold = 9;
    EXPECT_FALSE(selectSeqPoints(s, opts).usedAllUnique);
}

TEST(SeqPoint, WeightsSumToIterationCount)
{
    SlStats s = epochStats(3, 150);
    SeqPointSet set = selectSeqPoints(s);
    EXPECT_NEAR(set.totalWeight(),
                static_cast<double>(s.totalIterations()), 1e-9);
}

TEST(SeqPoint, ConvergesWithinThreshold)
{
    SlStats s = epochStats(4, 200);
    SeqPointOptions opts;
    opts.errorThreshold = 0.01;
    SeqPointSet set = selectSeqPoints(s, opts);
    EXPECT_TRUE(set.converged);
    EXPECT_LE(set.selfError, 0.01);
    EXPECT_LT(set.points.size(), s.uniqueCount());
}

TEST(SeqPoint, RepresentativesAreRealSls)
{
    SlStats s = epochStats(5, 120);
    SeqPointSet set = selectSeqPoints(s);
    for (const SeqPointRecord &p : set.points) {
        const SlEntry *e = s.find(p.seqLen);
        ASSERT_NE(e, nullptr);
        EXPECT_DOUBLE_EQ(p.statValue, e->statValue);
    }
}

TEST(SeqPoint, PointsSortedBySl)
{
    SlStats s = epochStats(6, 90);
    SeqPointSet set = selectSeqPoints(s);
    for (size_t i = 1; i < set.points.size(); ++i)
        EXPECT_LT(set.points[i - 1].seqLen, set.points[i].seqLen);
}

TEST(SeqPoint, TighterThresholdNeverFewerPoints)
{
    SlStats s = epochStats(7, 250, 1e-5);
    SeqPointOptions loose, tight;
    loose.errorThreshold = 0.05;
    tight.errorThreshold = 0.0005;
    SeqPointSet ls = selectSeqPoints(s, loose);
    SeqPointSet ts = selectSeqPoints(s, tight);
    EXPECT_LE(ls.binsUsed, ts.binsUsed);
}

TEST(SeqPoint, MaxBinsFallbackWarnsAndReturnsBest)
{
    SlStats s = epochStats(8, 300, 1e-4);
    SeqPointOptions opts;
    opts.errorThreshold = 0.0; // unreachable in general
    opts.maxBins = 12;
    uint64_t warns_before = warnCount();
    SeqPointSet set = selectSeqPoints(s, opts);
    EXPECT_FALSE(set.converged);
    EXPECT_GT(warnCount(), warns_before);
    EXPECT_LE(set.points.size(), 12u);
}

TEST(SeqPoint, ProjectRatioIsWeightedAverage)
{
    SlStats s = epochStats(9, 60);
    SeqPointSet set = selectSeqPoints(s);
    double ratio = set.projectRatio([](int64_t) { return 3.5; });
    EXPECT_NEAR(ratio, 3.5, 1e-12);
}

TEST(SeqPoint, ProjectTotalWithExternalStat)
{
    SlStats s = epochStats(10, 60);
    SeqPointSet set = selectSeqPoints(s);
    // A 2x-slower device projects exactly 2x the stored projection.
    const SeqPointSet &cs = set;
    double doubled = cs.projectTotal([&s](int64_t sl) {
        return 2.0 * s.find(sl)->statValue;
    });
    EXPECT_NEAR(doubled, 2.0 * set.projectTotal(), 1e-9);
}

/** Parameterized properties over rep-pick policy and binning mode. */
class SeqPointPolicies
    : public testing::TestWithParam<std::tuple<RepPick, BinningMode>>
{
};

TEST_P(SeqPointPolicies, SelectionInvariantsHold)
{
    auto [pick, mode] = GetParam();
    SeqPointOptions opts;
    opts.repPick = pick;
    opts.binning = mode;
    opts.errorThreshold = 0.02;

    for (uint64_t seed : {41u, 42u, 43u, 44u}) {
        SlStats s = epochStats(seed, 180, 5e-6);
        SeqPointSet set = selectSeqPoints(s, opts);

        // Weights conserve the epoch.
        EXPECT_NEAR(set.totalWeight(),
                    static_cast<double>(s.totalIterations()), 1e-9);
        // Representatives are actual dataset SLs.
        for (const SeqPointRecord &p : set.points)
            EXPECT_NE(s.find(p.seqLen), nullptr);
        // The refinement delivered the requested accuracy (these
        // synthetic epochs are well-behaved enough to converge).
        EXPECT_TRUE(set.converged);
        EXPECT_LE(set.selfError, 0.02);
        // Far fewer points than unique SLs.
        EXPECT_LT(set.points.size(), s.uniqueCount() / 2);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, SeqPointPolicies,
    testing::Combine(
        testing::Values(RepPick::ClosestToAvgStat,
                        RepPick::ClosestToWeightedAvgStat,
                        RepPick::ClosestToAvgSl, RepPick::MostFrequent),
        testing::Values(BinningMode::EqualWidth,
                        BinningMode::EqualFrequency)));

/** Parameterized: k-sweep of the single-pass selection. */
class SelectWithBinsSweep : public testing::TestWithParam<unsigned>
{
};

TEST_P(SelectWithBinsSweep, OnePointPerNonEmptyBin)
{
    unsigned k = GetParam();
    SlStats s = epochStats(77, 140);
    SeqPointSet set = selectWithBins(s, k);
    EXPECT_EQ(set.binsUsed, k);
    EXPECT_LE(set.points.size(), static_cast<size_t>(k));
    EXPECT_GE(set.points.size(), 1u);
    EXPECT_NEAR(set.totalWeight(),
                static_cast<double>(s.totalIterations()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(KSweep, SelectWithBinsSweep,
                         testing::Values(1u, 2u, 5u, 10u, 25u, 70u,
                                         140u));

TEST(SeqPoint, ExactWhenBinsEqualUniqueCount)
{
    // Contiguous SLs: with k == uniqueCount() every equal-width
    // bucket holds exactly one unique SL, so the projection
    // reproduces the epoch total exactly. (k beyond the unique count
    // is a contract violation since the binEntries fatal_if -- see
    // BinningDeath.RejectsMoreBinsThanUniqueSls.)
    Rng rng(50);
    std::vector<SlEntry> entries;
    for (int64_t sl = 20; sl < 60; ++sl) {
        entries.push_back(SlEntry{
            sl, static_cast<uint64_t>(rng.uniformInt(1, 12)),
            0.05 + 0.004 * static_cast<double>(sl)});
    }
    SlStats s = SlStats::fromEntries(std::move(entries));
    SeqPointSet fine = selectWithBins(
        s, static_cast<unsigned>(s.uniqueCount()));
    EXPECT_EQ(fine.points.size(), s.uniqueCount());
    EXPECT_NEAR(fine.projectTotal(), s.actualTotal(),
                1e-9 * s.actualTotal());
    EXPECT_LE(selectWithBins(s, 10).selfError, 0.05);
}

TEST(SeqPointDeath, RejectsBadOptions)
{
    SlStats s = epochStats(1, 30);
    SeqPointOptions opts;
    opts.initialBins = 0;
    EXPECT_DEATH(selectSeqPoints(s, opts), "zero initial bins");
    SeqPointOptions neg;
    neg.errorThreshold = -1.0;
    EXPECT_DEATH(selectSeqPoints(s, neg), "negative");
}

} // anonymous namespace
} // namespace core
} // namespace seqpoint
