/**
 * @file
 * Tests for the baseline selectors (Frequent, Median, Worst, Prior).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "core/baselines.hh"

namespace seqpoint {
namespace core {
namespace {

SlStats
skewedStats()
{
    // Heavy mass at SL 10, lighter tail; runtimes linear in SL.
    return SlStats::fromEntries({
        {10, 50, 1.0},
        {20, 20, 2.0},
        {40, 15, 4.0},
        {80, 10, 8.0},
        {160, 5, 16.0},
    });
}

std::vector<IterationSample>
epochInOrder(const SlStats &stats, uint64_t seed)
{
    std::vector<IterationSample> epoch;
    for (const SlEntry &e : stats.entries())
        for (uint64_t i = 0; i < e.freq; ++i)
            epoch.push_back(IterationSample{e.seqLen, e.statValue});
    Rng rng(seed);
    rng.shuffle(epoch);
    return epoch;
}

TEST(SelectorName, AllNamed)
{
    EXPECT_STREQ(selectorName(SelectorKind::Worst), "worst");
    EXPECT_STREQ(selectorName(SelectorKind::Frequent), "frequent");
    EXPECT_STREQ(selectorName(SelectorKind::Median), "median");
    EXPECT_STREQ(selectorName(SelectorKind::Prior), "prior");
    EXPECT_STREQ(selectorName(SelectorKind::SeqPoint), "seqpoint");
}

TEST(Frequent, PicksModalSl)
{
    SeqPointSet set = selectFrequent(skewedStats());
    ASSERT_EQ(set.points.size(), 1u);
    EXPECT_EQ(set.points[0].seqLen, 10);
    EXPECT_DOUBLE_EQ(set.points[0].weight, 100.0);
}

TEST(Median, PicksIterationMedian)
{
    SeqPointSet set = selectMedian(skewedStats());
    ASSERT_EQ(set.points.size(), 1u);
    // 100 iterations; the 50th falls in the SL-10 block.
    EXPECT_EQ(set.points[0].seqLen, 10);
}

TEST(Worst, MaximisesSelfError)
{
    SlStats s = skewedStats();
    SeqPointSet worst = selectWorst(s);
    ASSERT_EQ(worst.points.size(), 1u);
    // Exhaustive check: no single SL projects with a larger error.
    double total_iters = static_cast<double>(s.totalIterations());
    for (const SlEntry &e : s.entries()) {
        double err = std::fabs(e.statValue * total_iters -
                               s.actualTotal()) / s.actualTotal();
        EXPECT_LE(err, worst.selfError + 1e-12);
    }
    // For this skew the worst proxy is the largest SL.
    EXPECT_EQ(worst.points[0].seqLen, 160);
}

TEST(Worst, SelfErrorAtLeastAnySingle)
{
    SlStats s = skewedStats();
    EXPECT_GE(selectWorst(s).selfError, selectFrequent(s).selfError);
    EXPECT_GE(selectWorst(s).selfError, selectMedian(s).selfError);
}

TEST(Prior, SamplesContiguousWindow)
{
    SlStats s = skewedStats();
    auto epoch = epochInOrder(s, 3);
    SeqPointSet set = selectPrior(epoch, 10, 50);

    // Weight mass equals the epoch.
    EXPECT_NEAR(set.totalWeight(), 100.0, 1e-9);
    // Projection equals mean(sampled) * N.
    double sampled = 0.0;
    for (unsigned i = 10; i < 60; ++i)
        sampled += epoch[i].statValue;
    EXPECT_NEAR(set.projectTotal(), sampled / 50.0 * 100.0, 1e-9);
}

TEST(Prior, MergesDuplicateSls)
{
    std::vector<IterationSample> epoch(80, IterationSample{7, 1.5});
    SeqPointSet set = selectPrior(epoch, 10, 50);
    ASSERT_EQ(set.points.size(), 1u);
    EXPECT_EQ(set.points[0].seqLen, 7);
    EXPECT_NEAR(set.points[0].weight, 80.0, 1e-9);
    EXPECT_NEAR(set.selfError, 0.0, 1e-12);
}

TEST(Prior, SortedEpochWindowsDifferByWarmup)
{
    // On a sorted epoch, an early window sees short iterations and an
    // mid-epoch window longer ones -- the DS2 artifact.
    SlStats s = skewedStats();
    std::vector<IterationSample> epoch;
    for (const SlEntry &e : s.entries())
        for (uint64_t i = 0; i < e.freq; ++i)
            epoch.push_back(IterationSample{e.seqLen, e.statValue});

    SeqPointSet early = selectPrior(epoch, 0, 50);
    SeqPointSet mid = selectPrior(epoch, 40, 50);
    EXPECT_LT(early.projectTotal(), mid.projectTotal());
}

TEST(PriorDeath, RejectsShortEpoch)
{
    std::vector<IterationSample> epoch(30, IterationSample{5, 1.0});
    EXPECT_DEATH(selectPrior(epoch, 10, 50), "too short");
}

} // anonymous namespace
} // namespace core
} // namespace seqpoint
