/**
 * @file
 * Tests for weighted k-means and the k-means SeqPoint selector.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/kmeans.hh"

namespace seqpoint {
namespace core {
namespace {

TEST(Kmeans, SeparatesObviousClusters)
{
    std::vector<std::vector<double>> pts{
        {0.0}, {0.1}, {0.2}, {10.0}, {10.1}, {10.2}};
    std::vector<double> w(6, 1.0);
    KmeansOptions opts;
    opts.k = 2;
    KmeansResult res = kmeans(pts, w, opts);

    EXPECT_EQ(res.assignment[0], res.assignment[1]);
    EXPECT_EQ(res.assignment[1], res.assignment[2]);
    EXPECT_EQ(res.assignment[3], res.assignment[4]);
    EXPECT_EQ(res.assignment[4], res.assignment[5]);
    EXPECT_NE(res.assignment[0], res.assignment[3]);
    EXPECT_LT(res.inertia, 0.2);
}

TEST(Kmeans, DeterministicPerSeed)
{
    Rng rng(5);
    std::vector<std::vector<double>> pts;
    std::vector<double> w;
    for (int i = 0; i < 100; ++i) {
        pts.push_back({rng.uniformDouble(), rng.uniformDouble()});
        w.push_back(1.0 + rng.uniformDouble());
    }
    KmeansOptions opts;
    opts.k = 5;
    KmeansResult a = kmeans(pts, w, opts);
    KmeansResult b = kmeans(pts, w, opts);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(Kmeans, WeightsPullCentroids)
{
    // One heavy point and one light point, one cluster: the centroid
    // sits near the heavy point.
    std::vector<std::vector<double>> pts{{0.0}, {10.0}};
    std::vector<double> w{100.0, 1.0};
    KmeansOptions opts;
    opts.k = 1;
    KmeansResult res = kmeans(pts, w, opts);
    EXPECT_NEAR(res.centroids[0][0], 10.0 / 101.0, 1e-9);
}

TEST(Kmeans, KEqualsNPerfectFit)
{
    std::vector<std::vector<double>> pts{{1.0}, {5.0}, {9.0}};
    std::vector<double> w{1.0, 1.0, 1.0};
    KmeansOptions opts;
    opts.k = 3;
    KmeansResult res = kmeans(pts, w, opts);
    EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(Kmeans, MoreClustersNeverWorse)
{
    Rng rng(7);
    std::vector<std::vector<double>> pts;
    std::vector<double> w;
    for (int i = 0; i < 60; ++i) {
        pts.push_back({rng.uniformDouble() * 10.0});
        w.push_back(1.0);
    }
    double prev = 1e300;
    for (unsigned k : {1u, 2u, 4u, 8u, 16u}) {
        KmeansOptions opts;
        opts.k = k;
        double inertia = kmeans(pts, w, opts).inertia;
        EXPECT_LE(inertia, prev * 1.05); // k-means++ is near-monotone
        prev = inertia;
    }
}

TEST(KmeansSelector, BehavesLikeSeqPointSet)
{
    Rng rng(11);
    std::vector<SlEntry> entries;
    int64_t sl = 5;
    for (int i = 0; i < 80; ++i) {
        sl += rng.uniformInt(1, 4);
        entries.push_back(SlEntry{
            sl, static_cast<uint64_t>(rng.uniformInt(1, 10)),
            0.1 + 0.01 * static_cast<double>(sl)});
    }
    SlStats stats = SlStats::fromEntries(std::move(entries));

    SeqPointSet set = selectByKmeans(stats, 8, 3);
    EXPECT_LE(set.points.size(), 8u);
    EXPECT_NEAR(set.totalWeight(),
                static_cast<double>(stats.totalIterations()), 1e-9);
    for (const SeqPointRecord &p : set.points)
        EXPECT_NE(stats.find(p.seqLen), nullptr);
    // Runtime is such a strong feature that few clusters already give
    // a decent projection (the paper's section VII-C point).
    EXPECT_LT(set.selfError, 0.2);
}

TEST(KmeansSelector, KClampedToUniqueCount)
{
    SlStats stats = SlStats::fromEntries({{1, 1, 1.0}, {2, 1, 2.0}});
    SeqPointSet set = selectByKmeans(stats, 10, 1);
    EXPECT_LE(set.points.size(), 2u);
}

TEST(KmeansDeath, RejectsBadInputs)
{
    std::vector<std::vector<double>> pts{{1.0}};
    std::vector<double> w{1.0};
    KmeansOptions opts;
    opts.k = 2;
    EXPECT_DEATH(kmeans(pts, w, opts), "out of range");
    EXPECT_DEATH(kmeans({}, {}, KmeansOptions{}), "no points");
}

} // anonymous namespace
} // namespace core
} // namespace seqpoint
