/**
 * @file
 * Regenerates Table II: the five hardware configurations used in the
 * evaluation, plus derived peak numbers from the simulator.
 */

#include <cstdio>

#include "common/strutil.hh"
#include "common/table.hh"
#include "sim/gpu_config.hh"
#include "support.hh"

using namespace seqpoint;

int
main()
{
    Table table({"Config", "GCLK", "#CU", "L1 $", "L2 $",
                 "peak TFLOP/s", "L2 GB/s"});

    for (const sim::GpuConfig &cfg : sim::GpuConfig::table2()) {
        table.addRow({cfg.name,
                      csprintf("%.0f MHz", cfg.gclkHz / 1e6),
                      csprintf("%u", cfg.numCus),
                      csprintf("%llu KB",
                          (unsigned long long)(cfg.l1SizeBytes / 1024)),
                      csprintf("%llu MB",
                          (unsigned long long)(cfg.l2SizeBytes /
                                               (1024 * 1024))),
                      csprintf("%.1f", cfg.peakFlops() / 1e12),
                      csprintf("%.0f", cfg.l2Bandwidth() / 1e9)});
    }

    std::printf("%s\n", table.render(
        "Table II: configurations used to evaluate SeqPoint").c_str());

    bench::paperNote("#1: 1.6GHz/64CU/16KB/4MB; #2: 852MHz; #3: 16CU; "
                     "#4: L1 off; #5: L2 off.");
    return 0;
}
