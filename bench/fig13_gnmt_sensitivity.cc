/**
 * @file
 * Regenerates Fig 13: GNMT's per-SL throughput-uplift sensitivity to
 * GCLK (#2->#1), CU count (#3->#1), L1 (#4->#1) and L2 (#5->#1),
 * with one scheduler cell per configuration (see fig11 for flags).
 */

#include "support.hh"

using namespace seqpoint;

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    bench::printSensitivityFigure(
        [] { return harness::makeGnmtWorkload(); },
        "Fig 13: per-SL sensitivity of GNMT iterations (uplift of "
        "config #1 over each variant)", 10, 210, 10, opts);
    bench::paperNote("uplift varies by up to ~30 points across SLs "
                     "for GNMT; different SLs are differently "
                     "sensitive to each feature.");
    return 0;
}
