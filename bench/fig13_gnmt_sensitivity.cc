/**
 * @file
 * Regenerates Fig 13: GNMT's per-SL throughput-uplift sensitivity to
 * GCLK (#2->#1), CU count (#3->#1), L1 (#4->#1) and L2 (#5->#1).
 */

#include "support.hh"

using namespace seqpoint;

int
main()
{
    harness::Experiment exp(harness::makeGnmtWorkload());
    bench::printSensitivityFigure(exp,
        "Fig 13: per-SL sensitivity of GNMT iterations (uplift of "
        "config #1 over each variant)", 10, 210, 10);
    bench::paperNote("uplift varies by up to ~30 points across SLs "
                     "for GNMT; different SLs are differently "
                     "sensitive to each feature.");
    return 0;
}
