/**
 * @file
 * google-benchmark microbenchmarks for the simulation substrate:
 * kernel timing, iteration lowering + execution, the set-associative
 * cache simulator, and the measured autotune pass. These bound how
 * long the figure benches take per simulated epoch.
 */

#include <benchmark/benchmark.h>

#include "common/strutil.hh"
#include "common/units.hh"
#include "models/ds2.hh"
#include "models/gnmt.hh"
#include "nn/autotune.hh"
#include "nn/kernel_gen.hh"
#include "sim/access_gen.hh"
#include "sim/cache_model.hh"
#include "sim/cache_sim.hh"
#include "sim/gpu.hh"

using namespace seqpoint;

namespace {

void
BM_TimeSingleKernel(benchmark::State &state)
{
    sim::Gpu gpu(sim::GpuConfig::config1(),
                 /*enable_timing_cache=*/false);
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    sim::KernelDesc k = nn::makeGemm("bm", 2048, 2048, 1024, tuner);
    for (auto _ : state) {
        auto rec = gpu.execute(k);
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_TimeSingleKernel);

void
BM_TimeSingleKernelCached(benchmark::State &state)
{
    // Same kernel through the kernel-timing cache: after the first
    // launch every execute() is a signature lookup + replay.
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    sim::KernelDesc k = nn::makeGemm("bm", 2048, 2048, 1024, tuner);
    for (auto _ : state) {
        auto rec = gpu.execute(k);
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_TimeSingleKernelCached);

void
BM_LowerGnmtIteration(benchmark::State &state)
{
    nn::Model model = models::buildGnmt();
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    int64_t sl = state.range(0);
    for (auto _ : state) {
        auto ks = model.lowerIteration(64, sl, tuner);
        benchmark::DoNotOptimize(ks);
    }
    state.SetLabel("kernels per iteration vary with SL");
}
BENCHMARK(BM_LowerGnmtIteration)->Arg(20)->Arg(100)->Arg(200);

void
BM_SimulateDs2Iteration(benchmark::State &state)
{
    sim::Gpu gpu(sim::GpuConfig::config1(),
                 /*enable_timing_cache=*/false);
    nn::Model model = models::buildDs2();
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    int64_t sl = state.range(0);
    auto ks = model.lowerIteration(64, sl, tuner);
    for (auto _ : state) {
        auto res = gpu.executeAll(ks);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_SimulateDs2Iteration)->Arg(100)->Arg(400);

void
BM_SimulateDs2IterationCached(benchmark::State &state)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    nn::Model model = models::buildDs2();
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    int64_t sl = state.range(0);
    auto ks = model.lowerIteration(64, sl, tuner);
    for (auto _ : state) {
        auto res = gpu.executeAll(ks);
        benchmark::DoNotOptimize(res);
    }
    state.SetLabel(csprintf("hit rate %.1f%%",
        100.0 * gpu.timingCacheStats().hitRate()));
}
BENCHMARK(BM_SimulateDs2IterationCached)->Arg(100)->Arg(400);

void
BM_CacheSimAccesses(benchmark::State &state)
{
    sim::CacheSim cache(16 * 1024, 4, 64);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr += 64;
    }
}
BENCHMARK(BM_CacheSimAccesses);

void
BM_GemmHitRateScalar(benchmark::State &state)
{
    // The blocked-GEMM hit-rate measurement through the scalar
    // oracle, access by access (the pre-segment measureHitRate).
    sim::CacheSim cache(kib(256), 8, 64);
    for (auto _ : state) {
        cache.reset();
        sim::genBlockedGemm(256, 256, 256, 64,
                            [&](uint64_t a, bool w) {
                                cache.access(a, w);
                            });
        benchmark::DoNotOptimize(cache.stats());
    }
    state.SetLabel(csprintf("hit rate %.1f%%",
                            100.0 * cache.stats().hitRate()));
}
BENCHMARK(BM_GemmHitRateScalar);

void
BM_GemmHitRateBatched(benchmark::State &state)
{
    // The same stream materialized once and replayed through the
    // batched accessBlock scan.
    sim::AccessTrace trace;
    sim::genBlockedGemm(256, 256, 256, 64, trace.sink());
    sim::CacheSim cache(kib(256), 8, 64);
    for (auto _ : state) {
        cache.reset();
        cache.accessBlock(trace, 0, trace.size());
        benchmark::DoNotOptimize(cache.stats());
    }
}
BENCHMARK(BM_GemmHitRateBatched);

void
BM_GemmHitRateSegments(benchmark::State &state)
{
    // Segment descriptors through the piecewise-analytic engine
    // (generation included; it is O(segments)).
    sim::CacheSim cache(kib(256), 8, 64);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::replaySegments(
            cache, sim::genBlockedGemmSegments(256, 256, 256, 64)));
    }
}
BENCHMARK(BM_GemmHitRateSegments);

void
BM_StreamHitRateSegments(benchmark::State &state)
{
    // Pure streaming sweep: one descriptor, closed form.
    sim::CacheSim cache(kib(256), 8, 64);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::replaySegments(
            cache, sim::genStreamingSegments(mib(32), 16)));
    }
}
BENCHMARK(BM_StreamHitRateSegments);

void
BM_WarmGemmRewalk(benchmark::State &state)
{
    // Steady-state re-walk of a fully resident blocked GEMM on a
    // persistent cache: the warm closed-form tier (arg 1) vs the PR 5
    // engine with the warm tier disabled (arg 0).
    sim::SegmentList segs = sim::genBlockedGemmSegments(128, 128, 64,
                                                        32);
    sim::CacheSim cache(kib(256), 8, 64);
    sim::ReplayOptions opts;
    opts.warmTier = state.range(0) != 0;
    sim::replaySegmentsResume(cache, segs, opts); // install
    for (auto _ : state) {
        sim::replaySegmentsResume(cache, segs, opts);
        benchmark::DoNotOptimize(cache.stats());
    }
    state.SetLabel(csprintf(
        "tiers c/w/l %llu/%llu/%llu",
        static_cast<unsigned long long>(
            cache.stats().tiers.coldSegments),
        static_cast<unsigned long long>(
            cache.stats().tiers.warmSegments),
        static_cast<unsigned long long>(
            cache.stats().tiers.lineRunSegments)));
}
BENCHMARK(BM_WarmGemmRewalk)->Arg(0)->Arg(1);

void
BM_SegmentProbeKernel(benchmark::State &state)
{
    // The per-line probe loop on a probe-heavy hot/cold mix: scalar
    // scan (arg 0) vs the vectorized kernel (arg 1, skipped when the
    // host lacks it).
    bool simd = state.range(0) != 0;
    if (simd && !sim::CacheSim::simdProbeSupported()) {
        state.SkipWithError("no vectorized probe on this host");
        return;
    }
    Rng rng(13, 0x5eed);
    sim::SegmentList segs =
        sim::genHotColdSegments(20000, kib(64), mib(4), 0.7, rng);
    sim::CacheSim cache(kib(256), 8, 64);
    cache.setProbeKernel(simd ? sim::CacheSim::ProbeKernel::Simd
                              : sim::CacheSim::ProbeKernel::Scalar);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::replaySegments(cache, segs));
    }
}
BENCHMARK(BM_SegmentProbeKernel)->Arg(0)->Arg(1);

void
BM_MeasuredAutotunePerShape(benchmark::State &state)
{
    sim::Gpu gpu(sim::GpuConfig::config1());
    int64_t n = 64;
    for (auto _ : state) {
        nn::Autotuner tuner(nn::Autotuner::Mode::Measured, &gpu);
        benchmark::DoNotOptimize(tuner.select(4096, n, 1024));
        ++n; // new shape each time: no cache hit
    }
}
BENCHMARK(BM_MeasuredAutotunePerShape);

} // anonymous namespace

BENCHMARK_MAIN();
