/**
 * @file
 * Regenerates Table I: the classifier GEMM dimensions (M, K, N) of
 * GNMT and DS2 at two sequence lengths, showing that the same logical
 * operation runs with different shapes across iterations.
 */

#include <cstdio>

#include "common/table.hh"
#include "models/ds2.hh"
#include "models/gnmt.hh"
#include "nn/autotune.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

/** First GEMM whose name starts with the prefix. */
const sim::KernelDesc *
findGemm(const std::vector<sim::KernelDesc> &ks, const std::string &pfx)
{
    for (const auto &k : ks)
        if (k.klass == sim::KernelClass::Gemm &&
            k.name.rfind(pfx, 0) == 0)
            return &k;
    return nullptr;
}

void
addRows(Table &table, const char *net, nn::Model &model, int64_t sl1,
        int64_t sl2)
{
    nn::Autotuner tuner(nn::Autotuner::Mode::Heuristic);
    auto row = [&](const char *op, const char *prefix) {
        auto ks1 = model.lowerIteration(64, sl1, tuner);
        auto ks2 = model.lowerIteration(64, sl2, tuner);
        const sim::KernelDesc *a = findGemm(ks1, prefix);
        const sim::KernelDesc *b = findGemm(ks2, prefix);
        table.addRow({net, op,
                      csprintf("%lld", (long long)a->gemmM),
                      csprintf("%lld", (long long)a->gemmK),
                      csprintf("%lld", (long long)a->gemmN),
                      csprintf("%lld", (long long)b->gemmN)});
    };
    row("GEMM-a (classifier fwd)", "classifier_fwd");
    row("GEMM-b (classifier bwd-data)", "classifier_bwd_data");
}

} // anonymous namespace

int
main()
{
    Table table({"network", "operation", "M", "K", "N (sl-1)",
                 "N (sl-2)"});

    nn::Model gnmt = models::buildGnmt();
    addRows(table, "GNMT", gnmt, 99, 9);

    nn::Model ds2 = models::buildDs2();
    addRows(table, "DS2", ds2, 402, 59);

    std::printf("%s\n", table.render(
        "Table I: dimensions of the same GEMM operation across two "
        "iterations").c_str());

    bench::paperNote("GNMT GEMM-a: M=36549 K=1024 N=6016/576; "
                     "GEMM-b: M=1024 K=36549 (same N).");
    bench::paperNote("DS2 GEMM-a: M=29 K=1600 N=25728/3776; "
                     "GEMM-b: M=1600 K=29 (same N).");
    return 0;
}
