/**
 * @file
 * Regenerates Fig 3: CNN training iterations are homogeneous while
 * SQNN (GNMT) iterations vary widely, shown as normalized
 * per-iteration runtimes over a slice of an epoch.
 */

#include <cstdio>

#include "common/stats_math.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

/** Collect the first `n` normalized iteration times of an epoch. */
std::vector<double>
normalizedIterations(harness::Experiment &exp, size_t n)
{
    const auto &log = exp.epochLog(sim::GpuConfig::config1());
    std::vector<double> times;
    for (size_t i = 0; i < std::min(n, log.iterations.size()); ++i)
        times.push_back(log.iterations[i].timeSec);
    double m = mean(times);
    for (double &t : times)
        t /= m;
    return times;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(opts);

    harness::Experiment cnn(harness::makeCnnWorkload());
    harness::Experiment gnmt(harness::makeGnmtWorkload());

    // Adopt reference-config cold starts the snapshot store already
    // holds (lookup-only; a cold store changes nothing).
    auto cfg1 = sim::GpuConfig::config1();
    bench::adoptCachedSnapshot(registry.get(), cnn, cfg1);
    bench::adoptCachedSnapshot(registry.get(), gnmt, cfg1);

    auto cnn_t = normalizedIterations(cnn, 24);
    auto gnmt_t = normalizedIterations(gnmt, 24);

    Table table({"iteration", "CNN (norm. time)", "SQNN/GNMT "
                 "(norm. time)"});
    for (size_t i = 0; i < cnn_t.size(); ++i) {
        table.addRow({csprintf("%zu", i), csprintf("%.3f", cnn_t[i]),
                      csprintf("%.3f", gnmt_t[i])});
    }
    std::printf("%s\n", table.render(
        "Fig 3: per-iteration runtime, CNN vs SQNN (normalized to the "
        "per-network mean)").c_str());

    std::printf("CNN  spread: min %.3f max %.3f (stdev %.4f)\n",
                minOf(cnn_t), maxOf(cnn_t), stdev(cnn_t));
    std::printf("GNMT spread: min %.3f max %.3f (stdev %.4f)\n",
                minOf(gnmt_t), maxOf(gnmt_t), stdev(gnmt_t));

    bench::paperNote("CNN iterations are homogeneous; SQNN iterations "
                     "are heterogeneous (unroll follows input SL).");
    return 0;
}
