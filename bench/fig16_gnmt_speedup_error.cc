/**
 * @file
 * Regenerates Fig 16: error (percentage points) in projecting GNMT's
 * throughput uplift between config pairs, per selector, via the
 * scheduler-backed figure pipeline (see fig11).
 */

#include "support.hh"

using namespace seqpoint;

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    harness::FigureSweep sweep = bench::runFigureSweep(
        [] { return harness::makeGnmtWorkload(); }, opts);
    double geo = bench::printSpeedupErrorFigure(sweep,
        "Fig 16: error in performance speedup projections for GNMT");
    bench::paperNote(csprintf(
        "paper geomean for SeqPoint: 1.50pp; measured here: %.2fpp. "
        "Paper: worst up to 22pp; median/frequent up to ~9pp.", geo));
    return 0;
}
