/**
 * @file
 * Regenerates Fig 16: error (percentage points) in projecting GNMT's
 * throughput uplift between config pairs, per selector.
 */

#include "support.hh"

using namespace seqpoint;

int
main()
{
    harness::Experiment exp(harness::makeGnmtWorkload());
    double geo = bench::printSpeedupErrorFigure(exp,
        "Fig 16: error in performance speedup projections for GNMT");
    bench::paperNote(csprintf(
        "paper geomean for SeqPoint: 1.50pp; measured here: %.2fpp. "
        "Paper: worst up to 22pp; median/frequent up to ~9pp.", geo));
    return 0;
}
