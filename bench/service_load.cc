/**
 * @file
 * Query-service load bench.
 *
 * Drives the deadline-aware SeqPoint query service the way a
 * multi-tenant sweep would: 8 client threads issuing a mixed stream
 * of (workload, configuration) queries against one shared service.
 *
 * Part 1 measures the latency split the service exists to create:
 * a cold round (every pair queried for the first time, duplicates
 * submitted concurrently to exercise the single-flight dedup) versus
 * a warm round (a 24-query mix answered entirely from resident
 * state). Every answer must be bit-identical to a direct serial
 * Experiment pass, the duplicate cold queries must ride exactly one
 * underlying build per pair, and the warm p50 must beat the cold p50
 * by >= 2x.
 *
 * Part 2 exercises admission control: a burst into a 1-worker,
 * 1-slot service must shed the overflow immediately with
 * ErrorCode::Overloaded (classified, never queued without bound),
 * and a request with an already-expired deadline must come back as a
 * classified Timeout instead of wedging a worker.
 *
 * Part 3 replays the PR 6 fault storm under concurrent load: store
 * files corrupted on disk, seeded read/load faults, a dropped
 * persist. The service must keep answering -- every request either
 * bit-identical to the clean serial pass or shed with a classified
 * Status -- with no unclassified failure, no stuck worker, and a
 * clean drain.
 *
 * Results are merged into the shared JSON report (default
 * BENCH_epoch.json, argv[1] overrides) as a "service" block; the
 * process fails if any gate is missed.
 */

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hh"
#include "common/logging.hh"
#include "common/stats_math.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/workloads.hh"
#include "service/query_service.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

double
now()
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now().time_since_epoch()).count();
}

/** One (workload name, factory, configuration) query target. */
struct Pair {
    std::string workload;
    harness::WorkloadFactory make;
    sim::GpuConfig config;
};

/** The clean serial answer for one pair (the identity reference). */
struct RefAnswer {
    core::SeqPointSet selection;
    double projectedSec = 0.0;
    double actualSec = 0.0;
};

bool
answersMatch(const service::QueryAnswer &got, const RefAnswer &want)
{
    return got.selection == want.selection &&
        got.projectedSec == want.projectedSec &&
        got.actualSec == want.actualSec;
}

/**
 * Run `mix` through the service from `clients` concurrent client
 * threads (shared work index; each client loops synchronous
 * query() calls) and return the per-query results in mix order.
 */
std::vector<service::QueryResult>
runClients(service::QueryService &svc,
           const std::vector<service::QueryRequest> &mix,
           unsigned clients, double *wall_sec)
{
    std::vector<service::QueryResult> results(mix.size());
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    double t0 = now();
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= mix.size())
                    return;
                results[i] = svc.query(mix[i]);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    *wall_sec = now() - t0;
    return results;
}

/** Flip one payload byte of a snapshot store file in place. */
bool
corruptStoreFile(const std::string &path)
{
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in.good())
            return false;
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    if (bytes.size() < 32)
        return false;
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
    return out.good();
}

std::filesystem::path
tempStoreDir(const char *tag)
{
    std::error_code ec;
    std::filesystem::path dir =
        std::filesystem::temp_directory_path(ec) /
        csprintf("seqpoint_service_%s.%ld", tag,
                 static_cast<long>(::getpid()));
    if (ec)
        dir = csprintf("service_%s_store.%ld", tag,
                       static_cast<long>(::getpid()));
    std::filesystem::remove_all(dir, ec);
    return dir;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *json_path = argc > 1 ? argv[1] : "BENCH_epoch.json";
    const unsigned clients = 8;
    const unsigned workers = 8;

    // The query universe: 3 workloads x 2 configurations.
    std::vector<Pair> pairs = {
        {"GNMT", [] { return harness::makeGnmtWorkload(); },
         sim::GpuConfig::config1()},
        {"GNMT", [] { return harness::makeGnmtWorkload(); },
         sim::GpuConfig::config2()},
        {"DS2", [] { return harness::makeDs2Workload(); },
         sim::GpuConfig::config1()},
        {"DS2", [] { return harness::makeDs2Workload(); },
         sim::GpuConfig::config2()},
        {"Transformer",
         [] { return harness::makeTransformerWorkload(); },
         sim::GpuConfig::config1()},
        {"Transformer",
         [] { return harness::makeTransformerWorkload(); },
         sim::GpuConfig::config2()},
    };

    // ------------------------------------------------------------------
    // Serial reference: the clean single-threaded answers every
    // service result must match bit-for-bit. One Experiment per
    // workload, queried in the same order the service answers.
    // ------------------------------------------------------------------
    std::vector<RefAnswer> ref(pairs.size());
    double t0 = now();
    for (std::size_t i = 0; i < pairs.size(); i += 2) {
        harness::Experiment exp(pairs[i].make());
        for (std::size_t j = i; j < i + 2; ++j) {
            ref[j].selection = exp.buildSelection(
                core::SelectorKind::SeqPoint, pairs[j].config);
            ref[j].projectedSec = exp.projectedTrainSec(
                ref[j].selection, pairs[j].config);
            ref[j].actualSec = exp.actualTrainSec(pairs[j].config);
        }
    }
    double ref_sec = now() - t0;

    // ------------------------------------------------------------------
    // Part 1: cold round (with in-flight duplicates) + warm round.
    // ------------------------------------------------------------------
    std::filesystem::path store_dir = tempStoreDir("load");
    service::ServiceConfig scfg;
    scfg.workers = workers;
    scfg.queueCapacity = 64;
    scfg.storeDir = store_dir.string();
    service::QueryService svc(scfg);
    for (std::size_t i = 0; i < pairs.size(); i += 2)
        svc.registerWorkload(pairs[i].workload, pairs[i].make);
    svc.start();

    // Cold mix: every pair three times, interleaved so the duplicates
    // are in flight together and must dedup onto one build each.
    const unsigned cold_dups = 3;
    std::vector<service::QueryRequest> cold_mix;
    for (unsigned d = 0; d < cold_dups; ++d) {
        for (const Pair &p : pairs) {
            service::QueryRequest req;
            req.workload = p.workload;
            req.config = p.config;
            cold_mix.push_back(req);
        }
    }
    double cold_wall = 0.0;
    auto cold_results = runClients(svc, cold_mix, clients, &cold_wall);

    uint64_t builds_after_cold = svc.registry().stats().builds;

    // Warm mix: >= 24 queries over the same pairs, all answered from
    // resident state.
    const unsigned warm_rounds = 4;
    std::vector<service::QueryRequest> warm_mix;
    for (unsigned d = 0; d < warm_rounds; ++d) {
        for (const Pair &p : pairs) {
            service::QueryRequest req;
            req.workload = p.workload;
            req.config = p.config;
            warm_mix.push_back(req);
        }
    }
    double warm_wall = 0.0;
    auto warm_results = runClients(svc, warm_mix, clients, &warm_wall);

    service::ServiceStats load_stats = svc.stats();
    svc.drain();

    bool load_all_ok = true, load_identical = true;
    std::vector<double> cold_lat, warm_lat;
    auto check = [&](const std::vector<service::QueryResult> &results,
                     const std::vector<service::QueryRequest> &mix) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            const service::QueryResult &r = results[i];
            load_all_ok = load_all_ok && r.status.ok();
            const RefAnswer &want = ref[i % pairs.size()];
            (void)mix;
            if (r.status.ok() && !answersMatch(r.answer, want))
                load_identical = false;
        }
    };
    check(cold_results, cold_mix);
    check(warm_results, warm_mix);
    for (const service::QueryResult &r : cold_results) {
        if (r.coldBuild)
            cold_lat.push_back(r.latencySec);
    }
    for (const service::QueryResult &r : warm_results)
        warm_lat.push_back(r.latencySec);

    bool dedup_single_build = builds_after_cold == pairs.size() &&
        load_stats.coldBuilds == pairs.size() &&
        cold_lat.size() == pairs.size();

    double cold_p50 = percentile(cold_lat, 50.0);
    double cold_p99 = percentile(cold_lat, 99.0);
    double warm_p50 = percentile(warm_lat, 50.0);
    double warm_p99 = percentile(warm_lat, 99.0);
    double warm_speedup_p50 = cold_p50 / std::max(warm_p50, 1e-12);
    const double warm_floor = 2.0;
    double total_queries =
        static_cast<double>(cold_mix.size() + warm_mix.size());
    double qps = total_queries / std::max(cold_wall + warm_wall, 1e-12);
    double warm_qps = static_cast<double>(warm_mix.size()) /
        std::max(warm_wall, 1e-12);

    Table lat({"round", "queries", "wall", "p50", "p99"});
    lat.addRow({csprintf("cold (%zu builds)", cold_lat.size()),
                csprintf("%zu", cold_mix.size()),
                csprintf("%.3fs", cold_wall),
                csprintf("%.1fms", 1e3 * cold_p50),
                csprintf("%.1fms", 1e3 * cold_p99)});
    lat.addRow({"warm", csprintf("%zu", warm_mix.size()),
                csprintf("%.3fs", warm_wall),
                csprintf("%.3fms", 1e3 * warm_p50),
                csprintf("%.3fms", 1e3 * warm_p99)});
    std::printf("%s\n", lat.render(csprintf(
        "Query service: %u clients x %u workers over %zu pairs "
        "(%.1f qps overall, %.0f qps warm; serial reference %.3fs)",
        clients, workers, pairs.size(), qps, warm_qps,
        ref_sec)).c_str());
    std::printf("all queries answered OK: %s\n",
                load_all_ok ? "yes" : "NO -- BUG");
    std::printf("answers bit-identical to serial Experiment pass: %s\n",
                load_identical ? "yes" : "NO -- BUG");
    std::printf("in-flight duplicates deduped to one build per pair: "
                "%s\n",
                dedup_single_build ? "yes" : "NO -- BUG");
    std::printf("warm p50 vs cold p50: %.0fx (floor %.1fx)\n\n",
                warm_speedup_p50, warm_floor);

    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);

    // ------------------------------------------------------------------
    // Part 2: admission control -- overload shed + expired deadline.
    // ------------------------------------------------------------------
    std::filesystem::path shed_dir = tempStoreDir("shed");
    service::ServiceConfig shed_cfg;
    shed_cfg.workers = 1;
    shed_cfg.queueCapacity = 1;
    shed_cfg.storeDir = shed_dir.string();
    service::QueryService shed_svc(shed_cfg);
    shed_svc.registerWorkload("GNMT",
                              [] { return harness::makeGnmtWorkload(); });
    shed_svc.start();

    // A burst into the 1-slot queue while the single worker is inside
    // the first request's cold build: the overflow must shed
    // immediately, classified Overloaded.
    const unsigned burst = 32;
    std::vector<service::PendingPtr> handles;
    for (unsigned i = 0; i < burst; ++i) {
        service::QueryRequest req;
        req.workload = "GNMT";
        req.config = sim::GpuConfig::config1();
        handles.push_back(shed_svc.submit(req));
    }
    unsigned shed_count = 0, shed_classified = 0, burst_ok = 0;
    for (const service::PendingPtr &h : handles) {
        service::QueryResult r = h->wait();
        if (r.status.ok()) {
            ++burst_ok;
        } else if (r.status.code() == ErrorCode::Overloaded) {
            ++shed_count;
            shed_classified += !r.status.message().empty();
        }
    }
    bool shed_all_classified = shed_count == shed_classified &&
        burst_ok + shed_count == burst && shed_count > 0;

    // An already-expired deadline: shed at dequeue as a classified
    // Timeout, before any expensive work.
    service::QueryRequest late;
    late.workload = "GNMT";
    late.config = sim::GpuConfig::config1();
    late.deadlineSec = 1e-9;
    service::QueryResult late_r = shed_svc.query(late);
    bool deadline_timeout = !late_r.status.ok() &&
        late_r.status.code() == ErrorCode::Timeout;

    service::ServiceStats shed_stats = shed_svc.stats();
    shed_svc.drain();
    std::filesystem::remove_all(shed_dir, ec);

    std::printf("overload burst: %u submitted, %u served, %u shed "
                "(all classified Overloaded: %s)\n",
                burst, burst_ok, shed_count,
                shed_all_classified ? "yes" : "NO -- BUG");
    std::printf("expired deadline classified Timeout: %s\n\n",
                deadline_timeout ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // Part 3: the PR 6 fault storm under concurrent load.
    // ------------------------------------------------------------------
    std::vector<Pair> chaos_pairs(pairs.begin(), pairs.begin() + 4);

    // Prime a store so the storm has files to corrupt, then flip one
    // byte in every other file (sorted: deterministic choice).
    std::filesystem::path chaos_dir = tempStoreDir("chaos");
    {
        harness::SnapshotRegistry prime(chaos_dir.string());
        for (const Pair &p : chaos_pairs)
            (void)prime.acquire(p.make, p.config, 1);
    }
    std::vector<std::string> chaos_files;
    for (const auto &entry :
         std::filesystem::directory_iterator(chaos_dir, ec)) {
        if (entry.path().extension() == ".bin")
            chaos_files.push_back(entry.path().string());
    }
    std::sort(chaos_files.begin(), chaos_files.end());
    std::size_t chaos_corrupted = 0;
    for (std::size_t i = 0; i < chaos_files.size(); i += 2)
        chaos_corrupted += corruptStoreFile(chaos_files[i]);

    auto &inj = FaultInjector::instance();
    inj.reset();
    inj.armSeeded("snapshot_io.read", "", 0xc4a05, 0.5, 2);
    inj.armSeeded("registry.load", "", 0x10adf, 0.5, 2);
    inj.armAt("registry.save", "", {1});
    inj.armSeeded("snapshot_io.write", "", 0x717e5, 0.5, 1);

    service::ServiceConfig chaos_cfg;
    chaos_cfg.workers = workers;
    chaos_cfg.queueCapacity = 64;
    chaos_cfg.storeDir = chaos_dir.string();
    service::QueryService chaos_svc(chaos_cfg);
    chaos_svc.registerWorkload("GNMT",
                               [] { return harness::makeGnmtWorkload(); });
    chaos_svc.registerWorkload("DS2",
                               [] { return harness::makeDs2Workload(); });
    chaos_svc.start();

    const unsigned chaos_rounds = 6; // 6 x 4 pairs = 24 queries
    std::vector<service::QueryRequest> chaos_mix;
    for (unsigned d = 0; d < chaos_rounds; ++d) {
        for (const Pair &p : chaos_pairs) {
            service::QueryRequest req;
            req.workload = p.workload;
            req.config = p.config;
            chaos_mix.push_back(req);
        }
    }
    setQuietLogging(true); // the storm's warnings are expected noise
    double chaos_wall = 0.0;
    auto chaos_results =
        runClients(chaos_svc, chaos_mix, clients, &chaos_wall);
    setQuietLogging(false);

    std::size_t chaos_answered = 0, chaos_identical = 0,
        chaos_shed_classified = 0, chaos_unclassified = 0;
    for (std::size_t i = 0; i < chaos_results.size(); ++i) {
        const service::QueryResult &r = chaos_results[i];
        if (r.status.ok()) {
            ++chaos_answered;
            chaos_identical +=
                answersMatch(r.answer,
                             ref[i % chaos_pairs.size()]);
        } else if ((r.status.code() == ErrorCode::Overloaded ||
                    r.status.code() == ErrorCode::Timeout ||
                    r.status.code() == ErrorCode::Cancelled) &&
                   !r.status.message().empty()) {
            ++chaos_shed_classified;
        } else {
            ++chaos_unclassified;
        }
    }
    uint64_t chaos_quarantines = chaos_svc.registry().stats().quarantines;
    uint64_t read_fired = inj.fired("snapshot_io.read");
    uint64_t load_fired = inj.fired("registry.load");
    uint64_t save_fired = inj.fired("registry.save");
    uint64_t write_fired = inj.fired("snapshot_io.write");

    setQuietLogging(true); // drain's flush warning is expected too
    chaos_svc.drain();
    setQuietLogging(false);
    service::ServiceStats chaos_stats = chaos_svc.stats();
    inj.reset();
    std::filesystem::remove_all(chaos_dir, ec);

    bool chaos_completed =
        chaos_answered + chaos_shed_classified + chaos_unclassified ==
        chaos_mix.size();
    bool chaos_clean = chaos_unclassified == 0 &&
        chaos_identical == chaos_answered &&
        chaos_stats.stuckReports == 0;

    std::printf("chaos storm: %zu queries under %llu read / %llu load "
                "/ %llu save / %llu write fault(s), %zu corrupted "
                "file(s), %llu quarantine(s); %.3fs\n",
                chaos_mix.size(),
                static_cast<unsigned long long>(read_fired),
                static_cast<unsigned long long>(load_fired),
                static_cast<unsigned long long>(save_fired),
                static_cast<unsigned long long>(write_fired),
                chaos_corrupted,
                static_cast<unsigned long long>(chaos_quarantines),
                chaos_wall);
    std::printf("every chaos query answered bit-identically or shed "
                "classified: %s (%zu identical, %zu shed, "
                "%zu unclassified)\n",
                chaos_completed && chaos_clean ? "yes" : "NO -- BUG",
                chaos_identical, chaos_shed_classified,
                chaos_unclassified);
    std::printf("no stuck workers reported: %s\n\n",
                chaos_stats.stuckReports == 0 ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // JSON report: merge a "service" block into the shared report.
    // ------------------------------------------------------------------
    std::string prefix;
    {
        std::ifstream in(json_path);
        if (in.good()) {
            std::string content{std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>()};
            std::size_t brace = content.find_last_of('}');
            if (brace != std::string::npos) {
                prefix = content.substr(0, brace);
                while (!prefix.empty() &&
                       (prefix.back() == '\n' || prefix.back() == ' '))
                    prefix.pop_back();
                prefix += ",\n";
            }
        }
    }
    if (prefix.empty())
        prefix = "{\n";

    FILE *f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    // The CI bench guard gates on the keys below; the markers keep
    // the guard and this export mirrored (seqpoint_lint rule 4).
    // BENCH_GATE: all_ok bit_identical dedup_single_build
    // BENCH_GATE: warm_speedup_p50 warm_speedup_floor qps
    // BENCH_GATE: all_classified deadline_timeout
    // BENCH_GATE: completed unclassified_failures stuck_reports
    std::fprintf(f, "%s", prefix.c_str());
    std::fprintf(f, "  \"service\": {\n");
    std::fprintf(f, "    \"hw_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "    \"clients\": %u,\n", clients);
    std::fprintf(f, "    \"workers\": %u,\n", workers);
    std::fprintf(f, "    \"pairs\": %zu,\n", pairs.size());
    std::fprintf(f, "    \"cold_queries\": %zu,\n", cold_mix.size());
    std::fprintf(f, "    \"warm_queries\": %zu,\n", warm_mix.size());
    std::fprintf(f, "    \"cold_wall_sec\": %.6f,\n", cold_wall);
    std::fprintf(f, "    \"warm_wall_sec\": %.6f,\n", warm_wall);
    std::fprintf(f, "    \"qps\": %.2f,\n", qps);
    std::fprintf(f, "    \"warm_qps\": %.2f,\n", warm_qps);
    std::fprintf(f, "    \"cold_p50_ms\": %.3f,\n", 1e3 * cold_p50);
    std::fprintf(f, "    \"cold_p99_ms\": %.3f,\n", 1e3 * cold_p99);
    std::fprintf(f, "    \"warm_p50_ms\": %.3f,\n", 1e3 * warm_p50);
    std::fprintf(f, "    \"warm_p99_ms\": %.3f,\n", 1e3 * warm_p99);
    std::fprintf(f, "    \"warm_speedup_p50\": %.2f,\n",
                 warm_speedup_p50);
    std::fprintf(f, "    \"warm_speedup_floor\": %.2f,\n", warm_floor);
    std::fprintf(f, "    \"builds\": %llu,\n",
                 static_cast<unsigned long long>(builds_after_cold));
    std::fprintf(f, "    \"dedup_single_build\": %s,\n",
                 dedup_single_build ? "true" : "false");
    std::fprintf(f, "    \"all_ok\": %s,\n",
                 load_all_ok ? "true" : "false");
    std::fprintf(f, "    \"bit_identical\": %s,\n",
                 load_identical ? "true" : "false");
    std::fprintf(f, "    \"shed\": {\n");
    std::fprintf(f, "      \"burst\": %u,\n", burst);
    std::fprintf(f, "      \"served\": %u,\n", burst_ok);
    std::fprintf(f, "      \"shed_overloaded\": %u,\n", shed_count);
    std::fprintf(f, "      \"admitted\": %llu,\n",
                 static_cast<unsigned long long>(shed_stats.admitted));
    std::fprintf(f, "      \"all_classified\": %s,\n",
                 shed_all_classified ? "true" : "false");
    std::fprintf(f, "      \"deadline_timeout\": %s\n",
                 deadline_timeout ? "true" : "false");
    std::fprintf(f, "    },\n");
    std::fprintf(f, "    \"chaos\": {\n");
    std::fprintf(f, "      \"queries\": %zu,\n", chaos_mix.size());
    std::fprintf(f, "      \"wall_sec\": %.6f,\n", chaos_wall);
    std::fprintf(f, "      \"answered_identical\": %zu,\n",
                 chaos_identical);
    std::fprintf(f, "      \"shed_classified\": %zu,\n",
                 chaos_shed_classified);
    std::fprintf(f, "      \"unclassified_failures\": %zu,\n",
                 chaos_unclassified);
    std::fprintf(f, "      \"corrupted_files\": %zu,\n",
                 chaos_corrupted);
    std::fprintf(f, "      \"quarantines\": %llu,\n",
                 static_cast<unsigned long long>(chaos_quarantines));
    std::fprintf(f, "      \"read_faults_fired\": %llu,\n",
                 static_cast<unsigned long long>(read_fired));
    std::fprintf(f, "      \"load_faults_fired\": %llu,\n",
                 static_cast<unsigned long long>(load_fired));
    std::fprintf(f, "      \"save_faults_fired\": %llu,\n",
                 static_cast<unsigned long long>(save_fired));
    std::fprintf(f, "      \"write_faults_fired\": %llu,\n",
                 static_cast<unsigned long long>(write_fired));
    std::fprintf(f, "      \"stuck_reports\": %llu,\n",
                 static_cast<unsigned long long>(
                     chaos_stats.stuckReports));
    std::fprintf(f, "      \"completed\": %s\n",
                 chaos_completed && chaos_clean ? "true" : "false");
    std::fprintf(f, "    }\n");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("merged \"service\" block into %s\n", json_path);

    // Load contract: every query answered, bit-identical to the
    // serial pass, one build per pair despite in-flight duplicates,
    // and warm answers at least 2x faster than cold at the median.
    if (!load_all_ok || !load_identical || !dedup_single_build ||
        warm_speedup_p50 < warm_floor) {
        std::fprintf(stderr, "FAIL: service load: ok=%d identical=%d "
                     "dedup=%d warm_speedup_p50=%.2fx (need >= %.1fx)\n",
                     load_all_ok, load_identical, dedup_single_build,
                     warm_speedup_p50, warm_floor);
        return 1;
    }

    // Admission contract: the burst sheds (classified Overloaded,
    // nothing lost or unclassified) and an expired deadline comes
    // back as a classified Timeout.
    if (!shed_all_classified || !deadline_timeout) {
        std::fprintf(stderr, "FAIL: admission control: burst=%u "
                     "served=%u shed=%u classified=%d "
                     "deadline_timeout=%d\n", burst, burst_ok,
                     shed_count, shed_all_classified, deadline_timeout);
        return 1;
    }

    // Chaos contract: under the fault storm every request is either
    // answered bit-identically to the clean pass or shed with a
    // classified Status -- no unclassified failure, no stuck worker,
    // and the service drained cleanly (reaching here proves no crash
    // or hang).
    if (!chaos_completed || !chaos_clean) {
        std::fprintf(stderr, "FAIL: chaos: answered=%zu identical=%zu "
                     "shed=%zu unclassified=%zu stuck=%llu\n",
                     chaos_answered, chaos_identical,
                     chaos_shed_classified, chaos_unclassified,
                     static_cast<unsigned long long>(
                         chaos_stats.stuckReports));
        return 1;
    }
    return 0;
}
