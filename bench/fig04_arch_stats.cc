/**
 * @file
 * Regenerates Fig 4: hardware performance-counter statistics
 * (load traffic, memory-write stalls, VALU instructions) for four
 * representative iterations of DS2 and GNMT, normalized to each
 * network's average -- the counters differ by tens of percent across
 * iterations.
 */

#include <algorithm>
#include <cstdio>

#include "common/stats_math.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

void
emit(harness::Experiment &exp, const std::vector<int64_t> &sls)
{
    auto cfg1 = sim::GpuConfig::config1();

    // The paper reports counters averaged across the iteration's
    // operations; we report the equivalent intensity metrics: load
    // bandwidth, write-stall fraction and VALU issue rate over the
    // iteration's busy time.
    std::vector<double> loads, stalls, valu;
    for (int64_t sl : sls) {
        const auto &p = exp.iterProfile(cfg1, sl);
        double busy = std::max(1e-12, p.counters.busySec);
        loads.push_back(p.counters.bytesLoaded / busy);
        stalls.push_back(p.counters.writeStallSec / busy);
        valu.push_back(p.counters.valuInsts / busy);
    }
    double ml = mean(loads), ms = mean(stalls), mv = mean(valu);

    Table table({"iteration", "load data size", "mem write stalls",
                 "VALU insts"});
    for (size_t i = 0; i < sls.size(); ++i) {
        table.addRow({csprintf("iter-%zu (SL=%lld)", i + 1,
                               (long long)sls[i]),
                      csprintf("%.3f", loads[i] / ml),
                      csprintf("%.3f", stalls[i] / ms),
                      csprintf("%.3f", valu[i] / mv)});
    }
    std::printf("%s\n", table.render(csprintf(
        "Fig 4 (%s): normalized counters for four representative "
        "iterations", exp.workload().name.c_str())).c_str());

    auto spread = [](const std::vector<double> &v) {
        return (maxOf(v) - minOf(v)) / mean(v) * 100.0;
    };
    std::printf("spread: loads %.1f%%, write stalls %.1f%%, "
                "VALU %.1f%%\n\n",
                spread(loads), spread(stalls), spread(valu));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(opts);

    harness::Experiment ds2(harness::makeDs2Workload());
    harness::Experiment gnmt(harness::makeGnmtWorkload());

    // Adopt reference-config cold starts the snapshot store already
    // holds (lookup-only; a cold store changes nothing).
    auto cfg1 = sim::GpuConfig::config1();
    bench::adoptCachedSnapshot(registry.get(), ds2, cfg1);
    bench::adoptCachedSnapshot(registry.get(), gnmt, cfg1);

    // Four iterations spanning each network's SL range (quartiles of
    // the iteration distribution).
    emit(ds2, {80, 150, 250, 400});
    emit(gnmt, {15, 30, 70, 150});

    bench::paperNote("read traffic / write stalls / VALU insts differ "
                     "by about 24% / 25% / 27% across iterations.");
    return 0;
}
