/**
 * @file
 * Regenerates Fig 7: histograms of the iteration sequence lengths of
 * one training epoch for DS2 (LibriSpeech-like, skewed) and GNMT
 * (IWSLT-like, broader).
 */

#include <cstdio>

#include "common/histogram.hh"
#include "harness/experiment.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

void
emit(harness::Experiment &exp, size_t buckets)
{
    auto cfg1 = sim::GpuConfig::config1();
    auto stats = exp.slStats(cfg1);

    Histogram hist(stats.minSl(), stats.maxSl(), buckets);
    for (const auto &e : stats.entries())
        hist.add(e.seqLen, e.freq);

    std::printf("Fig 7 (%s): iteration-SL histogram over one epoch "
                "(%llu iterations, %zu unique SLs, range [%lld, "
                "%lld])\n%s\n",
                exp.workload().name.c_str(),
                (unsigned long long)stats.totalIterations(),
                stats.uniqueCount(), (long long)stats.minSl(),
                (long long)stats.maxSl(),
                hist.render(48).c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(opts);

    harness::Experiment ds2(harness::makeDs2Workload());
    harness::Experiment gnmt(harness::makeGnmtWorkload());

    // Adopt reference-config cold starts the snapshot store already
    // holds (lookup-only; a cold store changes nothing).
    auto cfg1 = sim::GpuConfig::config1();
    bench::adoptCachedSnapshot(registry.get(), ds2, cfg1);
    bench::adoptCachedSnapshot(registry.get(), gnmt, cfg1);

    emit(ds2, 10);
    emit(gnmt, 10);

    bench::paperNote("DS2/LibriSpeech-100h is heavily right-skewed "
                     "(dominant short-utterance spike); GNMT/IWSLT15 "
                     "spreads across the range. Unique SLs approach "
                     "half the epoch's iterations for DS2.");
    return 0;
}
