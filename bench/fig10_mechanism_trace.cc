/**
 * @file
 * Walks the Fig 10 SeqPoint mechanism end-to-end on GNMT, printing
 * each numbered step: (1) per-SL stats from one epoch, (2) binning,
 * (3) representative pick, (4) weights, (5) projection, (6) the error
 * check and k refinement.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/binning.hh"
#include "harness/experiment.hh"
#include "support.hh"

using namespace seqpoint;

int
main(int argc, char **argv)
{
    bench::FigOptions fig_opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(fig_opts);

    harness::Experiment exp(harness::makeGnmtWorkload());
    auto cfg1 = sim::GpuConfig::config1();
    bench::warmExperiment(registry.get(),
                          [] { return harness::makeGnmtWorkload(); },
                          exp, cfg1);
    auto stats = exp.slStats(cfg1);
    core::SeqPointOptions opts = harness::Experiment::defaultOptions();

    std::printf("Fig 10 walk-through (GNMT, config #1)\n\n");
    std::printf("(1) one epoch logged: %llu iterations, %zu unique "
                "SLs, actual train time %.2fs\n",
                (unsigned long long)stats.totalIterations(),
                stats.uniqueCount(), stats.actualTotal());
    std::printf("    unique SLs %zu > n=%u, so binning is needed\n\n",
                stats.uniqueCount(), opts.uniqueSlThreshold);

    double actual = stats.actualTotal();
    // Clamp the refinement like selectSeqPoints() does: binEntries
    // rejects k beyond the unique-SL count, and maxBins is the
    // algorithm's own safety cap.
    unsigned max_k = static_cast<unsigned>(std::min<size_t>(
        opts.maxBins, stats.uniqueCount()));
    for (unsigned k = opts.initialBins; k <= max_k; ++k) {
        core::SeqPointSet set = core::selectWithBins(stats, k, opts);
        std::printf("(2)-(5) k=%u: %zu SeqPoints, projected %.2fs, "
                    "error %.3f%%\n", k, set.points.size(),
                    set.projectTotal(), 100.0 * set.selfError);
        if (set.converged) {
            std::printf("(6) error %.3f%% <= e=%.1f%%: DONE\n\n",
                        100.0 * set.selfError,
                        100.0 * opts.errorThreshold);
            Table table({"SeqPoint SL", "weight (iterations)",
                         "iteration time (ms)"});
            for (const auto &p : set.points) {
                table.addRow({csprintf("%lld", (long long)p.seqLen),
                              csprintf("%.0f", p.weight),
                              csprintf("%.2f", p.statValue * 1e3)});
            }
            std::printf("%s\n", table.render(
                "Selected SeqPoints").c_str());
            std::printf("projection check: sum(w*s) = %.2fs vs actual "
                        "%.2fs\n", set.projectTotal(), actual);
            break;
        }
        std::printf("(6) error above threshold: increment k\n");
    }

    bench::paperNote("the mechanism converged at k=15 bins for GNMT "
                     "in the paper's setup.");
    return 0;
}
