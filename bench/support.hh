/**
 * @file
 * Shared helpers for the paper-figure bench binaries: command-line
 * options for the scheduler-backed figure pipeline, renderers for the
 * Figs 11/12 and 15/16 grids and the Figs 13/14 sensitivity series,
 * and small formatting utilities. The grids themselves are computed
 * by harness/figures.hh -- serially or as ExperimentScheduler cells
 * sharing one ModelSnapshot cold start, byte-identical either way.
 */

#ifndef SEQPOINT_BENCH_SUPPORT_HH
#define SEQPOINT_BENCH_SUPPORT_HH

#include <string>
#include <vector>

#include "common/stats_math.hh"
#include "common/strutil.hh"
#include "harness/figures.hh"

namespace seqpoint {
namespace bench {

/**
 * Geomean floor for error aggregation: half the figures' printed
 * resolution ("%.2f"), so a selector that lands exactly on the
 * actual for one configuration (0% error there) contributes "below
 * measurable" instead of collapsing its whole geomean to ~0.
 */
constexpr double kErrorGeomeanFloor = 0.005;

/** Command-line options shared by the figure benches. */
struct FigOptions {
    unsigned threads = 0;      ///< Scheduler width; 0 = hardware.
    bool serial = false;       ///< Run the legacy serial pipeline.
    bool verifySerial = false; ///< Also run serially and require
                               ///< byte-identical results (CI guard).
};

/**
 * Parse figure-bench arguments: --threads N, --serial,
 * --verify-serial. Unknown arguments print usage and exit(2).
 */
FigOptions parseFigArgs(int argc, char **argv);

/**
 * Evaluate the fig11/15-style sweep per `opts`: the scheduler-backed
 * pipeline by default, the legacy serial pipeline under --serial.
 * Under --verify-serial the serial pipeline runs as well and the
 * process exits(1) unless the results are byte-identical.
 *
 * @param make Workload factory.
 * @param opts Parsed bench options.
 */
harness::FigureSweep runFigureSweep(const harness::WorkloadFactory &make,
                                    const FigOptions &opts);

/**
 * Print the Fig 11/12 grid: training-time projection error (%) per
 * selector (rows) per Table II configuration (columns), plus each
 * selector's geomean, and the SeqPoint bin/point diagnostics.
 *
 * @param sweep Evaluated figure sweep.
 * @param caption Figure caption.
 * @return SeqPoint's geomean error (%), for summary lines.
 */
double printTimeErrorFigure(const harness::FigureSweep &sweep,
                            const std::string &caption);

/**
 * Print the Fig 15/16 grid: throughput-uplift projection error
 * (percentage points) per selector per config pair (#X -> #1).
 *
 * @param sweep Evaluated figure sweep.
 * @param caption Figure caption.
 * @return SeqPoint's geomean error (pp).
 */
double printSpeedupErrorFigure(const harness::FigureSweep &sweep,
                               const std::string &caption);

/**
 * Evaluate and print the Fig 13/14 per-SL sensitivity series:
 * throughput uplift (%) of config #1 over configs #2..#5 for a sweep
 * of SLs, via the scheduler or the serial path per `opts` (with the
 * same --verify-serial contract as runFigureSweep()).
 *
 * @param make Workload factory.
 * @param caption Figure caption.
 * @param sl_lo Sweep start.
 * @param sl_hi Sweep end (inclusive).
 * @param step Sweep step.
 * @param opts Parsed bench options.
 */
void printSensitivityFigure(const harness::WorkloadFactory &make,
                            const std::string &caption, int64_t sl_lo,
                            int64_t sl_hi, int64_t step,
                            const FigOptions &opts);

/** Print a one-line paper-vs-measured note. */
void paperNote(const std::string &text);

} // namespace bench
} // namespace seqpoint

#endif // SEQPOINT_BENCH_SUPPORT_HH
