/**
 * @file
 * Shared helpers for the paper-figure bench binaries: command-line
 * options for the scheduler-backed figure pipeline, renderers for the
 * Figs 11/12 and 15/16 grids and the Figs 13/14 sensitivity series,
 * and small formatting utilities. The grids themselves are computed
 * by harness/figures.hh -- serially or as ExperimentScheduler cells
 * sharing one ModelSnapshot cold start, byte-identical either way.
 */

#ifndef SEQPOINT_BENCH_SUPPORT_HH
#define SEQPOINT_BENCH_SUPPORT_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats_math.hh"
#include "common/strutil.hh"
#include "harness/figures.hh"
#include "harness/snapshot_registry.hh"

namespace seqpoint {
namespace bench {

/**
 * Geomean floor for error aggregation: half the figures' printed
 * resolution ("%.2f"), so a selector that lands exactly on the
 * actual for one configuration (0% error there) contributes "below
 * measurable" instead of collapsing its whole geomean to ~0.
 */
constexpr double kErrorGeomeanFloor = 0.005;

/** Command-line options shared by the figure benches. */
struct FigOptions {
    unsigned threads = 0;      ///< Scheduler width; 0 = hardware.
    bool serial = false;       ///< Run the legacy serial pipeline.
    bool verifySerial = false; ///< Also run serially and require
                               ///< byte-identical results (CI guard).
    std::string snapshotDir;   ///< Snapshot store directory; ""
                               ///< disables the persistent registry.
    unsigned snapshotCapMb = 0; ///< Store size cap in MiB; 0 =
                                ///< unbounded (LRU-by-mtime
                                ///< eviction keeps it under cap).
    bool strictSnapshots = false; ///< A bad store file is fatal
                                  ///< instead of quarantined +
                                  ///< rebuilt (CI escape hatch).
    unsigned cellRetries = 0;  ///< Extra attempts for a failing
                               ///< scheduler cell before it is
                               ///< recorded as failed.
};

/**
 * Parse figure-bench arguments: --threads N, --serial,
 * --verify-serial, --snapshot-dir PATH, --snapshot-cap-mb N,
 * --strict-snapshots, --cell-retries N.
 * Unknown arguments print usage and exit(2).
 */
FigOptions parseFigArgs(int argc, char **argv);

/**
 * Open the persistent snapshot registry named by --snapshot-dir
 * (creating the store directory), or null when the flag is unset.
 * The serial pipeline never consults the registry, so --serial runs
 * are unaffected even with a store attached. --strict-snapshots is
 * applied to the returned registry.
 */
std::unique_ptr<harness::SnapshotRegistry>
openRegistry(const FigOptions &opts);

/**
 * Adopt the registry's snapshot for (make's workload, cfg) into a
 * freshly constructed experiment: reuse it if cached (memory or
 * store), build-and-persist it otherwise. A null registry is a
 * no-op. Must be called before the experiment's first query; seeded
 * queries are bit-identical to cold ones.
 *
 * @param registry Registry from openRegistry(), may be null.
 * @param make Factory producing the same workload `exp` runs.
 * @param exp Experiment to seed.
 * @param cfg Configuration whose cold start to share.
 */
void warmExperiment(harness::SnapshotRegistry *registry,
                    const harness::WorkloadFactory &make,
                    harness::Experiment &exp,
                    const sim::GpuConfig &cfg);

/**
 * Adopt the registry's *cached* snapshot for (exp's workload, cfg)
 * into a freshly constructed experiment, if one exists in memory or
 * in the store; lookup-only, never builds. A null registry or a miss
 * is a no-op. Must be called before the experiment's first query.
 *
 * @param registry Registry from openRegistry(), may be null.
 * @param exp Experiment to seed.
 * @param cfg Configuration whose cold start to adopt.
 */
void adoptCachedSnapshot(harness::SnapshotRegistry *registry,
                         harness::Experiment &exp,
                         const sim::GpuConfig &cfg);

/**
 * The cross-config bench warming policy in one call: get-or-build
 * the Table II reference configuration's snapshot (the bench always
 * needs it) and adopt any of the remaining Table II cold starts the
 * store already holds (lookup-only). A null registry is a no-op.
 * Must be called before the experiment's first query.
 *
 * @param registry Registry from openRegistry(), may be null.
 * @param make Factory producing the same workload `exp` runs.
 * @param exp Experiment to seed.
 */
void warmTable2(harness::SnapshotRegistry *registry,
                const harness::WorkloadFactory &make,
                harness::Experiment &exp);

/**
 * Evaluate the fig11/15-style sweep per `opts`: the scheduler-backed
 * pipeline by default, the legacy serial pipeline under --serial.
 * Under --verify-serial the serial pipeline runs as well and the
 * process exits(1) unless the results are byte-identical.
 *
 * @param make Workload factory.
 * @param opts Parsed bench options.
 */
harness::FigureSweep runFigureSweep(const harness::WorkloadFactory &make,
                                    const FigOptions &opts);

/**
 * Print the Fig 11/12 grid: training-time projection error (%) per
 * selector (rows) per Table II configuration (columns), plus each
 * selector's geomean, and the SeqPoint bin/point diagnostics.
 *
 * @param sweep Evaluated figure sweep.
 * @param caption Figure caption.
 * @return SeqPoint's geomean error (%), for summary lines.
 */
double printTimeErrorFigure(const harness::FigureSweep &sweep,
                            const std::string &caption);

/**
 * Print the Fig 15/16 grid: throughput-uplift projection error
 * (percentage points) per selector per config pair (#X -> #1).
 *
 * @param sweep Evaluated figure sweep.
 * @param caption Figure caption.
 * @return SeqPoint's geomean error (pp).
 */
double printSpeedupErrorFigure(const harness::FigureSweep &sweep,
                               const std::string &caption);

/**
 * Evaluate and print the Fig 13/14 per-SL sensitivity series:
 * throughput uplift (%) of config #1 over configs #2..#5 for a sweep
 * of SLs, via the scheduler or the serial path per `opts` (with the
 * same --verify-serial contract as runFigureSweep()).
 *
 * @param make Workload factory.
 * @param caption Figure caption.
 * @param sl_lo Sweep start.
 * @param sl_hi Sweep end (inclusive).
 * @param step Sweep step.
 * @param opts Parsed bench options.
 */
void printSensitivityFigure(const harness::WorkloadFactory &make,
                            const std::string &caption, int64_t sl_lo,
                            int64_t sl_hi, int64_t step,
                            const FigOptions &opts);

/** Print a one-line paper-vs-measured note. */
void paperNote(const std::string &text);

} // namespace bench
} // namespace seqpoint

#endif // SEQPOINT_BENCH_SUPPORT_HH
