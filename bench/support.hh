/**
 * @file
 * Shared helpers for the paper-figure bench binaries: the selector
 * grids behind Figs 11/12 and 15/16, the per-SL sensitivity sweeps of
 * Figs 13/14, and small formatting utilities.
 */

#ifndef SEQPOINT_BENCH_SUPPORT_HH
#define SEQPOINT_BENCH_SUPPORT_HH

#include <string>
#include <vector>

#include "common/stats_math.hh"
#include "common/strutil.hh"
#include "harness/experiment.hh"

namespace seqpoint {
namespace bench {

/** Selector order used in every figure. */
const std::vector<core::SelectorKind> &selectorOrder();

/**
 * Print the Fig 11/12 grid: training-time projection error (%) per
 * selector (rows) per Table II configuration (columns), plus each
 * selector's geomean, and the SeqPoint bin/point diagnostics.
 *
 * @param exp Experiment (selection is built on config #1).
 * @param caption Figure caption.
 * @return SeqPoint's geomean error (%), for summary lines.
 */
double printTimeErrorFigure(harness::Experiment &exp,
                            const std::string &caption);

/**
 * Print the Fig 15/16 grid: throughput-uplift projection error
 * (percentage points) per selector per config pair (#X -> #1).
 *
 * @param exp Experiment.
 * @param caption Figure caption.
 * @return SeqPoint's geomean error (pp).
 */
double printSpeedupErrorFigure(harness::Experiment &exp,
                               const std::string &caption);

/**
 * Print the Fig 13/14 per-SL sensitivity series: throughput uplift
 * (%) of config #1 over configs #2..#5, for a sweep of SLs.
 *
 * @param exp Experiment.
 * @param caption Figure caption.
 * @param sl_lo Sweep start.
 * @param sl_hi Sweep end (inclusive).
 * @param step Sweep step.
 */
void printSensitivityFigure(harness::Experiment &exp,
                            const std::string &caption, int64_t sl_lo,
                            int64_t sl_hi, int64_t step);

/** Print a one-line paper-vs-measured note. */
void paperNote(const std::string &text);

} // namespace bench
} // namespace seqpoint

#endif // SEQPOINT_BENCH_SUPPORT_HH
