/**
 * @file
 * Regenerates Fig 12: error in projecting GNMT's total training time,
 * per selector, across the five Table II configurations, via the
 * scheduler-backed figure pipeline (see fig11).
 */

#include "support.hh"

using namespace seqpoint;

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    harness::FigureSweep sweep = bench::runFigureSweep(
        [] { return harness::makeGnmtWorkload(); }, opts);
    double geo = bench::printTimeErrorFigure(sweep,
        "Fig 12: error in total training time projections for GNMT");
    bench::paperNote(csprintf(
        "paper geomean for SeqPoint: 0.53%%; measured here: %.2f%%. "
        "Paper: worst 301-877%%, frequent 20-35%%, median up to "
        "~10%%.", geo));
    return 0;
}
