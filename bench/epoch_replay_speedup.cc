/**
 * @file
 * Epoch-replay engine bench.
 *
 * Part 1 measures epochLog-equivalent work (a multi-epoch GNMT
 * profile sweep) across engine generations:
 *
 *   - "serial uncached": the PR 1 baseline -- no per-SL memo, no
 *     kernel-timing cache, every iteration re-simulated in full;
 *   - "PR 1 memoized": per-SL memoization with a fresh profiler per
 *     epoch and a per-iteration memo probe (the PR 1 engine);
 *   - "unique-SL replay": the epoch-replay engine -- a persistent
 *     profiler whose memo carries across epochs, each unique SL
 *     profiled once (records-free execution) and the SL schedule
 *     replayed as flat-table lookups;
 *   - "replay + parallel": the same with the parallel per-SL sweep.
 *
 * Iteration logs, times and counters must be bit-identical across
 * all engines; the replay engine must beat the baseline by >= 5x.
 *
 * Part 2 drives the parallel experiment scheduler over a
 * 3-workload x 4-config sweep and checks the parallel merge is
 * byte-identical to the serial sweep.
 *
 * Part 3 measures the scheduler-backed figure pipeline: producing
 * the DS2 figure pair (the Fig 11 time-error grid and the Fig 15
 * speedup-error grid) serially -- one cold Experiment per figure,
 * exactly as the serial fig benches pay for it -- versus one
 * snapshot-shared scheduler pass that yields both grids. The
 * scheduled sweep must be byte-identical to the serial one and, on
 * multi-core hosts, >= 2x faster.
 *
 * Results are written to a JSON report (default BENCH_epoch.json,
 * argv[1] overrides); the process fails if any gate is missed.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "common/table.hh"
#include "harness/scheduler.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

double
now()
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now().time_since_epoch()).count();
}

/** One engine mode of the multi-epoch sweep. */
struct SweepResult {
    double wallSec = 0.0;             ///< Measured wall time.
    std::vector<prof::TrainLog> logs; ///< One log per epoch.
};

/** Engine selector for runSweep(). */
enum class Engine {
    SerialUncached, ///< PR 1 baseline: re-simulate everything.
    Pr1Memoized,    ///< PR 1 engine: fresh profiler, memo probes.
    Replay,         ///< Persistent profiler + unique-SL replay.
    ReplayParallel, ///< Replay + parallel per-SL sweep.
};

SweepResult
runSweep(const harness::Workload &wl, unsigned epochs, Engine engine,
         unsigned threads)
{
    bool memoize = engine != Engine::SerialUncached;
    sim::Gpu gpu(sim::GpuConfig::config1(), /*timing_cache=*/memoize);

    prof::TrainConfig tc;
    tc.batchSize = wl.batchSize;
    tc.policy = wl.policy;
    tc.evalCostMultiplier = wl.evalCostMultiplier;
    tc.memoizeProfiles = memoize;
    tc.uniqueSlReplay = engine == Engine::Replay ||
        engine == Engine::ReplayParallel;
    tc.profileThreads = engine == Engine::ReplayParallel ? threads : 1;

    bool persistent = engine == Engine::Replay ||
        engine == Engine::ReplayParallel;
    nn::Autotuner tuner(tc.tunerMode, &gpu);
    prof::Profiler profiler(gpu, wl.model, tuner, wl.batchSize,
                            memoize);

    SweepResult res;
    double start = now();
    for (unsigned e = 0; e < epochs; ++e) {
        tc.seed = wl.seed + e;
        res.logs.push_back(persistent
            ? prof::runTrainingEpoch(profiler, wl.dataset, tc)
            : prof::runTrainingEpoch(gpu, wl.model, wl.dataset, tc));
    }
    res.wallSec = now() - start;
    return res;
}

/**
 * Bit-exact comparison of iteration logs, times and counters
 * (TrainLog::identicalTo; autotuneSec is excluded -- the persistent
 * engines legitimately pay the one-time tuning cost once instead of
 * once per epoch).
 */
bool
sweepsIdentical(const SweepResult &a, const SweepResult &b)
{
    if (a.logs.size() != b.logs.size())
        return false;
    for (size_t e = 0; e < a.logs.size(); ++e) {
        if (!a.logs[e].identicalTo(b.logs[e]))
            return false;
    }
    return true;
}

size_t
uniqueSls(const SweepResult &r)
{
    std::set<int64_t> sls;
    for (const prof::TrainLog &log : r.logs)
        for (const prof::IterationLog &it : log.iterations)
            sls.insert(it.seqLen);
    return sls.size();
}

bool
cellsIdentical(const std::vector<harness::EpochCellResult> &a,
               const std::vector<harness::EpochCellResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].workload != b[i].workload ||
            a[i].config != b[i].config ||
            a[i].iterations != b[i].iterations ||
            a[i].trainSec != b[i].trainSec ||
            a[i].evalSec != b[i].evalSec ||
            a[i].throughput != b[i].throughput ||
            !(a[i].counters == b[i].counters))
            return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *json_path = argc > 1 ? argv[1] : "BENCH_epoch.json";
    const unsigned epochs = 6;
    const unsigned threads = std::max(2u,
        std::thread::hardware_concurrency());
    harness::Workload wl = harness::makeGnmtWorkload();

    // ------------------------------------------------------------------
    // Part 1: epochLog engine generations.
    // ------------------------------------------------------------------
    SweepResult baseline = runSweep(wl, epochs, Engine::SerialUncached,
                                    1);
    SweepResult pr1 = runSweep(wl, epochs, Engine::Pr1Memoized, 1);
    SweepResult replay = runSweep(wl, epochs, Engine::Replay, 1);
    SweepResult replay_par = runSweep(wl, epochs,
                                      Engine::ReplayParallel, threads);

    bool identical = sweepsIdentical(baseline, pr1) &&
        sweepsIdentical(baseline, replay) &&
        sweepsIdentical(baseline, replay_par);

    size_t total_iters = 0;
    for (const prof::TrainLog &log : baseline.logs)
        total_iters += log.numIterations();

    double sp_pr1 = baseline.wallSec / pr1.wallSec;
    double sp_replay = baseline.wallSec / replay.wallSec;
    double sp_replay_par = baseline.wallSec / replay_par.wallSec;

    Table engine({"engine", "wall time", "speedup vs PR 1 baseline"});
    engine.addRow({"serial uncached (PR 1 baseline)",
                   csprintf("%.3fs", baseline.wallSec), "1.0x"});
    engine.addRow({"PR 1 memoized",
                   csprintf("%.3fs", pr1.wallSec),
                   csprintf("%.1fx", sp_pr1)});
    engine.addRow({"unique-SL replay",
                   csprintf("%.3fs", replay.wallSec),
                   csprintf("%.1fx", sp_replay)});
    engine.addRow({"replay + parallel sweep",
                   csprintf("%.3fs", replay_par.wallSec),
                   csprintf("%.1fx", sp_replay_par)});
    std::printf("%s\n", engine.render(csprintf(
        "Epoch-replay engine: GNMT x%u epochs (%zu iterations, %zu "
        "unique SLs), %u sweep threads", epochs, total_iters,
        uniqueSls(baseline), threads)).c_str());

    std::printf("epoch logs bit-identical across engines: %s\n\n",
                identical ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // Part 2: parallel experiment scheduler, 3 workloads x 4 configs.
    // ------------------------------------------------------------------
    std::vector<harness::WorkloadFactory> workloads = {
        [] { return harness::makeGnmtWorkload(); },
        [] { return harness::makeDs2Workload(); },
        [] { return harness::makeTransformerWorkload(); },
    };
    std::vector<sim::GpuConfig> configs = {
        sim::GpuConfig::config1(), sim::GpuConfig::config2(),
        sim::GpuConfig::config3(), sim::GpuConfig::config4(),
    };

    double t0 = now();
    auto serial_cells =
        harness::ExperimentScheduler(1).epochSweep(workloads, configs);
    double serial_sec = now() - t0;

    t0 = now();
    auto parallel_cells =
        harness::ExperimentScheduler(threads).epochSweep(workloads,
                                                         configs);
    double parallel_sec = now() - t0;

    bool sweep_identical = cellsIdentical(serial_cells, parallel_cells);
    double sp_sched = serial_sec / parallel_sec;

    Table sched({"scheduler", "wall time", "speedup"});
    sched.addRow({"serial", csprintf("%.3fs", serial_sec), "1.0x"});
    sched.addRow({csprintf("parallel (%u threads)", threads),
                  csprintf("%.3fs", parallel_sec),
                  csprintf("%.1fx", sp_sched)});
    std::printf("%s\n", sched.render(csprintf(
        "Experiment scheduler: %zu workloads x %zu configs",
        workloads.size(), configs.size())).c_str());
    std::printf("parallel sweep byte-identical to serial: %s\n\n",
                sweep_identical ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // Part 3: scheduler-backed figure pipeline (DS2 figs 11 + 15).
    // ------------------------------------------------------------------
    auto make_ds2 = [] { return harness::makeDs2Workload(); };

    // Serial baseline: each figure bench pays its own full cold start
    // (one fresh Experiment per binary), so producing the DS2 figure
    // pair costs two complete 5-config sweeps.
    t0 = now();
    harness::FigureSweep fig_time = harness::runFigureSweepSerial(
        make_ds2);
    harness::FigureSweep fig_speedup = harness::runFigureSweepSerial(
        make_ds2);
    double fig_serial_sec = now() - t0;

    // Scheduler pipeline: one snapshot-shared pass yields both grids.
    t0 = now();
    harness::FigureSweep fig_sched = harness::runFigureSweepScheduled(
        make_ds2, threads);
    double fig_sched_sec = now() - t0;

    bool fig_identical = fig_sched.identicalTo(fig_time) &&
        fig_sched.identicalTo(fig_speedup);
    double sp_fig = fig_serial_sec / fig_sched_sec;

    // Speedup floor: >= 2x on multi-core hosts; the snapshot saves
    // one of the pair's two cold starts even with a single core, but
    // the remaining margin there is scheduling, so single-core
    // runners gate at the work-sharing floor (1.5x) instead. The
    // floor is exported in the JSON so the CI guard applies the same
    // contract.
    double fig_floor =
        std::thread::hardware_concurrency() > 1 ? 2.0 : 1.5;

    Table fig({"figure pipeline (DS2 figs 11+15)", "wall time",
               "speedup"});
    fig.addRow({"serial (one Experiment per figure)",
                csprintf("%.3fs", fig_serial_sec), "1.0x"});
    fig.addRow({csprintf("scheduler + snapshot (%u threads)", threads),
                csprintf("%.3fs", fig_sched_sec),
                csprintf("%.1fx", sp_fig)});
    std::printf("%s\n", fig.render(
        "Figure pipeline: serial pair vs snapshot-shared scheduler "
        "pass").c_str());
    std::printf("figure sweep byte-identical to serial pipeline: %s\n\n",
                fig_identical ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // JSON report.
    // ------------------------------------------------------------------
    FILE *f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", wl.name.c_str());
    std::fprintf(f, "  \"epochs\": %u,\n", epochs);
    std::fprintf(f, "  \"iterations\": %zu,\n", total_iters);
    std::fprintf(f, "  \"unique_sls\": %zu,\n", uniqueSls(baseline));
    std::fprintf(f, "  \"sweep_threads\": %u,\n", threads);
    std::fprintf(f, "  \"baseline_sec\": %.6f,\n", baseline.wallSec);
    std::fprintf(f, "  \"pr1_memoized_sec\": %.6f,\n", pr1.wallSec);
    std::fprintf(f, "  \"replay_sec\": %.6f,\n", replay.wallSec);
    std::fprintf(f, "  \"replay_parallel_sec\": %.6f,\n",
                 replay_par.wallSec);
    std::fprintf(f, "  \"speedup_pr1_memoized\": %.2f,\n", sp_pr1);
    std::fprintf(f, "  \"speedup_replay\": %.2f,\n", sp_replay);
    std::fprintf(f, "  \"speedup_replay_parallel\": %.2f,\n",
                 sp_replay_par);
    std::fprintf(f, "  \"bit_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"scheduler\": {\n");
    std::fprintf(f, "    \"workloads\": %zu,\n", workloads.size());
    std::fprintf(f, "    \"configs\": %zu,\n", configs.size());
    std::fprintf(f, "    \"serial_sec\": %.6f,\n", serial_sec);
    std::fprintf(f, "    \"parallel_sec\": %.6f,\n", parallel_sec);
    std::fprintf(f, "    \"speedup\": %.2f,\n", sp_sched);
    std::fprintf(f, "    \"identical\": %s\n",
                 sweep_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"fig_sweep\": {\n");
    std::fprintf(f, "    \"workload\": \"DS2\",\n");
    std::fprintf(f, "    \"figures\": \"fig11+fig15\",\n");
    std::fprintf(f, "    \"configs\": 5,\n");
    std::fprintf(f, "    \"threads\": %u,\n", threads);
    std::fprintf(f, "    \"serial_sec\": %.6f,\n", fig_serial_sec);
    std::fprintf(f, "    \"scheduled_sec\": %.6f,\n", fig_sched_sec);
    std::fprintf(f, "    \"speedup\": %.2f,\n", sp_fig);
    std::fprintf(f, "    \"speedup_floor\": %.2f,\n", fig_floor);
    std::fprintf(f, "    \"identical\": %s\n",
                 fig_identical ? "true" : "false");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);

    // The engine contract: the unique-SL replay engine must beat the
    // PR 1 baseline by at least 5x with bit-identical logs, and the
    // parallel scheduler merge must match the serial sweep. Gate on
    // the better replay mode: on single-core or heavily shared
    // runners the sweep pool adds overhead it cannot recoup, which
    // says nothing about the engine.
    double best = std::max(sp_replay, sp_replay_par);
    if (!identical || !sweep_identical || best < 5.0) {
        std::fprintf(stderr, "FAIL: replay speedup %.2fx (need >= 5x), "
                     "identical=%d, scheduler identical=%d\n", best,
                     identical, sweep_identical);
        return 1;
    }

    // Figure-pipeline contract: byte-identity always; speedup at or
    // above the host's floor (computed above, exported in the JSON).
    if (!fig_identical || sp_fig < fig_floor) {
        std::fprintf(stderr, "FAIL: figure-pipeline speedup %.2fx "
                     "(need >= %.1fx), identical=%d\n", sp_fig,
                     fig_floor, fig_identical);
        return 1;
    }
    return 0;
}
