/**
 * @file
 * Epoch-replay engine bench.
 *
 * Part 1 measures epochLog-equivalent work (a multi-epoch GNMT
 * profile sweep) across engine generations:
 *
 *   - "serial uncached": the PR 1 baseline -- no per-SL memo, no
 *     kernel-timing cache, every iteration re-simulated in full;
 *   - "PR 1 memoized": per-SL memoization with a fresh profiler per
 *     epoch and a per-iteration memo probe (the PR 1 engine);
 *   - "unique-SL replay": the epoch-replay engine -- a persistent
 *     profiler whose memo carries across epochs, each unique SL
 *     profiled once (records-free execution) and the SL schedule
 *     replayed as flat-table lookups;
 *   - "replay + parallel": the same with the parallel per-SL sweep.
 *
 * Iteration logs, times and counters must be bit-identical across
 * all engines; the replay engine must beat the baseline by >= 5x.
 *
 * Part 2 drives the parallel experiment scheduler over a
 * 3-workload x 4-config sweep and checks the parallel merge is
 * byte-identical to the serial sweep.
 *
 * Part 3 measures the scheduler-backed figure pipeline: producing
 * the DS2 figure pair (the Fig 11 time-error grid and the Fig 15
 * speedup-error grid) serially -- one cold Experiment per figure,
 * exactly as the serial fig benches pay for it -- versus one
 * snapshot-shared scheduler pass that yields both grids. The
 * scheduled sweep must be byte-identical to the serial one and, on
 * multi-core hosts, >= 2x faster.
 *
 * Part 4 measures the persistent snapshot registry on the fig11 +
 * fig13 + fig15 bench trio: each bench standalone (its own cold
 * start, as separate binaries pay it) versus the same trio replayed
 * from a primed on-disk snapshot store -- the cross-bench/cross-run
 * reuse CI gets from caching the store. Warmed results must be
 * byte-identical to cold ones, replay without a single build, and
 * clear a 1.5x speedup floor (~2x measured on the CI container).
 *
 * Part 5 measures the segment-descriptor streams and the
 * piecewise-analytic cache replay engine on the hit-rate
 * measurements the cache-model validation re-runs per geometry: the
 * blocked-GEMM measurement through the legacy per-access paths
 * (callback generation into the scalar access() oracle; materialized
 * trace through the batched accessBlock) versus segment descriptors
 * through the piecewise engine, and the same for a pure streaming
 * sweep (where the engine is closed-form, O(segments)). Statistics
 * must be bit-identical across all engines and the piecewise engine
 * must beat the scalar path by >= 5x on the blocked-GEMM
 * measurement.
 *
 * Part 6 measures fault containment: a registry-backed 2x2 epoch
 * sweep runs under a deterministic fault storm -- store files
 * corrupted on disk, a snapshot read failing, a persist dropped, and
 * two of the four cells throwing on their first attempt -- with a
 * per-cell retry budget. The sweep must complete, no cell may end
 * failed, the faulted cells must recompute cold and converge, and
 * every result must be bit-identical to a clean serial sweep.
 *
 * Part 7 measures the warm closed-form replay tier on the steady
 * state the cache-model validation spends most of its time in: a
 * blocked-GEMM stream whose footprint is fully resident, re-walked
 * round after round on a persistent cache. The PR 5 engine (warm
 * tier disabled, scalar probe kernel) pays a tag probe per distinct
 * line every round; the tier ladder accounts each fully resident
 * segment in closed form through the per-set residency summaries.
 * Statistics and the full final cache state must be bit-identical to
 * the scalar oracle, the warm tier must actually engage, and the
 * steady-state round must beat the PR 5 engine by >= 2x.
 *
 * Results are written to a JSON report (default BENCH_epoch.json,
 * argv[1] overrides); the process fails if any gate is missed.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "harness/scheduler.hh"
#include "sim/access_gen.hh"
#include "sim/cache_model.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

double
now()
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now().time_since_epoch()).count();
}

/** One engine mode of the multi-epoch sweep. */
struct SweepResult {
    double wallSec = 0.0;             ///< Measured wall time.
    std::vector<prof::TrainLog> logs; ///< One log per epoch.
};

/** Engine selector for runSweep(). */
enum class Engine {
    SerialUncached, ///< PR 1 baseline: re-simulate everything.
    Pr1Memoized,    ///< PR 1 engine: fresh profiler, memo probes.
    Replay,         ///< Persistent profiler + unique-SL replay.
    ReplayParallel, ///< Replay + parallel per-SL sweep.
};

SweepResult
runSweep(const harness::Workload &wl, unsigned epochs, Engine engine,
         unsigned threads)
{
    bool memoize = engine != Engine::SerialUncached;
    sim::Gpu gpu(sim::GpuConfig::config1(), /*timing_cache=*/memoize);

    prof::TrainConfig tc;
    tc.batchSize = wl.batchSize;
    tc.policy = wl.policy;
    tc.evalCostMultiplier = wl.evalCostMultiplier;
    tc.memoizeProfiles = memoize;
    tc.uniqueSlReplay = engine == Engine::Replay ||
        engine == Engine::ReplayParallel;
    tc.profileThreads = engine == Engine::ReplayParallel ? threads : 1;

    bool persistent = engine == Engine::Replay ||
        engine == Engine::ReplayParallel;
    nn::Autotuner tuner(tc.tunerMode, &gpu);
    prof::Profiler profiler(gpu, wl.model, tuner, wl.batchSize,
                            memoize);

    SweepResult res;
    double start = now();
    for (unsigned e = 0; e < epochs; ++e) {
        tc.seed = wl.seed + e;
        res.logs.push_back(persistent
            ? prof::runTrainingEpoch(profiler, wl.dataset, tc)
            : prof::runTrainingEpoch(gpu, wl.model, wl.dataset, tc));
    }
    res.wallSec = now() - start;
    return res;
}

/**
 * Bit-exact comparison of iteration logs, times and counters
 * (TrainLog::identicalTo; autotuneSec is excluded -- the persistent
 * engines legitimately pay the one-time tuning cost once instead of
 * once per epoch).
 */
bool
sweepsIdentical(const SweepResult &a, const SweepResult &b)
{
    if (a.logs.size() != b.logs.size())
        return false;
    for (size_t e = 0; e < a.logs.size(); ++e) {
        if (!a.logs[e].identicalTo(b.logs[e]))
            return false;
    }
    return true;
}

size_t
uniqueSls(const SweepResult &r)
{
    std::set<int64_t> sls;
    for (const prof::TrainLog &log : r.logs)
        for (const prof::IterationLog &it : log.iterations)
            sls.insert(it.seqLen);
    return sls.size();
}

/** One timed cache-replay engine: per-measurement seconds + stats. */
struct EngineResult {
    double sec = 0.0;
    sim::CacheStats stats;
};

/**
 * Time one hit-rate measurement to ~0.3s of repetitions: run once
 * to calibrate, then average over enough repetitions that the
 * per-measurement time is stable on a shared runner.
 */
EngineResult
timeEngine(const std::function<sim::CacheStats()> &measure)
{
    EngineResult r;
    double t0 = now();
    r.stats = measure();
    double once = std::max(now() - t0, 1e-9);
    unsigned reps = once >= 0.3
        ? 1 : static_cast<unsigned>(0.3 / once) + 1;
    t0 = now();
    for (unsigned i = 0; i < reps; ++i)
        r.stats = measure();
    r.sec = (now() - t0) / reps;
    return r;
}

/** Flip one payload byte of a snapshot store file in place. */
bool
corruptStoreFile(const std::string &path)
{
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in.good())
            return false;
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    if (bytes.size() < 32)
        return false;
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
    return out.good();
}

/** Minimal JSON string escaping (quotes and backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

bool
cellsIdentical(const std::vector<harness::EpochCellResult> &a,
               const std::vector<harness::EpochCellResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].workload != b[i].workload ||
            a[i].config != b[i].config ||
            a[i].iterations != b[i].iterations ||
            a[i].trainSec != b[i].trainSec ||
            a[i].evalSec != b[i].evalSec ||
            a[i].throughput != b[i].throughput ||
            !(a[i].counters == b[i].counters))
            return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *json_path = argc > 1 ? argv[1] : "BENCH_epoch.json";
    const unsigned epochs = 6;
    const unsigned threads = std::max(2u,
        std::thread::hardware_concurrency());
    harness::Workload wl = harness::makeGnmtWorkload();

    // ------------------------------------------------------------------
    // Part 1: epochLog engine generations.
    // ------------------------------------------------------------------
    SweepResult baseline = runSweep(wl, epochs, Engine::SerialUncached,
                                    1);
    SweepResult pr1 = runSweep(wl, epochs, Engine::Pr1Memoized, 1);
    SweepResult replay = runSweep(wl, epochs, Engine::Replay, 1);
    SweepResult replay_par = runSweep(wl, epochs,
                                      Engine::ReplayParallel, threads);

    bool identical = sweepsIdentical(baseline, pr1) &&
        sweepsIdentical(baseline, replay) &&
        sweepsIdentical(baseline, replay_par);

    size_t total_iters = 0;
    for (const prof::TrainLog &log : baseline.logs)
        total_iters += log.numIterations();

    double sp_pr1 = baseline.wallSec / pr1.wallSec;
    double sp_replay = baseline.wallSec / replay.wallSec;
    double sp_replay_par = baseline.wallSec / replay_par.wallSec;

    Table engine({"engine", "wall time", "speedup vs PR 1 baseline"});
    engine.addRow({"serial uncached (PR 1 baseline)",
                   csprintf("%.3fs", baseline.wallSec), "1.0x"});
    engine.addRow({"PR 1 memoized",
                   csprintf("%.3fs", pr1.wallSec),
                   csprintf("%.1fx", sp_pr1)});
    engine.addRow({"unique-SL replay",
                   csprintf("%.3fs", replay.wallSec),
                   csprintf("%.1fx", sp_replay)});
    engine.addRow({"replay + parallel sweep",
                   csprintf("%.3fs", replay_par.wallSec),
                   csprintf("%.1fx", sp_replay_par)});
    std::printf("%s\n", engine.render(csprintf(
        "Epoch-replay engine: GNMT x%u epochs (%zu iterations, %zu "
        "unique SLs), %u sweep threads", epochs, total_iters,
        uniqueSls(baseline), threads)).c_str());

    std::printf("epoch logs bit-identical across engines: %s\n\n",
                identical ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // Part 2: parallel experiment scheduler, 3 workloads x 4 configs.
    // ------------------------------------------------------------------
    std::vector<harness::WorkloadFactory> workloads = {
        [] { return harness::makeGnmtWorkload(); },
        [] { return harness::makeDs2Workload(); },
        [] { return harness::makeTransformerWorkload(); },
    };
    std::vector<sim::GpuConfig> configs = {
        sim::GpuConfig::config1(), sim::GpuConfig::config2(),
        sim::GpuConfig::config3(), sim::GpuConfig::config4(),
    };

    std::vector<harness::CellTiming> serial_times, parallel_times;
    double t0 = now();
    auto serial_cells =
        harness::ExperimentScheduler(1).epochSweep(workloads, configs,
                                                   {}, &serial_times);
    double serial_sec = now() - t0;

    t0 = now();
    auto parallel_cells =
        harness::ExperimentScheduler(threads).epochSweep(
            workloads, configs, {}, &parallel_times);
    double parallel_sec = now() - t0;

    bool sweep_identical = cellsIdentical(serial_cells, parallel_cells);
    double sp_sched = serial_sec / parallel_sec;

    Table sched({"scheduler", "wall time", "speedup"});
    sched.addRow({"serial", csprintf("%.3fs", serial_sec), "1.0x"});
    sched.addRow({csprintf("parallel (%u threads)", threads),
                  csprintf("%.3fs", parallel_sec),
                  csprintf("%.1fx", sp_sched)});
    std::printf("%s\n", sched.render(csprintf(
        "Experiment scheduler: %zu workloads x %zu configs",
        workloads.size(), configs.size())).c_str());
    std::printf("parallel sweep byte-identical to serial: %s\n\n",
                sweep_identical ? "yes" : "NO -- BUG");

    // Per-cell wall-time breakdown: where the scheduler's time goes
    // (serial vs parallel, and setup vs eval inside a parallel
    // cell). Exported to the JSON so regressions in the parallel
    // speedup can be localised from the CI artifact alone.
    Table cell_table({"cell", "serial", "parallel", "par setup",
                      "par eval", "slowdown"});
    for (size_t i = 0; i < parallel_cells.size(); ++i) {
        cell_table.addRow({
            csprintf("%s/%s", parallel_cells[i].workload.c_str(),
                     parallel_cells[i].config.c_str()),
            csprintf("%.3fs", serial_times[i].totalSec),
            csprintf("%.3fs", parallel_times[i].totalSec),
            csprintf("%.3fs", parallel_times[i].setupSec),
            csprintf("%.3fs", parallel_times[i].evalSec()),
            csprintf("%.2fx", parallel_times[i].totalSec /
                                  std::max(serial_times[i].totalSec,
                                           1e-9))});
    }
    std::printf("%s\n", cell_table.render(
        "Scheduler cells: per-cell wall-time breakdown").c_str());

    // ------------------------------------------------------------------
    // Part 3: scheduler-backed figure pipeline (DS2 figs 11 + 15).
    // ------------------------------------------------------------------
    auto make_ds2 = [] { return harness::makeDs2Workload(); };

    // Serial baseline: each figure bench pays its own full cold start
    // (one fresh Experiment per binary), so producing the DS2 figure
    // pair costs two complete 5-config sweeps.
    t0 = now();
    harness::FigureSweep fig_time = harness::runFigureSweepSerial(
        make_ds2);
    harness::FigureSweep fig_speedup = harness::runFigureSweepSerial(
        make_ds2);
    double fig_serial_sec = now() - t0;

    // Scheduler pipeline: one snapshot-shared pass yields both grids.
    t0 = now();
    harness::FigureSweep fig_sched = harness::runFigureSweepScheduled(
        make_ds2, threads);
    double fig_sched_sec = now() - t0;

    bool fig_identical = fig_sched.identicalTo(fig_time) &&
        fig_sched.identicalTo(fig_speedup);
    double sp_fig = fig_serial_sec / fig_sched_sec;

    // Speedup floor: >= 2x on multi-core hosts; the snapshot saves
    // one of the pair's two cold starts even with a single core, but
    // the remaining margin there is scheduling, so single-core
    // runners gate at the work-sharing floor (1.5x) instead. The
    // floor is exported in the JSON so the CI guard applies the same
    // contract.
    double fig_floor =
        std::thread::hardware_concurrency() > 1 ? 2.0 : 1.5;

    Table fig({"figure pipeline (DS2 figs 11+15)", "wall time",
               "speedup"});
    fig.addRow({"serial (one Experiment per figure)",
                csprintf("%.3fs", fig_serial_sec), "1.0x"});
    fig.addRow({csprintf("scheduler + snapshot (%u threads)", threads),
                csprintf("%.3fs", fig_sched_sec),
                csprintf("%.1fx", sp_fig)});
    std::printf("%s\n", fig.render(
        "Figure pipeline: serial pair vs snapshot-shared scheduler "
        "pass").c_str());
    std::printf("figure sweep byte-identical to serial pipeline: %s\n\n",
                fig_identical ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // Part 4: persistent snapshot registry (figs 11 + 13 + 15 trio).
    // ------------------------------------------------------------------
    auto make_gnmt = [] { return harness::makeGnmtWorkload(); };
    const int64_t sens_lo = 10, sens_hi = 210, sens_step = 10;

    // Cold baseline: each bench binary pays its own cold start (two
    // DS2 figure sweeps for fig11/fig15, the GNMT sensitivity series
    // for fig13), nothing shared between them.
    t0 = now();
    harness::FigureSweep f11_cold =
        harness::runFigureSweepScheduled(make_ds2, threads);
    harness::SensitivitySweep f13_cold =
        harness::runSensitivitySweepScheduled(make_gnmt, sens_lo,
                                              sens_hi, sens_step,
                                              threads);
    harness::FigureSweep f15_cold =
        harness::runFigureSweepScheduled(make_ds2, threads);
    double reg_cold_sec = now() - t0;

    // Prime the store: one DS2 figure sweep persists DS2 on all five
    // configurations; the GNMT per-config snapshots stand in for the
    // fig12/fig16 sweeps that share the store in a full bench run
    // (fig13's sensitivity cells are lookup-only and never build).
    // Per-process store path: concurrent bench invocations on one
    // host (parallel CI jobs, two developers) must not clobber each
    // other's files mid-measurement.
    std::error_code store_ec;
    std::filesystem::path store_dir =
        std::filesystem::temp_directory_path(store_ec) /
        csprintf("seqpoint_bench_snapshot_store.%ld",
                 static_cast<long>(::getpid()));
    if (store_ec)
        store_dir = csprintf("bench_snapshot_store.%ld",
                             static_cast<long>(::getpid()));
    std::filesystem::remove_all(store_dir, store_ec);
    double prime_sec;
    {
        harness::SnapshotRegistry prime(store_dir.string());
        t0 = now();
        (void)harness::runFigureSweepScheduled(make_ds2, threads,
                                               &prime);
        for (const auto &cfg : sim::GpuConfig::table2())
            (void)prime.acquire(make_gnmt, cfg, threads);
        prime_sec = now() - t0;
    }

    // Warmed trio: fresh registries on the primed store (a new
    // process per bench, as CI runs them); every cell replays from
    // disk, byte-identical to the cold runs.
    t0 = now();
    harness::SnapshotRegistry warm11(store_dir.string());
    harness::FigureSweep f11_warm =
        harness::runFigureSweepScheduled(make_ds2, threads, &warm11);
    harness::SnapshotRegistry warm13(store_dir.string());
    harness::SensitivitySweep f13_warm =
        harness::runSensitivitySweepScheduled(make_gnmt, sens_lo,
                                              sens_hi, sens_step,
                                              threads, &warm13);
    harness::SnapshotRegistry warm15(store_dir.string());
    harness::FigureSweep f15_warm =
        harness::runFigureSweepScheduled(make_ds2, threads, &warm15);
    double reg_warm_sec = now() - t0;

    bool reg_identical = f11_warm.identicalTo(f11_cold) &&
        f13_warm.identicalTo(f13_cold) &&
        f15_warm.identicalTo(f15_cold);
    bool reg_no_builds = warm11.stats().builds == 0 &&
        warm13.stats().builds == 0 && warm15.stats().builds == 0;
    double sp_reg = reg_cold_sec / reg_warm_sec;
    // Floor: warmed runs replace every simulation with store loads
    // and measure ~2x on the CI container, but the cold side is
    // already the memoized scheduled pipeline, so the margin is
    // load-bound; gate at 1.5x to keep the guard robust on noisy
    // shared runners (exported so CI applies the same contract).
    double reg_floor = 1.5;

    // Count only real snapshot files (.bin), skipping anything that
    // fails to stat and any leftover .tmp from an interrupted writer;
    // file_size(ec) returns uintmax_t(-1) on error, which would
    // otherwise poison store_bytes.
    size_t store_files = 0;
    uintmax_t store_bytes = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(store_dir, store_ec)) {
        if (entry.path().extension() != ".bin")
            continue;
        std::error_code size_ec;
        uintmax_t bytes = entry.file_size(size_ec);
        if (size_ec)
            continue;
        ++store_files;
        store_bytes += bytes;
    }

    Table reg_table({"fig11+13+15 trio", "wall time", "speedup"});
    reg_table.addRow({"cold (one cold start per bench)",
                      csprintf("%.3fs", reg_cold_sec), "1.0x"});
    reg_table.addRow({"store primed (fig11 + GNMT snapshots)",
                      csprintf("%.3fs", prime_sec), "--"});
    reg_table.addRow({csprintf("registry-warmed (%u threads)", threads),
                      csprintf("%.3fs", reg_warm_sec),
                      csprintf("%.1fx", sp_reg)});
    std::printf("%s\n", reg_table.render(csprintf(
        "Snapshot registry: cold benches vs a primed on-disk store "
        "(%zu file(s), %.1f KiB)", store_files,
        static_cast<double>(store_bytes) / 1024.0)).c_str());
    std::printf("registry-warmed results byte-identical to cold: %s\n",
                reg_identical ? "yes" : "NO -- BUG");
    std::printf("warmed pass built nothing (all store hits): %s\n\n",
                reg_no_builds ? "yes" : "NO -- BUG");

    std::filesystem::remove_all(store_dir, store_ec);

    // ------------------------------------------------------------------
    // Part 5: segment-descriptor streams + piecewise replay engine.
    // ------------------------------------------------------------------
    // The blocked-GEMM hit-rate measurement the cache-model
    // validation re-runs per geometry x generator cell, on an
    // L2-like geometry.
    const uint64_t gm = 512, gn = 512, gk = 256;
    const unsigned gtile = 64;
    sim::CacheSim gemm_cache(kib(256), 8, 64);
    sim::SegmentList gemm_segs =
        sim::genBlockedGemmSegments(gm, gn, gk, gtile);
    sim::AccessTrace gemm_trace = gemm_segs.materialize();

    // Legacy path 1: callback generation into the scalar oracle --
    // what measureHitRate() did before this engine.
    EngineResult gemm_scalar = timeEngine([&] {
        gemm_cache.reset();
        sim::genBlockedGemm(gm, gn, gk, gtile,
                            [&](uint64_t a, bool w) {
                                gemm_cache.access(a, w);
                            });
        return gemm_cache.stats();
    });
    // Legacy path 2: the materialized trace through the batched
    // accessBlock scan (the PR 2 fast path; generation pre-paid).
    EngineResult gemm_block = timeEngine([&] {
        gemm_cache.reset();
        gemm_cache.accessBlock(gemm_trace, 0, gemm_trace.size());
        return gemm_cache.stats();
    });
    // Segment engine: O(segments) generation + piecewise replay
    // (generation included -- descriptors are cheap enough to emit
    // per measurement).
    EngineResult gemm_segment = timeEngine([&] {
        return sim::replaySegments(
            gemm_cache, sim::genBlockedGemmSegments(gm, gn, gk, gtile));
    });

    // Pure streaming sweep: the closed-form path accounts the whole
    // stream without touching an address.
    const uint64_t stream_bytes = mib(32);
    const unsigned stream_stride = 16;
    sim::CacheSim stream_cache(kib(256), 8, 64);
    EngineResult stream_scalar = timeEngine([&] {
        stream_cache.reset();
        sim::genStreaming(stream_bytes, stream_stride,
                          [&](uint64_t a, bool w) {
                              stream_cache.access(a, w);
                          });
        return stream_cache.stats();
    });
    EngineResult stream_segment = timeEngine([&] {
        return sim::replaySegments(
            stream_cache,
            sim::genStreamingSegments(stream_bytes, stream_stride));
    });

    bool seg_identical = gemm_segment.stats == gemm_scalar.stats &&
        gemm_block.stats == gemm_scalar.stats &&
        stream_segment.stats == stream_scalar.stats;
    double sp_seg_scalar = gemm_scalar.sec / gemm_segment.sec;
    double sp_seg_block = gemm_block.sec / gemm_segment.sec;
    double sp_stream = stream_scalar.sec / stream_segment.sec;
    double seg_floor = 5.0;

    Table seg_table({"engine", "per measurement", "speedup"});
    seg_table.addRow({"GEMM: callback + scalar oracle",
                      csprintf("%.3fms", 1e3 * gemm_scalar.sec),
                      "1.0x"});
    seg_table.addRow({"GEMM: trace + batched accessBlock",
                      csprintf("%.3fms", 1e3 * gemm_block.sec),
                      csprintf("%.1fx",
                               gemm_scalar.sec / gemm_block.sec)});
    seg_table.addRow({"GEMM: segments + piecewise engine",
                      csprintf("%.3fms", 1e3 * gemm_segment.sec),
                      csprintf("%.1fx", sp_seg_scalar)});
    seg_table.addRow({"stream: callback + scalar oracle",
                      csprintf("%.3fms", 1e3 * stream_scalar.sec),
                      "1.0x"});
    seg_table.addRow({"stream: segments (closed form)",
                      csprintf("%.3fms", 1e3 * stream_segment.sec),
                      csprintf("%.1fx", sp_stream)});
    std::printf("%s\n", seg_table.render(csprintf(
        "Segment replay: blocked GEMM %llux%llux%llu tile %u "
        "(%llu accesses in %zu segments), stream %llu MiB stride %u",
        static_cast<unsigned long long>(gm),
        static_cast<unsigned long long>(gn),
        static_cast<unsigned long long>(gk), gtile,
        static_cast<unsigned long long>(gemm_segs.accesses()),
        gemm_segs.size(),
        static_cast<unsigned long long>(stream_bytes >> 20),
        stream_stride)).c_str());
    std::printf("segment engine bit-identical to scalar oracle: %s\n\n",
                seg_identical ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // Part 6: fault containment under a deterministic fault storm.
    // ------------------------------------------------------------------
    // A 2x2 registry-backed sweep (GNMT + DS2 on configs #1/#2) runs
    // with half its store files corrupted on disk, one snapshot read
    // failing, one persist dropped, and cells (0,1) and (1,0) each
    // throwing on their first attempt. A budget of two retries per
    // cell plus the registry's quarantine-and-rebuild degradation
    // must absorb all of it: the sweep completes with no failed
    // cells, and every result is bit-identical to a clean serial run.
    std::vector<harness::WorkloadFactory> fc_workloads = {
        [] { return harness::makeGnmtWorkload(); },
        [] { return harness::makeDs2Workload(); },
    };
    std::vector<sim::GpuConfig> fc_configs = {
        sim::GpuConfig::config1(), sim::GpuConfig::config2(),
    };

    auto fc_clean = harness::ExperimentScheduler(1).epochSweep(
        fc_workloads, fc_configs);

    // Warm a dedicated store so the storm has files to lose.
    std::filesystem::path fc_store =
        std::filesystem::temp_directory_path(store_ec) /
        csprintf("seqpoint_bench_fault_store.%ld",
                 static_cast<long>(::getpid()));
    if (store_ec)
        fc_store = csprintf("bench_fault_store.%ld",
                            static_cast<long>(::getpid()));
    std::filesystem::remove_all(fc_store, store_ec);
    {
        harness::SnapshotRegistry fc_warm(fc_store.string());
        (void)harness::ExperimentScheduler(threads).epochSweep(
            fc_workloads, fc_configs, fc_warm);
    }

    // Corrupt every other store file (sorted: deterministic choice).
    std::vector<std::string> fc_files;
    for (const auto &entry :
         std::filesystem::directory_iterator(fc_store, store_ec)) {
        if (entry.path().extension() == ".bin")
            fc_files.push_back(entry.path().string());
    }
    std::sort(fc_files.begin(), fc_files.end());
    size_t fc_corrupted = 0;
    for (size_t i = 0; i < fc_files.size(); i += 2)
        fc_corrupted += corruptStoreFile(fc_files[i]);

    auto &fc_inj = FaultInjector::instance();
    fc_inj.reset();
    fc_inj.armAt("scheduler.cell", "0/1", {1}, ErrorCode::Timeout);
    fc_inj.armAt("scheduler.cell", "1/0", {1}, ErrorCode::IoError);
    fc_inj.armAt("snapshot_io.read", "", {1});
    fc_inj.armAt("registry.save", "", {1});

    harness::SnapshotRegistry fc_reg(fc_store.string());
    harness::ExperimentScheduler fc_sched(threads);
    fc_sched.setCellRetries(2);
    fc_sched.setRetryBackoff(0.0);
    std::vector<harness::CellTiming> fc_timings;
    setQuietLogging(true); // the storm's warnings are expected noise
    t0 = now();
    auto fc_storm = fc_sched.epochSweep(fc_workloads, fc_configs,
                                        fc_reg, &fc_timings);
    double fc_sec = now() - t0;
    setQuietLogging(false);

    bool fc_completed =
        fc_storm.size() == fc_workloads.size() * fc_configs.size();
    size_t fc_failed = 0, fc_retried = 0;
    for (const harness::CellTiming &t : fc_timings) {
        fc_failed += t.outcome.failed;
        fc_retried += t.outcome.attempts > 1;
    }
    bool fc_identical = cellsIdentical(fc_storm, fc_clean);
    uint64_t fc_quarantines = fc_reg.stats().quarantines;
    uint64_t fc_cell_fired = fc_inj.fired("scheduler.cell");
    uint64_t fc_read_fired = fc_inj.fired("snapshot_io.read");
    uint64_t fc_save_fired = fc_inj.fired("registry.save");
    fc_inj.reset();

    Table fc_table({"cell", "attempts", "outcome"});
    for (size_t i = 0; i < fc_storm.size(); ++i) {
        fc_table.addRow({
            csprintf("%s/%s", fc_storm[i].workload.c_str(),
                     fc_storm[i].config.c_str()),
            csprintf("%u", fc_timings[i].outcome.attempts),
            fc_timings[i].outcome.failed
                ? csprintf("FAILED: %s",
                           fc_timings[i].outcome.error.c_str())
                : std::string("ok")});
    }
    std::printf("%s\n", fc_table.render(csprintf(
        "Fault containment: 2x2 sweep under a fault storm "
        "(%zu store file(s) corrupted, %llu cell fault(s), "
        "%llu read fault(s), %llu dropped persist(s); %.3fs)",
        fc_corrupted,
        static_cast<unsigned long long>(fc_cell_fired),
        static_cast<unsigned long long>(fc_read_fired),
        static_cast<unsigned long long>(fc_save_fired),
        fc_sec)).c_str());
    std::printf("faulted sweep completed with no failed cells: %s\n",
                fc_completed && fc_failed == 0 ? "yes" : "NO -- BUG");
    std::printf("faulted sweep bit-identical to clean serial run: %s\n",
                fc_identical ? "yes" : "NO -- BUG");
    std::printf("corrupted store files quarantined and rebuilt: %s\n\n",
                fc_quarantines >= fc_corrupted ? "yes" : "NO -- BUG");

    std::filesystem::remove_all(fc_store, store_ec);

    // ------------------------------------------------------------------
    // Part 7: warm closed-form replay tier (steady state).
    // ------------------------------------------------------------------
    // A blocked GEMM whose whole footprint fits the cache: after the
    // first round every segment is fully resident, so the tier
    // ladder's warm closed form carries all subsequent rounds.
    const uint64_t wm = 128, wn = 128, wk = 64;
    const unsigned wtile = 32;
    sim::SegmentList warm_segs =
        sim::genBlockedGemmSegments(wm, wn, wk, wtile);
    sim::AccessTrace warm_trace = warm_segs.materialize();

    // Identity first: a fixed number of rounds through the scalar
    // oracle, the PR 5 engine (warm tier off, scalar probes) and the
    // tier ladder, comparing statistics AND the full final cache
    // state (tags, LRU clocks, dirty bits) -- the warm tier writes
    // its lastUse stamps arithmetically, so the clocks themselves
    // are the contract.
    const int warm_check_rounds = 4;
    sim::CacheSim warm_oracle(kib(256), 8, 64);
    sim::CacheSim warm_legacy(kib(256), 8, 64);
    sim::CacheSim warm_tiered(kib(256), 8, 64);
    warm_legacy.setProbeKernel(sim::CacheSim::ProbeKernel::Scalar);
    sim::ReplayOptions warm_off;
    warm_off.warmTier = false;
    for (int round = 0; round < warm_check_rounds; ++round) {
        for (size_t i = 0; i < warm_trace.size(); ++i)
            warm_oracle.access(warm_trace.addr(i),
                               warm_trace.isWrite(i));
        sim::replaySegmentsResume(warm_legacy, warm_segs, warm_off);
        sim::replaySegmentsResume(warm_tiered, warm_segs);
    }
    auto same_state = [](const sim::CacheSim &a,
                         const sim::CacheSim &b) {
        sim::CacheSetState sa = a.snapshotState();
        sim::CacheSetState sb = b.snapshotState();
        return a.stats() == b.stats() && sa.useClock == sb.useClock &&
            sa.tags == sb.tags && sa.lastUse == sb.lastUse &&
            sa.flags == sb.flags;
    };
    bool warm_identical = same_state(warm_tiered, warm_oracle) &&
        same_state(warm_legacy, warm_oracle);
    sim::ReplayTierCounters warm_tiers = warm_tiered.stats().tiers;

    // Timing: steady-state rounds on a persistent cache (no restore
    // in the timed loop -- restoring would retire the residency
    // summaries the warm tier reads). One installing round, then
    // per-round time averaged over enough repetitions to be stable.
    auto time_rounds = [&](sim::CacheSim &cache,
                           const sim::ReplayOptions &opts) {
        sim::replaySegmentsResume(cache, warm_segs, opts);
        double s0 = now();
        sim::replaySegmentsResume(cache, warm_segs, opts);
        double once = std::max(now() - s0, 1e-9);
        unsigned reps = once >= 0.3
            ? 1 : static_cast<unsigned>(0.3 / once) + 1;
        s0 = now();
        for (unsigned i = 0; i < reps; ++i)
            sim::replaySegmentsResume(cache, warm_segs, opts);
        return (now() - s0) / reps;
    };
    sim::CacheSim legacy_cache(kib(256), 8, 64);
    legacy_cache.setProbeKernel(sim::CacheSim::ProbeKernel::Scalar);
    double warm_legacy_sec = time_rounds(legacy_cache, warm_off);
    sim::CacheSim tiered_cache(kib(256), 8, 64);
    double warm_tiered_sec = time_rounds(tiered_cache,
                                         sim::ReplayOptions{});

    double sp_warm = warm_legacy_sec / warm_tiered_sec;
    double warm_floor = 2.0;
    bool warm_engaged = warm_tiers.warmSegments > 0;

    Table warm_table({"engine", "per round", "speedup"});
    warm_table.addRow({"PR 5 segment engine (scalar probes)",
                       csprintf("%.3fms", 1e3 * warm_legacy_sec),
                       "1.0x"});
    warm_table.addRow({csprintf("tier ladder (%s probe kernel)",
                                sim::CacheSim::simdProbeSupported()
                                    ? "SIMD" : "scalar"),
                       csprintf("%.3fms", 1e3 * warm_tiered_sec),
                       csprintf("%.1fx", sp_warm)});
    std::printf("%s\n", warm_table.render(csprintf(
        "Warm replay: blocked GEMM %llux%llux%llu tile %u resident "
        "re-walks (%llu accesses in %zu segments; tiers "
        "cold/warm/line-run %llu/%llu/%llu)",
        static_cast<unsigned long long>(wm),
        static_cast<unsigned long long>(wn),
        static_cast<unsigned long long>(wk), wtile,
        static_cast<unsigned long long>(warm_segs.accesses()),
        warm_segs.size(),
        static_cast<unsigned long long>(warm_tiers.coldSegments),
        static_cast<unsigned long long>(warm_tiers.warmSegments),
        static_cast<unsigned long long>(
            warm_tiers.lineRunSegments))).c_str());
    std::printf("tier ladder bit-identical to scalar oracle "
                "(stats + final state): %s\n",
                warm_identical ? "yes" : "NO -- BUG");
    std::printf("warm tier engaged on the steady state: %s\n\n",
                warm_engaged ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // JSON report.
    // ------------------------------------------------------------------
    FILE *f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    // The CI bench guard gates on the keys below; the markers keep
    // the guard and this export mirrored (seqpoint_lint rule 4).
    // BENCH_GATE: bit_identical speedup_replay speedup_replay_parallel
    // BENCH_GATE: identical hw_threads speedup speedup_floor
    // BENCH_GATE: warmed_without_builds
    // BENCH_GATE: completed failed_cells quarantines corrupted_files
    // BENCH_GATE: retried_cells warm_segments
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", wl.name.c_str());
    std::fprintf(f, "  \"epochs\": %u,\n", epochs);
    std::fprintf(f, "  \"iterations\": %zu,\n", total_iters);
    std::fprintf(f, "  \"unique_sls\": %zu,\n", uniqueSls(baseline));
    std::fprintf(f, "  \"sweep_threads\": %u,\n", threads);
    std::fprintf(f, "  \"baseline_sec\": %.6f,\n", baseline.wallSec);
    std::fprintf(f, "  \"pr1_memoized_sec\": %.6f,\n", pr1.wallSec);
    std::fprintf(f, "  \"replay_sec\": %.6f,\n", replay.wallSec);
    std::fprintf(f, "  \"replay_parallel_sec\": %.6f,\n",
                 replay_par.wallSec);
    std::fprintf(f, "  \"speedup_pr1_memoized\": %.2f,\n", sp_pr1);
    std::fprintf(f, "  \"speedup_replay\": %.2f,\n", sp_replay);
    std::fprintf(f, "  \"speedup_replay_parallel\": %.2f,\n",
                 sp_replay_par);
    std::fprintf(f, "  \"bit_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"scheduler\": {\n");
    std::fprintf(f, "    \"hw_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "    \"workloads\": %zu,\n", workloads.size());
    std::fprintf(f, "    \"configs\": %zu,\n", configs.size());
    std::fprintf(f, "    \"serial_sec\": %.6f,\n", serial_sec);
    std::fprintf(f, "    \"parallel_sec\": %.6f,\n", parallel_sec);
    std::fprintf(f, "    \"speedup\": %.2f,\n", sp_sched);
    std::fprintf(f, "    \"identical\": %s,\n",
                 sweep_identical ? "true" : "false");
    std::fprintf(f, "    \"cells\": [\n");
    for (size_t i = 0; i < parallel_cells.size(); ++i) {
        std::fprintf(f,
                     "      {\"workload\": \"%s\", \"config\": \"%s\", "
                     "\"serial_sec\": %.6f, \"parallel_sec\": %.6f, "
                     "\"parallel_setup_sec\": %.6f, "
                     "\"parallel_eval_sec\": %.6f, "
                     "\"outcome\": {\"failed\": %s, \"attempts\": %u, "
                     "\"error\": \"%s\"}}%s\n",
                     parallel_cells[i].workload.c_str(),
                     parallel_cells[i].config.c_str(),
                     serial_times[i].totalSec,
                     parallel_times[i].totalSec,
                     parallel_times[i].setupSec,
                     parallel_times[i].evalSec(),
                     parallel_times[i].outcome.failed ? "true"
                                                     : "false",
                     parallel_times[i].outcome.attempts,
                     jsonEscape(parallel_times[i].outcome.error).c_str(),
                     i + 1 < parallel_cells.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"fig_sweep\": {\n");
    std::fprintf(f, "    \"workload\": \"DS2\",\n");
    std::fprintf(f, "    \"figures\": \"fig11+fig15\",\n");
    std::fprintf(f, "    \"configs\": 5,\n");
    std::fprintf(f, "    \"threads\": %u,\n", threads);
    std::fprintf(f, "    \"serial_sec\": %.6f,\n", fig_serial_sec);
    std::fprintf(f, "    \"scheduled_sec\": %.6f,\n", fig_sched_sec);
    std::fprintf(f, "    \"speedup\": %.2f,\n", sp_fig);
    std::fprintf(f, "    \"speedup_floor\": %.2f,\n", fig_floor);
    std::fprintf(f, "    \"identical\": %s\n",
                 fig_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"snapshot_registry\": {\n");
    std::fprintf(f, "    \"benches\": \"fig11+fig13+fig15\",\n");
    std::fprintf(f, "    \"format_version\": %u,\n",
                 harness::kSnapshotFormatVersion);
    std::fprintf(f, "    \"threads\": %u,\n", threads);
    std::fprintf(f, "    \"cold_sec\": %.6f,\n", reg_cold_sec);
    std::fprintf(f, "    \"prime_sec\": %.6f,\n", prime_sec);
    std::fprintf(f, "    \"warmed_sec\": %.6f,\n", reg_warm_sec);
    std::fprintf(f, "    \"speedup\": %.2f,\n", sp_reg);
    std::fprintf(f, "    \"speedup_floor\": %.2f,\n", reg_floor);
    std::fprintf(f, "    \"store_files\": %zu,\n", store_files);
    std::fprintf(f, "    \"store_bytes\": %llu,\n",
                 static_cast<unsigned long long>(store_bytes));
    std::fprintf(f, "    \"warmed_without_builds\": %s,\n",
                 reg_no_builds ? "true" : "false");
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 reg_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"segment_replay\": {\n");
    std::fprintf(f, "    \"gemm\": \"%llux%llux%llu tile %u\",\n",
                 static_cast<unsigned long long>(gm),
                 static_cast<unsigned long long>(gn),
                 static_cast<unsigned long long>(gk), gtile);
    std::fprintf(f, "    \"gemm_accesses\": %llu,\n",
                 static_cast<unsigned long long>(gemm_segs.accesses()));
    std::fprintf(f, "    \"gemm_segments\": %zu,\n", gemm_segs.size());
    std::fprintf(f, "    \"gemm_scalar_sec\": %.6f,\n",
                 gemm_scalar.sec);
    std::fprintf(f, "    \"gemm_block_sec\": %.6f,\n", gemm_block.sec);
    std::fprintf(f, "    \"gemm_segment_sec\": %.6f,\n",
                 gemm_segment.sec);
    std::fprintf(f, "    \"speedup\": %.2f,\n", sp_seg_scalar);
    std::fprintf(f, "    \"speedup_vs_block\": %.2f,\n", sp_seg_block);
    std::fprintf(f, "    \"speedup_floor\": %.2f,\n", seg_floor);
    std::fprintf(f, "    \"stream_scalar_sec\": %.6f,\n",
                 stream_scalar.sec);
    std::fprintf(f, "    \"stream_segment_sec\": %.6f,\n",
                 stream_segment.sec);
    std::fprintf(f, "    \"stream_speedup\": %.2f,\n", sp_stream);
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 seg_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"warm_replay\": {\n");
    std::fprintf(f, "    \"gemm\": \"%llux%llux%llu tile %u\",\n",
                 static_cast<unsigned long long>(wm),
                 static_cast<unsigned long long>(wn),
                 static_cast<unsigned long long>(wk), wtile);
    std::fprintf(f, "    \"accesses\": %llu,\n",
                 static_cast<unsigned long long>(warm_segs.accesses()));
    std::fprintf(f, "    \"segments\": %zu,\n", warm_segs.size());
    std::fprintf(f, "    \"check_rounds\": %d,\n", warm_check_rounds);
    std::fprintf(f, "    \"simd_probe\": %s,\n",
                 sim::CacheSim::simdProbeSupported() ? "true"
                                                     : "false");
    std::fprintf(f, "    \"legacy_sec\": %.6f,\n", warm_legacy_sec);
    std::fprintf(f, "    \"tiered_sec\": %.6f,\n", warm_tiered_sec);
    std::fprintf(f, "    \"speedup\": %.2f,\n", sp_warm);
    std::fprintf(f, "    \"speedup_floor\": %.2f,\n", warm_floor);
    std::fprintf(f, "    \"cold_segments\": %llu,\n",
                 static_cast<unsigned long long>(
                     warm_tiers.coldSegments));
    std::fprintf(f, "    \"warm_segments\": %llu,\n",
                 static_cast<unsigned long long>(
                     warm_tiers.warmSegments));
    std::fprintf(f, "    \"line_run_segments\": %llu,\n",
                 static_cast<unsigned long long>(
                     warm_tiers.lineRunSegments));
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 warm_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"fault_containment\": {\n");
    std::fprintf(f, "    \"grid\": \"GNMT+DS2 x config1+config2\",\n");
    std::fprintf(f, "    \"cell_retries\": 2,\n");
    std::fprintf(f, "    \"corrupted_files\": %zu,\n", fc_corrupted);
    std::fprintf(f, "    \"quarantines\": %llu,\n",
                 static_cast<unsigned long long>(fc_quarantines));
    std::fprintf(f, "    \"cell_faults_fired\": %llu,\n",
                 static_cast<unsigned long long>(fc_cell_fired));
    std::fprintf(f, "    \"read_faults_fired\": %llu,\n",
                 static_cast<unsigned long long>(fc_read_fired));
    std::fprintf(f, "    \"dropped_persists\": %llu,\n",
                 static_cast<unsigned long long>(fc_save_fired));
    std::fprintf(f, "    \"retried_cells\": %zu,\n", fc_retried);
    std::fprintf(f, "    \"failed_cells\": %zu,\n", fc_failed);
    std::fprintf(f, "    \"storm_sec\": %.6f,\n", fc_sec);
    std::fprintf(f, "    \"completed\": %s,\n",
                 fc_completed ? "true" : "false");
    std::fprintf(f, "    \"bit_identical\": %s,\n",
                 fc_identical ? "true" : "false");
    std::fprintf(f, "    \"cells\": [\n");
    for (size_t i = 0; i < fc_storm.size(); ++i) {
        std::fprintf(f,
                     "      {\"workload\": \"%s\", \"config\": \"%s\", "
                     "\"failed\": %s, \"attempts\": %u, "
                     "\"error\": \"%s\"}%s\n",
                     fc_storm[i].workload.c_str(),
                     fc_storm[i].config.c_str(),
                     fc_timings[i].outcome.failed ? "true" : "false",
                     fc_timings[i].outcome.attempts,
                     jsonEscape(fc_timings[i].outcome.error).c_str(),
                     i + 1 < fc_storm.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);

    // The engine contract: the unique-SL replay engine must beat the
    // PR 1 baseline by at least 5x with bit-identical logs, and the
    // parallel scheduler merge must match the serial sweep. Gate on
    // the better replay mode: on single-core or heavily shared
    // runners the sweep pool adds overhead it cannot recoup, which
    // says nothing about the engine.
    double best = std::max(sp_replay, sp_replay_par);
    if (!identical || !sweep_identical || best < 5.0) {
        std::fprintf(stderr, "FAIL: replay speedup %.2fx (need >= 5x), "
                     "identical=%d, scheduler identical=%d\n", best,
                     identical, sweep_identical);
        return 1;
    }

    // Figure-pipeline contract: byte-identity always; speedup at or
    // above the host's floor (computed above, exported in the JSON).
    if (!fig_identical || sp_fig < fig_floor) {
        std::fprintf(stderr, "FAIL: figure-pipeline speedup %.2fx "
                     "(need >= %.1fx), identical=%d\n", sp_fig,
                     fig_floor, fig_identical);
        return 1;
    }

    // Snapshot-registry contract: the warmed trio is byte-identical
    // to the cold one, replays entirely from the store (no builds),
    // and beats the cold trio by the floor (warmed runs skip every
    // epoch/autotune/timing simulation, so this holds on any core
    // count).
    if (!reg_identical || !reg_no_builds || sp_reg < reg_floor) {
        std::fprintf(stderr, "FAIL: snapshot-registry speedup %.2fx "
                     "(need >= %.1fx), identical=%d, no_builds=%d\n",
                     sp_reg, reg_floor, reg_identical, reg_no_builds);
        return 1;
    }

    // Segment-replay contract: the piecewise engine is bit-identical
    // to the scalar oracle and beats the callback-plus-scalar path
    // by >= 5x on the blocked-GEMM hit-rate measurement.
    if (!seg_identical || sp_seg_scalar < seg_floor) {
        std::fprintf(stderr, "FAIL: segment-replay speedup %.2fx "
                     "(need >= %.1fx), identical=%d\n", sp_seg_scalar,
                     seg_floor, seg_identical);
        return 1;
    }

    // Fault-containment contract: the storm-ridden sweep completes
    // with every cell converged (no failures after retries), its
    // results bit-identical to the clean serial run, the corrupted
    // store files quarantined instead of adopted or fatal, and both
    // injected cell faults actually absorbed by retries.
    if (!fc_completed || fc_failed != 0 || !fc_identical ||
        fc_quarantines < fc_corrupted || fc_retried < 2) {
        std::fprintf(stderr, "FAIL: fault containment: completed=%d, "
                     "failed_cells=%zu, identical=%d, quarantines=%llu "
                     "(corrupted %zu), retried_cells=%zu (need >= 2)\n",
                     fc_completed, fc_failed, fc_identical,
                     static_cast<unsigned long long>(fc_quarantines),
                     fc_corrupted, fc_retried);
        return 1;
    }

    // Warm-tier contract: the tier ladder is bit-identical to the
    // scalar oracle in statistics and final state, the warm closed
    // form actually engages on the steady state, and the
    // steady-state round beats the PR 5 engine by >= 2x.
    if (!warm_identical || !warm_engaged || sp_warm < warm_floor) {
        std::fprintf(stderr, "FAIL: warm-replay speedup %.2fx "
                     "(need >= %.1fx), identical=%d, "
                     "warm_segments=%llu\n", sp_warm, warm_floor,
                     warm_identical,
                     static_cast<unsigned long long>(
                         warm_tiers.warmSegments));
        return 1;
    }
    return 0;
}
