/**
 * @file
 * Regenerates Fig 15: error (percentage points) in projecting DS2's
 * throughput uplift between config pairs, per selector, via the
 * scheduler-backed figure pipeline (see fig11).
 */

#include "support.hh"

using namespace seqpoint;

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    harness::FigureSweep sweep = bench::runFigureSweep(
        [] { return harness::makeDs2Workload(); }, opts);
    double geo = bench::printSpeedupErrorFigure(sweep,
        "Fig 15: error in performance speedup projections for DS2");
    bench::paperNote(csprintf(
        "paper geomean for SeqPoint: 0.13pp; measured here: %.2fpp. "
        "Paper: worst up to 27pp; frequent/median within ~2.5pp; "
        "prior good except the #4->#1 pair (25pp).", geo));
    return 0;
}
