/**
 * @file
 * Regenerates Fig 15: error (percentage points) in projecting DS2's
 * throughput uplift between config pairs, per selector.
 */

#include "support.hh"

using namespace seqpoint;

int
main()
{
    harness::Experiment exp(harness::makeDs2Workload());
    double geo = bench::printSpeedupErrorFigure(exp,
        "Fig 15: error in performance speedup projections for DS2");
    bench::paperNote(csprintf(
        "paper geomean for SeqPoint: 0.13pp; measured here: %.2fpp. "
        "Paper: worst up to 27pp; frequent/median within ~2.5pp; "
        "prior good except the #4->#1 pair (25pp).", geo));
    return 0;
}
