/**
 * @file
 * Regenerates Fig 9: iteration runtime versus sequence length for
 * GNMT and DS2 -- near-linear, which makes runtime a good proxy for
 * the execution profile and supports bin-average representative
 * selection.
 */

#include <cstdio>

#include "common/stats_math.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

void
emit(harness::Experiment &exp, int64_t lo, int64_t hi, int64_t step)
{
    auto cfg1 = sim::GpuConfig::config1();

    std::vector<double> xs, ys;
    Table table({"SL", "iteration time (ms)", "normalized"});
    double t_lo = exp.iterTime(cfg1, lo);
    for (int64_t sl = lo; sl <= hi; sl += step) {
        double t = exp.iterTime(cfg1, sl);
        xs.push_back(static_cast<double>(sl));
        ys.push_back(t);
        table.addRow({csprintf("%lld", (long long)sl),
                      csprintf("%.2f", t * 1e3),
                      csprintf("%.2f", t / t_lo)});
    }
    LinearFit fit = fitLine(xs, ys);
    std::printf("%s\n", table.render(csprintf(
        "Fig 9 (%s): runtime vs sequence length",
        exp.workload().name.c_str())).c_str());
    std::printf("linear fit: slope %.3g ms/SL, intercept %.3g ms, "
                "R^2 = %.4f\n\n",
                fit.slope * 1e3, fit.intercept * 1e3, fit.r2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(opts);

    harness::Experiment gnmt(harness::makeGnmtWorkload());
    harness::Experiment ds2(harness::makeDs2Workload());

    // Adopt reference-config cold starts the snapshot store already
    // holds (lookup-only; a cold store changes nothing).
    auto cfg1 = sim::GpuConfig::config1();
    bench::adoptCachedSnapshot(registry.get(), gnmt, cfg1);
    bench::adoptCachedSnapshot(registry.get(), ds2, cfg1);

    emit(gnmt, 10, 210, 10);
    emit(ds2, 60, 440, 20);

    bench::paperNote("runtime grows near-linearly with SL for both "
                     "networks (R^2 close to 1).");
    return 0;
}
