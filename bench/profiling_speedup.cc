/**
 * @file
 * Regenerates the section VI-F profiling-speedup numbers: how much
 * less work profiling only the SeqPoints is than profiling a full
 * epoch -- as an iteration-count reduction (the paper's 40x / 72x)
 * and as measured time, sequential and parallel (the paper's 214x /
 * 345x for the parallel case).
 */

#include <algorithm>
#include <cstdio>

#include "common/table.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

void
emit(Table &table, harness::Experiment &exp)
{
    auto cfg1 = sim::GpuConfig::config1();
    auto sp = exp.buildSelection(core::SelectorKind::SeqPoint, cfg1);

    double epoch = exp.actualTrainSec(cfg1);
    size_t iters = exp.epochLog(cfg1).numIterations();

    double sum_t = 0.0, max_t = 0.0;
    for (const auto &p : sp.points) {
        double t = exp.iterTime(cfg1, p.seqLen);
        sum_t += t;
        max_t = std::max(max_t, t);
    }

    table.addRow({exp.workload().name,
                  csprintf("%zu", iters),
                  csprintf("%zu", sp.points.size()),
                  csprintf("%.0fx", static_cast<double>(iters) /
                           static_cast<double>(sp.points.size())),
                  csprintf("%.0fx", epoch / sum_t),
                  csprintf("%.0fx", epoch / max_t)});
}

} // anonymous namespace

int
main()
{
    harness::Experiment gnmt(harness::makeGnmtWorkload());
    harness::Experiment ds2(harness::makeDs2Workload());

    Table table({"network", "epoch iterations", "SeqPoints",
                 "iteration reduction", "time reduction (sequential)",
                 "time reduction (parallel)"});
    emit(table, gnmt);
    emit(table, ds2);

    std::printf("%s\n", table.render(
        "Section VI-F: profiling-cost reduction from running only the "
        "SeqPoints").c_str());

    bench::paperNote("paper: 40x (GNMT) and 72x (DS2) fewer "
                     "iterations; 214x and 345x when SeqPoints run in "
                     "parallel on separate machines.");
    return 0;
}
