/**
 * @file
 * Profiling-cost benches.
 *
 * Part 1 regenerates the section VI-F numbers: how much less work
 * profiling only the SeqPoints is than profiling a full epoch -- as
 * an iteration-count reduction (the paper's 40x / 72x) and as
 * measured time, sequential and parallel (the paper's 214x / 345x).
 *
 * Part 2 measures the profiling *engine* itself on a GNMT-style
 * multi-epoch profile sweep: the serial uncached baseline
 * (re-simulate every kernel of every iteration) against the
 * kernel-memoized engine, serial and with the parallel per-SL sweep.
 * Results are checked bit-identical across modes and written to a
 * JSON report (default BENCH_profiling.json, argv[1] overrides).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "common/table.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

void
emitPaperTable(Table &table, harness::Experiment &exp)
{
    auto cfg1 = sim::GpuConfig::config1();
    auto sp = exp.buildSelection(core::SelectorKind::SeqPoint, cfg1);

    double epoch = exp.actualTrainSec(cfg1);
    size_t iters = exp.epochLog(cfg1).numIterations();

    double sum_t = 0.0, max_t = 0.0;
    for (const auto &p : sp.points) {
        double t = exp.iterTime(cfg1, p.seqLen);
        sum_t += t;
        max_t = std::max(max_t, t);
    }

    table.addRow({exp.workload().name,
                  csprintf("%zu", iters),
                  csprintf("%zu", sp.points.size()),
                  csprintf("%.0fx", static_cast<double>(iters) /
                           static_cast<double>(sp.points.size())),
                  csprintf("%.0fx", epoch / sum_t),
                  csprintf("%.0fx", epoch / max_t)});
}

/** One engine mode of the multi-epoch sweep. */
struct SweepResult {
    double wallSec = 0.0;               ///< Measured wall time.
    std::vector<prof::TrainLog> logs;   ///< One log per epoch.
    sim::TimingCacheStats cacheStats;   ///< Kernel-cache accounting.
    size_t uniqueKernels = 0;           ///< Distinct signatures timed.
};

/**
 * Run `epochs` training epochs (fresh shuffle seed per epoch, as a
 * hardware sweep re-profiling the same workload would).
 */
SweepResult
runSweep(const harness::Workload &wl, unsigned epochs, bool memoize,
         bool timing_cache, unsigned threads)
{
    sim::Gpu gpu(sim::GpuConfig::config1(), timing_cache);

    prof::TrainConfig tc;
    tc.batchSize = wl.batchSize;
    tc.policy = wl.policy;
    tc.evalCostMultiplier = wl.evalCostMultiplier;
    tc.memoizeProfiles = memoize;
    tc.profileThreads = threads;
    // This bench measures the PR 1 per-iteration memo-probe engine;
    // the unique-SL replay generation is measured (and gated) by
    // bench_epoch_replay_speedup.
    tc.uniqueSlReplay = false;

    SweepResult res;
    auto start = std::chrono::steady_clock::now();
    for (unsigned e = 0; e < epochs; ++e) {
        tc.seed = wl.seed + e;
        res.logs.push_back(
            prof::runTrainingEpoch(gpu, wl.model, wl.dataset, tc));
    }
    auto end = std::chrono::steady_clock::now();
    res.wallSec = std::chrono::duration<double>(end - start).count();
    res.cacheStats = gpu.timingCacheStats();
    res.uniqueKernels = gpu.uniqueKernelsTimed();
    return res;
}

/** Bit-exact comparison of two epoch-log sequences. */
bool
sweepsIdentical(const SweepResult &a, const SweepResult &b)
{
    if (a.logs.size() != b.logs.size())
        return false;
    for (size_t e = 0; e < a.logs.size(); ++e) {
        const prof::TrainLog &la = a.logs[e];
        const prof::TrainLog &lb = b.logs[e];
        if (la.numIterations() != lb.numIterations() ||
            la.trainSec != lb.trainSec || la.evalSec != lb.evalSec ||
            la.autotuneSec != lb.autotuneSec)
            return false;
        const sim::PerfCounters &ca = la.counters;
        const sim::PerfCounters &cb = lb.counters;
        if (ca.kernelsLaunched != cb.kernelsLaunched ||
            ca.valuInsts != cb.valuInsts ||
            ca.saluInsts != cb.saluInsts ||
            ca.bytesLoaded != cb.bytesLoaded ||
            ca.bytesStored != cb.bytesStored ||
            ca.l1HitBytes != cb.l1HitBytes ||
            ca.l2HitBytes != cb.l2HitBytes ||
            ca.dramBytes != cb.dramBytes ||
            ca.writeStallSec != cb.writeStallSec ||
            ca.busySec != cb.busySec || ca.launchSec != cb.launchSec)
            return false;
        for (size_t i = 0; i < la.iterations.size(); ++i) {
            if (la.iterations[i].seqLen != lb.iterations[i].seqLen ||
                la.iterations[i].timeSec != lb.iterations[i].timeSec)
                return false;
        }
    }
    return true;
}

size_t
uniqueSls(const SweepResult &r)
{
    std::set<int64_t> sls;
    for (const prof::TrainLog &log : r.logs)
        for (const prof::IterationLog &it : log.iterations)
            sls.insert(it.seqLen);
    return sls.size();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *json_path = argc > 1 ? argv[1] : "BENCH_profiling.json";

    // ------------------------------------------------------------------
    // Part 1: the paper's profiling-cost reduction (section VI-F).
    // ------------------------------------------------------------------
    harness::Experiment gnmt(harness::makeGnmtWorkload());
    harness::Experiment ds2(harness::makeDs2Workload());

    Table table({"network", "epoch iterations", "SeqPoints",
                 "iteration reduction", "time reduction (sequential)",
                 "time reduction (parallel)"});
    emitPaperTable(table, gnmt);
    emitPaperTable(table, ds2);

    std::printf("%s\n", table.render(
        "Section VI-F: profiling-cost reduction from running only the "
        "SeqPoints").c_str());

    bench::paperNote("paper: 40x (GNMT) and 72x (DS2) fewer "
                     "iterations; 214x and 345x when SeqPoints run in "
                     "parallel on separate machines.");

    // ------------------------------------------------------------------
    // Part 2: profiling-engine speedup on a GNMT-style multi-epoch
    // sweep.
    // ------------------------------------------------------------------
    const unsigned epochs = 6;
    // Enough threads to engage the pool without oversubscribing small
    // CI runners.
    const unsigned threads = std::max(2u,
        std::thread::hardware_concurrency());
    harness::Workload wl = harness::makeGnmtWorkload();

    SweepResult serial = runSweep(wl, epochs, /*memoize=*/false,
                                  /*timing_cache=*/false,
                                  /*threads=*/1);
    SweepResult memo = runSweep(wl, epochs, true, true, 1);
    SweepResult par = runSweep(wl, epochs, true, true, threads);

    bool identical = sweepsIdentical(serial, memo) &&
        sweepsIdentical(serial, par);

    size_t total_iters = 0;
    for (const prof::TrainLog &log : serial.logs)
        total_iters += log.numIterations();

    double sp_memo = serial.wallSec / memo.wallSec;
    double sp_par = serial.wallSec / par.wallSec;

    Table engine({"engine", "wall time", "speedup", "kernel-cache hits",
                  "hit rate", "unique kernels"});
    engine.addRow({"serial uncached", csprintf("%.3fs", serial.wallSec),
                   "1.0x", "-", "-", "-"});
    engine.addRow({"memoized", csprintf("%.3fs", memo.wallSec),
                   csprintf("%.1fx", sp_memo),
                   csprintf("%llu", static_cast<unsigned long long>(
                       memo.cacheStats.hits)),
                   csprintf("%.1f%%", 100.0 * memo.cacheStats.hitRate()),
                   csprintf("%zu", memo.uniqueKernels)});
    engine.addRow({"memoized + parallel", csprintf("%.3fs", par.wallSec),
                   csprintf("%.1fx", sp_par),
                   csprintf("%llu", static_cast<unsigned long long>(
                       par.cacheStats.hits)),
                   csprintf("%.1f%%", 100.0 * par.cacheStats.hitRate()),
                   csprintf("%zu", par.uniqueKernels)});
    std::printf("%s\n", engine.render(csprintf(
        "Profiling engine: GNMT x%u epochs (%zu iterations, %zu "
        "unique SLs), %u sweep threads", epochs, total_iters,
        uniqueSls(serial), threads)).c_str());

    std::printf("profile output bit-identical across engines: %s\n\n",
                identical ? "yes" : "NO -- BUG");

    // ------------------------------------------------------------------
    // JSON report. The CI bench guard gates on the keys below; the
    // marker keeps the guard and this export mirrored (seqpoint_lint
    // rule 4).
    // BENCH_GATE: bit_identical speedup_memoized
    // ------------------------------------------------------------------
    FILE *f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n", wl.name.c_str());
    std::fprintf(f, "  \"epochs\": %u,\n", epochs);
    std::fprintf(f, "  \"iterations\": %zu,\n", total_iters);
    std::fprintf(f, "  \"unique_sls\": %zu,\n", uniqueSls(serial));
    std::fprintf(f, "  \"sweep_threads\": %u,\n", threads);
    std::fprintf(f, "  \"serial_uncached_sec\": %.6f,\n", serial.wallSec);
    std::fprintf(f, "  \"memoized_sec\": %.6f,\n", memo.wallSec);
    std::fprintf(f, "  \"memoized_parallel_sec\": %.6f,\n", par.wallSec);
    std::fprintf(f, "  \"speedup_memoized\": %.2f,\n", sp_memo);
    std::fprintf(f, "  \"speedup_memoized_parallel\": %.2f,\n", sp_par);
    // Cache accounting from the serial memoized run: the parallel
    // run's counters are race-dependent (concurrent misses and
    // autotune probes both compute outside the lock), and this file
    // is a committed artifact that should not churn across runs.
    std::fprintf(f, "  \"kernel_cache_hits\": %llu,\n",
                 static_cast<unsigned long long>(memo.cacheStats.hits));
    std::fprintf(f, "  \"kernel_cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(memo.cacheStats.misses));
    std::fprintf(f, "  \"kernel_cache_hit_rate\": %.4f,\n",
                 memo.cacheStats.hitRate());
    std::fprintf(f, "  \"unique_kernels_timed\": %zu,\n",
                 memo.uniqueKernels);
    std::fprintf(f, "  \"bit_identical\": %s\n",
                 identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);

    // The engine contract: with the kernel cache and thread pool
    // enabled, the sweep must be at least 3x the serial uncached
    // baseline with bit-identical output. Gate on the better of the
    // two memoized modes: on single-core or heavily shared runners
    // the pool adds overhead it cannot recoup, which says nothing
    // about the engine.
    double best = std::max(sp_memo, sp_par);
    if (!identical || best < 3.0) {
        std::fprintf(stderr, "FAIL: speedup %.2fx (need >= 3x), "
                     "identical=%d\n", best, identical);
        return 1;
    }
    return 0;
}
