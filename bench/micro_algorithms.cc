/**
 * @file
 * google-benchmark microbenchmarks for the SeqPoint core algorithms:
 * SL-stat construction, binning, the full refinement loop, k-means,
 * and the baseline selectors. These quantify the (tiny) analysis cost
 * the methodology adds on top of the single profiled epoch.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/baselines.hh"
#include "core/kmeans.hh"
#include "core/seqpoint.hh"

using namespace seqpoint;

namespace {

std::vector<core::IterationSample>
syntheticEpoch(size_t iterations, size_t unique)
{
    Rng rng(7);
    std::vector<int64_t> sls;
    int64_t sl = 10;
    for (size_t i = 0; i < unique; ++i) {
        sl += rng.uniformInt(1, 4);
        sls.push_back(sl);
    }
    std::vector<core::IterationSample> epoch;
    for (size_t i = 0; i < iterations; ++i) {
        int64_t s = sls[rng.weightedIndex(
            std::vector<double>(unique, 1.0))];
        epoch.push_back(core::IterationSample{
            s, 0.1 + 0.002 * static_cast<double>(s)});
    }
    return epoch;
}

void
BM_SlStatsFromIterations(benchmark::State &state)
{
    auto epoch = syntheticEpoch(static_cast<size_t>(state.range(0)),
                                300);
    for (auto _ : state) {
        auto stats = core::SlStats::fromIterations(epoch);
        benchmark::DoNotOptimize(stats);
    }
}
BENCHMARK(BM_SlStatsFromIterations)->Arg(600)->Arg(6000)->Arg(60000);

void
BM_SelectWithBins(benchmark::State &state)
{
    auto stats = core::SlStats::fromIterations(syntheticEpoch(6000,
                                                              500));
    unsigned k = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto set = core::selectWithBins(stats, k);
        benchmark::DoNotOptimize(set);
    }
}
BENCHMARK(BM_SelectWithBins)->Arg(5)->Arg(16)->Arg(64);

void
BM_SelectSeqPointsFullLoop(benchmark::State &state)
{
    auto stats = core::SlStats::fromIterations(syntheticEpoch(6000,
                                                              500));
    core::SeqPointOptions opts;
    opts.errorThreshold = 0.002;
    for (auto _ : state) {
        auto set = core::selectSeqPoints(stats, opts);
        benchmark::DoNotOptimize(set);
    }
}
BENCHMARK(BM_SelectSeqPointsFullLoop);

void
BM_KmeansSelector(benchmark::State &state)
{
    auto stats = core::SlStats::fromIterations(syntheticEpoch(6000,
                                                              500));
    unsigned k = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        auto set = core::selectByKmeans(stats, k);
        benchmark::DoNotOptimize(set);
    }
}
BENCHMARK(BM_KmeansSelector)->Arg(8)->Arg(16);

void
BM_KmeansFlatVsNested(benchmark::State &state)
{
    // Multi-dimensional weighted k-means on flat row-major storage;
    // Arg(0)==1 goes through the nested-layout wrapper for contrast.
    Rng rng(13);
    const size_t n = 2000, dim = 8;
    FlatMatrix pts(n, dim);
    std::vector<double> w(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t d = 0; d < dim; ++d)
            pts(i, d) = rng.uniformDouble();
        w[i] = 1.0 + rng.uniformDouble();
    }
    core::KmeansOptions opts;
    opts.k = 16;

    bool nested = state.range(0) != 0;
    auto nested_pts = pts.toNested();
    for (auto _ : state) {
        if (nested) {
            auto res = core::kmeans(nested_pts, w, opts);
            benchmark::DoNotOptimize(res);
        } else {
            auto res = core::kmeansFlat(pts, w, opts);
            benchmark::DoNotOptimize(res);
        }
    }
    state.SetLabel(nested ? "nested wrapper" : "flat");
}
BENCHMARK(BM_KmeansFlatVsNested)->Arg(0)->Arg(1);

void
BM_PriorSelector(benchmark::State &state)
{
    auto epoch = syntheticEpoch(6000, 500);
    for (auto _ : state) {
        auto set = core::selectPrior(epoch, 300, 50);
        benchmark::DoNotOptimize(set);
    }
}
BENCHMARK(BM_PriorSelector);

void
BM_WorstSelector(benchmark::State &state)
{
    auto stats = core::SlStats::fromIterations(syntheticEpoch(6000,
                                                              500));
    for (auto _ : state) {
        auto set = core::selectWorst(stats);
        benchmark::DoNotOptimize(set);
    }
}
BENCHMARK(BM_WorstSelector);

} // anonymous namespace

BENCHMARK_MAIN();
