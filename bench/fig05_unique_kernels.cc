/**
 * @file
 * Regenerates Fig 5: the breakdown of unique kernels invoked by pairs
 * of iterations into common / only-in-1 / only-in-2, showing that the
 * kernel *set* changes with sequence length.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "profiler/profile_compare.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

void
emitPair(Table &table, harness::Experiment &exp, int64_t sl_a,
         int64_t sl_b)
{
    auto cfg1 = sim::GpuConfig::config1();
    prof::DetailedProfile a = exp.iterProfileDetailed(cfg1, sl_a);
    prof::DetailedProfile b = exp.iterProfileDetailed(cfg1, sl_b);
    prof::KernelOverlap ov = prof::compareUniqueKernels(a, b);

    table.addRow({csprintf("%s sl=%lld vs sl=%lld",
                           exp.workload().name.c_str(),
                           (long long)sl_a, (long long)sl_b),
                  csprintf("%.1f%%", 100.0 * ov.fracCommon()),
                  csprintf("%.1f%%", 100.0 * ov.fracOnly1()),
                  csprintf("%.1f%%", 100.0 * ov.fracOnly2()),
                  csprintf("%zu", ov.total())});
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(opts);

    harness::Experiment gnmt(harness::makeGnmtWorkload());
    harness::Experiment ds2(harness::makeDs2Workload());

    // Adopt reference-config cold starts the snapshot store already
    // holds (lookup-only; a cold store changes nothing).
    auto cfg1 = sim::GpuConfig::config1();
    bench::adoptCachedSnapshot(registry.get(), gnmt, cfg1);
    bench::adoptCachedSnapshot(registry.get(), ds2, cfg1);

    Table table({"iteration pair", "common", "only-in-1", "only-in-2",
                 "unique kernels"});

    // Far-apart pairs (paper's bars) and a close pair for contrast.
    emitPair(table, gnmt, 15, 120);
    emitPair(table, gnmt, 60, 200);
    emitPair(table, gnmt, 87, 89);
    emitPair(table, ds2, 80, 300);
    emitPair(table, ds2, 150, 420);
    emitPair(table, ds2, 87, 89);

    std::printf("%s\n", table.render(
        "Fig 5: unique-kernel overlap between iteration pairs").c_str());

    bench::paperNote("up to ~20% of unique kernels appear in only one "
                     "of the two iterations; close SLs overlap almost "
                     "fully.");
    return 0;
}
