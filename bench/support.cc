/**
 * @file
 * Bench support implementation.
 */

#include "support.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/stats_math.hh"
#include "common/strutil.hh"
#include "common/table.hh"

namespace seqpoint {
namespace bench {

FigOptions
parseFigArgs(int argc, char **argv)
{
    FigOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--serial") == 0) {
            opts.serial = true;
        } else if (std::strcmp(argv[i], "--verify-serial") == 0) {
            opts.verifySerial = true;
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            const char *arg = argv[++i];
            char *end = nullptr;
            unsigned long n = std::strtoul(arg, &end, 10);
            if (end == arg || *end != '\0' || arg[0] == '-' ||
                n > 1024) {
                std::fprintf(stderr, "--threads: expected a count in "
                             "[0, 1024], got '%s'\n", arg);
                std::exit(2);
            }
            opts.threads = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--snapshot-dir") == 0 &&
                   i + 1 < argc) {
            opts.snapshotDir = argv[++i];
            if (opts.snapshotDir.empty()) {
                std::fprintf(stderr,
                             "--snapshot-dir: empty path\n");
                std::exit(2);
            }
        } else if (std::strcmp(argv[i], "--snapshot-cap-mb") == 0 &&
                   i + 1 < argc) {
            const char *arg = argv[++i];
            char *end = nullptr;
            unsigned long n = std::strtoul(arg, &end, 10);
            if (end == arg || *end != '\0' || arg[0] == '-' ||
                n > 1u << 20) {
                std::fprintf(stderr, "--snapshot-cap-mb: expected a "
                             "size in [0, 1048576] MiB, got '%s'\n",
                             arg);
                std::exit(2);
            }
            opts.snapshotCapMb = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--strict-snapshots") == 0) {
            opts.strictSnapshots = true;
        } else if (std::strcmp(argv[i], "--cell-retries") == 0 &&
                   i + 1 < argc) {
            const char *arg = argv[++i];
            char *end = nullptr;
            unsigned long n = std::strtoul(arg, &end, 10);
            if (end == arg || *end != '\0' || arg[0] == '-' ||
                n > 100) {
                std::fprintf(stderr, "--cell-retries: expected a "
                             "count in [0, 100], got '%s'\n", arg);
                std::exit(2);
            }
            opts.cellRetries = static_cast<unsigned>(n);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--threads N] [--serial] "
                         "[--verify-serial] [--snapshot-dir PATH] "
                         "[--snapshot-cap-mb N] [--strict-snapshots] "
                         "[--cell-retries N]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    if (opts.serial && opts.verifySerial) {
        std::fprintf(stderr, "--serial and --verify-serial are "
                     "mutually exclusive: --verify-serial runs the "
                     "scheduler pipeline and checks it against the "
                     "serial one\n");
        std::exit(2);
    }
    return opts;
}

namespace {

/**
 * Shared --serial/--verify-serial dispatch: run the scheduled sweep
 * (or the serial one under --serial), and under --verify-serial also
 * run the serial pipeline and exit(1) unless byte-identical.
 */
template <typename Sweep, typename RunScheduled, typename RunSerial>
Sweep
runVerifiedSweep(const FigOptions &opts, const char *what,
                 RunScheduled scheduled, RunSerial serial)
{
    if (opts.serial)
        return serial();

    Sweep sweep = scheduled();
    if (opts.verifySerial) {
        Sweep ref = serial();
        if (!sweep.identicalTo(ref)) {
            std::fprintf(stderr, "FAIL: scheduler-backed %s sweep is "
                         "not byte-identical to the serial pipeline\n",
                         what);
            std::exit(1);
        }
        std::printf("verify: scheduler sweep byte-identical to the "
                    "serial pipeline\n");
    }
    return sweep;
}

} // anonymous namespace

std::unique_ptr<harness::SnapshotRegistry>
openRegistry(const FigOptions &opts)
{
    if (opts.snapshotDir.empty())
        return nullptr;
    auto registry = std::make_unique<harness::SnapshotRegistry>(
        opts.snapshotDir,
        static_cast<uint64_t>(opts.snapshotCapMb) << 20);
    registry->setStrict(opts.strictSnapshots);
    return registry;
}

void
warmExperiment(harness::SnapshotRegistry *registry,
               const harness::WorkloadFactory &make,
               harness::Experiment &exp, const sim::GpuConfig &cfg)
{
    if (!registry)
        return;
    // Key off the experiment's own workload: a registry hit then
    // costs no second workload construction; only a cold build runs
    // the factory.
    exp.seedFrom(registry->acquire(exp.workload(), make, cfg,
                                   exp.profileThreads(),
                                   exp.options()));
}

void
adoptCachedSnapshot(harness::SnapshotRegistry *registry,
                    harness::Experiment &exp,
                    const sim::GpuConfig &cfg)
{
    if (!registry)
        return;
    auto snap = registry->cached(
        harness::snapshotKeyFor(exp.workload(), exp.options(), cfg));
    if (snap)
        exp.seedFrom(std::move(snap));
}

void
warmTable2(harness::SnapshotRegistry *registry,
           const harness::WorkloadFactory &make,
           harness::Experiment &exp)
{
    if (!registry)
        return;
    auto cfgs = sim::GpuConfig::table2();
    warmExperiment(registry, make, exp, cfgs[0]);
    for (size_t c = 1; c < cfgs.size(); ++c)
        adoptCachedSnapshot(registry, exp, cfgs[c]);
}

harness::FigureSweep
runFigureSweep(const harness::WorkloadFactory &make,
               const FigOptions &opts)
{
    auto registry = openRegistry(opts);
    return runVerifiedSweep<harness::FigureSweep>(
        opts, "figure",
        [&] { return harness::runFigureSweepScheduled(
                  make, opts.threads, registry.get(),
                  opts.cellRetries); },
        [&] { return harness::runFigureSweepSerial(
                  make, opts.serial ? opts.threads : 0); });
}

double
printTimeErrorFigure(const harness::FigureSweep &sweep,
                     const std::string &caption)
{
    std::vector<std::string> headers{"selector"};
    for (const auto &col : sweep.columns)
        headers.push_back(col.config);
    headers.push_back("geomean");
    headers.push_back("points");
    Table table(std::move(headers));

    const auto &order = harness::selectorOrder();
    double seqpoint_geo = 0.0;
    for (size_t s = 0; s < order.size(); ++s) {
        core::SelectorKind kind = order[s];
        const core::SeqPointSet &sel = sweep.selections.at(kind);
        std::vector<std::string> row{core::selectorName(kind)};
        std::vector<double> errs;
        for (const auto &col : sweep.columns) {
            double err = core::timeErrorPercent(col.projectedSec[s],
                                                col.actualSec);
            errs.push_back(err);
            row.push_back(csprintf("%.2f%%", err));
        }
        double geo = geomean(errs, kErrorGeomeanFloor);
        if (kind == core::SelectorKind::SeqPoint)
            seqpoint_geo = geo;
        row.push_back(csprintf("%.2f%%", geo));
        row.push_back(csprintf("%zu", sel.points.size()));
        table.addRow(std::move(row));
    }

    std::printf("%s\n", table.render(caption).c_str());

    const core::SeqPointSet &sp =
        sweep.selections.at(core::SelectorKind::SeqPoint);
    std::printf("seqpoint: %zu points, %u bins, converged=%s, "
                "self-error=%.3f%%\n",
                sp.points.size(), sp.binsUsed,
                sp.converged ? "yes" : "no", 100.0 * sp.selfError);
    return seqpoint_geo;
}

double
printSpeedupErrorFigure(const harness::FigureSweep &sweep,
                        const std::string &caption)
{
    std::vector<std::string> headers{"selector"};
    for (size_t i = 1; i < sweep.columns.size(); ++i)
        headers.push_back(sweep.columns[i].config + "->#1");
    headers.push_back("geomean");
    Table table(std::move(headers));

    double at1 = sweep.columns[0].actualThroughput;
    const auto &order = harness::selectorOrder();
    double seqpoint_geo = 0.0;
    for (size_t s = 0; s < order.size(); ++s) {
        core::SelectorKind kind = order[s];
        std::vector<std::string> row{core::selectorName(kind)};
        std::vector<double> errs;
        double pt1 = sweep.columns[0].projectedThroughput[s];
        for (size_t i = 1; i < sweep.columns.size(); ++i) {
            double atx = sweep.columns[i].actualThroughput;
            double ptx = sweep.columns[i].projectedThroughput[s];
            double err = core::upliftErrorPoints(
                core::upliftPercent(ptx, pt1),
                core::upliftPercent(atx, at1));
            errs.push_back(err);
            row.push_back(csprintf("%.2fpp", err));
        }
        double geo = geomean(errs, kErrorGeomeanFloor);
        if (kind == core::SelectorKind::SeqPoint)
            seqpoint_geo = geo;
        row.push_back(csprintf("%.2fpp", geo));
        table.addRow(std::move(row));
    }

    std::printf("%s\n", table.render(caption).c_str());

    std::printf("actual uplifts vs config#1:");
    for (size_t i = 1; i < sweep.columns.size(); ++i) {
        std::printf(" %s:%.1f%%", sweep.columns[i].config.c_str(),
                    core::upliftPercent(
                        sweep.columns[i].actualThroughput, at1));
    }
    std::printf("\n");
    return seqpoint_geo;
}

void
printSensitivityFigure(const harness::WorkloadFactory &make,
                       const std::string &caption, int64_t sl_lo,
                       int64_t sl_hi, int64_t step,
                       const FigOptions &opts)
{
    auto registry = openRegistry(opts);
    harness::SensitivitySweep sweep =
        runVerifiedSweep<harness::SensitivitySweep>(
            opts, "sensitivity",
            [&] { return harness::runSensitivitySweepScheduled(
                      make, sl_lo, sl_hi, step, opts.threads,
                      registry.get(), opts.cellRetries); },
            [&] { return harness::runSensitivitySweepSerial(
                      make, sl_lo, sl_hi, step,
                      opts.serial ? opts.threads : 0); });

    std::vector<std::string> headers{"SL"};
    for (size_t i = 1; i < sweep.configs.size(); ++i)
        headers.push_back(sweep.configs[i] + "->#1 uplift");
    Table table(std::move(headers));

    double batch = static_cast<double>(sweep.batchSize);
    for (size_t s = 0; s < sweep.sls.size(); ++s) {
        std::vector<std::string> row{csprintf("%lld",
            static_cast<long long>(sweep.sls[s]))};
        double thr1 = batch / sweep.iterSec[0][s];
        for (size_t i = 1; i < sweep.configs.size(); ++i) {
            double thrx = batch / sweep.iterSec[i][s];
            row.push_back(csprintf("%.1f%%",
                core::upliftPercent(thrx, thr1)));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render(caption).c_str());
}

void
paperNote(const std::string &text)
{
    std::printf("[paper] %s\n", text.c_str());
}

} // namespace bench
} // namespace seqpoint
