/**
 * @file
 * Bench support implementation.
 */

#include "support.hh"

#include <cstdio>

#include "common/stats_math.hh"
#include "common/strutil.hh"
#include "common/table.hh"

namespace seqpoint {
namespace bench {

const std::vector<core::SelectorKind> &
selectorOrder()
{
    static const std::vector<core::SelectorKind> order = {
        core::SelectorKind::Worst, core::SelectorKind::Frequent,
        core::SelectorKind::Median, core::SelectorKind::Prior,
        core::SelectorKind::SeqPoint,
    };
    return order;
}

double
printTimeErrorFigure(harness::Experiment &exp, const std::string &caption)
{
    auto cfgs = sim::GpuConfig::table2();
    auto sels = exp.buildAllSelections(cfgs[0]);

    std::vector<std::string> headers{"selector"};
    for (const auto &cfg : cfgs)
        headers.push_back(cfg.name);
    headers.push_back("geomean");
    headers.push_back("points");
    Table table(std::move(headers));

    double seqpoint_geo = 0.0;
    for (core::SelectorKind kind : selectorOrder()) {
        const core::SeqPointSet &sel = sels.at(kind);
        std::vector<std::string> row{core::selectorName(kind)};
        std::vector<double> errs;
        for (const auto &cfg : cfgs) {
            double err = core::timeErrorPercent(
                exp.projectedTrainSec(sel, cfg),
                exp.actualTrainSec(cfg));
            errs.push_back(err);
            row.push_back(csprintf("%.2f%%", err));
        }
        double geo = geomean(errs);
        if (kind == core::SelectorKind::SeqPoint)
            seqpoint_geo = geo;
        row.push_back(csprintf("%.2f%%", geo));
        row.push_back(csprintf("%zu", sel.points.size()));
        table.addRow(std::move(row));
    }

    std::printf("%s\n", table.render(caption).c_str());

    const core::SeqPointSet &sp = sels.at(core::SelectorKind::SeqPoint);
    std::printf("seqpoint: %zu points, %u bins, converged=%s, "
                "self-error=%.3f%%\n",
                sp.points.size(), sp.binsUsed,
                sp.converged ? "yes" : "no", 100.0 * sp.selfError);
    return seqpoint_geo;
}

double
printSpeedupErrorFigure(harness::Experiment &exp,
                        const std::string &caption)
{
    auto cfgs = sim::GpuConfig::table2();
    auto sels = exp.buildAllSelections(cfgs[0]);

    std::vector<std::string> headers{"selector"};
    for (size_t i = 1; i < cfgs.size(); ++i)
        headers.push_back(cfgs[i].name + "->#1");
    headers.push_back("geomean");
    Table table(std::move(headers));

    double at1 = exp.actualThroughput(cfgs[0]);
    double seqpoint_geo = 0.0;
    for (core::SelectorKind kind : selectorOrder()) {
        const core::SeqPointSet &sel = sels.at(kind);
        std::vector<std::string> row{core::selectorName(kind)};
        std::vector<double> errs;
        double pt1 = exp.projectedThroughput(sel, cfgs[0]);
        for (size_t i = 1; i < cfgs.size(); ++i) {
            double atx = exp.actualThroughput(cfgs[i]);
            double ptx = exp.projectedThroughput(sel, cfgs[i]);
            double err = core::upliftErrorPoints(
                core::upliftPercent(ptx, pt1),
                core::upliftPercent(atx, at1));
            errs.push_back(err);
            row.push_back(csprintf("%.2fpp", err));
        }
        double geo = geomean(errs);
        if (kind == core::SelectorKind::SeqPoint)
            seqpoint_geo = geo;
        row.push_back(csprintf("%.2fpp", geo));
        table.addRow(std::move(row));
    }

    std::printf("%s\n", table.render(caption).c_str());

    std::printf("actual uplifts vs config#1:");
    for (size_t i = 1; i < cfgs.size(); ++i) {
        std::printf(" %s:%.1f%%", cfgs[i].name.c_str(),
                    core::upliftPercent(exp.actualThroughput(cfgs[i]),
                                        at1));
    }
    std::printf("\n");
    return seqpoint_geo;
}

void
printSensitivityFigure(harness::Experiment &exp,
                       const std::string &caption, int64_t sl_lo,
                       int64_t sl_hi, int64_t step)
{
    auto cfgs = sim::GpuConfig::table2();
    unsigned batch = exp.workload().batchSize;

    std::vector<std::string> headers{"SL"};
    for (size_t i = 1; i < cfgs.size(); ++i)
        headers.push_back(cfgs[i].name + "->#1 uplift");
    Table table(std::move(headers));

    // Warm the whole SL sweep per configuration on the thread pool
    // before the serial table assembly below.
    std::vector<int64_t> sweep;
    for (int64_t sl = sl_lo; sl <= sl_hi; sl += step)
        sweep.push_back(sl);
    for (const auto &cfg : cfgs)
        exp.warmIterProfiles(cfg, sweep);

    for (int64_t sl = sl_lo; sl <= sl_hi; sl += step) {
        std::vector<std::string> row{csprintf("%lld",
            static_cast<long long>(sl))};
        double thr1 = static_cast<double>(batch) /
            exp.iterTime(cfgs[0], sl);
        for (size_t i = 1; i < cfgs.size(); ++i) {
            double thrx = static_cast<double>(batch) /
                exp.iterTime(cfgs[i], sl);
            row.push_back(csprintf("%.1f%%",
                core::upliftPercent(thrx, thr1)));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render(caption).c_str());
}

void
paperNote(const std::string &text)
{
    std::printf("[paper] %s\n", text.c_str());
}

} // namespace bench
} // namespace seqpoint
