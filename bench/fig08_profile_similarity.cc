/**
 * @file
 * Regenerates Fig 8: execution profiles (kernel-group runtime shares)
 * of nearby sequence lengths are similar while distant ones differ --
 * the similarity SeqPoint's binning exploits. Uses the paper's GNMT
 * SLs 87, 89, 192, 197.
 */

#include <cmath>
#include <cstdio>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "profiler/profile_compare.hh"
#include "support.hh"

using namespace seqpoint;

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(opts);

    harness::Experiment gnmt(harness::makeGnmtWorkload());
    auto cfg1 = sim::GpuConfig::config1();
    // Lookup-only store adoption; a cold store changes nothing.
    bench::adoptCachedSnapshot(registry.get(), gnmt, cfg1);

    const std::vector<int64_t> sls{87, 89, 192, 197};
    gnmt.warmIterProfiles(cfg1, sls);

    Table table({"kernel class", "SL 87", "SL 89", "SL 192", "SL 197"});
    // Copy the profiles: iterProfile()'s reference is only stable
    // across calls while memoization is enabled.
    std::vector<prof::IterationProfile> profiles;
    for (int64_t sl : sls)
        profiles.push_back(gnmt.iterProfile(cfg1, sl));
    FlatMatrix shares = prof::classShareMatrix(profiles);

    for (unsigned c = 0; c < sim::numKernelClasses; ++c) {
        bool relevant = false;
        for (size_t r = 0; r < shares.rows(); ++r)
            relevant = relevant || shares(r, c) >= 0.001;
        if (!relevant)
            continue;
        std::vector<std::string> row{
            sim::kernelClassName(static_cast<sim::KernelClass>(c))};
        for (size_t r = 0; r < shares.rows(); ++r)
            row.push_back(csprintf("%.1f%%", 100.0 * shares(r, c)));
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render(
        "Fig 8 (GNMT): execution profile at SLs 87/89/192/197").c_str());

    // Pairwise profile distances: close pairs << far pairs.
    auto dist = [&](size_t i, size_t j) {
        return prof::classShareDistance(shares, i, j);
    };
    std::printf("L1 profile distance: (87,89)=%.4f (192,197)=%.4f "
                "(87,192)=%.4f (89,197)=%.4f\n",
                dist(0, 1), dist(2, 3), dist(0, 2), dist(1, 3));

    bench::paperNote("nearby SLs (87 vs 89; 192 vs 197) have nearly "
                     "identical kernel distributions; distant SLs "
                     "differ.");
    return 0;
}
