/**
 * @file
 * Regenerates Fig 14: DS2's per-SL throughput-uplift sensitivity,
 * including the O1 region (where Prior's contiguous window falls in
 * the sorted first epoch) and the wider constant-uplift region O2.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "support.hh"

using namespace seqpoint;

int
main()
{
    harness::Experiment exp(harness::makeDs2Workload());
    bench::printSensitivityFigure(exp,
        "Fig 14: per-SL sensitivity of DS2 iterations (uplift of "
        "config #1 over each variant)", 60, 440, 20);

    // Locate prior's window (O1): iterations 300..349 of the sorted
    // epoch.
    auto samples = exp.epochSamples(sim::GpuConfig::config1());
    int64_t o1_lo = samples[300].seqLen;
    int64_t o1_hi = samples[349].seqLen;
    std::printf("O1 (prior's window, iterations 300-349 of the sorted "
                "epoch): SL in [%lld, %lld]\n",
                (long long)o1_lo, (long long)o1_hi);

    bench::paperNote("uplift varies by up to ~45 points across SLs; "
                     "prior's window O1 sits inside a region O2 whose "
                     "uplift is close to the whole-epoch uplift for "
                     "all configs except #4 (L1 off).");
    return 0;
}
