/**
 * @file
 * Regenerates Fig 14: DS2's per-SL throughput-uplift sensitivity,
 * including the O1 region (where Prior's contiguous window falls in
 * the sorted first epoch) and the wider constant-uplift region O2.
 * The sensitivity grid runs one scheduler cell per configuration
 * (see fig11 for flags).
 */

#include <cstdio>

#include "profiler/trainer.hh"
#include "support.hh"

using namespace seqpoint;

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto make = [] { return harness::makeDs2Workload(); };
    bench::printSensitivityFigure(make,
        "Fig 14: per-SL sensitivity of DS2 iterations (uplift of "
        "config #1 over each variant)", 60, 440, 20, opts);

    // Locate prior's window (O1): iterations 300..349 of the sorted
    // epoch. The SL schedule is a pure function of the batching
    // setup, so no epoch needs to be simulated for this.
    harness::Workload wl = make();
    prof::TrainConfig tc;
    tc.batchSize = wl.batchSize;
    tc.policy = wl.policy;
    tc.seed = wl.seed;
    auto schedule = prof::epochBatchSchedule(wl.dataset, tc);
    int64_t o1_lo = schedule[300].seqLen;
    int64_t o1_hi = schedule[349].seqLen;
    std::printf("O1 (prior's window, iterations 300-349 of the sorted "
                "epoch): SL in [%lld, %lld]\n",
                (long long)o1_lo, (long long)o1_hi);

    bench::paperNote("uplift varies by up to ~45 points across SLs; "
                     "prior's window O1 sits inside a region O2 whose "
                     "uplift is close to the whole-epoch uplift for "
                     "all configs except #4 (L1 off).");
    return 0;
}
