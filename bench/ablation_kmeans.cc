/**
 * @file
 * Regenerates the section VII-C comparison: simple contiguous SL
 * binning performs as well as k-means clustering over execution
 * statistics, at matched representative counts.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/kmeans.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

void
emit(harness::Experiment &exp)
{
    auto cfgs = sim::GpuConfig::table2();
    auto stats = exp.slStats(cfgs[0]);

    Table table({"k", "binning self-err", "kmeans self-err",
                 "binning x-cfg geomean", "kmeans x-cfg geomean"});

    for (unsigned k : {4u, 6u, 8u, 12u, 16u, 24u}) {
        core::SeqPointSet bin_set = core::selectWithBins(stats, k);
        core::SeqPointSet km_set = core::selectByKmeans(stats, k);

        auto xcfg = [&](const core::SeqPointSet &sel) {
            std::vector<double> errs;
            for (const auto &cfg : cfgs) {
                errs.push_back(core::timeErrorPercent(
                    exp.projectedTrainSec(sel, cfg),
                    exp.actualTrainSec(cfg)));
            }
            return geomean(errs, bench::kErrorGeomeanFloor);
        };

        table.addRow({csprintf("%u", k),
                      csprintf("%.3f%%", 100.0 * bin_set.selfError),
                      csprintf("%.3f%%", 100.0 * km_set.selfError),
                      csprintf("%.3f%%", xcfg(bin_set)),
                      csprintf("%.3f%%", xcfg(km_set))});
    }
    std::printf("%s\n", table.render(csprintf(
        "Section VII-C (%s): SL binning vs k-means clustering",
        exp.workload().name.c_str())).c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(opts);

    harness::Experiment gnmt(harness::makeGnmtWorkload());
    harness::Experiment ds2(harness::makeDs2Workload());

    // Share the Table II cold starts through the snapshot store when
    // one is attached.
    bench::warmTable2(registry.get(),
                      [] { return harness::makeGnmtWorkload(); }, gnmt);
    bench::warmTable2(registry.get(),
                      [] { return harness::makeDs2Workload(); }, ds2);

    emit(gnmt);
    emit(ds2);

    bench::paperNote("the paper found simple SL binning performs as "
                     "well as k-means over execution profiles, "
                     "because runtime is a good proxy for the "
                     "profile.");
    return 0;
}
