/**
 * @file
 * Regenerates Fig 11: error in projecting DS2's total training time,
 * per selector, across the five Table II configurations. The
 * (selector x config) grid runs on the scheduler-backed figure
 * pipeline (--serial recovers the legacy single-Experiment path;
 * --verify-serial asserts byte-identity between the two).
 */

#include "support.hh"

using namespace seqpoint;

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    harness::FigureSweep sweep = bench::runFigureSweep(
        [] { return harness::makeDs2Workload(); }, opts);
    double geo = bench::printTimeErrorFigure(sweep,
        "Fig 11: error in total training time projections for DS2");
    bench::paperNote(csprintf(
        "paper geomean for SeqPoint: 0.11%%; measured here: %.2f%%. "
        "Paper: worst up to ~90%%, frequent 20-35%%, median up to "
        "~10%%, prior ~6%% on some configs.", geo));
    return 0;
}
