/**
 * @file
 * Regenerates Fig 11: error in projecting DS2's total training time,
 * per selector, across the five Table II configurations.
 */

#include "support.hh"

using namespace seqpoint;

int
main()
{
    harness::Experiment exp(harness::makeDs2Workload());
    double geo = bench::printTimeErrorFigure(exp,
        "Fig 11: error in total training time projections for DS2");
    bench::paperNote(csprintf(
        "paper geomean for SeqPoint: 0.11%%; measured here: %.2f%%. "
        "Paper: worst up to ~90%%, frequent 20-35%%, median up to "
        "~10%%, prior ~6%% on some configs.", geo));
    return 0;
}
