/**
 * @file
 * Regenerates Fig 6: the runtime share of kernel groups (GEMM
 * variants, reductions, scalar ops, rest) differs across iterations
 * with different sequence lengths.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

void
emit(harness::Experiment &exp, int64_t sl_short, int64_t sl_long)
{
    auto cfg1 = sim::GpuConfig::config1();

    auto shares = [&](int64_t sl) {
        const auto &p = exp.iterProfile(cfg1, sl);
        return p.classShares();
    };
    auto s1 = shares(sl_short);
    auto s2 = shares(sl_long);

    Table table({"kernel class",
                 csprintf("sl-%lld share", (long long)sl_short),
                 csprintf("sl-%lld share", (long long)sl_long)});
    for (unsigned i = 0; i < sim::numKernelClasses; ++i) {
        if (s1[i] < 0.001 && s2[i] < 0.001)
            continue;
        table.addRow({sim::kernelClassName(
                          static_cast<sim::KernelClass>(i)),
                      csprintf("%.1f%%", 100.0 * s1[i]),
                      csprintf("%.1f%%", 100.0 * s2[i])});
    }
    std::printf("%s\n", table.render(csprintf(
        "Fig 6 (%s): kernel-class runtime distribution at two SLs",
        exp.workload().name.c_str())).c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(opts);

    harness::Experiment gnmt(harness::makeGnmtWorkload());
    harness::Experiment ds2(harness::makeDs2Workload());

    // Adopt reference-config cold starts the snapshot store already
    // holds (lookup-only; a cold store changes nothing).
    auto cfg1 = sim::GpuConfig::config1();
    bench::adoptCachedSnapshot(registry.get(), gnmt, cfg1);
    bench::adoptCachedSnapshot(registry.get(), ds2, cfg1);

    emit(gnmt, 15, 150);
    emit(ds2, 80, 400);

    bench::paperNote("kernel distribution differs with SL: "
                     "SL-proportional layers (recurrent cells) grow "
                     "while fixed-count layers shrink in share.");
    return 0;
}
