/**
 * @file
 * Ablations over the SeqPoint design choices called out in DESIGN.md:
 * the error threshold e, the initial bin count, the binning mode, the
 * representative-pick rule, and the batch size of the underlying run.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/units.hh"
#include "sim/access_gen.hh"
#include "sim/cache_model.hh"
#include "support.hh"

using namespace seqpoint;

namespace {

double
crossConfigGeomean(harness::Experiment &exp, const core::SeqPointSet &sel)
{
    std::vector<double> errs;
    for (const auto &cfg : sim::GpuConfig::table2()) {
        errs.push_back(core::timeErrorPercent(
            exp.projectedTrainSec(sel, cfg), exp.actualTrainSec(cfg)));
    }
    return geomean(errs, bench::kErrorGeomeanFloor);
}

void
sweepErrorThreshold(harness::Experiment &exp)
{
    auto stats = exp.slStats(sim::GpuConfig::config1());
    Table table({"e", "SeqPoints", "bins", "self-err",
                 "x-cfg geomean"});
    for (double e : {0.05, 0.02, 0.01, 0.005, 0.002, 0.001}) {
        core::SeqPointOptions opts =
            harness::Experiment::defaultOptions();
        opts.errorThreshold = e;
        auto set = core::selectSeqPoints(stats, opts);
        table.addRow({csprintf("%.1f%%", 100.0 * e),
                      csprintf("%zu", set.points.size()),
                      csprintf("%u", set.binsUsed),
                      csprintf("%.3f%%", 100.0 * set.selfError),
                      csprintf("%.3f%%",
                               crossConfigGeomean(exp, set))});
    }
    std::printf("%s\n", table.render(csprintf(
        "Ablation (%s): error threshold e vs SeqPoint count and "
        "accuracy", exp.workload().name.c_str())).c_str());
}

void
sweepPolicies(harness::Experiment &exp)
{
    auto stats = exp.slStats(sim::GpuConfig::config1());
    Table table({"binning", "rep pick", "SeqPoints", "self-err",
                 "x-cfg geomean"});

    const std::pair<core::BinningMode, const char *> modes[] = {
        {core::BinningMode::EqualWidth, "equal-width"},
        {core::BinningMode::EqualFrequency, "equal-freq"},
    };
    const std::pair<core::RepPick, const char *> picks[] = {
        {core::RepPick::ClosestToAvgStat, "avg-stat (paper)"},
        {core::RepPick::ClosestToWeightedAvgStat, "weighted-avg-stat"},
        {core::RepPick::ClosestToAvgSl, "avg-SL"},
        {core::RepPick::MostFrequent, "most-frequent"},
    };

    for (auto [mode, mode_name] : modes) {
        for (auto [pick, pick_name] : picks) {
            core::SeqPointOptions opts =
                harness::Experiment::defaultOptions();
            opts.binning = mode;
            opts.repPick = pick;
            auto set = core::selectSeqPoints(stats, opts);
            table.addRow({mode_name, pick_name,
                          csprintf("%zu", set.points.size()),
                          csprintf("%.3f%%", 100.0 * set.selfError),
                          csprintf("%.3f%%",
                                   crossConfigGeomean(exp, set))});
        }
    }
    std::printf("%s\n", table.render(csprintf(
        "Ablation (%s): binning mode x representative pick",
        exp.workload().name.c_str())).c_str());
}

void
sweepCacheCapacity()
{
    // The capacity ablation behind the analytical cache model: hit
    // rate versus capacity for the three synthetic stream classes,
    // measured through the segment-descriptor streams and the
    // piecewise-analytic replay engine (bit-identical to the scalar
    // oracle, gated in the test suite), against the power-law
    // prediction for the hot/cold mix.
    const uint64_t hot = kib(64), cold = mib(8);
    const double hot_frac = 0.6;

    Table table({"capacity", "stream", "blocked GEMM", "hot/cold",
                 "power law (hot/cold)"});
    for (uint64_t cap_kib : {16, 32, 64, 128, 256, 512}) {
        sim::CacheSim cache(kib(cap_kib), 8, 64);
        double stream = sim::measureHitRateSegments(
            cache, sim::genStreamingSegments(mib(4), 64));
        double gemm = sim::measureHitRateSegments(
            cache, sim::genBlockedGemmSegments(256, 256, 256, 64));
        Rng rng(99);
        double hotcold = sim::measureHitRateSegments(
            cache, sim::genHotColdSegments(100000, hot, cold,
                                           hot_frac, rng));
        double law = sim::capacityHitFraction(
            hot_frac, static_cast<double>(hot),
            static_cast<double>(kib(cap_kib)), 1.0);
        table.addRow({csprintf("%llu KiB",
                               static_cast<unsigned long long>(
                                   cap_kib)),
                      csprintf("%.1f%%", 100.0 * stream),
                      csprintf("%.1f%%", 100.0 * gemm),
                      csprintf("%.1f%%", 100.0 * hotcold),
                      csprintf("%.1f%%", 100.0 * law)});
    }
    std::printf("%s\n", table.render(
        "Ablation: cache capacity vs hit rate (piecewise-analytic "
        "segment replay)").c_str());
}

void
sweepBatchSize(uint64_t seed)
{
    // Smaller batches -> more unique SLs (paper section V-A).
    Table table({"batch size", "iterations", "unique SLs",
                 "SeqPoints"});
    for (unsigned batch : {16u, 32u, 64u, 128u}) {
        harness::Workload wl = harness::makeDs2Workload(seed);
        wl.batchSize = batch;
        harness::Experiment exp(std::move(wl));
        auto cfg1 = sim::GpuConfig::config1();
        auto stats = exp.slStats(cfg1);
        auto set = exp.buildSelection(core::SelectorKind::SeqPoint,
                                      cfg1);
        table.addRow({csprintf("%u", batch),
                      csprintf("%zu",
                               exp.epochLog(cfg1).numIterations()),
                      csprintf("%zu", stats.uniqueCount()),
                      csprintf("%zu", set.points.size())});
    }
    std::printf("%s\n", table.render(
        "Ablation (DS2): batch size vs unique-SL count").c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::FigOptions opts = bench::parseFigArgs(argc, argv);
    auto registry = bench::openRegistry(opts);

    harness::Experiment gnmt(harness::makeGnmtWorkload());
    harness::Experiment ds2(harness::makeDs2Workload());

    // With a snapshot store attached, share the Table II cold starts
    // through it; the batch-size variants below run cold either way
    // (different run parameters).
    bench::warmTable2(registry.get(),
                      [] { return harness::makeGnmtWorkload(); }, gnmt);
    bench::warmTable2(registry.get(),
                      [] { return harness::makeDs2Workload(); }, ds2);

    sweepErrorThreshold(gnmt);
    sweepErrorThreshold(ds2);
    sweepPolicies(gnmt);
    sweepPolicies(ds2);
    sweepBatchSize(23);
    sweepCacheCapacity();

    bench::paperNote("design-choice ablations: the paper's "
                     "avg-stat/equal-width choices are competitive "
                     "with the alternatives; smaller batches inflate "
                     "the unique-SL space.");
    return 0;
}
