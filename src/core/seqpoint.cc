/**
 * @file
 * SeqPoint algorithm implementation.
 */

#include "core/seqpoint.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/stats_math.hh"
#include "common/strutil.hh"

namespace seqpoint {
namespace core {

double
SeqPointSet::totalWeight() const
{
    double w = 0.0;
    for (const SeqPointRecord &p : points)
        w += p.weight;
    return w;
}

double
SeqPointSet::projectTotal() const
{
    double total = 0.0;
    for (const SeqPointRecord &p : points)
        total += p.weight * p.statValue;
    return total;
}

double
SeqPointSet::projectTotal(const std::function<double(int64_t)> &stat) const
{
    double total = 0.0;
    for (const SeqPointRecord &p : points)
        total += p.weight * stat(p.seqLen);
    return total;
}

double
SeqPointSet::projectRatio(const std::function<double(int64_t)> &stat) const
{
    double w = totalWeight();
    if (w <= 0.0)
        return 0.0;
    return projectTotal(stat) / w;
}

namespace {

/** Pick the representative entry index within one bin. */
size_t
pickRepresentative(const SlStats &stats, const Bin &bin, RepPick policy)
{
    const auto &entries = stats.entries();

    switch (policy) {
      case RepPick::ClosestToAvgStat:
      case RepPick::ClosestToWeightedAvgStat: {
        double target = (policy == RepPick::ClosestToAvgStat)
            ? binMeanStat(stats, bin)
            : binMeanStatWeighted(stats, bin);
        size_t best = bin.first;
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t i = bin.first; i <= bin.last; ++i) {
            double d = std::fabs(entries[i].statValue - target);
            if (d < best_d) {
                best_d = d;
                best = i;
            }
        }
        return best;
      }

      case RepPick::ClosestToAvgSl: {
        double num = 0.0, den = 0.0;
        for (size_t i = bin.first; i <= bin.last; ++i) {
            num += static_cast<double>(entries[i].freq) *
                static_cast<double>(entries[i].seqLen);
            den += static_cast<double>(entries[i].freq);
        }
        double target = den > 0.0 ? num / den : 0.0;
        size_t best = bin.first;
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t i = bin.first; i <= bin.last; ++i) {
            double d = std::fabs(
                static_cast<double>(entries[i].seqLen) - target);
            if (d < best_d) {
                best_d = d;
                best = i;
            }
        }
        return best;
      }

      case RepPick::MostFrequent: {
        size_t best = bin.first;
        for (size_t i = bin.first; i <= bin.last; ++i) {
            if (entries[i].freq > entries[best].freq)
                best = i;
        }
        return best;
      }
    }
    panic("pickRepresentative: bad policy");
    return bin.first;
}

/** Build the all-unique-SLs selection (below the n threshold). */
SeqPointSet
selectAllUnique(const SlStats &stats)
{
    SeqPointSet set;
    set.usedAllUnique = true;
    set.converged = true;
    set.selfError = 0.0;
    for (const SlEntry &e : stats.entries()) {
        set.points.push_back(SeqPointRecord{
            e.seqLen, static_cast<double>(e.freq), e.statValue});
    }
    return set;
}

} // anonymous namespace

SeqPointSet
selectWithBins(const SlStats &stats, unsigned k, const SeqPointOptions &opts)
{
    panic_if(stats.uniqueCount() == 0, "selectWithBins: empty stats");

    std::vector<Bin> bins = binEntries(stats, k, opts.binning);

    SeqPointSet set;
    set.binsUsed = k;
    const auto &entries = stats.entries();
    for (const Bin &bin : bins) {
        size_t rep = pickRepresentative(stats, bin, opts.repPick);
        double weight = static_cast<double>(binIterations(stats, bin));
        set.points.push_back(SeqPointRecord{
            entries[rep].seqLen, weight, entries[rep].statValue});
    }

    double actual = stats.actualTotal();
    set.selfError = actual != 0.0
        ? relError(set.projectTotal(), actual) : 0.0;
    set.converged = set.selfError <= opts.errorThreshold;
    return set;
}

SeqPointSet
selectSeqPoints(const SlStats &stats, const SeqPointOptions &opts)
{
    fatal_if(opts.initialBins == 0, "selectSeqPoints: zero initial bins");
    fatal_if(opts.errorThreshold < 0.0,
             "selectSeqPoints: negative error threshold");
    panic_if(stats.uniqueCount() == 0, "selectSeqPoints: empty stats");

    // Step 1 short-circuit: few unique SLs -> use them all.
    if (stats.uniqueCount() <= opts.uniqueSlThreshold)
        return selectAllUnique(stats);

    // Steps 2-6: bin, pick, weigh, project; grow k until converged.
    unsigned max_k = static_cast<unsigned>(
        std::min<size_t>(opts.maxBins, stats.uniqueCount()));
    SeqPointSet best;
    bool have_best = false;

    for (unsigned k = opts.initialBins; k <= max_k; ++k) {
        SeqPointSet set = selectWithBins(stats, k, opts);
        if (!have_best || set.selfError < best.selfError) {
            best = set;
            have_best = true;
        }
        if (set.converged)
            return set;
    }

    warn("selectSeqPoints: did not reach error threshold %g within "
         "%u bins (best self-error %g); returning best set",
         opts.errorThreshold, max_k, best.selfError);
    return best;
}

void
encodeSeqPointOptions(ByteWriter &w, const SeqPointOptions &opts)
{
    w.u32(opts.uniqueSlThreshold);
    w.u32(opts.initialBins);
    w.f64(opts.errorThreshold);
    w.u32(opts.maxBins);
    w.u32(static_cast<uint32_t>(opts.binning));
    w.u32(static_cast<uint32_t>(opts.repPick));
}

SeqPointOptions
decodeSeqPointOptions(ByteReader &r)
{
    SeqPointOptions opts;
    opts.uniqueSlThreshold = r.u32();
    opts.initialBins = r.u32();
    opts.errorThreshold = r.f64();
    opts.maxBins = r.u32();
    uint32_t binning = r.u32();
    if (binning > static_cast<uint32_t>(BinningMode::EqualFrequency)) {
        r.fail(csprintf("%s: invalid binning mode %u",
                        r.what().c_str(), binning));
    }
    opts.binning = static_cast<BinningMode>(binning);
    uint32_t pick = r.u32();
    if (pick > static_cast<uint32_t>(RepPick::MostFrequent)) {
        r.fail(csprintf("%s: invalid representative-pick policy %u",
                        r.what().c_str(), pick));
    }
    opts.repPick = static_cast<RepPick>(pick);
    return opts;
}

void
encodeSeqPointSet(ByteWriter &w, const SeqPointSet &set)
{
    w.u64(set.points.size());
    for (const SeqPointRecord &p : set.points) {
        w.i64(p.seqLen);
        w.f64(p.weight);
        w.f64(p.statValue);
    }
    w.u32(set.binsUsed);
    w.b(set.usedAllUnique);
    w.b(set.converged);
    w.f64(set.selfError);
}

SeqPointSet
decodeSeqPointSet(ByteReader &r)
{
    SeqPointSet set;
    uint64_t n = r.u64();
    if (n > r.remaining() / 24) {
        r.fail(csprintf("%s: SeqPoint count %llu exceeds the payload",
                        r.what().c_str(),
                        static_cast<unsigned long long>(n)));
    }
    set.points.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
        SeqPointRecord p;
        p.seqLen = r.i64();
        p.weight = r.f64();
        p.statValue = r.f64();
        set.points.push_back(p);
    }
    set.binsUsed = r.u32();
    set.usedAllUnique = r.b();
    set.converged = r.b();
    set.selfError = r.f64();
    return set;
}

} // namespace core
} // namespace seqpoint
