/**
 * @file
 * Projection helper implementation.
 */

#include "core/projection.hh"

#include <cmath>

#include "common/logging.hh"

namespace seqpoint {
namespace core {

double
projectTrainingTime(const SeqPointSet &sel, const SlStatFn &time_for_sl)
{
    return sel.projectTotal(time_for_sl);
}

double
projectThroughput(const SeqPointSet &sel, unsigned batch,
                  const SlStatFn &time_for_sl)
{
    fatal_if(batch == 0, "projectThroughput: zero batch");
    double time = sel.projectTotal(time_for_sl);
    if (time <= 0.0)
        return 0.0;
    return sel.totalWeight() * static_cast<double>(batch) / time;
}

double
upliftPercent(double thr_from, double thr_to)
{
    fatal_if(thr_from <= 0.0, "upliftPercent: non-positive baseline");
    return (thr_to / thr_from - 1.0) * 100.0;
}

double
timeErrorPercent(double projected, double actual)
{
    fatal_if(actual == 0.0, "timeErrorPercent: zero actual");
    return std::fabs(projected - actual) / std::fabs(actual) * 100.0;
}

double
upliftErrorPoints(double uplift_proj, double uplift_actual)
{
    return std::fabs(uplift_proj - uplift_actual);
}

} // namespace core
} // namespace seqpoint
