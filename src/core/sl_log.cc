/**
 * @file
 * SlStats implementation.
 */

#include "core/sl_log.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace seqpoint {
namespace core {

SlStats
SlStats::fromIterations(const std::vector<IterationSample> &samples)
{
    std::map<int64_t, SlEntry> by_sl;
    for (const IterationSample &s : samples) {
        SlEntry &e = by_sl[s.seqLen];
        e.seqLen = s.seqLen;
        e.freq += 1;
        e.statValue += s.statValue; // summed; averaged below
    }

    std::vector<SlEntry> entries;
    entries.reserve(by_sl.size());
    for (auto &[sl, e] : by_sl) {
        e.statValue /= static_cast<double>(e.freq);
        entries.push_back(e);
    }
    return fromEntries(std::move(entries));
}

SlStats
SlStats::fromEntries(std::vector<SlEntry> entries)
{
    std::sort(entries.begin(), entries.end(),
              [](const SlEntry &a, const SlEntry &b) {
                  return a.seqLen < b.seqLen;
              });
    for (size_t i = 1; i < entries.size(); ++i) {
        panic_if(entries[i].seqLen == entries[i - 1].seqLen,
                 "SlStats: duplicate SL entry %lld",
                 static_cast<long long>(entries[i].seqLen));
    }

    SlStats stats;
    stats.entries_ = std::move(entries);
    return stats;
}

uint64_t
SlStats::totalIterations() const
{
    uint64_t total = 0;
    for (const SlEntry &e : entries_)
        total += e.freq;
    return total;
}

double
SlStats::actualTotal() const
{
    double total = 0.0;
    for (const SlEntry &e : entries_)
        total += static_cast<double>(e.freq) * e.statValue;
    return total;
}

int64_t
SlStats::minSl() const
{
    panic_if(entries_.empty(), "SlStats: empty");
    return entries_.front().seqLen;
}

int64_t
SlStats::maxSl() const
{
    panic_if(entries_.empty(), "SlStats: empty");
    return entries_.back().seqLen;
}

const SlEntry *
SlStats::find(int64_t sl) const
{
    auto it = std::lower_bound(entries_.begin(), entries_.end(), sl,
        [](const SlEntry &e, int64_t v) { return e.seqLen < v; });
    if (it == entries_.end() || it->seqLen != sl)
        return nullptr;
    return &*it;
}

int64_t
SlStats::mostFrequentSl() const
{
    panic_if(entries_.empty(), "SlStats: empty");
    const SlEntry *best = &entries_.front();
    for (const SlEntry &e : entries_) {
        if (e.freq > best->freq)
            best = &e;
    }
    return best->seqLen;
}

int64_t
SlStats::medianSl() const
{
    panic_if(entries_.empty(), "SlStats: empty");
    uint64_t half = (totalIterations() + 1) / 2;
    uint64_t acc = 0;
    for (const SlEntry &e : entries_) {
        acc += e.freq;
        if (acc >= half)
            return e.seqLen;
    }
    return entries_.back().seqLen;
}

void
encodeSlStats(ByteWriter &w, const SlStats &stats)
{
    w.u64(stats.entries().size());
    for (const SlEntry &e : stats.entries()) {
        w.i64(e.seqLen);
        w.u64(e.freq);
        w.f64(e.statValue);
    }
}

SlStats
decodeSlStats(ByteReader &r)
{
    uint64_t n = r.u64();
    if (n > r.remaining() / 24) {
        r.fail(csprintf("%s: SL-entry count %llu exceeds the payload",
                        r.what().c_str(),
                        static_cast<unsigned long long>(n)));
    }
    std::vector<SlEntry> entries;
    entries.reserve(static_cast<size_t>(n));
    std::set<int64_t> seen;
    for (uint64_t i = 0; i < n; ++i) {
        SlEntry e;
        e.seqLen = r.i64();
        e.freq = r.u64();
        e.statValue = r.f64();
        // Reject duplicates here so a corrupt payload fails in the
        // reader's own mode instead of tripping fromEntries' panic.
        if (!seen.insert(e.seqLen).second) {
            r.fail(csprintf("%s: duplicate SL entry %lld",
                            r.what().c_str(),
                            static_cast<long long>(e.seqLen)));
        }
        entries.push_back(e);
    }
    return SlStats::fromEntries(std::move(entries));
}

} // namespace core
} // namespace seqpoint
