/**
 * @file
 * The SeqPoint selection algorithm (paper section V, Fig 10): bin the
 * unique sequence lengths, pick one representative per bin, weight it
 * by the bin's iteration count, and refine the bin count until the
 * weighted projection reproduces the measured epoch statistic within
 * a user threshold.
 */

#ifndef SEQPOINT_CORE_SEQPOINT_HH
#define SEQPOINT_CORE_SEQPOINT_HH

#include <functional>
#include <vector>

#include "common/bytestream.hh"
#include "core/binning.hh"
#include "core/sl_log.hh"

namespace seqpoint {
namespace core {

/** How the representative SL of a bin is chosen. */
enum class RepPick {
    ClosestToAvgStat,         ///< Closest to the unweighted bin
                              ///< average statistic (the paper).
    ClosestToWeightedAvgStat, ///< Closest to the frequency-weighted
                              ///< bin average (ablation).
    ClosestToAvgSl,           ///< Closest to the bin's mean SL
                              ///< (ablation).
    MostFrequent,             ///< Highest-frequency SL in the bin
                              ///< (ablation).
};

/** Tunables of the selection algorithm. */
struct SeqPointOptions {
    /** Use all unique SLs when there are at most this many (n). */
    unsigned uniqueSlThreshold = 10;

    /** Initial bucket count (k). */
    unsigned initialBins = 5;

    /** Relative projection-error convergence threshold (e). */
    double errorThreshold = 0.005;

    /** Refinement safety cap on k. */
    unsigned maxBins = 256;

    /** Bucket-boundary policy. */
    BinningMode binning = BinningMode::EqualWidth;

    /** Representative-pick policy. */
    RepPick repPick = RepPick::ClosestToAvgStat;

    /** Field-wise equality (snapshot identity guards). */
    bool operator==(const SeqPointOptions &other) const = default;
};

/** One selected representative iteration. */
struct SeqPointRecord {
    int64_t seqLen = 0;     ///< Representative sequence length.
    double weight = 0.0;    ///< Iterations it stands for.
    double statValue = 0.0; ///< Its statistic on the reference setup.

    /** Bit-exact field-wise equality (identity guards). */
    bool operator==(const SeqPointRecord &other) const = default;
};

/** The selected representative set plus selection diagnostics. */
struct SeqPointSet {
    std::vector<SeqPointRecord> points; ///< Ascending by SL.
    unsigned binsUsed = 0;      ///< Final bucket count (0 if
                                ///< all-unique). The k-means selector
                                ///< reports the clusters that emitted
                                ///< a representative, i.e. empty
                                ///< clusters are not counted.
    bool usedAllUnique = false; ///< True when below the n threshold.
    bool converged = false;     ///< Error threshold met.
    double selfError = 0.0;     ///< Relative error on the reference
                                ///< statistic it was selected with.

    /**
     * Bit-exact field-wise equality (the scheduler-vs-serial and
     * memoized-vs-recomputed identity guards; no tolerance).
     */
    bool operator==(const SeqPointSet &other) const = default;

    /** @return Sum of weights (the epoch's iteration count). */
    double totalWeight() const;

    /** @return Weighted total of the stored statistics (Eq. 1). */
    double projectTotal() const;

    /**
     * Weighted total of an arbitrary per-SL statistic, e.g. the
     * runtime of the representative iterations re-measured on a
     * different hardware configuration.
     *
     * @param stat Statistic evaluated per representative SL.
     */
    double projectTotal(const std::function<double(int64_t)> &stat) const;

    /**
     * Weighted average of a per-SL statistic -- the normalised form
     * Eq. 1 prescribes for ratio statistics (throughput, IPC).
     *
     * @param stat Statistic evaluated per representative SL.
     */
    double projectRatio(const std::function<double(int64_t)> &stat) const;
};

/**
 * Run the SeqPoint selection on an epoch's SL statistics.
 *
 * @param stats Per-unique-SL frequency and statistic log.
 * @param opts Algorithm tunables.
 * @return The selected set (check .converged).
 */
SeqPointSet selectSeqPoints(const SlStats &stats,
                            const SeqPointOptions &opts = SeqPointOptions{});

/**
 * One binning pass at a fixed k (no refinement loop): steps 2-4 of
 * the mechanism. Exposed for tests and ablations.
 *
 * @param stats Per-unique-SL statistics.
 * @param k Bucket count.
 * @param opts Binning/representative policies.
 */
SeqPointSet selectWithBins(const SlStats &stats, unsigned k,
                           const SeqPointOptions &opts = SeqPointOptions{});

/**
 * Serialize the selection tunables (snapshot store). The decoded
 * options compare equal under operator==, so snapshot identity
 * guards keyed on them keep working across a save/load cycle.
 */
void encodeSeqPointOptions(ByteWriter &w, const SeqPointOptions &opts);

/**
 * Decode options written by encodeSeqPointOptions(). Out-of-range
 * policy enums are fatal (corrupted artifact).
 */
SeqPointOptions decodeSeqPointOptions(ByteReader &r);

/** Serialize a representative set (snapshot store), bit-exactly. */
void encodeSeqPointSet(ByteWriter &w, const SeqPointSet &set);

/** Decode a set written by encodeSeqPointSet(). */
SeqPointSet decodeSeqPointSet(ByteReader &r);

} // namespace core
} // namespace seqpoint

#endif // SEQPOINT_CORE_SEQPOINT_HH
