/**
 * @file
 * The selection baselines the paper evaluates against (section VI-C):
 * Frequent, Median, Worst (single-iteration proxies informed by the
 * SL insight) and Prior (the sampling approach of Zhu et al.,
 * IISWC'18: a fixed number of contiguous iterations after a warmup).
 */

#ifndef SEQPOINT_CORE_BASELINES_HH
#define SEQPOINT_CORE_BASELINES_HH

#include <string>
#include <vector>

#include "core/seqpoint.hh"
#include "core/sl_log.hh"

namespace seqpoint {
namespace core {

/** Selector identities used across the evaluation harness. */
enum class SelectorKind {
    Worst,    ///< Adversarial single iteration.
    Frequent, ///< Most frequent SL.
    Median,   ///< Median SL.
    Prior,    ///< 50 contiguous iterations after warmup.
    SeqPoint, ///< This paper's selection.
};

/** @return Display name ("worst", "frequent", ...). */
const char *selectorName(SelectorKind kind);

/**
 * Frequent: the single most frequent SL, weighted by the full epoch's
 * iteration count.
 *
 * @param stats Per-SL statistics.
 */
SeqPointSet selectFrequent(const SlStats &stats);

/**
 * Median: the median-SL iteration, weighted by the full epoch.
 *
 * @param stats Per-SL statistics.
 */
SeqPointSet selectMedian(const SlStats &stats);

/**
 * Worst: the single SL whose whole-epoch extrapolation has the
 * largest error on the reference statistic -- the bound on arbitrary
 * single-iteration selection.
 *
 * @param stats Per-SL statistics.
 */
SeqPointSet selectWorst(const SlStats &stats);

/**
 * Prior: `count` contiguous iterations starting after `warmup`
 * iterations of the epoch, in execution order. Iterations of equal SL
 * are merged; each sampled iteration stands for an equal share of the
 * epoch.
 *
 * The default warmup skips past the framework's initialisation and
 * autotune churn, which for these workloads covers a large part of
 * the first epoch. Because DS2 sorts its first epoch by SL, this
 * drops Prior's window into the mid-length region whose runtimes
 * track the epoch mean -- the accidental-accuracy artifact the paper
 * dissects in section VI-D.
 *
 * @param epoch_order Per-iteration observations in execution order.
 * @param warmup Iterations skipped from the start.
 * @param count Iterations sampled.
 */
SeqPointSet selectPrior(const std::vector<IterationSample> &epoch_order,
                        unsigned warmup = 300, unsigned count = 50);

} // namespace core
} // namespace seqpoint

#endif // SEQPOINT_CORE_BASELINES_HH
