/**
 * @file
 * Baseline selector implementations.
 */

#include "core/baselines.hh"

#include <cmath>
#include <map>

#include "common/logging.hh"
#include "common/stats_math.hh"

namespace seqpoint {
namespace core {

const char *
selectorName(SelectorKind kind)
{
    switch (kind) {
      case SelectorKind::Worst: return "worst";
      case SelectorKind::Frequent: return "frequent";
      case SelectorKind::Median: return "median";
      case SelectorKind::Prior: return "prior";
      case SelectorKind::SeqPoint: return "seqpoint";
    }
    return "?";
}

namespace {

/** Build a single-SL selection standing for the whole epoch. */
SeqPointSet
singleSlSelection(const SlStats &stats, int64_t sl)
{
    const SlEntry *entry = stats.find(sl);
    panic_if(entry == nullptr, "singleSlSelection: SL %lld not in stats",
             static_cast<long long>(sl));

    SeqPointSet set;
    set.points.push_back(SeqPointRecord{
        sl, static_cast<double>(stats.totalIterations()),
        entry->statValue});
    double actual = stats.actualTotal();
    set.selfError = actual != 0.0
        ? relError(set.projectTotal(), actual) : 0.0;
    set.converged = true;
    return set;
}

} // anonymous namespace

SeqPointSet
selectFrequent(const SlStats &stats)
{
    return singleSlSelection(stats, stats.mostFrequentSl());
}

SeqPointSet
selectMedian(const SlStats &stats)
{
    return singleSlSelection(stats, stats.medianSl());
}

SeqPointSet
selectWorst(const SlStats &stats)
{
    panic_if(stats.uniqueCount() == 0, "selectWorst: empty stats");
    double actual = stats.actualTotal();
    double total_iters = static_cast<double>(stats.totalIterations());

    int64_t worst_sl = stats.entries().front().seqLen;
    double worst_err = -1.0;
    for (const SlEntry &e : stats.entries()) {
        double projected = e.statValue * total_iters;
        double err = actual != 0.0
            ? std::fabs(projected - actual) / std::fabs(actual) : 0.0;
        if (err > worst_err) {
            worst_err = err;
            worst_sl = e.seqLen;
        }
    }
    return singleSlSelection(stats, worst_sl);
}

SeqPointSet
selectPrior(const std::vector<IterationSample> &epoch_order,
            unsigned warmup, unsigned count)
{
    fatal_if(count == 0, "selectPrior: zero sample count");
    fatal_if(epoch_order.size() < warmup + count,
             "selectPrior: epoch too short (%zu) for warmup %u + "
             "samples %u", epoch_order.size(), warmup, count);

    double total_iters = static_cast<double>(epoch_order.size());
    double weight_each = total_iters / static_cast<double>(count);

    // Merge sampled iterations by SL, accumulating weight and
    // averaging the statistic.
    std::map<int64_t, SeqPointRecord> merged;
    for (unsigned i = 0; i < count; ++i) {
        const IterationSample &s = epoch_order[warmup + i];
        SeqPointRecord &rec = merged[s.seqLen];
        if (rec.weight == 0.0) {
            rec.seqLen = s.seqLen;
            rec.statValue = s.statValue;
        } else {
            // Running average over duplicates of this SL.
            double n_prev = rec.weight / weight_each;
            rec.statValue = (rec.statValue * n_prev + s.statValue) /
                (n_prev + 1.0);
        }
        rec.weight += weight_each;
    }

    SeqPointSet set;
    for (auto &[sl, rec] : merged)
        set.points.push_back(rec);
    set.converged = true;

    double actual = 0.0;
    for (const IterationSample &s : epoch_order)
        actual += s.statValue;
    set.selfError = actual != 0.0
        ? relError(set.projectTotal(), actual) : 0.0;
    return set;
}

} // namespace core
} // namespace seqpoint
