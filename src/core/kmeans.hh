/**
 * @file
 * Weighted k-means clustering: the "more sophisticated" alternative
 * the paper considered (section VII-C) and found to match simple SL
 * binning. Provided both as a generic clustering utility and as a
 * drop-in SeqPoint selector for the comparison bench.
 */

#ifndef SEQPOINT_CORE_KMEANS_HH
#define SEQPOINT_CORE_KMEANS_HH

#include <cstdint>
#include <vector>

#include "common/flat_matrix.hh"
#include "core/seqpoint.hh"
#include "core/sl_log.hh"

namespace seqpoint {
namespace core {

/** k-means tunables. */
struct KmeansOptions {
    unsigned k = 5;          ///< Cluster count.
    unsigned maxIters = 100; ///< Lloyd iteration cap.
    uint64_t seed = 42;      ///< k-means++ seeding.
};

/** k-means clustering result. */
struct KmeansResult {
    std::vector<unsigned> assignment; ///< Cluster id per point.
    std::vector<std::vector<double>> centroids; ///< Final centroids.
    double inertia = 0.0;    ///< Weighted within-cluster SSE.
    unsigned iterations = 0; ///< Lloyd iterations executed.
};

/** k-means result over flat row-major storage (no per-row heaps). */
struct KmeansFlatResult {
    std::vector<unsigned> assignment; ///< Cluster id per point.
    FlatMatrix centroids;    ///< Final centroids, one per row.
    double inertia = 0.0;    ///< Weighted within-cluster SSE, computed
                             ///< against the final centroids and a
                             ///< final consistent assignment.
    unsigned iterations = 0; ///< Lloyd iterations executed.
};

/**
 * Weighted Lloyd's k-means with k-means++ initialisation over a flat
 * row-major point matrix. The assignment step scans contiguous rows
 * and ranks centroids by `||c||^2 - 2 p.c` (the expansion of
 * `||p-c||^2` with the point-norm term dropped), with centroid norms
 * precomputed once per Lloyd iteration.
 *
 * @param points One point per row.
 * @param weights Non-negative per-point weights.
 * @param opts Tunables; k must not exceed the point count.
 * @return Clustering result (deterministic for a given seed).
 */
KmeansFlatResult kmeansFlat(const FlatMatrix &points,
                            const std::vector<double> &weights,
                            const KmeansOptions &opts);

/**
 * Weighted Lloyd's k-means with k-means++ initialisation.
 *
 * Nested-layout convenience wrapper over kmeansFlat().
 *
 * @param points Feature vectors (all the same dimension).
 * @param weights Non-negative per-point weights.
 * @param opts Tunables; k must not exceed the point count.
 * @return Clustering result (deterministic for a given seed).
 */
KmeansResult kmeans(const std::vector<std::vector<double>> &points,
                    const std::vector<double> &weights,
                    const KmeansOptions &opts);

/**
 * SeqPoint-style selection via k-means over per-SL execution
 * statistics: each unique SL is a point (features: normalised
 * statistic), weighted by frequency; the representative of a cluster
 * is the member closest to the centroid; its weight is the cluster's
 * iteration count.
 *
 * @param stats Per-SL statistics.
 * @param k Cluster count.
 * @param seed Seeding for k-means++.
 */
SeqPointSet selectByKmeans(const SlStats &stats, unsigned k,
                           uint64_t seed = 42);

} // namespace core
} // namespace seqpoint

#endif // SEQPOINT_CORE_KMEANS_HH
