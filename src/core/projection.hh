/**
 * @file
 * Projection helpers shared by the evaluation: turning a selection
 * plus per-SL measurements into whole-run time, throughput and
 * speedup-uplift estimates, and the error metrics of Figs 11/12 and
 * 15/16.
 */

#ifndef SEQPOINT_CORE_PROJECTION_HH
#define SEQPOINT_CORE_PROJECTION_HH

#include <functional>

#include "core/seqpoint.hh"

namespace seqpoint {
namespace core {

/** Per-SL statistic source (e.g. iteration runtime on some device). */
using SlStatFn = std::function<double(int64_t)>;

/**
 * Projected whole-run training time: Eq. 1's weighted sum with the
 * representative iterations re-measured through `time_for_sl`.
 *
 * @param sel The selection (any selector's output).
 * @param time_for_sl Per-SL iteration runtime on the target setup.
 */
double projectTrainingTime(const SeqPointSet &sel,
                           const SlStatFn &time_for_sl);

/**
 * Projected training throughput in samples/s: weighted iteration
 * count times batch size over projected time.
 *
 * @param sel The selection.
 * @param batch Batch size.
 * @param time_for_sl Per-SL iteration runtime on the target setup.
 */
double projectThroughput(const SeqPointSet &sel, unsigned batch,
                         const SlStatFn &time_for_sl);

/**
 * Throughput uplift between two configurations, in percent:
 * (to/from - 1) * 100.
 *
 * @param thr_from Throughput on the starting configuration.
 * @param thr_to Throughput on the improved configuration.
 */
double upliftPercent(double thr_from, double thr_to);

/**
 * Relative projection error in percent: |proj - actual|/actual * 100
 * (the Fig 11/12 metric).
 */
double timeErrorPercent(double projected, double actual);

/**
 * Speedup projection error in percentage points:
 * |uplift_proj - uplift_actual| (the Fig 15/16 metric).
 */
double upliftErrorPoints(double uplift_proj, double uplift_actual);

} // namespace core
} // namespace seqpoint

#endif // SEQPOINT_CORE_PROJECTION_HH
