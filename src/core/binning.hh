/**
 * @file
 * Sequence-length binning (step 2 of the SeqPoint mechanism): split
 * the sorted unique-SL list into k buckets of contiguous SL ranges,
 * exploiting the observation that nearby SLs behave alike.
 */

#ifndef SEQPOINT_CORE_BINNING_HH
#define SEQPOINT_CORE_BINNING_HH

#include <cstddef>
#include <vector>

#include "core/sl_log.hh"

namespace seqpoint {
namespace core {

/** How bucket boundaries are placed. */
enum class BinningMode {
    EqualWidth,     ///< Equal SL-range width per bucket (the paper).
    EqualFrequency, ///< Equal iteration count per bucket (ablation).
};

/** A bucket: an index range [first, last] into SlStats::entries(). */
struct Bin {
    size_t first = 0; ///< First entry index (inclusive).
    size_t last = 0;  ///< Last entry index (inclusive).

    /** @return Number of unique SLs in the bucket. */
    size_t count() const { return last - first + 1; }
};

/**
 * Bin the unique SLs into at most k non-empty buckets.
 *
 * Contract: k must lie in [1, stats.uniqueCount()] -- requesting more
 * buckets than unique SLs is a fatal error, not a silent clamp (both
 * modes would otherwise degenerate to at most uniqueCount() bins and
 * callers would misread the result as a k-bucket split; clamp k
 * yourself the way selectSeqPoints() does). Within that range,
 * EqualWidth places boundaries at equal SL intervals across
 * [minSl, maxSl] and drops buckets that receive no unique SL, so
 * *fewer* than k bins may still be returned; EqualFrequency balances
 * the iteration counts instead and also returns at most k bins. Every
 * returned bucket is non-empty and the buckets tile
 * [0, uniqueCount()) in ascending SL order.
 *
 * @param stats Per-SL statistics.
 * @param k Requested bucket count, in [1, stats.uniqueCount()].
 * @param mode Boundary placement policy.
 * @return Non-empty buckets in ascending SL order.
 */
std::vector<Bin> binEntries(const SlStats &stats, unsigned k,
                            BinningMode mode);

/** Iteration count (sum of frequencies) inside a bucket. */
uint64_t binIterations(const SlStats &stats, const Bin &bin);

/**
 * Unweighted mean statistic over the unique SLs inside a bucket (the
 * paper's bin average: bins hold SLs, not iterations).
 */
double binMeanStat(const SlStats &stats, const Bin &bin);

/** Frequency-weighted mean statistic inside a bucket (ablation). */
double binMeanStatWeighted(const SlStats &stats, const Bin &bin);

} // namespace core
} // namespace seqpoint

#endif // SEQPOINT_CORE_BINNING_HH
