/**
 * @file
 * Binning implementation.
 */

#include "core/binning.hh"

#include <cmath>

#include "common/logging.hh"

namespace seqpoint {
namespace core {

namespace {

std::vector<Bin>
binEqualWidth(const SlStats &stats, unsigned k)
{
    const auto &entries = stats.entries();
    double lo = static_cast<double>(stats.minSl());
    double hi = static_cast<double>(stats.maxSl());
    double width = (hi - lo + 1.0) / static_cast<double>(k);

    std::vector<Bin> bins;
    size_t i = 0;
    for (unsigned b = 0; b < k && i < entries.size(); ++b) {
        double upper = lo + width * static_cast<double>(b + 1);
        size_t first = i;
        while (i < entries.size() &&
               (static_cast<double>(entries[i].seqLen) < upper ||
                b + 1 == k)) {
            ++i;
        }
        if (i > first)
            bins.push_back(Bin{first, i - 1});
    }
    return bins;
}

std::vector<Bin>
binEqualFrequency(const SlStats &stats, unsigned k)
{
    const auto &entries = stats.entries();
    uint64_t total = stats.totalIterations();
    double per_bin = static_cast<double>(total) / static_cast<double>(k);

    std::vector<Bin> bins;
    size_t i = 0;
    uint64_t consumed = 0;
    for (unsigned b = 0; b < k && i < entries.size(); ++b) {
        double target = per_bin * static_cast<double>(b + 1);
        size_t first = i;
        while (i < entries.size() &&
               (static_cast<double>(consumed) < target || b + 1 == k)) {
            consumed += entries[i].freq;
            ++i;
        }
        if (i > first)
            bins.push_back(Bin{first, i - 1});
    }
    return bins;
}

} // anonymous namespace

std::vector<Bin>
binEntries(const SlStats &stats, unsigned k, BinningMode mode)
{
    fatal_if(k == 0, "binEntries: zero bucket count");
    panic_if(stats.uniqueCount() == 0, "binEntries: empty stats");
    // More buckets than unique SLs cannot be honoured: both modes
    // would quietly return at most uniqueCount() bins, which callers
    // (e.g. a fixed-k ablation) would misread as a k-bucket split.
    fatal_if(k > stats.uniqueCount(),
             "binEntries: %u bucket(s) requested but only %zu unique "
             "SL(s) exist; clamp k to the unique count",
             k, stats.uniqueCount());

    switch (mode) {
      case BinningMode::EqualWidth:
        return binEqualWidth(stats, k);
      case BinningMode::EqualFrequency:
        return binEqualFrequency(stats, k);
    }
    panic("binEntries: bad mode");
    return {};
}

uint64_t
binIterations(const SlStats &stats, const Bin &bin)
{
    const auto &entries = stats.entries();
    panic_if(bin.last >= entries.size(), "binIterations: bad bin");
    uint64_t total = 0;
    for (size_t i = bin.first; i <= bin.last; ++i)
        total += entries[i].freq;
    return total;
}

double
binMeanStat(const SlStats &stats, const Bin &bin)
{
    const auto &entries = stats.entries();
    panic_if(bin.last >= entries.size(), "binMeanStat: bad bin");
    double num = 0.0;
    for (size_t i = bin.first; i <= bin.last; ++i)
        num += entries[i].statValue;
    return num / static_cast<double>(bin.count());
}

double
binMeanStatWeighted(const SlStats &stats, const Bin &bin)
{
    const auto &entries = stats.entries();
    panic_if(bin.last >= entries.size(), "binMeanStatWeighted: bad bin");
    double num = 0.0;
    double den = 0.0;
    for (size_t i = bin.first; i <= bin.last; ++i) {
        num += static_cast<double>(entries[i].freq) *
            entries[i].statValue;
        den += static_cast<double>(entries[i].freq);
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace core
} // namespace seqpoint
