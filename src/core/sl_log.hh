/**
 * @file
 * Sequence-length statistics: the per-unique-SL frequency and runtime
 * log that step 1 of the SeqPoint mechanism (Fig 10) extracts from a
 * single training epoch. This is all SeqPoint ever needs -- no
 * hardware counters, no simulation, just iteration runtimes.
 */

#ifndef SEQPOINT_CORE_SL_LOG_HH
#define SEQPOINT_CORE_SL_LOG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytestream.hh"

namespace seqpoint {
namespace core {

/** One observed training iteration: its SL and measured statistic. */
struct IterationSample {
    int64_t seqLen = 0;    ///< Sequence length of the iteration.
    double statValue = 0.0; ///< Measured statistic (runtime, etc.).
};

/** Aggregate for one unique sequence length. */
struct SlEntry {
    int64_t seqLen = 0;     ///< The sequence length.
    uint64_t freq = 0;      ///< Iterations with this SL in the epoch.
    double statValue = 0.0; ///< Per-iteration statistic at this SL.
};

/**
 * Per-unique-SL statistics over one epoch, sorted by SL.
 */
class SlStats
{
  public:
    /**
     * Build from an iteration log.
     *
     * Repeated observations of the same SL are averaged (they are
     * identical under the paper's no-data-dependent-optimisation
     * assumption, but measurement noise is tolerated).
     *
     * @param samples Per-iteration observations, any order.
     */
    static SlStats fromIterations(
        const std::vector<IterationSample> &samples);

    /**
     * Build directly from per-SL entries.
     *
     * @param entries Entries (any order; sorted internally).
     */
    static SlStats fromEntries(std::vector<SlEntry> entries);

    /** @return Entries sorted ascending by SL. */
    const std::vector<SlEntry> &entries() const { return entries_; }

    /** @return Number of unique sequence lengths. */
    std::size_t uniqueCount() const { return entries_.size(); }

    /** @return Total iterations across all SLs. */
    uint64_t totalIterations() const;

    /** @return Sum over iterations of the statistic (actual total). */
    double actualTotal() const;

    /** @return Smallest SL. */
    int64_t minSl() const;

    /** @return Largest SL. */
    int64_t maxSl() const;

    /**
     * Entry lookup by SL.
     *
     * @param sl Sequence length.
     * @return The entry, or nullptr if absent.
     */
    const SlEntry *find(int64_t sl) const;

    /** @return SL with the highest iteration frequency. */
    int64_t mostFrequentSl() const;

    /** @return Median SL of the iteration-weighted distribution. */
    int64_t medianSl() const;

  private:
    std::vector<SlEntry> entries_;
};

/**
 * Serialize per-SL statistics (snapshot store). Entries round-trip
 * bit-exactly and stay in ascending-SL order.
 */
void encodeSlStats(ByteWriter &w, const SlStats &stats);

/** Decode statistics written by encodeSlStats(). */
SlStats decodeSlStats(ByteReader &r);

} // namespace core
} // namespace seqpoint

#endif // SEQPOINT_CORE_SL_LOG_HH
