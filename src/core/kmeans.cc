/**
 * @file
 * Weighted k-means implementation over flat row-major storage.
 */

#include "core/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats_math.hh"

namespace seqpoint {
namespace core {

namespace {

/**
 * Assign every point to its nearest centroid using the expansion
 * `||p-c||^2 = ||p||^2 - 2 p.c + ||c||^2`: the `||p||^2` term is
 * constant per point, so centroids are ranked by `||c||^2 - 2 p.c`
 * with the centroid norms precomputed by the caller.
 *
 * @return True when any assignment changed.
 */
bool
assignNearest(const FlatMatrix &points, const FlatMatrix &centroids,
              const std::vector<double> &centroid_norms,
              std::vector<unsigned> &assignment)
{
    const std::size_t n = points.rows();
    const std::size_t k = centroids.rows();
    const std::size_t dim = points.cols();

    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
        const double *p = points.row(i);
        unsigned best_c = 0;
        double best_score = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < k; ++c) {
            double score = centroid_norms[c] -
                2.0 * dotProduct(p, centroids.row(c), dim);
            if (score < best_score) {
                best_score = score;
                best_c = static_cast<unsigned>(c);
            }
        }
        if (assignment[i] != best_c) {
            assignment[i] = best_c;
            changed = true;
        }
    }
    return changed;
}

} // anonymous namespace

KmeansFlatResult
kmeansFlat(const FlatMatrix &points, const std::vector<double> &weights,
           const KmeansOptions &opts)
{
    fatal_if(points.rows() == 0, "kmeans: no points");
    fatal_if(points.rows() != weights.size(),
             "kmeans: %zu points but %zu weights", points.rows(),
             weights.size());
    fatal_if(opts.k == 0 || opts.k > points.rows(),
             "kmeans: k=%u out of range for %zu points", opts.k,
             points.rows());

    const std::size_t n = points.rows();
    const std::size_t dim = points.cols();

    Rng rng(opts.seed, 0x5eed);

    // k-means++ initialisation. The distance-to-nearest-seed vector is
    // maintained incrementally: adding a seed can only lower it, so
    // one sqDistance per (point, new seed) pair suffices.
    FlatMatrix centroids(opts.k, dim);
    std::size_t first = rng.weightedIndex(weights);
    std::copy(points.row(first), points.row(first) + dim,
              centroids.row(0));

    std::vector<double> best_d2(
        n, std::numeric_limits<double>::infinity());
    std::vector<double> d2(n);
    for (unsigned next = 1; next < opts.k; ++next) {
        const double *latest = centroids.row(next - 1);
        for (std::size_t i = 0; i < n; ++i) {
            best_d2[i] = std::min(
                best_d2[i], sqDistance(points.row(i), latest, dim));
            d2[i] = best_d2[i] * std::max(weights[i], 1e-12);
        }
        std::size_t pick = rng.weightedIndex(d2);
        std::copy(points.row(pick), points.row(pick) + dim,
                  centroids.row(next));
    }

    KmeansFlatResult res;
    res.assignment.assign(n, 0);

    std::vector<double> centroid_norms(opts.k);
    FlatMatrix sums(opts.k, dim);
    std::vector<double> wsum(opts.k);

    for (unsigned iter = 0; iter < opts.maxIters; ++iter) {
        res.iterations = iter + 1;

        // Assignment step.
        for (unsigned c = 0; c < opts.k; ++c)
            centroid_norms[c] = sqNorm(centroids.row(c), dim);
        bool changed = assignNearest(points, centroids, centroid_norms,
                                     res.assignment);

        // Update step.
        sums.fill(0.0);
        std::fill(wsum.begin(), wsum.end(), 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            unsigned c = res.assignment[i];
            double w = weights[i];
            wsum[c] += w;
            const double *p = points.row(i);
            double *s = sums.row(c);
            for (std::size_t d = 0; d < dim; ++d)
                s[d] += w * p[d];
        }
        for (unsigned c = 0; c < opts.k; ++c) {
            if (wsum[c] <= 0.0)
                continue; // keep the previous centroid
            const double *s = sums.row(c);
            double *cent = centroids.row(c);
            for (std::size_t d = 0; d < dim; ++d)
                cent[d] = s[d] / wsum[c];
        }

        if (!changed)
            break;
    }

    // The last update step moved the centroids after the last
    // assignment, so re-assign once against the final centroids: the
    // returned assignment, centroids and inertia are then mutually
    // consistent.
    for (unsigned c = 0; c < opts.k; ++c)
        centroid_norms[c] = sqNorm(centroids.row(c), dim);
    assignNearest(points, centroids, centroid_norms, res.assignment);

    res.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        res.inertia += weights[i] * sqDistance(
            points.row(i), centroids.row(res.assignment[i]), dim);
    }
    res.centroids = std::move(centroids);
    return res;
}

KmeansResult
kmeans(const std::vector<std::vector<double>> &points,
       const std::vector<double> &weights, const KmeansOptions &opts)
{
    fatal_if(points.empty(), "kmeans: no points");

    std::size_t dim = points[0].size();
    for (const auto &p : points)
        fatal_if(p.size() != dim, "kmeans: inconsistent dimensions");

    KmeansFlatResult flat =
        kmeansFlat(FlatMatrix::fromNested(points), weights, opts);

    KmeansResult res;
    res.assignment = std::move(flat.assignment);
    res.centroids = flat.centroids.toNested();
    res.inertia = flat.inertia;
    res.iterations = flat.iterations;
    return res;
}

SeqPointSet
selectByKmeans(const SlStats &stats, unsigned k, uint64_t seed)
{
    panic_if(stats.uniqueCount() == 0, "selectByKmeans: empty stats");
    k = static_cast<unsigned>(
        std::min<size_t>(k, stats.uniqueCount()));

    const auto &entries = stats.entries();

    // Feature: the execution statistic, normalised so the clustering
    // is scale-free (the paper clusters execution profiles; runtime
    // is its validated proxy).
    double max_stat = 0.0;
    for (const SlEntry &e : entries)
        max_stat = std::max(max_stat, e.statValue);
    fatal_if(max_stat <= 0.0, "selectByKmeans: all statistics zero");

    FlatMatrix points(entries.size(), 1);
    std::vector<double> weights;
    weights.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        points(i, 0) = entries[i].statValue / max_stat;
        weights.push_back(static_cast<double>(entries[i].freq));
    }

    KmeansOptions kopts;
    kopts.k = k;
    kopts.seed = seed;
    KmeansFlatResult km = kmeansFlat(points, weights, kopts);

    // Representative per cluster: member closest to the centroid;
    // weight: the cluster's iteration count.
    std::vector<int64_t> rep(k, -1);
    std::vector<double> rep_d(k, std::numeric_limits<double>::infinity());
    std::vector<double> cluster_w(k, 0.0);
    std::vector<size_t> rep_idx(k, 0);
    for (size_t i = 0; i < entries.size(); ++i) {
        unsigned c = km.assignment[i];
        cluster_w[c] += static_cast<double>(entries[i].freq);
        double d = sqDistance(points.row(i), km.centroids.row(c), 1);
        if (d < rep_d[c]) {
            rep_d[c] = d;
            rep[c] = entries[i].seqLen;
            rep_idx[c] = i;
        }
    }

    SeqPointSet set;
    for (unsigned c = 0; c < k; ++c) {
        if (rep[c] < 0 || cluster_w[c] <= 0.0)
            continue; // empty cluster
        set.points.push_back(SeqPointRecord{
            rep[c], cluster_w[c], entries[rep_idx[c]].statValue});
    }
    // Report the clusters that actually emitted a representative, not
    // the requested k: empty clusters are dropped above.
    set.binsUsed = static_cast<unsigned>(set.points.size());
    std::sort(set.points.begin(), set.points.end(),
              [](const SeqPointRecord &a, const SeqPointRecord &b) {
                  return a.seqLen < b.seqLen;
              });

    double actual = stats.actualTotal();
    set.selfError = actual != 0.0
        ? relError(set.projectTotal(), actual) : 0.0;
    set.converged = true;
    return set;
}

} // namespace core
} // namespace seqpoint
