/**
 * @file
 * Weighted k-means implementation.
 */

#include "core/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats_math.hh"

namespace seqpoint {
namespace core {

namespace {

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        d += (a[i] - b[i]) * (a[i] - b[i]);
    return d;
}

} // anonymous namespace

KmeansResult
kmeans(const std::vector<std::vector<double>> &points,
       const std::vector<double> &weights, const KmeansOptions &opts)
{
    fatal_if(points.empty(), "kmeans: no points");
    fatal_if(points.size() != weights.size(),
             "kmeans: %zu points but %zu weights", points.size(),
             weights.size());
    fatal_if(opts.k == 0 || opts.k > points.size(),
             "kmeans: k=%u out of range for %zu points", opts.k,
             points.size());

    size_t dim = points[0].size();
    for (const auto &p : points)
        fatal_if(p.size() != dim, "kmeans: inconsistent dimensions");

    Rng rng(opts.seed, 0x5eed);

    // k-means++ initialisation.
    std::vector<std::vector<double>> centroids;
    centroids.reserve(opts.k);
    centroids.push_back(points[rng.weightedIndex(weights)]);
    while (centroids.size() < opts.k) {
        std::vector<double> d2(points.size());
        for (size_t i = 0; i < points.size(); ++i) {
            double best = std::numeric_limits<double>::infinity();
            for (const auto &c : centroids)
                best = std::min(best, sqDist(points[i], c));
            d2[i] = best * std::max(weights[i], 1e-12);
        }
        centroids.push_back(points[rng.weightedIndex(d2)]);
    }

    KmeansResult res;
    res.assignment.assign(points.size(), 0);

    for (unsigned iter = 0; iter < opts.maxIters; ++iter) {
        res.iterations = iter + 1;

        // Assignment step.
        bool changed = false;
        for (size_t i = 0; i < points.size(); ++i) {
            unsigned best_c = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (unsigned c = 0; c < centroids.size(); ++c) {
                double d = sqDist(points[i], centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best_c = c;
                }
            }
            if (res.assignment[i] != best_c) {
                res.assignment[i] = best_c;
                changed = true;
            }
        }

        // Update step.
        std::vector<std::vector<double>> sums(
            opts.k, std::vector<double>(dim, 0.0));
        std::vector<double> wsum(opts.k, 0.0);
        for (size_t i = 0; i < points.size(); ++i) {
            unsigned c = res.assignment[i];
            wsum[c] += weights[i];
            for (size_t d = 0; d < dim; ++d)
                sums[c][d] += weights[i] * points[i][d];
        }
        for (unsigned c = 0; c < opts.k; ++c) {
            if (wsum[c] <= 0.0)
                continue; // keep the previous centroid
            for (size_t d = 0; d < dim; ++d)
                centroids[c][d] = sums[c][d] / wsum[c];
        }

        if (!changed && iter > 0)
            break;
    }

    res.centroids = std::move(centroids);
    res.inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
        res.inertia += weights[i] *
            sqDist(points[i], res.centroids[res.assignment[i]]);
    }
    return res;
}

SeqPointSet
selectByKmeans(const SlStats &stats, unsigned k, uint64_t seed)
{
    panic_if(stats.uniqueCount() == 0, "selectByKmeans: empty stats");
    k = static_cast<unsigned>(
        std::min<size_t>(k, stats.uniqueCount()));

    const auto &entries = stats.entries();

    // Feature: the execution statistic, normalised so the clustering
    // is scale-free (the paper clusters execution profiles; runtime
    // is its validated proxy).
    double max_stat = 0.0;
    for (const SlEntry &e : entries)
        max_stat = std::max(max_stat, e.statValue);
    fatal_if(max_stat <= 0.0, "selectByKmeans: all statistics zero");

    std::vector<std::vector<double>> points;
    std::vector<double> weights;
    points.reserve(entries.size());
    weights.reserve(entries.size());
    for (const SlEntry &e : entries) {
        points.push_back({e.statValue / max_stat});
        weights.push_back(static_cast<double>(e.freq));
    }

    KmeansOptions kopts;
    kopts.k = k;
    kopts.seed = seed;
    KmeansResult km = kmeans(points, weights, kopts);

    // Representative per cluster: member closest to the centroid;
    // weight: the cluster's iteration count.
    std::vector<int64_t> rep(k, -1);
    std::vector<double> rep_d(k, std::numeric_limits<double>::infinity());
    std::vector<double> cluster_w(k, 0.0);
    std::vector<size_t> rep_idx(k, 0);
    for (size_t i = 0; i < entries.size(); ++i) {
        unsigned c = km.assignment[i];
        cluster_w[c] += static_cast<double>(entries[i].freq);
        double d = sqDist(points[i], km.centroids[c]);
        if (d < rep_d[c]) {
            rep_d[c] = d;
            rep[c] = entries[i].seqLen;
            rep_idx[c] = i;
        }
    }

    SeqPointSet set;
    set.binsUsed = k;
    for (unsigned c = 0; c < k; ++c) {
        if (rep[c] < 0 || cluster_w[c] <= 0.0)
            continue; // empty cluster
        set.points.push_back(SeqPointRecord{
            rep[c], cluster_w[c], entries[rep_idx[c]].statValue});
    }
    std::sort(set.points.begin(), set.points.end(),
              [](const SeqPointRecord &a, const SeqPointRecord &b) {
                  return a.seqLen < b.seqLen;
              });

    double actual = stats.actualTotal();
    set.selfError = actual != 0.0
        ? relError(set.projectTotal(), actual) : 0.0;
    set.converged = true;
    return set;
}

} // namespace core
} // namespace seqpoint
