/**
 * @file
 * Kernel generation implementation.
 */

#include "nn/kernel_gen.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "nn/autotune.hh"

namespace seqpoint {
namespace nn {

sim::KernelDesc
gemmKernelForVariant(const std::string &base, int64_t m, int64_t n,
                     int64_t k, const GemmVariant &variant)
{
    panic_if(m <= 0 || n <= 0 || k <= 0, "gemm: non-positive dims");

    double dm = static_cast<double>(m);
    double dn = static_cast<double>(n);
    double dk = static_cast<double>(k);
    double nb_m = std::ceil(dm / variant.tileM);
    double nb_n = std::ceil(dn / variant.tileN);

    sim::KernelDesc kd;
    kd.name = base + "_" + variant.suffix();
    kd.klass = sim::KernelClass::Gemm;
    kd.gemmM = m;
    kd.gemmN = n;
    kd.gemmK = k;
    kd.flops = 2.0 * dm * dn * dk;
    // Blocked-GEMM request volume: A re-read per column block, B per
    // row block, C written once; the 1.8 factor models imperfect
    // coalescing and halo over-fetch observed on real tiled kernels.
    kd.bytesIn = 1.8 * 4.0 * (dm * dk * nb_n + dk * dn * nb_m);
    kd.bytesOut = 4.0 * dm * dn;
    // Per-CU hot set: the LDS-resident tiles plus streaming panels.
    kd.workingSetL1 = 4.0 * (variant.tileM * variant.tileK +
        variant.tileN * variant.tileK + variant.tileM * variant.tileN) *
        8.0; // several concurrent workgroups per CU
    // Chip-wide hot set: the active A/B panels of the concurrently
    // resident workgroups (tiles walk K in lockstep), not the full
    // operand footprint -- tiled GEMMs have strong L2 locality.
    kd.workingSetL2 = 4.0 * dk *
        static_cast<double>(variant.tileM + variant.tileN) * 8.0 +
        4.0 * (dm + dn) * 64.0;
    // One 256-thread workgroup per output tile.
    kd.workItems = nb_m * nb_n * 256.0;
    // Register-blocking efficiency: small tiles do less work per
    // loaded operand, losing FMA density (64x64 is the knee).
    double tile_area = static_cast<double>(variant.tileM) *
        static_cast<double>(variant.tileN);
    kd.effScale = std::clamp(std::sqrt(tile_area) / 64.0, 0.40, 1.0);
    kd.reuseL1 = 0.35;
    kd.reuseL2 = 0.82;
    return kd;
}

sim::KernelDesc
makeGemm(const std::string &base, int64_t m, int64_t n, int64_t k,
         Autotuner &tuner)
{
    const GemmVariant &v = tuner.select(m, n, k);
    return gemmKernelForVariant(base, m, n, k, v);
}

sim::KernelDesc
makeConv2d(const std::string &base, int64_t batch, int64_t in_c,
           int64_t out_c, int64_t h, int64_t w, int64_t kh, int64_t kw,
           int64_t stride_h, int64_t stride_w, Autotuner &tuner)
{
    int64_t oh = convOutLen(h, kh, stride_h);
    int64_t ow = convOutLen(w, kw, stride_w);

    // Implicit GEMM: M = out_c, K = in_c*kh*kw, N = batch*oh*ow.
    int64_t m = out_c;
    int64_t k = in_c * kh * kw;
    int64_t n = batch * oh * ow;

    sim::KernelDesc kd = makeGemm(base + "_igemm", m, n, k, tuner);
    kd.klass = sim::KernelClass::Gemm;
    // The im2col gather re-reads input rows kh*kw/stride times; fold
    // that into the request volume (implicit-GEMM kernels do the
    // gather inline).
    double overlap = static_cast<double>(kh * kw) /
        static_cast<double>(stride_h * stride_w);
    kd.bytesIn += 4.0 * static_cast<double>(batch * in_c * h * w) *
        std::max(1.0, 0.25 * overlap);
    return kd;
}

sim::KernelDesc
makeSoftmax(const std::string &base, int64_t rows, int64_t cols)
{
    panic_if(rows <= 0 || cols <= 0, "softmax: non-positive dims");

    // Block-size variant: next power of two covering cols, capped.
    int64_t block = 64;
    while (block < cols && block < 1024)
        block *= 2;

    double elems = static_cast<double>(rows) * static_cast<double>(cols);

    sim::KernelDesc kd;
    kd.name = csprintf("%s_b%lld", base.c_str(),
                       static_cast<long long>(block));
    kd.klass = sim::KernelClass::Softmax;
    kd.flops = elems * 6.0; // max, sub, exp(4)
    kd.bytesIn = elems * 4.0;
    kd.bytesOut = elems * 4.0;
    kd.workingSetL1 = static_cast<double>(cols) * 4.0;
    kd.workingSetL2 = elems * 8.0;
    kd.workItems = elems;
    kd.reuseL1 = 0.45; // row reused across the three passes
    kd.reuseL2 = 0.70;
    return kd;
}

sim::KernelDesc
makeBatchNorm(const std::string &base, int64_t elems)
{
    panic_if(elems <= 0, "batchnorm: non-positive size");
    double de = static_cast<double>(elems);

    sim::KernelDesc kd;
    kd.name = base;
    kd.klass = sim::KernelClass::BatchNorm;
    kd.flops = de * 5.0; // mean, var, scale, shift
    kd.bytesIn = de * 8.0; // two passes over the data
    kd.bytesOut = de * 4.0;
    kd.workingSetL1 = de * 4.0;
    kd.workingSetL2 = de * 4.0;
    kd.workItems = de;
    kd.reuseL1 = 0.15;
    kd.reuseL2 = 0.70; // second pass hits in L2 when it fits
    return kd;
}

sim::KernelDesc
makeEmbeddingGather(const std::string &base, int64_t lookups,
                    int64_t embed_dim, int64_t vocab)
{
    panic_if(lookups <= 0 || embed_dim <= 0 || vocab <= 0,
             "embedding: non-positive dims");

    double rows = static_cast<double>(lookups);
    double dim = static_cast<double>(embed_dim);
    double table = static_cast<double>(vocab) * dim * 4.0;

    sim::KernelDesc kd;
    kd.name = base;
    kd.klass = sim::KernelClass::Embedding;
    kd.flops = rows * dim * 0.5; // index math, copies
    kd.bytesIn = rows * dim * 4.0 + rows * 4.0;
    kd.bytesOut = rows * dim * 4.0;
    kd.workingSetL1 = dim * 4.0 * 32.0;
    kd.workingSetL2 = table; // vocabulary table is the hot set
    kd.workItems = rows * dim;
    // Zipf-like token reuse: frequent tokens hit while the table's hot
    // region fits in L2.
    kd.reuseL1 = 0.05;
    kd.reuseL2 = 0.55;
    return kd;
}

sim::KernelDesc
makeTranspose(const std::string &base, int64_t elems)
{
    panic_if(elems <= 0, "transpose: non-positive size");
    double de = static_cast<double>(elems);

    sim::KernelDesc kd;
    kd.name = base;
    kd.klass = sim::KernelClass::Transpose;
    kd.flops = 0.0;
    kd.bytesIn = de * 4.0;
    kd.bytesOut = de * 4.0;
    kd.workingSetL1 = 64.0 * 64.0 * 4.0; // tile staging
    kd.workingSetL2 = de * 8.0;
    kd.workItems = de;
    kd.reuseL1 = 0.40; // tiled transpose reuses staged tiles
    kd.reuseL2 = 0.20;
    return kd;
}

sim::KernelDesc
makeScalarOp(const std::string &base)
{
    sim::KernelDesc kd;
    kd.name = base;
    kd.klass = sim::KernelClass::Scalar;
    kd.flops = 64.0;
    kd.bytesIn = 256.0;
    kd.bytesOut = 64.0;
    kd.workingSetL1 = 320.0;
    kd.workingSetL2 = 320.0;
    kd.workItems = 64.0;
    kd.reuseL1 = 0.5;
    kd.reuseL2 = 0.5;
    return kd;
}

int64_t
convOutLen(int64_t in_len, int64_t kernel, int64_t stride)
{
    panic_if(in_len <= 0 || kernel <= 0 || stride <= 0,
             "convOutLen: non-positive argument");
    // SAME-style padding: ceil(in / stride).
    return (in_len + stride - 1) / stride;
}

} // namespace nn
} // namespace seqpoint
