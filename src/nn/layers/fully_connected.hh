/**
 * @file
 * Fully-connected (classifier/projection) layer. Processes the whole
 * sequence at once, so its GEMM N dimension is batch * steps -- the
 * layer behind Table I's per-iteration GEMM dimension differences.
 */

#ifndef SEQPOINT_NN_LAYERS_FULLY_CONNECTED_HH
#define SEQPOINT_NN_LAYERS_FULLY_CONNECTED_HH

#include "nn/layer.hh"

namespace seqpoint {
namespace nn {

/** Dense layer applied per time step across the whole sequence. */
class FullyConnectedLayer : public Layer
{
  public:
    /**
     * Construct a dense layer.
     *
     * @param name Layer instance name.
     * @param in_dim Input feature count.
     * @param out_dim Output feature count.
     * @param axis Sequence axis the GEMM N dimension scales with.
     * @param fixed_steps Step count when axis == Fixed.
     */
    FullyConnectedLayer(std::string name, int64_t in_dim, int64_t out_dim,
                        TimeAxis axis, int64_t fixed_steps = 1);

    void lowerForward(LowerCtx &ctx) const override;
    void lowerBackward(LowerCtx &ctx) const override;
    uint64_t paramCount() const override;

    /** @return Output feature count. */
    int64_t outputDim() const { return outDim; }

  private:
    int64_t inDim;
    int64_t outDim;
    TimeAxis axis;
    int64_t fixedSteps;
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_LAYERS_FULLY_CONNECTED_HH
