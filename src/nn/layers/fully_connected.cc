/**
 * @file
 * Fully-connected layer lowering.
 *
 * Forward:      C[out, B*T] = W[out, in] x X[in, B*T]   (Table I GEMM-a)
 * Backward dX:  dX[in, B*T] = W^T[in, out] x dY[out, B*T] (GEMM-b)
 * Backward dW:  dW[out, in] = dY[out, B*T] x X^T[B*T, in]
 */

#include "nn/layers/fully_connected.hh"

#include "common/logging.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {

FullyConnectedLayer::FullyConnectedLayer(std::string name, int64_t in_dim,
                                         int64_t out_dim, TimeAxis time_axis,
                                         int64_t fixed_steps)
    : Layer(std::move(name)), inDim(in_dim), outDim(out_dim), axis(time_axis),
      fixedSteps(fixed_steps)
{
    fatal_if(in_dim <= 0 || out_dim <= 0,
             "FullyConnectedLayer: bad dimensions");
}

void
FullyConnectedLayer::lowerForward(LowerCtx &ctx) const
{
    int64_t n = static_cast<int64_t>(ctx.batch) *
        ctx.steps(axis, fixedSteps);
    ctx.emit(makeGemm(name() + "_fwd", outDim, n, inDim, *ctx.tuner));
}

void
FullyConnectedLayer::lowerBackward(LowerCtx &ctx) const
{
    int64_t n = static_cast<int64_t>(ctx.batch) *
        ctx.steps(axis, fixedSteps);
    ctx.emit(makeGemm(name() + "_bwd_data", inDim, n, outDim,
                      *ctx.tuner));
    ctx.emit(makeGemm(name() + "_bwd_wgrad", outDim, inDim, n,
                      *ctx.tuner));
}

uint64_t
FullyConnectedLayer::paramCount() const
{
    return static_cast<uint64_t>(inDim) * static_cast<uint64_t>(outDim) +
        static_cast<uint64_t>(outDim);
}

} // namespace nn
} // namespace seqpoint
