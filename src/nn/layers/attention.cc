/**
 * @file
 * Attention layer lowering.
 */

#include "nn/layers/attention.hh"

#include "common/logging.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {

AttentionLayer::AttentionLayer(std::string name, int64_t hidden_dim,
                               TimeAxis query_axis)
    : Layer(std::move(name)), hidden(hidden_dim), queryAxis(query_axis)
{
    fatal_if(hidden_dim <= 0, "AttentionLayer: bad hidden size");
}

void
AttentionLayer::lowerForward(LowerCtx &ctx) const
{
    int64_t batch = ctx.batch;
    int64_t t_keys = ctx.steps(TimeAxis::Source);
    int64_t t_query = ctx.steps(queryAxis);

    // Key projection over all encoder states, once per iteration:
    // [H, H] x [H, B*T_src].
    ctx.emit(makeGemm("attn_keys_fwd", hidden, batch * t_keys, hidden,
                      *ctx.tuner));

    // Per decoder step: query projection [H, H] x [H, B].
    sim::KernelDesc query = makeGemm("attn_query_fwd", hidden, batch,
                                     hidden, *ctx.tuner);
    query.repeat = static_cast<uint64_t>(t_query);
    ctx.emit(std::move(query));

    // Per step: scores [T_src, H] x [H, B].
    sim::KernelDesc score = makeGemm("attn_score_fwd", t_keys, batch,
                                     hidden, *ctx.tuner);
    score.repeat = static_cast<uint64_t>(t_query);
    ctx.emit(std::move(score));

    // Per step: softmax over the T_src scores of each batch row.
    sim::KernelDesc sm = makeSoftmax("attn_softmax_fwd", batch, t_keys);
    sm.repeat = static_cast<uint64_t>(t_query);
    ctx.emit(std::move(sm));

    // Per step: context vector [H, T_src] x [T_src, B].
    sim::KernelDesc cvec = makeGemm("attn_ctx_fwd", hidden, batch, t_keys,
                                    *ctx.tuner);
    cvec.repeat = static_cast<uint64_t>(t_query);
    ctx.emit(std::move(cvec));
}

void
AttentionLayer::lowerBackward(LowerCtx &ctx) const
{
    int64_t batch = ctx.batch;
    int64_t t_keys = ctx.steps(TimeAxis::Source);
    int64_t t_query = ctx.steps(queryAxis);

    // Per step: context backward produces grads for values and scores.
    sim::KernelDesc d_val = makeGemm("attn_ctx_bwd_val", t_keys, batch,
                                     hidden, *ctx.tuner);
    d_val.repeat = static_cast<uint64_t>(t_query);
    ctx.emit(std::move(d_val));

    sim::KernelDesc d_score = makeGemm("attn_ctx_bwd_score", hidden,
                                       batch, t_keys, *ctx.tuner);
    d_score.repeat = static_cast<uint64_t>(t_query);
    ctx.emit(std::move(d_score));

    // Per step: softmax backward (elementwise over B*T_src).
    sim::KernelDesc sm_bwd = sim::makeElementwise("attn_softmax_bwd",
        static_cast<double>(batch * t_keys), 4.0, 2.0, 1.0);
    sm_bwd.repeat = static_cast<uint64_t>(t_query);
    ctx.emit(std::move(sm_bwd));

    // Per step: query gradient [H, H] x [H, B].
    sim::KernelDesc d_query = makeGemm("attn_query_bwd", hidden, batch,
                                       hidden, *ctx.tuner);
    d_query.repeat = static_cast<uint64_t>(t_query);
    ctx.emit(std::move(d_query));

    // Key projection gradients, once: data + weights.
    ctx.emit(makeGemm("attn_keys_bwd_data", hidden, batch * t_keys,
                      hidden, *ctx.tuner));
    ctx.emit(makeGemm("attn_keys_bwd_wgrad", hidden, hidden,
                      batch * t_keys, *ctx.tuner));
}

uint64_t
AttentionLayer::paramCount() const
{
    // Key, query and output projections.
    return 3 * static_cast<uint64_t>(hidden) *
        static_cast<uint64_t>(hidden);
}

} // namespace nn
} // namespace seqpoint
