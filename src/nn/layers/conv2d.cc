/**
 * @file
 * Convolution layer lowering.
 */

#include "nn/layers/conv2d.hh"

#include "common/logging.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {

Conv2dLayer::Conv2dLayer(std::string name, int64_t in_c, int64_t out_c,
                         int64_t kernel_h, int64_t kernel_w, int64_t stride_h,
                         int64_t stride_w, int64_t in_width,
                         TimeAxis time_axis, int64_t time_expansion,
                         int64_t fixed_height)
    : Layer(std::move(name)), inC(in_c), outC(out_c), kh(kernel_h),
      kw(kernel_w),
      strideH(stride_h), strideW(stride_w), width(in_width), axis(time_axis),
      timeExpansion(time_expansion), fixedHeight(fixed_height)
{
    fatal_if(in_c <= 0 || out_c <= 0 || kernel_h <= 0 || kernel_w <= 0 ||
             stride_h <= 0 || stride_w <= 0 || in_width <= 0,
             "Conv2dLayer: bad dimensions");
}

int64_t
Conv2dLayer::inHeight(const LowerCtx &ctx) const
{
    if (axis == TimeAxis::Fixed)
        return fixedHeight;
    return timeExpansion * ctx.steps(axis);
}

int64_t
Conv2dLayer::outWidth() const
{
    return convOutLen(width, kw, strideW);
}

int64_t
Conv2dLayer::outHeight(const LowerCtx &ctx) const
{
    return convOutLen(inHeight(ctx), kh, strideH);
}

void
Conv2dLayer::lowerForward(LowerCtx &ctx) const
{
    ctx.emit(makeConv2d(name() + "_fwd", ctx.batch, inC, outC,
                        inHeight(ctx), width, kh, kw, strideH, strideW,
                        *ctx.tuner));
}

void
Conv2dLayer::lowerBackward(LowerCtx &ctx) const
{
    int64_t oh = outHeight(ctx);
    int64_t ow = outWidth();
    int64_t n = static_cast<int64_t>(ctx.batch) * oh * ow;
    int64_t k_dim = inC * kh * kw;

    // Data gradient: [K, M] x [M, N] spread back over the input.
    ctx.emit(makeGemm(name() + "_bwd_data", k_dim, n, outC, *ctx.tuner));
    // Weight gradient: [M, N] x [N, K].
    ctx.emit(makeGemm(name() + "_bwd_wgrad", outC, k_dim, n, *ctx.tuner));
}

uint64_t
Conv2dLayer::paramCount() const
{
    return static_cast<uint64_t>(outC) * static_cast<uint64_t>(inC) *
        static_cast<uint64_t>(kh) * static_cast<uint64_t>(kw) +
        static_cast<uint64_t>(outC);
}

} // namespace nn
} // namespace seqpoint
