/**
 * @file
 * Softmax + cross-entropy loss head: per-step class distribution over
 * the vocabulary, loss reduction, and the cheap p-minus-onehot
 * gradient. The vocabulary-wide softmax is a large, SL-scaled kernel.
 */

#ifndef SEQPOINT_NN_LAYERS_SOFTMAX_LOSS_HH
#define SEQPOINT_NN_LAYERS_SOFTMAX_LOSS_HH

#include "nn/layer.hh"

namespace seqpoint {
namespace nn {

/** Softmax cross-entropy loss layer. */
class SoftmaxLossLayer : public Layer
{
  public:
    /**
     * Construct a loss head.
     *
     * @param name Layer instance name.
     * @param classes Class count (vocabulary size).
     * @param axis Sequence axis the row count scales with.
     * @param fixed_steps Step count when axis == Fixed.
     */
    SoftmaxLossLayer(std::string name, int64_t classes, TimeAxis axis,
                     int64_t fixed_steps = 1);

    void lowerForward(LowerCtx &ctx) const override;
    void lowerBackward(LowerCtx &ctx) const override;
    uint64_t paramCount() const override;

  private:
    int64_t classes;
    TimeAxis axis;
    int64_t fixedSteps;
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_LAYERS_SOFTMAX_LOSS_HH
