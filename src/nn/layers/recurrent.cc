/**
 * @file
 * Recurrent layer lowering.
 */

#include "nn/layers/recurrent.hh"

#include "common/logging.hh"
#include "common/strutil.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {

int64_t
gateCount(CellType type)
{
    return type == CellType::Lstm ? 4 : 3;
}

RecurrentLayer::RecurrentLayer(std::string name, CellType cell_type,
                               int64_t input_dim, int64_t hidden_dim,
                               bool bidir, TimeAxis time_axis)
    : Layer(std::move(name)), type(cell_type), inputDim(input_dim),
      hidden(hidden_dim), bidirectional(bidir), axis(time_axis)
{
    fatal_if(input_dim <= 0 || hidden_dim <= 0,
             "RecurrentLayer: bad dimensions");
}

int64_t
RecurrentLayer::outputDim() const
{
    return bidirectional ? 2 * hidden : hidden;
}

const char *
RecurrentLayer::cellName() const
{
    return type == CellType::Lstm ? "lstm" : "gru";
}

void
RecurrentLayer::lowerDirectionForward(LowerCtx &ctx, int64_t steps) const
{
    int64_t gates = gateCount(type);
    int64_t batch = ctx.batch;
    const char *cell = cellName();

    // Input-side GEMM batched over all time steps:
    // [gates*H, inputDim] x [inputDim, B*T].
    ctx.emit(makeGemm(csprintf("%s_wx_fwd", cell), gates * hidden,
                      batch * steps, inputDim, *ctx.tuner));

    // Recurrent GEMM, once per step: [gates*H, H] x [H, B].
    sim::KernelDesc rec = makeGemm(csprintf("%s_wh_fwd", cell),
                                   gates * hidden, batch, hidden,
                                   *ctx.tuner);
    rec.repeat = static_cast<uint64_t>(steps);
    ctx.emit(std::move(rec));

    // Fused gate math, once per step: sigmoids/tanh over B x gates*H.
    sim::KernelDesc gate = sim::makeElementwise(csprintf("%s_cell_fwd", cell),
        static_cast<double>(batch * gates * hidden), 8.0, 3.0, 2.0);
    gate.repeat = static_cast<uint64_t>(steps);
    ctx.emit(std::move(gate));
}

void
RecurrentLayer::lowerDirectionBackward(LowerCtx &ctx, int64_t steps) const
{
    int64_t gates = gateCount(type);
    int64_t batch = ctx.batch;
    const char *cell = cellName();

    // Per-step gate backward (more operands than forward).
    sim::KernelDesc gate = sim::makeElementwise(csprintf("%s_cell_bwd", cell),
        static_cast<double>(batch * gates * hidden), 10.0, 5.0, 3.0);
    gate.repeat = static_cast<uint64_t>(steps);
    ctx.emit(std::move(gate));

    // Per-step recurrent data gradient: [H, gates*H] x [gates*H, B].
    sim::KernelDesc rec = makeGemm(csprintf("%s_wh_bwd_data", cell),
                                   hidden, batch, gates * hidden,
                                   *ctx.tuner);
    rec.repeat = static_cast<uint64_t>(steps);
    ctx.emit(std::move(rec));

    // Input data gradient batched over steps:
    // [inputDim, gates*H] x [gates*H, B*T].
    ctx.emit(makeGemm(csprintf("%s_wx_bwd_data", cell), inputDim,
                      batch * steps, gates * hidden, *ctx.tuner));

    // Weight gradients, reduced over B*T:
    // dWx: [gates*H, B*T] x [B*T, inputDim].
    ctx.emit(makeGemm(csprintf("%s_wx_bwd_wgrad", cell), gates * hidden,
                      inputDim, batch * steps, *ctx.tuner));
    // dWh: [gates*H, B*T] x [B*T, H].
    ctx.emit(makeGemm(csprintf("%s_wh_bwd_wgrad", cell), gates * hidden,
                      hidden, batch * steps, *ctx.tuner));
}

void
RecurrentLayer::lowerForward(LowerCtx &ctx) const
{
    int64_t steps = ctx.steps(axis);
    int64_t dirs = bidirectional ? 2 : 1;
    for (int64_t d = 0; d < dirs; ++d)
        lowerDirectionForward(ctx, steps);
    if (bidirectional) {
        // Concatenate the two directions' outputs.
        ctx.emit(sim::makeMemcpy(csprintf("%s_concat_dirs", cellName()),
            static_cast<double>(ctx.batch) *
            static_cast<double>(steps) *
            static_cast<double>(2 * hidden) * 4.0));
    }
}

void
RecurrentLayer::lowerBackward(LowerCtx &ctx) const
{
    int64_t steps = ctx.steps(axis);
    int64_t dirs = bidirectional ? 2 : 1;
    for (int64_t d = 0; d < dirs; ++d)
        lowerDirectionBackward(ctx, steps);
}

uint64_t
RecurrentLayer::paramCount() const
{
    uint64_t gates = static_cast<uint64_t>(gateCount(type));
    uint64_t per_dir = gates * static_cast<uint64_t>(hidden) *
        (static_cast<uint64_t>(inputDim) + static_cast<uint64_t>(hidden)
         + 1);
    return bidirectional ? 2 * per_dir : per_dir;
}

} // namespace nn
} // namespace seqpoint
