/**
 * @file
 * Batch-normalisation layer: statistics plus normalisation over a
 * feature map whose extent may scale with the sequence axis.
 */

#ifndef SEQPOINT_NN_LAYERS_BATCHNORM_HH
#define SEQPOINT_NN_LAYERS_BATCHNORM_HH

#include "nn/layer.hh"

namespace seqpoint {
namespace nn {

/** Batch-norm layer. */
class BatchNormLayer : public Layer
{
  public:
    /**
     * Construct a batch-norm layer.
     *
     * @param name Layer instance name.
     * @param features_per_step Elements per (batch element, time step).
     * @param channels Normalised channel count (parameter size).
     * @param axis Sequence axis the extent scales with.
     * @param fixed_steps Step count when axis == Fixed.
     */
    BatchNormLayer(std::string name, int64_t features_per_step,
                   int64_t channels, TimeAxis axis,
                   int64_t fixed_steps = 1);

    void lowerForward(LowerCtx &ctx) const override;
    void lowerBackward(LowerCtx &ctx) const override;
    uint64_t paramCount() const override;

  private:
    int64_t featuresPerStep;
    int64_t channels;
    TimeAxis axis;
    int64_t fixedSteps;

    int64_t elems(const LowerCtx &ctx) const;
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_LAYERS_BATCHNORM_HH
