/**
 * @file
 * Recurrent layers (LSTM and GRU, optionally bidirectional), lowered
 * the way MIOpen/cuDNN execute them: the input-side GEMM of all time
 * steps is batched into one large GEMM, while the recurrent GEMM and
 * the fused gate kernel run once per time step. Per-step kernels are
 * emitted with a repeat count equal to the unroll factor, which is
 * exactly the paper's source of iteration heterogeneity.
 */

#ifndef SEQPOINT_NN_LAYERS_RECURRENT_HH
#define SEQPOINT_NN_LAYERS_RECURRENT_HH

#include "nn/layer.hh"

namespace seqpoint {
namespace nn {

/** Recurrent cell flavour. */
enum class CellType {
    Lstm, ///< 4 gates.
    Gru,  ///< 3 gates.
};

/** @return Gate count for a cell type (4 for LSTM, 3 for GRU). */
int64_t gateCount(CellType type);

/** LSTM/GRU layer, uni- or bidirectional. */
class RecurrentLayer : public Layer
{
  public:
    /**
     * Construct a recurrent layer.
     *
     * @param name Layer instance name.
     * @param type Cell flavour.
     * @param input_dim Per-step input feature count.
     * @param hidden Hidden state size per direction.
     * @param bidirectional Run both directions (doubles the work and
     *                      the output width).
     * @param axis Sequence axis the unroll scales with.
     */
    RecurrentLayer(std::string name, CellType type, int64_t input_dim,
                   int64_t hidden, bool bidirectional, TimeAxis axis);

    void lowerForward(LowerCtx &ctx) const override;
    void lowerBackward(LowerCtx &ctx) const override;
    uint64_t paramCount() const override;

    /** @return Output feature width (hidden, x2 if bidirectional). */
    int64_t outputDim() const;

  private:
    CellType type;
    int64_t inputDim;
    int64_t hidden;
    bool bidirectional;
    TimeAxis axis;

    /** Emit one direction's forward kernels. */
    void lowerDirectionForward(LowerCtx &ctx, int64_t steps) const;

    /** Emit one direction's backward kernels. */
    void lowerDirectionBackward(LowerCtx &ctx, int64_t steps) const;

    const char *cellName() const;
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_LAYERS_RECURRENT_HH
