/**
 * @file
 * Softmax loss lowering.
 */

#include "nn/layers/softmax_loss.hh"

#include "common/logging.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {

SoftmaxLossLayer::SoftmaxLossLayer(std::string name, int64_t class_count,
                                   TimeAxis time_axis, int64_t fixed_steps)
    : Layer(std::move(name)), classes(class_count), axis(time_axis),
      fixedSteps(fixed_steps)
{
    fatal_if(class_count <= 0, "SoftmaxLossLayer: bad class count");
}

void
SoftmaxLossLayer::lowerForward(LowerCtx &ctx) const
{
    int64_t rows = static_cast<int64_t>(ctx.batch) *
        ctx.steps(axis, fixedSteps);
    ctx.emit(makeSoftmax("loss_softmax_fwd", rows, classes));
    ctx.emit(sim::makeReduction("loss_nll_reduce",
        static_cast<double>(rows)));
}

void
SoftmaxLossLayer::lowerBackward(LowerCtx &ctx) const
{
    int64_t rows = static_cast<int64_t>(ctx.batch) *
        ctx.steps(axis, fixedSteps);
    // dLogits = p - onehot: one pass over the full probability matrix.
    ctx.emit(sim::makeElementwise("loss_grad_bwd",
        static_cast<double>(rows) * static_cast<double>(classes),
        1.0, 1.0, 1.0));
}

uint64_t
SoftmaxLossLayer::paramCount() const
{
    return 0;
}

} // namespace nn
} // namespace seqpoint
