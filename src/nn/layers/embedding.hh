/**
 * @file
 * Embedding layer: vocabulary-table gather (forward) and scatter-add
 * (backward). The table itself is the dominant working set, so the
 * vocabulary size materially affects runtime -- the paper's
 * observation 6.
 */

#ifndef SEQPOINT_NN_LAYERS_EMBEDDING_HH
#define SEQPOINT_NN_LAYERS_EMBEDDING_HH

#include "nn/layer.hh"

namespace seqpoint {
namespace nn {

/** Token-embedding lookup layer. */
class EmbeddingLayer : public Layer
{
  public:
    /**
     * Construct an embedding layer.
     *
     * @param name Layer instance name.
     * @param vocab Vocabulary size (rows of the table).
     * @param dim Embedding dimension.
     * @param axis Sequence axis the lookups scale with.
     */
    EmbeddingLayer(std::string name, int64_t vocab, int64_t dim,
                   TimeAxis axis);

    void lowerForward(LowerCtx &ctx) const override;
    void lowerBackward(LowerCtx &ctx) const override;
    uint64_t paramCount() const override;

    /** @return Vocabulary size. */
    int64_t vocabSize() const { return vocab; }

  private:
    int64_t vocab;
    int64_t dim;
    TimeAxis axis;
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_LAYERS_EMBEDDING_HH
