/**
 * @file
 * Batch-norm layer lowering.
 */

#include "nn/layers/batchnorm.hh"

#include "common/logging.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {

BatchNormLayer::BatchNormLayer(std::string name, int64_t features_per_step,
                               int64_t chans, TimeAxis time_axis,
                               int64_t fixed_steps)
    : Layer(std::move(name)), featuresPerStep(features_per_step),
      channels(chans), axis(time_axis), fixedSteps(fixed_steps)
{
    fatal_if(features_per_step <= 0 || chans <= 0,
             "BatchNormLayer: bad dimensions");
}

int64_t
BatchNormLayer::elems(const LowerCtx &ctx) const
{
    return static_cast<int64_t>(ctx.batch) * featuresPerStep *
        ctx.steps(axis, fixedSteps);
}

void
BatchNormLayer::lowerForward(LowerCtx &ctx) const
{
    ctx.emit(makeBatchNorm(name() + "_fwd", elems(ctx)));
}

void
BatchNormLayer::lowerBackward(LowerCtx &ctx) const
{
    // Backward recomputes statistics gradients: ~1.5x forward traffic.
    sim::KernelDesc kd = makeBatchNorm(name() + "_bwd", elems(ctx));
    kd.bytesIn *= 1.5;
    kd.flops *= 1.5;
    ctx.emit(std::move(kd));
}

uint64_t
BatchNormLayer::paramCount() const
{
    return 2 * static_cast<uint64_t>(channels);
}

} // namespace nn
} // namespace seqpoint
