/**
 * @file
 * Attention layer connecting a decoder to encoder states. Scores every
 * encoder position for every decoder step, so its cost grows with the
 * product of the two sequence lengths -- the strongest super-linear
 * term in GNMT's per-iteration profile.
 */

#ifndef SEQPOINT_NN_LAYERS_ATTENTION_HH
#define SEQPOINT_NN_LAYERS_ATTENTION_HH

#include "nn/layer.hh"

namespace seqpoint {
namespace nn {

/** Encoder-decoder (or self-) attention layer. */
class AttentionLayer : public Layer
{
  public:
    /**
     * Construct an attention layer.
     *
     * @param name Layer instance name.
     * @param hidden Hidden size of queries/keys/values.
     * @param query_axis Axis the query count scales with (Target for
     *                   encoder-decoder attention, Source for
     *                   self-attention).
     */
    AttentionLayer(std::string name, int64_t hidden, TimeAxis query_axis);

    void lowerForward(LowerCtx &ctx) const override;
    void lowerBackward(LowerCtx &ctx) const override;
    uint64_t paramCount() const override;

  private:
    int64_t hidden;
    TimeAxis queryAxis;
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_LAYERS_ATTENTION_HH
