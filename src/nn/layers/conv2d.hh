/**
 * @file
 * 2-D convolution layer lowered as implicit GEMM. For DS2 the height
 * axis is the (sequence-length dependent) time axis and the width axis
 * is the fixed frequency axis; for CNNs both axes are fixed, making
 * the layer input-independent.
 */

#ifndef SEQPOINT_NN_LAYERS_CONV2D_HH
#define SEQPOINT_NN_LAYERS_CONV2D_HH

#include "nn/layer.hh"

namespace seqpoint {
namespace nn {

/** Convolution layer (implicit-GEMM lowering). */
class Conv2dLayer : public Layer
{
  public:
    /**
     * Construct a convolution layer.
     *
     * @param name Layer instance name.
     * @param in_c Input channels.
     * @param out_c Output channels.
     * @param kh Kernel height (time axis).
     * @param kw Kernel width (frequency/spatial axis).
     * @param stride_h Stride along height.
     * @param stride_w Stride along width.
     * @param width Input width in elements (fixed).
     * @param axis Sequence axis the height scales with.
     * @param time_expansion Height = time_expansion * steps(axis)
     *                       when axis is not Fixed.
     * @param fixed_height Height when axis == Fixed.
     */
    Conv2dLayer(std::string name, int64_t in_c, int64_t out_c, int64_t kh,
                int64_t kw, int64_t stride_h, int64_t stride_w,
                int64_t width, TimeAxis axis, int64_t time_expansion = 1,
                int64_t fixed_height = 1);

    void lowerForward(LowerCtx &ctx) const override;
    void lowerBackward(LowerCtx &ctx) const override;
    uint64_t paramCount() const override;

    /** @return Output width after striding. */
    int64_t outWidth() const;

    /** @return Output height for a given iteration context. */
    int64_t outHeight(const LowerCtx &ctx) const;

    /** @return Output channels. */
    int64_t outChannels() const { return outC; }

  private:
    int64_t inC;
    int64_t outC;
    int64_t kh;
    int64_t kw;
    int64_t strideH;
    int64_t strideW;
    int64_t width;
    TimeAxis axis;
    int64_t timeExpansion;
    int64_t fixedHeight;

    int64_t inHeight(const LowerCtx &ctx) const;
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_LAYERS_CONV2D_HH
