/**
 * @file
 * Embedding layer lowering.
 */

#include "nn/layers/embedding.hh"

#include "common/logging.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {

EmbeddingLayer::EmbeddingLayer(std::string name, int64_t vocab_size,
                               int64_t embed_dim, TimeAxis time_axis)
    : Layer(std::move(name)), vocab(vocab_size), dim(embed_dim),
      axis(time_axis)
{
    fatal_if(vocab_size <= 0 || embed_dim <= 0,
             "EmbeddingLayer: bad dimensions");
}

void
EmbeddingLayer::lowerForward(LowerCtx &ctx) const
{
    int64_t lookups = static_cast<int64_t>(ctx.batch) * ctx.steps(axis);
    ctx.emit(makeEmbeddingGather("embed_gather_fwd", lookups, dim, vocab));
}

void
EmbeddingLayer::lowerBackward(LowerCtx &ctx) const
{
    int64_t lookups = static_cast<int64_t>(ctx.batch) * ctx.steps(axis);
    // Scatter-add of gradients into the table: same traffic shape as
    // the gather plus a read-modify-write on the table rows.
    sim::KernelDesc kd = makeEmbeddingGather("embed_scatter_bwd", lookups,
                                             dim, vocab);
    kd.bytesOut *= 2.0; // read-modify-write
    ctx.emit(std::move(kd));
}

uint64_t
EmbeddingLayer::paramCount() const
{
    return static_cast<uint64_t>(vocab) * static_cast<uint64_t>(dim);
}

} // namespace nn
} // namespace seqpoint
