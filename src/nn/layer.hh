/**
 * @file
 * Layer abstraction: each layer lowers itself into forward and
 * backward kernel sequences for a given (batch, sequence-length)
 * iteration. The per-iteration kernel stream is what the GPU
 * simulator executes and the profiler measures.
 */

#ifndef SEQPOINT_NN_LAYER_HH
#define SEQPOINT_NN_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.hh"

namespace seqpoint {
namespace nn {

class Autotuner;

/**
 * Which sequence axis a layer's work scales with.
 *
 * CNN-style layers use Fixed: their work is input-independent, which
 * is exactly the homogeneity property Fig 3 contrasts with SQNNs.
 */
enum class TimeAxis {
    Source, ///< Scales with the input sequence length.
    Target, ///< Scales with the derived target sequence length.
    Fixed,  ///< Input-independent (CNN-style).
};

/** Per-iteration lowering parameters and kernel sink. */
struct LowerCtx {
    unsigned batch = 64;  ///< Batch size (constant over a run).
    int64_t seqLen = 1;   ///< Source-side sequence length.
    int64_t tgtLen = 1;   ///< Target-side sequence length.
    Autotuner *tuner = nullptr;              ///< Variant source.
    std::vector<sim::KernelDesc> *out = nullptr; ///< Kernel sink.

    /** Append a kernel to the stream. */
    void emit(sim::KernelDesc kd) { out->push_back(std::move(kd)); }

    /**
     * Time steps along an axis.
     *
     * @param axis Axis selector.
     * @param fixed_steps Step count used for TimeAxis::Fixed.
     */
    int64_t steps(TimeAxis axis, int64_t fixed_steps = 1) const;
};

/**
 * Base class for all layers.
 */
class Layer
{
  public:
    /**
     * Construct a layer.
     *
     * @param name Layer instance name (unique within a model).
     */
    explicit Layer(std::string name);

    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    /** @return Layer instance name. */
    const std::string &name() const { return name_; }

    /**
     * Emit this layer's forward-pass kernels.
     *
     * @param ctx Iteration parameters and kernel sink.
     */
    virtual void lowerForward(LowerCtx &ctx) const = 0;

    /**
     * Emit this layer's backward-pass kernels (data and weight
     * gradients).
     *
     * @param ctx Iteration parameters and kernel sink.
     */
    virtual void lowerBackward(LowerCtx &ctx) const = 0;

    /** @return Trainable parameter count (0 for stateless layers). */
    virtual uint64_t paramCount() const = 0;

  private:
    std::string name_;
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_LAYER_HH
