/**
 * @file
 * GEMM autotuner. High-level MI frameworks run an "autotune" phase
 * that tries several tiled kernel variants per GEMM shape and caches
 * the fastest (paper section IV-C2). The selected variant changes both
 * the kernel *name* (hence the unique-kernel analyses, Fig 5) and its
 * memory traffic, so tuning is a first-class part of the lowering
 * substrate.
 */

#ifndef SEQPOINT_NN_AUTOTUNE_HH
#define SEQPOINT_NN_AUTOTUNE_HH

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/bytestream.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "sim/gpu.hh"

namespace seqpoint {
namespace nn {

/** One tiled GEMM implementation choice. */
struct GemmVariant {
    unsigned tileM = 64; ///< Output-tile rows.
    unsigned tileN = 64; ///< Output-tile columns.
    unsigned tileK = 16; ///< K-panel depth held in LDS.

    /** @return Name suffix, e.g. "MT64x64_K16". */
    std::string suffix() const;
};

/** @return The candidate variant menu (largest to smallest tiles). */
const std::vector<GemmVariant> &gemmVariantMenu();

/**
 * One frozen tuning decision, exported for cross-tuner sharing (the
 * harness's ModelSnapshot hands a sweep's one-time autotune results
 * to every scheduler cell evaluating the same configuration).
 */
struct AutotuneEntry {
    int64_t m = 0;        ///< GEMM M dimension.
    int64_t n = 0;        ///< GEMM N dimension.
    int64_t k = 0;        ///< GEMM K dimension.
    GemmVariant variant;  ///< The winning variant.
    double costSec = 0.0; ///< Measured-mode probe time it cost.
};

/**
 * Serialize one frozen tuning decision (snapshot store). The probe
 * cost round-trips bit-exactly, so a seeded tuner's tuningCostSec()
 * matches the donor's.
 */
void encodeAutotuneEntry(ByteWriter &w, const AutotuneEntry &e);

/** Decode an entry written by encodeAutotuneEntry(). */
AutotuneEntry decodeAutotuneEntry(ByteReader &r);

/**
 * Serialize a whole tuner section in the packed form: entries are
 * canonicalized into shape-key order and delta/varint coded against
 * their predecessor (GEMM dims cluster, tile sizes repeat, probe
 * costs go through the tagged f64 coder), a fraction of the 40 raw
 * bytes per entry while round-tripping bit-exactly. The encoding is
 * canonical: encode(decode(bytes)) reproduces `bytes` for any writer
 * output.
 *
 * @param w Destination stream.
 * @param entries Entries in any order.
 */
void encodeAutotuneSection(ByteWriter &w,
                           const std::vector<AutotuneEntry> &entries);

/**
 * Decode a section written by encodeAutotuneSection(). Corrupt input
 * raises the reader's error path (typed RecoverableError in Throw
 * mode); structurally valid but hostile counts are bounded by the
 * remaining payload size before any allocation.
 */
std::vector<AutotuneEntry> decodeAutotuneSection(ByteReader &r);

/**
 * Shape -> variant cache with two selection policies.
 *
 * Heuristic mode picks by a traffic-plus-waste cost model (pure
 * function of shape). Measured mode times every candidate on the
 * bound device -- the expensive paper-style autotune -- and records
 * the accumulated tuning cost so callers can include or exclude it
 * from training-time accounts.
 *
 * select() is thread-safe so concurrent profiling tasks can share one
 * tuner. The tuning cost is stored per shape and summed in shape-key
 * order, so tuningCostSec() is bit-identical however the shapes were
 * interleaved across threads.
 */
class Autotuner
{
  public:
    /** Selection policy. */
    enum class Mode {
        Heuristic, ///< Shape-based cost model, zero tuning cost.
        Measured,  ///< Time all candidates on the device.
    };

    /**
     * Construct an autotuner.
     *
     * @param mode Selection policy.
     * @param gpu Device used by Measured mode (may be null for
     *            Heuristic).
     */
    explicit Autotuner(Mode mode, const sim::Gpu *gpu = nullptr);

    /**
     * Select (and cache) the variant for a GEMM shape.
     *
     * @param m GEMM M dimension.
     * @param n GEMM N dimension.
     * @param k GEMM K dimension.
     * @return The chosen variant.
     */
    const GemmVariant &select(int64_t m, int64_t n, int64_t k);

    /** @return The selection policy this tuner was built with. */
    Mode selectionMode() const { return mode; }

    /**
     * Accumulated Measured-mode tuning time in seconds, summed over
     * the tuned shapes in shape-key order (deterministic regardless
     * of the tuning interleaving).
     */
    double tuningCostSec() const;

    /** @return Number of distinct shapes tuned so far. */
    size_t cacheSize() const;

    /** @return A copy of every tuned shape, in shape-key order. */
    std::vector<AutotuneEntry> snapshotEntries() const;

    /**
     * Pre-populate from entries snapshotted on a tuner bound to an
     * equally configured device. Existing entries win. Seeded shapes
     * keep their original probe cost, so tuningCostSec() continues to
     * report the sweep's one-time tuning bill and delta-based
     * accounting (Experiment::epochLog) sees them as already paid.
     *
     * @param entries Entries from snapshotEntries().
     */
    void seed(const std::vector<AutotuneEntry> &entries);

    /** Drop the cache (fresh training run). */
    void reset();

  private:
    using ShapeKey = std::tuple<int64_t, int64_t, int64_t>;

    /** One tuned shape: the chosen variant and what tuning it cost. */
    struct Entry {
        GemmVariant variant; ///< Winning variant.
        double costSec = 0.0; ///< Measured-mode probe time.
    };

    Mode mode;
    const sim::Gpu *gpu;
    mutable Mutex mu;
    /** Node-based map: returned variant references stay stable, so
     *  select() may hand them out after unlocking. */
    std::map<ShapeKey, Entry> cache SEQ_GUARDED_BY(mu);

    GemmVariant chooseHeuristic(int64_t m, int64_t n, int64_t k) const;
    Entry chooseMeasured(int64_t m, int64_t n, int64_t k);
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_AUTOTUNE_HH
