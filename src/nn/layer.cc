/**
 * @file
 * Layer base implementation.
 */

#include "nn/layer.hh"

#include "common/logging.hh"

namespace seqpoint {
namespace nn {

int64_t
LowerCtx::steps(TimeAxis axis, int64_t fixed_steps) const
{
    switch (axis) {
      case TimeAxis::Source:
        return seqLen;
      case TimeAxis::Target:
        return tgtLen;
      case TimeAxis::Fixed:
        return fixed_steps;
    }
    panic("LowerCtx::steps: bad axis");
    return 1; // unreachable
}

Layer::Layer(std::string name)
    : name_(std::move(name))
{
    panic_if(name_.empty(), "Layer: empty name");
}

} // namespace nn
} // namespace seqpoint
