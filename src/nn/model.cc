/**
 * @file
 * Model graph implementation.
 */

#include "nn/model.hh"

#include <cmath>

#include "common/logging.hh"
#include "nn/autotune.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {

Model::Model(std::string name)
    : name_(std::move(name))
{
    fatal_if(name_.empty(), "Model: empty name");
}

void
Model::add(std::unique_ptr<Layer> layer)
{
    panic_if(!layer, "Model::add: null layer");
    layers.push_back(std::move(layer));
}

const Layer &
Model::layer(size_t i) const
{
    panic_if(i >= layers.size(), "Model::layer: index out of range");
    return *layers[i];
}

uint64_t
Model::paramCount() const
{
    uint64_t total = 0;
    for (const auto &l : layers)
        total += l->paramCount();
    return total;
}

void
Model::setTargetLenRatio(double ratio)
{
    fatal_if(ratio <= 0.0, "Model: non-positive target length ratio");
    tgtRatio = ratio;
}

int64_t
Model::targetLenFor(int64_t src_len) const
{
    int64_t t = static_cast<int64_t>(
        std::llround(tgtRatio * static_cast<double>(src_len)));
    return t < 1 ? 1 : t;
}

LowerCtx
Model::makeCtx(unsigned batch, int64_t seq_len, Autotuner &tuner,
               std::vector<sim::KernelDesc> *out) const
{
    fatal_if(batch == 0, "Model: zero batch size");
    fatal_if(seq_len <= 0, "Model: non-positive sequence length");

    LowerCtx ctx;
    ctx.batch = batch;
    ctx.seqLen = seq_len;
    ctx.tgtLen = targetLenFor(seq_len);
    ctx.tuner = &tuner;
    ctx.out = out;
    return ctx;
}

void
Model::lowerOptimizer(LowerCtx &ctx) const
{
    // Global gradient-norm reduction over all parameters, then one
    // fused update per parameterised layer, plus the scalar
    // bookkeeping launches frameworks emit each step.
    uint64_t params = paramCount();
    if (params == 0)
        return;

    ctx.emit(sim::makeReduction("opt_grad_norm",
        static_cast<double>(params)));
    ctx.emit(makeScalarOp("opt_lr_step"));

    for (const auto &l : layers) {
        uint64_t p = l->paramCount();
        if (p == 0)
            continue;
        // Momentum SGD: read param, grad, momentum; write param,
        // momentum.
        ctx.emit(sim::makeElementwise("opt_sgd_update",
            static_cast<double>(p), 4.0, 3.0, 2.0));
    }
    ctx.emit(makeScalarOp("opt_step_count"));
}

std::vector<sim::KernelDesc>
Model::lowerIteration(unsigned batch, int64_t seq_len,
                      Autotuner &tuner) const
{
    std::vector<sim::KernelDesc> out;
    LowerCtx ctx = makeCtx(batch, seq_len, tuner, &out);

    for (const auto &l : layers)
        l->lowerForward(ctx);
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
        (*it)->lowerBackward(ctx);
    lowerOptimizer(ctx);
    return out;
}

std::vector<sim::KernelDesc>
Model::lowerInference(unsigned batch, int64_t seq_len,
                      Autotuner &tuner) const
{
    std::vector<sim::KernelDesc> out;
    LowerCtx ctx = makeCtx(batch, seq_len, tuner, &out);
    for (const auto &l : layers)
        l->lowerForward(ctx);
    return out;
}

} // namespace nn
} // namespace seqpoint
