/**
 * @file
 * Model graph: an ordered stack of layers plus the iteration-level
 * glue (loss backward ordering, optimizer update kernels, target-
 * length policy). Lowering a model for a (batch, sequence length)
 * pair yields the full kernel stream of one training iteration.
 */

#ifndef SEQPOINT_NN_MODEL_HH
#define SEQPOINT_NN_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hh"
#include "sim/kernel.hh"

namespace seqpoint {
namespace nn {

class Autotuner;

/**
 * A trainable network as an ordered layer stack.
 */
class Model
{
  public:
    /**
     * Construct an empty model.
     *
     * @param name Model name ("GNMT", "DS2", ...).
     */
    explicit Model(std::string name);

    /** @return Model name. */
    const std::string &name() const { return name_; }

    /**
     * Append a layer; execution (and forward lowering) follows
     * insertion order.
     *
     * @param layer Layer to take ownership of.
     */
    void add(std::unique_ptr<Layer> layer);

    /** @return Number of layers. */
    size_t numLayers() const { return layers.size(); }

    /** @return Layer at position i. */
    const Layer &layer(size_t i) const;

    /** @return Total trainable parameters across layers. */
    uint64_t paramCount() const;

    /**
     * Set the target-length policy for seq2seq models: the derived
     * target length is max(1, round(ratio * source_length)).
     *
     * @param ratio Target/source length ratio (> 0).
     */
    void setTargetLenRatio(double ratio);

    /** @return The current target/source length ratio. */
    double targetLenRatio() const { return tgtRatio; }

    /** @return Derived target length for a source length. */
    int64_t targetLenFor(int64_t src_len) const;

    /**
     * Lower one full training iteration: forward pass in layer order,
     * backward pass in reverse order, then optimizer updates.
     *
     * @param batch Batch size.
     * @param seq_len Source sequence length of the iteration.
     * @param tuner Autotuner shared across the run.
     * @return The ordered kernel stream.
     */
    std::vector<sim::KernelDesc> lowerIteration(unsigned batch,
                                                int64_t seq_len,
                                                Autotuner &tuner) const;

    /**
     * Lower a forward-only (inference) pass.
     *
     * @param batch Batch size.
     * @param seq_len Source sequence length.
     * @param tuner Autotuner shared across the run.
     * @return The ordered kernel stream.
     */
    std::vector<sim::KernelDesc> lowerInference(unsigned batch,
                                                int64_t seq_len,
                                                Autotuner &tuner) const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Layer>> layers;
    double tgtRatio = 1.0;

    LowerCtx makeCtx(unsigned batch, int64_t seq_len, Autotuner &tuner,
                     std::vector<sim::KernelDesc> *out) const;

    void lowerOptimizer(LowerCtx &ctx) const;
};

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_MODEL_HH
