/**
 * @file
 * Kernel generation helpers: lower individual tensor operations
 * (GEMM, implicit-GEMM convolution, softmax, batch-norm, embedding,
 * transpose) into sim::KernelDesc records with realistic FLOP and
 * memory-request volumes.
 */

#ifndef SEQPOINT_NN_KERNEL_GEN_HH
#define SEQPOINT_NN_KERNEL_GEN_HH

#include <cstdint>
#include <string>

#include "sim/kernel.hh"

namespace seqpoint {
namespace nn {

class Autotuner;
struct GemmVariant;

/**
 * Build a GEMM kernel for an explicit variant (no tuner consulted).
 *
 * Traffic follows the classic blocked-GEMM model: the A panel is
 * re-read once per column block and B once per row block, after
 * register/LDS blocking inside a tile.
 *
 * @param base Logical operation name (e.g. "gemm_fc_fwd").
 * @param m Rows of A/C.
 * @param n Columns of B/C.
 * @param k Inner dimension.
 * @param variant Tiling choice.
 */
sim::KernelDesc gemmKernelForVariant(const std::string &base, int64_t m,
                                     int64_t n, int64_t k,
                                     const GemmVariant &variant);

/**
 * Build a GEMM kernel using the autotuner's variant for the shape.
 *
 * @param base Logical operation name.
 * @param m Rows of A/C.
 * @param n Columns of B/C.
 * @param k Inner dimension.
 * @param tuner Variant source (caches per shape).
 */
sim::KernelDesc makeGemm(const std::string &base, int64_t m, int64_t n,
                         int64_t k, Autotuner &tuner);

/**
 * Implicit-GEMM convolution: filters [out_c, in_c, kh, kw] over an
 * input [batch, in_c, h, w] with the given strides.
 *
 * @param base Logical operation name.
 * @param batch Batch size.
 * @param in_c Input channels.
 * @param out_c Output channels.
 * @param h Input height (time axis for DS2).
 * @param w Input width (frequency axis for DS2).
 * @param kh Kernel height.
 * @param kw Kernel width.
 * @param stride_h Stride along h.
 * @param stride_w Stride along w.
 * @param tuner Variant source.
 */
sim::KernelDesc makeConv2d(const std::string &base, int64_t batch,
                           int64_t in_c, int64_t out_c, int64_t h,
                           int64_t w, int64_t kh, int64_t kw,
                           int64_t stride_h, int64_t stride_w,
                           Autotuner &tuner);

/**
 * Fused softmax over `rows` rows of `cols` elements. The block-size
 * variant (chosen from cols) is part of the kernel name.
 */
sim::KernelDesc makeSoftmax(const std::string &base, int64_t rows,
                            int64_t cols);

/** Batch-norm statistics + normalisation over `elems` elements. */
sim::KernelDesc makeBatchNorm(const std::string &base, int64_t elems);

/**
 * Embedding-table gather: `lookups` rows of `embed_dim` from a
 * `vocab`-row table. The table is the L2-visible working set, so
 * vocabulary size directly affects runtime (paper observation 6).
 */
sim::KernelDesc makeEmbeddingGather(const std::string &base,
                                    int64_t lookups, int64_t embed_dim,
                                    int64_t vocab);

/** Layout-change kernel moving `elems` 4-byte elements. */
sim::KernelDesc makeTranspose(const std::string &base, int64_t elems);

/** Tiny scalar bookkeeping launch (optimizer counters, LR decay). */
sim::KernelDesc makeScalarOp(const std::string &base);

/** Conv output length for one spatial axis. */
int64_t convOutLen(int64_t in_len, int64_t kernel, int64_t stride);

} // namespace nn
} // namespace seqpoint

#endif // SEQPOINT_NN_KERNEL_GEN_HH
