/**
 * @file
 * Autotuner implementation.
 */

#include "nn/autotune.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "nn/kernel_gen.hh"

namespace seqpoint {
namespace nn {

std::string
GemmVariant::suffix() const
{
    return csprintf("MT%ux%u_K%u", tileM, tileN, tileK);
}

const std::vector<GemmVariant> &
gemmVariantMenu()
{
    static const std::vector<GemmVariant> menu = {
        {128, 128, 16},
        {128, 64, 16},
        {64, 64, 16},
        {64, 32, 16},
        {32, 32, 16},
        {16, 16, 16},
    };
    return menu;
}

Autotuner::Autotuner(Mode tune_mode, const sim::Gpu *device)
    : mode(tune_mode), gpu(device)
{
    fatal_if(tune_mode == Mode::Measured && device == nullptr,
             "Measured autotune mode requires a device");
}

const GemmVariant &
Autotuner::select(int64_t m, int64_t n, int64_t k)
{
    panic_if(m <= 0 || n <= 0 || k <= 0,
             "Autotuner: non-positive GEMM dims %lld x %lld x %lld",
             static_cast<long long>(m), static_cast<long long>(n),
             static_cast<long long>(k));

    ShapeKey key{m, n, k};

    // std::map nodes are stable, so the returned reference survives
    // later insertions by other threads once the lock is released.
    {
        MutexLock lock(mu);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second.variant;
    }

    // Tune outside the lock so an untuned shape doesn't serialize
    // every concurrent select(). Both policies are pure functions of
    // the shape, so racing threads compute identical entries and
    // emplace keeps the first.
    Entry chosen = (mode == Mode::Heuristic)
        ? Entry{chooseHeuristic(m, n, k), 0.0}
        : chooseMeasured(m, n, k);

    MutexLock lock(mu);
    auto [pos, inserted] = cache.emplace(key, chosen);
    (void)inserted;
    return pos->second.variant;
}

double
Autotuner::tuningCostSec() const
{
    MutexLock lock(mu);
    double total = 0.0;
    for (const auto &[key, entry] : cache)
        total += entry.costSec;
    return total;
}

size_t
Autotuner::cacheSize() const
{
    MutexLock lock(mu);
    return cache.size();
}

std::vector<AutotuneEntry>
Autotuner::snapshotEntries() const
{
    MutexLock lock(mu);
    std::vector<AutotuneEntry> out;
    out.reserve(cache.size());
    for (const auto &[key, entry] : cache) {
        out.push_back(AutotuneEntry{std::get<0>(key), std::get<1>(key),
                                    std::get<2>(key), entry.variant,
                                    entry.costSec});
    }
    return out;
}

void
Autotuner::seed(const std::vector<AutotuneEntry> &entries)
{
    MutexLock lock(mu);
    for (const AutotuneEntry &e : entries) {
        cache.emplace(ShapeKey{e.m, e.n, e.k},
                      Entry{e.variant, e.costSec});
    }
}

GemmVariant
Autotuner::chooseHeuristic(int64_t m, int64_t n, int64_t k) const
{
    // Cost model: blocked-GEMM memory traffic plus a padding-waste
    // penalty for tiles that overhang the matrix edges. Mirrors what
    // rocBLAS' shape heuristics optimise for.
    const auto &menu = gemmVariantMenu();
    double best_cost = 0.0;
    const GemmVariant *best = nullptr;

    for (const GemmVariant &v : menu) {
        double nb_m = std::ceil(static_cast<double>(m) / v.tileM);
        double nb_n = std::ceil(static_cast<double>(n) / v.tileN);
        double traffic =
            static_cast<double>(m) * static_cast<double>(k) * nb_n +
            static_cast<double>(k) * static_cast<double>(n) * nb_m;
        double padded = nb_m * v.tileM * nb_n * v.tileN;
        double waste = padded / (static_cast<double>(m) *
            static_cast<double>(n));
        double cost = traffic * waste;
        if (best == nullptr || cost < best_cost) {
            best = &v;
            best_cost = cost;
        }
    }
    return *best;
}

Autotuner::Entry
Autotuner::chooseMeasured(int64_t m, int64_t n, int64_t k)
{
    const auto &menu = gemmVariantMenu();
    double best_time = 0.0;
    double shape_cost = 0.0;
    const GemmVariant *best = nullptr;

    for (const GemmVariant &v : menu) {
        sim::KernelDesc desc = gemmKernelForVariant("autotune_probe",
                                                    m, n, k, v);
        sim::KernelRecord rec = gpu->execute(desc);
        shape_cost += rec.timeSec;
        if (best == nullptr || rec.timeSec < best_time) {
            best = &v;
            best_time = rec.timeSec;
        }
    }
    return Entry{*best, shape_cost};
}

void
Autotuner::reset()
{
    MutexLock lock(mu);
    cache.clear();
}

void
encodeAutotuneEntry(ByteWriter &w, const AutotuneEntry &e)
{
    w.i64(e.m);
    w.i64(e.n);
    w.i64(e.k);
    w.u32(e.variant.tileM);
    w.u32(e.variant.tileN);
    w.u32(e.variant.tileK);
    w.f64(e.costSec);
}

AutotuneEntry
decodeAutotuneEntry(ByteReader &r)
{
    AutotuneEntry e;
    e.m = r.i64();
    e.n = r.i64();
    e.k = r.i64();
    e.variant.tileM = r.u32();
    e.variant.tileN = r.u32();
    e.variant.tileK = r.u32();
    e.costSec = r.f64();
    return e;
}

namespace {

/** Bit-pattern image of a double: a deterministic total order. */
inline uint64_t
orderBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

/**
 * Canonical order for the packed section: the tuner's shape key,
 * then the variant and cost so the order is total for any input
 * (snapshotEntries() never repeats a shape, but the codec must be
 * canonical for whatever the fuzzer decodes).
 */
bool
entryLess(const AutotuneEntry &a, const AutotuneEntry &b)
{
    auto key = [](const AutotuneEntry &e) {
        return std::tuple(e.m, e.n, e.k, e.variant.tileM,
                          e.variant.tileN, e.variant.tileK,
                          orderBits(e.costSec));
    };
    return key(a) < key(b);
}

} // anonymous namespace

void
encodeAutotuneSection(ByteWriter &w,
                      const std::vector<AutotuneEntry> &entries)
{
    std::vector<const AutotuneEntry *> order;
    order.reserve(entries.size());
    // seqlint:canonical-order -- `entries` is the caller's vector
    // (any order); the sort below canonicalises before encoding.
    for (const AutotuneEntry &e : entries)
        order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const AutotuneEntry *a, const AutotuneEntry *b) {
                  return entryLess(*a, *b);
              });

    w.u64(order.size());
    AutotuneEntry prev; // zero deltas for the first entry
    for (const AutotuneEntry *ep : order) {
        const AutotuneEntry &e = *ep;
        w.vi64(e.m - prev.m);
        w.vi64(e.n - prev.n);
        w.vi64(e.k - prev.k);
        w.vi64(static_cast<int64_t>(e.variant.tileM) -
               static_cast<int64_t>(prev.variant.tileM));
        w.vi64(static_cast<int64_t>(e.variant.tileN) -
               static_cast<int64_t>(prev.variant.tileN));
        w.vi64(static_cast<int64_t>(e.variant.tileK) -
               static_cast<int64_t>(prev.variant.tileK));
        w.f64Packed(e.costSec, prev.costSec);
        prev = e;
    }
}

std::vector<AutotuneEntry>
decodeAutotuneSection(ByteReader &r)
{
    uint64_t n = r.u64();
    std::vector<AutotuneEntry> out;
    // Bound the up-front allocation by what the payload could
    // possibly hold: an entry is at least 7 wire bytes (six 1-byte
    // varints plus the cost tag byte), so a crafted count can never
    // amplify a small file into a huge reserve -- it runs into the
    // reader's truncation error instead.
    out.reserve(static_cast<size_t>(
        std::min<uint64_t>(n, r.remaining() / 7)));
    AutotuneEntry prev;
    for (uint64_t i = 0; i < n; ++i) {
        AutotuneEntry e;
        // addWrap: corrupted deltas must not overflow into UB. The
        // tile fields reconstruct through the same wrapping add and
        // truncate to their unsigned width.
        e.m = addWrap(prev.m, r.vi64());
        e.n = addWrap(prev.n, r.vi64());
        e.k = addWrap(prev.k, r.vi64());
        e.variant.tileM = static_cast<unsigned>(static_cast<uint64_t>(
            addWrap(static_cast<int64_t>(prev.variant.tileM),
                    r.vi64())));
        e.variant.tileN = static_cast<unsigned>(static_cast<uint64_t>(
            addWrap(static_cast<int64_t>(prev.variant.tileN),
                    r.vi64())));
        e.variant.tileK = static_cast<unsigned>(static_cast<uint64_t>(
            addWrap(static_cast<int64_t>(prev.variant.tileK),
                    r.vi64())));
        e.costSec = r.f64Packed(prev.costSec);
        out.push_back(e);
        prev = e;
    }
    return out;
}

} // namespace nn
} // namespace seqpoint
