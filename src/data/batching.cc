/**
 * @file
 * Batching implementation.
 */

#include "data/batching.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace seqpoint {
namespace data {

namespace {

std::vector<Batch>
chunkIntoBatches(const std::vector<int64_t> &ordered, unsigned batch_size)
{
    std::vector<Batch> batches;
    size_t full = ordered.size() / batch_size;
    batches.reserve(full);
    for (size_t b = 0; b < full; ++b) {
        int64_t max_sl = 0;
        for (unsigned i = 0; i < batch_size; ++i)
            max_sl = std::max(max_sl, ordered[b * batch_size + i]);
        batches.push_back(Batch{max_sl, batch_size});
    }
    return batches;
}

} // anonymous namespace

std::vector<Batch>
makeEpochBatches(const std::vector<int64_t> &lens, unsigned batch_size,
                 BatchPolicy policy, Rng &rng)
{
    fatal_if(batch_size == 0, "makeEpochBatches: zero batch size");
    fatal_if(lens.size() < batch_size,
             "makeEpochBatches: fewer samples (%zu) than one batch (%u)",
             lens.size(), batch_size);

    std::vector<int64_t> ordered = lens;

    switch (policy) {
      case BatchPolicy::Shuffled:
        rng.shuffle(ordered);
        return chunkIntoBatches(ordered, batch_size);

      case BatchPolicy::SortedBySl:
        std::sort(ordered.begin(), ordered.end());
        return chunkIntoBatches(ordered, batch_size);

      case BatchPolicy::Bucketed: {
        // Sort to form low-padding batches, then shuffle the batch
        // order so training still sees mixed lengths.
        std::sort(ordered.begin(), ordered.end());
        std::vector<Batch> batches = chunkIntoBatches(ordered,
                                                      batch_size);
        rng.shuffle(batches);
        return batches;
      }
    }
    panic("makeEpochBatches: bad policy");
    return {};
}

double
paddingOverhead(const std::vector<int64_t> &lens,
                const std::vector<Batch> &batches)
{
    double padded = 0.0;
    for (const Batch &b : batches)
        padded += static_cast<double>(b.seqLen) * b.size;
    if (padded <= 0.0)
        return 0.0;

    // Only the samples that made it into full batches count; their
    // expected content is used * mean(sample length).
    size_t used = 0;
    for (const Batch &b : batches)
        used += b.size;
    double total = std::accumulate(lens.begin(), lens.end(), 0.0);
    double mean_len = total / static_cast<double>(lens.size());
    double real = mean_len * static_cast<double>(used);
    return std::max(0.0, 1.0 - real / padded);
}

} // namespace data
} // namespace seqpoint
