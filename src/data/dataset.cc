/**
 * @file
 * Dataset factories.
 */

#include "data/dataset.hh"

#include <algorithm>
#include <set>

#include "data/distributions.hh"

namespace seqpoint {
namespace data {

int64_t
Dataset::minLen() const
{
    if (trainLens.empty())
        return 0;
    return *std::min_element(trainLens.begin(), trainLens.end());
}

int64_t
Dataset::maxLen() const
{
    if (trainLens.empty())
        return 0;
    return *std::max_element(trainLens.begin(), trainLens.end());
}

size_t
Dataset::uniqueLenCount() const
{
    std::set<int64_t> uniq(trainLens.begin(), trainLens.end());
    return uniq.size();
}

Dataset
synthLibriSpeech100(uint64_t seed)
{
    Rng rng(seed, 0x11b5);
    Dataset ds;
    ds.name = "LibriSpeech-100h(synth)";
    // ~36.5k utterances -> 570 iterations/epoch at batch 64.
    ds.trainLens = librispeechLengths(rng, 36480);
    // LibriSpeech dev-clean is 2703 utterances.
    ds.evalLens = librispeechLengths(rng, 2703);
    return ds;
}

Dataset
synthIwslt15(uint64_t seed)
{
    Rng rng(seed, 0x1351);
    Dataset ds;
    ds.name = "IWSLT15(synth)";
    // ~38.4k sentence pairs -> 600 iterations/epoch at batch 64.
    ds.trainLens = iwsltLengths(rng, 38400);
    // IWSLT tst2013 is 1553 sentence pairs.
    ds.evalLens = iwsltLengths(rng, 1553);
    return ds;
}

Dataset
synthWmt16(uint64_t seed)
{
    Rng rng(seed, 0x3316);
    Dataset ds;
    ds.name = "WMT16(synth)";
    // Much larger corpus, same SL range.
    ds.trainLens = wmtLengths(rng, 384000);
    ds.evalLens = wmtLengths(rng, 2048);
    return ds;
}

} // namespace data
} // namespace seqpoint
