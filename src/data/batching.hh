/**
 * @file
 * Batching policies. SQNN frameworks pad every sample in a batch to
 * the batch's longest sequence, so the iteration's effective SL is
 * that maximum. The policy determines iteration *order*, which is
 * irrelevant to SeqPoint but decisive for the Prior baseline: DS2
 * sorts samples by SL in its first epoch, which is exactly why Prior's
 * 50 contiguous iterations accidentally cover a narrow SL band.
 */

#ifndef SEQPOINT_DATA_BATCHING_HH
#define SEQPOINT_DATA_BATCHING_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "data/dataset.hh"

namespace seqpoint {
namespace data {

/** One training iteration's input batch. */
struct Batch {
    int64_t seqLen = 0; ///< Padded (maximum) SL of the batch.
    unsigned size = 0;  ///< Samples in the batch.
};

/** Iteration-order policy for an epoch. */
enum class BatchPolicy {
    Shuffled,   ///< Uniform shuffle (GNMT-style).
    SortedBySl, ///< Sort samples by SL (DS2's first epoch).
    Bucketed,   ///< Bucket by SL, then shuffle batches (low padding).
};

/**
 * Form one epoch of batches from sample lengths.
 *
 * A trailing partial batch is dropped, keeping the batch size
 * constant across iterations as the paper assumes.
 *
 * @param lens Per-sample sequence lengths.
 * @param batch_size Samples per batch (> 0).
 * @param policy Iteration-order policy.
 * @param rng Random source (used by Shuffled/Bucketed).
 * @return Batches in execution order.
 */
std::vector<Batch> makeEpochBatches(const std::vector<int64_t> &lens,
                                    unsigned batch_size,
                                    BatchPolicy policy, Rng &rng);

/**
 * Fraction of padded positions across an epoch: wasted work
 * introduced by padding each batch to its maximum SL.
 *
 * @param lens Per-sample sequence lengths.
 * @param batches Epoch batches formed from those samples.
 * @return Padding fraction in [0, 1).
 */
double paddingOverhead(const std::vector<int64_t> &lens,
                       const std::vector<Batch> &batches);

} // namespace data
} // namespace seqpoint

#endif // SEQPOINT_DATA_BATCHING_HH
