/**
 * @file
 * Synthetic sequence-length distributions. SeqPoint never inspects
 * sample *content* -- only each sample's sequence length -- so a
 * faithful SL distribution is a complete stand-in for the paper's
 * datasets. Shapes are calibrated to Fig 7: LibriSpeech-100h is
 * heavily right-skewed with a secondary mid-length mass; IWSLT'15 is
 * broader ("more uniform" in the paper's words).
 */

#ifndef SEQPOINT_DATA_DISTRIBUTIONS_HH
#define SEQPOINT_DATA_DISTRIBUTIONS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace seqpoint {
namespace data {

/**
 * LibriSpeech-100h-like utterance lengths, in post-convolution time
 * steps (the DS2 GRU unroll factor), range roughly [50, 450].
 *
 * Mixture: a dominant short-utterance gamma mode, a secondary
 * mid-length mode (audiobook sentences), and a thin long tail.
 *
 * @param rng Random source.
 * @param count Number of samples to draw.
 * @return Sample sequence lengths.
 */
std::vector<int64_t> librispeechLengths(Rng &rng, size_t count);

/**
 * IWSLT'15-like sentence lengths in tokens, range roughly [4, 220]:
 * a broad log-normal body with substantial mass across the range.
 *
 * @param rng Random source.
 * @param count Number of samples to draw.
 * @return Sample sequence lengths.
 */
std::vector<int64_t> iwsltLengths(Rng &rng, size_t count);

/**
 * WMT'16-like sentence lengths: same SL *range* as IWSLT (the paper
 * notes the larger datasets cover similar ranges), slightly different
 * body shape. Used by the scaling discussion bench.
 *
 * @param rng Random source.
 * @param count Number of samples to draw.
 * @return Sample sequence lengths.
 */
std::vector<int64_t> wmtLengths(Rng &rng, size_t count);

/**
 * Clamp helper shared by the generators.
 *
 * @param value Raw draw.
 * @param lo Minimum allowed.
 * @param hi Maximum allowed.
 */
int64_t clampLen(double value, int64_t lo, int64_t hi);

} // namespace data
} // namespace seqpoint

#endif // SEQPOINT_DATA_DISTRIBUTIONS_HH
