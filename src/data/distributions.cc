/**
 * @file
 * Synthetic sequence-length distribution implementations.
 */

#include "data/distributions.hh"

#include <algorithm>
#include <cmath>

namespace seqpoint {
namespace data {

int64_t
clampLen(double value, int64_t lo, int64_t hi)
{
    int64_t v = static_cast<int64_t>(std::llround(value));
    return std::clamp(v, lo, hi);
}

std::vector<int64_t>
librispeechLengths(Rng &rng, size_t count)
{
    std::vector<int64_t> lens;
    lens.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        // Rejection-resample instead of clamping so no artificial
        // probability mass piles up at the range edges.
        double v;
        do {
            double u = rng.uniformDouble();
            if (u < 0.55) {
                // Dominant short-utterance mode.
                v = 50.0 + rng.gamma(2.2, 22.0);
            } else if (u < 0.80) {
                // Mid-length audiobook sentences.
                v = 160.0 + rng.gamma(3.0, 30.0);
            } else {
                // Long-utterance tail.
                v = 260.0 + rng.gamma(2.0, 55.0);
            }
        } while (v > 450.0);
        lens.push_back(clampLen(v, 50, 450));
    }
    return lens;
}

std::vector<int64_t>
iwsltLengths(Rng &rng, size_t count)
{
    std::vector<int64_t> lens;
    lens.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        // Broad log-normal body: median ~25 tokens, long tail.
        double v;
        do {
            v = rng.logNormal(3.2, 0.70);
        } while (v > 220.0);
        lens.push_back(clampLen(v, 4, 220));
    }
    return lens;
}

std::vector<int64_t>
wmtLengths(Rng &rng, size_t count)
{
    std::vector<int64_t> lens;
    lens.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        // Same range as IWSLT, slightly longer median (news text).
        double v;
        do {
            v = rng.logNormal(3.35, 0.60);
        } while (v > 220.0);
        lens.push_back(clampLen(v, 4, 220));
    }
    return lens;
}

} // namespace data
} // namespace seqpoint
