/**
 * @file
 * Datasets as sequence-length collections, with the train/eval split
 * the paper's evaluation-phase accounting needs.
 */

#ifndef SEQPOINT_DATA_DATASET_HH
#define SEQPOINT_DATA_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

namespace seqpoint {
namespace data {

/**
 * A dataset: named collections of per-sample sequence lengths for the
 * training and evaluation splits.
 */
struct Dataset {
    std::string name;                 ///< Dataset name.
    std::vector<int64_t> trainLens;   ///< Training-sample SLs.
    std::vector<int64_t> evalLens;    ///< Evaluation-split SLs.

    /** @return Number of training samples. */
    size_t trainSize() const { return trainLens.size(); }

    /** @return Smallest training SL (0 if empty). */
    int64_t minLen() const;

    /** @return Largest training SL (0 if empty). */
    int64_t maxLen() const;

    /** @return Number of distinct training SL values. */
    size_t uniqueLenCount() const;
};

/**
 * Synthetic LibriSpeech-100h stand-in for DS2 training.
 *
 * Sized so one epoch at batch 64 is a few hundred iterations, as in
 * the paper's setup.
 *
 * @param seed Generator seed (content is deterministic per seed).
 */
Dataset synthLibriSpeech100(uint64_t seed);

/**
 * Synthetic IWSLT'15 stand-in for GNMT training.
 *
 * @param seed Generator seed.
 */
Dataset synthIwslt15(uint64_t seed);

/**
 * Synthetic WMT'16 stand-in (larger corpus, similar SL range) for the
 * dataset-scaling discussion.
 *
 * @param seed Generator seed.
 */
Dataset synthWmt16(uint64_t seed);

} // namespace data
} // namespace seqpoint

#endif // SEQPOINT_DATA_DATASET_HH
