/**
 * @file
 * GNMT model assembly.
 */

#include "models/gnmt.hh"

#include <memory>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "nn/layers/attention.hh"
#include "nn/layers/embedding.hh"
#include "nn/layers/fully_connected.hh"
#include "nn/layers/recurrent.hh"
#include "nn/layers/softmax_loss.hh"

namespace seqpoint {
namespace models {

nn::Model
buildGnmt(const GnmtParams &p)
{
    using namespace nn;

    fatal_if(p.encoderLayers < 2, "GNMT: need >= 2 encoder layers");
    fatal_if(p.decoderLayers < 1, "GNMT: need >= 1 decoder layer");

    Model model("GNMT");
    model.setTargetLenRatio(p.targetLenRatio);

    // --- Encoder --------------------------------------------------
    model.add(std::make_unique<EmbeddingLayer>("enc_embed", p.vocab,
        p.hidden, TimeAxis::Source));

    // First encoder layer is bidirectional.
    model.add(std::make_unique<RecurrentLayer>("enc_lstm_0",
        CellType::Lstm, p.hidden, p.hidden, true, TimeAxis::Source));

    // Remaining encoder layers are unidirectional; layer 1 consumes
    // the concatenated bidirectional output.
    for (unsigned i = 1; i < p.encoderLayers; ++i) {
        int64_t in_dim = (i == 1) ? 2 * p.hidden : p.hidden;
        model.add(std::make_unique<RecurrentLayer>(
            csprintf("enc_lstm_%u", i), CellType::Lstm, in_dim, p.hidden,
            false, TimeAxis::Source));
    }

    // --- Decoder --------------------------------------------------
    model.add(std::make_unique<EmbeddingLayer>("dec_embed", p.vocab,
        p.hidden, TimeAxis::Target));

    // Attention feeds the decoder; its queries scale with the target.
    model.add(std::make_unique<AttentionLayer>("attention", p.hidden,
        TimeAxis::Target));

    // First decoder layer consumes embedding + attention context.
    model.add(std::make_unique<RecurrentLayer>("dec_lstm_0",
        CellType::Lstm, 2 * p.hidden, p.hidden, false, TimeAxis::Target));
    for (unsigned i = 1; i < p.decoderLayers; ++i) {
        model.add(std::make_unique<RecurrentLayer>(
            csprintf("dec_lstm_%u", i), CellType::Lstm, p.hidden,
            p.hidden, false, TimeAxis::Target));
    }

    // --- Classifier + loss ----------------------------------------
    model.add(std::make_unique<FullyConnectedLayer>("classifier",
        p.hidden, p.vocab, TimeAxis::Target));
    model.add(std::make_unique<SoftmaxLossLayer>("loss", p.vocab,
        TimeAxis::Target));

    return model;
}

} // namespace models
} // namespace seqpoint
