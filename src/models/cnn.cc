/**
 * @file
 * CNN model assembly.
 */

#include "models/cnn.hh"

#include <memory>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "nn/layers/batchnorm.hh"
#include "nn/layers/conv2d.hh"
#include "nn/layers/fully_connected.hh"
#include "nn/layers/softmax_loss.hh"

namespace seqpoint {
namespace models {

nn::Model
buildCnn(const CnnParams &p)
{
    using namespace nn;

    fatal_if(p.stages == 0 || p.blocksPerStage == 0,
             "CNN: empty structure");

    Model model("CNN");

    int64_t size = p.imageSize;
    int64_t in_c = 3;
    int64_t out_c = p.baseChannels;

    for (unsigned s = 0; s < p.stages; ++s) {
        for (unsigned b = 0; b < p.blocksPerStage; ++b) {
            // First block of each later stage downsamples.
            int64_t stride = (s > 0 && b == 0) ? 2 : 1;
            auto conv = std::make_unique<Conv2dLayer>(
                csprintf("conv_s%u_b%u", s, b), in_c, out_c, 3, 3,
                stride, stride, size, TimeAxis::Fixed, 1, size);
            size = (stride == 2) ? (size + 1) / 2 : size;
            model.add(std::move(conv));
            model.add(std::make_unique<BatchNormLayer>(
                csprintf("bn_s%u_b%u", s, b), out_c * size, out_c,
                TimeAxis::Fixed, size));
            in_c = out_c;
        }
        out_c *= 2;
    }

    // Global-average-pooled features to the classifier.
    model.add(std::make_unique<FullyConnectedLayer>("classifier", in_c,
        p.classes, TimeAxis::Fixed, 1));
    model.add(std::make_unique<SoftmaxLossLayer>("loss", p.classes,
        TimeAxis::Fixed, 1));

    return model;
}

} // namespace models
} // namespace seqpoint
