/**
 * @file
 * Google Neural Machine Translation (GNMT) reference model, as the
 * paper describes it: an encoder with seven unidirectional plus one
 * bidirectional LSTM layer, an eight-layer unidirectional LSTM
 * decoder, an attention network connecting them, and a fully-
 * connected classifier over the vocabulary.
 */

#ifndef SEQPOINT_MODELS_GNMT_HH
#define SEQPOINT_MODELS_GNMT_HH

#include "nn/model.hh"

namespace seqpoint {
namespace models {

/** Structural hyper-parameters of the GNMT build. */
struct GnmtParams {
    int64_t vocab = 36549;      ///< IWSLT'15 vocabulary (Table I).
    int64_t hidden = 1024;      ///< LSTM hidden and embedding size.
    unsigned encoderLayers = 8; ///< 1 bidirectional + 7 unidirectional.
    unsigned decoderLayers = 8; ///< Unidirectional decoder stack.
    double targetLenRatio = 0.95; ///< Derived target/source ratio.
};

/**
 * Build the GNMT model.
 *
 * @param params Structural hyper-parameters.
 * @return The assembled model.
 */
nn::Model buildGnmt(const GnmtParams &params = GnmtParams{});

} // namespace models
} // namespace seqpoint

#endif // SEQPOINT_MODELS_GNMT_HH
