/**
 * @file
 * Baidu DeepSpeech2 (DS2) reference model as the paper describes it:
 * two convolutional layers, one batch-normalisation layer, five
 * bidirectional GRU layers, and a fully-connected classifier over the
 * character vocabulary.
 *
 * Sequence-length convention: an iteration's SL is the *post-
 * convolution* time-step count (the GRU unroll factor). The input
 * spectrogram has 2*SL frames; the first convolution's stride-2 time
 * axis halves it. Table I's classifier GEMMs (N = 64*402, 64*59)
 * follow directly.
 */

#ifndef SEQPOINT_MODELS_DS2_HH
#define SEQPOINT_MODELS_DS2_HH

#include "nn/model.hh"

namespace seqpoint {
namespace models {

/** Structural hyper-parameters of the DS2 build. */
struct Ds2Params {
    int64_t vocab = 29;         ///< Character vocabulary (Table I).
    int64_t hidden = 800;       ///< GRU hidden per direction (2x800 =
                                ///< the 1600 classifier K of Table I).
    unsigned gruLayers = 5;     ///< Bidirectional GRU stack depth.
    int64_t freqBins = 161;     ///< Input spectrogram frequency bins.
};

/**
 * Build the DS2 model.
 *
 * @param params Structural hyper-parameters.
 * @return The assembled model.
 */
nn::Model buildDs2(const Ds2Params &params = Ds2Params{});

} // namespace models
} // namespace seqpoint

#endif // SEQPOINT_MODELS_DS2_HH
