/**
 * @file
 * Transformer model assembly.
 */

#include "models/transformer.hh"

#include <memory>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "nn/layers/attention.hh"
#include "nn/layers/embedding.hh"
#include "nn/layers/fully_connected.hh"
#include "nn/layers/softmax_loss.hh"

namespace seqpoint {
namespace models {

nn::Model
buildTransformer(const TransformerParams &p)
{
    using namespace nn;

    fatal_if(p.layers == 0, "Transformer: empty structure");

    Model model("Transformer");
    // Self-attention: queries and keys both live on the source axis.
    model.setTargetLenRatio(1.0);

    model.add(std::make_unique<EmbeddingLayer>("embed", p.vocab,
        p.hidden, TimeAxis::Source));

    for (unsigned i = 0; i < p.layers; ++i) {
        model.add(std::make_unique<AttentionLayer>(
            csprintf("self_attn_%u", i), p.hidden, TimeAxis::Source));
        model.add(std::make_unique<FullyConnectedLayer>(
            csprintf("ffn_up_%u", i), p.hidden, p.ffn,
            TimeAxis::Source));
        model.add(std::make_unique<FullyConnectedLayer>(
            csprintf("ffn_down_%u", i), p.ffn, p.hidden,
            TimeAxis::Source));
    }

    model.add(std::make_unique<FullyConnectedLayer>("classifier",
        p.hidden, p.vocab, TimeAxis::Source));
    model.add(std::make_unique<SoftmaxLossLayer>("loss", p.vocab,
        TimeAxis::Source));

    return model;
}

} // namespace models
} // namespace seqpoint
