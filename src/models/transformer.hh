/**
 * @file
 * A small Transformer encoder classifier. The paper's discussion
 * (section VII-B) argues SeqPoint applies to any network whose
 * computation scales with the input sequence length, naming attention
 * models explicitly; this model backs that claim in the examples and
 * extension tests.
 */

#ifndef SEQPOINT_MODELS_TRANSFORMER_HH
#define SEQPOINT_MODELS_TRANSFORMER_HH

#include "nn/model.hh"

namespace seqpoint {
namespace models {

/** Structural hyper-parameters of the Transformer build. */
struct TransformerParams {
    int64_t vocab = 32000;    ///< Subword vocabulary.
    int64_t hidden = 512;     ///< Model width.
    int64_t ffn = 2048;       ///< Feed-forward inner width.
    unsigned layers = 6;      ///< Encoder blocks.
};

/**
 * Build the Transformer model.
 *
 * @param params Structural hyper-parameters.
 * @return The assembled model.
 */
nn::Model buildTransformer(const TransformerParams &params =
                               TransformerParams{});

} // namespace models
} // namespace seqpoint

#endif // SEQPOINT_MODELS_TRANSFORMER_HH
