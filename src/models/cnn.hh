/**
 * @file
 * A fixed-input CNN image classifier (ResNet-style plain stack) used
 * as the homogeneous-iteration contrast case for Fig 3: every layer
 * uses TimeAxis::Fixed, so the lowered kernel stream is identical for
 * every iteration regardless of the batch's content.
 */

#ifndef SEQPOINT_MODELS_CNN_HH
#define SEQPOINT_MODELS_CNN_HH

#include "nn/model.hh"

namespace seqpoint {
namespace models {

/** Structural hyper-parameters of the CNN build. */
struct CnnParams {
    int64_t imageSize = 32;  ///< Square input edge (pixels).
    int64_t classes = 1000;  ///< Classifier classes.
    unsigned stages = 3;     ///< Resolution stages (stride-2 between).
    unsigned blocksPerStage = 2; ///< Conv blocks per stage.
    int64_t baseChannels = 64;   ///< Channels of the first stage.
};

/**
 * Build the CNN model.
 *
 * @param params Structural hyper-parameters.
 * @return The assembled model.
 */
nn::Model buildCnn(const CnnParams &params = CnnParams{});

} // namespace models
} // namespace seqpoint

#endif // SEQPOINT_MODELS_CNN_HH
