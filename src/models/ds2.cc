/**
 * @file
 * DS2 model assembly.
 */

#include "models/ds2.hh"

#include <memory>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "nn/kernel_gen.hh"
#include "nn/layers/batchnorm.hh"
#include "nn/layers/conv2d.hh"
#include "nn/layers/fully_connected.hh"
#include "nn/layers/recurrent.hh"
#include "nn/layers/softmax_loss.hh"

namespace seqpoint {
namespace models {

nn::Model
buildDs2(const Ds2Params &p)
{
    using namespace nn;

    fatal_if(p.gruLayers < 1, "DS2: need >= 1 GRU layer");

    Model model("DS2");

    // conv1: 32 filters of 11x41 over [2*SL, 161], stride (2, 2):
    // output time = SL, output freq = 81.
    auto conv1 = std::make_unique<Conv2dLayer>("conv1", 1, 32, 11, 41,
        2, 2, p.freqBins, TimeAxis::Source, /*time_expansion=*/2);
    int64_t freq1 = conv1->outWidth();

    // conv2: 32 filters of 11x21, stride (1, 2): time stays SL.
    auto conv2 = std::make_unique<Conv2dLayer>("conv2", 32, 32, 11, 21,
        1, 2, freq1, TimeAxis::Source, /*time_expansion=*/1);
    int64_t freq2 = conv2->outWidth();
    int64_t conv_features = 32 * freq2;

    model.add(std::move(conv1));
    model.add(std::move(conv2));

    // Batch-norm over the conv feature map.
    model.add(std::make_unique<BatchNormLayer>("batchnorm",
        conv_features, 32, TimeAxis::Source));

    // Five bidirectional GRU layers; layer 0 consumes the flattened
    // conv features, the rest consume 2*hidden.
    for (unsigned i = 0; i < p.gruLayers; ++i) {
        int64_t in_dim = (i == 0) ? conv_features : 2 * p.hidden;
        model.add(std::make_unique<RecurrentLayer>(
            csprintf("bigru_%u", i), CellType::Gru, in_dim, p.hidden,
            true, TimeAxis::Source));
    }

    // Character classifier over every post-conv time step, then the
    // (CTC-style) loss approximated as softmax cross-entropy.
    model.add(std::make_unique<FullyConnectedLayer>("classifier",
        2 * p.hidden, p.vocab, TimeAxis::Source));
    model.add(std::make_unique<SoftmaxLossLayer>("loss", p.vocab,
        TimeAxis::Source));

    return model;
}

} // namespace models
} // namespace seqpoint
