/**
 * @file
 * Deadline-aware SeqPoint query service: the repository's answer to
 * "give me the SeqPoints + predicted runtime/error for (workload,
 * configuration, run-params)" under heavy concurrent traffic.
 *
 * The paper's value proposition is that this query is orders of
 * magnitude cheaper than full-epoch profiling once the per-SL
 * profiles exist; the service keeps them resident. One shared
 * SnapshotRegistry supplies cold-start state (single-flight per
 * identity, optionally disk-persistent), and a warm Experiment per
 * (workload, config) pair answers repeat queries from memos in
 * microseconds.
 *
 * Robustness is the design center, not throughput:
 *
 *   - Admission control: a bounded queue; a full queue (or a
 *     draining service) sheds new requests immediately with
 *     ErrorCode::Overloaded instead of growing without bound.
 *   - Deadlines: every request carries a CancelToken; the expensive
 *     loops (profiling sweeps, epoch assembly, snapshot decode,
 *     scheduler cells) poll it at checkpoints, so a slow cold start
 *     returns a classified Timeout instead of wedging a worker.
 *   - Dedup: concurrent identical queries ride one underlying build
 *     through the registry's single-flight slot (plus the per-pair
 *     warm entry), so a thundering herd pays one cold start.
 *   - Graceful drain: stop admitting, give in-flight requests until
 *     the drain deadline, cancel the stragglers, persist any
 *     snapshot the store missed, then join everything.
 *   - Watchdog: a background thread reports workers that have been
 *     busy on one request suspiciously long.
 */

#ifndef SEQPOINT_SERVICE_QUERY_SERVICE_HH
#define SEQPOINT_SERVICE_QUERY_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"
#include "common/cancel.hh"
#include "common/mutex.hh"
#include "common/status.hh"
#include "common/thread_annotations.hh"
#include "core/baselines.hh"
#include "core/seqpoint.hh"
#include "harness/experiment.hh"
#include "harness/snapshot_registry.hh"
#include "harness/workloads.hh"
#include "sim/gpu.hh"

namespace seqpoint {
namespace service {

/** One SeqPoint query. */
struct QueryRequest {
    std::string workload;    ///< Registered workload name.
    sim::GpuConfig config;   ///< Target hardware configuration.
    core::SelectorKind selector = core::SelectorKind::SeqPoint;
    /** Per-request deadline in seconds (infinity = none). */
    double deadlineSec = std::numeric_limits<double>::infinity();
};

/** The service's answer to one query (valid when status is OK). */
struct QueryAnswer {
    core::SeqPointSet selection; ///< The selector's representative set.
    double projectedSec = 0.0;   ///< SeqPoint-projected epoch time.
    double actualSec = 0.0;      ///< Full-epoch reference time.
    double errorPct = 0.0;       ///< |projected-actual|/actual * 100.
};

/** Terminal outcome of one query. */
struct QueryResult {
    Status status;          ///< OK, or the classified failure/shed.
    QueryAnswer answer;     ///< Valid when status.ok().
    bool coldBuild = false; ///< This request paid the snapshot build.
    double latencySec = 0.0; ///< Submit-to-completion wall time.
};

/**
 * Handle to a submitted query: lets the submitter wait for the
 * result and cancel the request. Shared between the submitter and
 * the worker executing it.
 */
class PendingQuery
{
  public:
    explicit PendingQuery(QueryRequest req);

    /** @return The request as submitted. */
    const QueryRequest &request() const { return req; }

    /** @return The request's cancellation token. */
    CancelToken &token() { return token_; }

    /** Fire the token: the request unwinds at its next checkpoint. */
    void cancel() { token_.cancel(); }

    /** @return True once the result is available. */
    bool done() const SEQ_EXCLUDES(mu);

    /** Block until the result is available and return it. */
    QueryResult wait() SEQ_EXCLUDES(mu);

  private:
    friend class QueryService;

    /** Publish the result and wake every waiter (exactly once). */
    void complete(QueryResult r) SEQ_EXCLUDES(mu);

    QueryRequest req;
    CancelToken token_;
    double submitSec = 0.0; ///< CancelToken::now() at submit.

    mutable Mutex mu;
    CondVar cv;
    bool done_ SEQ_GUARDED_BY(mu) = false;
    QueryResult result SEQ_GUARDED_BY(mu);
};

using PendingPtr = std::shared_ptr<PendingQuery>;

/** Service construction knobs. */
struct ServiceConfig {
    unsigned workers = 4;          ///< Request-serving threads.
    std::size_t queueCapacity = 16; ///< Admission-control bound.
    unsigned profileThreads = 1;   ///< Inner sweep width per build.
    std::string storeDir;          ///< Snapshot store ("" = memory).
    /** Report a worker busy on one request longer than this. */
    double watchdogStuckSec = 30.0;
    double watchdogPollSec = 0.5;  ///< Watchdog scan interval.
    /** Default drain budget (destructor, drain() without an arg). */
    double drainTimeoutSec = 60.0;
};

/** Service-level accounting (all monotonic counters). */
struct ServiceStats {
    uint64_t admitted = 0;      ///< Requests accepted into the queue.
    uint64_t shedOverload = 0;  ///< Refused: queue full or draining.
    uint64_t completed = 0;     ///< Answered with an OK result.
    uint64_t deadlineMissed = 0; ///< Classified Timeout results.
    uint64_t cancelled = 0;     ///< Classified Cancelled results.
    uint64_t failed = 0;        ///< Other classified failures.
    uint64_t coldBuilds = 0;    ///< Answers that paid a snapshot build.
    uint64_t warmHits = 0;      ///< Answers served from warm state.
    uint64_t stuckReports = 0;  ///< Watchdog stuck-worker reports.
};

/**
 * The deadline-aware query service. Register workloads, start(),
 * submit()/query() from any number of client threads, drain() to
 * shut down. All public methods are thread-safe after start().
 */
class QueryService
{
  public:
    explicit QueryService(ServiceConfig cfg = ServiceConfig());

    /** Drains (with the configured default budget) if still running. */
    ~QueryService();

    QueryService(const QueryService &) = delete;
    QueryService &operator=(const QueryService &) = delete;

    /**
     * Register a workload under `name` (before start(); the factory
     * must build the identical workload on every call).
     */
    void registerWorkload(const std::string &name,
                          harness::WorkloadFactory make);

    /** Spawn the workers and the watchdog. */
    void start();

    /**
     * Submit a query (never blocks). A request refused by admission
     * control (queue full, or the service is draining/not started)
     * completes immediately with ErrorCode::Overloaded; the returned
     * handle always delivers a result.
     */
    PendingPtr submit(QueryRequest req);

    /** Synchronous convenience: submit and wait. */
    QueryResult query(QueryRequest req);

    /**
     * Graceful shutdown: stop admitting (later submits shed with
     * Overloaded), let queued + in-flight requests finish until
     * `timeout_sec` elapses, cancel whatever is still running (each
     * unwinds at its next checkpoint with a Cancelled result), join
     * the workers, persist any snapshot the store does not hold yet,
     * and stop the watchdog. Idempotent.
     *
     * @param timeout_sec Budget for the polite phase; <= 0 cancels
     *        in-flight work immediately. NAN/default uses the
     *        configured drainTimeoutSec.
     */
    void drain(double timeout_sec);
    void drain() { drain(config_.drainTimeoutSec); }

    /** @return True between start() and drain(). */
    bool running() const { return running_.load(); }

    /** @return Service accounting so far. */
    ServiceStats stats() const;

    /** @return The shared snapshot registry (thread-safe). */
    harness::SnapshotRegistry &registry() { return registry_; }

    /** @return The service configuration. */
    const ServiceConfig &config() const { return config_; }

  private:
    /**
     * Warm per-(workload, config-signature) state: an Experiment
     * seeded once from the pair's snapshot; later queries on the pair
     * are memo hits. Experiment::seedFrom must precede the first
     * per-config query, which is why the granularity is per pair, not
     * per workload.
     */
    struct WarmEntry {
        Mutex mu;
        std::unique_ptr<harness::Experiment> exp SEQ_GUARDED_BY(mu)
            SEQ_PT_GUARDED_BY(mu);
    };

    /** Per-worker heartbeat the watchdog reads. */
    struct WorkerState {
        Mutex mu;
        /** Request being served (or null). */
        PendingPtr current SEQ_GUARDED_BY(mu);
        /** CancelToken::now() at dequeue. */
        double busySince SEQ_GUARDED_BY(mu) = 0.0;
        /** Stuck report already issued. */
        bool reported SEQ_GUARDED_BY(mu) = false;
    };

    ServiceConfig config_;
    harness::SnapshotRegistry registry_;
    /** Written before start() only; read-only once workers exist. */
    std::map<std::string, harness::WorkloadFactory> factories;

    BoundedQueue<PendingPtr> queue_;
    /** Serialises start()/drain(); guards the thread handles. */
    Mutex lifecycleMu;
    std::vector<std::thread> workers_ SEQ_GUARDED_BY(lifecycleMu);
    /** Sized in start() before any worker/watchdog thread exists;
     *  the vector itself is read-only while they run (each element's
     *  state is guarded by its own WorkerState::mu). */
    std::vector<std::unique_ptr<WorkerState>> workerStates;
    std::thread watchdog_ SEQ_GUARDED_BY(lifecycleMu);
    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};

    /** Watchdog shutdown handshake (CV so drain need not wait out a
     *  poll interval). */
    Mutex watchdogMu;
    CondVar watchdogCv;
    bool stopWatchdog SEQ_GUARDED_BY(watchdogMu) = false;

    /** Admitted-but-unfinished requests, for drain's cancel sweep. */
    Mutex outstandingMu;
    std::set<PendingPtr> outstanding SEQ_GUARDED_BY(outstandingMu);

    /** Warm entries, keyed workload + "\x1f" + config signature.
     *  Lock order: a WarmEntry::mu is taken after entriesMu is
     *  released and may be held across registry-slot acquisition
     *  (entry -> registry slot, never the reverse). */
    Mutex entriesMu;
    std::map<std::string, std::shared_ptr<WarmEntry>> entries
        SEQ_GUARDED_BY(entriesMu);

    struct AtomicStats {
        std::atomic<uint64_t> admitted{0};
        std::atomic<uint64_t> shedOverload{0};
        std::atomic<uint64_t> completed{0};
        std::atomic<uint64_t> deadlineMissed{0};
        std::atomic<uint64_t> cancelled{0};
        std::atomic<uint64_t> failed{0};
        std::atomic<uint64_t> coldBuilds{0};
        std::atomic<uint64_t> warmHits{0};
        std::atomic<uint64_t> stuckReports{0};
    };
    mutable AtomicStats stats_;

    void workerLoop(unsigned index);
    void watchdogLoop();

    /** Classify-and-publish one finished request. */
    void finish(const PendingPtr &p, QueryResult r);

    /**
     * Answer one query on the calling worker thread (the caller's
     * CancelScope is already installed). Throws CancelledError /
     * RecoverableError / std::exception on the classified paths.
     */
    QueryAnswer answerQuery(const QueryRequest &req, bool &cold_build);
};

} // namespace service
} // namespace seqpoint

#endif // SEQPOINT_SERVICE_QUERY_SERVICE_HH
