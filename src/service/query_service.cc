/**
 * @file
 * Query-service implementation.
 */

#include "service/query_service.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "harness/snapshot_io.hh"

namespace seqpoint {
namespace service {

PendingQuery::PendingQuery(QueryRequest r)
    : req(std::move(r)), submitSec(CancelToken::now())
{
    if (std::isfinite(req.deadlineSec))
        token_.armAfter(req.deadlineSec);
}

bool
PendingQuery::done() const
{
    MutexLock lock(mu);
    return done_;
}

QueryResult
PendingQuery::wait()
{
    MutexLock lock(mu);
    while (!done_)
        cv.wait(mu);
    return result;
}

void
PendingQuery::complete(QueryResult r)
{
    {
        MutexLock lock(mu);
        panic_if(done_, "PendingQuery: completed twice");
        result = std::move(r);
        result.latencySec = CancelToken::now() - submitSec;
        done_ = true;
    }
    cv.notify_all();
}

QueryService::QueryService(ServiceConfig cfg)
    : config_(cfg), registry_(cfg.storeDir),
      queue_(cfg.queueCapacity ? cfg.queueCapacity : 1)
{
    fatal_if(config_.workers == 0, "QueryService: zero workers");
}

QueryService::~QueryService()
{
    if (running_.load())
        drain(config_.drainTimeoutSec);
}

void
QueryService::registerWorkload(const std::string &name,
                               harness::WorkloadFactory make)
{
    panic_if(running_.load(),
             "QueryService: registerWorkload('%s') after start()",
             name.c_str());
    panic_if(!make, "QueryService: null factory for '%s'", name.c_str());
    factories[name] = std::move(make);
}

void
QueryService::start()
{
    MutexLock lock(lifecycleMu);
    panic_if(running_.load(), "QueryService: start() twice");
    panic_if(factories.empty(),
             "QueryService: start() with no registered workloads");

    workerStates.clear();
    for (unsigned i = 0; i < config_.workers; ++i)
        workerStates.push_back(std::make_unique<WorkerState>());

    running_.store(true);
    draining_.store(false);
    {
        MutexLock wd_lock(watchdogMu);
        stopWatchdog = false;
    }
    workers_.reserve(config_.workers);
    for (unsigned i = 0; i < config_.workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    watchdog_ = std::thread([this] { watchdogLoop(); });
}

PendingPtr
QueryService::submit(QueryRequest req)
{
    auto p = std::make_shared<PendingQuery>(std::move(req));

    // Admission control: refuse instead of queueing unboundedly. The
    // refusal is immediate and classified, so a client under overload
    // learns to back off instead of timing out in the dark.
    const char *refusal = nullptr;
    if (!running_.load())
        refusal = "service not running";
    else if (draining_.load())
        refusal = "service draining";

    if (!refusal) {
        {
            MutexLock lock(outstandingMu);
            outstanding.insert(p);
        }
        if (queue_.tryPush(p)) {
            stats_.admitted.fetch_add(1, std::memory_order_relaxed);
            return p;
        }
        {
            MutexLock lock(outstandingMu);
            outstanding.erase(p);
        }
        refusal = "queue full";
    }

    stats_.shedOverload.fetch_add(1, std::memory_order_relaxed);
    QueryResult shed;
    shed.status = Status::error(
        ErrorCode::Overloaded,
        csprintf("%s: shed '%s'", refusal, p->request().workload.c_str()));
    p->complete(std::move(shed));
    return p;
}

QueryResult
QueryService::query(QueryRequest req)
{
    return submit(std::move(req))->wait();
}

QueryAnswer
QueryService::answerQuery(const QueryRequest &req, bool &cold_build)
{
    auto fit = factories.find(req.workload);
    if (fit == factories.end()) {
        throw RecoverableError(Status::error(
            ErrorCode::CellFailed,
            csprintf("unknown workload '%s'", req.workload.c_str())));
    }
    const harness::WorkloadFactory &make = fit->second;

    std::string entry_key =
        req.workload + "\x1f" + req.config.signature();
    std::shared_ptr<WarmEntry> entry;
    {
        MutexLock lock(entriesMu);
        std::shared_ptr<WarmEntry> &slot = entries[entry_key];
        if (!slot)
            slot = std::make_shared<WarmEntry>();
        entry = slot;
    }

    // Same-pair requests serialise on the entry (the second of two
    // concurrent identical queries piggybacks here and finds warm
    // state); different pairs proceed independently. Lock order is
    // entry -> registry slot, never the reverse.
    MutexLock entry_lock(entry->mu);
    cancelCheckpoint("service.entry");

    if (!entry->exp) {
        // Cold for this process: acquire the snapshot (single-flight
        // in the registry; disk hit, or a build whose inner loops
        // observe this request's cancel token) and stand up the warm
        // Experiment seeded from it. A thrown cancellation leaves
        // both the registry slot and this entry unset and reusable.
        harness::SnapshotKey key;
        {
            harness::Workload identity = make();
            key = harness::snapshotKeyFor(
                identity, harness::Experiment::defaultOptions(),
                req.config);
        }
        bool built = false;
        auto snap = registry_.acquire(key, [&] {
            built = true;
            harness::Experiment exp(make());
            exp.setProfileThreads(std::max(1u, config_.profileThreads));
            return exp.snapshot(req.config);
        });
        cold_build = built;

        auto exp = std::make_unique<harness::Experiment>(make());
        exp->setProfileThreads(std::max(1u, config_.profileThreads));
        exp->seedFrom(snap);
        entry->exp = std::move(exp);
    }

    cancelCheckpoint("service.answer");
    harness::Experiment &exp = *entry->exp;
    QueryAnswer ans;
    ans.selection = exp.buildSelection(req.selector, req.config);
    ans.projectedSec =
        exp.projectedTrainSec(ans.selection, req.config);
    ans.actualSec = exp.actualTrainSec(req.config);
    ans.errorPct = ans.actualSec > 0.0
        ? std::abs(ans.projectedSec - ans.actualSec) / ans.actualSec *
            100.0
        : 0.0;
    return ans;
}

void
QueryService::finish(const PendingPtr &p, QueryResult r)
{
    if (r.status.ok()) {
        stats_.completed.fetch_add(1, std::memory_order_relaxed);
        if (r.coldBuild)
            stats_.coldBuilds.fetch_add(1, std::memory_order_relaxed);
        else
            stats_.warmHits.fetch_add(1, std::memory_order_relaxed);
    } else if (r.status.code() == ErrorCode::Timeout) {
        stats_.deadlineMissed.fetch_add(1, std::memory_order_relaxed);
    } else if (r.status.code() == ErrorCode::Cancelled) {
        stats_.cancelled.fetch_add(1, std::memory_order_relaxed);
    } else {
        stats_.failed.fetch_add(1, std::memory_order_relaxed);
    }
    {
        MutexLock lock(outstandingMu);
        outstanding.erase(p);
    }
    p->complete(std::move(r));
}

void
QueryService::workerLoop(unsigned index)
{
    WorkerState &ws = *workerStates[index];
    while (auto item = queue_.pop()) {
        PendingPtr p = std::move(*item);
        {
            MutexLock lock(ws.mu);
            ws.current = p;
            ws.busySince = CancelToken::now();
            ws.reported = false;
        }

        CancelScope scope(&p->token());
        QueryResult r;
        try {
            // A request whose deadline expired while queued is shed
            // here, before any expensive work.
            p->token().checkpoint("service.dequeue");
            r.answer = answerQuery(p->request(), r.coldBuild);
        } catch (const CancelledError &e) {
            r.status = e.status(); // Timeout or Cancelled, classified
        } catch (const RecoverableError &e) {
            r.status = e.status();
        } catch (const std::exception &e) {
            // Catch-all containment: an unexpected failure answers
            // this request with a classified error; it never takes
            // down the worker (or the service). Invariant violations
            // (panic/fatal) still abort, as they must.
            r.status = Status::error(ErrorCode::CellFailed, e.what());
        }

        {
            MutexLock lock(ws.mu);
            ws.current = nullptr;
        }
        finish(p, std::move(r));
    }
}

void
QueryService::watchdogLoop()
{
    for (;;) {
        {
            MutexLock lock(watchdogMu);
            const auto deadline = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        std::max(0.01, config_.watchdogPollSec)));
            while (!stopWatchdog) {
                if (watchdogCv.waitUntil(watchdogMu, deadline) ==
                    std::cv_status::timeout)
                    break;
            }
            if (stopWatchdog)
                return;
        }
        double now = CancelToken::now();
        for (std::size_t i = 0; i < workerStates.size(); ++i) {
            WorkerState &ws = *workerStates[i];
            MutexLock lock(ws.mu);
            if (!ws.current || ws.reported)
                continue;
            double busy = now - ws.busySince;
            if (busy < config_.watchdogStuckSec)
                continue;
            ws.reported = true;
            stats_.stuckReports.fetch_add(1, std::memory_order_relaxed);
            warn("QueryService: worker %zu stuck %.1fs on workload "
                 "'%s' (config '%s')",
                 i, busy, ws.current->request().workload.c_str(),
                 ws.current->request().config.name.c_str());
        }
    }
}

void
QueryService::drain(double timeout_sec)
{
    MutexLock lock(lifecycleMu);
    if (!running_.load())
        return;

    // Phase 1: stop admitting. Every later submit sheds Overloaded;
    // the queue refuses pushes but keeps serving what it holds.
    draining_.store(true);
    queue_.close();

    // Phase 2: the polite window -- queued and in-flight requests may
    // finish on their own until the budget runs out.
    double deadline = CancelToken::now() + std::max(0.0, timeout_sec);
    for (;;) {
        {
            MutexLock out_lock(outstandingMu);
            if (outstanding.empty())
                break;
        }
        if (CancelToken::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    // Phase 3: cancel the stragglers. Each unwinds at its next
    // checkpoint and answers Cancelled; the workers then observe the
    // closed, drained queue and exit.
    {
        MutexLock out_lock(outstandingMu);
        for (const PendingPtr &p : outstanding)
            p->cancel();
    }
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();

    {
        MutexLock wd_lock(watchdogMu);
        stopWatchdog = true;
    }
    watchdogCv.notify_all();
    if (watchdog_.joinable())
        watchdog_.join();

    // Phase 4: persist what the store missed (e.g. a save that a
    // fault storm dropped at build time).
    std::size_t flushed = registry_.flushToStore();
    if (flushed) {
        warn("QueryService: drain persisted %zu snapshot(s) the "
             "store was missing", flushed);
    }
    running_.store(false);
}

ServiceStats
QueryService::stats() const
{
    ServiceStats out;
    out.admitted = stats_.admitted.load(std::memory_order_relaxed);
    out.shedOverload =
        stats_.shedOverload.load(std::memory_order_relaxed);
    out.completed = stats_.completed.load(std::memory_order_relaxed);
    out.deadlineMissed =
        stats_.deadlineMissed.load(std::memory_order_relaxed);
    out.cancelled = stats_.cancelled.load(std::memory_order_relaxed);
    out.failed = stats_.failed.load(std::memory_order_relaxed);
    out.coldBuilds = stats_.coldBuilds.load(std::memory_order_relaxed);
    out.warmHits = stats_.warmHits.load(std::memory_order_relaxed);
    out.stuckReports =
        stats_.stuckReports.load(std::memory_order_relaxed);
    return out;
}

} // namespace service
} // namespace seqpoint
