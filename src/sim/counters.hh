/**
 * @file
 * Performance counters: the statistics the paper's profiling setup
 * (Radeon Compute Profiler) collects per kernel -- VALU instructions,
 * load/store traffic, cache hits, DRAM traffic and write stalls.
 */

#ifndef SEQPOINT_SIM_COUNTERS_HH
#define SEQPOINT_SIM_COUNTERS_HH

#include <cstdint>
#include <string>

#include "common/bytestream.hh"

namespace seqpoint {
namespace sim {

/**
 * Additive performance-counter bundle.
 *
 * Counter values are doubles: the simulator computes expected values
 * analytically, not by instrumenting individual instructions.
 */
struct PerfCounters {
    double kernelsLaunched = 0; ///< Kernel launches.
    double valuInsts = 0;       ///< Vector ALU instructions.
    double saluInsts = 0;       ///< Scalar ALU instructions.
    double bytesLoaded = 0;     ///< Bytes requested by loads.
    double bytesStored = 0;     ///< Bytes written by stores.
    double l1HitBytes = 0;      ///< Load bytes served from L1.
    double l2HitBytes = 0;      ///< Bytes served from L2.
    double dramBytes = 0;       ///< Bytes served from DRAM.
    double writeStallSec = 0;   ///< Time stalled on write drains.
    double busySec = 0;         ///< Kernel busy time (excl. launch).
    double launchSec = 0;       ///< Launch/dispatch overhead time.

    /**
     * Bit-exact field-wise equality (bench/test identity guards; no
     * tolerance -- the engines under comparison must agree exactly).
     */
    bool operator==(const PerfCounters &other) const = default;

    /** Accumulate another bundle into this one. */
    PerfCounters &operator+=(const PerfCounters &other);

    /** @return Sum of two bundles. */
    friend PerfCounters operator+(PerfCounters a, const PerfCounters &b)
    {
        a += b;
        return a;
    }

    /** Scale all counters (used for weighted projections). */
    PerfCounters &operator*=(double factor);

    /** @return Total wall time attributed to the kernels. */
    double totalSec() const { return busySec + launchSec; }

    /** @return Human-readable one-line summary. */
    std::string summary() const;
};

/**
 * Serialize a counter bundle (snapshot store). Every field is written
 * as its IEEE-754 bit pattern, so decode is bit-identical.
 */
void encodeCounters(ByteWriter &w, const PerfCounters &c);

/** Decode a counter bundle written by encodeCounters(). */
PerfCounters decodeCounters(ByteReader &r);

/**
 * Serialize a counter bundle in the packed form: every field goes
 * through ByteWriter::f64Packed() against the corresponding field of
 * `prev` (an adjacent bundle in the containing section, or a
 * default-constructed one). Counter values are mostly exact integers
 * close to their neighbours', so the packed form is a fraction of
 * the raw 88 bytes while remaining bit-exact.
 *
 * @param w Destination stream.
 * @param c Bundle to serialize.
 * @param prev Delta base (pass the previous bundle of the section).
 */
void encodeCountersPacked(ByteWriter &w, const PerfCounters &c,
                          const PerfCounters &prev);

/**
 * Decode a bundle written by encodeCountersPacked() with the same
 * `prev`.
 */
PerfCounters decodeCountersPacked(ByteReader &r,
                                  const PerfCounters &prev);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_COUNTERS_HH
