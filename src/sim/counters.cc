/**
 * @file
 * Performance counter implementation.
 */

#include "sim/counters.hh"

#include "common/strutil.hh"

namespace seqpoint {
namespace sim {

PerfCounters &
PerfCounters::operator+=(const PerfCounters &other)
{
    kernelsLaunched += other.kernelsLaunched;
    valuInsts += other.valuInsts;
    saluInsts += other.saluInsts;
    bytesLoaded += other.bytesLoaded;
    bytesStored += other.bytesStored;
    l1HitBytes += other.l1HitBytes;
    l2HitBytes += other.l2HitBytes;
    dramBytes += other.dramBytes;
    writeStallSec += other.writeStallSec;
    busySec += other.busySec;
    launchSec += other.launchSec;
    return *this;
}

PerfCounters &
PerfCounters::operator*=(double factor)
{
    kernelsLaunched *= factor;
    valuInsts *= factor;
    saluInsts *= factor;
    bytesLoaded *= factor;
    bytesStored *= factor;
    l1HitBytes *= factor;
    l2HitBytes *= factor;
    dramBytes *= factor;
    writeStallSec *= factor;
    busySec *= factor;
    launchSec *= factor;
    return *this;
}

std::string
PerfCounters::summary() const
{
    return csprintf(
        "kernels=%.0f valu=%.3g loads=%.3gB stores=%.3gB dram=%.3gB "
        "wr_stall=%.3gs busy=%.3gs",
        kernelsLaunched, valuInsts, bytesLoaded, bytesStored, dramBytes,
        writeStallSec, busySec);
}

void
encodeCounters(ByteWriter &w, const PerfCounters &c)
{
    w.f64(c.kernelsLaunched);
    w.f64(c.valuInsts);
    w.f64(c.saluInsts);
    w.f64(c.bytesLoaded);
    w.f64(c.bytesStored);
    w.f64(c.l1HitBytes);
    w.f64(c.l2HitBytes);
    w.f64(c.dramBytes);
    w.f64(c.writeStallSec);
    w.f64(c.busySec);
    w.f64(c.launchSec);
}

PerfCounters
decodeCounters(ByteReader &r)
{
    PerfCounters c;
    c.kernelsLaunched = r.f64();
    c.valuInsts = r.f64();
    c.saluInsts = r.f64();
    c.bytesLoaded = r.f64();
    c.bytesStored = r.f64();
    c.l1HitBytes = r.f64();
    c.l2HitBytes = r.f64();
    c.dramBytes = r.f64();
    c.writeStallSec = r.f64();
    c.busySec = r.f64();
    c.launchSec = r.f64();
    return c;
}

void
encodeCountersPacked(ByteWriter &w, const PerfCounters &c,
                     const PerfCounters &prev)
{
    w.f64Packed(c.kernelsLaunched, prev.kernelsLaunched);
    w.f64Packed(c.valuInsts, prev.valuInsts);
    w.f64Packed(c.saluInsts, prev.saluInsts);
    w.f64Packed(c.bytesLoaded, prev.bytesLoaded);
    w.f64Packed(c.bytesStored, prev.bytesStored);
    w.f64Packed(c.l1HitBytes, prev.l1HitBytes);
    w.f64Packed(c.l2HitBytes, prev.l2HitBytes);
    w.f64Packed(c.dramBytes, prev.dramBytes);
    w.f64Packed(c.writeStallSec, prev.writeStallSec);
    w.f64Packed(c.busySec, prev.busySec);
    w.f64Packed(c.launchSec, prev.launchSec);
}

PerfCounters
decodeCountersPacked(ByteReader &r, const PerfCounters &prev)
{
    PerfCounters c;
    c.kernelsLaunched = r.f64Packed(prev.kernelsLaunched);
    c.valuInsts = r.f64Packed(prev.valuInsts);
    c.saluInsts = r.f64Packed(prev.saluInsts);
    c.bytesLoaded = r.f64Packed(prev.bytesLoaded);
    c.bytesStored = r.f64Packed(prev.bytesStored);
    c.l1HitBytes = r.f64Packed(prev.l1HitBytes);
    c.l2HitBytes = r.f64Packed(prev.l2HitBytes);
    c.dramBytes = r.f64Packed(prev.dramBytes);
    c.writeStallSec = r.f64Packed(prev.writeStallSec);
    c.busySec = r.f64Packed(prev.busySec);
    c.launchSec = r.f64Packed(prev.launchSec);
    return c;
}

} // namespace sim
} // namespace seqpoint
