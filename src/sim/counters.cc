/**
 * @file
 * Performance counter implementation.
 */

#include "sim/counters.hh"

#include "common/strutil.hh"

namespace seqpoint {
namespace sim {

PerfCounters &
PerfCounters::operator+=(const PerfCounters &other)
{
    kernelsLaunched += other.kernelsLaunched;
    valuInsts += other.valuInsts;
    saluInsts += other.saluInsts;
    bytesLoaded += other.bytesLoaded;
    bytesStored += other.bytesStored;
    l1HitBytes += other.l1HitBytes;
    l2HitBytes += other.l2HitBytes;
    dramBytes += other.dramBytes;
    writeStallSec += other.writeStallSec;
    busySec += other.busySec;
    launchSec += other.launchSec;
    return *this;
}

PerfCounters &
PerfCounters::operator*=(double factor)
{
    kernelsLaunched *= factor;
    valuInsts *= factor;
    saluInsts *= factor;
    bytesLoaded *= factor;
    bytesStored *= factor;
    l1HitBytes *= factor;
    l2HitBytes *= factor;
    dramBytes *= factor;
    writeStallSec *= factor;
    busySec *= factor;
    launchSec *= factor;
    return *this;
}

std::string
PerfCounters::summary() const
{
    return csprintf(
        "kernels=%.0f valu=%.3g loads=%.3gB stores=%.3gB dram=%.3gB "
        "wr_stall=%.3gs busy=%.3gs",
        kernelsLaunched, valuInsts, bytesLoaded, bytesStored, dramBytes,
        writeStallSec, busySec);
}

} // namespace sim
} // namespace seqpoint
