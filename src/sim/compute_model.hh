/**
 * @file
 * Compute-side timing: VALU instruction counts and execution time for
 * a kernel's arithmetic given the device's lanes, clock and the
 * kernel's achievable occupancy.
 */

#ifndef SEQPOINT_SIM_COMPUTE_MODEL_HH
#define SEQPOINT_SIM_COMPUTE_MODEL_HH

#include "sim/gpu_config.hh"
#include "sim/kernel.hh"
#include "sim/occupancy.hh"

namespace seqpoint {
namespace sim {

/** Compute-side estimate for one kernel. */
struct ComputeEstimate {
    double timeSec = 0.0;     ///< Pure-compute execution time.
    double valuInsts = 0.0;   ///< Vector ALU instructions issued.
    double saluInsts = 0.0;   ///< Scalar ALU instructions issued.
    double efficiency = 0.0;  ///< Achieved fraction of peak FLOPs.
};

/**
 * Peak-fraction a well-tuned kernel of this class reaches on dense
 * arithmetic, before occupancy effects.
 *
 * @param klass Kernel class.
 * @return Efficiency in (0, 1].
 */
double classComputeEfficiency(KernelClass klass);

/**
 * Estimate compute time and instruction counts.
 *
 * VALU instructions: one FMA per lane per instruction; non-FMA classes
 * issue roughly one op per FLOP. Overhead instructions (address math,
 * control) are folded in with a per-class multiplier.
 *
 * @param desc Kernel descriptor.
 * @param occ Occupancy previously computed for this launch.
 * @param cfg Device configuration.
 */
ComputeEstimate estimateCompute(const KernelDesc &desc,
                                const Occupancy &occ,
                                const GpuConfig &cfg);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_COMPUTE_MODEL_HH
