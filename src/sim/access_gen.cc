/**
 * @file
 * Synthetic address-stream generators.
 */

#include "sim/access_gen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace seqpoint {
namespace sim {

void
genStreaming(uint64_t bytes, unsigned stride, const AccessSink &sink)
{
    panic_if(stride < 4, "genStreaming: stride below element size");
    for (uint64_t addr = 0; addr < bytes; addr += stride)
        sink(addr, false);
}

void
genBlockedGemm(uint64_t m, uint64_t n, uint64_t k, unsigned tile,
               const AccessSink &sink)
{
    panic_if(tile == 0, "genBlockedGemm: zero tile");
    constexpr uint64_t elem = 4;
    // Address map: A at 0, B after A, C after B.
    uint64_t base_a = 0;
    uint64_t base_b = m * k * elem;
    uint64_t base_c = base_b + k * n * elem;

    uint64_t mt = (m + tile - 1) / tile;
    uint64_t nt = (n + tile - 1) / tile;

    for (uint64_t bi = 0; bi < mt; ++bi) {
        for (uint64_t bj = 0; bj < nt; ++bj) {
            uint64_t i_end = std::min<uint64_t>((bi + 1) * tile, m);
            uint64_t j_end = std::min<uint64_t>((bj + 1) * tile, n);
            // Walk the K panels. Sample at line granularity (16
            // elements) to keep trace volume manageable: a full
            // element-level trace only scales the counts.
            for (uint64_t kk = 0; kk < k; kk += 16) {
                for (uint64_t i = bi * tile; i < i_end; i += 4)
                    sink(base_a + (i * k + kk) * elem, false);
                for (uint64_t j = bj * tile; j < j_end; j += 4)
                    sink(base_b + (kk * n + j) * elem, false);
            }
            for (uint64_t i = bi * tile; i < i_end; i += 4)
                for (uint64_t j = bj * tile; j < j_end; j += 16)
                    sink(base_c + (i * n + j) * elem, true);
        }
    }
}

void
genHotCold(uint64_t accesses, uint64_t hot_bytes, uint64_t cold_bytes,
           double hot_frac, Rng &rng, const AccessSink &sink)
{
    panic_if(hot_frac < 0.0 || hot_frac > 1.0,
             "genHotCold: hot_frac out of [0,1]");
    panic_if(hot_bytes < 64 || cold_bytes < 64,
             "genHotCold: regions too small");
    for (uint64_t i = 0; i < accesses; ++i) {
        bool hot = rng.uniformDouble() < hot_frac;
        uint64_t region = hot ? hot_bytes : cold_bytes;
        uint64_t offset = hot ? 0 : hot_bytes;
        uint64_t addr = offset + static_cast<uint64_t>(
            rng.uniformInt(0, static_cast<int64_t>(region / 64 - 1))) * 64;
        sink(addr, false);
    }
}

double
measureHitRate(CacheSim &cache,
               const std::function<void(const AccessSink &)> &gen)
{
    cache.reset();
    gen([&cache](uint64_t addr, bool write) { cache.access(addr, write); });
    return cache.stats().hitRate();
}

double
replayHitRate(CacheSim &cache, const AccessTrace &trace)
{
    cache.reset();
    const std::size_t n = trace.size();
    for (std::size_t i = 0; i < n; ++i)
        cache.access(trace.addr(i), trace.isWrite(i));
    return cache.stats().hitRate();
}

} // namespace sim
} // namespace seqpoint
