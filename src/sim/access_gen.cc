/**
 * @file
 * Synthetic address-stream generators.
 */

#include "sim/access_gen.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/cache_model.hh"

namespace seqpoint {
namespace sim {

void
SegmentList::addRun(const SegDesc &seg)
{
    panic_if(seg.count == 0, "SegmentList: empty run");
    segs.push_back(seg);
    total += seg.count;
}

void
SegmentList::add(uint64_t addr, bool write)
{
    ++total;
    if (!segs.empty()) {
        SegDesc &last = segs.back();
        if (last.write == write) {
            if (last.count == 1) {
                // The second access fixes the run's stride.
                last.stride = static_cast<int64_t>(addr) -
                    static_cast<int64_t>(last.firstAddr);
                last.count = 2;
                return;
            }
            if (addr == last.addr(last.count)) {
                ++last.count;
                return;
            }
        }
    }
    segs.push_back(SegDesc{addr, 0, 1, write});
}

void
SegmentList::clear()
{
    segs.clear();
    total = 0;
}

AccessTrace
SegmentList::materialize() const
{
    AccessTrace trace;
    trace.reserve(static_cast<std::size_t>(total));
    replay(trace.sink());
    return trace;
}

void
SegmentList::replay(const AccessSink &sink) const
{
    for (const SegDesc &seg : segs)
        for (uint64_t i = 0; i < seg.count; ++i)
            sink(seg.addr(i), seg.write);
}

SegmentList
detectSegments(const AccessTrace &trace)
{
    SegmentList list;
    for (std::size_t i = 0; i < trace.size(); ++i)
        list.add(trace.addr(i), trace.isWrite(i));
    return list;
}

SegmentList
genStreamingSegments(uint64_t bytes, unsigned stride)
{
    panic_if(stride < 4, "genStreaming: stride below element size");
    SegmentList list;
    uint64_t count = (bytes + stride - 1) / stride;
    if (count > 0)
        list.addRun(0, stride, count, false);
    return list;
}

SegmentList
genBlockedGemmSegments(uint64_t m, uint64_t n, uint64_t k, unsigned tile)
{
    panic_if(tile == 0, "genBlockedGemm: zero tile");
    constexpr uint64_t elem = 4;
    constexpr uint64_t kblock = 64; ///< K elements per inner block.
    constexpr int64_t step = elem;  ///< Element-granular walks.
    // Address map: A at 0, B after A, C after B.
    uint64_t base_a = 0;
    uint64_t base_b = m * k * elem;
    uint64_t base_c = base_b + k * n * elem;

    uint64_t mt = (m + tile - 1) / tile;
    uint64_t nt = (n + tile - 1) / tile;

    SegmentList list;
    for (uint64_t bi = 0; bi < mt; ++bi) {
        for (uint64_t bj = 0; bj < nt; ++bj) {
            uint64_t i_end = std::min<uint64_t>((bi + 1) * tile, m);
            uint64_t j_end = std::min<uint64_t>((bj + 1) * tile, n);
            uint64_t j_cnt = j_end - bj * tile;
            // Walk the K dimension in blocks: re-read the A panel
            // row by row, stream the B panel rows (every 4th row,
            // modelling the unrolled k loop). The walks themselves
            // are element-granular -- one descriptor per panel row,
            // whatever the element count.
            for (uint64_t kk0 = 0; kk0 < k; kk0 += kblock) {
                uint64_t kb_end = std::min<uint64_t>(kk0 + kblock, k);
                for (uint64_t i = bi * tile; i < i_end; ++i)
                    list.addRun(base_a + (i * k + kk0) * elem, step,
                                kb_end - kk0, false);
                for (uint64_t kk = kk0; kk < kb_end; kk += 4)
                    list.addRun(base_b + (kk * n + bj * tile) * elem,
                                step, j_cnt, false);
            }
            for (uint64_t i = bi * tile; i < i_end; ++i)
                list.addRun(base_c + (i * n + bj * tile) * elem, step,
                            j_cnt, true);
        }
    }
    return list;
}

SegmentList
genHotColdSegments(uint64_t accesses, uint64_t hot_bytes,
                   uint64_t cold_bytes, double hot_frac, Rng &rng)
{
    panic_if(hot_frac < 0.0 || hot_frac > 1.0,
             "genHotCold: hot_frac out of [0,1]");
    panic_if(hot_bytes < 64 || cold_bytes < 64,
             "genHotCold: regions too small");
    SegmentList list;
    for (uint64_t i = 0; i < accesses; ++i) {
        bool hot = rng.uniformDouble() < hot_frac;
        uint64_t region = hot ? hot_bytes : cold_bytes;
        uint64_t offset = hot ? 0 : hot_bytes;
        uint64_t addr = offset + static_cast<uint64_t>(
            rng.uniformInt(0, static_cast<int64_t>(region / 64 - 1))) * 64;
        list.add(addr, false);
    }
    return list;
}

void
genStreaming(uint64_t bytes, unsigned stride, const AccessSink &sink)
{
    genStreamingSegments(bytes, stride).replay(sink);
}

void
genBlockedGemm(uint64_t m, uint64_t n, uint64_t k, unsigned tile,
               const AccessSink &sink)
{
    genBlockedGemmSegments(m, n, k, tile).replay(sink);
}

void
genHotCold(uint64_t accesses, uint64_t hot_bytes, uint64_t cold_bytes,
           double hot_frac, Rng &rng, const AccessSink &sink)
{
    genHotColdSegments(accesses, hot_bytes, cold_bytes, hot_frac, rng)
        .replay(sink);
}

double
measureHitRate(CacheSim &cache,
               const std::function<void(const AccessSink &)> &gen)
{
    SegmentList list;
    gen(list.sink());
    return measureHitRateSegments(cache, list);
}

double
replayHitRate(CacheSim &cache, const AccessTrace &trace)
{
    return replayStatsFast(cache, trace).hitRate();
}

CacheStats
replayStatsFast(CacheSim &cache, const AccessTrace &trace)
{
    cache.reset();
    SegmentList segs = detectSegments(trace);
    // The piecewise engine pays per segment; it only wins when the
    // decomposition actually compresses. Unstructured traces fold
    // into pair runs under the greedy decomposer (the second access
    // always fixes a stride), i.e. exactly 2 accesses per segment,
    // so require a strictly better ratio before leaving the batched
    // scan -- statistics and state are identical either way.
    if (trace.size() >= 3 * segs.size())
        replaySegmentsResume(cache, segs);
    else
        cache.accessBlock(trace, 0, trace.size());
    return cache.stats();
}

} // namespace sim
} // namespace seqpoint
