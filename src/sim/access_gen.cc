/**
 * @file
 * Synthetic address-stream generators.
 */

#include "sim/access_gen.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/cache_model.hh"

namespace seqpoint {
namespace sim {

void
genStreaming(uint64_t bytes, unsigned stride, const AccessSink &sink)
{
    panic_if(stride < 4, "genStreaming: stride below element size");
    for (uint64_t addr = 0; addr < bytes; addr += stride)
        sink(addr, false);
}

void
genBlockedGemm(uint64_t m, uint64_t n, uint64_t k, unsigned tile,
               const AccessSink &sink)
{
    panic_if(tile == 0, "genBlockedGemm: zero tile");
    constexpr uint64_t elem = 4;
    // Address map: A at 0, B after A, C after B.
    uint64_t base_a = 0;
    uint64_t base_b = m * k * elem;
    uint64_t base_c = base_b + k * n * elem;

    uint64_t mt = (m + tile - 1) / tile;
    uint64_t nt = (n + tile - 1) / tile;

    for (uint64_t bi = 0; bi < mt; ++bi) {
        for (uint64_t bj = 0; bj < nt; ++bj) {
            uint64_t i_end = std::min<uint64_t>((bi + 1) * tile, m);
            uint64_t j_end = std::min<uint64_t>((bj + 1) * tile, n);
            // Walk the K panels. Sample at line granularity (16
            // elements) to keep trace volume manageable: a full
            // element-level trace only scales the counts.
            for (uint64_t kk = 0; kk < k; kk += 16) {
                for (uint64_t i = bi * tile; i < i_end; i += 4)
                    sink(base_a + (i * k + kk) * elem, false);
                for (uint64_t j = bj * tile; j < j_end; j += 4)
                    sink(base_b + (kk * n + j) * elem, false);
            }
            for (uint64_t i = bi * tile; i < i_end; i += 4)
                for (uint64_t j = bj * tile; j < j_end; j += 16)
                    sink(base_c + (i * n + j) * elem, true);
        }
    }
}

void
genHotCold(uint64_t accesses, uint64_t hot_bytes, uint64_t cold_bytes,
           double hot_frac, Rng &rng, const AccessSink &sink)
{
    panic_if(hot_frac < 0.0 || hot_frac > 1.0,
             "genHotCold: hot_frac out of [0,1]");
    panic_if(hot_bytes < 64 || cold_bytes < 64,
             "genHotCold: regions too small");
    for (uint64_t i = 0; i < accesses; ++i) {
        bool hot = rng.uniformDouble() < hot_frac;
        uint64_t region = hot ? hot_bytes : cold_bytes;
        uint64_t offset = hot ? 0 : hot_bytes;
        uint64_t addr = offset + static_cast<uint64_t>(
            rng.uniformInt(0, static_cast<int64_t>(region / 64 - 1))) * 64;
        sink(addr, false);
    }
}

double
measureHitRate(CacheSim &cache,
               const std::function<void(const AccessSink &)> &gen)
{
    cache.reset();
    gen([&cache](uint64_t addr, bool write) { cache.access(addr, write); });
    return cache.stats().hitRate();
}

double
replayHitRate(CacheSim &cache, const AccessTrace &trace)
{
    cache.reset();
    cache.accessBlock(trace, 0, trace.size());
    return cache.stats().hitRate();
}

StrideSegment
detectStrideSegment(const AccessTrace &trace)
{
    StrideSegment seg;
    const std::size_t n = trace.size();
    if (n < 2)
        return seg;

    uint64_t first = trace.addr(0);
    if (trace.addr(1) <= first)
        return seg;
    uint64_t stride = trace.addr(1) - first;
    bool write = trace.isWrite(0);
    if (trace.isWrite(1) != write)
        return seg;

    for (std::size_t i = 2; i < n; ++i) {
        if (trace.addr(i) != first + i * stride ||
            trace.isWrite(i) != write)
            return seg;
    }

    seg.uniform = true;
    seg.firstAddr = first;
    seg.stride = stride;
    seg.count = n;
    seg.write = write;
    return seg;
}

CacheStats
replayStatsFast(CacheSim &cache, const AccessTrace &trace)
{
    cache.reset();
    StrideSegment seg = detectStrideSegment(trace);
    if (seg.uniform &&
        analyticStreamApplicable(seg, cache.lineSize())) {
        return analyticStreamStats(seg, cache.numSets(),
                                   cache.assocWays(), cache.lineSize());
    }
    cache.accessBlock(trace, 0, trace.size());
    return cache.stats();
}

} // namespace sim
} // namespace seqpoint
