/**
 * @file
 * Whole-kernel timing: combines the compute model, analytical cache
 * model and DRAM model into a roofline-with-overheads estimate plus a
 * full counter bundle.
 */

#ifndef SEQPOINT_SIM_TIMING_MODEL_HH
#define SEQPOINT_SIM_TIMING_MODEL_HH

#include "sim/counters.hh"
#include "sim/gpu_config.hh"
#include "sim/kernel.hh"

namespace seqpoint {
namespace sim {

/** Result of timing a single kernel launch. */
struct KernelTiming {
    double timeSec = 0.0;       ///< Wall time incl. launch overhead.
    double computeSec = 0.0;    ///< Pure compute component.
    double memorySec = 0.0;     ///< Memory-service component.
    bool memoryBound = false;   ///< True when memory dominates.
    PerfCounters counters;      ///< Counters for this launch.
};

/**
 * Time a kernel on a device.
 *
 * Execution time is launch overhead plus the maximum of the compute
 * time and the hierarchical memory service time (L1/L2/DRAM at their
 * respective bandwidths), plus any non-overlappable write stall.
 *
 * @param desc Kernel descriptor.
 * @param cfg Device configuration.
 */
KernelTiming timeKernel(const KernelDesc &desc, const GpuConfig &cfg);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_TIMING_MODEL_HH
