/**
 * @file
 * Analytical cache model implementation.
 */

#include "sim/cache_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace seqpoint {
namespace sim {

double
capacityHitFraction(double reuse_max, double working_set, double capacity,
                    double p)
{
    panic_if(reuse_max < 0.0 || reuse_max > 1.0,
             "capacityHitFraction: reuse_max out of [0,1]: %g", reuse_max);
    if (capacity <= 0.0 || reuse_max <= 0.0)
        return 0.0;
    if (working_set <= capacity)
        return reuse_max;
    return reuse_max * std::pow(capacity / working_set, p);
}

MemoryBreakdown
evalMemoryBreakdown(const KernelDesc &desc, const GpuConfig &cfg)
{
    MemoryBreakdown mb;

    // --- Loads ---------------------------------------------------
    // L1: per-CU capacity versus the per-CU working set.
    double l1_cap = static_cast<double>(cfg.l1SizeBytes);
    double h1 = capacityHitFraction(desc.reuseL1, desc.workingSetL1,
                                    l1_cap);

    // L2: chip-wide capacity versus the full working set.
    double l2_cap = static_cast<double>(cfg.l2SizeBytes);
    double h2 = capacityHitFraction(desc.reuseL2, desc.workingSetL2,
                                    l2_cap);

    double loads = desc.bytesIn;
    double l1_load_bytes = loads * h1;
    double l2_load_bytes = (loads - l1_load_bytes) * h2;
    double dram_load_bytes = loads - l1_load_bytes - l2_load_bytes;

    // --- Stores ---------------------------------------------------
    // Streaming stores bypass L1; L2 write coalescing captures a
    // fraction of them while the output tile fits.
    double store_h2 = capacityHitFraction(0.5 * desc.reuseL2,
        desc.workingSetL2, l2_cap);
    double stores = desc.bytesOut;
    double l2_store_bytes = stores * store_h2;
    double dram_store_bytes = stores - l2_store_bytes;

    mb.l1Bytes = l1_load_bytes;
    mb.l2Bytes = l2_load_bytes + l2_store_bytes;
    mb.dramBytes = dram_load_bytes + dram_store_bytes;
    mb.l1HitRate = loads > 0.0 ? h1 : 0.0;
    mb.l2HitRate = h2;
    return mb;
}

} // namespace sim
} // namespace seqpoint
