/**
 * @file
 * Analytical cache model implementation.
 */

#include "sim/cache_model.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace seqpoint {
namespace sim {

double
capacityHitFraction(double reuse_max, double working_set, double capacity,
                    double p)
{
    panic_if(reuse_max < 0.0 || reuse_max > 1.0,
             "capacityHitFraction: reuse_max out of [0,1]: %g", reuse_max);
    if (capacity <= 0.0 || reuse_max <= 0.0)
        return 0.0;
    if (working_set <= capacity)
        return reuse_max;
    return reuse_max * std::pow(capacity / working_set, p);
}

MemoryBreakdown
evalMemoryBreakdown(const KernelDesc &desc, const GpuConfig &cfg)
{
    MemoryBreakdown mb;

    // --- Loads ---------------------------------------------------
    // L1: per-CU capacity versus the per-CU working set.
    double l1_cap = static_cast<double>(cfg.l1SizeBytes);
    double h1 = capacityHitFraction(desc.reuseL1, desc.workingSetL1,
                                    l1_cap);

    // L2: chip-wide capacity versus the full working set.
    double l2_cap = static_cast<double>(cfg.l2SizeBytes);
    double h2 = capacityHitFraction(desc.reuseL2, desc.workingSetL2,
                                    l2_cap);

    double loads = desc.bytesIn;
    double l1_load_bytes = loads * h1;
    double l2_load_bytes = (loads - l1_load_bytes) * h2;
    double dram_load_bytes = loads - l1_load_bytes - l2_load_bytes;

    // --- Stores ---------------------------------------------------
    // Streaming stores bypass L1; L2 write coalescing captures a
    // fraction of them while the output tile fits.
    double store_h2 = capacityHitFraction(0.5 * desc.reuseL2,
        desc.workingSetL2, l2_cap);
    double stores = desc.bytesOut;
    double l2_store_bytes = stores * store_h2;
    double dram_store_bytes = stores - l2_store_bytes;

    mb.l1Bytes = l1_load_bytes;
    mb.l2Bytes = l2_load_bytes + l2_store_bytes;
    mb.dramBytes = dram_load_bytes + dram_store_bytes;
    mb.l1HitRate = loads > 0.0 ? h1 : 0.0;
    mb.l2HitRate = h2;
    return mb;
}

bool
analyticStreamApplicable(const SegDesc &seg, unsigned line_bytes)
{
    if (seg.count == 0 || seg.stride < 0)
        return false;
    uint64_t s = static_cast<uint64_t>(seg.stride);
    return s <= line_bytes || s % line_bytes == 0;
}

StreamShape
streamShape(const SegDesc &seg, uint64_t sets, unsigned line_bytes)
{
    panic_if(!analyticStreamApplicable(seg, line_bytes),
             "streamShape: segment not applicable");
    panic_if(sets == 0, "streamShape: zero sets");

    const uint64_t line = line_bytes;
    const uint64_t s = static_cast<uint64_t>(seg.stride);

    StreamShape sh;
    sh.firstLine = seg.firstAddr / line;
    if (s <= line) {
        // Every line in [first, last] is touched (consecutive
        // accesses advance at most one line; stride 0 stays put).
        uint64_t last_line =
            (seg.firstAddr + (seg.count - 1) * s) / line;
        sh.q = 1;
        sh.distinct = last_line - sh.firstLine + 1;
    } else {
        // Exact line multiple: an arithmetic line sequence, one
        // access (and one distinct line) per step.
        sh.q = s / line;
        sh.distinct = seg.count;
    }
    // Lines land on sets (firstLine + t*q) mod sets, cycling with
    // period sets / gcd(q, sets) and visiting `period` distinct sets
    // exactly once per cycle.
    sh.period = sets / std::gcd(sh.q, sets);
    return sh;
}

CacheStats
analyticStreamStats(const SegDesc &seg, uint64_t sets, unsigned assoc,
                    unsigned line_bytes)
{
    return analyticStreamStatsShaped(
        seg, streamShape(seg, sets, line_bytes), assoc);
}

CacheStats
analyticStreamStatsShaped(const SegDesc &seg, const StreamShape &sh,
                          unsigned assoc)
{
    panic_if(assoc == 0, "analyticStreamStats: bad geometry");

    // Each touched set holds either floor(D/P) or ceil(D/P) of the
    // stream's lines; a set overflows (and evicts, LRU) only beyond
    // its assoc ways.
    uint64_t per_set = sh.distinct / sh.period;

    CacheStats s;
    s.accesses = seg.count;
    // Line addresses are non-decreasing and each line's accesses are
    // consecutive, so every access past the first touch of its line
    // hits, and every distinct line misses exactly once.
    s.misses = sh.distinct;
    s.hits = seg.count - sh.distinct;
    s.evictions = per_set >= assoc
        ? sh.distinct - sh.period * assoc : 0;
    // Write-allocate streams leave every installed line dirty, so
    // each eviction writes back; read streams never dirty a line.
    s.writebacks = seg.write ? s.evictions : 0;
    return s;
}

void
replaySegmentsResume(CacheSim &cache, const SegmentList &list)
{
    replaySegmentsResume(cache, list, ReplayOptions{});
}

void
replaySegmentsResume(CacheSim &cache, const SegmentList &list,
                     const ReplayOptions &opts)
{
    const unsigned line = cache.lineSize();
    const uint64_t sets = cache.numSets();
    // Warm verification (probe + stamp + memo record) costs more per
    // segment than the line-run walk it replaces, so it only pays when
    // the residency it establishes survives long enough to be memoized
    // and replayed. Back off while the structure is churning: after
    // any install/eviction, the next kWarmQuietWindow segments skip
    // the warm test and take the line-run tier directly. The counter
    // starts at the window so a steady-state call (the case the warm
    // tier exists for) engages from its first segment.
    constexpr uint64_t kWarmQuietWindow = 32;
    uint64_t struct_gen = cache.structuralGen();
    uint64_t quiet = kWarmQuietWindow;
    for (const SegDesc &seg : list.segments()) {
        // Tier ladder: memoized warm replay, cold closed form, warm
        // closed form, line-run replay. The memo check comes first --
        // only applicable segments are ever memoized, and a hit
        // proves the segment fully resident (so the cold tier could
        // not apply) and skips the shape math entirely; on a miss the
        // shape is computed once per applicable segment and shared by
        // every tier test and the accounting.
        if (opts.warmTier && cache.replayWarmMemo(seg))
            continue; // pure hits: structure unchanged by definition
        if (analyticStreamApplicable(seg, line)) {
            StreamShape sh = streamShape(seg, sets, line);
            if (cache.segmentSetsCold(seg, sh)) {
                cache.applyColdStream(seg, sh);
                struct_gen = cache.structuralGen();
                quiet = 0;
                continue;
            }
            if (opts.warmTier && quiet >= kWarmQuietWindow &&
                cache.segmentSetsWarm(seg, sh)) {
                cache.applyWarmStream(seg, sh);
                continue; // pure hits: structure unchanged
            }
        }
        cache.accessSegment(seg);
        const uint64_t gen = cache.structuralGen();
        if (gen != struct_gen) {
            struct_gen = gen;
            quiet = 0;
        } else {
            ++quiet;
        }
    }
}

CacheStats
replaySegments(CacheSim &cache, const SegmentList &list)
{
    cache.reset();
    replaySegmentsResume(cache, list);
    return cache.stats();
}

double
measureHitRateSegments(CacheSim &cache, const SegmentList &list)
{
    return replaySegments(cache, list).hitRate();
}

} // namespace sim
} // namespace seqpoint
