/**
 * @file
 * Analytical cache model implementation.
 */

#include "sim/cache_model.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace seqpoint {
namespace sim {

double
capacityHitFraction(double reuse_max, double working_set, double capacity,
                    double p)
{
    panic_if(reuse_max < 0.0 || reuse_max > 1.0,
             "capacityHitFraction: reuse_max out of [0,1]: %g", reuse_max);
    if (capacity <= 0.0 || reuse_max <= 0.0)
        return 0.0;
    if (working_set <= capacity)
        return reuse_max;
    return reuse_max * std::pow(capacity / working_set, p);
}

MemoryBreakdown
evalMemoryBreakdown(const KernelDesc &desc, const GpuConfig &cfg)
{
    MemoryBreakdown mb;

    // --- Loads ---------------------------------------------------
    // L1: per-CU capacity versus the per-CU working set.
    double l1_cap = static_cast<double>(cfg.l1SizeBytes);
    double h1 = capacityHitFraction(desc.reuseL1, desc.workingSetL1,
                                    l1_cap);

    // L2: chip-wide capacity versus the full working set.
    double l2_cap = static_cast<double>(cfg.l2SizeBytes);
    double h2 = capacityHitFraction(desc.reuseL2, desc.workingSetL2,
                                    l2_cap);

    double loads = desc.bytesIn;
    double l1_load_bytes = loads * h1;
    double l2_load_bytes = (loads - l1_load_bytes) * h2;
    double dram_load_bytes = loads - l1_load_bytes - l2_load_bytes;

    // --- Stores ---------------------------------------------------
    // Streaming stores bypass L1; L2 write coalescing captures a
    // fraction of them while the output tile fits.
    double store_h2 = capacityHitFraction(0.5 * desc.reuseL2,
        desc.workingSetL2, l2_cap);
    double stores = desc.bytesOut;
    double l2_store_bytes = stores * store_h2;
    double dram_store_bytes = stores - l2_store_bytes;

    mb.l1Bytes = l1_load_bytes;
    mb.l2Bytes = l2_load_bytes + l2_store_bytes;
    mb.dramBytes = dram_load_bytes + dram_store_bytes;
    mb.l1HitRate = loads > 0.0 ? h1 : 0.0;
    mb.l2HitRate = h2;
    return mb;
}

bool
analyticStreamApplicable(const StrideSegment &seg, unsigned line_bytes)
{
    if (!seg.uniform || seg.stride == 0)
        return false;
    return seg.stride <= line_bytes || seg.stride % line_bytes == 0;
}

CacheStats
analyticStreamStats(const StrideSegment &seg, uint64_t sets,
                    unsigned assoc, unsigned line_bytes)
{
    panic_if(!analyticStreamApplicable(seg, line_bytes),
             "analyticStreamStats: segment not applicable");
    panic_if(sets == 0 || assoc == 0,
             "analyticStreamStats: bad geometry");

    const uint64_t n = seg.count;
    const uint64_t line = line_bytes;

    // Distinct lines D and the line-address step q. stride <= line
    // touches every line in [first, last] (step 1); a stride that is
    // an exact line multiple visits an arithmetic line sequence of n
    // distinct lines (step stride/line).
    uint64_t first_line = seg.firstAddr / line;
    uint64_t q, distinct;
    if (seg.stride <= line) {
        uint64_t last_line = (seg.firstAddr + (n - 1) * seg.stride) /
            line;
        q = 1;
        distinct = last_line - first_line + 1;
    } else {
        q = seg.stride / line;
        distinct = n;
    }

    // Lines land on sets (first_line + j*q) mod sets, which cycles
    // with period P = sets / gcd(q, sets), visiting P distinct sets
    // exactly once per period. Each visited set therefore holds
    // either floor(D/P) or ceil(D/P) of the stream's lines; a set
    // overflows (and evicts, LRU) only beyond its assoc ways.
    uint64_t period = sets / std::gcd(q, sets);
    uint64_t per_set = distinct / period;

    CacheStats s;
    s.accesses = n;
    // Line addresses are non-decreasing and each line's accesses are
    // consecutive, so every access past the first touch of its line
    // hits, and every distinct line misses exactly once.
    s.misses = distinct;
    s.hits = n - distinct;
    s.evictions = per_set >= assoc ? distinct - period * assoc : 0;
    // Write-allocate streams leave every installed line dirty, so
    // each eviction writes back; read streams never dirty a line.
    s.writebacks = seg.write ? s.evictions : 0;
    return s;
}

} // namespace sim
} // namespace seqpoint
