/**
 * @file
 * HBM/DRAM service model: effective bandwidth under a given access
 * pattern and load, plus write-drain stall estimation.
 */

#ifndef SEQPOINT_SIM_DRAM_MODEL_HH
#define SEQPOINT_SIM_DRAM_MODEL_HH

#include "sim/gpu_config.hh"
#include "sim/kernel.hh"

namespace seqpoint {
namespace sim {

/** DRAM service estimate for one kernel. */
struct DramService {
    double readTimeSec = 0.0;   ///< Time to service read traffic.
    double writeTimeSec = 0.0;  ///< Time to drain write traffic.
    double writeStallSec = 0.0; ///< Non-overlappable write stall time.
};

/**
 * Effective DRAM bandwidth for a kernel class.
 *
 * Streaming classes get close to the configured efficiency; gather
 * classes (embedding) lose row-buffer locality and achieve less.
 *
 * @param klass Kernel class issuing the traffic.
 * @param cfg Device configuration.
 * @return Effective bandwidth in bytes/s.
 */
double effectiveDramBandwidth(KernelClass klass, const GpuConfig &cfg);

/**
 * Service read and write DRAM traffic for a kernel.
 *
 * Writes drain through a buffered path at `writeDrainFraction` of the
 * device bandwidth; drain time beyond the kernel's read/compute time
 * shows up as write stalls (the "Mem write stalls" counter of Fig 4).
 *
 * @param klass Kernel class issuing the traffic.
 * @param read_bytes DRAM read traffic in bytes.
 * @param write_bytes DRAM write traffic in bytes.
 * @param overlap_sec Time the kernel spends busy anyway (reads or
 *                    compute) during which write drain is free.
 * @param cfg Device configuration.
 */
DramService serviceDram(KernelClass klass, double read_bytes,
                        double write_bytes, double overlap_sec,
                        const GpuConfig &cfg);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_DRAM_MODEL_HH
