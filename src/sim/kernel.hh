/**
 * @file
 * Kernel descriptors: the interface between the NN lowering library and
 * the GPU timing model. A KernelDesc captures everything the simulator
 * needs -- operation class, FLOPs, global-memory request volumes,
 * working sets and available parallelism -- plus the mangled kernel
 * name (including the autotuned tile variant) used for the paper's
 * unique-kernel analyses (Figs 5 and 6).
 */

#ifndef SEQPOINT_SIM_KERNEL_HH
#define SEQPOINT_SIM_KERNEL_HH

#include <cstdint>
#include <string>

namespace seqpoint {
namespace sim {

/** Broad operation classes that the lowering library emits. */
enum class KernelClass {
    Gemm,        ///< Dense matrix multiply (incl. implicit-GEMM conv).
    Elementwise, ///< Pointwise math: activations, gate math, adds.
    Reduction,   ///< Reductions: losses, norm statistics, grad sums.
    Softmax,     ///< Fused softmax (attention scores / final layer).
    BatchNorm,   ///< Batch-norm statistics + normalisation.
    Embedding,   ///< Vocabulary-table gather / scatter.
    Transpose,   ///< Layout changes (time-major <-> batch-major).
    Memcpy,      ///< Bulk copies (padding, reorder buffers).
    Scalar,      ///< Tiny bookkeeping launches (optimizer scalars).
};

/** @return Short stable name for a kernel class ("gemm", ...). */
const char *kernelClassName(KernelClass klass);

/** Number of distinct KernelClass values. */
constexpr unsigned numKernelClasses = 9;

/**
 * One GPU kernel launch as seen by the timing model.
 *
 * `bytesIn`/`bytesOut` are global-memory *request* volumes after
 * register/LDS blocking (i.e. what reaches the L1), not algorithmic
 * footprints. `workingSetL1` is the per-CU hot set, `workingSetL2` the
 * chip-wide hot set; the cache model turns these into hit fractions.
 */
struct KernelDesc {
    /** Mangled kernel name (includes tile-variant suffix). */
    std::string name;

    /** Operation class. */
    KernelClass klass = KernelClass::Elementwise;

    /** Total floating-point operations. */
    double flops = 0.0;

    /** Bytes requested from the memory system (loads). */
    double bytesIn = 0.0;

    /** Bytes written toward memory (stores). */
    double bytesOut = 0.0;

    /** Per-CU working set in bytes (L1-visible hot data). */
    double workingSetL1 = 0.0;

    /** Chip-wide working set in bytes (L2-visible hot data). */
    double workingSetL2 = 0.0;

    /** Total work-items in the launch grid. */
    double workItems = 0.0;

    /**
     * Back-to-back launches of this exact kernel (e.g. one per RNN
     * time step). Timing and counters scale linearly; the name is
     * still counted once in unique-kernel analyses.
     */
    uint64_t repeat = 1;

    /** GEMM dimensions when klass == Gemm (0 otherwise). */
    int64_t gemmM = 0;
    int64_t gemmN = 0; ///< GEMM N dimension.
    int64_t gemmK = 0; ///< GEMM K dimension.

    /**
     * Implementation-efficiency scale in (0, 1]: how close this
     * kernel variant gets to its class's peak efficiency (small GEMM
     * tiles lose register blocking, for example).
     */
    double effScale = 1.0;

    /**
     * Fraction of loads that hit in L1 at full capacity; class- and
     * shape-dependent, filled in by the lowering library.
     */
    double reuseL1 = 0.0;

    /** Fraction of L1 misses that hit in an unbounded L2. */
    double reuseL2 = 0.0;

    /** @return flops / (bytesIn + bytesOut); 0 when no traffic. */
    double arithmeticIntensity() const;

    /** @return Total bytes moved (loads + stores). */
    double totalBytes() const { return bytesIn + bytesOut; }
};

/**
 * Convenience builder for elementwise kernels.
 *
 * @param name Kernel name.
 * @param elems Number of elements processed.
 * @param flops_per_elem FLOPs per element.
 * @param streams_in Number of distinct input operands streamed.
 * @param streams_out Number of distinct output operands streamed.
 */
KernelDesc makeElementwise(const std::string &name, double elems,
                           double flops_per_elem, double streams_in,
                           double streams_out);

/**
 * Convenience builder for reduction kernels over `elems` inputs.
 */
KernelDesc makeReduction(const std::string &name, double elems);

/**
 * Convenience builder for memcpy-like kernels moving `bytes` bytes.
 */
KernelDesc makeMemcpy(const std::string &name, double bytes);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_KERNEL_HH
