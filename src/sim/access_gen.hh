/**
 * @file
 * Synthetic address-stream generators that mimic the memory behaviour
 * of the kernel classes the lowering library emits. Together with
 * CacheSim these validate the analytical cache model: the test suite
 * drives the same working sets through both and checks the hit-rate
 * power law.
 */

#ifndef SEQPOINT_SIM_ACCESS_GEN_HH
#define SEQPOINT_SIM_ACCESS_GEN_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hh"
#include "sim/cache_sim.hh"

namespace seqpoint {
namespace sim {

/** Callback invoked for each generated access. */
using AccessSink = std::function<void(uint64_t addr, bool write)>;

/**
 * A recorded access stream in one flat buffer: each entry packs
 * `(addr << 1) | is_write` into a uint64_t (synthetic addresses stay
 * far below 2^63). Generating into a trace once and replaying it
 * avoids the per-access std::function indirection when the same
 * stream is driven through several cache geometries.
 */
class AccessTrace
{
  public:
    /** Append one access. */
    void add(uint64_t addr, bool write)
    {
        words.push_back((addr << 1) | (write ? 1u : 0u));
    }

    /** @return Number of recorded accesses. */
    std::size_t size() const { return words.size(); }

    /** @return True when nothing was recorded. */
    bool empty() const { return words.empty(); }

    /** @return Address of access i. */
    uint64_t addr(std::size_t i) const { return words[i] >> 1; }

    /** @return True when access i is a write. */
    bool isWrite(std::size_t i) const { return (words[i] & 1) != 0; }

    /** Pre-allocate room for n accesses. */
    void reserve(std::size_t n) { words.reserve(n); }

    /** Drop all recorded accesses. */
    void clear() { words.clear(); }

    /** @return A sink that records into this trace. */
    AccessSink sink()
    {
        return [this](uint64_t a, bool w) { add(a, w); };
    }

  private:
    std::vector<uint64_t> words;
};

/**
 * Streaming access pattern: touch `bytes` bytes once, sequentially,
 * with `stride` between consecutive 4-byte elements.
 *
 * @param bytes Footprint in bytes.
 * @param stride Element stride in bytes (>= 4).
 * @param sink Receives each access.
 */
void genStreaming(uint64_t bytes, unsigned stride, const AccessSink &sink);

/**
 * Blocked-GEMM access pattern: walk C tiles, re-reading an A panel and
 * streaming B panels, as a register/LDS-blocked GEMM does.
 *
 * @param m Rows of A/C.
 * @param n Cols of B/C.
 * @param k Inner dimension.
 * @param tile Tile edge in elements (e.g. 64).
 * @param sink Receives each access (element granularity, 4 bytes).
 */
void genBlockedGemm(uint64_t m, uint64_t n, uint64_t k, unsigned tile,
                    const AccessSink &sink);

/**
 * Hot/cold mixture: a fraction `hot_frac` of accesses target a
 * `hot_bytes` region (temporal locality), the rest sweep a large cold
 * region. Models embedding-table lookups.
 *
 * @param accesses Number of accesses to generate.
 * @param hot_bytes Size of the hot region.
 * @param cold_bytes Size of the cold region.
 * @param hot_frac Fraction of accesses landing in the hot region.
 * @param rng Random source.
 * @param sink Receives each access.
 */
void genHotCold(uint64_t accesses, uint64_t hot_bytes, uint64_t cold_bytes,
                double hot_frac, Rng &rng, const AccessSink &sink);

/**
 * Drive a pattern through a cache and return its measured hit rate.
 *
 * @param cache Cache to exercise (reset first).
 * @param gen Invoked with a sink that feeds the cache.
 * @return Hit rate observed over the whole stream.
 */
double measureHitRate(CacheSim &cache,
                      const std::function<void(const AccessSink &)> &gen);

/**
 * Replay a recorded trace through a cache and return the hit rate.
 * Replays through CacheSim::accessBlock, so the whole trace is one
 * batched scan over the flat buffer.
 *
 * @param cache Cache to exercise (reset first).
 * @param trace Previously recorded access stream.
 * @return Hit rate observed over the whole stream.
 */
double replayHitRate(CacheSim &cache, const AccessTrace &trace);

/**
 * A pure streaming segment: every access `firstAddr + i * stride`
 * with one uniform read/write direction. The shape genStreaming
 * emits, and the shape the analytic replay path (cache_model.hh)
 * accounts for in closed form.
 */
struct StrideSegment {
    bool uniform = false;   ///< True when the trace matches the shape.
    uint64_t firstAddr = 0; ///< Address of the first access.
    uint64_t stride = 0;    ///< Constant positive byte stride.
    std::size_t count = 0;  ///< Number of accesses.
    bool write = false;     ///< Uniform access direction.
};

/**
 * Scan a trace for the pure-streaming shape: a constant positive
 * byte stride and one uniform read/write direction throughout.
 *
 * @param trace Recorded access stream.
 * @return Segment description; uniform == false when the trace does
 *         not match (including traces with fewer than two accesses).
 */
StrideSegment detectStrideSegment(const AccessTrace &trace);

/**
 * Replay statistics with the stride-analytic fast path.
 *
 * When the trace is a pure streaming segment the analytic model
 * (cache_model.hh) applies, and its hits/misses/evictions are
 * accounted in closed form without simulating a single address; the
 * cache is left reset in that case. Otherwise the trace is replayed
 * through CacheSim::accessBlock. Either way the returned statistics
 * are identical to an access()-per-entry replay on a reset cache.
 *
 * @param cache Cache to exercise (reset first).
 * @param trace Previously recorded access stream.
 * @return Statistics of the full replay.
 */
CacheStats replayStatsFast(CacheSim &cache, const AccessTrace &trace);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_ACCESS_GEN_HH
