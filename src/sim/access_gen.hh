/**
 * @file
 * Synthetic address-stream generators that mimic the memory behaviour
 * of the kernel classes the lowering library emits. Together with
 * CacheSim these validate the analytical cache model: the test suite
 * drives the same working sets through both and checks the hit-rate
 * power law.
 *
 * Streams exist in two representations. The compact form is a
 * SegmentList of segment descriptors -- (firstAddr, stride, count,
 * write) stride runs -- which the generators emit directly in
 * O(segments); the piecewise-analytic replay engine (cache_model.hh)
 * consumes descriptors without ever materializing individual
 * accesses. The materialized form is the flat AccessTrace buffer,
 * kept for the scalar oracle, the batched accessBlock replay and
 * streams with no stride structure.
 */

#ifndef SEQPOINT_SIM_ACCESS_GEN_HH
#define SEQPOINT_SIM_ACCESS_GEN_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hh"
#include "sim/cache_sim.hh"

namespace seqpoint {
namespace sim {

/** Callback invoked for each generated access. */
using AccessSink = std::function<void(uint64_t addr, bool write)>;

/**
 * A recorded access stream in one flat buffer: each entry packs
 * `(addr << 1) | is_write` into a uint64_t (synthetic addresses stay
 * far below 2^63). Generating into a trace once and replaying it
 * avoids the per-access std::function indirection when the same
 * stream is driven through several cache geometries.
 */
class AccessTrace
{
  public:
    /** Append one access. */
    void add(uint64_t addr, bool write)
    {
        words.push_back((addr << 1) | (write ? 1u : 0u));
    }

    /** @return Number of recorded accesses. */
    std::size_t size() const { return words.size(); }

    /** @return True when nothing was recorded. */
    bool empty() const { return words.empty(); }

    /** @return Address of access i. */
    uint64_t addr(std::size_t i) const { return words[i] >> 1; }

    /** @return True when access i is a write. */
    bool isWrite(std::size_t i) const { return (words[i] & 1) != 0; }

    /** Pre-allocate room for n accesses. */
    void reserve(std::size_t n) { words.reserve(n); }

    /** Drop all recorded accesses. */
    void clear() { words.clear(); }

    /** @return A sink that records into this trace. */
    AccessSink sink()
    {
        return [this](uint64_t a, bool w) { add(a, w); };
    }

  private:
    std::vector<uint64_t> words;
};

/**
 * A compact access stream: a sequence of segment descriptors, each a
 * stride run. The incremental add() builder folds an arbitrary
 * access-by-access stream into maximal stride runs greedily, so a
 * SegmentList expands to exactly the access sequence it was built
 * from -- compression never changes replay semantics, only the work
 * needed to account it.
 */
class SegmentList
{
  public:
    /** Append one run descriptor (no merging; count may not be 0). */
    void addRun(const SegDesc &seg);

    /** Append a run by parts (convenience over addRun()). */
    void addRun(uint64_t first_addr, int64_t stride, uint64_t count,
                bool write)
    {
        addRun(SegDesc{first_addr, stride, count, write});
    }

    /**
     * Append one access, extending the trailing run when the address
     * continues its stride pattern (same direction flag; the second
     * access of a run fixes its stride). O(1).
     */
    void add(uint64_t addr, bool write);

    /** @return The run descriptors in stream order. */
    const std::vector<SegDesc> &segments() const { return segs; }

    /** @return Number of descriptors. */
    std::size_t size() const { return segs.size(); }

    /** @return True when no accesses were recorded. */
    bool empty() const { return segs.empty(); }

    /** @return Total accesses across all descriptors. */
    uint64_t accesses() const { return total; }

    /** Drop all descriptors. */
    void clear();

    /** @return A sink that folds accesses into this list. */
    AccessSink sink()
    {
        return [this](uint64_t a, bool w) { add(a, w); };
    }

    /**
     * Expand to the flat per-access form (the exact access sequence
     * the list was built from). O(accesses) -- for oracle
     * cross-checks and the batched-replay fallback, not hot paths.
     */
    AccessTrace materialize() const;

    /** Invoke `sink` for every access, in stream order. */
    void replay(const AccessSink &sink) const;

  private:
    std::vector<SegDesc> segs;
    uint64_t total = 0;
};

/**
 * Decompose a trace into maximal stride segments (greedy: each run
 * extends while the next access continues its stride with the same
 * direction flag). Handles every edge shape: empty traces (empty
 * list), single accesses and direction flips (count-1 runs),
 * repeated addresses (stride-0 runs), negative and line-straddling
 * strides (any int64 stride is a valid descriptor).
 *
 * @param trace Recorded access stream.
 * @return Segment list expanding to exactly `trace`.
 */
SegmentList detectSegments(const AccessTrace &trace);

/**
 * Streaming access pattern: touch `bytes` bytes once, sequentially,
 * with `stride` between consecutive 4-byte elements. One descriptor.
 *
 * @param bytes Footprint in bytes.
 * @param stride Element stride in bytes (>= 4).
 */
SegmentList genStreamingSegments(uint64_t bytes, unsigned stride);

/**
 * Blocked-GEMM access pattern as segment descriptors: walk C tiles;
 * for each tile, walk the K dimension in blocks, re-reading the A
 * panel row by row and streaming B panel rows (element granularity,
 * 4 bytes, sampled every 4 elements), then store the C tile. The A
 * panel re-walks across the bj tiles and the B panel re-walks across
 * the bi tiles are what give a blocked GEMM its cache reuse.
 *
 * O(segments): one descriptor per panel-row walk, never a
 * materialized access.
 *
 * @param m Rows of A/C.
 * @param n Cols of B/C.
 * @param k Inner dimension.
 * @param tile Tile edge in elements (e.g. 64).
 */
SegmentList genBlockedGemmSegments(uint64_t m, uint64_t n, uint64_t k,
                                   unsigned tile);

/**
 * Hot/cold mixture: a fraction `hot_frac` of accesses target a
 * `hot_bytes` region (temporal locality), the rest sweep a large cold
 * region. Models embedding-table lookups. Random addresses have no
 * stride structure, so the descriptors are (mostly) count-1 runs:
 * compact replay falls back to per-line accounting.
 *
 * @param accesses Number of accesses to generate.
 * @param hot_bytes Size of the hot region.
 * @param cold_bytes Size of the cold region.
 * @param hot_frac Fraction of accesses landing in the hot region.
 * @param rng Random source.
 */
SegmentList genHotColdSegments(uint64_t accesses, uint64_t hot_bytes,
                               uint64_t cold_bytes, double hot_frac,
                               Rng &rng);

/**
 * Streaming access pattern through a per-access sink (compatibility
 * shim over genStreamingSegments(); identical access sequence).
 */
void genStreaming(uint64_t bytes, unsigned stride, const AccessSink &sink);

/**
 * Blocked-GEMM access pattern through a per-access sink
 * (compatibility shim over genBlockedGemmSegments(); identical
 * access sequence).
 */
void genBlockedGemm(uint64_t m, uint64_t n, uint64_t k, unsigned tile,
                    const AccessSink &sink);

/**
 * Hot/cold mixture through a per-access sink (compatibility shim
 * over genHotColdSegments(); identical access sequence and RNG
 * consumption).
 */
void genHotCold(uint64_t accesses, uint64_t hot_bytes, uint64_t cold_bytes,
                double hot_frac, Rng &rng, const AccessSink &sink);

/**
 * Drive a pattern through a cache and return its measured hit rate.
 *
 * The generated stream is folded into segment descriptors and
 * replayed through the piecewise-analytic engine (cache_model.hh),
 * which is bit-identical to feeding the cache access by access.
 *
 * @param cache Cache to exercise (reset first).
 * @param gen Invoked with a sink that records the stream.
 * @return Hit rate observed over the whole stream.
 */
double measureHitRate(CacheSim &cache,
                      const std::function<void(const AccessSink &)> &gen);

/**
 * Replay a recorded trace through a cache and return the hit rate.
 * Routed through replayStatsFast(), so traces with stride structure
 * take the piecewise-analytic engine and unstructured traces the
 * batched accessBlock scan -- identical statistics either way.
 *
 * @param cache Cache to exercise (reset first).
 * @param trace Previously recorded access stream.
 * @return Hit rate observed over the whole stream.
 */
double replayHitRate(CacheSim &cache, const AccessTrace &trace);

/**
 * Replay statistics with the piecewise-analytic fast path.
 *
 * The trace is decomposed into maximal stride segments; when the
 * decomposition compresses (>= 2 accesses per segment on average)
 * the segments are replayed through the piecewise engine
 * (cache_model.hh), otherwise the trace is replayed through the
 * batched CacheSim::accessBlock. Either way the returned statistics
 * and the final cache state are identical to an access()-per-entry
 * replay on a reset cache.
 *
 * @param cache Cache to exercise (reset first).
 * @param trace Previously recorded access stream.
 * @return Statistics of the full replay.
 */
CacheStats replayStatsFast(CacheSim &cache, const AccessTrace &trace);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_ACCESS_GEN_HH
