/**
 * @file
 * Trace-driven set-associative cache simulator with LRU replacement.
 * Used to validate the analytical cache model's capacity power law and
 * available for detailed single-kernel studies.
 *
 * Storage is structure-of-arrays: tags, last-use clocks and
 * valid/dirty flags live in separate flat arrays indexed by
 * set * assoc + way, so the batched replay path streams through
 * contiguous memory instead of hopping across per-line structs.
 *
 * Three replay paths produce bit-identical statistics and cache
 * state: the scalar access() reference oracle, the batched
 * accessBlock() scan over a materialized trace, and the
 * segment-descriptor path -- accessSegment() replays a stride run at
 * line-run granularity (one probe per distinct line instead of one
 * per access) and applyColdStream() accounts a whole run in closed
 * form when every set it touches is empty (tracked by the per-set
 * occupancy counters that carry across segments).
 */

#ifndef SEQPOINT_SIM_CACHE_SIM_HH
#define SEQPOINT_SIM_CACHE_SIM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seqpoint {
namespace sim {

class AccessTrace;

/** Hit/miss statistics for a simulated cache. */
struct CacheStats {
    uint64_t accesses = 0;   ///< Total accesses observed.
    uint64_t hits = 0;       ///< Hits.
    uint64_t misses = 0;     ///< Misses (incl. compulsory).
    uint64_t evictions = 0;  ///< Lines evicted to make room.
    uint64_t writebacks = 0; ///< Dirty lines written back.

    /** @return hits / accesses; 0 when no accesses. */
    double hitRate() const;

    /** Field-wise equality (used by the batched-vs-scalar tests). */
    bool operator==(const CacheStats &other) const = default;
};

/**
 * One segment descriptor: `count` accesses at
 * `firstAddr + i * stride` (i = 0..count-1), all with the same
 * read/write direction. The compact unit of the segment-descriptor
 * stream representation (access_gen.hh): a stride run, a repeated
 * address (stride 0), or a lone access (count 1).
 */
struct SegDesc {
    uint64_t firstAddr = 0; ///< Address of the first access.
    int64_t stride = 0;     ///< Signed byte stride between accesses.
    uint64_t count = 0;     ///< Number of accesses.
    bool write = false;     ///< Uniform access direction.

    /** @return Address of access i (i < count). */
    uint64_t addr(uint64_t i) const
    {
        return firstAddr +
            static_cast<uint64_t>(stride) * i; // wraps consistently
    }

    /** Field-wise equality. */
    bool operator==(const SegDesc &other) const = default;
};

/**
 * Frozen copy of a cache's full mutable state -- line arrays, use
 * clock and statistics. Snapshot/restore lets callers replay several
 * engines (or several continuations) from one warm starting point
 * without rebuilding it: snapshot once, restore before each run.
 */
struct CacheSetState {
    // Geometry the state was captured on; restoreState() refuses a
    // cache whose geometry differs (tags/set mappings would be
    // silently misinterpreted otherwise).
    uint64_t sets = 0;      ///< Number of sets.
    unsigned assoc = 0;     ///< Ways per set.
    unsigned lineBytes = 0; ///< Line size.

    std::vector<uint64_t> tags;    ///< Per-way tags.
    std::vector<uint64_t> lastUse; ///< Per-way LRU clocks.
    std::vector<uint8_t> flags;    ///< Per-way valid/dirty bits.
    uint64_t useClock = 0;         ///< Global LRU clock.
    CacheStats stats;              ///< Statistics at snapshot time.
};

/**
 * A single-level set-associative cache with true-LRU replacement and
 * write-back, write-allocate semantics.
 */
class CacheSim
{
  public:
    /**
     * Construct a cache.
     *
     * @param size_bytes Total capacity (must be a multiple of
     *                   line_bytes * assoc).
     * @param assoc Ways per set (>= 1).
     * @param line_bytes Line size, a power of two.
     */
    CacheSim(uint64_t size_bytes, unsigned assoc, unsigned line_bytes);

    /**
     * Perform one access (the scalar reference oracle).
     *
     * @param addr Byte address.
     * @param write True for a store (marks the line dirty).
     * @return True on hit.
     */
    bool access(uint64_t addr, bool write);

    /**
     * Replay trace entries [begin, end) through the cache.
     *
     * The batched path probes and updates the SoA arrays with a
     * branchless hit scan and single-pass victim selection; the
     * resulting statistics and cache state are bit-identical to
     * calling access() once per entry.
     *
     * @param trace Recorded access stream.
     * @param begin First trace index to replay.
     * @param end One past the last trace index to replay.
     */
    void accessBlock(const AccessTrace &trace, std::size_t begin,
                     std::size_t end);

    /**
     * Replay one segment descriptor at line-run granularity.
     *
     * Within a stride run consecutive accesses to the same line are
     * consecutive in time (addresses are monotone), so each distinct
     * line costs one probe and its remaining accesses are accounted
     * arithmetically as guaranteed hits. Bit-identical in statistics
     * and state to access() per expanded entry, for any stride
     * (positive, negative, zero, line-straddling).
     *
     * @param seg Segment to replay.
     */
    void accessSegment(const SegDesc &seg);

    /**
     * Account an entire streaming segment in closed form.
     *
     * Requires analyticStreamApplicable(seg, lineSize()) and
     * segmentSetsCold(seg): line addresses advance by a constant
     * non-negative step and every set the run touches is empty, so
     * hits, misses, evictions and writebacks follow from arithmetic
     * (cache_model.hh) and only the surviving tail of the stream --
     * at most assoc lines per touched set -- is installed. O(min(
     * distinct lines, cache lines)) instead of O(accesses);
     * bit-identical in statistics and state to the scalar oracle.
     *
     * @param seg Applicable segment (panics otherwise).
     */
    void applyColdStream(const SegDesc &seg);

    /**
     * Whether every set `seg` touches is empty -- the piecewise
     * engine's applicability test for applyColdStream(), answered
     * from the per-set occupancy counters in O(touched sets).
     *
     * @param seg Candidate segment (must satisfy
     *            analyticStreamApplicable()).
     */
    bool segmentSetsCold(const SegDesc &seg) const;

    /** @return True when no line is resident (freshly reset). */
    bool coldCache() const { return validLines == 0; }

    /** @return Snapshot of the full mutable state. */
    CacheSetState snapshotState() const;

    /**
     * Restore a state captured by snapshotState() on a cache of the
     * same geometry (panics on mismatch). Occupancy counters are
     * rebuilt from the restored valid flags.
     *
     * @param state Snapshot to adopt.
     */
    void restoreState(const CacheSetState &state);

    /** Reset contents and statistics. */
    void reset();

    /** @return Accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** @return Number of sets. */
    uint64_t numSets() const { return sets; }

    /** @return Capacity in bytes. */
    uint64_t sizeBytes() const { return size; }

    /** @return Ways per set. */
    unsigned assocWays() const { return assoc; }

    /** @return Line size in bytes. */
    unsigned lineSize() const { return lineBytes; }

  private:
    uint64_t size;
    unsigned assoc;
    unsigned lineBytes;
    unsigned lineShift;
    uint64_t sets;

    // Structure-of-arrays line storage, indexed set * assoc + way.
    std::vector<uint64_t> tags;
    std::vector<uint64_t> lastUse; ///< 0 for invalid lines.
    std::vector<uint8_t> flags;    ///< Bit 0: valid, bit 1: dirty.

    // Per-set occupancy (valid lines per set) and its total. Carried
    // across segments so the piecewise engine can prove a run's sets
    // cold without probing tags.
    std::vector<uint32_t> setOcc;
    uint64_t validLines = 0;

    static constexpr uint8_t kValid = 1;
    static constexpr uint8_t kDirty = 2;

    uint64_t useClock = 0;
    CacheStats stats_;

    /**
     * Perform `cnt` consecutive accesses that all target `line_addr`:
     * one probe, the rest guaranteed hits.
     */
    void accessLineRun(uint64_t line_addr, uint64_t cnt, bool write);
};

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_CACHE_SIM_HH
