/**
 * @file
 * Trace-driven set-associative cache simulator with LRU replacement.
 * Used to validate the analytical cache model's capacity power law and
 * available for detailed single-kernel studies.
 *
 * Storage is structure-of-arrays: tags, last-use clocks and
 * valid/dirty flags live in separate flat arrays indexed by
 * set * assoc + way, so the batched replay path streams through
 * contiguous memory instead of hopping across per-line structs.
 *
 * Four replay tiers produce bit-identical statistics and cache
 * state: the scalar access() reference oracle, the batched
 * accessBlock() scan over a materialized trace, and the
 * segment-descriptor tiers -- accessSegment() replays a stride run at
 * line-run granularity (one probe per distinct line instead of one
 * per access), applyColdStream() accounts a whole run in closed form
 * when every set it touches is empty (tracked by the per-set
 * occupancy counters that carry across segments), and
 * applyWarmStream() accounts a fully resident re-walk in closed form
 * (all hits; lastUse stamped arithmetically through the per-set
 * residency summaries, no tag probes on the steady state).
 *
 * The per-line probe inside accessSegment() is vectorized (AVX2)
 * when the host supports it, with a portable scalar fallback chosen
 * at runtime; both arms are bit-identical.
 */

#ifndef SEQPOINT_SIM_CACHE_SIM_HH
#define SEQPOINT_SIM_CACHE_SIM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seqpoint {
namespace sim {

class AccessTrace;
struct StreamShape;

/**
 * Per-tier engagement counters for the segment-replay ladder: how
 * many segment replays were accounted by each engine tier. Every
 * segment replayed through a CacheSim accounts to exactly one tier.
 *
 * Tier choice is an engine decision, not simulation semantics -- two
 * engines replaying the same stream report identical CacheStats
 * (whose equality therefore ignores these counters) while engaging
 * different tiers.
 */
struct ReplayTierCounters {
    uint64_t coldSegments = 0;    ///< applyColdStream() closed form.
    uint64_t warmSegments = 0;    ///< applyWarmStream() closed form.
    uint64_t lineRunSegments = 0; ///< accessSegment() line runs.

    /** @return Total segment replays accounted. */
    uint64_t total() const
    {
        return coldSegments + warmSegments + lineRunSegments;
    }

    /** Field-wise equality (tier-coverage tests). */
    bool operator==(const ReplayTierCounters &other) const = default;
};

/** Hit/miss statistics for a simulated cache. */
struct CacheStats {
    uint64_t accesses = 0;   ///< Total accesses observed.
    uint64_t hits = 0;       ///< Hits.
    uint64_t misses = 0;     ///< Misses (incl. compulsory).
    uint64_t evictions = 0;  ///< Lines evicted to make room.
    uint64_t writebacks = 0; ///< Dirty lines written back.

    /** Segment-replay tier engagement (see ReplayTierCounters). */
    ReplayTierCounters tiers;

    /** @return hits / accesses; 0 when no accesses. */
    double hitRate() const;

    /**
     * Semantic equality (used by the engine-identity tests): compares
     * the simulation-visible fields only. The tier counters describe
     * which engine tier did the accounting, which legitimately
     * differs between bit-identical engines.
     */
    bool operator==(const CacheStats &other) const
    {
        return accesses == other.accesses && hits == other.hits &&
            misses == other.misses && evictions == other.evictions &&
            writebacks == other.writebacks;
    }
};

/**
 * One segment descriptor: `count` accesses at
 * `firstAddr + i * stride` (i = 0..count-1), all with the same
 * read/write direction. The compact unit of the segment-descriptor
 * stream representation (access_gen.hh): a stride run, a repeated
 * address (stride 0), or a lone access (count 1).
 */
struct SegDesc {
    uint64_t firstAddr = 0; ///< Address of the first access.
    int64_t stride = 0;     ///< Signed byte stride between accesses.
    uint64_t count = 0;     ///< Number of accesses.
    bool write = false;     ///< Uniform access direction.

    /** @return Address of access i (i < count). */
    uint64_t addr(uint64_t i) const
    {
        return firstAddr +
            static_cast<uint64_t>(stride) * i; // wraps consistently
    }

    /** Field-wise equality. */
    bool operator==(const SegDesc &other) const = default;
};

/**
 * Frozen copy of a cache's full mutable state -- line arrays, use
 * clock and statistics. Snapshot/restore lets callers replay several
 * engines (or several continuations) from one warm starting point
 * without rebuilding it: snapshot once, restore before each run.
 */
struct CacheSetState {
    // Geometry the state was captured on; restoreState() refuses a
    // cache whose geometry differs (tags/set mappings would be
    // silently misinterpreted otherwise).
    uint64_t sets = 0;      ///< Number of sets.
    unsigned assoc = 0;     ///< Ways per set.
    unsigned lineBytes = 0; ///< Line size.

    std::vector<uint64_t> tags;    ///< Per-way tags.
    std::vector<uint64_t> lastUse; ///< Per-way LRU clocks.
    std::vector<uint8_t> flags;    ///< Per-way valid/dirty bits.
    uint64_t useClock = 0;         ///< Global LRU clock.
    CacheStats stats;              ///< Statistics at snapshot time.
};

/**
 * A single-level set-associative cache with true-LRU replacement and
 * write-back, write-allocate semantics.
 */
class CacheSim
{
  public:
    /**
     * Construct a cache.
     *
     * @param size_bytes Total capacity (must be a multiple of
     *                   line_bytes * assoc).
     * @param assoc Ways per set (>= 1).
     * @param line_bytes Line size, a power of two.
     */
    CacheSim(uint64_t size_bytes, unsigned assoc, unsigned line_bytes);

    /**
     * Perform one access (the scalar reference oracle).
     *
     * @param addr Byte address.
     * @param write True for a store (marks the line dirty).
     * @return True on hit.
     */
    bool access(uint64_t addr, bool write);

    /**
     * Replay trace entries [begin, end) through the cache.
     *
     * The batched path probes and updates the SoA arrays with a
     * branchless hit scan and single-pass victim selection; the
     * resulting statistics and cache state are bit-identical to
     * calling access() once per entry.
     *
     * @param trace Recorded access stream.
     * @param begin First trace index to replay.
     * @param end One past the last trace index to replay.
     */
    void accessBlock(const AccessTrace &trace, std::size_t begin,
                     std::size_t end);

    /**
     * Replay one segment descriptor at line-run granularity.
     *
     * Within a stride run consecutive accesses to the same line are
     * consecutive in time (addresses are monotone), so each distinct
     * line costs one probe and its remaining accesses are accounted
     * arithmetically as guaranteed hits. Bit-identical in statistics
     * and state to access() per expanded entry, for any stride
     * (positive, negative, zero, line-straddling).
     *
     * @param seg Segment to replay.
     */
    void accessSegment(const SegDesc &seg);

    /**
     * Account an entire streaming segment in closed form.
     *
     * Requires analyticStreamApplicable(seg, lineSize()) and
     * segmentSetsCold(seg): line addresses advance by a constant
     * non-negative step and every set the run touches is empty, so
     * hits, misses, evictions and writebacks follow from arithmetic
     * (cache_model.hh) and only the surviving tail of the stream --
     * at most assoc lines per touched set -- is installed. O(min(
     * distinct lines, cache lines)) instead of O(accesses);
     * bit-identical in statistics and state to the scalar oracle.
     *
     * @param seg Applicable segment (panics otherwise).
     */
    void applyColdStream(const SegDesc &seg);

    /**
     * applyColdStream() with the segment's precomputed line shape --
     * the replay ladder computes the shape once per segment and
     * shares it between the tier tests and the accounting.
     *
     * @param seg Applicable segment (panics otherwise).
     * @param sh streamShape(seg, numSets(), lineSize()).
     */
    void applyColdStream(const SegDesc &seg, const StreamShape &sh);

    /**
     * Whether every set `seg` touches is empty -- the piecewise
     * engine's applicability test for applyColdStream(), answered
     * from the per-set occupancy counters in O(touched sets).
     *
     * @param seg Candidate segment (must satisfy
     *            analyticStreamApplicable()).
     */
    bool segmentSetsCold(const SegDesc &seg) const;

    /** segmentSetsCold() with the segment's precomputed line shape. */
    bool segmentSetsCold(const SegDesc &seg,
                         const StreamShape &sh) const;

    /**
     * Whether every distinct line of `seg` is currently resident, so
     * the whole segment replays as hits (the warm-tier applicability
     * test). Answered from the generation-stamped per-set residency
     * summaries in O(1) per touched set on the steady state; sets
     * whose summary cannot vouch for the segment's lines are probed
     * once and the verified run is recorded, so the next replay of
     * the same shape skips the probes. Never changes statistics or
     * simulation state -- only the summary side index.
     *
     * @param seg Candidate segment (must satisfy
     *            analyticStreamApplicable()).
     */
    bool segmentSetsWarm(const SegDesc &seg);

    /** segmentSetsWarm() with the segment's precomputed line shape. */
    bool segmentSetsWarm(const SegDesc &seg, const StreamShape &sh);

    /**
     * Account an entire fully resident streaming segment in closed
     * form: every access hits, so statistics are pure arithmetic and
     * the per-line lastUse stamps (plus dirty bits for writes) are
     * written directly through the residency summaries' recorded way
     * mapping -- no tag probes, no LRU scans. Bit-identical in
     * statistics and state to the scalar oracle.
     *
     * Requires analyticStreamApplicable(seg, lineSize()) and a
     * preceding successful segmentSetsWarm(seg) with no intervening
     * accesses (panics otherwise).
     *
     * @param seg Applicable, fully resident segment.
     */
    void applyWarmStream(const SegDesc &seg);

    /**
     * Steady-state warm fast path: if this exact segment was verified
     * fully resident by an earlier warm replay and the cache's
     * structure (which lines are resident, and in which ways) has not
     * changed since -- tracked by a structural generation that counts
     * installs, evictions and wholesale state changes, but not hits --
     * then residency still holds, and the memoized slot list replays
     * the segment as hits without shape math, probes or summary
     * lookups. Bit-identical in statistics and state to
     * segmentSetsWarm() + applyWarmStream().
     *
     * @param seg Candidate segment (must satisfy
     *            analyticStreamApplicable()).
     * @return True when the memo covered the segment and the replay
     *         was applied; false (no state change) otherwise.
     */
    bool replayWarmMemo(const SegDesc &seg);

    /** applyWarmStream() with the segment's precomputed line shape. */
    void applyWarmStream(const SegDesc &seg, const StreamShape &sh);

    /** @return True when no line is resident (freshly reset). */
    bool coldCache() const { return validLines == 0; }

    /** @return Snapshot of the full mutable state. */
    CacheSetState snapshotState() const;

    /**
     * Restore a state captured by snapshotState() on a cache of the
     * same geometry (panics on mismatch). Occupancy counters are
     * rebuilt from the restored valid flags.
     *
     * @param state Snapshot to adopt.
     */
    void restoreState(const CacheSetState &state);

    /** Reset contents and statistics. */
    void reset();

    /** @return Accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** @return Number of sets. */
    uint64_t numSets() const { return sets; }

    /** @return Capacity in bytes. */
    uint64_t sizeBytes() const { return size; }

    /** @return Ways per set. */
    unsigned assocWays() const { return assoc; }

    /** @return Line size in bytes. */
    unsigned lineSize() const { return lineBytes; }

    /**
     * @return Structural generation: bumped by every install,
     * eviction, reset and restore; unchanged by hits. Replay drivers
     * use it to detect churn and back off the warm tier while the
     * residency picture is still moving.
     */
    uint64_t structuralGen() const { return structGen; }

    /**
     * Probe-loop implementation choice. Auto resolves to the widest
     * kernel the host supports at construction time; both arms are
     * bit-identical in statistics and state.
     */
    enum class ProbeKernel {
        Auto,   ///< Resolve at construction (default).
        Scalar, ///< Portable scalar scan.
        Simd,   ///< Vectorized scan (panics if unsupported).
    };

    /** @return True when the vectorized probe can run on this host. */
    static bool simdProbeSupported();

    /**
     * Select the probe kernel (tests pin both arms explicitly; the
     * default Auto picks the vectorized scan when supported).
     *
     * @param kernel Requested kernel (Simd panics if unsupported).
     */
    void setProbeKernel(ProbeKernel kernel);

    /** @return The resolved probe kernel (never Auto). */
    ProbeKernel probeKernel() const
    {
        return simdProbe ? ProbeKernel::Simd : ProbeKernel::Scalar;
    }

  private:
    uint64_t size;
    unsigned assoc;
    unsigned lineBytes;
    unsigned lineShift;
    uint64_t sets;

    // Structure-of-arrays line storage, indexed set * assoc + way.
    std::vector<uint64_t> tags;
    std::vector<uint64_t> lastUse; ///< 0 for invalid lines.
    std::vector<uint8_t> flags;    ///< Bit 0: valid, bit 1: dirty.

    // Per-set occupancy (valid lines per set) and its total. Carried
    // across segments so the piecewise engine can prove a run's sets
    // cold without probing tags.
    std::vector<uint32_t> setOcc;
    uint64_t validLines = 0;

    /**
     * One set's residency summary: a verified arithmetic run of
     * resident lines (base + j * step for j < count, line j in way
     * sumWays[set * assoc + j]). count 0 means no summary.
     */
    struct SetSummary {
        uint64_t gen = 0;   ///< Generation the run was verified under.
        uint64_t base = 0;  ///< First line address of the run.
        uint64_t step = 0;  ///< Lattice step between run lines.
        uint32_t count = 0; ///< Lines in the run (0 = none).
        uint32_t pad = 0;   ///< Keep the entry 32 bytes.
    };

    // Generation-stamped per-set residency summaries. setGen counts
    // the set's installs and evictions; a summary speaks only for the
    // generation it was verified against (gen == setGen), so any
    // residency change silently retires it. Hits never bump the
    // generation -- residency and way mapping are unchanged -- which
    // is what keeps the warm-tier test O(1) per set across
    // steady-state re-walks.
    std::vector<uint64_t> setGen;
    std::vector<SetSummary> summaries;
    std::vector<uint8_t> sumWays;
    std::vector<uint8_t> warmScratch; ///< Probe scratch (assoc ways).
    std::vector<uint8_t> mergeScratch; ///< Merge scratch (assoc ways).

    // Warm-pass memo: a successful segmentSetsWarm() resolves every
    // line's slot anyway, so it records them (indexed by distinct
    // line, in stream order) for the applyWarmStream() that follows,
    // which then stamps without re-deriving the mapping. The memo is
    // only trusted when the segment matches and the use clock is
    // unchanged -- any intervening access advances the clock, falling
    // back to the self-contained slow path.
    std::vector<uint32_t> warmSlots;
    uint64_t warmMemoAddr = 0;   ///< Memoed segment identity.
    int64_t warmMemoStride = 0;  ///< Memoed segment identity.
    uint64_t warmMemoCount = 0;  ///< Memoed segment identity.
    uint64_t warmMemoClock = 0;  ///< useClock at verification time.
    bool warmMemo = false;       ///< Memo holds a verified mapping.

    /**
     * One memoized warm replay in the direct-mapped resync table: the
     * segment's identity and where its arena record lives. The table
     * is never cleared -- an entry is live only while its epoch stamp
     * matches warmMemoEpoch, so retiring the whole memo is a counter
     * bump, not a 128 KiB memset (which would be paid per structural
     * epoch and dominates replays that interleave installs with warm
     * segments).
     */
    struct WarmMemoEntry {
        uint64_t addr = 0;    ///< Segment identity: first address.
        int64_t stride = 0;   ///< Segment identity: stride.
        uint64_t count = 0;   ///< Segment identity: access count.
        uint64_t epoch = 0;   ///< warmMemoEpoch at record time.
        uint32_t recOff = 0;  ///< Record start index in warmArena.
        uint32_t distinct = 0; ///< Distinct lines (slot count).
    };

    // Cross-replay warm memo. Residency depends only on cache
    // structure, so a verified segment's per-line slot list stays
    // valid -- across any number of replay rounds -- until structGen
    // moves (installs, evictions, reset/restore); hits, including the
    // warm stamps themselves, keep it live. Records live back to back
    // in an append-only arena ([identity header, slots...]) in the
    // order the segments were first verified, which is replay order;
    // since segment lists replay in the same order every round, the
    // steady state walks the arena sequentially with a cursor --
    // header compare, stamp, advance; no hashing, no scattered
    // lookups. A cursor mismatch resyncs through the direct-mapped
    // table. A structGen change retires the memo wholesale on the
    // next record (arena clear + epoch bump, both O(1)); the arena is
    // bounded, overflow retires it the same way.
    std::vector<WarmMemoEntry> warmTable;
    std::vector<uint32_t> warmArena;
    uint64_t warmArenaGen = 0;  ///< structGen the arena belongs to.
    uint64_t warmMemoEpoch = 1; ///< Bumped on every memo retirement.
    std::size_t warmCursor = 0; ///< Next sequential record offset.
    uint64_t structGen = 0; ///< Bumped with every install/evict.

    /// Resync table entries (direct-mapped, power of two).
    static constexpr std::size_t kWarmTableSize = 4096;
    /// Arena record header size in uint32 words: addr (2), stride
    /// (2), count (2), distinct (1), pad (1).
    static constexpr std::size_t kWarmHdrWords = 8;
    /// Arena word budget; exceeding it retires the memo wholesale.
    static constexpr std::size_t kWarmArenaCap = std::size_t(1) << 20;

    static constexpr uint8_t kValid = 1;
    static constexpr uint8_t kDirty = 2;

    uint64_t useClock = 0;
    CacheStats stats_;
    bool simdProbe = false; ///< Resolved probe-kernel choice.

    /**
     * Perform `cnt` consecutive accesses that all target `line_addr`:
     * one probe, the rest guaranteed hits.
     */
    void accessLineRun(uint64_t line_addr, uint64_t cnt, bool write);

    /**
     * Find the way holding `tag` in the set at slot base `base`
     * (probe only, no state change). @return Way index, or -1.
     */
    int probeWay(std::size_t base, uint64_t tag) const;

    /**
     * Pick the replacement way for the set at slot base `base`: the
     * first invalid way, else true LRU (the first minimum of the
     * per-way lastUse clocks; invalid ways present as clock 0).
     */
    unsigned victimWay(std::size_t base) const;

    /**
     * Offset of the run `first + j * step`, j < cnt, within the
     * set's summary, or -1 when the summary cannot vouch for the
     * run's residency.
     */
    int64_t summaryOffset(uint64_t set, uint64_t first, uint64_t step,
                          uint64_t cnt) const;

    /**
     * Probe the cnt lines `first + j * step` in `set`; on full
     * residency record (or merge) the verified run into the set's
     * summary and return true.
     */
    bool probeAndRecordRun(uint64_t set, uint64_t first, uint64_t step,
                           uint64_t cnt);

    /**
     * Install or extend the set's summary with a run verified under
     * the current generation (ways[j] holds line first + j * step).
     */
    void recordSummaryRun(uint64_t set, uint64_t first, uint64_t step,
                          uint64_t cnt, const uint8_t *ways);

    /** Direct-mapped warmTable index for the segment's identity. */
    std::size_t warmMemoSlot(const SegDesc &seg) const;

    /**
     * Stamp a verified fully resident segment through its per-line
     * slot list: hit statistics in closed form, lastUse per distinct
     * line from the stride-class closed forms (no divisions in the
     * loop), dirty bits for writes.
     */
    void stampWarmRun(const SegDesc &seg, const uint32_t *slots,
                      uint64_t distinct);

    /** Memoize the verified segment's slot list (from warmSlots). */
    void recordWarmMemo(const SegDesc &seg, uint64_t distinct);
};

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_CACHE_SIM_HH
