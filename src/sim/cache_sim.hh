/**
 * @file
 * Trace-driven set-associative cache simulator with LRU replacement.
 * Used to validate the analytical cache model's capacity power law and
 * available for detailed single-kernel studies.
 */

#ifndef SEQPOINT_SIM_CACHE_SIM_HH
#define SEQPOINT_SIM_CACHE_SIM_HH

#include <cstdint>
#include <vector>

namespace seqpoint {
namespace sim {

/** Hit/miss statistics for a simulated cache. */
struct CacheStats {
    uint64_t accesses = 0;   ///< Total accesses observed.
    uint64_t hits = 0;       ///< Hits.
    uint64_t misses = 0;     ///< Misses (incl. compulsory).
    uint64_t evictions = 0;  ///< Lines evicted to make room.
    uint64_t writebacks = 0; ///< Dirty lines written back.

    /** @return hits / accesses; 0 when no accesses. */
    double hitRate() const;
};

/**
 * A single-level set-associative cache with true-LRU replacement and
 * write-back, write-allocate semantics.
 */
class CacheSim
{
  public:
    /**
     * Construct a cache.
     *
     * @param size_bytes Total capacity (must be a multiple of
     *                   line_bytes * assoc).
     * @param assoc Ways per set (>= 1).
     * @param line_bytes Line size, a power of two.
     */
    CacheSim(uint64_t size_bytes, unsigned assoc, unsigned line_bytes);

    /**
     * Perform one access.
     *
     * @param addr Byte address.
     * @param write True for a store (marks the line dirty).
     * @return True on hit.
     */
    bool access(uint64_t addr, bool write);

    /** Reset contents and statistics. */
    void reset();

    /** @return Accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** @return Number of sets. */
    uint64_t numSets() const { return sets; }

    /** @return Capacity in bytes. */
    uint64_t sizeBytes() const { return size; }

  private:
    struct Line {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
    };

    uint64_t size;
    unsigned assoc;
    unsigned lineBytes;
    unsigned lineShift;
    uint64_t sets;

    std::vector<Line> lines; // sets * assoc, row-major by set
    uint64_t useClock = 0;
    CacheStats stats_;
};

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_CACHE_SIM_HH
