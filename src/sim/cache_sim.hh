/**
 * @file
 * Trace-driven set-associative cache simulator with LRU replacement.
 * Used to validate the analytical cache model's capacity power law and
 * available for detailed single-kernel studies.
 *
 * Storage is structure-of-arrays: tags, last-use clocks and
 * valid/dirty flags live in separate flat arrays indexed by
 * set * assoc + way, so the batched replay path streams through
 * contiguous memory instead of hopping across per-line structs.
 * The scalar access() is the reference oracle; accessBlock() is the
 * batched replay path and produces bit-identical statistics and
 * cache state.
 */

#ifndef SEQPOINT_SIM_CACHE_SIM_HH
#define SEQPOINT_SIM_CACHE_SIM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seqpoint {
namespace sim {

class AccessTrace;

/** Hit/miss statistics for a simulated cache. */
struct CacheStats {
    uint64_t accesses = 0;   ///< Total accesses observed.
    uint64_t hits = 0;       ///< Hits.
    uint64_t misses = 0;     ///< Misses (incl. compulsory).
    uint64_t evictions = 0;  ///< Lines evicted to make room.
    uint64_t writebacks = 0; ///< Dirty lines written back.

    /** @return hits / accesses; 0 when no accesses. */
    double hitRate() const;

    /** Field-wise equality (used by the batched-vs-scalar tests). */
    bool operator==(const CacheStats &other) const = default;
};

/**
 * A single-level set-associative cache with true-LRU replacement and
 * write-back, write-allocate semantics.
 */
class CacheSim
{
  public:
    /**
     * Construct a cache.
     *
     * @param size_bytes Total capacity (must be a multiple of
     *                   line_bytes * assoc).
     * @param assoc Ways per set (>= 1).
     * @param line_bytes Line size, a power of two.
     */
    CacheSim(uint64_t size_bytes, unsigned assoc, unsigned line_bytes);

    /**
     * Perform one access (the scalar reference oracle).
     *
     * @param addr Byte address.
     * @param write True for a store (marks the line dirty).
     * @return True on hit.
     */
    bool access(uint64_t addr, bool write);

    /**
     * Replay trace entries [begin, end) through the cache.
     *
     * The batched path probes and updates the SoA arrays with a
     * branchless hit scan and single-pass victim selection; the
     * resulting statistics and cache state are bit-identical to
     * calling access() once per entry.
     *
     * @param trace Recorded access stream.
     * @param begin First trace index to replay.
     * @param end One past the last trace index to replay.
     */
    void accessBlock(const AccessTrace &trace, std::size_t begin,
                     std::size_t end);

    /** Reset contents and statistics. */
    void reset();

    /** @return Accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** @return Number of sets. */
    uint64_t numSets() const { return sets; }

    /** @return Capacity in bytes. */
    uint64_t sizeBytes() const { return size; }

    /** @return Ways per set. */
    unsigned assocWays() const { return assoc; }

    /** @return Line size in bytes. */
    unsigned lineSize() const { return lineBytes; }

  private:
    uint64_t size;
    unsigned assoc;
    unsigned lineBytes;
    unsigned lineShift;
    uint64_t sets;

    // Structure-of-arrays line storage, indexed set * assoc + way.
    std::vector<uint64_t> tags;
    std::vector<uint64_t> lastUse; ///< 0 for invalid lines.
    std::vector<uint8_t> flags;    ///< Bit 0: valid, bit 1: dirty.

    static constexpr uint8_t kValid = 1;
    static constexpr uint8_t kDirty = 2;

    uint64_t useClock = 0;
    CacheStats stats_;
};

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_CACHE_SIM_HH
