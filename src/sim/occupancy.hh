/**
 * @file
 * Wavefront occupancy math: how much of the machine a kernel's
 * parallelism can actually keep busy. Small launches (short sequence
 * lengths, small GEMM tiles) cannot fill 64 CUs -- the effect behind
 * the CU-count sensitivity curves in Figs 13 and 14.
 */

#ifndef SEQPOINT_SIM_OCCUPANCY_HH
#define SEQPOINT_SIM_OCCUPANCY_HH

#include "sim/gpu_config.hh"
#include "sim/kernel.hh"

namespace seqpoint {
namespace sim {

/** Occupancy assessment for one kernel launch on one device. */
struct Occupancy {
    double waves = 0.0;        ///< Wavefronts in the launch grid.
    double activeCus = 0.0;    ///< CUs with at least one wave.
    double utilization = 0.0;  ///< Fraction of peak lanes usable [0,1].
};

/**
 * Compute the occupancy of a launch.
 *
 * Utilization combines two effects: (a) fewer waves than SIMDs leaves
 * lanes idle, and (b) too few waves per SIMD cannot hide pipeline
 * latency, modelled as a saturating ramp up to `latencyHideWaves`
 * waves per SIMD.
 *
 * @param desc Kernel descriptor (workItems drives the wave count).
 * @param cfg Device configuration.
 */
Occupancy computeOccupancy(const KernelDesc &desc, const GpuConfig &cfg);

/** Waves per SIMD needed to hide ALU + memory latency. */
constexpr double latencyHideWaves = 8.0;

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_OCCUPANCY_HH
