/**
 * @file
 * Gpu facade implementation.
 */

#include "sim/gpu.hh"

namespace seqpoint {
namespace sim {

Gpu::Gpu(GpuConfig config, bool enable_timing_cache)
    : cfg(std::move(config)), cacheEnabled(enable_timing_cache)
{
}

KernelRecord
Gpu::execute(const KernelDesc &desc) const
{
    KernelTiming kt = cacheEnabled ? cache.lookup(desc, cfg)
                                   : timeKernel(desc, cfg);

    KernelRecord rec;
    rec.name = desc.name;
    rec.klass = desc.klass;
    rec.launches = desc.repeat;
    rec.timeSec = kt.timeSec;
    rec.memoryBound = kt.memoryBound;
    rec.counters = kt.counters;
    if (desc.repeat != 1) {
        double r = static_cast<double>(desc.repeat);
        rec.timeSec *= r;
        rec.counters *= r;
    }
    return rec;
}

void
Gpu::accumulate(const KernelDesc &desc, ExecutionResult &result) const
{
    KernelTiming kt = cacheEnabled ? cache.lookup(desc, cfg)
                                   : timeKernel(desc, cfg);

    // Mirror execute()'s arithmetic exactly (scale, then add) so the
    // aggregates are bit-identical to the record-keeping path.
    double time = kt.timeSec;
    PerfCounters counters = kt.counters;
    if (desc.repeat != 1) {
        double r = static_cast<double>(desc.repeat);
        time *= r;
        counters *= r;
    }
    result.totalSec += time;
    result.counters += counters;
    result.launches += desc.repeat;
    result.classSec[static_cast<unsigned>(desc.klass)] += time;
}

ExecutionResult
Gpu::executeAll(const std::vector<KernelDesc> &kernels,
                bool keep_records) const
{
    ExecutionResult result;
    if (!keep_records) {
        for (const KernelDesc &desc : kernels)
            accumulate(desc, result);
        return result;
    }

    result.records.reserve(kernels.size());
    for (const KernelDesc &desc : kernels) {
        KernelRecord rec = execute(desc);
        result.totalSec += rec.timeSec;
        result.counters += rec.counters;
        result.launches += rec.launches;
        result.classSec[static_cast<unsigned>(rec.klass)] += rec.timeSec;
        result.records.push_back(std::move(rec));
    }
    return result;
}

} // namespace sim
} // namespace seqpoint
