/**
 * @file
 * Analytical cache model: converts a kernel's working set and intrinsic
 * reuse into L1/L2 hit fractions for a given device. The parametric
 * form is validated against the set-associative cache simulator
 * (sim/cache_sim.hh) in the test suite and the cache ablation bench.
 */

#ifndef SEQPOINT_SIM_CACHE_MODEL_HH
#define SEQPOINT_SIM_CACHE_MODEL_HH

#include "sim/gpu_config.hh"
#include "sim/kernel.hh"

namespace seqpoint {
namespace sim {

/** Where each loaded byte was served from. */
struct MemoryBreakdown {
    double l1Bytes = 0.0;   ///< Bytes served by L1 hits.
    double l2Bytes = 0.0;   ///< Bytes served by L2 hits.
    double dramBytes = 0.0; ///< Bytes served by DRAM.
    double l1HitRate = 0.0; ///< L1 hit fraction of all requests.
    double l2HitRate = 0.0; ///< L2 hit fraction of L1 misses.
};

/**
 * Capacity-limited hit fraction.
 *
 * Intrinsic reuse `reuse_max` is achieved while the working set fits;
 * beyond capacity the hit rate decays as (capacity / working_set)^p,
 * the standard power-law capacity model.
 *
 * @param reuse_max Hit fraction with infinite capacity, in [0, 1].
 * @param working_set Kernel working set in bytes.
 * @param capacity Cache capacity in bytes (0 means no cache).
 * @param p Decay exponent (~0.5 matches the cache simulator).
 * @return Hit fraction in [0, reuse_max].
 */
double capacityHitFraction(double reuse_max, double working_set,
                           double capacity, double p = 0.5);

/**
 * Evaluate the full L1 -> L2 -> DRAM breakdown for a kernel's loads.
 *
 * Stores are modelled write-through/streaming: they bypass L1, may
 * coalesce in L2 (half of the L2 load reuse), and otherwise drain to
 * DRAM. The returned breakdown covers loads and stores combined.
 *
 * @param desc Kernel descriptor.
 * @param cfg Device configuration.
 */
MemoryBreakdown evalMemoryBreakdown(const KernelDesc &desc,
                                    const GpuConfig &cfg);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_CACHE_MODEL_HH
