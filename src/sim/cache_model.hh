/**
 * @file
 * Analytical cache model: converts a kernel's working set and intrinsic
 * reuse into L1/L2 hit fractions for a given device. The parametric
 * form is validated against the set-associative cache simulator
 * (sim/cache_sim.hh) in the test suite and the cache ablation bench.
 */

#ifndef SEQPOINT_SIM_CACHE_MODEL_HH
#define SEQPOINT_SIM_CACHE_MODEL_HH

#include "sim/access_gen.hh"
#include "sim/cache_sim.hh"
#include "sim/gpu_config.hh"
#include "sim/kernel.hh"

namespace seqpoint {
namespace sim {

/** Where each loaded byte was served from. */
struct MemoryBreakdown {
    double l1Bytes = 0.0;   ///< Bytes served by L1 hits.
    double l2Bytes = 0.0;   ///< Bytes served by L2 hits.
    double dramBytes = 0.0; ///< Bytes served by DRAM.
    double l1HitRate = 0.0; ///< L1 hit fraction of all requests.
    double l2HitRate = 0.0; ///< L2 hit fraction of L1 misses.
};

/**
 * Capacity-limited hit fraction.
 *
 * Intrinsic reuse `reuse_max` is achieved while the working set fits;
 * beyond capacity the hit rate decays as (capacity / working_set)^p,
 * the standard power-law capacity model.
 *
 * @param reuse_max Hit fraction with infinite capacity, in [0, 1].
 * @param working_set Kernel working set in bytes.
 * @param capacity Cache capacity in bytes (0 means no cache).
 * @param p Decay exponent (~0.5 matches the cache simulator).
 * @return Hit fraction in [0, reuse_max].
 */
double capacityHitFraction(double reuse_max, double working_set,
                           double capacity, double p = 0.5);

/**
 * Evaluate the full L1 -> L2 -> DRAM breakdown for a kernel's loads.
 *
 * Stores are modelled write-through/streaming: they bypass L1, may
 * coalesce in L2 (half of the L2 load reuse), and otherwise drain to
 * DRAM. The returned breakdown covers loads and stores combined.
 *
 * @param desc Kernel descriptor.
 * @param cfg Device configuration.
 */
MemoryBreakdown evalMemoryBreakdown(const KernelDesc &desc,
                                    const GpuConfig &cfg);

/**
 * Whether the closed-form streaming account applies to a segment on
 * a cache with the given line size.
 *
 * Applicability requires line addresses that advance by a constant
 * number of lines: stride <= line (consecutive lines) or stride an
 * exact multiple of the line size (arithmetic line sequence). Other
 * strides straddle lines unevenly and must be simulated.
 *
 * @param seg Detected streaming segment.
 * @param line_bytes Cache line size.
 */
bool analyticStreamApplicable(const StrideSegment &seg,
                              unsigned line_bytes);

/**
 * Closed-form cache statistics for a pure streaming segment on a
 * cold (reset) set-associative LRU cache.
 *
 * Because line addresses are non-decreasing and each line's accesses
 * are consecutive, hits are exactly accesses minus distinct lines,
 * and evictions follow from the per-set line counts -- no per-address
 * simulation. The result is bit-identical to the scalar oracle
 * whenever analyticStreamApplicable() holds.
 *
 * @param seg Detected streaming segment (must be applicable).
 * @param sets Number of cache sets.
 * @param assoc Ways per set.
 * @param line_bytes Cache line size.
 */
CacheStats analyticStreamStats(const StrideSegment &seg, uint64_t sets,
                               unsigned assoc, unsigned line_bytes);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_CACHE_MODEL_HH
