/**
 * @file
 * Analytical cache model: converts a kernel's working set and intrinsic
 * reuse into L1/L2 hit fractions for a given device. The parametric
 * form is validated against the set-associative cache simulator
 * (sim/cache_sim.hh) in the test suite and the cache ablation bench.
 *
 * Also hosts the piecewise-analytic replay engine: a SegmentList
 * (access_gen.hh) replays segment by segment down a tier ladder --
 * closed form while the run's touched sets are still cold
 * (CacheSim::applyColdStream), closed form when its whole line set
 * is resident (CacheSim::applyWarmStream), and line-run granularity
 * for everything else (CacheSim::accessSegment). Per-set occupancy
 * and residency-summary state carries across segments inside the
 * CacheSim, so the composition is bit-identical to the scalar
 * access() oracle on the expanded stream; per-tier engagement
 * counters ride along in CacheStats::tiers.
 */

#ifndef SEQPOINT_SIM_CACHE_MODEL_HH
#define SEQPOINT_SIM_CACHE_MODEL_HH

#include "sim/access_gen.hh"
#include "sim/cache_sim.hh"
#include "sim/gpu_config.hh"
#include "sim/kernel.hh"

namespace seqpoint {
namespace sim {

/** Where each loaded byte was served from. */
struct MemoryBreakdown {
    double l1Bytes = 0.0;   ///< Bytes served by L1 hits.
    double l2Bytes = 0.0;   ///< Bytes served by L2 hits.
    double dramBytes = 0.0; ///< Bytes served by DRAM.
    double l1HitRate = 0.0; ///< L1 hit fraction of all requests.
    double l2HitRate = 0.0; ///< L2 hit fraction of L1 misses.
};

/**
 * Capacity-limited hit fraction.
 *
 * Intrinsic reuse `reuse_max` is achieved while the working set fits;
 * beyond capacity the hit rate decays as (capacity / working_set)^p,
 * the standard power-law capacity model.
 *
 * @param reuse_max Hit fraction with infinite capacity, in [0, 1].
 * @param working_set Kernel working set in bytes.
 * @param capacity Cache capacity in bytes (0 means no cache).
 * @param p Decay exponent (~0.5 matches the cache simulator).
 * @return Hit fraction in [0, reuse_max].
 */
double capacityHitFraction(double reuse_max, double working_set,
                           double capacity, double p = 0.5);

/**
 * Evaluate the full L1 -> L2 -> DRAM breakdown for a kernel's loads.
 *
 * Stores are modelled write-through/streaming: they bypass L1, may
 * coalesce in L2 (half of the L2 load reuse), and otherwise drain to
 * DRAM. The returned breakdown covers loads and stores combined.
 *
 * @param desc Kernel descriptor.
 * @param cfg Device configuration.
 */
MemoryBreakdown evalMemoryBreakdown(const KernelDesc &desc,
                                    const GpuConfig &cfg);

/**
 * Whether the closed-form streaming account applies to a segment on
 * a cache with the given line size.
 *
 * Applicability requires a non-negative stride whose line addresses
 * advance by a constant number of lines: stride <= line (consecutive
 * lines, including line-straddling sub-line strides and stride 0)
 * or stride an exact multiple of the line size (arithmetic line
 * sequence). Negative strides and other line-straddling strides must
 * be replayed (CacheSim::accessSegment handles them exactly).
 *
 * @param seg Candidate segment.
 * @param line_bytes Cache line size.
 */
bool analyticStreamApplicable(const SegDesc &seg, unsigned line_bytes);

/**
 * Line-address shape of an applicable streaming segment: the run
 * visits `distinct` lines starting at `firstLine`, stepping `q`
 * lines per distinct line, landing on sets with period `period`
 * (each touched set is visited once per period).
 */
struct StreamShape {
    uint64_t firstLine = 0; ///< First line address.
    uint64_t q = 0;         ///< Line step between distinct lines.
    uint64_t distinct = 0;  ///< Distinct lines touched.
    uint64_t period = 0;    ///< Touched-set cycle length.
};

/**
 * Compute the line-address shape of an applicable segment.
 *
 * @param seg Applicable segment (panics otherwise).
 * @param sets Number of cache sets.
 * @param line_bytes Cache line size.
 */
StreamShape streamShape(const SegDesc &seg, uint64_t sets,
                        unsigned line_bytes);

/**
 * Closed-form cache statistics for a streaming segment whose touched
 * sets are all empty (in particular, any applicable segment on a
 * cold cache).
 *
 * Because line addresses are non-decreasing and each line's accesses
 * are consecutive, hits are exactly accesses minus distinct lines,
 * and evictions follow from the per-set line counts -- no per-address
 * simulation. The result is bit-identical to the scalar oracle
 * whenever analyticStreamApplicable() holds and the touched sets are
 * cold.
 *
 * @param seg Applicable segment (panics otherwise).
 * @param sets Number of cache sets.
 * @param assoc Ways per set.
 * @param line_bytes Cache line size.
 */
CacheStats analyticStreamStats(const SegDesc &seg, uint64_t sets,
                               unsigned assoc, unsigned line_bytes);

/**
 * analyticStreamStats() with the segment's precomputed line shape
 * (the replay ladder computes the shape once per segment and shares
 * it between the tier tests and the accounting).
 *
 * @param seg Applicable segment.
 * @param sh streamShape(seg, sets, line_bytes) of the target cache.
 * @param assoc Ways per set.
 */
CacheStats analyticStreamStatsShaped(const SegDesc &seg,
                                     const StreamShape &sh,
                                     unsigned assoc);

/**
 * Replay-engine knobs. The defaults give the full tier ladder; the
 * bench pins tiers off to measure what each one buys. Tier choice
 * never changes statistics or state -- only speed and the
 * CacheStats::tiers accounting.
 */
struct ReplayOptions {
    bool warmTier = true; ///< Engage the warm-set closed form.
};

/**
 * Piecewise-analytic replay of a segment list on the cache's current
 * state (composition entry point: call repeatedly to replay a stream
 * in chunks). Each segment descends the tier ladder: accounted in
 * closed form when every set it touches is still empty, in closed
 * form when its whole line set is resident, and replayed at line-run
 * granularity otherwise; statistics and final cache state are
 * bit-identical to the scalar oracle on the expanded stream.
 *
 * @param cache Cache to exercise (current state is the start state).
 * @param list Segment descriptors to replay.
 */
void replaySegmentsResume(CacheSim &cache, const SegmentList &list);

/** replaySegmentsResume() with explicit engine options. */
void replaySegmentsResume(CacheSim &cache, const SegmentList &list,
                          const ReplayOptions &opts);

/**
 * Piecewise-analytic replay of a segment list on a reset cache.
 *
 * @param cache Cache to exercise (reset first).
 * @param list Segment descriptors to replay.
 * @return Statistics of the full replay.
 */
CacheStats replaySegments(CacheSim &cache, const SegmentList &list);

/**
 * Hit rate of a segment list on a reset cache via the piecewise
 * engine (the segment-descriptor counterpart of measureHitRate()).
 *
 * @param cache Cache to exercise (reset first).
 * @param list Segment descriptors to replay.
 * @return Hit rate observed over the whole stream.
 */
double measureHitRateSegments(CacheSim &cache, const SegmentList &list);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_CACHE_MODEL_HH
