/**
 * @file
 * Compute model implementation.
 */

#include "sim/compute_model.hh"

#include <algorithm>

namespace seqpoint {
namespace sim {

double
classComputeEfficiency(KernelClass klass)
{
    switch (klass) {
      case KernelClass::Gemm: return 0.72;
      case KernelClass::Elementwise: return 0.30;
      case KernelClass::Reduction: return 0.25;
      case KernelClass::Softmax: return 0.22;
      case KernelClass::BatchNorm: return 0.25;
      case KernelClass::Embedding: return 0.10;
      case KernelClass::Transpose: return 0.15;
      case KernelClass::Memcpy: return 0.50;
      case KernelClass::Scalar: return 0.02;
    }
    return 0.2;
}

namespace {

/** Instruction overhead multiplier (address math, predication). */
double
classInstOverhead(KernelClass klass)
{
    switch (klass) {
      case KernelClass::Gemm: return 1.15;
      case KernelClass::Elementwise: return 1.6;
      case KernelClass::Reduction: return 1.8;
      case KernelClass::Softmax: return 1.8;
      case KernelClass::BatchNorm: return 1.7;
      case KernelClass::Embedding: return 2.5;
      case KernelClass::Transpose: return 2.0;
      case KernelClass::Memcpy: return 1.2;
      case KernelClass::Scalar: return 4.0;
    }
    return 1.5;
}

} // anonymous namespace

ComputeEstimate
estimateCompute(const KernelDesc &desc, const Occupancy &occ,
                const GpuConfig &cfg)
{
    ComputeEstimate est;

    double lanes = static_cast<double>(cfg.totalLanes());
    double overhead = classInstOverhead(desc.klass);

    // GEMMs retire FMAs (2 FLOPs per lane-op); other classes mostly
    // single-op instructions.
    double flops_per_laneop = (desc.klass == KernelClass::Gemm) ? 2.0 : 1.0;
    double lane_ops = desc.flops / flops_per_laneop;

    // A VALU instruction drives a full wavefront of lanes.
    est.valuInsts = lane_ops * overhead /
        static_cast<double>(cfg.waveSize);
    // Memcpy-style kernels still issue load/store instructions.
    if (desc.flops == 0.0 && desc.totalBytes() > 0.0) {
        est.valuInsts = desc.totalBytes() / 4.0 /
            static_cast<double>(cfg.waveSize);
    }
    est.saluInsts = est.valuInsts * 0.25;

    est.efficiency = classComputeEfficiency(desc.klass) *
        desc.effScale * occ.utilization;

    double usable_flops = 2.0 * lanes * cfg.gclkHz * est.efficiency;
    double effective_flops = std::max(desc.flops,
        desc.totalBytes() * 0.25); // instruction floor for copy kernels
    est.timeSec = effective_flops / usable_flops;
    return est;
}

} // namespace sim
} // namespace seqpoint
