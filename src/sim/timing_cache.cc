/**
 * @file
 * Kernel-timing cache implementation.
 */

#include "sim/timing_cache.hh"

#include <cstring>
#include <functional>

#include "common/logging.hh"

namespace seqpoint {
namespace sim {

KernelSignature
kernelSignature(const KernelDesc &desc)
{
    KernelSignature sig;
    sig.klass = desc.klass;
    sig.flops = desc.flops;
    sig.bytesIn = desc.bytesIn;
    sig.bytesOut = desc.bytesOut;
    sig.workingSetL1 = desc.workingSetL1;
    sig.workingSetL2 = desc.workingSetL2;
    sig.workItems = desc.workItems;
    sig.gemmM = desc.gemmM;
    sig.gemmN = desc.gemmN;
    sig.gemmK = desc.gemmK;
    sig.effScale = desc.effScale;
    sig.reuseL1 = desc.reuseL1;
    sig.reuseL2 = desc.reuseL2;
    return sig;
}

namespace {

/** Boost-style hash combine. */
inline void
hashCombine(std::size_t &seed, std::size_t v)
{
    seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/**
 * Hash a double by bit pattern. -0.0 is normalised to +0.0 first:
 * the signature's defaulted operator== treats them as equal, so they
 * must hash equally too.
 */
inline std::size_t
hashDouble(double d)
{
    if (d == 0.0)
        d = 0.0;
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return std::hash<uint64_t>{}(bits);
}

} // anonymous namespace

std::size_t
KernelSignatureHash::operator()(const KernelSignature &sig) const
{
    std::size_t seed =
        std::hash<unsigned>{}(static_cast<unsigned>(sig.klass));
    hashCombine(seed, hashDouble(sig.flops));
    hashCombine(seed, hashDouble(sig.bytesIn));
    hashCombine(seed, hashDouble(sig.bytesOut));
    hashCombine(seed, hashDouble(sig.workingSetL1));
    hashCombine(seed, hashDouble(sig.workingSetL2));
    hashCombine(seed, hashDouble(sig.workItems));
    hashCombine(seed, std::hash<int64_t>{}(sig.gemmM));
    hashCombine(seed, std::hash<int64_t>{}(sig.gemmN));
    hashCombine(seed, std::hash<int64_t>{}(sig.gemmK));
    hashCombine(seed, hashDouble(sig.effScale));
    hashCombine(seed, hashDouble(sig.reuseL1));
    hashCombine(seed, hashDouble(sig.reuseL2));
    return seed;
}

KernelTiming
KernelTimingCache::lookup(const KernelDesc &desc, const GpuConfig &cfg)
{
    KernelSignature sig = kernelSignature(desc);

    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = entries.find(sig);
        if (it != entries.end()) {
            ++stats_.hits;
            return it->second;
        }
    }

    // Run the timing model outside the lock: concurrent misses on the
    // same signature compute the same pure-function result, so the
    // duplicated work is harmless and bounded by the thread count.
    KernelTiming kt = timeKernel(desc, cfg);

    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = entries.emplace(sig, kt);
    (void)inserted;
    ++stats_.misses;
    return it->second;
}

std::vector<TimingCacheEntry>
KernelTimingCache::snapshotEntries() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<TimingCacheEntry> out;
    out.reserve(entries.size());
    for (const auto &[sig, timing] : entries)
        out.push_back(TimingCacheEntry{sig, timing});
    return out;
}

void
KernelTimingCache::seed(const std::vector<TimingCacheEntry> &seeded)
{
    std::lock_guard<std::mutex> lock(mu);
    for (const TimingCacheEntry &e : seeded)
        entries.emplace(e.sig, e.timing);
}

TimingCacheStats
KernelTimingCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return stats_;
}

std::size_t
KernelTimingCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

void
encodeTimingCacheEntry(ByteWriter &w, const TimingCacheEntry &e)
{
    w.u32(static_cast<uint32_t>(e.sig.klass));
    w.f64(e.sig.flops);
    w.f64(e.sig.bytesIn);
    w.f64(e.sig.bytesOut);
    w.f64(e.sig.workingSetL1);
    w.f64(e.sig.workingSetL2);
    w.f64(e.sig.workItems);
    w.i64(e.sig.gemmM);
    w.i64(e.sig.gemmN);
    w.i64(e.sig.gemmK);
    w.f64(e.sig.effScale);
    w.f64(e.sig.reuseL1);
    w.f64(e.sig.reuseL2);
    w.f64(e.timing.timeSec);
    w.f64(e.timing.computeSec);
    w.f64(e.timing.memorySec);
    w.b(e.timing.memoryBound);
    encodeCounters(w, e.timing.counters);
}

TimingCacheEntry
decodeTimingCacheEntry(ByteReader &r)
{
    TimingCacheEntry e;
    uint32_t klass = r.u32();
    fatal_if(klass >= numKernelClasses,
             "%s: invalid kernel class %u in timing-cache entry",
             r.what().c_str(), klass);
    e.sig.klass = static_cast<KernelClass>(klass);
    e.sig.flops = r.f64();
    e.sig.bytesIn = r.f64();
    e.sig.bytesOut = r.f64();
    e.sig.workingSetL1 = r.f64();
    e.sig.workingSetL2 = r.f64();
    e.sig.workItems = r.f64();
    e.sig.gemmM = r.i64();
    e.sig.gemmN = r.i64();
    e.sig.gemmK = r.i64();
    e.sig.effScale = r.f64();
    e.sig.reuseL1 = r.f64();
    e.sig.reuseL2 = r.f64();
    e.timing.timeSec = r.f64();
    e.timing.computeSec = r.f64();
    e.timing.memorySec = r.f64();
    e.timing.memoryBound = r.b();
    e.timing.counters = decodeCounters(r);
    return e;
}

void
KernelTimingCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
    stats_ = TimingCacheStats{};
}

} // namespace sim
} // namespace seqpoint
