/**
 * @file
 * Kernel-timing cache implementation.
 */

#include "sim/timing_cache.hh"

#include <algorithm>
#include <cstring>
#include <functional>
#include <tuple>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace seqpoint {
namespace sim {

KernelSignature
kernelSignature(const KernelDesc &desc)
{
    KernelSignature sig;
    sig.klass = desc.klass;
    sig.flops = desc.flops;
    sig.bytesIn = desc.bytesIn;
    sig.bytesOut = desc.bytesOut;
    sig.workingSetL1 = desc.workingSetL1;
    sig.workingSetL2 = desc.workingSetL2;
    sig.workItems = desc.workItems;
    sig.gemmM = desc.gemmM;
    sig.gemmN = desc.gemmN;
    sig.gemmK = desc.gemmK;
    sig.effScale = desc.effScale;
    sig.reuseL1 = desc.reuseL1;
    sig.reuseL2 = desc.reuseL2;
    return sig;
}

namespace {

/** Boost-style hash combine. */
inline void
hashCombine(std::size_t &seed, std::size_t v)
{
    seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/**
 * Hash a double by bit pattern. -0.0 is normalised to +0.0 first:
 * the signature's defaulted operator== treats them as equal, so they
 * must hash equally too.
 */
inline std::size_t
hashDouble(double d)
{
    if (d == 0.0)
        d = 0.0;
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return std::hash<uint64_t>{}(bits);
}

} // anonymous namespace

std::size_t
KernelSignatureHash::operator()(const KernelSignature &sig) const
{
    std::size_t seed =
        std::hash<unsigned>{}(static_cast<unsigned>(sig.klass));
    hashCombine(seed, hashDouble(sig.flops));
    hashCombine(seed, hashDouble(sig.bytesIn));
    hashCombine(seed, hashDouble(sig.bytesOut));
    hashCombine(seed, hashDouble(sig.workingSetL1));
    hashCombine(seed, hashDouble(sig.workingSetL2));
    hashCombine(seed, hashDouble(sig.workItems));
    hashCombine(seed, std::hash<int64_t>{}(sig.gemmM));
    hashCombine(seed, std::hash<int64_t>{}(sig.gemmN));
    hashCombine(seed, std::hash<int64_t>{}(sig.gemmK));
    hashCombine(seed, hashDouble(sig.effScale));
    hashCombine(seed, hashDouble(sig.reuseL1));
    hashCombine(seed, hashDouble(sig.reuseL2));
    return seed;
}

KernelTiming
KernelTimingCache::lookup(const KernelDesc &desc, const GpuConfig &cfg)
{
    KernelSignature sig = kernelSignature(desc);

    {
        MutexLock lock(mu);
        auto it = entries.find(sig);
        if (it != entries.end()) {
            ++stats_.hits;
            return it->second;
        }
    }

    // Run the timing model outside the lock: concurrent misses on the
    // same signature compute the same pure-function result, so the
    // duplicated work is harmless and bounded by the thread count.
    KernelTiming kt = timeKernel(desc, cfg);

    MutexLock lock(mu);
    auto [it, inserted] = entries.emplace(sig, kt);
    (void)inserted;
    ++stats_.misses;
    return it->second;
}

std::vector<TimingCacheEntry>
KernelTimingCache::snapshotEntries() const
{
    MutexLock lock(mu);
    std::vector<TimingCacheEntry> out;
    out.reserve(entries.size());
    // Hash-order here is fine: every consumer that serialises or
    // exports these entries sorts them first (encodeTimingSection's
    // signatureLess pass). seqlint:canonical-order
    for (const auto &[sig, timing] : entries)
        out.push_back(TimingCacheEntry{sig, timing});
    return out;
}

void
KernelTimingCache::seed(const std::vector<TimingCacheEntry> &seeded)
{
    MutexLock lock(mu);
    for (const TimingCacheEntry &e : seeded)
        entries.emplace(e.sig, e.timing);
}

TimingCacheStats
KernelTimingCache::stats() const
{
    MutexLock lock(mu);
    return stats_;
}

std::size_t
KernelTimingCache::size() const
{
    MutexLock lock(mu);
    return entries.size();
}

void
encodeTimingCacheEntry(ByteWriter &w, const TimingCacheEntry &e)
{
    w.u32(static_cast<uint32_t>(e.sig.klass));
    w.f64(e.sig.flops);
    w.f64(e.sig.bytesIn);
    w.f64(e.sig.bytesOut);
    w.f64(e.sig.workingSetL1);
    w.f64(e.sig.workingSetL2);
    w.f64(e.sig.workItems);
    w.i64(e.sig.gemmM);
    w.i64(e.sig.gemmN);
    w.i64(e.sig.gemmK);
    w.f64(e.sig.effScale);
    w.f64(e.sig.reuseL1);
    w.f64(e.sig.reuseL2);
    w.f64(e.timing.timeSec);
    w.f64(e.timing.computeSec);
    w.f64(e.timing.memorySec);
    w.b(e.timing.memoryBound);
    encodeCounters(w, e.timing.counters);
}

TimingCacheEntry
decodeTimingCacheEntry(ByteReader &r)
{
    TimingCacheEntry e;
    uint32_t klass = r.u32();
    if (klass >= numKernelClasses) {
        r.fail(csprintf(
            "%s: invalid kernel class %u in timing-cache entry",
            r.what().c_str(), klass));
    }
    e.sig.klass = static_cast<KernelClass>(klass);
    e.sig.flops = r.f64();
    e.sig.bytesIn = r.f64();
    e.sig.bytesOut = r.f64();
    e.sig.workingSetL1 = r.f64();
    e.sig.workingSetL2 = r.f64();
    e.sig.workItems = r.f64();
    e.sig.gemmM = r.i64();
    e.sig.gemmN = r.i64();
    e.sig.gemmK = r.i64();
    e.sig.effScale = r.f64();
    e.sig.reuseL1 = r.f64();
    e.sig.reuseL2 = r.f64();
    e.timing.timeSec = r.f64();
    e.timing.computeSec = r.f64();
    e.timing.memorySec = r.f64();
    e.timing.memoryBound = r.b();
    e.timing.counters = decodeCounters(r);
    return e;
}

namespace {

/** Bit-pattern image of a double: a deterministic total order. */
inline uint64_t
orderBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

/**
 * Canonical signature order for the compact section: kernel class,
 * GEMM shape, then every descriptor double by bit pattern. The
 * signature fields are non-negative in practice, so bit-pattern
 * order matches value order while staying total (and deterministic)
 * for any input.
 */
bool
signatureLess(const TimingCacheEntry &a, const TimingCacheEntry &b)
{
    const KernelSignature &x = a.sig, &y = b.sig;
    auto key = [](const KernelSignature &s) {
        return std::tuple(static_cast<unsigned>(s.klass), s.gemmM,
                          s.gemmN, s.gemmK, orderBits(s.flops),
                          orderBits(s.bytesIn), orderBits(s.bytesOut),
                          orderBits(s.workingSetL1),
                          orderBits(s.workingSetL2),
                          orderBits(s.workItems),
                          orderBits(s.effScale), orderBits(s.reuseL1),
                          orderBits(s.reuseL2));
    };
    return key(x) < key(y);
}

} // anonymous namespace

void
encodeTimingSection(ByteWriter &w,
                    const std::vector<TimingCacheEntry> &entries)
{
    std::vector<const TimingCacheEntry *> order;
    order.reserve(entries.size());
    // seqlint:canonical-order -- `entries` is the caller's vector
    // (any order); the sort below canonicalises before encoding.
    for (const TimingCacheEntry &e : entries)
        order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const TimingCacheEntry *a, const TimingCacheEntry *b) {
                  return signatureLess(*a, *b);
              });

    w.u64(order.size());
    TimingCacheEntry prev; // zero deltas for the first entry
    for (const TimingCacheEntry *ep : order) {
        const TimingCacheEntry &e = *ep;
        w.u8(static_cast<uint8_t>(e.sig.klass));
        w.vi64(e.sig.gemmM - prev.sig.gemmM);
        w.vi64(e.sig.gemmN - prev.sig.gemmN);
        w.vi64(e.sig.gemmK - prev.sig.gemmK);
        w.f64Packed(e.sig.flops, prev.sig.flops);
        w.f64Packed(e.sig.bytesIn, prev.sig.bytesIn);
        w.f64Packed(e.sig.bytesOut, prev.sig.bytesOut);
        w.f64Packed(e.sig.workingSetL1, prev.sig.workingSetL1);
        w.f64Packed(e.sig.workingSetL2, prev.sig.workingSetL2);
        w.f64Packed(e.sig.workItems, prev.sig.workItems);
        w.f64Packed(e.sig.effScale, prev.sig.effScale);
        w.f64Packed(e.sig.reuseL1, prev.sig.reuseL1);
        w.f64Packed(e.sig.reuseL2, prev.sig.reuseL2);
        w.f64Packed(e.timing.timeSec, prev.timing.timeSec);
        w.f64Packed(e.timing.computeSec, prev.timing.computeSec);
        w.f64Packed(e.timing.memorySec, prev.timing.memorySec);
        w.b(e.timing.memoryBound);
        encodeCountersPacked(w, e.timing.counters,
                             prev.timing.counters);
        prev = e;
    }
}

std::vector<TimingCacheEntry>
decodeTimingSection(ByteReader &r)
{
    uint64_t n = r.u64();
    std::vector<TimingCacheEntry> out;
    // Bound the up-front allocation by what the payload could
    // possibly hold: an entry is at least 26 wire bytes (class byte,
    // three 1-byte varints, 22 tag bytes), so a crafted count can
    // never amplify a small file into a huge reserve -- it runs into
    // the reader's truncation fatal instead.
    out.reserve(static_cast<size_t>(
        std::min<uint64_t>(n, r.remaining() / 26)));
    TimingCacheEntry prev;
    for (uint64_t i = 0; i < n; ++i) {
        TimingCacheEntry e;
        uint8_t klass = r.u8();
        if (klass >= numKernelClasses) {
            r.fail(csprintf(
                "%s: invalid kernel class %u in timing section",
                r.what().c_str(), klass));
        }
        e.sig.klass = static_cast<KernelClass>(klass);
        // addWrap: corrupted deltas must not overflow into UB.
        e.sig.gemmM = addWrap(prev.sig.gemmM, r.vi64());
        e.sig.gemmN = addWrap(prev.sig.gemmN, r.vi64());
        e.sig.gemmK = addWrap(prev.sig.gemmK, r.vi64());
        e.sig.flops = r.f64Packed(prev.sig.flops);
        e.sig.bytesIn = r.f64Packed(prev.sig.bytesIn);
        e.sig.bytesOut = r.f64Packed(prev.sig.bytesOut);
        e.sig.workingSetL1 = r.f64Packed(prev.sig.workingSetL1);
        e.sig.workingSetL2 = r.f64Packed(prev.sig.workingSetL2);
        e.sig.workItems = r.f64Packed(prev.sig.workItems);
        e.sig.effScale = r.f64Packed(prev.sig.effScale);
        e.sig.reuseL1 = r.f64Packed(prev.sig.reuseL1);
        e.sig.reuseL2 = r.f64Packed(prev.sig.reuseL2);
        e.timing.timeSec = r.f64Packed(prev.timing.timeSec);
        e.timing.computeSec = r.f64Packed(prev.timing.computeSec);
        e.timing.memorySec = r.f64Packed(prev.timing.memorySec);
        e.timing.memoryBound = r.b();
        e.timing.counters =
            decodeCountersPacked(r, prev.timing.counters);
        out.push_back(e);
        prev = e;
    }
    return out;
}

void
KernelTimingCache::clear()
{
    MutexLock lock(mu);
    entries.clear();
    stats_ = TimingCacheStats{};
}

} // namespace sim
} // namespace seqpoint
