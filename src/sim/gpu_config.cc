/**
 * @file
 * GPU configuration implementation and Table II presets.
 */

#include "sim/gpu_config.hh"

#include "common/strutil.hh"

namespace seqpoint {
namespace sim {

double
GpuConfig::peakFlops() const
{
    // Each lane retires one FMA (2 FLOPs) per cycle at peak.
    return 2.0 * static_cast<double>(totalLanes()) * gclkHz;
}

unsigned
GpuConfig::totalLanes() const
{
    return numCus * simdsPerCu * lanesPerSimd;
}

double
GpuConfig::l1Bandwidth() const
{
    if (!hasL1())
        return 0.0;
    return l1BytesPerCycle * static_cast<double>(numCus) * gclkHz;
}

double
GpuConfig::l2Bandwidth() const
{
    if (!hasL2())
        return 0.0;
    return l2BytesPerCycle * gclkHz;
}

GpuConfig
GpuConfig::config1()
{
    GpuConfig cfg;
    cfg.name = "config#1";
    return cfg;
}

GpuConfig
GpuConfig::config2()
{
    GpuConfig cfg;
    cfg.name = "config#2";
    cfg.gclkHz = mhz(852.0);
    return cfg;
}

GpuConfig
GpuConfig::config3()
{
    GpuConfig cfg;
    cfg.name = "config#3";
    cfg.numCus = 16;
    return cfg;
}

GpuConfig
GpuConfig::config4()
{
    GpuConfig cfg;
    cfg.name = "config#4";
    cfg.l1SizeBytes = 0;
    return cfg;
}

GpuConfig
GpuConfig::config5()
{
    GpuConfig cfg;
    cfg.name = "config#5";
    cfg.l2SizeBytes = 0;
    return cfg;
}

std::string
GpuConfig::signature() const
{
    // %.17g round-trips every double; integral fields print exactly.
    return csprintf(
        "%s|%.17g|%u|%u|%u|%u|%u|%llu|%u|%llu|%u|%u|%.17g|%.17g|%.17g|"
        "%.17g|%.17g|%.17g",
        name.c_str(), gclkHz, numCus, simdsPerCu, lanesPerSimd,
        maxWavesPerCu, waveSize,
        static_cast<unsigned long long>(l1SizeBytes), l1Assoc,
        static_cast<unsigned long long>(l2SizeBytes), l2Assoc,
        lineBytes, l1BytesPerCycle, l2BytesPerCycle, dramBandwidth,
        dramEfficiency, launchOverheadSec, writeDrainFraction);
}

std::vector<GpuConfig>
GpuConfig::table2()
{
    return {config1(), config2(), config3(), config4(), config5()};
}

void
encodeGpuConfig(ByteWriter &w, const GpuConfig &cfg)
{
    w.str(cfg.name);
    w.f64(cfg.gclkHz);
    w.u32(cfg.numCus);
    w.u32(cfg.simdsPerCu);
    w.u32(cfg.lanesPerSimd);
    w.u32(cfg.maxWavesPerCu);
    w.u32(cfg.waveSize);
    w.u64(cfg.l1SizeBytes);
    w.u32(cfg.l1Assoc);
    w.u64(cfg.l2SizeBytes);
    w.u32(cfg.l2Assoc);
    w.u32(cfg.lineBytes);
    w.f64(cfg.l1BytesPerCycle);
    w.f64(cfg.l2BytesPerCycle);
    w.f64(cfg.dramBandwidth);
    w.f64(cfg.dramEfficiency);
    w.f64(cfg.launchOverheadSec);
    w.f64(cfg.writeDrainFraction);
}

GpuConfig
decodeGpuConfig(ByteReader &r)
{
    GpuConfig cfg;
    cfg.name = r.str();
    cfg.gclkHz = r.f64();
    cfg.numCus = r.u32();
    cfg.simdsPerCu = r.u32();
    cfg.lanesPerSimd = r.u32();
    cfg.maxWavesPerCu = r.u32();
    cfg.waveSize = r.u32();
    cfg.l1SizeBytes = r.u64();
    cfg.l1Assoc = r.u32();
    cfg.l2SizeBytes = r.u64();
    cfg.l2Assoc = r.u32();
    cfg.lineBytes = r.u32();
    cfg.l1BytesPerCycle = r.f64();
    cfg.l2BytesPerCycle = r.f64();
    cfg.dramBandwidth = r.f64();
    cfg.dramEfficiency = r.f64();
    cfg.launchOverheadSec = r.f64();
    cfg.writeDrainFraction = r.f64();
    return cfg;
}

} // namespace sim
} // namespace seqpoint
