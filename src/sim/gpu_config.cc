/**
 * @file
 * GPU configuration implementation and Table II presets.
 */

#include "sim/gpu_config.hh"

namespace seqpoint {
namespace sim {

double
GpuConfig::peakFlops() const
{
    // Each lane retires one FMA (2 FLOPs) per cycle at peak.
    return 2.0 * static_cast<double>(totalLanes()) * gclkHz;
}

unsigned
GpuConfig::totalLanes() const
{
    return numCus * simdsPerCu * lanesPerSimd;
}

double
GpuConfig::l1Bandwidth() const
{
    if (!hasL1())
        return 0.0;
    return l1BytesPerCycle * static_cast<double>(numCus) * gclkHz;
}

double
GpuConfig::l2Bandwidth() const
{
    if (!hasL2())
        return 0.0;
    return l2BytesPerCycle * gclkHz;
}

GpuConfig
GpuConfig::config1()
{
    GpuConfig cfg;
    cfg.name = "config#1";
    return cfg;
}

GpuConfig
GpuConfig::config2()
{
    GpuConfig cfg;
    cfg.name = "config#2";
    cfg.gclkHz = mhz(852.0);
    return cfg;
}

GpuConfig
GpuConfig::config3()
{
    GpuConfig cfg;
    cfg.name = "config#3";
    cfg.numCus = 16;
    return cfg;
}

GpuConfig
GpuConfig::config4()
{
    GpuConfig cfg;
    cfg.name = "config#4";
    cfg.l1SizeBytes = 0;
    return cfg;
}

GpuConfig
GpuConfig::config5()
{
    GpuConfig cfg;
    cfg.name = "config#5";
    cfg.l2SizeBytes = 0;
    return cfg;
}

std::vector<GpuConfig>
GpuConfig::table2()
{
    return {config1(), config2(), config3(), config4(), config5()};
}

} // namespace sim
} // namespace seqpoint
