/**
 * @file
 * Kernel-timing cache: the paper's unique-kernel observation (Fig 5)
 * applied to the simulator itself. A training run launches millions
 * of kernels but only a small set of *unique* ones, so each unique
 * kernel needs to be timed once per device configuration. The cache
 * keys on a canonical kernel signature -- operation class, GEMM
 * dimensions and every descriptor field the timing model reads --
 * and replays the stored KernelTiming for every later launch with
 * the same signature.
 */

#ifndef SEQPOINT_SIM_TIMING_CACHE_HH
#define SEQPOINT_SIM_TIMING_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytestream.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"
#include "sim/kernel.hh"
#include "sim/timing_model.hh"

namespace seqpoint {
namespace sim {

/**
 * Canonical kernel signature: exactly the KernelDesc fields the
 * timing model depends on. The mangled name and the repeat count are
 * deliberately excluded -- two launches that agree on this key time
 * identically per launch, whatever they are called and however many
 * times they run back-to-back.
 */
struct KernelSignature {
    KernelClass klass = KernelClass::Elementwise; ///< Operation class.
    double flops = 0.0;        ///< Total FLOPs.
    double bytesIn = 0.0;      ///< Load request volume.
    double bytesOut = 0.0;     ///< Store request volume.
    double workingSetL1 = 0.0; ///< Per-CU hot set.
    double workingSetL2 = 0.0; ///< Chip-wide hot set.
    double workItems = 0.0;    ///< Launch-grid size.
    int64_t gemmM = 0;         ///< GEMM M (0 for non-GEMM).
    int64_t gemmN = 0;         ///< GEMM N.
    int64_t gemmK = 0;         ///< GEMM K.
    double effScale = 1.0;     ///< Variant efficiency scale.
    double reuseL1 = 0.0;      ///< Intrinsic L1 reuse.
    double reuseL2 = 0.0;      ///< Intrinsic L2 reuse.

    /** Field-wise equality. */
    bool operator==(const KernelSignature &other) const = default;
};

/** @return The canonical signature of a kernel descriptor. */
KernelSignature kernelSignature(const KernelDesc &desc);

/** Hash functor over the signature's bit patterns. */
struct KernelSignatureHash {
    /** @return Combined hash of all signature fields. */
    std::size_t operator()(const KernelSignature &sig) const;
};

/** Hit/miss accounting for one cache instance. */
struct TimingCacheStats {
    uint64_t hits = 0;   ///< Lookups served from the cache.
    uint64_t misses = 0; ///< Lookups that ran the timing model.

    /** @return Total lookups. */
    uint64_t lookups() const { return hits + misses; }

    /** @return hits / lookups, 0 when empty. */
    double hitRate() const
    {
        uint64_t n = lookups();
        return n ? static_cast<double>(hits) / static_cast<double>(n)
                 : 0.0;
    }
};

/**
 * One frozen cache entry, exported for cross-instance sharing (the
 * harness's ModelSnapshot hands a sweep's cold-start timings to every
 * scheduler cell evaluating the same configuration).
 */
struct TimingCacheEntry {
    KernelSignature sig; ///< Canonical signature key.
    KernelTiming timing; ///< Memoized per-launch timing.
};

/**
 * Serialize one frozen cache entry (snapshot store). All doubles are
 * written as IEEE-754 bit patterns, so decode is bit-identical and
 * a seeded cache serves exactly the timings the donor computed.
 */
void encodeTimingCacheEntry(ByteWriter &w, const TimingCacheEntry &e);

/**
 * Decode an entry written by encodeTimingCacheEntry(). An
 * out-of-range kernel class is a fatal error (corrupted artifact).
 */
TimingCacheEntry decodeTimingCacheEntry(ByteReader &r);

/**
 * Serialize a whole timing-cache section compactly (snapshot store,
 * where these entries are ~95% of the bytes). Entries are sorted
 * into a canonical signature order -- making the section independent
 * of hash-map iteration order -- and every field is delta-coded
 * against its neighbour through the packed varint forms
 * (bytestream.hh): adjacent signatures share most of their fields,
 * and simulator statistics are overwhelmingly exact integers, so the
 * section shrinks to a fraction of the fixed-width encoding while
 * staying bit-exact.
 *
 * @param w Destination stream.
 * @param entries Entries to serialize (order irrelevant).
 */
void encodeTimingSection(ByteWriter &w,
                         const std::vector<TimingCacheEntry> &entries);

/**
 * Decode a section written by encodeTimingSection(). Entries come
 * back in the canonical order; any structural problem is fatal.
 */
std::vector<TimingCacheEntry> decodeTimingSection(ByteReader &r);

/**
 * Signature -> KernelTiming memo for one device configuration.
 *
 * Thread-safe: lookups from concurrent profiling tasks serialise on an
 * internal mutex. Because timeKernel() is a pure function of
 * (signature, config), cached results are bit-identical to fresh
 * computation no matter which thread populated the entry.
 */
class KernelTimingCache
{
  public:
    /**
     * Time a kernel through the cache.
     *
     * @param desc Kernel descriptor.
     * @param cfg Device configuration (must be the same object/value
     *            for every call on this cache instance).
     * @return Per-launch timing, computed at most once per signature.
     */
    KernelTiming lookup(const KernelDesc &desc, const GpuConfig &cfg);

    /** @return Hit/miss counts so far. */
    TimingCacheStats stats() const;

    /** @return A copy of every cached entry (order unspecified). */
    std::vector<TimingCacheEntry> snapshotEntries() const;

    /**
     * Pre-populate from entries snapshotted on the SAME device
     * configuration. Existing entries win; neither hits nor misses
     * are counted. Because timeKernel() is a pure function of
     * (signature, config), a seeded cache serves results
     * bit-identical to a cold cache that computes them itself.
     *
     * @param entries Entries from snapshotEntries() of a cache bound
     *                to an equal GpuConfig.
     */
    void seed(const std::vector<TimingCacheEntry> &entries);

    /** @return Distinct signatures cached. */
    std::size_t size() const;

    /** Drop all entries and reset the statistics. */
    void clear();

  private:
    mutable Mutex mu;
    std::unordered_map<KernelSignature, KernelTiming,
                       KernelSignatureHash> entries SEQ_GUARDED_BY(mu);
    TimingCacheStats stats_ SEQ_GUARDED_BY(mu);
};

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_TIMING_CACHE_HH
