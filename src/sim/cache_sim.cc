/**
 * @file
 * Set-associative cache simulator implementation.
 */

#include "sim/cache_sim.hh"

#include <bit>

#include "common/logging.hh"
#include "sim/access_gen.hh"

namespace seqpoint {
namespace sim {

double
CacheStats::hitRate() const
{
    return accesses ? static_cast<double>(hits) /
        static_cast<double>(accesses) : 0.0;
}

CacheSim::CacheSim(uint64_t size_bytes, unsigned assoc, unsigned line_bytes)
    : size(size_bytes), assoc(assoc), lineBytes(line_bytes)
{
    panic_if(assoc == 0, "CacheSim: zero associativity");
    panic_if(line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0,
             "CacheSim: line size must be a power of two");
    panic_if(size_bytes == 0, "CacheSim: zero capacity");
    panic_if(size_bytes % (static_cast<uint64_t>(line_bytes) * assoc) != 0,
             "CacheSim: capacity not divisible by line*assoc");

    lineShift = static_cast<unsigned>(std::countr_zero(line_bytes));
    sets = size_bytes / (static_cast<uint64_t>(line_bytes) * assoc);
    tags.assign(sets * assoc, 0);
    lastUse.assign(sets * assoc, 0);
    flags.assign(sets * assoc, 0);
}

bool
CacheSim::access(uint64_t addr, bool write)
{
    ++stats_.accesses;
    ++useClock;

    uint64_t line_addr = addr >> lineShift;
    uint64_t set = line_addr % sets;
    uint64_t tag = line_addr / sets;
    std::size_t base = static_cast<std::size_t>(set) * assoc;

    // Probe for a hit.
    for (unsigned w = 0; w < assoc; ++w) {
        std::size_t i = base + w;
        if ((flags[i] & kValid) && tags[i] == tag) {
            lastUse[i] = useClock;
            if (write)
                flags[i] |= kDirty;
            ++stats_.hits;
            return true;
        }
    }

    ++stats_.misses;

    // Choose a victim: an invalid way, else true-LRU. Invalid lines
    // keep lastUse == 0 (valid lines are always >= 1), so a single
    // first-minimum pass picks the first invalid way when one exists
    // and the true-LRU way otherwise.
    std::size_t victim = base;
    uint64_t victim_use = (flags[base] & kValid) ? lastUse[base] : 0;
    for (unsigned w = 1; w < assoc; ++w) {
        std::size_t i = base + w;
        uint64_t use = (flags[i] & kValid) ? lastUse[i] : 0;
        if (use < victim_use) {
            victim = i;
            victim_use = use;
        }
    }

    if (flags[victim] & kValid) {
        ++stats_.evictions;
        if (flags[victim] & kDirty)
            ++stats_.writebacks;
    }

    tags[victim] = tag;
    lastUse[victim] = useClock;
    flags[victim] = static_cast<uint8_t>(kValid | (write ? kDirty : 0));
    return false;
}

void
CacheSim::accessBlock(const AccessTrace &trace, std::size_t begin,
                      std::size_t end)
{
    panic_if(end > trace.size() || begin > end,
             "accessBlock: bad range [%zu, %zu) of %zu", begin, end,
             trace.size());

    const uint64_t num_sets = sets;
    const unsigned ways = assoc;
    const unsigned shift = lineShift;

    uint64_t clock = useClock;
    uint64_t n_hits = 0, n_miss = 0, n_evict = 0, n_wb = 0;

    for (std::size_t i = begin; i < end; ++i) {
        uint64_t addr = trace.addr(i);
        bool write = trace.isWrite(i);
        ++clock;

        uint64_t line_addr = addr >> shift;
        uint64_t set = line_addr % num_sets;
        uint64_t tag = line_addr / num_sets;
        std::size_t base = static_cast<std::size_t>(set) * ways;

        // Branchless probe: at most one valid way can carry the tag,
        // so a full conditional-select scan finds it without early
        // exits (no per-way branch misprediction on mixed streams).
        std::size_t hit_way = static_cast<std::size_t>(-1);
        for (unsigned w = 0; w < ways; ++w) {
            std::size_t slot = base + w;
            bool h = (flags[slot] & kValid) && tags[slot] == tag;
            hit_way = h ? slot : hit_way;
        }

        if (hit_way != static_cast<std::size_t>(-1)) {
            lastUse[hit_way] = clock;
            flags[hit_way] = static_cast<uint8_t>(
                flags[hit_way] | (write ? kDirty : 0));
            ++n_hits;
            continue;
        }

        ++n_miss;

        // Single-pass victim selection (see access()): invalid ways
        // present as lastUse 0 and therefore win the first-minimum
        // scan over any valid way.
        std::size_t victim = base;
        uint64_t victim_use = (flags[base] & kValid) ? lastUse[base] : 0;
        for (unsigned w = 1; w < ways; ++w) {
            std::size_t slot = base + w;
            uint64_t use = (flags[slot] & kValid) ? lastUse[slot] : 0;
            bool better = use < victim_use;
            victim = better ? slot : victim;
            victim_use = better ? use : victim_use;
        }

        uint8_t vf = flags[victim];
        n_evict += (vf & kValid) ? 1 : 0;
        n_wb += ((vf & kValid) && (vf & kDirty)) ? 1 : 0;

        tags[victim] = tag;
        lastUse[victim] = clock;
        flags[victim] = static_cast<uint8_t>(kValid |
                                             (write ? kDirty : 0));
    }

    useClock = clock;
    stats_.accesses += end - begin;
    stats_.hits += n_hits;
    stats_.misses += n_miss;
    stats_.evictions += n_evict;
    stats_.writebacks += n_wb;
}

void
CacheSim::reset()
{
    tags.assign(tags.size(), 0);
    lastUse.assign(lastUse.size(), 0);
    flags.assign(flags.size(), 0);
    useClock = 0;
    stats_ = CacheStats{};
}

} // namespace sim
} // namespace seqpoint
