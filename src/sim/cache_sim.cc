/**
 * @file
 * Set-associative cache simulator implementation.
 */

#include "sim/cache_sim.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hh"
#include "sim/access_gen.hh"
#include "sim/cache_model.hh"

// The vectorized probe compiles on x86-64 GCC/Clang (per-function
// target attribute, so no global -mavx2) and is selected at runtime
// via cpuid. SEQPOINT_DISABLE_SIMD_PROBE forces the build onto the
// portable scalar arm (CI compiles and tests that configuration too).
#if defined(__x86_64__) && !defined(SEQPOINT_DISABLE_SIMD_PROBE) && \
    (defined(__GNUC__) || defined(__clang__))
#define SEQPOINT_SIMD_PROBE_X86 1
#include <immintrin.h>
#endif

namespace seqpoint {
namespace sim {

namespace {

#ifdef SEQPOINT_SIMD_PROBE_X86

/**
 * Vectorized tag probe: compare four ways per step and verify the
 * valid bit on candidate matches only (invalid ways may carry any
 * stale tag bits, so a raw tag equality is a candidate, not a hit;
 * at most one *valid* way can match).
 */
__attribute__((target("avx2"))) int
probeWayAvx2(const uint64_t *tags, const uint8_t *flags, unsigned ways,
             uint64_t tag)
{
    const __m256i vtag = _mm256_set1_epi64x(static_cast<long long>(tag));
    unsigned w = 0;
    for (; w + 4 <= ways; w += 4) {
        __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        __m256i eq = _mm256_cmpeq_epi64(t, vtag);
        unsigned mask = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
        while (mask) {
            unsigned cand = w + static_cast<unsigned>(
                std::countr_zero(mask));
            if (flags[cand] & 1)
                return static_cast<int>(cand);
            mask &= mask - 1;
        }
    }
    for (; w < ways; ++w) {
        if ((flags[w] & 1) && tags[w] == tag)
            return static_cast<int>(w);
    }
    return -1;
}

/**
 * Vectorized first-minimum scan over the per-way lastUse clocks
 * (invalid ways hold clock 0 and therefore win against any valid
 * way). Unsigned order is recovered from the signed epi64 compare by
 * biasing with the sign bit.
 */
__attribute__((target("avx2"))) unsigned
victimWayAvx2(const uint64_t *last_use, unsigned ways)
{
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    // Pass 1: the minimum clock value.
    __m256i vmin = _mm256_xor_si256(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(last_use)), bias);
    unsigned w = 4;
    for (; w + 4 <= ways; w += 4) {
        __m256i cur = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(last_use + w)), bias);
        __m256i gt = _mm256_cmpgt_epi64(vmin, cur);
        vmin = _mm256_blendv_epi8(vmin, cur, gt);
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), vmin);
    uint64_t min_use = std::min(std::min(lanes[0], lanes[1]),
                                std::min(lanes[2], lanes[3])) ^
        0x8000000000000000ull;
    for (; w < ways; ++w)
        min_use = std::min(min_use, last_use[w]);
    // Pass 2: the first way carrying it (scalar; the scan is short
    // and exits on the first of at least one guaranteed match).
    for (unsigned v = 0;; ++v) {
        if (last_use[v] == min_use)
            return v;
    }
}

#endif // SEQPOINT_SIMD_PROBE_X86

} // anonymous namespace

double
CacheStats::hitRate() const
{
    return accesses ? static_cast<double>(hits) /
        static_cast<double>(accesses) : 0.0;
}

CacheSim::CacheSim(uint64_t size_bytes, unsigned ways, unsigned line_bytes)
    : size(size_bytes), assoc(ways), lineBytes(line_bytes)
{
    panic_if(ways == 0, "CacheSim: zero associativity");
    panic_if(line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0,
             "CacheSim: line size must be a power of two");
    panic_if(size_bytes == 0, "CacheSim: zero capacity");
    panic_if(size_bytes % (static_cast<uint64_t>(line_bytes) * ways) != 0,
             "CacheSim: capacity not divisible by line*ways");

    lineShift = static_cast<unsigned>(std::countr_zero(line_bytes));
    sets = size_bytes / (static_cast<uint64_t>(line_bytes) * ways);
    tags.assign(sets * ways, 0);
    lastUse.assign(sets * ways, 0);
    flags.assign(sets * ways, 0);
    setOcc.assign(sets, 0);
    setGen.assign(sets, 0);
    summaries.assign(sets, SetSummary{});
    sumWays.assign(sets * ways, 0);
    warmScratch.assign(ways, 0);
    mergeScratch.assign(ways, 0);
    warmSlots.assign(sets * ways, 0);
    // The cross-replay memo only serves geometries the warm tier
    // itself serves (way indices must fit the summaries' byte
    // storage).
    if (ways <= 256)
        warmTable.assign(kWarmTableSize, WarmMemoEntry{});
    simdProbe = simdProbeSupported();
}

bool
CacheSim::simdProbeSupported()
{
#ifdef SEQPOINT_SIMD_PROBE_X86
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

void
CacheSim::setProbeKernel(ProbeKernel kernel)
{
    panic_if(kernel == ProbeKernel::Simd && !simdProbeSupported(),
             "setProbeKernel: vectorized probe unsupported on this host");
    simdProbe = kernel == ProbeKernel::Auto ? simdProbeSupported()
        : kernel == ProbeKernel::Simd;
}

int
CacheSim::probeWay(std::size_t base, uint64_t tag) const
{
#ifdef SEQPOINT_SIMD_PROBE_X86
    if (simdProbe && assoc >= 4)
        return probeWayAvx2(&tags[base], &flags[base], assoc, tag);
#endif
    for (unsigned w = 0; w < assoc; ++w) {
        std::size_t i = base + w;
        if ((flags[i] & kValid) && tags[i] == tag)
            return static_cast<int>(w);
    }
    return -1;
}

unsigned
CacheSim::victimWay(std::size_t base) const
{
#ifdef SEQPOINT_SIMD_PROBE_X86
    if (simdProbe && assoc >= 4)
        return victimWayAvx2(&lastUse[base], assoc);
#endif
    // Invalid ways keep lastUse == 0 (valid lines are always >= 1),
    // so a single first-minimum pass picks the first invalid way when
    // one exists and the true-LRU way otherwise.
    unsigned victim = 0;
    uint64_t victim_use = lastUse[base];
    for (unsigned w = 1; w < assoc; ++w) {
        uint64_t use = lastUse[base + w];
        if (use < victim_use) {
            victim = w;
            victim_use = use;
        }
    }
    return victim;
}

bool
CacheSim::access(uint64_t addr, bool write)
{
    ++stats_.accesses;
    ++useClock;

    uint64_t line_addr = addr >> lineShift;
    uint64_t set = line_addr % sets;
    uint64_t tag = line_addr / sets;
    std::size_t base = static_cast<std::size_t>(set) * assoc;

    // Probe for a hit.
    for (unsigned w = 0; w < assoc; ++w) {
        std::size_t i = base + w;
        if ((flags[i] & kValid) && tags[i] == tag) {
            lastUse[i] = useClock;
            if (write)
                flags[i] |= kDirty;
            ++stats_.hits;
            return true;
        }
    }

    ++stats_.misses;

    // Choose a victim: an invalid way, else true-LRU. Invalid lines
    // keep lastUse == 0 (valid lines are always >= 1), so a single
    // first-minimum pass picks the first invalid way when one exists
    // and the true-LRU way otherwise.
    std::size_t victim = base;
    uint64_t victim_use = (flags[base] & kValid) ? lastUse[base] : 0;
    for (unsigned w = 1; w < assoc; ++w) {
        std::size_t i = base + w;
        uint64_t use = (flags[i] & kValid) ? lastUse[i] : 0;
        if (use < victim_use) {
            victim = i;
            victim_use = use;
        }
    }

    if (flags[victim] & kValid) {
        ++stats_.evictions;
        if (flags[victim] & kDirty)
            ++stats_.writebacks;
    } else {
        ++setOcc[set];
        ++validLines;
    }
    ++setGen[set]; // residency changed: retire the set's summary
    ++structGen;

    tags[victim] = tag;
    lastUse[victim] = useClock;
    flags[victim] = static_cast<uint8_t>(kValid | (write ? kDirty : 0));
    return false;
}

void
CacheSim::accessBlock(const AccessTrace &trace, std::size_t begin,
                      std::size_t end)
{
    panic_if(end > trace.size() || begin > end,
             "accessBlock: bad range [%zu, %zu) of %zu", begin, end,
             trace.size());

    const uint64_t num_sets = sets;
    const unsigned ways = assoc;
    const unsigned shift = lineShift;

    uint64_t clock = useClock;
    uint64_t n_hits = 0, n_miss = 0, n_evict = 0, n_wb = 0;

    for (std::size_t i = begin; i < end; ++i) {
        uint64_t addr = trace.addr(i);
        bool write = trace.isWrite(i);
        ++clock;

        uint64_t line_addr = addr >> shift;
        uint64_t set = line_addr % num_sets;
        uint64_t tag = line_addr / num_sets;
        std::size_t base = static_cast<std::size_t>(set) * ways;

        // Branchless probe: at most one valid way can carry the tag,
        // so a full conditional-select scan finds it without early
        // exits (no per-way branch misprediction on mixed streams).
        std::size_t hit_way = static_cast<std::size_t>(-1);
        for (unsigned w = 0; w < ways; ++w) {
            std::size_t slot = base + w;
            bool h = (flags[slot] & kValid) && tags[slot] == tag;
            hit_way = h ? slot : hit_way;
        }

        if (hit_way != static_cast<std::size_t>(-1)) {
            lastUse[hit_way] = clock;
            flags[hit_way] = static_cast<uint8_t>(
                flags[hit_way] | (write ? kDirty : 0));
            ++n_hits;
            continue;
        }

        ++n_miss;

        // Single-pass victim selection (see access()): invalid ways
        // present as lastUse 0 and therefore win the first-minimum
        // scan over any valid way.
        std::size_t victim = base;
        uint64_t victim_use = (flags[base] & kValid) ? lastUse[base] : 0;
        for (unsigned w = 1; w < ways; ++w) {
            std::size_t slot = base + w;
            uint64_t use = (flags[slot] & kValid) ? lastUse[slot] : 0;
            bool better = use < victim_use;
            victim = better ? slot : victim;
            victim_use = better ? use : victim_use;
        }

        uint8_t vf = flags[victim];
        if (vf & kValid) {
            ++n_evict;
            n_wb += (vf & kDirty) ? 1 : 0;
        } else {
            ++setOcc[set];
            ++validLines;
        }
        ++setGen[set]; // residency changed: retire the set's summary
    ++structGen;

        tags[victim] = tag;
        lastUse[victim] = clock;
        flags[victim] = static_cast<uint8_t>(kValid |
                                             (write ? kDirty : 0));
    }

    useClock = clock;
    stats_.accesses += end - begin;
    stats_.hits += n_hits;
    stats_.misses += n_miss;
    stats_.evictions += n_evict;
    stats_.writebacks += n_wb;
}

void
CacheSim::accessLineRun(uint64_t line_addr, uint64_t cnt, bool write)
{
    uint64_t set = line_addr % sets;
    uint64_t tag = line_addr / sets;
    std::size_t base = static_cast<std::size_t>(set) * assoc;

    // Clock semantics match the oracle: access i of the run carries
    // clock useClock + i + 1, and only the final value is observable
    // (the line's accesses are consecutive, so intermediate clocks
    // are never compared).
    useClock += cnt;
    stats_.accesses += cnt;

    int hit_way = probeWay(base, tag);
    if (hit_way >= 0) {
        std::size_t i = base + static_cast<unsigned>(hit_way);
        lastUse[i] = useClock;
        if (write)
            flags[i] |= kDirty;
        stats_.hits += cnt;
        return;
    }

    // Miss on the first access of the run; the remaining cnt-1
    // accesses hit the freshly installed line.
    ++stats_.misses;
    stats_.hits += cnt - 1;

    std::size_t victim = base + victimWay(base);

    if (flags[victim] & kValid) {
        ++stats_.evictions;
        if (flags[victim] & kDirty)
            ++stats_.writebacks;
    } else {
        ++setOcc[set];
        ++validLines;
    }
    ++setGen[set]; // residency changed: retire the set's summary
    ++structGen;

    tags[victim] = tag;
    lastUse[victim] = useClock;
    flags[victim] = static_cast<uint8_t>(kValid | (write ? kDirty : 0));
}

void
CacheSim::accessSegment(const SegDesc &seg)
{
    const uint64_t line = lineBytes;
    if (seg.count == 0)
        return;
    ++stats_.tiers.lineRunSegments;

    if (seg.stride == 0) {
        accessLineRun(seg.firstAddr >> lineShift, seg.count,
                      seg.write);
        return;
    }

    if (seg.stride > 0 && static_cast<uint64_t>(seg.stride) < line &&
        line % static_cast<uint64_t>(seg.stride) == 0) {
        // Dividing sub-line stride (the generators' hot shape): after
        // a possibly partial first line, every full line carries
        // exactly line/stride accesses -- one division total instead
        // of one per line run.
        const uint64_t s = static_cast<uint64_t>(seg.stride);
        const uint64_t per = line / s;
        uint64_t addr = seg.firstAddr;
        uint64_t line_addr = addr >> lineShift;
        uint64_t first =
            (((line_addr + 1) << lineShift) - addr + s - 1) / s;
        uint64_t run = std::min(first, seg.count);
        uint64_t i = 0;
        for (;;) {
            accessLineRun(line_addr, run, seg.write);
            i += run;
            if (i >= seg.count)
                return;
            ++line_addr;
            run = std::min(per, seg.count - i);
        }
    }

    uint64_t i = 0;
    while (i < seg.count) {
        uint64_t addr = seg.addr(i);
        uint64_t line_addr = addr >> lineShift;
        uint64_t run = 1;
        if (seg.stride > 0) {
            uint64_t s = static_cast<uint64_t>(seg.stride);
            if (s < line) {
                // Accesses until the next line boundary.
                uint64_t line_end = (line_addr + 1) << lineShift;
                run = (line_end - addr + s - 1) / s;
                run = std::min(run, seg.count - i);
            }
        } else {
            uint64_t s = static_cast<uint64_t>(-seg.stride);
            if (s < line) {
                // Accesses down to the current line's start.
                uint64_t line_start = line_addr << lineShift;
                run = (addr - line_start) / s + 1;
                run = std::min(run, seg.count - i);
            }
        }
        accessLineRun(line_addr, run, seg.write);
        i += run;
    }
}

bool
CacheSim::segmentSetsCold(const SegDesc &seg) const
{
    if (validLines == 0)
        return true;
    return segmentSetsCold(seg, streamShape(seg, sets, lineBytes));
}

bool
CacheSim::segmentSetsCold(const SegDesc &seg, const StreamShape &sh) const
{
    (void)seg;
    if (validLines == 0)
        return true;
    uint64_t touched = std::min(sh.period, sh.distinct);
    // Upper-bound accounting before walking the sets: every resident
    // line outside the touched sets occupies one of their
    // (sets - touched) * assoc ways, so more valid lines than that
    // prove some touched set is occupied. In particular any segment
    // touching every set fails in O(1) on a non-empty cache.
    if (validLines > (sets - touched) * assoc)
        return false;
    for (uint64_t r = 0; r < touched; ++r) {
        if (setOcc[(sh.firstLine + r * sh.q) % sets] != 0)
            return false;
    }
    return true;
}

namespace {

/**
 * Index of the last access to the t-th distinct line of an
 * applicable stream: the oracle stamps that access's clock into the
 * line's lastUse, and both closed-form tiers reproduce it.
 */
uint64_t
lastAccessIndex(const SegDesc &seg, const StreamShape &sh,
                uint64_t line, uint64_t t)
{
    const uint64_t stride = static_cast<uint64_t>(seg.stride);
    if (stride > line)
        return t; // one access per line (exact line multiples)
    if (stride == 0)
        return seg.count - 1;
    // Largest i with firstAddr + i*stride < (firstLine + t + 1)
    // * line; clamped to the run's end.
    uint64_t bound = (sh.firstLine + t + 1) * line - seg.firstAddr;
    uint64_t i = (bound + stride - 1) / stride - 1;
    return std::min<uint64_t>(i, seg.count - 1);
}

} // anonymous namespace

void
CacheSim::applyColdStream(const SegDesc &seg)
{
    panic_if(!analyticStreamApplicable(seg, lineBytes),
             "applyColdStream: segment not applicable");
    applyColdStream(seg, streamShape(seg, sets, lineBytes));
}

void
CacheSim::applyColdStream(const SegDesc &seg, const StreamShape &sh)
{
    panic_if(!segmentSetsCold(seg, sh),
             "applyColdStream: touched sets are not cold");

    CacheStats s = analyticStreamStatsShaped(seg, sh, assoc);
    stats_.accesses += s.accesses;
    stats_.hits += s.hits;
    stats_.misses += s.misses;
    stats_.evictions += s.evictions;
    stats_.writebacks += s.writebacks;
    ++stats_.tiers.coldSegments;

    const uint64_t clock0 = useClock;
    useClock += seg.count;

    // Install the surviving tail: a cold set fills ways 0, 1, ... in
    // arrival order and then replaces round-robin (LRU == oldest
    // arrival), so the j-th arrival into a set lives in way
    // j mod assoc; only the last min(count, assoc) arrivals survive.
    const uint8_t install_flags =
        static_cast<uint8_t>(kValid | (seg.write ? kDirty : 0));
    const uint64_t line = lineBytes;
    uint64_t touched = std::min(sh.period, sh.distinct);
    for (uint64_t r = 0; r < touched; ++r) {
        uint64_t cnt = (sh.distinct - 1 - r) / sh.period + 1;
        uint64_t surv = std::min<uint64_t>(cnt, assoc);
        uint64_t set = (sh.firstLine + r * sh.q) % sets;
        std::size_t base = static_cast<std::size_t>(set) * assoc;
        for (uint64_t j = 0; j < surv; ++j) {
            uint64_t arrival = cnt - 1 - j;
            uint64_t t = r + arrival * sh.period;
            uint64_t line_addr = sh.firstLine + t * sh.q;
            std::size_t slot = base + arrival % assoc;
            tags[slot] = line_addr / sets;
            lastUse[slot] = clock0 + lastAccessIndex(seg, sh, line, t) + 1;
            flags[slot] = install_flags;
        }
        setOcc[set] += static_cast<uint32_t>(surv);
        validLines += surv;

        // The set was empty, so its contents are now exactly the
        // surviving arithmetic run -- seed the residency summary so a
        // later re-walk of the stream warms up without probing. (The
        // summaries store way indices as bytes; wider geometries just
        // skip the warm tier.)
        ++setGen[set];
        ++structGen;
        if (assoc <= 256) {
            uint64_t first_surv = cnt - surv;
            SetSummary &sum = summaries[set];
            sum.base = sh.firstLine + (r + first_surv * sh.period) * sh.q;
            sum.step = sh.q * sh.period;
            sum.count = static_cast<uint32_t>(surv);
            sum.gen = setGen[set];
            uint8_t *row = &sumWays[base];
            for (uint64_t j = 0; j < surv; ++j)
                row[j] = static_cast<uint8_t>((first_surv + j) % assoc);
        }
    }
}

int64_t
CacheSim::summaryOffset(uint64_t set, uint64_t first, uint64_t step,
                        uint64_t cnt) const
{
    const SetSummary &sum = summaries[set];
    if (sum.count == 0 || sum.gen != setGen[set])
        return -1;
    if (first < sum.base)
        return -1;
    if (cnt > 1 && sum.step != step)
        return -1; // runs of 2+ lines must share the lattice step
    const uint64_t sstep = sum.step;
    const uint64_t d = first - sum.base;
    uint64_t o;
    if ((sstep & (sstep - 1)) == 0) {
        // Power-of-two lattice (the common shape: the set count is a
        // power of two and panel lattices inherit it): shift instead
        // of dividing.
        if (d & (sstep - 1))
            return -1;
        o = d >> std::countr_zero(sstep);
    } else {
        o = d / sstep;
        if (o * sstep != d)
            return -1;
    }
    if (o >= sum.count || cnt > sum.count - o)
        return -1;
    return static_cast<int64_t>(o);
}

bool
CacheSim::probeAndRecordRun(uint64_t set, uint64_t first, uint64_t step,
                            uint64_t cnt)
{
    if (cnt > assoc)
        return false; // more lines than ways cannot all be resident
    std::size_t base = static_cast<std::size_t>(set) * assoc;
    for (uint64_t j = 0; j < cnt; ++j) {
        int way = probeWay(base, (first + j * step) / sets);
        if (way < 0)
            return false;
        warmScratch[j] = static_cast<uint8_t>(way);
    }
    recordSummaryRun(set, first, step, cnt, warmScratch.data());
    return true;
}

void
CacheSim::recordSummaryRun(uint64_t set, uint64_t first, uint64_t step,
                           uint64_t cnt, const uint8_t *ways)
{
    SetSummary &sum = summaries[set];
    const bool valid = sum.count > 0 && sum.gen == setGen[set];
    uint8_t *row = &sumWays[static_cast<std::size_t>(set) * assoc];
    if (valid) {
        // Both runs were verified under the current generation, so
        // merging them loses nothing: if they live on one lattice and
        // their union is contiguous, coalesce (this is how the rows
        // of a re-read panel accrete into one per-set run). A lone
        // line has no intrinsic step and adopts the other run's.
        uint64_t ebase = sum.base;
        uint64_t estep = sum.step;
        uint64_t ecount = sum.count;
        uint64_t mstep = cnt == 1 && ecount > 1 ? estep : step;
        bool step_ok = (ecount == 1 || estep == mstep) &&
            (cnt == 1 || step == mstep);
        uint64_t lo = std::min(ebase, first);
        uint64_t span = std::max(ebase, first) - lo;
        if (step_ok && span % mstep == 0) {
            uint64_t eo = (ebase - lo) / mstep;
            uint64_t no = (first - lo) / mstep;
            // Union is an interval iff the runs overlap or touch.
            if (no <= eo + ecount && eo <= no + cnt) {
                uint64_t total = std::max(eo + ecount, no + cnt);
                if (total <= assoc) {
                    for (uint64_t i = 0; i < total; ++i) {
                        mergeScratch[i] = i >= no && i - no < cnt
                            ? ways[i - no] : row[i - eo];
                    }
                    sum.base = lo;
                    sum.step = mstep;
                    sum.count = static_cast<uint32_t>(total);
                    sum.gen = setGen[set];
                    std::copy_n(mergeScratch.data(),
                                static_cast<std::size_t>(total), row);
                    return;
                }
            }
        }
        // Incompatible runs: keep the longer one. Preferring the
        // established run when it is longer stops a lone conflicting
        // line from evicting a whole panel's summary (the lone
        // segment re-probes next replay; the panel stays O(1)).
        if (cnt < ecount)
            return;
    }
    sum.base = first;
    sum.step = step;
    sum.count = static_cast<uint32_t>(cnt);
    sum.gen = setGen[set];
    std::copy_n(ways, static_cast<std::size_t>(cnt), row);
}

bool
CacheSim::segmentSetsWarm(const SegDesc &seg)
{
    return segmentSetsWarm(seg, streamShape(seg, sets, lineBytes));
}

bool
CacheSim::segmentSetsWarm(const SegDesc &seg, const StreamShape &sh)
{
    warmMemo = false;
    // Cheap upper bounds first: the stream cannot be fully resident
    // with fewer valid lines than it has distinct lines (and the way
    // indices the summaries record must fit their byte storage).
    if (validLines < sh.distinct || assoc > 256)
        return false;
    const uint64_t touched = std::min(sh.period, sh.distinct);
    const uint64_t step = sh.q * sh.period;
    for (uint64_t r = 0; r < touched; ++r) {
        const uint64_t cnt = (sh.distinct - 1 - r) / sh.period + 1;
        const uint64_t set = (sh.firstLine + r * sh.q) % sets;
        if (setOcc[set] < cnt)
            return false;
        const uint64_t first = sh.firstLine + r * sh.q;
        const std::size_t base = static_cast<std::size_t>(set) * assoc;
        const int64_t o = summaryOffset(set, first, step, cnt);
        const uint8_t *run;
        if (o >= 0) {
            run = &sumWays[base + static_cast<uint64_t>(o)];
        } else {
            if (!probeAndRecordRun(set, first, step, cnt))
                return false;
            // Memoize from the probe, not the merged summary: the
            // merge may have preferred an incompatible longer run
            // that does not cover this one.
            run = warmScratch.data();
        }
        uint64_t t = r;
        for (uint64_t j = 0; j < cnt; ++j, t += sh.period)
            warmSlots[t] = static_cast<uint32_t>(base + run[j]);
    }
    // Every line verified resident: stash the slot-per-line mapping
    // (indexed by distinct line) so the apply pass that immediately
    // follows can stamp lastUse without re-deriving summary offsets.
    // The clock stamp is the contract guard -- any intervening access
    // bumps useClock and the memo is ignored.
    warmMemoAddr = seg.firstAddr;
    warmMemoStride = seg.stride;
    warmMemoCount = seg.count;
    warmMemoClock = useClock;
    warmMemo = true;
    return true;
}

void
CacheSim::applyWarmStream(const SegDesc &seg)
{
    panic_if(!analyticStreamApplicable(seg, lineBytes),
             "applyWarmStream: segment not applicable");
    applyWarmStream(seg, streamShape(seg, sets, lineBytes));
}

void
CacheSim::applyWarmStream(const SegDesc &seg, const StreamShape &sh)
{
    // Every access hits: statistics are pure arithmetic, and the
    // only state the oracle would change is each line's lastUse (its
    // last access's clock) plus dirty bits on writes -- written
    // straight through the verified way mapping, no probes.
    const uint64_t touched = std::min(sh.period, sh.distinct);
    const uint64_t step = sh.q * sh.period;
    const uint64_t clock0 = useClock;
    const uint64_t line = lineBytes;
    if (warmMemo && warmMemoClock == useClock &&
        warmMemoAddr == seg.firstAddr &&
        warmMemoStride == seg.stride && warmMemoCount == seg.count) {
        // Fast path: segmentSetsWarm just verified this exact segment
        // and nothing touched the cache since, so warmSlots holds
        // every distinct line's slot in stream order.
        stampWarmRun(seg, warmSlots.data(), sh.distinct);
        recordWarmMemo(seg, sh.distinct);
        return;
    }
    for (uint64_t r = 0; r < touched; ++r) {
        const uint64_t cnt = (sh.distinct - 1 - r) / sh.period + 1;
        const uint64_t set = (sh.firstLine + r * sh.q) % sets;
        const uint64_t first = sh.firstLine + r * sh.q;
        const std::size_t base = static_cast<std::size_t>(set) * assoc;
        const int64_t o = summaryOffset(set, first, step, cnt);
        if (o >= 0) {
            const uint8_t *row =
                &sumWays[base + static_cast<uint64_t>(o)];
            for (uint64_t j = 0; j < cnt; ++j) {
                const uint64_t t = r + j * sh.period;
                const std::size_t slot = base + row[j];
                warmSlots[t] = static_cast<uint32_t>(slot);
                lastUse[slot] =
                    clock0 + lastAccessIndex(seg, sh, line, t) + 1;
                if (seg.write)
                    flags[slot] |= kDirty;
            }
            continue;
        }
        // The set's summary vouches for a different (longer) run than
        // this segment's -- the lines are still verified resident, so
        // fall back to a probe per line for this set only.
        for (uint64_t j = 0; j < cnt; ++j) {
            int way = probeWay(base, (first + j * step) / sets);
            panic_if(way < 0,
                     "applyWarmStream: line not resident "
                     "(call segmentSetsWarm first)");
            const uint64_t t = r + j * sh.period;
            const std::size_t slot =
                base + static_cast<unsigned>(way);
            warmSlots[t] = static_cast<uint32_t>(slot);
            lastUse[slot] =
                clock0 + lastAccessIndex(seg, sh, line, t) + 1;
            if (seg.write)
                flags[slot] |= kDirty;
        }
    }
    useClock += seg.count;
    stats_.accesses += seg.count;
    stats_.hits += seg.count;
    ++stats_.tiers.warmSegments;
    recordWarmMemo(seg, sh.distinct);
}

std::size_t
CacheSim::warmMemoSlot(const SegDesc &seg) const
{
    // Deterministic 64-bit mix of the segment identity, folded to the
    // direct-mapped table's power-of-two size.
    uint64_t x = seg.firstAddr * 0x9E3779B97F4A7C15ull;
    x ^= static_cast<uint64_t>(seg.stride) +
        0x9E3779B97F4A7C15ull * seg.count;
    x ^= x >> 29;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x) & (warmTable.size() - 1);
}

void
CacheSim::stampWarmRun(const SegDesc &seg, const uint32_t *slots,
                       uint64_t distinct)
{
    const uint64_t clock1 = useClock + 1;
    const uint64_t line = lineBytes;
    const uint64_t stride = static_cast<uint64_t>(seg.stride);
    // Read replays leave the flags untouched (skipping the
    // read-modify-write per line); writes OR the dirty bit in.
    if (seg.write) {
        for (uint64_t t = 0; t < distinct; ++t)
            flags[slots[t]] |= kDirty;
    }
    if (stride >= line) {
        // One access per line: line t's last (only) access is t.
        for (uint64_t t = 0; t < distinct; ++t)
            lastUse[slots[t]] = clock1 + t;
    } else if (stride == 0) {
        // A repeated address: one line, last touched by the final
        // access.
        lastUse[slots[0]] = clock1 + seg.count - 1;
    } else {
        // Sub-line stride: line t's last access is the largest i with
        // firstAddr + i*stride < (firstLine + t + 1) * line, i.e.
        // floor((bound_t - 1) / stride) with bound_t growing by one
        // line per step -- kept as an incremental quotient/remainder
        // pair, so the loop has no divisions.
        const uint64_t first_line_end =
            ((seg.firstAddr >> lineShift) + 1) << lineShift;
        const uint64_t num = first_line_end - seg.firstAddr - 1;
        const uint64_t last = seg.count - 1;
        if ((stride & (stride - 1)) == 0) {
            // Power-of-two stride (the common element walk) divides
            // the power-of-two line exactly: the remainder never
            // moves and the setup needs shifts only.
            const unsigned ss =
                static_cast<unsigned>(std::countr_zero(stride));
            const uint64_t dl = line >> ss;
            uint64_t fq = num >> ss;
            for (uint64_t t = 0; t < distinct; ++t) {
                lastUse[slots[t]] = clock1 + std::min(fq, last);
                fq += dl;
            }
        } else {
            const uint64_t dl = line / stride;
            const uint64_t rl = line % stride;
            uint64_t fq = num / stride;
            uint64_t fr = num % stride;
            for (uint64_t t = 0; t < distinct; ++t) {
                lastUse[slots[t]] = clock1 + std::min(fq, last);
                fq += dl;
                fr += rl;
                if (fr >= stride) {
                    ++fq;
                    fr -= stride;
                }
            }
        }
    }
    useClock += seg.count;
    stats_.accesses += seg.count;
    stats_.hits += seg.count;
    ++stats_.tiers.warmSegments;
}

void
CacheSim::recordWarmMemo(const SegDesc &seg, uint64_t distinct)
{
    if (warmTable.empty() || distinct > kWarmArenaCap - kWarmHdrWords)
        return;
    if (warmArenaGen != structGen) {
        // First record of a new structural epoch: everything in the
        // memo described the old structure. Stale table entries are
        // left in place -- the epoch bump invalidates them.
        warmArena.clear();
        warmCursor = 0;
        warmArenaGen = structGen;
        ++warmMemoEpoch;
    }
    if (warmArena.size() + kWarmHdrWords + distinct > kWarmArenaCap) {
        // Arena exhausted (sustained churn within one epoch): retire
        // the whole memo -- entries index into the arena.
        warmArena.clear();
        warmCursor = 0;
        ++warmMemoEpoch;
    }
    const uint32_t rec_off = static_cast<uint32_t>(warmArena.size());
    warmArena.resize(warmArena.size() + kWarmHdrWords + distinct);
    uint32_t *rec = &warmArena[rec_off];
    const uint64_t addr = seg.firstAddr;
    const uint64_t stride = static_cast<uint64_t>(seg.stride);
    const uint64_t count = seg.count;
    std::memcpy(rec + 0, &addr, 8);
    std::memcpy(rec + 2, &stride, 8);
    std::memcpy(rec + 4, &count, 8);
    rec[6] = static_cast<uint32_t>(distinct);
    rec[7] = 0;
    std::copy_n(warmSlots.data(), static_cast<std::size_t>(distinct),
                rec + kWarmHdrWords);
    WarmMemoEntry &e = warmTable[warmMemoSlot(seg)];
    e.addr = seg.firstAddr;
    e.stride = seg.stride;
    e.count = seg.count;
    e.epoch = warmMemoEpoch;
    e.recOff = rec_off;
    e.distinct = static_cast<uint32_t>(distinct);
}

bool
CacheSim::replayWarmMemo(const SegDesc &seg)
{
    if (warmArenaGen != structGen || warmArena.empty())
        return false;
    // Sequential fast path: segment lists replay in the same order
    // every round, so the next arena record usually is this segment.
    if (warmCursor >= warmArena.size())
        warmCursor = 0;
    const uint32_t *rec = &warmArena[warmCursor];
    uint64_t addr, stride, count;
    std::memcpy(&addr, rec + 0, 8);
    std::memcpy(&stride, rec + 2, 8);
    std::memcpy(&count, rec + 4, 8);
    if (addr == seg.firstAddr &&
        stride == static_cast<uint64_t>(seg.stride) &&
        count == seg.count) {
        const uint32_t distinct = rec[6];
        stampWarmRun(seg, rec + kWarmHdrWords, distinct);
        warmCursor += kWarmHdrWords + distinct;
        return true;
    }
    // Out of step (a new list, a skipped segment, or a hash-evicted
    // duplicate): resync through the table. The epoch stamp rejects
    // entries that survived a memo retirement -- their offsets index
    // into a cleared arena.
    const WarmMemoEntry &e = warmTable[warmMemoSlot(seg)];
    if (e.epoch != warmMemoEpoch || e.count != seg.count ||
        e.addr != seg.firstAddr || e.stride != seg.stride)
        return false;
    stampWarmRun(seg, &warmArena[e.recOff + kWarmHdrWords],
                 e.distinct);
    warmCursor = e.recOff + kWarmHdrWords + e.distinct;
    return true;
}

CacheSetState
CacheSim::snapshotState() const
{
    CacheSetState st;
    st.sets = sets;
    st.assoc = assoc;
    st.lineBytes = lineBytes;
    st.tags = tags;
    st.lastUse = lastUse;
    st.flags = flags;
    st.useClock = useClock;
    st.stats = stats_;
    return st;
}

void
CacheSim::restoreState(const CacheSetState &state)
{
    panic_if(state.sets != sets || state.assoc != assoc ||
                 state.lineBytes != lineBytes,
             "restoreState: geometry mismatch (%llu sets x %u ways x "
             "%u B vs %llu x %u x %u)",
             static_cast<unsigned long long>(state.sets), state.assoc,
             state.lineBytes, static_cast<unsigned long long>(sets),
             assoc, lineBytes);
    panic_if(state.tags.size() != tags.size() ||
                 state.lastUse.size() != lastUse.size() ||
                 state.flags.size() != flags.size(),
             "restoreState: corrupt state (%zu lines vs %zu)",
             state.flags.size(), flags.size());
    tags = state.tags;
    lastUse = state.lastUse;
    flags = state.flags;
    useClock = state.useClock;
    stats_ = state.stats;

    // Rebuild the occupancy counters from the restored valid bits --
    // they are derived state and must never drift from it. The
    // residency summaries are retired wholesale (they described the
    // pre-restore contents); the warm tier re-verifies on first use.
    setOcc.assign(sets, 0);
    validLines = 0;
    for (std::size_t i = 0; i < flags.size(); ++i) {
        if (flags[i] & kValid) {
            ++setOcc[i / assoc];
            ++validLines;
        }
    }
    summaries.assign(sets, SetSummary{});
    warmMemo = false;
    ++structGen; // wholesale change: retire the cross-replay memo
}

void
CacheSim::reset()
{
    tags.assign(tags.size(), 0);
    lastUse.assign(lastUse.size(), 0);
    flags.assign(flags.size(), 0);
    setOcc.assign(sets, 0);
    summaries.assign(sets, SetSummary{});
    warmMemo = false;
    ++structGen; // wholesale change: retire the cross-replay memo
    validLines = 0;
    useClock = 0;
    stats_ = CacheStats{};
}

} // namespace sim
} // namespace seqpoint
