/**
 * @file
 * Set-associative cache simulator implementation.
 */

#include "sim/cache_sim.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "sim/access_gen.hh"
#include "sim/cache_model.hh"

namespace seqpoint {
namespace sim {

double
CacheStats::hitRate() const
{
    return accesses ? static_cast<double>(hits) /
        static_cast<double>(accesses) : 0.0;
}

CacheSim::CacheSim(uint64_t size_bytes, unsigned ways, unsigned line_bytes)
    : size(size_bytes), assoc(ways), lineBytes(line_bytes)
{
    panic_if(ways == 0, "CacheSim: zero associativity");
    panic_if(line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0,
             "CacheSim: line size must be a power of two");
    panic_if(size_bytes == 0, "CacheSim: zero capacity");
    panic_if(size_bytes % (static_cast<uint64_t>(line_bytes) * ways) != 0,
             "CacheSim: capacity not divisible by line*ways");

    lineShift = static_cast<unsigned>(std::countr_zero(line_bytes));
    sets = size_bytes / (static_cast<uint64_t>(line_bytes) * ways);
    tags.assign(sets * ways, 0);
    lastUse.assign(sets * ways, 0);
    flags.assign(sets * ways, 0);
    setOcc.assign(sets, 0);
}

bool
CacheSim::access(uint64_t addr, bool write)
{
    ++stats_.accesses;
    ++useClock;

    uint64_t line_addr = addr >> lineShift;
    uint64_t set = line_addr % sets;
    uint64_t tag = line_addr / sets;
    std::size_t base = static_cast<std::size_t>(set) * assoc;

    // Probe for a hit.
    for (unsigned w = 0; w < assoc; ++w) {
        std::size_t i = base + w;
        if ((flags[i] & kValid) && tags[i] == tag) {
            lastUse[i] = useClock;
            if (write)
                flags[i] |= kDirty;
            ++stats_.hits;
            return true;
        }
    }

    ++stats_.misses;

    // Choose a victim: an invalid way, else true-LRU. Invalid lines
    // keep lastUse == 0 (valid lines are always >= 1), so a single
    // first-minimum pass picks the first invalid way when one exists
    // and the true-LRU way otherwise.
    std::size_t victim = base;
    uint64_t victim_use = (flags[base] & kValid) ? lastUse[base] : 0;
    for (unsigned w = 1; w < assoc; ++w) {
        std::size_t i = base + w;
        uint64_t use = (flags[i] & kValid) ? lastUse[i] : 0;
        if (use < victim_use) {
            victim = i;
            victim_use = use;
        }
    }

    if (flags[victim] & kValid) {
        ++stats_.evictions;
        if (flags[victim] & kDirty)
            ++stats_.writebacks;
    } else {
        ++setOcc[set];
        ++validLines;
    }

    tags[victim] = tag;
    lastUse[victim] = useClock;
    flags[victim] = static_cast<uint8_t>(kValid | (write ? kDirty : 0));
    return false;
}

void
CacheSim::accessBlock(const AccessTrace &trace, std::size_t begin,
                      std::size_t end)
{
    panic_if(end > trace.size() || begin > end,
             "accessBlock: bad range [%zu, %zu) of %zu", begin, end,
             trace.size());

    const uint64_t num_sets = sets;
    const unsigned ways = assoc;
    const unsigned shift = lineShift;

    uint64_t clock = useClock;
    uint64_t n_hits = 0, n_miss = 0, n_evict = 0, n_wb = 0;

    for (std::size_t i = begin; i < end; ++i) {
        uint64_t addr = trace.addr(i);
        bool write = trace.isWrite(i);
        ++clock;

        uint64_t line_addr = addr >> shift;
        uint64_t set = line_addr % num_sets;
        uint64_t tag = line_addr / num_sets;
        std::size_t base = static_cast<std::size_t>(set) * ways;

        // Branchless probe: at most one valid way can carry the tag,
        // so a full conditional-select scan finds it without early
        // exits (no per-way branch misprediction on mixed streams).
        std::size_t hit_way = static_cast<std::size_t>(-1);
        for (unsigned w = 0; w < ways; ++w) {
            std::size_t slot = base + w;
            bool h = (flags[slot] & kValid) && tags[slot] == tag;
            hit_way = h ? slot : hit_way;
        }

        if (hit_way != static_cast<std::size_t>(-1)) {
            lastUse[hit_way] = clock;
            flags[hit_way] = static_cast<uint8_t>(
                flags[hit_way] | (write ? kDirty : 0));
            ++n_hits;
            continue;
        }

        ++n_miss;

        // Single-pass victim selection (see access()): invalid ways
        // present as lastUse 0 and therefore win the first-minimum
        // scan over any valid way.
        std::size_t victim = base;
        uint64_t victim_use = (flags[base] & kValid) ? lastUse[base] : 0;
        for (unsigned w = 1; w < ways; ++w) {
            std::size_t slot = base + w;
            uint64_t use = (flags[slot] & kValid) ? lastUse[slot] : 0;
            bool better = use < victim_use;
            victim = better ? slot : victim;
            victim_use = better ? use : victim_use;
        }

        uint8_t vf = flags[victim];
        if (vf & kValid) {
            ++n_evict;
            n_wb += (vf & kDirty) ? 1 : 0;
        } else {
            ++setOcc[set];
            ++validLines;
        }

        tags[victim] = tag;
        lastUse[victim] = clock;
        flags[victim] = static_cast<uint8_t>(kValid |
                                             (write ? kDirty : 0));
    }

    useClock = clock;
    stats_.accesses += end - begin;
    stats_.hits += n_hits;
    stats_.misses += n_miss;
    stats_.evictions += n_evict;
    stats_.writebacks += n_wb;
}

void
CacheSim::accessLineRun(uint64_t line_addr, uint64_t cnt, bool write)
{
    uint64_t set = line_addr % sets;
    uint64_t tag = line_addr / sets;
    std::size_t base = static_cast<std::size_t>(set) * assoc;

    // Clock semantics match the oracle: access i of the run carries
    // clock useClock + i + 1, and only the final value is observable
    // (the line's accesses are consecutive, so intermediate clocks
    // are never compared).
    useClock += cnt;
    stats_.accesses += cnt;

    for (unsigned w = 0; w < assoc; ++w) {
        std::size_t i = base + w;
        if ((flags[i] & kValid) && tags[i] == tag) {
            lastUse[i] = useClock;
            if (write)
                flags[i] |= kDirty;
            stats_.hits += cnt;
            return;
        }
    }

    // Miss on the first access of the run; the remaining cnt-1
    // accesses hit the freshly installed line.
    ++stats_.misses;
    stats_.hits += cnt - 1;

    std::size_t victim = base;
    uint64_t victim_use = (flags[base] & kValid) ? lastUse[base] : 0;
    for (unsigned w = 1; w < assoc; ++w) {
        std::size_t i = base + w;
        uint64_t use = (flags[i] & kValid) ? lastUse[i] : 0;
        if (use < victim_use) {
            victim = i;
            victim_use = use;
        }
    }

    if (flags[victim] & kValid) {
        ++stats_.evictions;
        if (flags[victim] & kDirty)
            ++stats_.writebacks;
    } else {
        ++setOcc[set];
        ++validLines;
    }

    tags[victim] = tag;
    lastUse[victim] = useClock;
    flags[victim] = static_cast<uint8_t>(kValid | (write ? kDirty : 0));
}

void
CacheSim::accessSegment(const SegDesc &seg)
{
    const uint64_t line = lineBytes;
    if (seg.count == 0)
        return;

    if (seg.stride == 0) {
        accessLineRun(seg.firstAddr >> lineShift, seg.count,
                      seg.write);
        return;
    }

    if (seg.stride > 0 && static_cast<uint64_t>(seg.stride) < line &&
        line % static_cast<uint64_t>(seg.stride) == 0) {
        // Dividing sub-line stride (the generators' hot shape): after
        // a possibly partial first line, every full line carries
        // exactly line/stride accesses -- one division total instead
        // of one per line run.
        const uint64_t s = static_cast<uint64_t>(seg.stride);
        const uint64_t per = line / s;
        uint64_t addr = seg.firstAddr;
        uint64_t line_addr = addr >> lineShift;
        uint64_t first =
            (((line_addr + 1) << lineShift) - addr + s - 1) / s;
        uint64_t run = std::min(first, seg.count);
        uint64_t i = 0;
        for (;;) {
            accessLineRun(line_addr, run, seg.write);
            i += run;
            if (i >= seg.count)
                return;
            ++line_addr;
            run = std::min(per, seg.count - i);
        }
    }

    uint64_t i = 0;
    while (i < seg.count) {
        uint64_t addr = seg.addr(i);
        uint64_t line_addr = addr >> lineShift;
        uint64_t run = 1;
        if (seg.stride > 0) {
            uint64_t s = static_cast<uint64_t>(seg.stride);
            if (s < line) {
                // Accesses until the next line boundary.
                uint64_t line_end = (line_addr + 1) << lineShift;
                run = (line_end - addr + s - 1) / s;
                run = std::min(run, seg.count - i);
            }
        } else {
            uint64_t s = static_cast<uint64_t>(-seg.stride);
            if (s < line) {
                // Accesses down to the current line's start.
                uint64_t line_start = line_addr << lineShift;
                run = (addr - line_start) / s + 1;
                run = std::min(run, seg.count - i);
            }
        }
        accessLineRun(line_addr, run, seg.write);
        i += run;
    }
}

bool
CacheSim::segmentSetsCold(const SegDesc &seg) const
{
    if (validLines == 0)
        return true;
    StreamShape sh = streamShape(seg, sets, lineBytes);
    uint64_t touched = std::min(sh.period, sh.distinct);
    for (uint64_t r = 0; r < touched; ++r) {
        if (setOcc[(sh.firstLine + r * sh.q) % sets] != 0)
            return false;
    }
    return true;
}

void
CacheSim::applyColdStream(const SegDesc &seg)
{
    panic_if(!analyticStreamApplicable(seg, lineBytes),
             "applyColdStream: segment not applicable");
    panic_if(!segmentSetsCold(seg),
             "applyColdStream: touched sets are not cold");

    StreamShape sh = streamShape(seg, sets, lineBytes);
    CacheStats s = analyticStreamStats(seg, sets, assoc, lineBytes);
    stats_.accesses += s.accesses;
    stats_.hits += s.hits;
    stats_.misses += s.misses;
    stats_.evictions += s.evictions;
    stats_.writebacks += s.writebacks;

    const uint64_t clock0 = useClock;
    useClock += seg.count;

    // Index of the last access to the t-th distinct line: the oracle
    // stamps that access's clock into the line's lastUse.
    const uint64_t stride = static_cast<uint64_t>(seg.stride);
    const uint64_t line = lineBytes;
    auto last_access = [&](uint64_t t) -> uint64_t {
        if (stride > line)
            return t; // one access per line (exact line multiples)
        if (stride == 0)
            return seg.count - 1;
        // Largest i with firstAddr + i*stride < (firstLine + t + 1)
        // * line; clamped to the run's end.
        uint64_t bound = (sh.firstLine + t + 1) * line - seg.firstAddr;
        uint64_t i = (bound + stride - 1) / stride - 1;
        return std::min<uint64_t>(i, seg.count - 1);
    };

    // Install the surviving tail: a cold set fills ways 0, 1, ... in
    // arrival order and then replaces round-robin (LRU == oldest
    // arrival), so the j-th arrival into a set lives in way
    // j mod assoc; only the last min(count, assoc) arrivals survive.
    const uint8_t install_flags =
        static_cast<uint8_t>(kValid | (seg.write ? kDirty : 0));
    uint64_t touched = std::min(sh.period, sh.distinct);
    for (uint64_t r = 0; r < touched; ++r) {
        uint64_t cnt = (sh.distinct - 1 - r) / sh.period + 1;
        uint64_t surv = std::min<uint64_t>(cnt, assoc);
        uint64_t set = (sh.firstLine + r * sh.q) % sets;
        std::size_t base = static_cast<std::size_t>(set) * assoc;
        for (uint64_t j = 0; j < surv; ++j) {
            uint64_t arrival = cnt - 1 - j;
            uint64_t t = r + arrival * sh.period;
            uint64_t line_addr = sh.firstLine + t * sh.q;
            std::size_t slot = base + arrival % assoc;
            tags[slot] = line_addr / sets;
            lastUse[slot] = clock0 + last_access(t) + 1;
            flags[slot] = install_flags;
        }
        setOcc[set] += static_cast<uint32_t>(surv);
        validLines += surv;
    }
}

CacheSetState
CacheSim::snapshotState() const
{
    CacheSetState st;
    st.sets = sets;
    st.assoc = assoc;
    st.lineBytes = lineBytes;
    st.tags = tags;
    st.lastUse = lastUse;
    st.flags = flags;
    st.useClock = useClock;
    st.stats = stats_;
    return st;
}

void
CacheSim::restoreState(const CacheSetState &state)
{
    panic_if(state.sets != sets || state.assoc != assoc ||
                 state.lineBytes != lineBytes,
             "restoreState: geometry mismatch (%llu sets x %u ways x "
             "%u B vs %llu x %u x %u)",
             static_cast<unsigned long long>(state.sets), state.assoc,
             state.lineBytes, static_cast<unsigned long long>(sets),
             assoc, lineBytes);
    panic_if(state.tags.size() != tags.size() ||
                 state.lastUse.size() != lastUse.size() ||
                 state.flags.size() != flags.size(),
             "restoreState: corrupt state (%zu lines vs %zu)",
             state.flags.size(), flags.size());
    tags = state.tags;
    lastUse = state.lastUse;
    flags = state.flags;
    useClock = state.useClock;
    stats_ = state.stats;

    // Rebuild the occupancy counters from the restored valid bits --
    // they are derived state and must never drift from it.
    setOcc.assign(sets, 0);
    validLines = 0;
    for (std::size_t i = 0; i < flags.size(); ++i) {
        if (flags[i] & kValid) {
            ++setOcc[i / assoc];
            ++validLines;
        }
    }
}

void
CacheSim::reset()
{
    tags.assign(tags.size(), 0);
    lastUse.assign(lastUse.size(), 0);
    flags.assign(flags.size(), 0);
    setOcc.assign(sets, 0);
    validLines = 0;
    useClock = 0;
    stats_ = CacheStats{};
}

} // namespace sim
} // namespace seqpoint
