/**
 * @file
 * Set-associative cache simulator implementation.
 */

#include "sim/cache_sim.hh"

#include <bit>

#include "common/logging.hh"

namespace seqpoint {
namespace sim {

double
CacheStats::hitRate() const
{
    return accesses ? static_cast<double>(hits) /
        static_cast<double>(accesses) : 0.0;
}

CacheSim::CacheSim(uint64_t size_bytes, unsigned assoc, unsigned line_bytes)
    : size(size_bytes), assoc(assoc), lineBytes(line_bytes)
{
    panic_if(assoc == 0, "CacheSim: zero associativity");
    panic_if(line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0,
             "CacheSim: line size must be a power of two");
    panic_if(size_bytes == 0, "CacheSim: zero capacity");
    panic_if(size_bytes % (static_cast<uint64_t>(line_bytes) * assoc) != 0,
             "CacheSim: capacity not divisible by line*assoc");

    lineShift = static_cast<unsigned>(std::countr_zero(line_bytes));
    sets = size_bytes / (static_cast<uint64_t>(line_bytes) * assoc);
    lines.assign(sets * assoc, Line{});
}

bool
CacheSim::access(uint64_t addr, bool write)
{
    ++stats_.accesses;
    ++useClock;

    uint64_t line_addr = addr >> lineShift;
    uint64_t set = line_addr % sets;
    uint64_t tag = line_addr / sets;

    Line *base = &lines[set * assoc];

    // Probe for a hit.
    for (unsigned w = 0; w < assoc; ++w) {
        Line &ln = base[w];
        if (ln.valid && ln.tag == tag) {
            ln.lastUse = useClock;
            ln.dirty = ln.dirty || write;
            ++stats_.hits;
            return true;
        }
    }

    ++stats_.misses;

    // Choose a victim: an invalid way, else true-LRU.
    Line *victim = &base[0];
    for (unsigned w = 0; w < assoc; ++w) {
        Line &ln = base[w];
        if (!ln.valid) {
            victim = &ln;
            break;
        }
        if (ln.lastUse < victim->lastUse)
            victim = &ln;
    }

    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty)
            ++stats_.writebacks;
    }

    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lastUse = useClock;
    return false;
}

void
CacheSim::reset()
{
    lines.assign(lines.size(), Line{});
    useClock = 0;
    stats_ = CacheStats{};
}

} // namespace sim
} // namespace seqpoint
