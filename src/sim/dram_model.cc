/**
 * @file
 * DRAM model implementation.
 */

#include "sim/dram_model.hh"

#include <algorithm>

namespace seqpoint {
namespace sim {

double
effectiveDramBandwidth(KernelClass klass, const GpuConfig &cfg)
{
    double eff = cfg.dramEfficiency;
    switch (klass) {
      case KernelClass::Embedding:
        // Gather/scatter: poor row-buffer locality.
        eff *= 0.45;
        break;
      case KernelClass::Transpose:
        // One strided side.
        eff *= 0.70;
        break;
      case KernelClass::Scalar:
        // Latency-bound single accesses.
        eff *= 0.20;
        break;
      default:
        break;
    }
    return cfg.dramBandwidth * eff;
}

DramService
serviceDram(KernelClass klass, double read_bytes, double write_bytes,
            double overlap_sec, const GpuConfig &cfg)
{
    DramService svc;
    double bw = effectiveDramBandwidth(klass, cfg);
    svc.readTimeSec = read_bytes / bw;

    double drain_bw = cfg.dramBandwidth * cfg.writeDrainFraction;
    svc.writeTimeSec = write_bytes / drain_bw;

    // Drain overlaps with whatever else the kernel is doing; only the
    // excess stalls the pipeline.
    double cover = std::max(overlap_sec, svc.readTimeSec);
    svc.writeStallSec = std::max(0.0, svc.writeTimeSec - cover);
    return svc;
}

} // namespace sim
} // namespace seqpoint
