/**
 * @file
 * GPU hardware configuration. Defaults model an AMD Radeon Vega
 * Frontier Edition class device (64 CUs, 16 GB HBM2) which is the
 * testbed in the SeqPoint paper; Table II's five variants are provided
 * as named constructors.
 */

#ifndef SEQPOINT_SIM_GPU_CONFIG_HH
#define SEQPOINT_SIM_GPU_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytestream.hh"
#include "common/units.hh"

namespace seqpoint {
namespace sim {

/**
 * Static description of the simulated GPU.
 *
 * All rates are in SI units (Hz, bytes/s); capacities in bytes.
 */
struct GpuConfig {
    /** Human-readable configuration name ("config#1" .. "config#5"). */
    std::string name = "config#1";

    /** Core (shader) clock in Hz. */
    double gclkHz = ghz(1.6);

    /** Number of compute units. */
    unsigned numCus = 64;

    /** SIMD units per CU. */
    unsigned simdsPerCu = 4;

    /** Vector lanes per SIMD. */
    unsigned lanesPerSimd = 16;

    /** Max in-flight wavefronts per CU (occupancy ceiling). */
    unsigned maxWavesPerCu = 40;

    /** Threads per wavefront. */
    unsigned waveSize = 64;

    /** Per-CU L1 vector cache capacity (0 disables the L1). */
    uint64_t l1SizeBytes = kib(16);

    /** L1 associativity. */
    unsigned l1Assoc = 4;

    /** Shared L2 capacity (0 disables the L2). */
    uint64_t l2SizeBytes = mib(4);

    /** L2 associativity. */
    unsigned l2Assoc = 16;

    /** Cache line size for both levels. */
    unsigned lineBytes = 64;

    /** Per-CU L1 bandwidth in bytes per core cycle. */
    double l1BytesPerCycle = 64.0;

    /** Chip-wide L2 bandwidth in bytes per core cycle. */
    double l2BytesPerCycle = 1024.0;

    /** Peak DRAM (HBM2) bandwidth in bytes/s. */
    double dramBandwidth = gbps(483.0);

    /** Achievable fraction of peak DRAM bandwidth for streams. */
    double dramEfficiency = 0.82;

    /** Fixed kernel launch overhead in seconds (driver + dispatch). */
    double launchOverheadSec = usec(4.0);

    /** Write buffer drain bandwidth as a fraction of DRAM bandwidth. */
    double writeDrainFraction = 0.45;

    /** @return Peak FP32 throughput in FLOP/s (FMA counts as two). */
    double peakFlops() const;

    /** @return Vector lanes across the whole chip. */
    unsigned totalLanes() const;

    /** @return Aggregate L1 bandwidth in bytes/s across all CUs. */
    double l1Bandwidth() const;

    /** @return L2 bandwidth in bytes/s. */
    double l2Bandwidth() const;

    /** @return True when the L1 caches are present. */
    bool hasL1() const { return l1SizeBytes > 0; }

    /** @return True when the L2 cache is present. */
    bool hasL2() const { return l2SizeBytes > 0; }

    /**
     * Full configuration signature: the name plus every parameter,
     * rendered losslessly. Two configurations compare equal under
     * this string exactly when every field matches (i.e. exactly
     * when operator== holds), so it is a correct external key for
     * per-configuration artifacts.
     */
    std::string signature() const;

    /**
     * Field-wise equality over every parameter. The name alone is
     * NOT sufficient identity: per-configuration state keyed by it
     * silently aliases differently-parameterised configs.
     */
    bool operator==(const GpuConfig &other) const = default;

    /** Baseline: 1.6 GHz, 64 CUs, 16 KB L1, 4 MB L2 (Table II #1). */
    static GpuConfig config1();

    /** Reduced clock: 852 MHz (Table II #2). */
    static GpuConfig config2();

    /** Reduced CU count: 16 CUs (Table II #3). */
    static GpuConfig config3();

    /** L1 disabled (Table II #4). */
    static GpuConfig config4();

    /** L2 disabled (Table II #5). */
    static GpuConfig config5();

    /** All five Table II configurations, in order. */
    static std::vector<GpuConfig> table2();
};

/**
 * Serialize every configuration parameter (snapshot store). The
 * decoded configuration compares equal under operator== -- and
 * therefore under signature() -- to the encoded one.
 */
void encodeGpuConfig(ByteWriter &w, const GpuConfig &cfg);

/** Decode a configuration written by encodeGpuConfig(). */
GpuConfig decodeGpuConfig(ByteReader &r);

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_GPU_CONFIG_HH
