/**
 * @file
 * Kernel timing implementation.
 */

#include "sim/timing_model.hh"

#include <algorithm>

#include "sim/cache_model.hh"
#include "sim/compute_model.hh"
#include "sim/dram_model.hh"
#include "sim/occupancy.hh"

namespace seqpoint {
namespace sim {

KernelTiming
timeKernel(const KernelDesc &desc, const GpuConfig &cfg)
{
    KernelTiming kt;

    Occupancy occ = computeOccupancy(desc, cfg);
    ComputeEstimate ce = estimateCompute(desc, occ, cfg);
    MemoryBreakdown mb = evalMemoryBreakdown(desc, cfg);

    // Hierarchical service time. Each level serves its share at its
    // own bandwidth; levels pipeline, so the slowest stage dominates.
    // When a level is disabled, its share was already folded into the
    // lower levels by the cache model (capacity 0 -> zero hits).
    double t_l1 = cfg.hasL1() && cfg.l1Bandwidth() > 0.0
        ? mb.l1Bytes / cfg.l1Bandwidth() : 0.0;
    double t_l2 = cfg.hasL2() && cfg.l2Bandwidth() > 0.0
        ? mb.l2Bytes / cfg.l2Bandwidth() : 0.0;

    // Split DRAM traffic back into read/write shares proportionally.
    double dram_write_share = desc.totalBytes() > 0.0
        ? desc.bytesOut / desc.totalBytes() : 0.0;
    double dram_wr_bytes = mb.dramBytes * dram_write_share;
    double dram_rd_bytes = mb.dramBytes - dram_wr_bytes;

    DramService svc = serviceDram(desc.klass, dram_rd_bytes, dram_wr_bytes,
                                  ce.timeSec, cfg);

    // Un-hidden L1-miss latency: reuse the kernel counted on that is
    // not captured (capacity pressure or a disabled L1) shows up as
    // issue stalls that lengthen the compute phase.
    double missing_l1_reuse = std::max(0.0,
        desc.reuseL1 - mb.l1HitRate);
    kt.computeSec = ce.timeSec * (1.0 + missing_l1_reuse);
    kt.memorySec = std::max({t_l1, t_l2, svc.readTimeSec});
    kt.memoryBound = kt.memorySec > kt.computeSec;

    double body = std::max(kt.computeSec, kt.memorySec);
    kt.timeSec = cfg.launchOverheadSec + body + svc.writeStallSec;

    PerfCounters &c = kt.counters;
    c.kernelsLaunched = 1;
    c.valuInsts = ce.valuInsts;
    c.saluInsts = ce.saluInsts;
    c.bytesLoaded = desc.bytesIn;
    c.bytesStored = desc.bytesOut;
    c.l1HitBytes = mb.l1Bytes;
    c.l2HitBytes = mb.l2Bytes;
    c.dramBytes = mb.dramBytes;
    c.writeStallSec = svc.writeStallSec;
    c.busySec = body + svc.writeStallSec;
    c.launchSec = cfg.launchOverheadSec;
    return kt;
}

} // namespace sim
} // namespace seqpoint
