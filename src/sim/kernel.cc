/**
 * @file
 * Kernel descriptor helpers.
 */

#include "sim/kernel.hh"

namespace seqpoint {
namespace sim {

const char *
kernelClassName(KernelClass klass)
{
    switch (klass) {
      case KernelClass::Gemm: return "gemm";
      case KernelClass::Elementwise: return "elementwise";
      case KernelClass::Reduction: return "reduce";
      case KernelClass::Softmax: return "softmax";
      case KernelClass::BatchNorm: return "batchnorm";
      case KernelClass::Embedding: return "embedding";
      case KernelClass::Transpose: return "transpose";
      case KernelClass::Memcpy: return "memcpy";
      case KernelClass::Scalar: return "scalar-op";
    }
    return "?";
}

double
KernelDesc::arithmeticIntensity() const
{
    double bytes = totalBytes();
    return bytes > 0.0 ? flops / bytes : 0.0;
}

KernelDesc
makeElementwise(const std::string &name, double elems,
                double flops_per_elem, double streams_in,
                double streams_out)
{
    KernelDesc k;
    k.name = name;
    k.klass = KernelClass::Elementwise;
    k.flops = elems * flops_per_elem;
    k.bytesIn = elems * 4.0 * streams_in;
    k.bytesOut = elems * 4.0 * streams_out;
    // Streaming kernels touch each byte once: working set is the
    // whole footprint, so only very small launches cache well.
    k.workingSetL1 = (k.bytesIn + k.bytesOut);
    k.workingSetL2 = (k.bytesIn + k.bytesOut);
    k.workItems = elems;
    k.reuseL1 = 0.10;
    k.reuseL2 = 0.55;
    return k;
}

KernelDesc
makeReduction(const std::string &name, double elems)
{
    KernelDesc k;
    k.name = name;
    k.klass = KernelClass::Reduction;
    k.flops = elems;
    k.bytesIn = elems * 4.0;
    k.bytesOut = 4.0 * 64.0; // partial sums
    k.workingSetL1 = elems * 4.0;
    k.workingSetL2 = elems * 4.0;
    k.workItems = elems;
    k.reuseL1 = 0.05;
    k.reuseL2 = 0.45;
    return k;
}

KernelDesc
makeMemcpy(const std::string &name, double bytes)
{
    KernelDesc k;
    k.name = name;
    k.klass = KernelClass::Memcpy;
    k.flops = 0.0;
    k.bytesIn = bytes;
    k.bytesOut = bytes;
    k.workingSetL1 = 2.0 * bytes;
    k.workingSetL2 = 2.0 * bytes;
    k.workItems = bytes / 4.0;
    k.reuseL1 = 0.0;
    k.reuseL2 = 0.35;
    return k;
}

} // namespace sim
} // namespace seqpoint
