/**
 * @file
 * The Gpu facade: executes kernel sequences on a configuration and
 * returns per-kernel records and aggregated counters. This is the
 * simulated stand-in for the paper's Vega FE + Radeon Compute
 * Profiler measurement stack.
 */

#ifndef SEQPOINT_SIM_GPU_HH
#define SEQPOINT_SIM_GPU_HH

#include <array>
#include <string>
#include <vector>

#include "sim/counters.hh"
#include "sim/gpu_config.hh"
#include "sim/kernel.hh"
#include "sim/timing_cache.hh"
#include "sim/timing_model.hh"

namespace seqpoint {
namespace sim {

/** One executed kernel: descriptor identity plus measured behaviour. */
struct KernelRecord {
    std::string name;          ///< Kernel name (with variant suffix).
    KernelClass klass;         ///< Operation class.
    uint64_t launches = 1;     ///< Back-to-back launches folded in.
    double timeSec = 0.0;      ///< Wall time of all launches.
    bool memoryBound = false;  ///< Roofline side it landed on.
    PerfCounters counters;     ///< Counter bundle for all launches.
};

/** Aggregate result of executing a kernel sequence. */
struct ExecutionResult {
    double totalSec = 0.0;           ///< Sum of kernel wall times.
    PerfCounters counters;           ///< Summed counters.
    uint64_t launches = 0;           ///< Kernel launches executed.

    /** Wall time attributed to each kernel class. */
    std::array<double, numKernelClasses> classSec{};

    std::vector<KernelRecord> records; ///< Per-kernel records
                                       ///< (empty unless detailed).
};

/**
 * A simulated GPU bound to one hardware configuration.
 *
 * Kernels execute back-to-back in launch order (the MI frameworks the
 * paper profiles submit to a single in-order stream).
 *
 * Each unique kernel signature is timed once per device and replayed
 * from the kernel-timing cache thereafter (the paper's Fig 5
 * unique-kernel observation applied to the simulator). The cache can
 * be disabled to recover the time-every-launch baseline; results are
 * bit-identical either way because the timing model is a pure
 * function of (signature, configuration).
 */
class Gpu
{
  public:
    /**
     * Construct a device.
     *
     * @param cfg Hardware configuration (copied).
     * @param enable_timing_cache Memoize per-signature kernel timings.
     */
    explicit Gpu(GpuConfig cfg, bool enable_timing_cache = true);

    /** @return The device configuration. */
    const GpuConfig &config() const { return cfg; }

    /** Enable or disable the kernel-timing cache. */
    void setTimingCacheEnabled(bool enable) { cacheEnabled = enable; }

    /** @return True when the kernel-timing cache is in use. */
    bool timingCacheEnabled() const { return cacheEnabled; }

    /** @return Kernel-timing-cache hit/miss statistics. */
    TimingCacheStats timingCacheStats() const { return cache.stats(); }

    /** @return Distinct kernel signatures timed so far. */
    size_t uniqueKernelsTimed() const { return cache.size(); }

    /** Drop every cached timing and reset the statistics. */
    void clearTimingCache() { cache.clear(); }

    /** @return A copy of every cached kernel timing. */
    std::vector<TimingCacheEntry> timingCacheSnapshot() const
    {
        return cache.snapshotEntries();
    }

    /**
     * Seed the timing cache from a snapshot taken on a device with an
     * equal configuration (see KernelTimingCache::seed()).
     */
    void seedTimingCache(const std::vector<TimingCacheEntry> &entries)
    {
        cache.seed(entries);
    }

    /**
     * Execute one kernel.
     *
     * @param desc Kernel descriptor.
     * @return Record with timing and counters.
     */
    KernelRecord execute(const KernelDesc &desc) const;

    /**
     * Execute one kernel and fold it into an aggregate result
     * without materialising a KernelRecord (no name copy, no record
     * allocation). The accumulation order and arithmetic match
     * execute() exactly, so aggregate results are bit-identical to
     * the record-keeping path.
     *
     * @param desc Kernel descriptor.
     * @param result Aggregate to accumulate into.
     */
    void accumulate(const KernelDesc &desc, ExecutionResult &result) const;

    /**
     * Execute a sequence of kernels.
     *
     * With keep_records == false the records-free accumulation path
     * is used: no KernelRecord (and no kernel-name std::string) is
     * constructed per launch, only the aggregates are updated.
     *
     * @param kernels Launch-ordered kernel descriptors.
     * @param keep_records Retain per-kernel records (memory-heavy;
     *                     used when profiling single iterations).
     * @return Aggregated execution result.
     */
    ExecutionResult executeAll(const std::vector<KernelDesc> &kernels,
                               bool keep_records = false) const;

  private:
    GpuConfig cfg;
    bool cacheEnabled = true;
    mutable KernelTimingCache cache;
};

} // namespace sim
} // namespace seqpoint

#endif // SEQPOINT_SIM_GPU_HH
