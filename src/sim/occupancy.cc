/**
 * @file
 * Occupancy model implementation.
 */

#include "sim/occupancy.hh"

#include <algorithm>
#include <cmath>

namespace seqpoint {
namespace sim {

Occupancy
computeOccupancy(const KernelDesc &desc, const GpuConfig &cfg)
{
    Occupancy occ;
    double waves = std::ceil(std::max(desc.workItems, 1.0) /
        static_cast<double>(cfg.waveSize));
    occ.waves = waves;

    double total_simds = static_cast<double>(cfg.numCus) *
        static_cast<double>(cfg.simdsPerCu);

    // Waves spread round-robin across CUs.
    occ.activeCus = std::min<double>(cfg.numCus, waves);

    // Lane utilization: each SIMD needs `latencyHideWaves` resident
    // waves to stream back-to-back VALU issues.
    double waves_per_simd = waves / total_simds;
    double ramp = std::min(1.0, waves_per_simd / latencyHideWaves);

    // Sub-wave launches still occupy a full wave slot.
    double lane_fill = std::min(1.0,
        desc.workItems / (waves * static_cast<double>(cfg.waveSize)));

    occ.utilization = std::max(1e-3, ramp * lane_fill);
    return occ;
}

} // namespace sim
} // namespace seqpoint
