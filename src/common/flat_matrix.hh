/**
 * @file
 * FlatMatrix: a dense row-major matrix of doubles in one contiguous
 * allocation. Replaces `vector<vector<double>>` in the hot numeric
 * paths (k-means, profile vectors): no per-row heap indirection, rows
 * are cache-line contiguous, and row scans vectorise.
 */

#ifndef SEQPOINT_COMMON_FLAT_MATRIX_HH
#define SEQPOINT_COMMON_FLAT_MATRIX_HH

#include <cstddef>
#include <vector>

namespace seqpoint {

/** Dense row-major matrix over one contiguous buffer. */
class FlatMatrix
{
  public:
    /** Construct an empty 0 x 0 matrix. */
    FlatMatrix() = default;

    /**
     * Construct a rows x cols matrix.
     *
     * @param rows Row count.
     * @param cols Column count.
     * @param init Initial value for every element.
     */
    FlatMatrix(std::size_t rows, std::size_t cols, double init = 0.0);

    /**
     * Build from a nested vector-of-rows layout.
     *
     * @param nested Rows; all must have the same length.
     */
    static FlatMatrix fromNested(
        const std::vector<std::vector<double>> &nested);

    /** @return The nested vector-of-rows equivalent (for interop). */
    std::vector<std::vector<double>> toNested() const;

    /** @return Row count. */
    std::size_t rows() const { return rows_; }

    /** @return Column count. */
    std::size_t cols() const { return cols_; }

    /** @return True when the matrix has no elements. */
    bool empty() const { return data_.empty(); }

    /** @return Pointer to the start of row r (contiguous cols()). */
    double *row(std::size_t r) { return data_.data() + r * cols_; }

    /** @return Const pointer to the start of row r. */
    const double *row(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** @return Element (r, c). */
    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    /** @return Element (r, c). */
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** @return The whole buffer, row-major. */
    double *data() { return data_.data(); }

    /** @return The whole buffer, row-major. */
    const double *data() const { return data_.data(); }

    /** Set every element to v. */
    void fill(double v);

    /**
     * Append one row (the matrix must be empty or have matching
     * column count; an empty matrix adopts the row's length).
     *
     * @param src Row values, src_len of them.
     * @param src_len Row length.
     */
    void appendRow(const double *src, std::size_t src_len);

    /** Append one row from a vector. */
    void appendRow(const std::vector<double> &src)
    {
        appendRow(src.data(), src.size());
    }

    /** Copy row r of another matrix with the same column count. */
    void appendRow(const FlatMatrix &other, std::size_t r)
    {
        appendRow(other.row(r), other.cols());
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Squared Euclidean distance between two length-n arrays.
 *
 * @param a First vector.
 * @param b Second vector.
 * @param n Length.
 */
double sqDistance(const double *a, const double *b, std::size_t n);

/** Dot product of two length-n arrays. */
double dotProduct(const double *a, const double *b, std::size_t n);

/** Squared L2 norm of a length-n array. */
double sqNorm(const double *a, std::size_t n);

} // namespace seqpoint

#endif // SEQPOINT_COMMON_FLAT_MATRIX_HH
