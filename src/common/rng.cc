/**
 * @file
 * PCG32 implementation and derived distributions.
 */

#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace seqpoint {

Rng::Rng(uint64_t seed, uint64_t stream)
    : state(0), inc((stream << 1u) | 1u)
{
    next32();
    state += seed;
    next32();
}

uint32_t
Rng::next32()
{
    uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    uint32_t xorshifted =
        static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

uint64_t
Rng::next64()
{
    return (static_cast<uint64_t>(next32()) << 32) | next32();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    panic_if(hi < lo, "uniformInt: hi (%lld) < lo (%lld)",
             static_cast<long long>(hi), static_cast<long long>(lo));
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next64());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - (UINT64_MAX % span);
    uint64_t v;
    do {
        v = next64();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % span);
}

double
Rng::uniformDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniformDouble(double lo, double hi)
{
    panic_if(hi <= lo, "uniformDouble: hi <= lo");
    return lo + (hi - lo) * uniformDouble();
}

double
Rng::normal(double mean, double stdev)
{
    panic_if(stdev < 0, "normal: negative stdev");
    if (haveSpareNormal) {
        haveSpareNormal = false;
        return mean + stdev * spareNormal;
    }
    double u1, u2;
    do {
        u1 = uniformDouble();
    } while (u1 <= 0.0);
    u2 = uniformDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal = mag * std::sin(2.0 * M_PI * u2);
    haveSpareNormal = true;
    return mean + stdev * mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::gamma(double shape, double scale)
{
    panic_if(shape <= 0 || scale <= 0, "gamma: non-positive parameter");
    if (shape < 1.0) {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        double u = uniformDouble();
        while (u <= 0.0)
            u = uniformDouble();
        return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia & Tsang.
    double d = shape - 1.0 / 3.0;
    double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = normal(0.0, 1.0);
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        double u = uniformDouble();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return scale * d * v;
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return scale * d * v;
        }
    }
}

int64_t
Rng::exponentialInt(double rate)
{
    panic_if(rate <= 0, "exponentialInt: non-positive rate");
    double u = uniformDouble();
    while (u <= 0.0)
        u = uniformDouble();
    return static_cast<int64_t>(std::floor(-std::log(u) / rate));
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        panic_if(w < 0, "weightedIndex: negative weight");
        total += w;
    }
    panic_if(total <= 0, "weightedIndex: all weights zero");
    double pick = uniformDouble() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (pick < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork(uint64_t salt)
{
    uint64_t child_seed = next64() ^ (salt * 0x9e3779b97f4a7c15ULL);
    uint64_t child_stream = next64() ^ salt;
    return Rng(child_seed, child_stream);
}

} // namespace seqpoint
