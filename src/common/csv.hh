/**
 * @file
 * Minimal CSV writer so bench harnesses can emit machine-readable
 * series next to the human-readable tables.
 */

#ifndef SEQPOINT_COMMON_CSV_HH
#define SEQPOINT_COMMON_CSV_HH

#include <string>
#include <vector>

namespace seqpoint {

/**
 * In-memory CSV document with RFC-4180-style quoting.
 */
class CsvWriter
{
  public:
    /**
     * Construct with the header row.
     *
     * @param headers Column names; defines the column count.
     */
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a data row; must match the column count. */
    void addRow(const std::vector<std::string> &cells);

    /** Append a row of doubles (rendered with %.6g). */
    void addRow(const std::vector<double> &values);

    /** @return Document text including the header row. */
    std::string str() const;

    /**
     * Write the document to a file.
     *
     * @param path Destination path.
     * @return true on success.
     */
    bool writeFile(const std::string &path) const;

  private:
    size_t columns;
    std::string body;

    static std::string escape(const std::string &cell);
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_CSV_HH
