/**
 * @file
 * Implementation of string helpers.
 */

#include "common/strutil.hh"

#include <cstdio>

namespace seqpoint {

std::string
vcsprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);

    if (needed < 0)
        return std::string(fmt);

    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vcsprintf(fmt, ap);
    va_end(ap);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> fields;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    fields.push_back(cur);
    return fields;
}

std::string
compactDouble(double value, int max_decimals)
{
    std::string s = csprintf("%.*f", max_decimals, value);
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
    }
    // Tiny negatives round (or trim) to "-0"; the sign carries no
    // information at this precision, so normalise to "0".
    if (s == "-0")
        s = "0";
    return s;
}

} // namespace seqpoint
