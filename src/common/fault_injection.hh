/**
 * @file
 * Deterministic fault injection for the robustness tests and the
 * chaos bench: named fault points compiled into the IO and scheduler
 * paths (snapshot reads/writes, registry disk operations, cell
 * evaluation) that an armed rule can turn into recoverable failures.
 *
 * Determinism is the whole point -- a chaos run must be replayable:
 *
 *   - count-triggered rules fire on an explicit list of occurrence
 *     numbers (the 1st, 3rd, ... time the point is passed);
 *   - seeded rules fire on the occurrences a splitmix64 stream of the
 *     given seed selects, capped at a maximum number of shots (so a
 *     retry budget can be provisioned to outlast them);
 *   - rules can be pinned to one detail (one cell index, one file
 *     name) so concurrent sweeps fault the same logical work
 *     regardless of thread interleaving.
 *
 * With nothing armed (the production state) a fault point is one
 * relaxed atomic load.
 */

#ifndef SEQPOINT_COMMON_FAULT_INJECTION_HH
#define SEQPOINT_COMMON_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hh"
#include "common/status.hh"
#include "common/thread_annotations.hh"

namespace seqpoint {

/** Process-wide registry of armed fault rules. */
class FaultInjector
{
  public:
    /** @return The process-wide injector. */
    static FaultInjector &instance();

    /**
     * Arm a count-triggered rule: the point fires on exactly the
     * listed occurrence numbers (1-based, counted per rule across
     * matching events).
     *
     * @param site Fault-point name (e.g. "snapshot_io.read").
     * @param detail Pin to one event detail (a path, a cell index);
     *               "" matches every event at the site.
     * @param occurrences 1-based occurrence numbers that fail.
     * @param code Error classification of the injected failures.
     */
    void armAt(const std::string &site, const std::string &detail,
               std::vector<uint64_t> occurrences,
               ErrorCode code = ErrorCode::IoError);

    /**
     * Arm a seeded rule: occurrence n fires when the splitmix64
     * stream of `seed` maps n below `rate`, until `max_fires` shots
     * have been injected. Same seed, same occurrence sequence -> same
     * faults, every run.
     *
     * @param site Fault-point name.
     * @param detail Pin to one event detail; "" matches every event.
     * @param seed Deterministic stream seed.
     * @param rate Per-occurrence fire probability in [0, 1].
     * @param max_fires Shot cap (provision retries above this).
     * @param code Error classification of the injected failures.
     */
    void armSeeded(const std::string &site, const std::string &detail,
                   uint64_t seed, double rate, uint64_t max_fires,
                   ErrorCode code = ErrorCode::IoError);

    /** Disarm every rule and zero every counter. */
    void reset();

    /** @return Total faults injected by rules on `site` so far. */
    uint64_t fired(const std::string &site) const;

    /** @return Times any event at `site` passed a fault point. */
    uint64_t occurrences(const std::string &site) const;

    /**
     * Record one event at a fault point and decide its fate.
     *
     * @param site Fault-point name.
     * @param detail Event detail (path, cell index, ...).
     * @return OK to proceed, or the injected failure.
     */
    Status check(const std::string &site, const std::string &detail);

  private:
    FaultInjector() = default;

    /** One armed rule; `seen`/`shots` are its private counters. */
    struct Rule {
        std::string site;
        std::string detail; ///< "" = any detail.
        ErrorCode code = ErrorCode::IoError;
        std::vector<uint64_t> occurrences; ///< Count-triggered list.
        bool seeded = false;
        uint64_t seed = 0;
        double rate = 0.0;
        uint64_t maxFires = 0;
        uint64_t seen = 0;  ///< Matching events so far.
        uint64_t shots = 0; ///< Faults injected so far.
    };

    /** Per-site counters, for tests and chaos-report accounting. */
    struct SiteStats {
        uint64_t occurrences = 0;
        uint64_t fired = 0;
    };

    std::atomic<uint64_t> armedRules{0};
    mutable Mutex mu;
    std::vector<Rule> rules SEQ_GUARDED_BY(mu);
    std::vector<std::pair<std::string, SiteStats>> sites
        SEQ_GUARDED_BY(mu);

    SiteStats &siteStats(const std::string &site) SEQ_REQUIRES(mu);
};

/**
 * A fault point: records the event and throws RecoverableError when
 * an armed rule fires. Call at the top of an operation whose failure
 * the containment layer must survive.
 *
 * @param site Fault-point name.
 * @param detail Event detail ("" when there is no natural one).
 */
void faultPoint(const std::string &site,
                const std::string &detail = "");

} // namespace seqpoint

#endif // SEQPOINT_COMMON_FAULT_INJECTION_HH
