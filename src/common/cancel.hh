/**
 * @file
 * Cooperative cancellation for long-running work: a CancelToken a
 * request owner arms (explicitly, or through a deadline) and the
 * expensive loops poll at checkpoints. A fired checkpoint unwinds by
 * throwing CancelledError -- a RecoverableError subclass carrying a
 * classified Status (Timeout for an expired deadline, Cancelled for
 * an explicit cancel) -- so the containment layers that already speak
 * Status can report it, while boundaries that must not *absorb* a
 * cancellation (snapshot loads that would otherwise quarantine a
 * healthy file, scheduler cells that would otherwise burn retries)
 * catch the subclass first and rethrow.
 *
 * Checkpoints reach code that was never written to take a token
 * parameter (profiler sweeps, snapshot decode) through a thread-local
 * current token installed by CancelScope. With no scope installed a
 * checkpoint is one thread-local load -- the production cost of the
 * whole mechanism is nil until someone actually wants a deadline.
 * Fan-out helpers (ThreadPool::parallelFor bodies) must re-install
 * the scope on the worker thread; Profiler's sweep does.
 */

#ifndef SEQPOINT_COMMON_CANCEL_HH
#define SEQPOINT_COMMON_CANCEL_HH

#include <atomic>
#include <limits>
#include <string>

#include "common/status.hh"

namespace seqpoint {

/**
 * Cancellation unwinding through code not written in Result style.
 * Subclasses RecoverableError so generic containment still classifies
 * it; boundaries that must pass cancellation through catch this type
 * first and rethrow.
 */
class CancelledError : public RecoverableError
{
  public:
    using RecoverableError::RecoverableError;
};

/**
 * One request's cancellation state: an explicit cancel flag plus an
 * optional deadline on the monotonic clock. Shared by reference
 * between the owner (who cancels) and the workers (who poll); all
 * members are atomics, so concurrent cancel/poll is race-free.
 * Deliberately lock-free: there is no mutex here, so thread-safety
 * analysis has nothing to guard (see common/thread_annotations.hh).
 */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** @return Monotonic now in seconds (the deadline clock). */
    static double now();

    /** Request cancellation (sticky; thread-safe). */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /**
     * Arm a deadline.
     *
     * @param deadline_sec Absolute monotonic time (CancelToken::now()
     *        base) after which the token reads as fired; infinity
     *        disarms.
     */
    void
    setDeadline(double deadline_sec)
    {
        deadline_.store(deadline_sec, std::memory_order_relaxed);
    }

    /** Arm a deadline `seconds` from now (<= 0 fires immediately). */
    void armAfter(double seconds) { setDeadline(now() + seconds); }

    /** @return The armed deadline (infinity when none). */
    double
    deadline() const
    {
        return deadline_.load(std::memory_order_relaxed);
    }

    /** @return True when cancelled or past the deadline. */
    bool
    fired() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        return now() > deadline_.load(std::memory_order_relaxed);
    }

    /**
     * @return The classified reason: Cancelled for an explicit
     *         cancel, Timeout for an expired deadline, OK otherwise.
     */
    Status
    status(const std::string &what = "") const
    {
        if (cancelled_.load(std::memory_order_relaxed)) {
            return Status::error(ErrorCode::Cancelled,
                                 what.empty() ? "cancelled"
                                              : what + ": cancelled");
        }
        if (now() > deadline_.load(std::memory_order_relaxed)) {
            return Status::error(ErrorCode::Timeout,
                                 what.empty()
                                     ? "deadline exceeded"
                                     : what + ": deadline exceeded");
        }
        return Status();
    }

    /**
     * Throw CancelledError when fired; no-op otherwise.
     *
     * @param site Name of the checkpoint (error-message context).
     */
    void
    checkpoint(const char *site) const
    {
        if (fired())
            throw CancelledError(status(site));
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<double> deadline_{
        std::numeric_limits<double>::infinity()};
};

/**
 * Install `token` as the calling thread's current cancellation
 * context for this scope (restoring the previous one on exit, so
 * scopes nest). Null is allowed and clears the context.
 */
class CancelScope
{
  public:
    explicit CancelScope(const CancelToken *token);
    ~CancelScope();

    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    const CancelToken *previous;
};

/** @return The calling thread's current token (null when none). */
const CancelToken *currentCancelToken();

/**
 * Checkpoint against the thread's current token: throws
 * CancelledError when an installed token has fired; a bare
 * thread-local load when no scope is installed. Sprinkled through the
 * expensive loops (profiling sweep, epoch assembly, snapshot decode,
 * scheduler cells).
 *
 * @param site Name of the checkpoint (error-message context).
 */
inline void
cancelCheckpoint(const char *site)
{
    if (const CancelToken *token = currentCancelToken())
        token->checkpoint(site);
}

} // namespace seqpoint

#endif // SEQPOINT_COMMON_CANCEL_HH
