/**
 * @file
 * Cancellation context implementation: the monotonic clock and the
 * per-thread current-token slot.
 */

#include "common/cancel.hh"

#include <chrono>

namespace seqpoint {

namespace {

thread_local const CancelToken *tlsToken = nullptr;

} // anonymous namespace

double
CancelToken::now()
{
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now().time_since_epoch()).count();
}

CancelScope::CancelScope(const CancelToken *token) : previous(tlsToken)
{
    tlsToken = token;
}

CancelScope::~CancelScope()
{
    tlsToken = previous;
}

const CancelToken *
currentCancelToken()
{
    return tlsToken;
}

} // namespace seqpoint
