/**
 * @file
 * ASCII table writer used by the bench harnesses to print paper-style
 * table and figure data.
 */

#ifndef SEQPOINT_COMMON_TABLE_HH
#define SEQPOINT_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace seqpoint {

/**
 * Column-aligned ASCII table with a header row.
 */
class Table
{
  public:
    /**
     * Construct with column headers.
     *
     * @param headers Column names; defines the column count.
     */
    explicit Table(std::vector<std::string> headers);

    /**
     * Append a row; must match the column count.
     *
     * @param cells Cell strings, one per column.
     */
    void addRow(std::vector<std::string> cells);

    /** Convenience: append a row of printf-formatted doubles. */
    void addRow(const std::string &label, const std::vector<double> &values,
                const char *fmt = "%.3f");

    /** @return Number of data rows. */
    size_t numRows() const { return rows.size(); }

    /** @return The rendered table, newline terminated. */
    std::string render() const;

    /** Render with a caption line above the table. */
    std::string render(const std::string &caption) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_TABLE_HH
