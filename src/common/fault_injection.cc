/**
 * @file
 * Fault-injector implementation.
 */

#include "common/fault_injection.hh"

#include <algorithm>

#include "common/strutil.hh"

namespace seqpoint {

namespace {

/** splitmix64: the seeded rules' per-occurrence decision stream. */
uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // anonymous namespace

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::SiteStats &
FaultInjector::siteStats(const std::string &site)
{
    for (auto &entry : sites) {
        if (entry.first == site)
            return entry.second;
    }
    sites.emplace_back(site, SiteStats{});
    return sites.back().second;
}

void
FaultInjector::armAt(const std::string &site, const std::string &detail,
                     std::vector<uint64_t> occurrences, ErrorCode code)
{
    panic_if(code == ErrorCode::Ok,
             "FaultInjector::armAt: Ok is not a failure");
    MutexLock lock(mu);
    Rule rule;
    rule.site = site;
    rule.detail = detail;
    rule.code = code;
    rule.occurrences = std::move(occurrences);
    std::sort(rule.occurrences.begin(), rule.occurrences.end());
    rules.push_back(std::move(rule));
    armedRules.store(rules.size(), std::memory_order_release);
}

void
FaultInjector::armSeeded(const std::string &site,
                         const std::string &detail, uint64_t seed,
                         double rate, uint64_t max_fires, ErrorCode code)
{
    panic_if(code == ErrorCode::Ok,
             "FaultInjector::armSeeded: Ok is not a failure");
    panic_if(!(rate >= 0.0 && rate <= 1.0),
             "FaultInjector::armSeeded: rate %f outside [0, 1]", rate);
    MutexLock lock(mu);
    Rule rule;
    rule.site = site;
    rule.detail = detail;
    rule.code = code;
    rule.seeded = true;
    rule.seed = seed;
    rule.rate = rate;
    rule.maxFires = max_fires;
    rules.push_back(std::move(rule));
    armedRules.store(rules.size(), std::memory_order_release);
}

void
FaultInjector::reset()
{
    MutexLock lock(mu);
    rules.clear();
    sites.clear();
    armedRules.store(0, std::memory_order_release);
}

uint64_t
FaultInjector::fired(const std::string &site) const
{
    MutexLock lock(mu);
    for (const auto &entry : sites) {
        if (entry.first == site)
            return entry.second.fired;
    }
    return 0;
}

uint64_t
FaultInjector::occurrences(const std::string &site) const
{
    MutexLock lock(mu);
    for (const auto &entry : sites) {
        if (entry.first == site)
            return entry.second.occurrences;
    }
    return 0;
}

Status
FaultInjector::check(const std::string &site, const std::string &detail)
{
    // Production fast path: nothing armed, nothing counted.
    if (armedRules.load(std::memory_order_acquire) == 0)
        return Status();

    MutexLock lock(mu);
    SiteStats &stats = siteStats(site);
    ++stats.occurrences;

    for (Rule &rule : rules) {
        if (rule.site != site ||
            (!rule.detail.empty() && rule.detail != detail)) {
            continue;
        }
        ++rule.seen;

        bool fire;
        if (rule.seeded) {
            fire = rule.shots < rule.maxFires &&
                static_cast<double>(splitmix64(rule.seed + rule.seen)) <
                    rule.rate * 18446744073709551616.0; // 2^64
        } else {
            fire = std::binary_search(rule.occurrences.begin(),
                                      rule.occurrences.end(), rule.seen);
        }
        if (!fire)
            continue;

        ++rule.shots;
        ++stats.fired;
        return Status::error(
            rule.code,
            csprintf("injected fault at %s%s%s (occurrence %llu)",
                     site.c_str(), detail.empty() ? "" : ":",
                     detail.c_str(),
                     static_cast<unsigned long long>(rule.seen)));
    }
    return Status();
}

void
faultPoint(const std::string &site, const std::string &detail)
{
    Status st = FaultInjector::instance().check(site, detail);
    if (!st.ok())
        throw RecoverableError(std::move(st));
}

} // namespace seqpoint
