/**
 * @file
 * Byte-stream implementation.
 */

#include "common/bytestream.hh"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/status.hh"
#include "common/strutil.hh"

namespace seqpoint {

namespace {

/**
 * Host stores match the wire format exactly on little-endian
 * machines, so the hot scalar paths can memcpy; big-endian hosts
 * fall back to byte composition. Either way the bytes on disk are
 * identical.
 */
constexpr bool kHostIsLittle =
    std::endian::native == std::endian::little;

} // anonymous namespace

void
ByteWriter::u32(uint32_t v)
{
    if constexpr (kHostIsLittle) {
        char raw[4];
        std::memcpy(raw, &v, 4);
        buf.append(raw, 4);
    } else {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }
}

void
ByteWriter::u64(uint64_t v)
{
    if constexpr (kHostIsLittle) {
        char raw[8];
        std::memcpy(raw, &v, 8);
        buf.append(raw, 8);
    } else {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }
}

void
ByteWriter::f64(double v)
{
    u64(std::bit_cast<uint64_t>(v));
}

void
ByteWriter::vu64(uint64_t v)
{
    while (v >= 0x80) {
        u8(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    u8(static_cast<uint8_t>(v));
}

void
ByteWriter::vi64(int64_t v)
{
    // Zigzag: small magnitudes of either sign stay small.
    vu64((static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63));
}

namespace {

/** Tag bytes of the packed double form. */
enum PackedTag : uint8_t {
    kPackedSame = 0,     ///< Bit-identical to the previous value.
    kPackedIntegral = 1, ///< Zigzag varint (delta when prev integral).
    kPackedRaw = 2,      ///< Raw IEEE-754 bit pattern.
};

/**
 * Whether `v` survives an int64 round trip exactly. -0.0 is
 * excluded: its integer image decodes as +0.0, which would break the
 * bit-exactness contract.
 */
bool
packsIntegral(double v)
{
    if (v == 0.0)
        return !std::signbit(v);
    if (!(v >= -9007199254740992.0 && v <= 9007199254740992.0))
        return false; // out of exact-int64 range (or NaN)
    return v == static_cast<double>(static_cast<int64_t>(v));
}

} // anonymous namespace

void
ByteWriter::f64Packed(double v, double prev)
{
    if (std::bit_cast<uint64_t>(v) == std::bit_cast<uint64_t>(prev)) {
        u8(kPackedSame);
        return;
    }
    if (packsIntegral(v)) {
        int64_t base =
            packsIntegral(prev) ? static_cast<int64_t>(prev) : 0;
        u8(kPackedIntegral);
        vi64(static_cast<int64_t>(v) - base);
        return;
    }
    u8(kPackedRaw);
    f64(v);
}

void
ByteWriter::str(const std::string &s)
{
    u64(s.size());
    buf.append(s);
}

ByteReader::ByteReader(std::string_view data, std::string what,
                       OnError on_error)
    : data_(data), what_(std::move(what)), onError(on_error)
{
}

void
ByteReader::fail(const std::string &msg) const
{
    if (onError == OnError::Fatal)
        fatal("%s", msg.c_str());
    throw RecoverableError(Status::error(ErrorCode::Corruption, msg));
}

void
ByteReader::need(std::size_t n)
{
    if (n > remaining()) {
        fail(csprintf(
            "%s: truncated at byte %zu (%zu byte(s) needed, %zu left)",
            what_.c_str(), pos, n, remaining()));
    }
}

uint8_t
ByteReader::u8()
{
    need(1);
    return static_cast<uint8_t>(data_[pos++]);
}

uint32_t
ByteReader::u32()
{
    uint32_t v = 0;
    need(4);
    if constexpr (kHostIsLittle) {
        std::memcpy(&v, data_.data() + pos, 4);
        pos += 4;
    } else {
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                     static_cast<uint8_t>(data_[pos++]))
                << (8 * i);
    }
    return v;
}

uint64_t
ByteReader::u64()
{
    uint64_t v = 0;
    need(8);
    if constexpr (kHostIsLittle) {
        std::memcpy(&v, data_.data() + pos, 8);
        pos += 8;
    } else {
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<uint8_t>(data_[pos++]))
                << (8 * i);
    }
    return v;
}

double
ByteReader::f64()
{
    return std::bit_cast<double>(u64());
}

uint64_t
ByteReader::vu64()
{
    uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        uint8_t byte = u8();
        uint64_t bits = static_cast<uint64_t>(byte & 0x7f);
        if (shift == 63 && bits > 1) {
            fail(csprintf("%s: varint overflows 64 bits at offset %zu",
                          what_.c_str(), pos - 1));
        }
        v |= bits << shift;
        if (!(byte & 0x80))
            return v;
        if (shift == 63) {
            fail(csprintf("%s: varint longer than 10 bytes at offset %zu",
                          what_.c_str(), pos - 1));
        }
    }
    return v; // unreachable
}

int64_t
ByteReader::vi64()
{
    uint64_t z = vu64();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double
ByteReader::f64Packed(double prev)
{
    uint8_t tag = u8();
    switch (tag) {
      case kPackedSame:
        return prev;
      case kPackedIntegral: {
        int64_t base =
            packsIntegral(prev) ? static_cast<int64_t>(prev) : 0;
        // Wrap-around add: a corrupted delta must decode to a garbage
        // value (rejected downstream), not overflow into UB.
        return static_cast<double>(addWrap(base, vi64()));
      }
      case kPackedRaw:
        return f64();
      default:
        fail(csprintf("%s: invalid packed-double tag %u at offset %zu",
                      what_.c_str(), tag, pos - 1));
    }
}

bool
ByteReader::b()
{
    uint8_t v = u8();
    if (v > 1) {
        fail(csprintf("%s: invalid bool byte %u at offset %zu",
                      what_.c_str(), v, pos - 1));
    }
    return v != 0;
}

std::string
ByteReader::str()
{
    uint64_t len = u64();
    need(static_cast<std::size_t>(len));
    std::string s(data_.substr(pos, static_cast<std::size_t>(len)));
    pos += static_cast<std::size_t>(len);
    return s;
}

uint64_t
fnv1a64(std::string_view data)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : data) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
fnv1a64Words(std::string_view data)
{
    uint64_t h = 0xcbf29ce484222325ull;
    std::size_t full = data.size() / 8 * 8;
    for (std::size_t i = 0; i < full; i += 8) {
        uint64_t word;
        if constexpr (kHostIsLittle) {
            std::memcpy(&word, data.data() + i, 8);
        } else {
            word = 0;
            for (int b = 0; b < 8; ++b)
                word |= static_cast<uint64_t>(
                            static_cast<uint8_t>(data[i + b]))
                    << (8 * b);
        }
        h ^= word;
        h *= 0x100000001b3ull;
    }
    uint64_t tail = 0;
    for (std::size_t i = full; i < data.size(); ++i)
        tail |= static_cast<uint64_t>(static_cast<uint8_t>(data[i]))
            << (8 * (i - full));
    h ^= tail;
    h *= 0x100000001b3ull;
    // Mix the length so payloads differing only in trailing zero
    // bytes cannot collide with their truncations.
    h ^= static_cast<uint64_t>(data.size());
    h *= 0x100000001b3ull;
    return h;
}

} // namespace seqpoint
