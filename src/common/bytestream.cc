/**
 * @file
 * Byte-stream implementation.
 */

#include "common/bytestream.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace seqpoint {

namespace {

/**
 * Host stores match the wire format exactly on little-endian
 * machines, so the hot scalar paths can memcpy; big-endian hosts
 * fall back to byte composition. Either way the bytes on disk are
 * identical.
 */
constexpr bool kHostIsLittle =
    std::endian::native == std::endian::little;

} // anonymous namespace

void
ByteWriter::u32(uint32_t v)
{
    if constexpr (kHostIsLittle) {
        char raw[4];
        std::memcpy(raw, &v, 4);
        buf.append(raw, 4);
    } else {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }
}

void
ByteWriter::u64(uint64_t v)
{
    if constexpr (kHostIsLittle) {
        char raw[8];
        std::memcpy(raw, &v, 8);
        buf.append(raw, 8);
    } else {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }
}

void
ByteWriter::f64(double v)
{
    u64(std::bit_cast<uint64_t>(v));
}

void
ByteWriter::str(const std::string &s)
{
    u64(s.size());
    buf.append(s);
}

ByteReader::ByteReader(std::string_view data, std::string what)
    : data_(data), what_(std::move(what))
{
}

void
ByteReader::need(std::size_t n)
{
    fatal_if(n > remaining(),
             "%s: truncated at byte %zu (%zu byte(s) needed, %zu left)",
             what_.c_str(), pos, n, remaining());
}

uint8_t
ByteReader::u8()
{
    need(1);
    return static_cast<uint8_t>(data_[pos++]);
}

uint32_t
ByteReader::u32()
{
    uint32_t v = 0;
    need(4);
    if constexpr (kHostIsLittle) {
        std::memcpy(&v, data_.data() + pos, 4);
        pos += 4;
    } else {
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                     static_cast<uint8_t>(data_[pos++]))
                << (8 * i);
    }
    return v;
}

uint64_t
ByteReader::u64()
{
    uint64_t v = 0;
    need(8);
    if constexpr (kHostIsLittle) {
        std::memcpy(&v, data_.data() + pos, 8);
        pos += 8;
    } else {
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<uint8_t>(data_[pos++]))
                << (8 * i);
    }
    return v;
}

double
ByteReader::f64()
{
    return std::bit_cast<double>(u64());
}

bool
ByteReader::b()
{
    uint8_t v = u8();
    fatal_if(v > 1, "%s: invalid bool byte %u at offset %zu",
             what_.c_str(), v, pos - 1);
    return v != 0;
}

std::string
ByteReader::str()
{
    uint64_t len = u64();
    need(static_cast<std::size_t>(len));
    std::string s(data_.substr(pos, static_cast<std::size_t>(len)));
    pos += static_cast<std::size_t>(len);
    return s;
}

uint64_t
fnv1a64(std::string_view data)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : data) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
fnv1a64Words(std::string_view data)
{
    uint64_t h = 0xcbf29ce484222325ull;
    std::size_t full = data.size() / 8 * 8;
    for (std::size_t i = 0; i < full; i += 8) {
        uint64_t word;
        if constexpr (kHostIsLittle) {
            std::memcpy(&word, data.data() + i, 8);
        } else {
            word = 0;
            for (int b = 0; b < 8; ++b)
                word |= static_cast<uint64_t>(
                            static_cast<uint8_t>(data[i + b]))
                    << (8 * b);
        }
        h ^= word;
        h *= 0x100000001b3ull;
    }
    uint64_t tail = 0;
    for (std::size_t i = full; i < data.size(); ++i)
        tail |= static_cast<uint64_t>(static_cast<uint8_t>(data[i]))
            << (8 * (i - full));
    h ^= tail;
    h *= 0x100000001b3ull;
    // Mix the length so payloads differing only in trailing zero
    // bytes cannot collide with their truncations.
    h ^= static_cast<uint64_t>(data.size());
    h *= 0x100000001b3ull;
    return h;
}

} // namespace seqpoint
