/**
 * @file
 * Implementation of scalar statistics helpers.
 */

#include "common/stats_math.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace seqpoint {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stdev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
geomean(const std::vector<double> &xs, double floor)
{
    panic_if(floor < 0.0, "geomean: negative floor %g", floor);
    if (xs.empty())
        return 0.0;
    constexpr double tiny = 1e-12;
    double log_sum = 0.0;
    for (double x : xs) {
        if (floor > 0.0) {
            x = std::max(x, floor);
        } else if (x <= 0.0) {
            warn("geomean: clamping non-positive value %g to %g", x, tiny);
            x = tiny;
        }
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
sum(const std::vector<double> &xs)
{
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s;
}

double
minOf(const std::vector<double> &xs)
{
    double m = std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::min(m, x);
    return m;
}

double
maxOf(const std::vector<double> &xs)
{
    double m = -std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::max(m, x);
    return m;
}

double
weightedMean(const std::vector<double> &xs, const std::vector<double> &ws)
{
    panic_if(xs.size() != ws.size(),
             "weightedMean: length mismatch (%zu vs %zu)",
             xs.size(), ws.size());
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        panic_if(ws[i] < 0, "weightedMean: negative weight");
        num += xs[i] * ws[i];
        den += ws[i];
    }
    return den > 0.0 ? num / den : 0.0;
}

double
percentile(std::vector<double> xs, double p)
{
    panic_if(p < 0.0 || p > 100.0, "percentile: p out of range: %g", p);
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(rank));
    size_t hi = static_cast<size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
relError(double predicted, double actual)
{
    panic_if(actual == 0.0, "relError: actual is zero");
    return std::fabs(predicted - actual) / std::fabs(actual);
}

LinearFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    panic_if(xs.size() != ys.size(), "fitLine: length mismatch");
    panic_if(xs.size() < 2, "fitLine: need at least 2 points");

    double mx = mean(xs), my = mean(ys);
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        sxy += (xs[i] - mx) * (ys[i] - my);
        syy += (ys[i] - my) * (ys[i] - my);
    }

    LinearFit fit;
    if (sxx == 0.0) {
        fit.slope = 0.0;
        fit.intercept = my;
        fit.r2 = 0.0;
        return fit;
    }
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
    return fit;
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    panic_if(xs.size() != ys.size(), "pearson: length mismatch");
    if (xs.size() < 2)
        return 0.0;
    double mx = mean(xs), my = mean(ys);
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        sxy += (xs[i] - mx) * (ys[i] - my);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace seqpoint
