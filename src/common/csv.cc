/**
 * @file
 * CSV writer implementation.
 */

#include "common/csv.hh"

#include <fstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace seqpoint {

std::string
CsvWriter::escape(const std::string &cell)
{
    // \r must quote too: a bare carriage return splits the row for
    // CRLF-aware readers exactly like a newline would.
    bool needs_quote =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : columns(headers.size())
{
    panic_if(columns == 0, "CsvWriter: no columns");
    for (size_t i = 0; i < headers.size(); ++i) {
        if (i > 0)
            body += ',';
        body += escape(headers[i]);
    }
    body += '\n';
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    panic_if(cells.size() != columns,
             "CsvWriter: row has %zu cells, expected %zu",
             cells.size(), columns);
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            body += ',';
        body += escape(cells[i]);
    }
    body += '\n';
}

void
CsvWriter::addRow(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values)
        cells.push_back(csprintf("%.6g", v));
    addRow(cells);
}

std::string
CsvWriter::str() const
{
    return body;
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << body;
    return static_cast<bool>(out);
}

} // namespace seqpoint
