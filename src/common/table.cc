/**
 * @file
 * Table writer implementation.
 */

#include "common/table.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace seqpoint {

Table::Table(std::vector<std::string> cols)
    : headers(std::move(cols))
{
    panic_if(headers.empty(), "Table: no columns");
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers.size(),
             "Table: row has %zu cells, expected %zu",
             cells.size(), headers.size());
    rows.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              const char *fmt)
{
    panic_if(values.size() + 1 != headers.size(),
             "Table: row has %zu cells, expected %zu",
             values.size() + 1, headers.size());
    std::vector<std::string> cells;
    cells.push_back(label);
    for (double v : values)
        cells.push_back(csprintf(fmt, v));
    rows.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers.size(), 0);
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (size_t c = 0; c < cells.size(); ++c) {
            line += ' ';
            line += cells[c];
            line.append(widths[c] - cells[c].size(), ' ');
            line += " |";
        }
        return line + '\n';
    };

    std::string sep = "+";
    for (size_t c = 0; c < headers.size(); ++c) {
        sep.append(widths[c] + 2, '-');
        sep += '+';
    }
    sep += '\n';

    std::string out = sep + render_row(headers) + sep;
    for (const auto &row : rows)
        out += render_row(row);
    out += sep;
    return out;
}

std::string
Table::render(const std::string &caption) const
{
    return caption + "\n" + render();
}

} // namespace seqpoint
