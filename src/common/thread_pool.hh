/**
 * @file
 * A small fixed-size thread pool with a central task queue (no work
 * stealing) used to parallelise the per-sequence-length profiling
 * sweep. Fan-out is index-based and deterministic: parallelFor(n, fn)
 * invokes fn(0..n-1) exactly once each, so any per-task randomness can
 * be derived from the index (e.g. Rng::fork(index)) and results are
 * bit-identical to a serial loop regardless of scheduling.
 */

#ifndef SEQPOINT_COMMON_THREAD_POOL_HH
#define SEQPOINT_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seqpoint {

/** Fixed-size worker pool over one shared FIFO queue. */
class ThreadPool
{
  public:
    /**
     * Construct a pool.
     *
     * @param num_threads Worker count; 0 picks the hardware
     *                    concurrency (at least 1).
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Enqueue one task for asynchronous execution.
     *
     * @param fn Task body.
     */
    void run(std::function<void()> fn);

    /** Block until every task enqueued so far has finished. */
    void wait();

    /**
     * Run fn(0) .. fn(count-1), each exactly once, across the workers
     * and the calling thread; returns when all are done. Tasks must
     * derive any randomness from their index to stay deterministic.
     *
     * @param count Index range size.
     * @param fn Task body, given the task index.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

  private:
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    mutable std::mutex mu;
    std::condition_variable cvTask;  ///< Signals workers: task or stop.
    std::condition_variable cvIdle;  ///< Signals wait(): all drained.
    std::size_t active = 0;          ///< Tasks currently executing.
    bool stopping = false;

    void workerLoop();
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_THREAD_POOL_HH
