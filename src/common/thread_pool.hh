/**
 * @file
 * A small fixed-size thread pool with a central task queue (no work
 * stealing) used to parallelise the per-sequence-length profiling
 * sweep. Fan-out is index-based and deterministic: parallelFor(n, fn)
 * invokes fn(0..n-1) exactly once each, so any per-task randomness can
 * be derived from the index (e.g. Rng::fork(index)) and results are
 * bit-identical to a serial loop regardless of scheduling.
 *
 * A process-wide pool (ThreadPool::shared()) exists so hot paths that
 * fan out repeatedly (the scheduler's per-cell profiling sweeps, the
 * service's concurrent cold starts) do not pay thread creation and
 * teardown per call. parallelFor is safe to nest on the shared pool:
 * the calling thread always drains indices itself and the enqueued
 * worker helpers are purely opportunistic, so an inner fan-out on a
 * fully-busy pool degrades to the caller running every index serially
 * instead of deadlocking.
 */

#ifndef SEQPOINT_COMMON_THREAD_POOL_HH
#define SEQPOINT_COMMON_THREAD_POOL_HH

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace seqpoint {

/** Fixed-size worker pool over one shared FIFO queue. */
class ThreadPool
{
  public:
    /**
     * Construct a pool.
     *
     * @param num_threads Worker count; 0 picks the hardware
     *                    concurrency (at least 1).
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * The process-wide pool, created on first use with the hardware
     * concurrency. Callers that fan out repeatedly should use this
     * instead of constructing (and joining) a private pool per sweep.
     */
    static ThreadPool &shared();

    /** @return Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Enqueue one task for asynchronous execution.
     *
     * A task that throws never takes the pool down: the exception is
     * captured (the first one wins), the worker stays alive, and the
     * next wait() rethrows it.
     *
     * @param fn Task body.
     */
    void run(std::function<void()> fn) SEQ_EXCLUDES(mu);

    /**
     * Block until every task enqueued so far has finished, then
     * rethrow the first exception any of them raised (clearing it, so
     * the pool is reusable afterwards). Completes the full drain
     * first -- a throwing task never strands its siblings.
     */
    void wait() SEQ_EXCLUDES(mu);

    /**
     * Run fn(0) .. fn(count-1), each exactly once, across the workers
     * and the calling thread; returns when all are done. Tasks must
     * derive any randomness from their index to stay deterministic.
     *
     * The calling thread always participates and can complete the
     * whole range alone; enqueued worker helpers only accelerate the
     * drain. This makes nested parallelFor on the shared pool safe
     * (no wait on queue slots that can never free up). The caller's
     * cancellation context (common/cancel.hh) is re-installed on the
     * helper threads, so cancelCheckpoint() inside fn observes the
     * caller's token no matter which thread runs the index.
     *
     * An index that throws is recorded (first exception wins) and
     * counted finished; draining continues so every index is invoked
     * exactly once, then the recorded exception is rethrown in the
     * caller.
     *
     * @param count Index range size.
     * @param fn Task body, given the task index.
     * @param width Max concurrent participants including the caller
     *              (0 = no cap beyond the pool size). Lets a caller
     *              that holds most of the pool's workers keep a lid
     *              on oversubscription for an inner fan-out.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn,
                     unsigned width = 0);

    /**
     * Deterministic parallel sum: `term(i)` for every index runs in
     * parallel (each writing its own slot), then the slots are folded
     * serially in index order. The result is bit-identical to the
     * serial loop `for (i) sum += term(i)` regardless of thread count
     * or schedule -- the reduction order never depends on which
     * thread finishes first. This is the helper the float-reduce lint
     * rule points at: never `sum += ...` inside a parallelFor lambda.
     *
     * @param count Index range size.
     * @param term Term function, given the index.
     * @param width Max concurrent participants (as parallelFor).
     * @return The in-order sum of every term.
     */
    double parallelReduceSum(
        std::size_t count,
        const std::function<double(std::size_t)> &term,
        unsigned width = 0);

  private:
    std::vector<std::thread> workers; ///< Immutable after the ctor.
    mutable Mutex mu;
    std::deque<std::function<void()>> queue SEQ_GUARDED_BY(mu);
    CondVar cvTask; ///< Signals workers: task or stop.
    CondVar cvIdle; ///< Signals wait(): all drained.
    /** Tasks currently executing. */
    std::size_t active SEQ_GUARDED_BY(mu) = 0;
    bool stopping SEQ_GUARDED_BY(mu) = false;
    /** First run() task exception. */
    std::exception_ptr firstError SEQ_GUARDED_BY(mu);

    /** @return True when a worker should wake (task ready or stop). */
    bool
    wakeWorkerLocked() const SEQ_REQUIRES(mu)
    {
        return stopping || !queue.empty();
    }

    /** @return True when everything enqueued so far has finished. */
    bool
    idleLocked() const SEQ_REQUIRES(mu)
    {
        return queue.empty() && active == 0;
    }

    void workerLoop() SEQ_EXCLUDES(mu);
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_THREAD_POOL_HH
