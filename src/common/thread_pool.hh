/**
 * @file
 * A small fixed-size thread pool with a central task queue (no work
 * stealing) used to parallelise the per-sequence-length profiling
 * sweep. Fan-out is index-based and deterministic: parallelFor(n, fn)
 * invokes fn(0..n-1) exactly once each, so any per-task randomness can
 * be derived from the index (e.g. Rng::fork(index)) and results are
 * bit-identical to a serial loop regardless of scheduling.
 */

#ifndef SEQPOINT_COMMON_THREAD_POOL_HH
#define SEQPOINT_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seqpoint {

/** Fixed-size worker pool over one shared FIFO queue. */
class ThreadPool
{
  public:
    /**
     * Construct a pool.
     *
     * @param num_threads Worker count; 0 picks the hardware
     *                    concurrency (at least 1).
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Enqueue one task for asynchronous execution.
     *
     * A task that throws never takes the pool down: the exception is
     * captured (the first one wins), the worker stays alive, and the
     * next wait() rethrows it.
     *
     * @param fn Task body.
     */
    void run(std::function<void()> fn);

    /**
     * Block until every task enqueued so far has finished, then
     * rethrow the first exception any of them raised (clearing it, so
     * the pool is reusable afterwards). Completes the full drain
     * first -- a throwing task never strands its siblings.
     */
    void wait();

    /**
     * Run fn(0) .. fn(count-1), each exactly once, across the workers
     * and the calling thread; returns when all are done. Tasks must
     * derive any randomness from their index to stay deterministic.
     *
     * A throwing index stops only its own participant's draining; the
     * remaining indices still run on the other participants, and the
     * first exception is rethrown once every index has been claimed
     * and finished.
     *
     * @param count Index range size.
     * @param fn Task body, given the task index.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

  private:
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    mutable std::mutex mu;
    std::condition_variable cvTask;  ///< Signals workers: task or stop.
    std::condition_variable cvIdle;  ///< Signals wait(): all drained.
    std::size_t active = 0;          ///< Tasks currently executing.
    bool stopping = false;
    std::exception_ptr firstError;   ///< First run() task exception.

    void workerLoop();
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_THREAD_POOL_HH
