/**
 * @file
 * Fixed-range histogram used for sequence-length distributions (Fig 7)
 * and counter summaries.
 */

#ifndef SEQPOINT_COMMON_HISTOGRAM_HH
#define SEQPOINT_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace seqpoint {

/**
 * Equal-width bucket histogram over a closed integer range.
 */
class Histogram
{
  public:
    /**
     * Construct with the value range and bucket count.
     *
     * @param lo Smallest representable value.
     * @param hi Largest representable value; must be >= lo.
     * @param buckets Number of equal-width buckets (>= 1).
     */
    Histogram(int64_t lo, int64_t hi, size_t buckets);

    /**
     * Record one observation; values outside [lo, hi] are clamped to
     * the first/last bucket.
     *
     * @param value Observed value.
     * @param count Occurrences to add (default 1).
     */
    void add(int64_t value, uint64_t count = 1);

    /** @return Number of buckets. */
    size_t numBuckets() const { return counts.size(); }

    /** @return Count in bucket i. */
    uint64_t bucketCount(size_t i) const;

    /** @return Inclusive lower bound of bucket i. */
    int64_t bucketLo(size_t i) const;

    /** @return Inclusive upper bound of bucket i. */
    int64_t bucketHi(size_t i) const;

    /** @return Total observations recorded. */
    uint64_t total() const { return total_; }

    /**
     * Render as an ASCII bar chart, one line per bucket.
     *
     * @param width Maximum bar width in characters.
     * @return Multi-line chart string.
     */
    std::string render(size_t width = 50) const;

  private:
    int64_t lo;
    int64_t hi;
    std::vector<uint64_t> counts;
    uint64_t total_ = 0;

    size_t bucketFor(int64_t value) const;
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_HISTOGRAM_HH
