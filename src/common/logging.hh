/**
 * @file
 * Status-message and error-exit helpers in the gem5 idiom.
 *
 * panic()  -- internal invariant violated; aborts (simulator bug).
 * fatal()  -- the user asked for something impossible; exits cleanly.
 * warn()   -- functionality works but may be approximate.
 * inform() -- plain status output, no connotation of a problem.
 */

#ifndef SEQPOINT_COMMON_LOGGING_HH
#define SEQPOINT_COMMON_LOGGING_HH

#include <string>

namespace seqpoint {

/** Severity levels understood by logMessage(). */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Emit one formatted message on stderr (or stdout for Inform).
 *
 * Fatal exits with status 1; Panic calls abort(). Never returns for
 * those two levels.
 *
 * @param level Message severity.
 * @param where "file:line" location string, may be empty.
 * @param msg Fully formatted message body.
 */
void logMessage(LogLevel level, const std::string &where,
                const std::string &msg);

/**
 * Count of warn() calls so far; used by tests to assert warnings fired.
 *
 * @return Number of Warn-level messages emitted by this process.
 */
uint64_t warnCount();

/** Suppress (true) or restore (false) Inform/Warn console output. */
void setQuietLogging(bool quiet);

} // namespace seqpoint

#include "common/strutil.hh"

/** Abort with a message: internal invariant violated. */
#define panic(...)                                                         \
    ::seqpoint::logMessage(::seqpoint::LogLevel::Panic,                    \
        ::seqpoint::csprintf("%s:%d", __FILE__, __LINE__),                 \
        ::seqpoint::csprintf(__VA_ARGS__))

/** Exit(1) with a message: user-caused unrecoverable condition. */
#define fatal(...)                                                         \
    ::seqpoint::logMessage(::seqpoint::LogLevel::Fatal,                    \
        ::seqpoint::csprintf("%s:%d", __FILE__, __LINE__),                 \
        ::seqpoint::csprintf(__VA_ARGS__))

/** Warn and continue. */
#define warn(...)                                                          \
    ::seqpoint::logMessage(::seqpoint::LogLevel::Warn, "",                 \
        ::seqpoint::csprintf(__VA_ARGS__))

/** Informational message. */
#define inform(...)                                                        \
    ::seqpoint::logMessage(::seqpoint::LogLevel::Inform, "",               \
        ::seqpoint::csprintf(__VA_ARGS__))

/** panic() unless the given condition holds. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            panic(__VA_ARGS__);                                            \
    } while (0)

/** fatal() if the given condition holds. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond)                                                          \
            fatal(__VA_ARGS__);                                            \
    } while (0)

#endif // SEQPOINT_COMMON_LOGGING_HH
