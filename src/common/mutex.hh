/**
 * @file
 * Annotated synchronisation primitives: thin wrappers over std::mutex
 * and std::condition_variable that carry the Clang Thread Safety
 * Analysis capability attributes (thread_annotations.hh). libstdc++'s
 * std::mutex is not annotated as a capability, so provable
 * SEQ_GUARDED_BY annotations need this wrapper; it compiles to the
 * identical code (every method is an inline forward).
 *
 * Idiom, mirrored from the annotated classes:
 *
 *     mutable Mutex mu;
 *     int value SEQ_GUARDED_BY(mu);
 *
 *     void set(int v) { MutexLock lock(mu); value = v; }
 *
 * Condition waits are written as explicit loops over *Locked()
 * predicate helpers (annotated SEQ_REQUIRES(mu)) instead of
 * predicate-taking wait overloads, because the analysis cannot see
 * into a predicate lambda:
 *
 *     MutexLock lock(mu);
 *     while (!readyLocked())
 *         cv.wait(mu);
 */

#ifndef SEQPOINT_COMMON_MUTEX_HH
#define SEQPOINT_COMMON_MUTEX_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hh"

namespace seqpoint {

/** std::mutex with thread-safety-analysis capability attributes. */
class SEQ_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Acquire exclusively (blocking). */
    void lock() SEQ_ACQUIRE() { mu_.lock(); }

    /** Release. */
    void unlock() SEQ_RELEASE() { mu_.unlock(); }

    /** @return True (holding the lock) on a successful acquire. */
    bool try_lock() SEQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/** Scoped lock over Mutex (the std::lock_guard shape, annotated). */
class SEQ_SCOPED_CAPABILITY MutexLock
{
  public:
    /** Acquire `mu` for this scope. */
    explicit MutexLock(Mutex &mu) SEQ_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    /** Release. */
    ~MutexLock() SEQ_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable bound to the annotated Mutex. Waits take the
 * Mutex itself (caller must hold it, enforced by SEQ_REQUIRES), and
 * atomically release/reacquire through the wrapped std primitives --
 * no condition_variable_any overhead, no predicate overloads (see the
 * file comment for the explicit-loop idiom).
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Block until notified (spurious wakeups possible; loop). */
    void
    wait(Mutex &mu) SEQ_REQUIRES(mu)
    {
        // Adopt the already-held native mutex for the wait, then
        // release ownership again so the caller's scope (MutexLock)
        // stays the one true unlocker.
        std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    /**
     * Block until notified or `deadline` passes.
     *
     * @return std::cv_status::timeout when the deadline passed.
     */
    std::cv_status
    waitUntil(Mutex &mu,
              std::chrono::steady_clock::time_point deadline)
        SEQ_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
        std::cv_status status = cv_.wait_until(native, deadline);
        native.release();
        return status;
    }

    /** Wake one waiter. */
    void notify_one() { cv_.notify_one(); }

    /** Wake every waiter. */
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_MUTEX_HH
