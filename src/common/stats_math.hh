/**
 * @file
 * Scalar statistics helpers shared by the profiler, the SeqPoint core,
 * and the benchmark harnesses.
 */

#ifndef SEQPOINT_COMMON_STATS_MATH_HH
#define SEQPOINT_COMMON_STATS_MATH_HH

#include <cstddef>
#include <vector>

namespace seqpoint {

/** @return Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** @return Population standard deviation; 0 for fewer than 2 values. */
double stdev(const std::vector<double> &xs);

/**
 * Geometric mean of strictly positive values.
 *
 * Values <= 0 are clamped to a tiny epsilon with a warning, matching
 * the common practice when summarising near-zero error percentages.
 *
 * @param xs Input values.
 * @return Geometric mean; 0 for an empty input.
 */
double geomean(const std::vector<double> &xs);

/** @return Sum of the values. */
double sum(const std::vector<double> &xs);

/** @return Minimum; +inf for an empty input. */
double minOf(const std::vector<double> &xs);

/** @return Maximum; -inf for an empty input. */
double maxOf(const std::vector<double> &xs);

/**
 * Weighted arithmetic mean.
 *
 * @param xs Values.
 * @param ws Non-negative weights, same length as xs.
 * @return sum(x*w)/sum(w); 0 when the weights sum to 0.
 */
double weightedMean(const std::vector<double> &xs,
                    const std::vector<double> &ws);

/**
 * Percentile via linear interpolation between order statistics.
 *
 * @param xs Input values (copied and sorted internally).
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/**
 * Relative error |predicted - actual| / |actual|, as a fraction.
 *
 * @param predicted Projected value.
 * @param actual Reference value; must be non-zero.
 */
double relError(double predicted, double actual);

/** Result of an ordinary least-squares line fit. */
struct LinearFit {
    double slope = 0.0;     ///< Fitted slope.
    double intercept = 0.0; ///< Fitted intercept.
    double r2 = 0.0;        ///< Coefficient of determination.
};

/**
 * Least-squares fit of y = slope * x + intercept.
 *
 * @param xs Abscissae.
 * @param ys Ordinates, same length as xs (>= 2 points).
 */
LinearFit fitLine(const std::vector<double> &xs,
                  const std::vector<double> &ys);

/**
 * Pearson correlation coefficient of two equal-length series.
 *
 * @return Correlation in [-1, 1]; 0 if either series is constant.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

} // namespace seqpoint

#endif // SEQPOINT_COMMON_STATS_MATH_HH
