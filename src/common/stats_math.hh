/**
 * @file
 * Scalar statistics helpers shared by the profiler, the SeqPoint core,
 * and the benchmark harnesses.
 */

#ifndef SEQPOINT_COMMON_STATS_MATH_HH
#define SEQPOINT_COMMON_STATS_MATH_HH

#include <cstddef>
#include <vector>

namespace seqpoint {

/** @return Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** @return Population standard deviation; 0 for fewer than 2 values. */
double stdev(const std::vector<double> &xs);

/**
 * Geometric mean of strictly positive values.
 *
 * With a positive `floor`, every entry below it is clamped up to the
 * floor before the log-sum. Error aggregations need this guard: one
 * entry that is exactly 0 would otherwise collapse the whole geomean
 * towards 0 (a 0% error among five configs says "perfect on one
 * config", not "the selector's summary error is 0"). Pick the floor
 * at the resolution of the aggregated metric, e.g. half the printed
 * precision.
 *
 * With the default floor of 0, non-positive values are clamped to a
 * tiny epsilon (1e-12) with a warning -- the legacy behaviour, which
 * deliberately collapses the mean and only suits inputs known to be
 * strictly positive.
 *
 * @param xs Input values.
 * @param floor Smallest value an entry may contribute (0 = legacy
 *              tiny-epsilon clamp).
 * @return Geometric mean; 0 for an empty input.
 */
double geomean(const std::vector<double> &xs, double floor = 0.0);

/** @return Sum of the values. */
double sum(const std::vector<double> &xs);

/** @return Minimum; +inf for an empty input. */
double minOf(const std::vector<double> &xs);

/** @return Maximum; -inf for an empty input. */
double maxOf(const std::vector<double> &xs);

/**
 * Weighted arithmetic mean.
 *
 * @param xs Values.
 * @param ws Non-negative weights, same length as xs.
 * @return sum(x*w)/sum(w); 0 when the weights sum to 0.
 */
double weightedMean(const std::vector<double> &xs,
                    const std::vector<double> &ws);

/**
 * Percentile via linear interpolation between order statistics.
 *
 * @param xs Input values (copied and sorted internally).
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/**
 * Relative error |predicted - actual| / |actual|, as a fraction.
 *
 * @param predicted Projected value.
 * @param actual Reference value; must be non-zero.
 */
double relError(double predicted, double actual);

/** Result of an ordinary least-squares line fit. */
struct LinearFit {
    double slope = 0.0;     ///< Fitted slope.
    double intercept = 0.0; ///< Fitted intercept.
    double r2 = 0.0;        ///< Coefficient of determination.
};

/**
 * Least-squares fit of y = slope * x + intercept.
 *
 * @param xs Abscissae.
 * @param ys Ordinates, same length as xs (>= 2 points).
 */
LinearFit fitLine(const std::vector<double> &xs,
                  const std::vector<double> &ys);

/**
 * Pearson correlation coefficient of two equal-length series.
 *
 * @return Correlation in [-1, 1]; 0 if either series is constant.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

} // namespace seqpoint

#endif // SEQPOINT_COMMON_STATS_MATH_HH
