/**
 * @file
 * FlatMatrix implementation.
 */

#include "common/flat_matrix.hh"

#include <algorithm>

#include "common/logging.hh"

namespace seqpoint {

FlatMatrix::FlatMatrix(std::size_t rows, std::size_t cols, double init)
    : rows_(rows), cols_(cols), data_(rows * cols, init)
{
}

FlatMatrix
FlatMatrix::fromNested(const std::vector<std::vector<double>> &nested)
{
    FlatMatrix m;
    if (nested.empty())
        return m;

    m.cols_ = nested[0].size();
    m.rows_ = nested.size();
    m.data_.reserve(m.rows_ * m.cols_);
    for (const std::vector<double> &row : nested) {
        fatal_if(row.size() != m.cols_,
                 "FlatMatrix: ragged nested input (%zu vs %zu cols)",
                 row.size(), m.cols_);
        m.data_.insert(m.data_.end(), row.begin(), row.end());
    }
    return m;
}

std::vector<std::vector<double>>
FlatMatrix::toNested() const
{
    std::vector<std::vector<double>> nested;
    nested.reserve(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        nested.emplace_back(row(r), row(r) + cols_);
    return nested;
}

void
FlatMatrix::fill(double v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
FlatMatrix::appendRow(const double *src, std::size_t src_len)
{
    if (rows_ == 0)
        cols_ = src_len;
    fatal_if(src_len != cols_,
             "FlatMatrix: appending a %zu-wide row to a %zu-wide matrix",
             src_len, cols_);
    data_.insert(data_.end(), src, src + src_len);
    ++rows_;
}

double
sqDistance(const double *a, const double *b, std::size_t n)
{
    double d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

double
dotProduct(const double *a, const double *b, std::size_t n)
{
    double d = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        d += a[i] * b[i];
    return d;
}

double
sqNorm(const double *a, std::size_t n)
{
    return dotProduct(a, a, n);
}

} // namespace seqpoint
