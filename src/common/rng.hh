/**
 * @file
 * Deterministic pseudo-random number generation (PCG32).
 *
 * All stochastic choices in the repository (dataset synthesis, batch
 * shuffling, cache address streams) flow through this generator so a
 * given seed reproduces a run bit-for-bit on any platform.
 */

#ifndef SEQPOINT_COMMON_RNG_HH
#define SEQPOINT_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace seqpoint {

/**
 * PCG32 (XSH-RR variant) pseudo-random generator.
 *
 * Small, fast, and with far better statistical behaviour than a bare
 * LCG; see O'Neill, "PCG: A Family of Simple Fast Space-Efficient
 * Statistically Good Algorithms for Random Number Generation".
 */
class Rng
{
  public:
    /**
     * Construct with a seed and an optional stream selector.
     *
     * @param seed Initial state seed.
     * @param stream Stream selector; distinct streams are independent.
     */
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** @return The next raw 32-bit value. */
    uint32_t next32();

    /** @return The next raw 64-bit value. */
    uint64_t next64();

    /**
     * Uniform integer in [lo, hi], inclusive on both ends.
     *
     * Uses rejection sampling so the distribution is exactly uniform.
     *
     * @param lo Lower bound.
     * @param hi Upper bound; must satisfy hi >= lo.
     */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** @return Uniform double in [0, 1). */
    double uniformDouble();

    /**
     * Uniform double in [lo, hi).
     *
     * @param lo Lower bound.
     * @param hi Upper bound; must satisfy hi > lo.
     */
    double uniformDouble(double lo, double hi);

    /**
     * Normal (Gaussian) sample via Box-Muller.
     *
     * @param mean Distribution mean.
     * @param stdev Distribution standard deviation (>= 0).
     */
    double normal(double mean, double stdev);

    /**
     * Log-normal sample: exp(N(mu, sigma)).
     *
     * @param mu Mean of the underlying normal.
     * @param sigma Standard deviation of the underlying normal.
     */
    double logNormal(double mu, double sigma);

    /**
     * Gamma sample (Marsaglia-Tsang for shape >= 1, boost for < 1).
     *
     * @param shape Shape parameter k (> 0).
     * @param scale Scale parameter theta (> 0).
     */
    double gamma(double shape, double scale);

    /**
     * Geometric-ish integer from an exponential: floor(Exp(rate)).
     *
     * @param rate Rate parameter lambda (> 0).
     */
    int64_t exponentialInt(double rate);

    /**
     * Sample an index according to unnormalised weights.
     *
     * @param weights Non-negative weights, at least one positive.
     * @return Index in [0, weights.size()).
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /**
     * Fisher-Yates shuffle of a vector in place.
     */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        if (items.size() < 2)
            return;
        for (std::size_t i = items.size() - 1; i > 0; --i) {
            auto j = static_cast<std::size_t>(uniformInt(0,
                static_cast<int64_t>(i)));
            std::swap(items[i], items[j]);
        }
    }

    /**
     * Derive an independent child generator, e.g. one per subsystem.
     *
     * @param salt Distinguishes children derived from the same parent.
     */
    Rng fork(uint64_t salt);

  private:
    uint64_t state;
    uint64_t inc;

    bool haveSpareNormal = false;
    double spareNormal = 0.0;
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_RNG_HH
