/**
 * @file
 * Endian-stable binary encoding primitives for persistent artifacts
 * (the snapshot store). Integers are written little-endian byte by
 * byte and doubles as their IEEE-754 bit patterns, so a file written
 * on any host decodes bit-identically on any other. The reader is
 * bounds-checked and fails loudly on truncation -- a corrupted
 * artifact must be rejected, never half-decoded.
 */

#ifndef SEQPOINT_COMMON_BYTESTREAM_HH
#define SEQPOINT_COMMON_BYTESTREAM_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace seqpoint {

/** Appends fixed-layout scalars and strings to a byte buffer. */
class ByteWriter
{
  public:
    /** Append one byte. */
    void u8(uint8_t v) { buf.push_back(static_cast<char>(v)); }

    /** Append a 32-bit unsigned integer, little-endian. */
    void u32(uint32_t v);

    /** Append a 64-bit unsigned integer, little-endian. */
    void u64(uint64_t v);

    /** Append a 64-bit signed integer (two's complement). */
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    /** Append a double as its IEEE-754 bit pattern (lossless). */
    void f64(double v);

    /**
     * Append a 64-bit unsigned integer as a LEB128 varint (1 byte
     * for values below 128, up to 10 bytes for the full range).
     */
    void vu64(uint64_t v);

    /** Append a 64-bit signed integer zigzag-coded as a varint. */
    void vi64(int64_t v);

    /**
     * Append a double in the packed tagged form (lossless): a tag
     * byte selecting same-as-`prev` (bit-identical, nothing
     * follows), integral (zigzag varint of the value's delta against
     * `prev` when that is integral too -- simulator statistics are
     * overwhelmingly exact integers near their neighbours), or a raw
     * IEEE-754 pattern. Decode with ByteReader::f64Packed() passing
     * the same `prev`.
     *
     * @param v Value to append.
     * @param prev Previous value of the same field (delta base).
     */
    void f64Packed(double v, double prev);

    /** Append a bool as one byte (0 or 1). */
    void b(bool v) { u8(v ? 1 : 0); }

    /** Append a length-prefixed string (u64 length + raw bytes). */
    void str(const std::string &s);

    /** @return The encoded bytes so far. */
    const std::string &data() const { return buf; }

    /** @return Number of bytes written so far. */
    std::size_t size() const { return buf.size(); }

  private:
    std::string buf;
};

/**
 * Bounds-checked reader over a byte buffer written by ByteWriter.
 *
 * Every read past the end of the buffer fails loudly naming the
 * artifact (`what`), so a truncated file can never silently decode
 * into a half-seeded object. The failure mode is selectable: Fatal
 * (the default, for in-process artifacts whose corruption is a bug)
 * exits the process; Throw raises RecoverableError(Corruption) so a
 * containment layer -- the snapshot loader degrading a bad store
 * file to a cold start -- can catch, quarantine and recompute.
 */
class ByteReader
{
  public:
    /** What a validation failure does (see class comment). */
    enum class OnError {
        Fatal, ///< fatal(): exit the process (fail-fast artifacts).
        Throw, ///< throw RecoverableError(Corruption) (recoverable).
    };

    /**
     * Construct over a buffer.
     *
     * @param data Bytes to decode (must outlive the reader).
     * @param what Artifact name for error messages (e.g. a path).
     * @param on_error Failure mode for every validation error.
     */
    ByteReader(std::string_view data, std::string what,
               OnError on_error = OnError::Fatal);

    /** Read one byte. */
    uint8_t u8();

    /** Read a little-endian 32-bit unsigned integer. */
    uint32_t u32();

    /** Read a little-endian 64-bit unsigned integer. */
    uint64_t u64();

    /** Read a 64-bit signed integer. */
    int64_t i64() { return static_cast<int64_t>(u64()); }

    /** Read a double from its IEEE-754 bit pattern. */
    double f64();

    /**
     * Read a LEB128 varint; more than 10 bytes (or bits beyond the
     * 64th) is a fatal error.
     */
    uint64_t vu64();

    /** Read a zigzag-coded varint. */
    int64_t vi64();

    /**
     * Read a double written by ByteWriter::f64Packed() with the same
     * `prev`; an unknown tag byte is a fatal error.
     *
     * @param prev Previous value of the same field (delta base).
     */
    double f64Packed(double prev);

    /** Read a bool; any value other than 0/1 is a fatal error. */
    bool b();

    /** Read a length-prefixed string. */
    std::string str();

    /** @return Bytes left to read. */
    std::size_t remaining() const { return data_.size() - pos; }

    /** @return True when the whole buffer has been consumed. */
    bool done() const { return remaining() == 0; }

    /** @return The artifact name given at construction. */
    const std::string &what() const { return what_; }

    /**
     * Report a validation failure in this reader's failure mode:
     * fatal() or throw RecoverableError(Corruption). Exposed so
     * decoders layered on the reader (snapshot payload validation)
     * fail the same way the reader itself would.
     *
     * @param msg Fully formatted message (should name the artifact).
     */
    [[noreturn]] void fail(const std::string &msg) const;

  private:
    std::string_view data_;
    std::string what_;
    OnError onError;
    std::size_t pos = 0;

    /** fail() unless `n` more bytes are available. */
    void need(std::size_t n);
};

/**
 * Two's-complement wrap-around addition of two signed 64-bit values.
 * Delta decoders reconstruct absolute values as base + decoded delta;
 * on a corrupted stream that sum can exceed the int64 range, and a
 * plain `+` would be undefined behaviour. Computing in uint64 keeps
 * the wrap defined: a garbage delta yields a garbage (but
 * deterministic) value that downstream validation rejects, never UB.
 *
 * @param base Previous absolute value.
 * @param delta Decoded delta.
 * @return The wrapped sum.
 */
inline int64_t
addWrap(int64_t base, int64_t delta)
{
    return static_cast<int64_t>(static_cast<uint64_t>(base) +
                                static_cast<uint64_t>(delta));
}

/**
 * FNV-1a 64-bit hash (store file names and other short keys).
 *
 * @param data Bytes to hash.
 * @return The 64-bit hash.
 */
uint64_t fnv1a64(std::string_view data);

/**
 * Word-wise FNV-1a 64-bit hash: the byte stream is consumed as
 * little-endian 64-bit words (trailing partial word zero-padded) and
 * the total length is mixed in last. ~8x faster than the per-byte
 * form on large payloads, with the same avalanche behaviour per
 * step -- the snapshot store's payload checksum.
 *
 * @param data Bytes to hash.
 * @return The 64-bit hash.
 */
uint64_t fnv1a64Words(std::string_view data);

} // namespace seqpoint

#endif // SEQPOINT_COMMON_BYTESTREAM_HH
