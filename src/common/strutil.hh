/**
 * @file
 * String formatting helpers (csprintf and friends).
 *
 * GCC 12 lacks std::format, so we provide a checked printf-style
 * formatter plus a few join/split utilities used by the table and CSV
 * writers.
 */

#ifndef SEQPOINT_COMMON_STRUTIL_HH
#define SEQPOINT_COMMON_STRUTIL_HH

#include <cstdarg>
#include <sstream>
#include <string>
#include <vector>

namespace seqpoint {

/**
 * printf-style formatting into a std::string.
 *
 * @param fmt printf format string.
 * @return The formatted string.
 */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list flavour of csprintf(). */
std::string vcsprintf(const char *fmt, va_list ap);

/**
 * Join the elements of a vector with a separator.
 *
 * @param parts Elements to join.
 * @param sep Separator placed between consecutive elements.
 * @return Concatenated string.
 */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/**
 * Split a string on a single-character separator.
 *
 * Empty fields are preserved ("a,,b" yields three fields).
 *
 * @param text Input string.
 * @param sep Separator character.
 * @return The fields, in order.
 */
std::vector<std::string> split(const std::string &text, char sep);

/**
 * Stream any streamable values into one string ("abc" + 42 + ...).
 */
template <typename... Args>
std::string
cat(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/**
 * Render a double with trailing-zero trimming ("1.50" -> "1.5",
 * "2.00" -> "2").
 *
 * @param value Value to render.
 * @param max_decimals Maximum digits after the decimal point.
 * @return Compact decimal string.
 */
std::string compactDouble(double value, int max_decimals = 3);

} // namespace seqpoint

#endif // SEQPOINT_COMMON_STRUTIL_HH
