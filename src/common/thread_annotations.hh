/**
 * @file
 * Portable shims for Clang's Thread Safety Analysis attributes
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
 *
 * The concurrent core (ThreadPool, BoundedQueue, SnapshotRegistry,
 * QueryService, FaultInjector, KernelTimingCache, Autotuner, and the
 * cancellation layer) annotates which mutex guards which member and
 * which functions require/acquire/release which locks. Under Clang
 * with -Wthread-safety (CMake option SEQPOINT_THREAD_SAFETY) these
 * expand to the real attributes and every lock-discipline violation
 * is a compile error; under any other compiler they expand to
 * nothing, so the annotations are free documentation.
 *
 * Only the SEQ_-prefixed macros below are part of the repo's
 * vocabulary; use them (not raw __attribute__ spellings) so the
 * non-Clang build stays clean.
 */

#ifndef SEQPOINT_COMMON_THREAD_ANNOTATIONS_HH
#define SEQPOINT_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by) && __has_attribute(capability)
#define SEQ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef SEQ_THREAD_ANNOTATION
#define SEQ_THREAD_ANNOTATION(x) // expands to nothing off-Clang
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define SEQ_CAPABILITY(x) SEQ_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in dtor. */
#define SEQ_SCOPED_CAPABILITY SEQ_THREAD_ANNOTATION(scoped_lockable)

/** Member is readable/writable only while holding the given mutex. */
#define SEQ_GUARDED_BY(x) SEQ_THREAD_ANNOTATION(guarded_by(x))

/** Pointee (not the pointer) is guarded by the given mutex. */
#define SEQ_PT_GUARDED_BY(x) SEQ_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the listed mutexes (exclusively). */
#define SEQ_REQUIRES(...) \
    SEQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed mutexes and returns holding them. */
#define SEQ_ACQUIRE(...) \
    SEQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed mutexes it was called holding. */
#define SEQ_RELEASE(...) \
    SEQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the mutex iff it returns the given value. */
#define SEQ_TRY_ACQUIRE(...) \
    SEQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed mutexes (deadlock documentation). */
#define SEQ_EXCLUDES(...) \
    SEQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Lock-ordering declaration: this mutex is acquired before `...`. */
#define SEQ_ACQUIRED_BEFORE(...) \
    SEQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Lock-ordering declaration: this mutex is acquired after `...`. */
#define SEQ_ACQUIRED_AFTER(...) \
    SEQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function returns a reference to the given capability. */
#define SEQ_RETURN_CAPABILITY(x) \
    SEQ_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch: disables the analysis for one function. Every use
 * must carry a comment justifying why the discipline cannot be
 * expressed (the seqpoint_lint CI pass rejects undocumented ones, and
 * the repo target is zero uses outside the Mutex wrapper itself).
 */
#define SEQ_NO_THREAD_SAFETY_ANALYSIS \
    SEQ_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // SEQPOINT_COMMON_THREAD_ANNOTATIONS_HH
