/**
 * @file
 * ThreadPool implementation.
 */

#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <utility>

namespace seqpoint {

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cvTask.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            cvTask.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        // A throwing task must neither kill the worker (std::terminate
        // on an escaped exception) nor leak `active` (which would
        // deadlock every later wait()): capture the exception, finish
        // the bookkeeping, and let wait() rethrow the first one.
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            --active;
            if (err && !firstError)
                firstError = err;
            if (queue.empty() && active == 0)
                cvIdle.notify_all();
        }
    }
}

void
ThreadPool::run(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        queue.push_back(std::move(fn));
    }
    cvTask.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    cvIdle.wait(lock, [this] { return queue.empty() && active == 0; });
    if (firstError) {
        std::exception_ptr err = std::exchange(firstError, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (count == 1) {
        fn(0);
        return;
    }

    // Each participant pulls the next unclaimed index; the caller
    // joins in so a single-threaded pool still makes progress while
    // workers are busy elsewhere. A participant whose index throws
    // records the exception and stops draining, but always counts
    // itself done -- otherwise the completion wait below would hang
    // forever on the first throwing task.
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    std::mutex err_mu;
    std::exception_ptr first_err;
    auto drain = [next, count, &fn, &err_mu, &first_err] {
        try {
            for (;;) {
                std::size_t i = next->fetch_add(1);
                if (i >= count)
                    return;
                fn(i);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (!first_err)
                first_err = std::current_exception();
        }
    };

    std::size_t jobs = std::min<std::size_t>(workers.size(), count);
    std::atomic<std::size_t> done{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    for (std::size_t j = 0; j < jobs; ++j) {
        run([&] {
            drain();
            std::lock_guard<std::mutex> lock(done_mu);
            ++done;
            done_cv.notify_one();
        });
    }

    drain();

    {
        std::unique_lock<std::mutex> lock(done_mu);
        done_cv.wait(lock, [&] { return done == jobs; });
    }
    if (first_err)
        std::rethrow_exception(first_err);
}

} // namespace seqpoint
