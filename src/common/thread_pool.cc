/**
 * @file
 * ThreadPool implementation.
 */

#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/cancel.hh"

namespace seqpoint {

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu);
        stopping = true;
    }
    cvTask.notify_all();
    for (std::thread &t : workers)
        t.join();
}

ThreadPool &
ThreadPool::shared()
{
    // Intentionally leaked: a destructor run at exit would join the
    // worker threads, and a forked child (death tests, a crashing
    // fatal() path after fork) inherits the pool object but not its
    // threads -- the join would hang forever on phantom thread ids.
    // Process exit reclaims the workers either way.
    static ThreadPool *pool = new ThreadPool();
    return *pool;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mu);
            while (!wakeWorkerLocked())
                cvTask.wait(mu);
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        // A throwing task must neither kill the worker (std::terminate
        // on an escaped exception) nor leak `active` (which would
        // deadlock every later wait()): capture the exception, finish
        // the bookkeeping, and let wait() rethrow the first one.
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        {
            MutexLock lock(mu);
            --active;
            if (err && !firstError)
                firstError = err;
            if (idleLocked())
                cvIdle.notify_all();
        }
    }
}

void
ThreadPool::run(std::function<void()> fn)
{
    {
        MutexLock lock(mu);
        queue.push_back(std::move(fn));
    }
    cvTask.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    {
        MutexLock lock(mu);
        while (!idleLocked())
            cvIdle.wait(mu);
        err = std::exchange(firstError, nullptr);
    }
    if (err)
        std::rethrow_exception(err);
}

namespace {

/**
 * Everything a parallelFor fan-out shares between the caller and the
 * enqueued helpers, owned by shared_ptr so a helper that only gets
 * scheduled after the caller already finished the range (possible on
 * a busy shared pool) touches live memory and no-ops instead of
 * dereferencing the caller's dead stack frame.
 */
struct ForState
{
    std::size_t count;
    std::function<void(std::size_t)> fn;
    const CancelToken *token; ///< Caller's cancel context to re-install.
    std::atomic<std::size_t> next{0};     ///< Next unclaimed index.
    Mutex mu;
    CondVar done;
    /** Indices fully executed. */
    std::size_t finished SEQ_GUARDED_BY(mu) = 0;
    std::exception_ptr firstErr SEQ_GUARDED_BY(mu);

    /**
     * Claim-and-run loop, shared by the caller and the helpers. A
     * throwing index is recorded (first wins) and still counted
     * finished so draining continues: the caller alone can always
     * complete the range even when no helper ever runs.
     */
    void
    drain() SEQ_EXCLUDES(mu)
    {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            std::exception_ptr err;
            try {
                fn(i);
            } catch (...) {
                err = std::current_exception();
            }
            MutexLock lock(mu);
            if (err && !firstErr)
                firstErr = err;
            if (++finished == count)
                done.notify_all();
        }
    }
};

} // anonymous namespace

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn,
                        unsigned width)
{
    if (count == 0)
        return;
    if (count == 1 || size() == 0 || width == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    auto state = std::make_shared<ForState>();
    state->count = count;
    state->fn = fn;
    state->token = currentCancelToken();

    // Helpers are opportunistic: completion is "every index finished",
    // not "every helper ran", so the caller never waits on queue slots
    // that a saturated pool (e.g. a nested fan-out) can't free up. Any
    // helper that runs late finds next >= count and returns without
    // touching fn.
    std::size_t helpers = std::min<std::size_t>(size(), count - 1);
    if (width > 1)
        helpers = std::min<std::size_t>(helpers, width - 1);
    for (std::size_t j = 0; j < helpers; ++j) {
        run([state] {
            CancelScope scope(state->token);
            state->drain();
        });
    }

    state->drain();

    std::exception_ptr err;
    {
        MutexLock lock(state->mu);
        while (state->finished != count)
            state->done.wait(state->mu);
        err = std::exchange(state->firstErr, nullptr);
    }
    if (err)
        std::rethrow_exception(err);
}

double
ThreadPool::parallelReduceSum(
    std::size_t count, const std::function<double(std::size_t)> &term,
    unsigned width)
{
    // Per-slot writes indexed by the task's own index are
    // deterministic (one writer per slot); the serial fold below
    // fixes the summation order independent of the schedule.
    std::vector<double> slots(count, 0.0);
    parallelFor(count, [&](std::size_t i) { slots[i] = term(i); },
                width);
    double sum = 0.0;
    for (double v : slots)
        sum += v;
    return sum;
}

} // namespace seqpoint
