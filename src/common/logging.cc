/**
 * @file
 * Implementation of the logging helpers.
 */

#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace seqpoint {

namespace {

std::atomic<uint64_t> warn_count{0};
std::atomic<bool> quiet{false};

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // anonymous namespace

void
logMessage(LogLevel level, const std::string &where, const std::string &msg)
{
    if (level == LogLevel::Warn)
        warn_count.fetch_add(1, std::memory_order_relaxed);

    bool muted = quiet.load(std::memory_order_relaxed) &&
        (level == LogLevel::Inform || level == LogLevel::Warn);

    if (!muted) {
        FILE *out = (level == LogLevel::Inform) ? stdout : stderr;
        if (where.empty()) {
            std::fprintf(out, "%s: %s\n", levelTag(level), msg.c_str());
        } else {
            std::fprintf(out, "%s: %s (%s)\n", levelTag(level), msg.c_str(),
                         where.c_str());
        }
        std::fflush(out);
    }

    if (level == LogLevel::Fatal)
        std::exit(1);
    if (level == LogLevel::Panic)
        std::abort();
}

uint64_t
warnCount()
{
    return warn_count.load(std::memory_order_relaxed);
}

void
setQuietLogging(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

} // namespace seqpoint
