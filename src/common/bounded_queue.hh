/**
 * @file
 * A bounded MPMC queue for admission control: producers tryPush and
 * get an immediate refusal when the queue is full or closed (the
 * service turns that into an `overloaded` Status) instead of blocking
 * or growing unboundedly; consumers block in pop until an item
 * arrives or the queue is closed and drained. close() is the drain
 * primitive -- it stops admission immediately while letting consumers
 * finish everything already accepted.
 */

#ifndef SEQPOINT_COMMON_BOUNDED_QUEUE_HH
#define SEQPOINT_COMMON_BOUNDED_QUEUE_HH

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/logging.hh"
#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace seqpoint {

/** Fixed-capacity multi-producer multi-consumer FIFO. */
template <typename T>
class BoundedQueue
{
  public:
    /**
     * Construct a queue.
     *
     * @param capacity Maximum queued items (> 0).
     */
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        panic_if(capacity == 0, "BoundedQueue: capacity must be > 0");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Non-blocking push.
     *
     * @param item Item to enqueue (moved from on success).
     * @return True when accepted; false when full or closed (the
     *         caller sheds the item).
     */
    bool
    tryPush(T item) SEQ_EXCLUDES(mu)
    {
        {
            MutexLock lock(mu);
            if (closed_ || items.size() >= capacity_)
                return false;
            items.push_back(std::move(item));
        }
        cvPop.notify_one();
        return true;
    }

    /**
     * Blocking pop.
     *
     * @return The oldest item, or nullopt once the queue is closed
     *         and fully drained.
     */
    std::optional<T>
    pop() SEQ_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        while (!popReadyLocked())
            cvPop.wait(mu);
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        return item;
    }

    /**
     * Stop admission: every later tryPush fails, every pop after the
     * drain returns nullopt, all blocked consumers wake. Idempotent.
     */
    void
    close() SEQ_EXCLUDES(mu)
    {
        {
            MutexLock lock(mu);
            closed_ = true;
        }
        cvPop.notify_all();
    }

    /** @return True once close() was called. */
    bool
    closed() const SEQ_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return closed_;
    }

    /** @return Items currently queued. */
    std::size_t
    size() const SEQ_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return items.size();
    }

    /** @return The fixed capacity. */
    std::size_t capacity() const { return capacity_; }

  private:
    /** @return True when pop() may return (item ready, or drained). */
    bool
    popReadyLocked() const SEQ_REQUIRES(mu)
    {
        return closed_ || !items.empty();
    }

    const std::size_t capacity_;
    mutable Mutex mu;
    std::deque<T> items SEQ_GUARDED_BY(mu);
    CondVar cvPop;
    bool closed_ SEQ_GUARDED_BY(mu) = false;
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_BOUNDED_QUEUE_HH
