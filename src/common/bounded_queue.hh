/**
 * @file
 * A bounded MPMC queue for admission control: producers tryPush and
 * get an immediate refusal when the queue is full or closed (the
 * service turns that into an `overloaded` Status) instead of blocking
 * or growing unboundedly; consumers block in pop until an item
 * arrives or the queue is closed and drained. close() is the drain
 * primitive -- it stops admission immediately while letting consumers
 * finish everything already accepted.
 */

#ifndef SEQPOINT_COMMON_BOUNDED_QUEUE_HH
#define SEQPOINT_COMMON_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.hh"

namespace seqpoint {

/** Fixed-capacity multi-producer multi-consumer FIFO. */
template <typename T>
class BoundedQueue
{
  public:
    /**
     * Construct a queue.
     *
     * @param capacity Maximum queued items (> 0).
     */
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        panic_if(capacity == 0, "BoundedQueue: capacity must be > 0");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Non-blocking push.
     *
     * @param item Item to enqueue (moved from on success).
     * @return True when accepted; false when full or closed (the
     *         caller sheds the item).
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (closed_ || items.size() >= capacity_)
                return false;
            items.push_back(std::move(item));
        }
        cvPop.notify_one();
        return true;
    }

    /**
     * Blocking pop.
     *
     * @return The oldest item, or nullopt once the queue is closed
     *         and fully drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu);
        cvPop.wait(lock, [this] { return closed_ || !items.empty(); });
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        return item;
    }

    /**
     * Stop admission: every later tryPush fails, every pop after the
     * drain returns nullopt, all blocked consumers wake. Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            closed_ = true;
        }
        cvPop.notify_all();
    }

    /** @return True once close() was called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return closed_;
    }

    /** @return Items currently queued. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return items.size();
    }

    /** @return The fixed capacity. */
    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    std::deque<T> items;
    mutable std::mutex mu;
    std::condition_variable cvPop;
    bool closed_ = false;
};

} // namespace seqpoint

#endif // SEQPOINT_COMMON_BOUNDED_QUEUE_HH
