/**
 * @file
 * Histogram implementation.
 */

#include "common/histogram.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace seqpoint {

Histogram::Histogram(int64_t lo_bound, int64_t hi_bound, size_t buckets)
    : lo(lo_bound), hi(hi_bound), counts(buckets, 0)
{
    panic_if(hi_bound < lo_bound, "Histogram: hi < lo");
    panic_if(buckets == 0, "Histogram: zero buckets");
}

size_t
Histogram::bucketFor(int64_t value) const
{
    if (value <= lo)
        return 0;
    if (value >= hi)
        return counts.size() - 1;
    // Width as double to avoid overflow on wide ranges.
    double span = static_cast<double>(hi - lo + 1);
    double pos = static_cast<double>(value - lo) / span;
    size_t idx = static_cast<size_t>(pos *
        static_cast<double>(counts.size()));
    return std::min(idx, counts.size() - 1);
}

void
Histogram::add(int64_t value, uint64_t count)
{
    counts[bucketFor(value)] += count;
    total_ += count;
}

uint64_t
Histogram::bucketCount(size_t i) const
{
    panic_if(i >= counts.size(), "Histogram: bucket index out of range");
    return counts[i];
}

int64_t
Histogram::bucketLo(size_t i) const
{
    panic_if(i >= counts.size(), "Histogram: bucket index out of range");
    double span = static_cast<double>(hi - lo + 1);
    return lo + static_cast<int64_t>(span * static_cast<double>(i) /
        static_cast<double>(counts.size()));
}

int64_t
Histogram::bucketHi(size_t i) const
{
    panic_if(i >= counts.size(), "Histogram: bucket index out of range");
    if (i + 1 == counts.size())
        return hi;
    return bucketLo(i + 1) - 1;
}

std::string
Histogram::render(size_t width) const
{
    uint64_t peak = 0;
    for (uint64_t c : counts)
        peak = std::max(peak, c);

    std::string out;
    for (size_t i = 0; i < counts.size(); ++i) {
        size_t bar = (peak == 0) ? 0 :
            static_cast<size_t>(static_cast<double>(counts[i]) /
                static_cast<double>(peak) *
                static_cast<double>(width));
        out += csprintf("[%6lld, %6lld] %6llu |",
            static_cast<long long>(bucketLo(i)),
            static_cast<long long>(bucketHi(i)),
            static_cast<unsigned long long>(counts[i]));
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

} // namespace seqpoint
